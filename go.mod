module pesto

go 1.22
