#!/usr/bin/env bash
# smoke_trace.sh — end-to-end smoke test of fleet-wide distributed
# tracing:
#
#   start three standalone pestod replicas and a router fronting them,
#   solve a graph under a client-chosen X-Pesto-Trace ID, fetch
#   GET /v1/requests/{id}/trace and require a stitched Chrome trace
#   carrying both the router's hop lane and the serving replica's
#   solver spans. Then kill the replica that served, solve again under
#   a fresh trace ID, and require the stitched trace to show the
#   failover: a dead-replica hop with an error next to the served hop.
#
# Usage: scripts/smoke_trace.sh  (or: make trace-smoke)
set -eu

cd "$(dirname "$0")/.."

PORT="${PESTOD_TRACE_PORT:-18371}"
BPORT1=$((PORT + 1))
BPORT2=$((PORT + 2))
BPORT3=$((PORT + 3))
WORK="$(mktemp -d)"
PIDS=""

cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "trace-smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() { # url logfile pid
    for i in $(seq 1 100); do
        if curl -fsS "$1/healthz" > /dev/null 2>&1; then return 0; fi
        kill -0 "$3" 2>/dev/null || { cat "$2" >&2; fail "process exited during startup"; }
        sleep 0.1
    done
    fail "no healthy /healthz at $1"
}

echo "trace-smoke: building pestod"
go build -o "$WORK/pestod" ./cmd/pestod

printf '{"graph": %s, "options": {"budgetMs": 500}}' \
    "$(cat cmd/pestod/testdata/smoke_graph.json)" > "$WORK/req.json"

echo "trace-smoke: starting three replicas + HTTP router"
for i in 1 2 3; do
    bport=$((PORT + i))
    "$WORK/pestod" -addr "127.0.0.1:$bport" -solvers 2 -budget 2s > "$WORK/b$i.log" 2>&1 &
    pid=$!; PIDS="$PIDS $pid"; disown "$pid"
    eval "B${i}_PID=$pid"
done
wait_healthy "http://127.0.0.1:$BPORT1" "$WORK/b1.log" "$B1_PID"
wait_healthy "http://127.0.0.1:$BPORT2" "$WORK/b2.log" "$B2_PID"
wait_healthy "http://127.0.0.1:$BPORT3" "$WORK/b3.log" "$B3_PID"
"$WORK/pestod" -addr "127.0.0.1:$PORT" \
    -fleet-backends "http://127.0.0.1:$BPORT1,http://127.0.0.1:$BPORT2,http://127.0.0.1:$BPORT3" \
    > "$WORK/router.log" 2>&1 &
R_PID=$!; PIDS="$PIDS $R_PID"; disown "$R_PID"
BASE="http://127.0.0.1:$PORT"
wait_healthy "$BASE" "$WORK/router.log" "$R_PID"

echo "trace-smoke: solve under a client trace ID"
code=$(curl -sS -o "$WORK/resp1.json" -w '%{http_code}' -D "$WORK/h1" \
    -H 'Content-Type: application/json' \
    -H 'X-Pesto-Trace: smoke-trace-1;hop=0;parent=0' \
    --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/resp1.json" >&2; fail "solve status $code"; }
grep -qi '^x-pesto-trace: smoke-trace-1' "$WORK/h1" || fail "trace ID not echoed"
served=$(grep -i '^x-pesto-replica:' "$WORK/h1" | tr -d '\r' | awk '{print $2}')
[ -n "$served" ] || fail "no X-Pesto-Replica header"

echo "trace-smoke: stitched trace carries router hops and replica spans"
code=$(curl -sS -o "$WORK/trace1.json" -w '%{http_code}' "$BASE/v1/requests/smoke-trace-1/trace")
[ "$code" = 200 ] || { cat "$WORK/trace1.json" >&2; fail "stitched trace status $code"; }
grep -q '"traceEvents"' "$WORK/trace1.json" || fail "not a Chrome trace file"
grep -q 'fleet router' "$WORK/trace1.json" || fail "router hop lane missing"
grep -q "replica $served" "$WORK/trace1.json" || fail "serving replica lane missing"
grep -q 'placement\.' "$WORK/trace1.json" || fail "replica solver spans missing from stitched trace"

echo "trace-smoke: unknown trace IDs 404"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/v1/requests/no-such-trace/trace")
[ "$code" = 404 ] || fail "unknown trace returned $code, want 404"

echo "trace-smoke: kill the serving replica ($served)"
sport="${served##*:}"
case "$sport" in
    "$BPORT1") kill -9 "$B1_PID" ;;
    "$BPORT2") kill -9 "$B2_PID" ;;
    "$BPORT3") kill -9 "$B3_PID" ;;
    *) fail "cannot map serving replica $served to a pid" ;;
esac

echo "trace-smoke: repeat solve must fail over, trace must show it"
code=$(curl -sS -o "$WORK/resp2.json" -w '%{http_code}' -D "$WORK/h2" \
    -H 'Content-Type: application/json' \
    -H 'X-Pesto-Trace: smoke-trace-2;hop=0;parent=0' \
    --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/resp2.json" >&2; fail "post-kill solve status $code"; }
served2=$(grep -i '^x-pesto-replica:' "$WORK/h2" | tr -d '\r' | awk '{print $2}')
[ "$served2" != "$served" ] || fail "dead replica $served still serving"
cmp -s "$WORK/resp1.json" "$WORK/resp2.json" || fail "failover plan differs from original"

code=$(curl -sS -o "$WORK/trace2.json" -w '%{http_code}' "$BASE/v1/requests/smoke-trace-2/trace")
[ "$code" = 200 ] || { cat "$WORK/trace2.json" >&2; fail "failover trace status $code"; }
grep -q '"err"' "$WORK/trace2.json" || fail "failover trace has no failed hop"
grep -q '"served":true' "$WORK/trace2.json" || fail "failover trace has no served hop"
grep -q "replica $served2" "$WORK/trace2.json" || fail "failover replica lane missing"

echo "trace-smoke: PASS"
