#!/usr/bin/env bash
# smoke_fleet.sh — end-to-end smoke test of pestod's fleet mode:
#
#   leg 1 (in-process fleet): start `pestod -fleet 3`, solve a graph
#   (miss), repeat it (hit, byte-identical, same replica), dedupe a
#   batch, check /healthz reports three live replicas and /metrics
#   carries the pestod_fleet_* family, then SIGTERM and require a
#   clean drain.
#
#   leg 2 (HTTP backends): start two standalone pestod replicas and a
#   router fronting them via -fleet-backends, solve through the router,
#   kill one replica and require the repeat request to still answer
#   200 with a byte-identical plan (failover).
#
# Usage: scripts/smoke_fleet.sh  (or: make fleet-smoke)
set -eu

cd "$(dirname "$0")/.."

PORT="${PESTOD_FLEET_PORT:-18361}"
BPORT1=$((PORT + 1))
BPORT2=$((PORT + 2))
RPORT=$((PORT + 3))
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
PIDS=""

cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() { # url logfile pid
    for i in $(seq 1 100); do
        if curl -fsS "$1/healthz" > /dev/null 2>&1; then return 0; fi
        kill -0 "$3" 2>/dev/null || { cat "$2" >&2; fail "process exited during startup"; }
        sleep 0.1
    done
    fail "no healthy /healthz at $1"
}

echo "fleet-smoke: building pestod"
go build -o "$WORK/pestod" ./cmd/pestod

echo "fleet-smoke: assembling request bodies"
printf '{"graph": %s, "options": {"budgetMs": 500}}' \
    "$(cat cmd/pestod/testdata/smoke_graph.json)" > "$WORK/req.json"
# A batch of three entries: two identical (must dedupe) plus one with
# different options (must solve separately).
printf '{"requests": [%s, %s, {"graph": %s, "options": {"budgetMs": 501}}]}' \
    "$(cat "$WORK/req.json")" "$(cat "$WORK/req.json")" \
    "$(cat cmd/pestod/testdata/smoke_graph.json)" > "$WORK/batch.json"

# ---- leg 1: in-process fleet -------------------------------------------
echo "fleet-smoke: starting pestod -fleet 3 on $BASE"
"$WORK/pestod" -addr "127.0.0.1:$PORT" -fleet 3 -solvers 2 -budget 2s > "$WORK/fleet.log" 2>&1 &
FLEET_PID=$!
PIDS="$PIDS $FLEET_PID"
wait_healthy "$BASE" "$WORK/fleet.log" "$FLEET_PID"

echo "fleet-smoke: healthz reports three live replicas"
curl -fsS "$BASE/healthz" > "$WORK/health.json"
grep -q '"status":"ok"' "$WORK/health.json" || fail "fleet healthz not ok"
for r in r0 r1 r2; do
    grep -q "\"id\":\"$r\"" "$WORK/health.json" || fail "replica $r missing from healthz"
done

echo "fleet-smoke: first solve (expect miss, routed by fingerprint)"
code=$(curl -sS -o "$WORK/resp1.json" -w '%{http_code}' -D "$WORK/h1" \
    -H 'Content-Type: application/json' --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/resp1.json" >&2; fail "first solve status $code"; }
grep -qi '^x-pesto-cache: miss' "$WORK/h1" || fail "first solve was not a miss"
grep -qi '^x-pesto-replica: r' "$WORK/h1" || fail "no X-Pesto-Replica header"
owner=$(grep -i '^x-pesto-replica:' "$WORK/h1" | tr -d '\r' | awk '{print $2}')

echo "fleet-smoke: repeat solve (expect hit on the same replica, byte-identical)"
code=$(curl -sS -o "$WORK/resp2.json" -w '%{http_code}' -D "$WORK/h2" \
    -H 'Content-Type: application/json' --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || fail "repeat solve status $code"
grep -qi '^x-pesto-cache: hit' "$WORK/h2" || fail "repeat solve was not a hit"
grep -qi "^x-pesto-replica: $owner" "$WORK/h2" || fail "repeat solve left replica $owner"
cmp -s "$WORK/resp1.json" "$WORK/resp2.json" || fail "responses not byte-identical"

echo "fleet-smoke: batch dedupes identical entries"
code=$(curl -sS -o "$WORK/batchresp.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' --data-binary @"$WORK/batch.json" "$BASE/v1/place/batch")
[ "$code" = 200 ] || { cat "$WORK/batchresp.json" >&2; fail "batch status $code"; }
n=$(grep -o '"status":200' "$WORK/batchresp.json" | wc -l)
[ "$n" = 3 ] || fail "batch returned $n OK results, want 3"

echo "fleet-smoke: metrics carry the pestod_fleet_* family"
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
grep -q 'pestod_fleet_requests_total{endpoint="place",outcome="ok"} 2' "$WORK/metrics.txt" || fail "fleet request counter missing"
grep -q 'pestod_fleet_batch_entries_total 3' "$WORK/metrics.txt" || fail "batch entries counter missing"
grep -q 'pestod_fleet_batch_deduped_total 1' "$WORK/metrics.txt" || fail "batch dedupe counter missing"
grep -q 'pestod_fleet_replica_up{replica="r0"} 1' "$WORK/metrics.txt" || fail "replica_up gauge missing"

echo "fleet-smoke: SIGTERM drain"
kill -TERM "$FLEET_PID"
drain_ok=0
for i in $(seq 1 100); do
    if ! kill -0 "$FLEET_PID" 2>/dev/null; then drain_ok=1; break; fi
    sleep 0.1
done
[ "$drain_ok" = 1 ] || fail "fleet pestod did not exit after SIGTERM"
wait "$FLEET_PID" 2>/dev/null && status=0 || status=$?
[ "$status" = 0 ] || { cat "$WORK/fleet.log" >&2; fail "fleet pestod exit status $status"; }
grep -q 'drained cleanly' "$WORK/fleet.log" || fail "no clean-drain log line"

# ---- leg 2: router over HTTP backends with a kill ----------------------
echo "fleet-smoke: starting two standalone replicas + HTTP router"
"$WORK/pestod" -addr "127.0.0.1:$BPORT1" -solvers 2 -budget 2s > "$WORK/b1.log" 2>&1 &
B1_PID=$!; PIDS="$PIDS $B1_PID"; disown "$B1_PID"
"$WORK/pestod" -addr "127.0.0.1:$BPORT2" -solvers 2 -budget 2s > "$WORK/b2.log" 2>&1 &
B2_PID=$!; PIDS="$PIDS $B2_PID"; disown "$B2_PID"
wait_healthy "http://127.0.0.1:$BPORT1" "$WORK/b1.log" "$B1_PID"
wait_healthy "http://127.0.0.1:$BPORT2" "$WORK/b2.log" "$B2_PID"
"$WORK/pestod" -addr "127.0.0.1:$RPORT" \
    -fleet-backends "http://127.0.0.1:$BPORT1,http://127.0.0.1:$BPORT2" > "$WORK/router.log" 2>&1 &
R_PID=$!; PIDS="$PIDS $R_PID"; disown "$R_PID"
RBASE="http://127.0.0.1:$RPORT"
wait_healthy "$RBASE" "$WORK/router.log" "$R_PID"

echo "fleet-smoke: solve through the router"
code=$(curl -sS -o "$WORK/r1.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' --data-binary @"$WORK/req.json" "$RBASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/r1.json" >&2; fail "router solve status $code"; }

echo "fleet-smoke: kill one replica, repeat request must fail over"
kill -9 "$B1_PID" 2>/dev/null || true
code=$(curl -sS -o "$WORK/r2.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' --data-binary @"$WORK/req.json" "$RBASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/r2.json" >&2; fail "post-kill solve status $code"; }
cmp -s "$WORK/r1.json" "$WORK/r2.json" || fail "failover response differs from original plan"

echo "fleet-smoke: PASS"
