#!/usr/bin/env bash
# smoke_obs.sh — end-to-end smoke test of the telemetry surfaces:
#   build pestod with -obs-log, send a traced request with a known
#   X-Request-ID, and require the ID on the response header, in the
#   span dump (/v1/requests/{id}/spans, which must contain the
#   placement span tree), on every JSONL log line, in the rung-split
#   /metrics histogram, and a reachable /debug/pprof/ index. Then run
#   the pesto CLI with -obs-trace and require a combined Chrome Trace
#   with both solver and execution events.
#
# Usage: scripts/smoke_obs.sh  (or: make obs-smoke)
set -eu

cd "$(dirname "$0")/.."

PORT="${PESTOD_PORT:-18352}"
BASE="http://127.0.0.1:$PORT"
RID="smoke-obs-$$"
WORK="$(mktemp -d)"
PESTOD_PID=""

cleanup() {
    [ -n "$PESTOD_PID" ] && kill -9 "$PESTOD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "obs-smoke: FAIL: $*" >&2; exit 1; }

echo "obs-smoke: building pestod and pesto"
go build -o "$WORK/pestod" ./cmd/pestod
go build -o "$WORK/pesto" ./cmd/pesto

echo "obs-smoke: assembling request body"
printf '{"graph": %s, "options": {"budgetMs": 500}}' \
    "$(cat cmd/pestod/testdata/smoke_graph.json)" > "$WORK/req.json"

echo "obs-smoke: starting pestod on $BASE with -obs-log"
"$WORK/pestod" -addr "127.0.0.1:$PORT" -solvers 2 -budget 2s \
    -obs-log "$WORK/telemetry.jsonl" > "$WORK/pestod.log" 2>&1 &
PESTOD_PID=$!

for i in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" > /dev/null 2>&1; then break; fi
    kill -0 "$PESTOD_PID" 2>/dev/null || { cat "$WORK/pestod.log" >&2; fail "pestod exited during startup"; }
    sleep 0.1
done

echo "obs-smoke: traced solve with X-Request-ID: $RID"
code=$(curl -sS -o "$WORK/resp.json" -w '%{http_code}' -D "$WORK/h1" \
    -H 'Content-Type: application/json' -H "X-Request-ID: $RID" \
    --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/resp.json" >&2; fail "solve status $code"; }
grep -qi "^x-request-id: $RID" "$WORK/h1" || fail "X-Request-ID not echoed"

echo "obs-smoke: span dump carries the request's solver spans"
curl -fsS "$BASE/v1/requests/$RID/spans" > "$WORK/spans.json" || fail "span dump fetch"
grep -q "\"requestId\":\"$RID\"" "$WORK/spans.json" || fail "span dump not keyed by request id"
grep -q '"placement.place"' "$WORK/spans.json" || fail "span dump misses placement.place"
grep -q '"placement.stage"' "$WORK/spans.json" || fail "span dump misses the ladder-rung span"

echo "obs-smoke: every JSONL log line carries the request id"
[ -s "$WORK/telemetry.jsonl" ] || fail "telemetry log empty"
bad=$(grep -cv "\"requestId\":\"$RID\"" "$WORK/telemetry.jsonl" || true)
[ "$bad" = 0 ] || { head -3 "$WORK/telemetry.jsonl" >&2; fail "$bad log lines without the request id"; }

echo "obs-smoke: rung-split histogram and solver counters in /metrics"
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
grep -q 'pestod_solve_duration_seconds_bucket{stage="warm-start+refine",le="+Inf"} 1' "$WORK/metrics.txt" \
    || fail "rung-split solve histogram missing"
grep -q 'pestod_bnb_nodes_total' "$WORK/metrics.txt" || fail "bnb nodes counter missing"
grep -q 'pestod_lp_pivots_total' "$WORK/metrics.txt" || fail "lp pivots counter missing"
grep -q 'pestod_incumbent_improvements_total' "$WORK/metrics.txt" || fail "incumbent counter missing"

echo "obs-smoke: pprof index reachable"
curl -fsS "$BASE/debug/pprof/" | grep -q 'goroutine' || fail "/debug/pprof/ not serving"

kill -TERM "$PESTOD_PID"
wait "$PESTOD_PID" 2>/dev/null || true
PESTOD_PID=""

echo "obs-smoke: pesto -obs-trace produces one combined Chrome Trace"
"$WORK/pesto" -model RNNLM-2-2048 -ilp-time 2s -obs-trace "$WORK/combined.json" \
    > "$WORK/pesto.out" 2>&1 || { cat "$WORK/pesto.out" >&2; fail "pesto -obs-trace run"; }
grep -q '"placement.place"' "$WORK/combined.json" || fail "combined trace misses solver spans"
grep -q '"cat":"op"' "$WORK/combined.json" || fail "combined trace misses execution events"
grep -q '"ph":"C"' "$WORK/combined.json" || fail "combined trace misses counter tracks"
grep -q 'solver counters:' "$WORK/pesto.out" || fail "CLI counter summary missing"

echo "obs-smoke: PASS"
