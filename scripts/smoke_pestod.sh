#!/usr/bin/env bash
# smoke_pestod.sh — end-to-end smoke test of the pestod daemon:
#   build, start, wait for /healthz, solve a graph (cache miss), repeat
#   the identical request (cache hit, byte-identical body), reject a
#   malformed body with 400, scrape /metrics, then SIGTERM and require
#   a clean drain (exit 0).
#
# Usage: scripts/smoke_pestod.sh  (or: make smoke)
set -eu

cd "$(dirname "$0")/.."

PORT="${PESTOD_PORT:-18351}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
PESTOD_PID=""

cleanup() {
    [ -n "$PESTOD_PID" ] && kill -9 "$PESTOD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building pestod"
go build -o "$WORK/pestod" ./cmd/pestod

echo "smoke: assembling request body"
# Wrap the checked-in smoke graph into a /v1/place request.
printf '{"graph": %s, "options": {"budgetMs": 500}}' \
    "$(cat cmd/pestod/testdata/smoke_graph.json)" > "$WORK/req.json"

echo "smoke: starting pestod on $BASE"
"$WORK/pestod" -addr "127.0.0.1:$PORT" -solvers 2 -budget 2s > "$WORK/pestod.log" 2>&1 &
PESTOD_PID=$!

for i in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" > /dev/null 2>&1; then break; fi
    kill -0 "$PESTOD_PID" 2>/dev/null || { cat "$WORK/pestod.log" >&2; fail "pestod exited during startup"; }
    sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

echo "smoke: first solve (expect cache miss)"
code=$(curl -sS -o "$WORK/resp1.json" -w '%{http_code}' -D "$WORK/h1" \
    -H 'Content-Type: application/json' --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || { cat "$WORK/resp1.json" >&2; fail "first solve status $code"; }
grep -qi '^x-pesto-cache: miss' "$WORK/h1" || fail "first solve was not a miss"
grep -q '"verified":true' "$WORK/resp1.json" || fail "plan not verified"

echo "smoke: repeat solve (expect cache hit, byte-identical)"
code=$(curl -sS -o "$WORK/resp2.json" -w '%{http_code}' -D "$WORK/h2" \
    -H 'Content-Type: application/json' --data-binary @"$WORK/req.json" "$BASE/v1/place")
[ "$code" = 200 ] || fail "repeat solve status $code"
grep -qi '^x-pesto-cache: hit' "$WORK/h2" || fail "repeat solve was not a hit"
cmp -s "$WORK/resp1.json" "$WORK/resp2.json" || fail "responses not byte-identical"

echo "smoke: malformed body (expect 400)"
code=$(curl -sS -o /dev/null -w '%{http_code}' \
    -H 'Content-Type: application/json' --data-binary '{"graph": [' "$BASE/v1/place")
[ "$code" = 400 ] || fail "malformed body status $code, want 400"

echo "smoke: metrics scrape"
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
grep -q 'pestod_requests_total{endpoint="place",outcome="ok"} 2' "$WORK/metrics.txt" || fail "request counter missing"
grep -q 'pestod_cache_events_total{event="hit"} 1' "$WORK/metrics.txt" || fail "cache hit counter missing"
grep -q 'pestod_solve_duration_seconds_count{stage="warm-start+refine"} 1' "$WORK/metrics.txt" || fail "solve histogram missing"

echo "smoke: SIGTERM drain"
kill -TERM "$PESTOD_PID"
drain_ok=0
for i in $(seq 1 100); do
    if ! kill -0 "$PESTOD_PID" 2>/dev/null; then drain_ok=1; break; fi
    sleep 0.1
done
[ "$drain_ok" = 1 ] || fail "pestod did not exit after SIGTERM"
wait "$PESTOD_PID" 2>/dev/null && status=0 || status=$?
[ "$status" = 0 ] || { cat "$WORK/pestod.log" >&2; fail "pestod exit status $status, want 0"; }
grep -q 'drained cleanly' "$WORK/pestod.log" || fail "no clean-drain log line"
PESTOD_PID=""

echo "smoke: PASS"
