#!/usr/bin/env sh
# check.sh — the repository's full verification gate:
#   gofmt (diff-clean), go vet, build, unit tests under the race
#   detector. The placement engine evaluates candidates concurrently,
#   so the race detector is part of the default gate, not an extra.
#
# Usage: scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

fmt_out=$(gofmt -l . 2>/dev/null)
if [ -n "$fmt_out" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
