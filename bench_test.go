package pesto

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§5) at paper scale and prints the rows. One
// benchmark per table/figure, plus ablation benches for the design
// choices DESIGN.md calls out. Absolute numbers come from the simulated
// substrate and will not match the authors' testbed; the shapes (who
// wins, by roughly what factor, where crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.
//
// Run everything:
//
//	go test -bench=. -benchmem -timeout 2h
//
// Use -bench=BenchmarkFigure7 etc. to regenerate one artifact.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"pesto/internal/experiments"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// benchCfg is the paper-scale configuration shared by all benches.
func benchCfg() experiments.Config {
	return experiments.Config{
		Small:        false,
		ILPTimeLimit: 10 * time.Second,
		ProfileIters: 30, // enough for stable means; 100 in the paper
		Seed:         1,
	}
}

// printOnce writes an experiment's table to stdout on the first
// benchmark iteration only.
var printedOnce sync.Map

func printOnce(name string, s fmt.Stringer) {
	if _, loaded := printedOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%v\n", s)
	}
}

// BenchmarkFigure2Toy regenerates the Figure 2 illustrative example:
// naive scheduling vs naive placement vs the jointly optimized plan
// (paper: 22–26% improvement).
func BenchmarkFigure2Toy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure2", res)
		b.ReportMetric(100*res.Improvement(), "improvement_%")
	}
}

// BenchmarkFigure4aComputeCDF regenerates the compute-time variability
// CDF (paper: normalized stddev concentrated well below 0.2).
func BenchmarkFigure4aComputeCDF(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure4a", res)
		worst := 0.0
		for _, row := range res.Rows {
			if row.P99 > worst {
				worst = row.P99
			}
		}
		b.ReportMetric(worst, "worst_p99_stddev")
	}
}

// BenchmarkFigure4bCommFit regenerates the linear communication fits
// (paper: R² of 0.92–0.99).
func BenchmarkFigure4bCommFit(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure4b", res)
		minR2 := 1.0
		for _, row := range res.Rows {
			if row.R2 < minR2 {
				minR2 = row.R2
			}
		}
		b.ReportMetric(minR2, "min_r2")
	}
}

// BenchmarkTable1OpSizes regenerates the op execution-time buckets
// (paper: the <10µs bucket dominates every model).
func BenchmarkTable1OpSizes(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table1", res)
	}
}

// BenchmarkFigure5Congestion regenerates the congestion-constraint
// ablation on RNNLM-2-2048 (paper: ~3× makespan inflation without the
// constraints; here the planner's fallback schedulers cushion the blow,
// so the signal is the queueing delay and a smaller inflation).
func BenchmarkFigure5Congestion(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure5", res)
		b.ReportMetric(res.Inflation(), "inflation_x")
	}
}

// BenchmarkFigure7TrainingTime regenerates the headline per-step
// training-time comparison across all eleven variants (paper: Pesto
// ~14% below the best alternative on average; Expert OOMs on
// NASNet-4-212 and NASNet-6-168).
func BenchmarkFigure7TrainingTime(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure7", res)
		b.ReportMetric(100*res.AverageReduction(), "avg_reduction_%")
	}
}

// BenchmarkTable2PlacementTime regenerates the placement-time
// comparison (paper: Pesto minutes vs learning-based hours-to-days).
func BenchmarkTable2PlacementTime(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table2", res)
	}
}

// BenchmarkTable3TrainingEffort regenerates the end-to-end training
// effort relative to Expert (paper: Pesto 0.7×–0.89×).
func BenchmarkTable3TrainingEffort(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table3", res)
	}
}

// BenchmarkFigure8aComputeScaling regenerates the compute-speed sweep
// (paper: Pesto's improvement over Expert grows with compute speed).
func BenchmarkFigure8aComputeScaling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8a(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure8a", res)
		if n := len(res.Points); n > 0 {
			b.ReportMetric(100*res.Points[n-1].Improvement, "improvement_at_8x_%")
		}
	}
}

// BenchmarkFigure8bInterconnect regenerates the interconnect-speed
// sweep on NMT-2-1024 (paper: Pesto adapts; Expert suffers on slow
// links).
func BenchmarkFigure8bInterconnect(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8b(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure8b", res)
		if len(res.Points) > 0 {
			b.ReportMetric(100*res.Points[0].Improvement, "improvement_at_0.1x_%")
		}
	}
}

// BenchmarkCoarseningSensitivity regenerates the §5.3 study: placement
// time vs training time across coarsening targets.
func BenchmarkCoarseningSensitivity(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CoarseningSensitivity(context.Background(), cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("coarsening", res)
	}
}

// BenchmarkSimulatorValidation regenerates the §5.4 validation:
// simulator vs runtime-executor per-step times (paper: 0.1–11.3%
// disagreement, ~5% average).
func BenchmarkSimulatorValidation(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SimulatorValidation(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("validation", res)
		b.ReportMetric(100*res.AverageError(), "avg_error_%")
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// BenchmarkAblationJointVsPlacementOnly compares Pesto's full joint
// placement+scheduling output against placement-only with TensorFlow-
// default ready-queue scheduling (§3.3's fallback).
func BenchmarkAblationJointVsPlacementOnly(b *testing.B) {
	g, err := BuildModel("RNNLM-2-2048")
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	for i := 0; i < b.N; i++ {
		joint, err := Place(context.Background(), g, sys, PlaceOptions{
			ILPTimeLimit: 8 * time.Second, ScheduleFromILP: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		placeOnly, err := Place(context.Background(), g, sys, PlaceOptions{
			ILPTimeLimit: 8 * time.Second, ScheduleFromILP: false, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		jr, err := Simulate(g, sys, joint.Plan)
		if err != nil {
			b.Fatal(err)
		}
		pr, err := Simulate(g, sys, placeOnly.Plan)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nAblation: joint schedule %v vs placement-only %v\n", jr.Makespan, pr.Makespan)
		}
		b.ReportMetric(float64(pr.Makespan)/float64(jr.Makespan), "placement_only_slowdown_x")
	}
}

// BenchmarkAblationMemoryConstraints compares placements with and
// without the memory constraint group (8) on the Expert-OOM NASNet
// variant.
func BenchmarkAblationMemoryConstraints(b *testing.B) {
	g, err := BuildModel("NASNet-4-212")
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	for i := 0; i < b.N; i++ {
		withMem, err := Place(context.Background(), g, sys, PlaceOptions{
			ILPTimeLimit: 8 * time.Second, ScheduleFromILP: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(g, sys, withMem.Plan); err != nil {
			b.Fatalf("memory-aware plan must fit: %v", err)
		}
		noMem, err := Place(context.Background(), g, sys, PlaceOptions{
			ILPTimeLimit: 8 * time.Second, ScheduleFromILP: true, Seed: 1, DisableMemory: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, simErr := Simulate(g, sys, noMem.Plan)
		if i == 0 {
			fmt.Printf("\nAblation: memory constraints on -> fits; off -> error=%v\n", simErr)
		}
	}
}

// BenchmarkAblationCoarseningPriority compares coarsening-edge
// priorities: by communication size (Pesto, §3.3) vs the plain
// placement quality they yield downstream. (Alternative systems merge
// by out-degree only, §5.3.)
func BenchmarkAblationCoarseningPriority(b *testing.B) {
	g, err := BuildModel("NMT-2-1024")
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	for i := 0; i < b.N; i++ {
		res, err := placement.Place(context.Background(), g, sys, placement.Options{
			ILPTimeLimit: 8 * time.Second, ScheduleFromILP: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		r, err := sim.Run(g, sys, res.Plan)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nAblation: comm-size-priority coarsening -> %d vertices, step %v\n",
				res.CoarseSize, r.Makespan)
		}
		b.ReportMetric(float64(res.CoarseSize), "coarse_vertices")
	}
}

// BenchmarkExtendedBaselines compares every implemented strategy
// (single-GPU, Expert, HEFT, Baechi-best, Pesto) across all variants —
// an extension beyond the paper's three-way Figure 7.
func BenchmarkExtendedBaselines(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtendedBaselines(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("extended", res)
	}
}

// BenchmarkPlaceParallel measures the placement pipeline at one worker
// versus GOMAXPROCS workers on the same workload and seed. The plans
// are byte-identical by construction (the engine merges in submission
// order), so the only thing that may differ is wall clock — the
// speedup is the engine's whole value proposition. Running it writes a
// BENCH_engine.json snapshot so the trajectory is tracked across
// machines; on a single-core host both variants degenerate to the
// inline path and the ratio is ~1.
func BenchmarkPlaceParallel(b *testing.B) {
	g, err := BuildModel("RNNLM-2-2048")
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	opts := PlaceOptions{
		CoarsenTarget: 48, ILPMaxSize: 16, ILPMaxNodes: 8,
		ILPTimeLimit: 120 * time.Second, ScheduleFromILP: true, Seed: 1,
	}
	variants := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	}
	snapshot := map[string]any{"gomaxprocs": runtime.GOMAXPROCS(0), "model": "RNNLM-2-2048"}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			o := opts
			o.Parallel = v.workers
			var total time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := Place(context.Background(), g, sys, o); err != nil {
					b.Fatal(err)
				}
				total += time.Since(start)
			}
			snapshot[fmt.Sprintf("ns_per_place_workers_%d", v.workers)] = int64(total) / int64(b.N)
		})
	}
	if one, ok := snapshot["ns_per_place_workers_1"].(int64); ok {
		if max, ok := snapshot[fmt.Sprintf("ns_per_place_workers_%d", runtime.GOMAXPROCS(0))].(int64); ok && max > 0 {
			snapshot["speedup"] = float64(one) / float64(max)
		}
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// placeCPUTime reads this process's cumulative CPU time (user+system).
// The overhead claim below is measured in CPU time, not wall time:
// these benches run on shared virtual machines where hypervisor steal
// and frequency drift move wall-clock ±10% between identical runs,
// an order of magnitude above the effect being measured. Rusage does
// not accrue while the process is descheduled, so an A/A comparison
// in CPU time is stable where wall time is not. (Linux/darwin only,
// like the rest of the toolchain this repo targets.)
func placeCPUTime(b *testing.B) time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		b.Fatal(err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// BenchmarkObsOverhead measures what the telemetry layer costs the
// placement pipeline: no recorder on the context (the production
// default for library callers; every obs call is a nil-check no-op),
// versus a recorder feeding an in-memory sink. The baseline is an A/A
// copy of the disabled variant, so any measured baseline/disabled gap
// bounds the noise floor of the claim itself. Each b.N round runs
// every variant once in rotated order and the snapshot reports the
// per-variant *minimum* of per-op CPU time (see placeCPUTime):
// best-of-rounds is the standard de-noising estimator for a
// deterministic workload, since every source of interference (steal,
// migrations, cache pollution) only ever adds time — the median still
// carries half the noise distribution and has produced negative
// "overhead" on shared machines. Running it writes BENCH_obs.json;
// the disabled variant is the one DESIGN.md holds to ≤2% overhead.
// Use -benchtime 40x: the minimum converges much faster than the
// median, and at 40 rounds the A/A gap lands well under 1%.
func BenchmarkObsOverhead(b *testing.B) {
	g, err := BuildModel("NMT-2-1024")
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(2, 16<<30)
	opts := PlaceOptions{
		CoarsenTarget: 24, ILPMaxSize: 12, ILPMaxNodes: 4,
		ILPTimeLimit: 120 * time.Second, ScheduleFromILP: true, Seed: 1,
	}
	variants := []struct {
		name string
		ctx  func() context.Context
	}{
		{"baseline", context.Background},
		{"disabled", context.Background}, // A/A pair: same bare context
		{"enabled", func() context.Context {
			return WithObsRecorder(context.Background(), NewObsRecorder(NewObsMemorySink()))
		}},
	}
	// One untimed warm-up solve so lazy init and the page cache hit
	// the first timed round like every other round.
	if _, err := Place(context.Background(), g, sys, opts); err != nil {
		b.Fatal(err)
	}
	samples := make([][]time.Duration, len(variants))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range variants {
			k := (i + j) % len(variants)
			start := placeCPUTime(b)
			if _, err := Place(variants[k].ctx(), g, sys, opts); err != nil {
				b.Fatal(err)
			}
			samples[k] = append(samples[k], placeCPUTime(b)-start)
		}
	}
	b.StopTimer()
	best := func(ds []time.Duration) int64 {
		min := ds[0]
		for _, d := range ds[1:] {
			if d < min {
				min = d
			}
		}
		return int64(min)
	}
	snapshot := map[string]any{
		"gomaxprocs": runtime.GOMAXPROCS(0), "model": "NMT-2-1024",
		"rounds": b.N, "clock": "cpu time (getrusage user+sys), best of rounds",
	}
	for k, v := range variants {
		snapshot["ns_per_place_"+v.name] = best(samples[k])
	}
	base := snapshot["ns_per_place_baseline"].(int64)
	if base > 0 {
		dis := snapshot["ns_per_place_disabled"].(int64)
		en := snapshot["ns_per_place_enabled"].(int64)
		snapshot["disabled_overhead_pct"] = 100 * (float64(dis) - float64(base)) / float64(base)
		snapshot["enabled_overhead_pct"] = 100 * (float64(en) - float64(base)) / float64(base)
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMultiGPUExtension evaluates the §3.2.2 multi-GPU extension
// on RNNLM-2-2048 for 2, 3 and 4 GPUs.
func BenchmarkMultiGPUExtension(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiGPU(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("multigpu", res)
		if n := len(res.Points); n > 0 {
			b.ReportMetric(res.Points[n-1].Speedup, "speedup_4gpu_vs_2gpu_x")
		}
	}
}
