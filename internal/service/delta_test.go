package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/incr"
	"pesto/internal/sim"
)

// layeredBody builds a place request big enough for the warm delta
// path to have clean groups to reuse.
func layeredBody(t *testing.T, seed int64, opts RequestOptions) (*graph.Graph, []byte) {
	t.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: seed, Nodes: 48})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	body, err := json.Marshal(PlaceRequest{Graph: g, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return g, body
}

func deltaBody(t *testing.T, baseFP string, edits []incr.Edit, opts RequestOptions) []byte {
	t.Helper()
	body, err := json.Marshal(DeltaRequest{BaseFingerprint: baseFP, Edits: edits, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDeltaEndToEnd drives the incremental route over HTTP: place a
// graph, send an edit against its fingerprint, and require a verified
// plan for the edited graph with incremental provenance — then chain a
// second delta off the first response's fingerprint.
func TestDeltaEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	opts := fastOptions()
	g, body := layeredBody(t, 7, opts)

	resp := post(t, ts.URL+"/v1/place", body)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: %d %s", resp.StatusCode, data)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}

	edits := []incr.Edit{{Kind: incr.KindReweight, Node: 10, CostNs: 2_000_000}}
	resp = post(t, ts.URL+"/v1/place/delta", deltaBody(t, pr.Fingerprint, edits, opts))
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d %s", resp.StatusCode, data)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.BaseFingerprint != pr.Fingerprint {
		t.Fatalf("base fingerprint %s, want %s", dr.BaseFingerprint, pr.Fingerprint)
	}
	if !dr.Verified {
		t.Fatal("delta plan not verified")
	}
	if dr.CacheKey == pr.CacheKey {
		t.Fatal("delta cache key equals the cold key: namespaces collide")
	}
	edited, _, err := incr.ApplyAll(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := edited.Fingerprint()
	if dr.Fingerprint != hexFP(wantFP) {
		t.Fatalf("edited fingerprint %s, want %x", dr.Fingerprint, wantFP)
	}
	// The served plan must be independently valid for the edited graph.
	normalized, err := opts.normalized(Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.Plan.Validate(edited, normalized.system()); err != nil {
		t.Fatalf("delta plan invalid: %v", err)
	}
	if !dr.Warm && dr.FallbackReason == "" {
		t.Fatal("cold delta carries no fallback reason")
	}
	if dr.Warm && (dr.DirtyGroups <= 0 || dr.DirtyGroups > dr.TotalGroups || dr.ChainDepth != 1) {
		t.Fatalf("warm accounting off: %+v", dr)
	}

	// Identical delta again: a cache hit, byte-identical body.
	resp = post(t, ts.URL+"/v1/place/delta", deltaBody(t, pr.Fingerprint, edits, opts))
	again := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta replay: %d %s", resp.StatusCode, again)
	}
	if resp.Header.Get("X-Pesto-Cache") != "hit" {
		t.Fatalf("delta replay X-Pesto-Cache %q, want hit", resp.Header.Get("X-Pesto-Cache"))
	}
	if !bytes.Equal(data, again) {
		t.Fatal("replayed delta body not byte-identical")
	}

	// Chained delta: the edited graph is resident now, so its
	// fingerprint works as the next base without re-uploading anything.
	chain := []incr.Edit{{Kind: incr.KindReweight, Node: 3, CostNs: 1_500_000}}
	resp = post(t, ts.URL+"/v1/place/delta", deltaBody(t, dr.Fingerprint, chain, opts))
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chained delta: %d %s", resp.StatusCode, data)
	}
	var dr2 DeltaResponse
	if err := json.Unmarshal(data, &dr2); err != nil {
		t.Fatal(err)
	}
	if dr2.BaseFingerprint != dr.Fingerprint {
		t.Fatalf("chained base %s, want %s", dr2.BaseFingerprint, dr.Fingerprint)
	}
	if dr.Warm && dr2.Warm && dr2.ChainDepth != dr.ChainDepth+1 {
		t.Fatalf("chain depth %d after depth %d", dr2.ChainDepth, dr.ChainDepth)
	}
}

func hexFP(fp [32]byte) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 64)
	for i, b := range fp {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0xf]
	}
	return string(out)
}

// TestDeltaErrors pins the 4xx surface: unknown bases are 404 (the
// client's signal to fall back to a full place), malformed and invalid
// edit lists are 400, and none of it panics the daemon.
func TestDeltaErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	opts := fastOptions()

	// Unknown base fingerprint → 404.
	unknown := hexFP([32]byte{1, 2, 3})
	resp := post(t, ts.URL+"/v1/place/delta",
		deltaBody(t, unknown, []incr.Edit{{Kind: incr.KindReweight, Node: 0, CostNs: 1000}}, opts))
	if data := readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown base: %d %s", resp.StatusCode, data)
	}

	// Resident base, but edits that cannot apply → 400.
	_, body := layeredBody(t, 4, opts)
	resp = post(t, ts.URL+"/v1/place", body)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: %d %s", resp.StatusCode, data)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	for name, edits := range map[string][]incr.Edit{
		"bogus kind":        {{Kind: "bogus"}},
		"node out of range": {{Kind: incr.KindReweight, Node: 100000, CostNs: 1000}},
		"missing edge":      {{Kind: incr.KindReweightEdge, From: 0, To: 47, Bytes: 64}},
	} {
		resp = post(t, ts.URL+"/v1/place/delta", deltaBody(t, pr.Fingerprint, edits, opts))
		if data := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", name, resp.StatusCode, data)
		}
	}

	// Empty edit list and trailing garbage are schema violations.
	for name, raw := range map[string]string{
		"empty edits":   `{"baseFingerprint":"` + pr.Fingerprint + `","edits":[],"options":{}}`,
		"trailing data": `{"baseFingerprint":"` + pr.Fingerprint + `","edits":[{"kind":"reweight","node":1,"costNs":10}],"options":{}} trailing`,
		"unknown field": `{"baseFingerprint":"` + pr.Fingerprint + `","edits":[{"kind":"reweight","node":1,"costNs":10}],"bogus":1}`,
		"bad hex":       `{"baseFingerprint":"zz","edits":[{"kind":"reweight","node":1,"costNs":10}]}`,
	} {
		resp = post(t, ts.URL+"/v1/place/delta", []byte(raw))
		if data := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", name, resp.StatusCode, data)
		}
	}
}

// TestDeltaNeverShadowsColdEntry is the key-separation regression
// test: after a delta solve for graph G', a cold /v1/place of G' must
// miss the cache (the delta result lives under the delta namespace)
// and produce its own entry under the cold key — and both entries then
// coexist.
func TestDeltaNeverShadowsColdEntry(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	opts := fastOptions()
	g, body := layeredBody(t, 9, opts)

	resp := post(t, ts.URL+"/v1/place", body)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: %d %s", resp.StatusCode, data)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}

	edits := []incr.Edit{{Kind: incr.KindReweight, Node: 5, CostNs: 3_000_000}}
	resp = post(t, ts.URL+"/v1/place/delta", deltaBody(t, pr.Fingerprint, edits, opts))
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d %s", resp.StatusCode, data)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}

	// Cold-place the edited graph: the delta entry must not answer it.
	edited, _, err := incr.ApplyAll(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	editedBody, err := json.Marshal(PlaceRequest{Graph: edited, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/v1/place", editedBody)
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold place of edited graph: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Pesto-Cache"); got != "miss" {
		t.Fatalf("cold place of edited graph served X-Pesto-Cache %q, want miss", got)
	}
	var cold PlaceResponse
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.CacheKey == dr.CacheKey {
		t.Fatal("cold key equals delta key")
	}
	coldKey, err := hex32(cold.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	deltaKey, err := hex32(dr.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	if !s.cache.peek(coldKey) || !s.cache.peek(deltaKey) {
		t.Fatal("cold and delta entries do not coexist in the cache")
	}

	// The unit-level statement of the same property.
	normalized, err := opts.normalized(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseFP, _ := hex32(pr.Fingerprint)
	if deltaCacheKey(baseFP, incr.Fingerprint(edits), normalized) == normalized.cacheKey(edited.Fingerprint()) {
		t.Fatal("deltaCacheKey collides with the cold cacheKey")
	}
}

// TestDeltaNearHit: when the exact edited graph was already
// cold-solved under the same options, the delta route answers from
// that entry without running a solve.
func TestDeltaNearHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	opts := fastOptions()
	g, body := layeredBody(t, 11, opts)

	resp := post(t, ts.URL+"/v1/place", body)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: %d %s", resp.StatusCode, data)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	edits := []incr.Edit{{Kind: incr.KindReweight, Node: 8, CostNs: 2_500_000}}
	edited, _, err := incr.ApplyAll(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	editedBody, err := json.Marshal(PlaceRequest{Graph: edited, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/v1/place", editedBody)
	if data := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-solve edited graph: %d %s", resp.StatusCode, data)
	}
	fillsBefore, _, _ := s.CacheStats()

	resp = post(t, ts.URL+"/v1/place/delta", deltaBody(t, pr.Fingerprint, edits, opts))
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d %s", resp.StatusCode, data)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.FallbackReason != "near-hit" || dr.Warm {
		t.Fatalf("want a near-hit answer, got %+v", dr)
	}
	// The near-hit fill registered (one new delta-key entry) but ran no
	// placement: the solve histogram is what a real solve would bump,
	// and CacheStats fills only count fill functions started — exactly
	// one, for the delta key itself.
	if fills, _, _ := s.CacheStats(); fills != fillsBefore+1 {
		t.Fatalf("near-hit started %d fills, want 1", fills-fillsBefore)
	}
	if err := dr.Plan.Validate(edited, mustNormalize(t, opts, s.cfg).system()); err != nil {
		t.Fatalf("near-hit plan invalid: %v", err)
	}
}

func mustNormalize(t *testing.T, o RequestOptions, cfg Config) RequestOptions {
	t.Helper()
	n, err := o.normalized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCacheImportRejectsMismatchedBody holds the warm-sync import to
// the no-shadowing rule: an entry whose body embeds a different cache
// key than it is being installed under — a delta plan re-filed under a
// cold key, or any forged pairing — is rejected wholesale.
func TestCacheImportRejectsMismatchedBody(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/place", testBody(t, 1, fastOptions()))
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: %d %s", resp.StatusCode, data)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}

	forgedKey := hexFP([32]byte{0xde, 0xad, 0xbe, 0xef})
	imp, err := json.Marshal(CacheExport{Entries: []CacheEntryWire{{
		Key:         forgedKey, // body says pr.CacheKey; install says otherwise
		Fingerprint: pr.Fingerprint,
		Body:        json.RawMessage(data),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/v1/cache/import", imp)
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged import: %d %s", resp.StatusCode, body)
	}
	key, err := hex32(forgedKey)
	if err != nil {
		t.Fatal(err)
	}
	if s.cache.peek(key) {
		t.Fatal("forged entry was installed")
	}
}

// TestBaseStoreEviction: the base store is a bounded LRU; an evicted
// base turns deltas against it into 404s without touching the plan
// cache.
func TestBaseStoreEviction(t *testing.T) {
	st := newBaseStore(2)
	var fps [3][32]byte
	for i := range fps {
		fps[i][0] = byte(i + 1)
		st.put(fps[i], nil, sim.Plan{}, 0, 0)
	}
	if st.len() != 2 {
		t.Fatalf("len %d, want 2", st.len())
	}
	if _, ok := st.get(fps[0]); ok {
		t.Fatal("oldest base survived eviction")
	}
	for i := 1; i < 3; i++ {
		if _, ok := st.get(fps[i]); !ok {
			t.Fatalf("base %d evicted too early", i)
		}
	}
	// A refresh moves a base to the front.
	st.get(fps[1])
	st.put(fps[0], nil, sim.Plan{}, 0, 0)
	if _, ok := st.get(fps[2]); ok {
		t.Fatal("refreshed base was evicted instead of the cold one")
	}
	if _, ok := st.get(fps[1]); !ok {
		t.Fatal("refreshed base evicted")
	}
}
