package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pesto/internal/gen"
)

// benchGraphBody builds a request body big enough that a cold solve is
// real work: a layered graph, with the budget selecting the rung
// (500ms → refine, 2500ms → exact ILP).
func benchGraphBody(tb testing.TB, budgetMs int64) []byte {
	tb.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 7, Nodes: 96})
	if err != nil {
		tb.Fatal(err)
	}
	body, err := json.Marshal(PlaceRequest{Graph: g, Options: RequestOptions{BudgetMs: budgetMs}})
	if err != nil {
		tb.Fatal(err)
	}
	return body
}

func benchPost(tb testing.TB, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	tb.Helper()
	resp, err := http.Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	data := readAllB(tb, resp)
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	return resp, data
}

func readAllB(tb testing.TB, resp *http.Response) []byte {
	tb.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkServiceCacheHit measures the full HTTP round-trip of a
// cache hit: decode, fingerprint, lookup, replay.
func BenchmarkServiceCacheHit(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())
	body := benchGraphBody(b, 2500)
	benchPost(b, ts, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := benchPost(b, ts, body)
		if resp.Header.Get("X-Pesto-Cache") != "hit" {
			b.Fatal("benchmark request missed the cache")
		}
	}
}

// BenchmarkServiceColdSolve measures the uncached solve path
// (NoCache: true) for the same graph and budget.
func BenchmarkServiceColdSolve(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 7, Nodes: 96})
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(PlaceRequest{Graph: g, Options: RequestOptions{BudgetMs: 2500, NoCache: true}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, body)
	}
}

// TestCacheHitSpeedup is the acceptance bound: serving a cached plan
// must be at least 100x faster than solving it cold.
func TestCacheHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())
	// The exact-ILP rung is the production default (generous budgets);
	// it is also what makes a cold solve expensive enough that the
	// 100x bound is meaningful rather than a timing accident.
	body := benchGraphBody(t, 2500)

	coldStart := time.Now()
	resp, _ := benchPost(t, ts, body)
	cold := time.Since(coldStart)
	if resp.Header.Get("X-Pesto-Cache") != "miss" {
		t.Fatal("first request did not miss")
	}

	const hits = 50
	hitStart := time.Now()
	for i := 0; i < hits; i++ {
		resp, _ := benchPost(t, ts, body)
		if resp.Header.Get("X-Pesto-Cache") != "hit" {
			t.Fatal("request missed after warm-up")
		}
	}
	hit := time.Since(hitStart) / hits

	if hit <= 0 {
		t.Fatalf("implausible hit latency %v", hit)
	}
	speedup := float64(cold) / float64(hit)
	t.Logf("cold=%v hit=%v speedup=%.0fx", cold, hit, speedup)
	if speedup < 100 {
		t.Fatalf("cache hit speedup %.1fx < 100x (cold %v, hit %v)", speedup, cold, hit)
	}
}
