package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pesto/internal/gen"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, deadline time.Duration, cond func() bool, what string) {
	t.Helper()
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDrainFlipMidRequestConsistent503 flips drain while requests are
// in flight, under -race. beginSolve is the single drain gate: every
// request either completes 200 (it registered before the flip and
// Drain waits for it) or takes the one consistent 503 "draining" path
// — there is no window where a request slips past a handler-level
// check and then dies somewhere else.
func TestDrainFlipMidRequestConsistent503(t *testing.T) {
	s2 := New(Config{MaxConcurrentSolves: 2, QueueDepth: 64})
	ts2 := newHTTPServer(t, s2)

	const clients = 16
	bodies := make([][]byte, clients)
	for i := range bodies {
		// Distinct graphs: every request is a cache miss, so every
		// request crosses the solve gate.
		bodies[i] = testBody(t, int64(i+1), fastOptions())
	}

	var wg sync.WaitGroup
	results := make([]int, clients)
	bodiesOut := make([][]byte, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp := post(t, ts2.URL+"/v1/place", bodies[i])
			bodiesOut[i] = readAll(t, resp)
			results[i] = resp.StatusCode
		}(i)
	}
	close(start)
	// Flip drain while the requests race through the gate.
	time.Sleep(2 * time.Millisecond)
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	for i, code := range results {
		switch code {
		case http.StatusOK:
			// Registered before the flip; Drain waited for it.
		case http.StatusServiceUnavailable:
			var er ErrorResponse
			if err := json.Unmarshal(bodiesOut[i], &er); err != nil {
				t.Fatalf("client %d: 503 body not ErrorResponse: %s", i, bodiesOut[i])
			}
			if !bytes.Contains(bodiesOut[i], []byte("draining")) {
				t.Fatalf("client %d: 503 body does not cite draining: %s", i, bodiesOut[i])
			}
			if er.RetryAfterSec <= 0 {
				t.Fatalf("client %d: draining 503 without retryAfterSec: %s", i, bodiesOut[i])
			}
		default:
			t.Fatalf("client %d: status %d, want 200 or a consistent 503 (body %s)", i, code, bodiesOut[i])
		}
	}
}

// TestDrainServesCacheHits pins the post-unification semantics: drain
// refuses new solves but keeps answering from the cache — a draining
// replica stays useful to the fleet until its plans are synced away.
func TestDrainServesCacheHits(t *testing.T) {
	s := New(Config{})
	ts := newHTTPServer(t, s)
	body := testBody(t, 1, fastOptions())

	resp := post(t, ts.URL+"/v1/place", body)
	warm := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: %d %s", resp.StatusCode, warm)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp = post(t, ts.URL+"/v1/place", body)
	hit := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit while draining: %d %s", resp.StatusCode, hit)
	}
	if got := resp.Header.Get("X-Pesto-Cache"); got != "hit" {
		t.Fatalf("X-Pesto-Cache %q while draining, want hit", got)
	}
	if !bytes.Equal(warm, hit) {
		t.Fatal("drained cache hit not byte-identical")
	}
	// A fresh graph still takes the single 503 path.
	resp = post(t, ts.URL+"/v1/place", testBody(t, 99, fastOptions()))
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(data, []byte("draining")) {
		t.Fatalf("fresh solve while draining: %d %s", resp.StatusCode, data)
	}
}

// newHTTPServer is newTestServer without the drain-on-cleanup (for
// tests that drain mid-test themselves).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestClientDisconnectFreesSolverSlot holds the satellite contract:
// an abandoned request's cancellation propagates into the ladder
// solve, the solver slot frees, and no goroutine leaks. The solve is
// given an ILP-sized budget so it cannot finish on its own within the
// test.
func TestClientDisconnectFreesSolverSlot(t *testing.T) {
	s := New(Config{MaxConcurrentSolves: 1, QueueDepth: 4})
	ts := newHTTPServer(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 11, Nodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := json.Marshal(PlaceRequest{Graph: g, Options: RequestOptions{BudgetMs: 30_000}})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/place", bytes.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			readAll(t, resp)
		}
		errCh <- err
	}()
	// Let the solve reach the solver slot, then hang up.
	waitFor(t, 10*time.Second, func() bool { return s.admit.inFlight() == 1 }, "solve to start")
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error %v, want canceled", err)
	}

	// The abandoned fill must cancel: slot freed, failed fill removed
	// from the cache, goroutines unwound.
	waitFor(t, 10*time.Second, func() bool { return s.admit.inFlight() == 0 }, "solver slot to free")
	waitFor(t, 10*time.Second, func() bool { return s.cache.len() == 0 }, "abandoned fill to be dropped")
	waitFor(t, 10*time.Second, func() bool { return runtime.NumGoroutine() <= before+2 }, "goroutines to unwind")

	// The freed slot serves the next request normally.
	resp := post(t, ts.URL+"/v1/place", testBody(t, 12, fastOptions()))
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up solve: %d %s", resp.StatusCode, data)
	}
}

// TestLeaderCancelPromotesFollower: the singleflight fill survives the
// first requester hanging up as long as any follower still wants the
// answer — the fill's interest context is refcounted, not tied to the
// leader.
func TestLeaderCancelPromotesFollower(t *testing.T) {
	c := newPlanCache(8)
	key := [32]byte{7}
	block := make(chan struct{})
	var fillCancelled atomic.Bool
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.getOrFill(leaderCtx, key, key, func(ctx context.Context) ([]byte, error) {
			<-block
			if ctx.Err() != nil {
				fillCancelled.Store(true)
				return nil, ctx.Err()
			}
			return []byte("answer"), nil
		})
		leaderDone <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return c.len() == 1 }, "leader to install entry")

	followerDone := make(chan struct{})
	var followerBody []byte
	var followerErr error
	go func() {
		defer close(followerDone)
		followerBody, _, followerErr = c.getOrFill(context.Background(), key, key, func(context.Context) ([]byte, error) {
			return nil, errors.New("follower must not fill")
		})
	}()
	// Give the follower time to join the entry, then kill the leader.
	waitFor(t, 5*time.Second, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		e := c.entries[key]
		return e != nil && e.interest == 2
	}, "follower to join")
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err %v, want canceled", err)
	}
	close(block)
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower err: %v (leader cancellation strands followers)", followerErr)
	}
	if !bytes.Equal(followerBody, []byte("answer")) {
		t.Fatalf("follower body %q", followerBody)
	}
	if fillCancelled.Load() {
		t.Fatal("fill context cancelled despite a live follower")
	}
	if got := c.fills.Load(); got != 1 {
		t.Fatalf("fills %d, want 1", got)
	}
}

// TestRetryAfterSemantics pins the machine-readable overload contract
// the fleet router depends on: 429 (saturated) and 503 (draining)
// both carry Retry-After as a header of parseable positive seconds
// and the same value in the body's retryAfterSec.
func TestRetryAfterSemantics(t *testing.T) {
	check := func(t *testing.T, resp *http.Response, data []byte, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("status %d, want %d (%s)", resp.StatusCode, wantCode, data)
		}
		ra := resp.Header.Get("Retry-After")
		sec, err := strconv.Atoi(ra)
		if err != nil || sec <= 0 {
			t.Fatalf("Retry-After %q not parseable positive seconds (%v)", ra, err)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("body not ErrorResponse: %s", data)
		}
		if er.RetryAfterSec != int64(sec) {
			t.Fatalf("body retryAfterSec %d != header %d", er.RetryAfterSec, sec)
		}
	}

	t.Run("saturated-429", func(t *testing.T) {
		s, ts := newTestServer(t, Config{MaxConcurrentSolves: 1, QueueDepth: -1, RetryAfter: 2 * time.Second})
		s.admit.slots <- struct{}{}
		defer func() { <-s.admit.slots }()
		resp := post(t, ts.URL+"/v1/place", testBody(t, 1, RequestOptions{BudgetMs: 50, NoCache: true}))
		check(t, resp, readAll(t, resp), http.StatusTooManyRequests)
	})

	t.Run("draining-503", func(t *testing.T) {
		s := New(Config{RetryAfter: 3 * time.Second})
		ts := newHTTPServer(t, s)
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		resp := post(t, ts.URL+"/v1/place", testBody(t, 2, fastOptions()))
		check(t, resp, readAll(t, resp), http.StatusServiceUnavailable)
	})
}

// TestCacheExportImport drives the warm-sync protocol end to end over
// HTTP: solve on one server, export its shard, import into a fresh
// server, and require byte-identical cache hits there without a single
// local solve.
func TestCacheExportImport(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	const graphs = 4
	want := make(map[string][]byte, graphs)
	var bodies [][]byte
	for i := 1; i <= graphs; i++ {
		body := testBody(t, int64(i), fastOptions())
		bodies = append(bodies, body)
		resp := post(t, tsA.URL+"/v1/place", body)
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, data)
		}
		var pr PlaceResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		want[pr.CacheKey] = data
	}

	// lo == hi exports the full ring.
	resp, err := http.Get(tsA.URL + "/v1/cache/export?lo=0&hi=0")
	if err != nil {
		t.Fatal(err)
	}
	exported := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d %s", resp.StatusCode, exported)
	}
	var ce CacheExport
	if err := json.Unmarshal(exported, &ce); err != nil {
		t.Fatal(err)
	}
	if len(ce.Entries) != graphs {
		t.Fatalf("exported %d entries, want %d", len(ce.Entries), graphs)
	}

	sB, tsB := newTestServer(t, Config{})
	resp = post(t, tsB.URL+"/v1/cache/import", exported)
	impBody := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import: %d %s", resp.StatusCode, impBody)
	}
	var ir CacheImportResult
	if err := json.Unmarshal(impBody, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Installed != graphs || ir.Skipped != 0 {
		t.Fatalf("import installed=%d skipped=%d, want %d/0", ir.Installed, ir.Skipped, graphs)
	}

	// Every request on B is now a hit, byte-identical to A's answer,
	// with zero solves run on B.
	for i, body := range bodies {
		resp := post(t, tsB.URL+"/v1/place", body)
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay %d: %d %s", i, resp.StatusCode, data)
		}
		if got := resp.Header.Get("X-Pesto-Cache"); got != "hit" {
			t.Fatalf("replay %d: X-Pesto-Cache %q, want hit", i, got)
		}
		var pr PlaceResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want[pr.CacheKey], data) {
			t.Fatalf("replay %d not byte-identical to origin:\n%s\nvs\n%s", i, want[pr.CacheKey], data)
		}
	}
	if fills, _, _ := sB.CacheStats(); fills != 0 {
		t.Fatalf("server B ran %d solves, want 0", fills)
	}

	// Re-importing is idempotent: everything is skipped.
	resp = post(t, tsB.URL+"/v1/cache/import", exported)
	impBody = readAll(t, resp)
	if err := json.Unmarshal(impBody, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Installed != 0 || ir.Skipped != graphs {
		t.Fatalf("re-import installed=%d skipped=%d, want 0/%d", ir.Installed, ir.Skipped, graphs)
	}
}

// TestCacheExportShardFiltering checks the arc semantics the ring
// relies on: an entry is exported exactly when its fingerprint's
// RingPoint lies on (lo, hi], with wraparound, and a sliced keyspace
// re-unions to the whole.
func TestCacheExportShardFiltering(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const graphs = 6
	points := make(map[string]uint64)
	for i := 1; i <= graphs; i++ {
		g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: int64(i), Nodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		points[fmt.Sprintf("%x", g.Fingerprint())] = RingPoint(g.Fingerprint())
		resp := post(t, ts.URL+"/v1/place", testBody(t, int64(i), fastOptions()))
		if data := readAll(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, data)
		}
	}
	export := func(lo, hi uint64) []CacheEntryWire {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/cache/export?lo=%d&hi=%d", ts.URL, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("export: %d %s", resp.StatusCode, data)
		}
		var ce CacheExport
		if err := json.Unmarshal(data, &ce); err != nil {
			t.Fatal(err)
		}
		return ce.Entries
	}
	// Split the ring at an arbitrary point: the two arcs must partition
	// the entries.
	const cut = uint64(1) << 63
	loHalf := export(cut, 0) // (cut, 0] wraps through max
	hiHalf := export(0, cut) // (0, cut]
	if len(loHalf)+len(hiHalf) != graphs {
		t.Fatalf("arcs do not partition: %d + %d != %d", len(loHalf), len(hiHalf), graphs)
	}
	for _, e := range hiHalf {
		if p := points[e.Fingerprint]; !(p > 0 && p <= cut) {
			t.Fatalf("entry %s (point %d) exported on wrong arc", e.Fingerprint, p)
		}
	}
	// Malformed queries are 400, not panics.
	resp, err := http.Get(ts.URL + "/v1/cache/export?lo=x&hi=0")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lo: status %d, want 400", resp.StatusCode)
	}
}
