package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// cacheEntry is one content-addressed plan. An entry is inserted
// before its fill completes so concurrent requests for the same key
// coalesce onto one solve (singleflight): the fill runs on its own
// goroutine and every requester — including the one that triggered it
// — just waits on ready. The fill's context stays alive while at
// least one requester is still interested; when the last waiter
// abandons (client disconnect, deadline), the fill is cancelled so an
// orphaned solve cannot hold a solver slot.
type cacheEntry struct {
	key  [32]byte
	fp   [32]byte // graph fingerprint: the fleet ring's shard coordinate
	elem *list.Element
	// ready is closed once body/err are final.
	ready chan struct{}
	// done is written under the cache mutex strictly before ready is
	// closed; the evictor reads it under the same mutex, so it never
	// needs to poll the channel.
	done bool
	body []byte
	err  error
	// interest counts requesters currently waiting on ready. When it
	// drops to zero before done, cancelFill aborts the solve: nobody is
	// left to consume the answer. Guarded by the cache mutex.
	interest   int
	cancelFill context.CancelFunc
}

// planCache is the content-addressed plan store: a bounded LRU map
// from cache key (graph fingerprint + normalized options) to the
// serialized response body, with singleflight fill. Hits return the
// stored bytes verbatim, which is what makes repeated identical
// requests byte-identical.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[32]byte]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	// fills counts fill functions started — the singleflight
	// observable: after any mix of concurrent requests with no
	// evictions, fills == distinct keys.
	fills atomic.Int64
	// evictions counts entries dropped by the LRU bound.
	evictions atomic.Int64
	// imports counts entries installed by bulk import (fleet warm-sync).
	imports atomic.Int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[[32]byte]*cacheEntry, capacity),
		lru:     list.New(),
	}
}

// getOrFill returns the body stored under key, running fill to produce
// it on first request. Exactly one fill runs per live key regardless
// of concurrency; it executes on a dedicated goroutine under fillCtx,
// which is cancelled only when every waiter has abandoned the key —
// so a singleflight leader hanging up never strands its followers
// (the solve keeps running for them), while a solve nobody wants
// anymore is cancelled and its solver slot freed.
// A failed fill is not cached — the entry is removed so a later
// request retries — but every follower already waiting shares the
// fill's error rather than stampeding the solver.
//
// hit reports whether the body came from the cache: false only for the
// requester that triggered fill.
func (c *planCache) getOrFill(ctx context.Context, key, fp [32]byte, fill func(ctx context.Context) ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		if e.done {
			c.mu.Unlock()
			return e.body, true, e.err
		}
		e.interest++
		c.mu.Unlock()
		return c.wait(ctx, e, true)
	}
	fillCtx, cancel := context.WithCancel(context.Background())
	e := &cacheEntry{key: key, fp: fp, ready: make(chan struct{}), interest: 1, cancelFill: cancel}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	c.fills.Add(1)
	go func() {
		defer cancel()
		body, err := fill(fillCtx)
		c.mu.Lock()
		e.body, e.err = body, err
		e.done = true
		if err != nil {
			c.removeLocked(e)
		}
		c.mu.Unlock()
		close(e.ready)
	}()
	return c.wait(ctx, e, false)
}

// wait blocks until the entry's fill completes or ctx ends. Leaving
// early decrements the entry's interest count under the cache mutex;
// the waiter that drops it to zero cancels the fill (still under the
// mutex, so a new requester arriving concurrently either raises the
// count first — and keeps the fill alive — or finds the entry already
// failed and retries).
func (c *planCache) wait(ctx context.Context, e *cacheEntry, hit bool) ([]byte, bool, error) {
	select {
	case <-e.ready:
		c.mu.Lock()
		e.interest--
		c.mu.Unlock()
		return e.body, hit, e.err
	case <-ctx.Done():
		c.mu.Lock()
		e.interest--
		if e.interest == 0 && !e.done {
			e.cancelFill()
		}
		c.mu.Unlock()
		return nil, false, ctx.Err()
	}
}

// lookup returns the completed body stored under key, if any,
// refreshing its LRU position. Unlike getOrFill it never waits on an
// in-flight fill and never starts one — the delta near-hit check uses
// it to reuse an existing cold solve without blocking.
func (c *planCache) lookup(key [32]byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.done || e.err != nil {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.body, true
}

// peek reports whether key is cached and filled, without touching LRU
// order. The health endpoint and tests use it.
func (c *planCache) peek(key [32]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.done && e.err == nil
}

// len reports the number of live entries (including in-flight fills).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// exportShard returns the completed entries whose graph fingerprint
// ring-point lies in the arc (lo, hi] — wrapped when lo >= hi — in
// deterministic (LRU back-to-front, i.e. coldest-first) order. The
// fleet warm-sync protocol pulls these from a rejoining replica's ring
// neighbors. Export does not touch LRU order: a peer syncing a shard
// must not look like traffic.
func (c *planCache) exportShard(lo, hi uint64) []exportedEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []exportedEntry
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if !e.done || e.err != nil {
			continue
		}
		if !arcContains(lo, hi, RingPoint(e.fp)) {
			continue
		}
		out = append(out, exportedEntry{key: e.key, fp: e.fp, body: e.body})
	}
	return out
}

// install inserts one completed entry (fleet warm-sync import). An
// existing entry for the key — filled, filling, or failed-and-racing —
// is left untouched: local solves outrank synced copies. It reports
// whether the entry was installed.
func (c *planCache) install(key, fp [32]byte, body []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &cacheEntry{key: key, fp: fp, ready: make(chan struct{}), done: true, body: body}
	close(e.ready)
	// Imported entries enter at the cold end: they are restored state,
	// not observed traffic, and must not evict genuinely hot entries.
	e.elem = c.lru.PushBack(e)
	c.entries[key] = e
	c.imports.Add(1)
	c.evictLocked()
	return true
}

// exportedEntry is one cache entry leaving through exportShard.
type exportedEntry struct {
	key  [32]byte
	fp   [32]byte
	body []byte
}

// arcContains reports whether point p lies on the ring arc (lo, hi].
// lo == hi denotes the full ring (a single-replica fleet owns
// everything); lo > hi wraps through zero.
func arcContains(lo, hi, p uint64) bool {
	if lo == hi {
		return true
	}
	if lo < hi {
		return lo < p && p <= hi
	}
	return p > lo || p <= hi
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its bound. In-flight fills are never evicted — their
// waiters hold references — so the cache can transiently exceed cap by
// the number of concurrent distinct fills.
func (c *planCache) evictLocked() {
	for len(c.entries) > c.cap {
		victim := (*cacheEntry)(nil)
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cacheEntry); e.done {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything over the bound is in flight
		}
		c.removeLocked(victim)
		c.evictions.Add(1)
	}
}

// removeLocked detaches an entry from both indexes. Idempotent: a
// fill finishing after its entry was evicted must not corrupt the
// list.
func (c *planCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}
