package service

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// cacheEntry is one content-addressed plan. An entry is inserted
// before its fill completes so concurrent requests for the same key
// coalesce onto one solve (singleflight): the first requester becomes
// the leader and fills the entry; followers block on ready.
type cacheEntry struct {
	key   [32]byte
	elem  *list.Element
	ready chan struct{} // closed once body/err are final
	// done is written under the cache mutex strictly before ready is
	// closed; the evictor reads it under the same mutex, so it never
	// needs to poll the channel.
	done bool
	body []byte
	err  error
}

// planCache is the content-addressed plan store: a bounded LRU map
// from cache key (graph fingerprint + normalized options) to the
// serialized response body, with singleflight fill. Hits return the
// stored bytes verbatim, which is what makes repeated identical
// requests byte-identical.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[32]byte]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	// fills counts fill functions started — the singleflight
	// observable: after any mix of concurrent requests with no
	// evictions, fills == distinct keys.
	fills atomic.Int64
	// evictions counts entries dropped by the LRU bound.
	evictions atomic.Int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[[32]byte]*cacheEntry, capacity),
		lru:     list.New(),
	}
}

// getOrFill returns the body stored under key, running fill to produce
// it on first request. Exactly one fill runs per live key regardless
// of concurrency; followers wait for the leader (or their ctx).
// A failed fill is not cached — the entry is removed so a later
// request retries — but every follower already waiting shares the
// leader's error rather than stampeding the solver.
//
// hit reports whether the body came from the cache: false only for the
// leader that ran fill.
func (c *planCache) getOrFill(ctx context.Context, key [32]byte, fill func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.body, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	c.fills.Add(1)
	body, err = fill()

	c.mu.Lock()
	e.body, e.err = body, err
	e.done = true
	if err != nil {
		c.removeLocked(e)
	}
	c.mu.Unlock()
	close(e.ready)
	return body, false, err
}

// peek reports whether key is cached and filled, without touching LRU
// order. The health endpoint and tests use it.
func (c *planCache) peek(key [32]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.done && e.err == nil
}

// len reports the number of live entries (including in-flight fills).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its bound. In-flight fills are never evicted — their
// leaders and followers hold references — so the cache can transiently
// exceed cap by the number of concurrent distinct fills.
func (c *planCache) evictLocked() {
	for len(c.entries) > c.cap {
		victim := (*cacheEntry)(nil)
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cacheEntry); e.done {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything over the bound is in flight
		}
		c.removeLocked(victim)
		c.evictions.Add(1)
	}
}

// removeLocked detaches an entry from both indexes. Idempotent: a
// leader finishing after its entry was evicted must not corrupt the
// list.
func (c *planCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}
