package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"pesto/internal/flight"
	"pesto/internal/graph"
	"pesto/internal/placement"
)

// ReplayResult is the outcome of re-executing a flight-recorder
// bundle. Match reports whether the replay reproduced the captured
// response byte-for-byte (or, for verify-failure bundles, reproduced
// the verification failure).
type ReplayResult struct {
	Match bool
	// Stage is the ladder rung the replayed solve was served by
	// ("verify-failure" when the bundle's failure reproduced).
	Stage string
	// Got and Want are the replayed and captured response bytes, for
	// diffing a mismatch.
	Got, Want []byte
}

// ReplayBundle re-executes a captured repro bundle: same graph, same
// normalized options, same seed. Solves are deterministic at any
// worker count, so parallel only changes speed, never bytes; zero
// means GOMAXPROCS.
func ReplayBundle(ctx context.Context, b flight.Bundle, parallel int) (ReplayResult, error) {
	if !b.Replayable {
		return ReplayResult{}, fmt.Errorf("bundle trigger %q carries no graph/options pair to replay", b.Trigger)
	}
	g, err := graph.ReadJSON(bytes.NewReader(b.Graph))
	if err != nil {
		return ReplayResult{}, fmt.Errorf("decode bundle graph: %w", err)
	}
	var opts RequestOptions
	if err := json.Unmarshal(b.Options, &opts); err != nil {
		return ReplayResult{}, fmt.Errorf("decode bundle options: %w", err)
	}
	cfg := Config{Parallel: parallel}.withDefaults()
	if budget := opts.budget(); budget > cfg.MaxBudget {
		// The capturing server may have allowed a bigger budget than
		// our defaults; clamping here would change the entry rung and
		// break byte identity.
		cfg.MaxBudget = budget
	}
	opts, err = opts.normalized(cfg)
	if err != nil {
		return ReplayResult{}, fmt.Errorf("normalize bundle options: %w", err)
	}
	fp := g.Fingerprint()
	key := opts.cacheKey(fp)
	res, err := placement.PlaceMultiGPU(ctx, g, opts.system(), opts.placeOptions(cfg))
	if err != nil {
		if b.Trigger == "verify-failure" && errors.Is(err, placement.ErrVerification) && len(b.Response) == 0 {
			return ReplayResult{Match: true, Stage: "verify-failure"}, nil
		}
		return ReplayResult{}, err
	}
	got, err := json.Marshal(placeResponse(fp, key, res))
	if err != nil {
		return ReplayResult{}, err
	}
	// The bundle writer indents its JSON, re-indenting the embedded
	// response; compact it back so the comparison is against the exact
	// bytes the server marshaled.
	want := compactJSON(b.Response)
	return ReplayResult{
		Match: bytes.Equal(got, want),
		Stage: res.Provenance.Stage.String(),
		Got:   got,
		Want:  want,
	}, nil
}

func compactJSON(b []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		return b
	}
	return buf.Bytes()
}
