package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// solveBuckets are the upper bounds (seconds) of the solve-latency
// histogram. They bracket the serving regimes: cache hits and
// heuristic-rung solves (≤ 25ms), refinement-rung solves (≤ 1s), and
// ILP-rung solves (seconds to tens of seconds).
var solveBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}

// metrics is the daemon's instrumentation: counters and one histogram
// behind a mutex, plus live gauges read at scrape time. The exposition
// is the Prometheus text format, hand-rolled — no dependencies — with
// every label set emitted in sorted order so consecutive scrapes of an
// idle server are byte-identical.
type metrics struct {
	mu sync.Mutex
	// requests[endpoint][outcome] counts finished requests.
	requests map[string]map[string]int64
	// cacheEvents[event] counts hit / miss / evict.
	cacheEvents map[string]int64
	// planStages[stage] counts served plans by degradation-ladder rung
	// (provenance).
	planStages map[string]int64
	// Solve-latency histogram (cumulative buckets + sum + count).
	solveBucketN [10]int64 // len(solveBuckets) + 1 for +Inf
	solveSum     float64
	solveCount   int64

	// Gauges read live at scrape time.
	queueDepth   func() int64
	inFlight     func() int64
	cacheEntries func() int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:    make(map[string]map[string]int64),
		cacheEvents: make(map[string]int64),
		planStages:  make(map[string]int64),
	}
}

func (m *metrics) request(endpoint, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byOutcome := m.requests[endpoint]
	if byOutcome == nil {
		byOutcome = make(map[string]int64)
		m.requests[endpoint] = byOutcome
	}
	byOutcome[outcome]++
}

func (m *metrics) cacheEvent(event string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheEvents[event]++
}

func (m *metrics) planServed(stage string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planStages[stage]++
}

func (m *metrics) observeSolve(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := len(solveBuckets) // +Inf
	for i, ub := range solveBuckets {
		if s <= ub {
			idx = i
			break
		}
	}
	m.solveBucketN[idx]++
	m.solveSum += s
	m.solveCount++
}

// write emits the Prometheus text exposition.
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP pestod_requests_total Finished HTTP requests by endpoint and outcome.")
	fmt.Fprintln(w, "# TYPE pestod_requests_total counter")
	for _, ep := range sortedKeys(m.requests) {
		byOutcome := m.requests[ep]
		for _, oc := range sortedKeys(byOutcome) {
			fmt.Fprintf(w, "pestod_requests_total{endpoint=%q,outcome=%q} %d\n", ep, oc, byOutcome[oc])
		}
	}

	fmt.Fprintln(w, "# HELP pestod_cache_events_total Plan-cache events (hit, miss, evict).")
	fmt.Fprintln(w, "# TYPE pestod_cache_events_total counter")
	for _, ev := range sortedKeys(m.cacheEvents) {
		fmt.Fprintf(w, "pestod_cache_events_total{event=%q} %d\n", ev, m.cacheEvents[ev])
	}

	fmt.Fprintln(w, "# HELP pestod_plans_total Served plans by degradation-ladder rung.")
	fmt.Fprintln(w, "# TYPE pestod_plans_total counter")
	for _, st := range sortedKeys(m.planStages) {
		fmt.Fprintf(w, "pestod_plans_total{stage=%q} %d\n", st, m.planStages[st])
	}

	fmt.Fprintln(w, "# HELP pestod_queue_depth Requests waiting for a solver slot.")
	fmt.Fprintln(w, "# TYPE pestod_queue_depth gauge")
	fmt.Fprintf(w, "pestod_queue_depth %d\n", gauge(m.queueDepth))
	fmt.Fprintln(w, "# HELP pestod_inflight_solves Solves currently running.")
	fmt.Fprintln(w, "# TYPE pestod_inflight_solves gauge")
	fmt.Fprintf(w, "pestod_inflight_solves %d\n", gauge(m.inFlight))
	fmt.Fprintln(w, "# HELP pestod_cache_entries Live plan-cache entries.")
	fmt.Fprintln(w, "# TYPE pestod_cache_entries gauge")
	fmt.Fprintf(w, "pestod_cache_entries %d\n", gauge(m.cacheEntries))

	fmt.Fprintln(w, "# HELP pestod_solve_duration_seconds Wall-clock latency of cache-miss solves.")
	fmt.Fprintln(w, "# TYPE pestod_solve_duration_seconds histogram")
	cum := int64(0)
	for i, ub := range solveBuckets {
		cum += m.solveBucketN[i]
		fmt.Fprintf(w, "pestod_solve_duration_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.solveBucketN[len(solveBuckets)]
	fmt.Fprintf(w, "pestod_solve_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "pestod_solve_duration_seconds_sum %g\n", m.solveSum)
	fmt.Fprintf(w, "pestod_solve_duration_seconds_count %d\n", m.solveCount)
}

func gauge(f func() int64) int64 {
	if f == nil {
		return 0
	}
	return f()
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
