package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// solveBuckets are the upper bounds (seconds) of the solve-latency
// histogram. They bracket the serving regimes: cache hits and
// heuristic-rung solves (≤ 25ms), refinement-rung solves (≤ 1s), and
// ILP-rung solves (seconds to tens of seconds).
var solveBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}

// metrics is the daemon's instrumentation: counters and one histogram
// behind a mutex, plus live gauges read at scrape time. The exposition
// is the Prometheus text format, hand-rolled — no dependencies — with
// every label set emitted in sorted order so consecutive scrapes of an
// idle server are byte-identical.
type metrics struct {
	mu sync.Mutex
	// requests[endpoint][outcome] counts finished requests.
	requests map[string]map[string]int64
	// cacheEvents[event] counts hit / miss / evict.
	cacheEvents map[string]int64
	// planStages[stage] counts served plans by degradation-ladder rung
	// (provenance).
	planStages map[string]int64
	// solveHist[stage] is the solve-latency histogram split by the
	// ladder rung that served the plan ("error" for failed solves).
	solveHist map[string]*solveHistogram
	// incrSolves[path] counts /v1/place/delta solves by how they were
	// answered: "warm" (partial re-place), "cold" (fallback solve),
	// "near-hit" (an exact cold solve of the edited graph was already
	// cached).
	incrSolves map[string]int64
	// incrDirtyGroups / incrGroups total the coarse groups re-solved
	// vs. processed by warm and cold delta solves; their ratio is the
	// fleet-wide dirty fraction.
	incrDirtyGroups int64
	incrGroups      int64
	// pipelinePlans[schedule] counts pipeline-regime plans by the
	// winning microbatch discipline.
	pipelinePlans map[string]int64
	// pipelineStages totals the stage counts of served pipeline plans;
	// pipelineBubbleSum/Count aggregate their bubble fractions (the
	// ratio is the fleet-wide mean bubble).
	pipelineStages      int64
	pipelineBubbleSum   float64
	pipelineBubbleCount int64
	// Solver-progress totals harvested from per-request recorders.
	bnbNodes   int64
	lpPivots   int64
	incumbents int64
	lpSolves   int64
	warmHits   int64
	warmMisses int64

	// Gauges read live at scrape time.
	queueDepth   func() int64
	inFlight     func() int64
	cacheEntries func() int64
	// sloSnapshot reads the SLO tracker's objectives (sorted by name);
	// flightStats reads the flight recorder's capture counters. Both
	// take only their owner's lock, never this one.
	sloSnapshot func() []sloSnapshot
	flightStats func() (captured int, droppedFiles int64, ringTotal uint64)
}

// solveHistogram is one cumulative-bucket latency histogram.
type solveHistogram struct {
	bucketN [10]int64 // len(solveBuckets) + 1 for +Inf
	sum     float64
	count   int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:      make(map[string]map[string]int64),
		cacheEvents:   make(map[string]int64),
		planStages:    make(map[string]int64),
		solveHist:     make(map[string]*solveHistogram),
		incrSolves:    make(map[string]int64),
		pipelinePlans: make(map[string]int64),
	}
}

// pipelinePlanServed records one pipeline-regime plan: the winning
// discipline, its stage count and its bubble fraction.
func (m *metrics) pipelinePlanServed(schedule string, stages int, bubble float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pipelinePlans[schedule]++
	m.pipelineStages += int64(stages)
	m.pipelineBubbleSum += bubble
	m.pipelineBubbleCount++
}

// incremental records one delta solve outcome and its coarse-group
// accounting.
func (m *metrics) incremental(path string, dirty, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.incrSolves[path]++
	m.incrDirtyGroups += dirty
	m.incrGroups += total
}

func (m *metrics) request(endpoint, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byOutcome := m.requests[endpoint]
	if byOutcome == nil {
		byOutcome = make(map[string]int64)
		m.requests[endpoint] = byOutcome
	}
	byOutcome[outcome]++
}

func (m *metrics) cacheEvent(event string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheEvents[event]++
}

func (m *metrics) planServed(stage string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planStages[stage]++
}

func (m *metrics) observeSolve(d time.Duration, stage string) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.solveHist[stage]
	if h == nil {
		h = &solveHistogram{}
		m.solveHist[stage] = h
	}
	idx := len(solveBuckets) // +Inf
	for i, ub := range solveBuckets {
		if s <= ub {
			idx = i
			break
		}
	}
	h.bucketN[idx]++
	h.sum += s
	h.count++
}

// solverProgress folds one request's solver counters into the totals.
// Zero deltas are the common case (cache hits, bad requests) and are
// skipped without taking the lock.
func (m *metrics) solverProgress(nodes, pivots, incumbents, solves, warmHits, warmMisses int64) {
	if nodes == 0 && pivots == 0 && incumbents == 0 && solves == 0 && warmHits == 0 && warmMisses == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bnbNodes += nodes
	m.lpPivots += pivots
	m.incumbents += incumbents
	m.lpSolves += solves
	m.warmHits += warmHits
	m.warmMisses += warmMisses
}

// write emits the Prometheus text exposition.
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP pestod_requests_total Finished HTTP requests by endpoint and outcome.")
	fmt.Fprintln(w, "# TYPE pestod_requests_total counter")
	for _, ep := range sortedKeys(m.requests) {
		byOutcome := m.requests[ep]
		for _, oc := range sortedKeys(byOutcome) {
			fmt.Fprintf(w, "pestod_requests_total{endpoint=%q,outcome=%q} %d\n", ep, oc, byOutcome[oc])
		}
	}

	fmt.Fprintln(w, "# HELP pestod_cache_events_total Plan-cache events (hit, miss, evict).")
	fmt.Fprintln(w, "# TYPE pestod_cache_events_total counter")
	for _, ev := range sortedKeys(m.cacheEvents) {
		fmt.Fprintf(w, "pestod_cache_events_total{event=%q} %d\n", ev, m.cacheEvents[ev])
	}

	fmt.Fprintln(w, "# HELP pestod_plans_total Served plans by degradation-ladder rung.")
	fmt.Fprintln(w, "# TYPE pestod_plans_total counter")
	for _, st := range sortedKeys(m.planStages) {
		fmt.Fprintf(w, "pestod_plans_total{stage=%q} %d\n", st, m.planStages[st])
	}

	fmt.Fprintln(w, "# HELP pestod_incremental_solves_total Delta solves by path (warm, cold, near-hit).")
	fmt.Fprintln(w, "# TYPE pestod_incremental_solves_total counter")
	for _, p := range sortedKeys(m.incrSolves) {
		fmt.Fprintf(w, "pestod_incremental_solves_total{path=%q} %d\n", p, m.incrSolves[p])
	}
	fmt.Fprintln(w, "# HELP pestod_incremental_dirty_groups_total Coarse groups re-solved by delta solves.")
	fmt.Fprintln(w, "# TYPE pestod_incremental_dirty_groups_total counter")
	fmt.Fprintf(w, "pestod_incremental_dirty_groups_total %d\n", m.incrDirtyGroups)
	fmt.Fprintln(w, "# HELP pestod_incremental_groups_total Coarse groups processed by delta solves.")
	fmt.Fprintln(w, "# TYPE pestod_incremental_groups_total counter")
	fmt.Fprintf(w, "pestod_incremental_groups_total %d\n", m.incrGroups)

	fmt.Fprintln(w, "# HELP pestod_pipeline_plans_total Pipeline-regime plans by winning microbatch schedule.")
	fmt.Fprintln(w, "# TYPE pestod_pipeline_plans_total counter")
	for _, sc := range sortedKeys(m.pipelinePlans) {
		fmt.Fprintf(w, "pestod_pipeline_plans_total{schedule=%q} %d\n", sc, m.pipelinePlans[sc])
	}
	fmt.Fprintln(w, "# HELP pestod_pipeline_stages_total Pipeline stages across served pipeline plans.")
	fmt.Fprintln(w, "# TYPE pestod_pipeline_stages_total counter")
	fmt.Fprintf(w, "pestod_pipeline_stages_total %d\n", m.pipelineStages)
	fmt.Fprintln(w, "# HELP pestod_pipeline_bubble_fraction Bubble fractions of served pipeline plans.")
	fmt.Fprintln(w, "# TYPE pestod_pipeline_bubble_fraction summary")
	fmt.Fprintf(w, "pestod_pipeline_bubble_fraction_sum %g\n", m.pipelineBubbleSum)
	fmt.Fprintf(w, "pestod_pipeline_bubble_fraction_count %d\n", m.pipelineBubbleCount)

	fmt.Fprintln(w, "# HELP pestod_queue_depth Requests waiting for a solver slot.")
	fmt.Fprintln(w, "# TYPE pestod_queue_depth gauge")
	fmt.Fprintf(w, "pestod_queue_depth %d\n", gauge(m.queueDepth))
	fmt.Fprintln(w, "# HELP pestod_inflight_solves Solves currently running.")
	fmt.Fprintln(w, "# TYPE pestod_inflight_solves gauge")
	fmt.Fprintf(w, "pestod_inflight_solves %d\n", gauge(m.inFlight))
	fmt.Fprintln(w, "# HELP pestod_cache_entries Live plan-cache entries.")
	fmt.Fprintln(w, "# TYPE pestod_cache_entries gauge")
	fmt.Fprintf(w, "pestod_cache_entries %d\n", gauge(m.cacheEntries))

	fmt.Fprintln(w, "# HELP pestod_solve_duration_seconds Wall-clock latency of cache-miss solves by degradation-ladder rung.")
	fmt.Fprintln(w, "# TYPE pestod_solve_duration_seconds histogram")
	for _, stage := range sortedKeys(m.solveHist) {
		h := m.solveHist[stage]
		cum := int64(0)
		for i, ub := range solveBuckets {
			cum += h.bucketN[i]
			fmt.Fprintf(w, "pestod_solve_duration_seconds_bucket{stage=%q,le=%q} %d\n", stage, trimFloat(ub), cum)
		}
		cum += h.bucketN[len(solveBuckets)]
		fmt.Fprintf(w, "pestod_solve_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, cum)
		fmt.Fprintf(w, "pestod_solve_duration_seconds_sum{stage=%q} %g\n", stage, h.sum)
		fmt.Fprintf(w, "pestod_solve_duration_seconds_count{stage=%q} %d\n", stage, h.count)
	}

	fmt.Fprintln(w, "# HELP pestod_bnb_nodes_total Branch-and-bound nodes expanded by solves.")
	fmt.Fprintln(w, "# TYPE pestod_bnb_nodes_total counter")
	fmt.Fprintf(w, "pestod_bnb_nodes_total %d\n", m.bnbNodes)
	fmt.Fprintln(w, "# HELP pestod_lp_pivots_total Simplex pivots performed by solves.")
	fmt.Fprintln(w, "# TYPE pestod_lp_pivots_total counter")
	fmt.Fprintf(w, "pestod_lp_pivots_total %d\n", m.lpPivots)
	fmt.Fprintln(w, "# HELP pestod_lp_solves_total LP relaxations solved (cold and warm-started).")
	fmt.Fprintln(w, "# TYPE pestod_lp_solves_total counter")
	fmt.Fprintf(w, "pestod_lp_solves_total %d\n", m.lpSolves)
	fmt.Fprintln(w, "# HELP pestod_lp_warmstart_hits_total Warm-started LP solves where the imported basis drove the result.")
	fmt.Fprintln(w, "# TYPE pestod_lp_warmstart_hits_total counter")
	fmt.Fprintf(w, "pestod_lp_warmstart_hits_total %d\n", m.warmHits)
	fmt.Fprintln(w, "# HELP pestod_lp_warmstart_misses_total Warm-start attempts that fell back to a cold solve.")
	fmt.Fprintln(w, "# TYPE pestod_lp_warmstart_misses_total counter")
	fmt.Fprintf(w, "pestod_lp_warmstart_misses_total %d\n", m.warmMisses)
	fmt.Fprintln(w, "# HELP pestod_lp_pivots_per_solve Mean simplex pivots per LP solve since startup.")
	fmt.Fprintln(w, "# TYPE pestod_lp_pivots_per_solve gauge")
	pps := 0.0
	if m.lpSolves > 0 {
		pps = float64(m.lpPivots) / float64(m.lpSolves)
	}
	fmt.Fprintf(w, "pestod_lp_pivots_per_solve %g\n", pps)
	fmt.Fprintln(w, "# HELP pestod_incumbent_improvements_total Branch-and-bound incumbent improvements found by solves.")
	fmt.Fprintln(w, "# TYPE pestod_incumbent_improvements_total counter")
	fmt.Fprintf(w, "pestod_incumbent_improvements_total %d\n", m.incumbents)

	var slos []sloSnapshot
	if m.sloSnapshot != nil {
		slos = m.sloSnapshot()
	}
	fmt.Fprintln(w, "# HELP pestod_slo_events_total Events classified against each SLO (good within objective, bad burning budget).")
	fmt.Fprintln(w, "# TYPE pestod_slo_events_total counter")
	for _, s := range slos {
		fmt.Fprintf(w, "pestod_slo_events_total{result=\"bad\",slo=%q} %d\n", s.name, s.bad)
		fmt.Fprintf(w, "pestod_slo_events_total{result=\"good\",slo=%q} %d\n", s.name, s.good)
	}
	fmt.Fprintln(w, "# HELP pestod_slo_error_budget_used_fraction Lifetime bad fraction over the error budget (1.0 = budget exactly spent).")
	fmt.Fprintln(w, "# TYPE pestod_slo_error_budget_used_fraction gauge")
	for _, s := range slos {
		fmt.Fprintf(w, "pestod_slo_error_budget_used_fraction{slo=%q} %g\n", s.name, s.budgetUsed)
	}
	fmt.Fprintln(w, "# HELP pestod_slo_burn_rate Windowed bad fraction over the error budget (multiwindow: 5m and 1h).")
	fmt.Fprintln(w, "# TYPE pestod_slo_burn_rate gauge")
	for _, s := range slos {
		fmt.Fprintf(w, "pestod_slo_burn_rate{slo=%q,window=\"1h\"} %g\n", s.name, s.slowRate)
		fmt.Fprintf(w, "pestod_slo_burn_rate{slo=%q,window=\"5m\"} %g\n", s.name, s.fastRate)
	}
	fmt.Fprintln(w, "# HELP pestod_slo_fast_burn_active Whether the SLO is currently in a fast-burn episode (both windows over 14.4x).")
	fmt.Fprintln(w, "# TYPE pestod_slo_fast_burn_active gauge")
	for _, s := range slos {
		active := 0
		if s.fastBurnActive {
			active = 1
		}
		fmt.Fprintf(w, "pestod_slo_fast_burn_active{slo=%q} %d\n", s.name, active)
	}
	fmt.Fprintln(w, "# HELP pestod_slo_fast_burn_events_total Fast-burn episodes entered since startup (edge-triggered).")
	fmt.Fprintln(w, "# TYPE pestod_slo_fast_burn_events_total counter")
	for _, s := range slos {
		fmt.Fprintf(w, "pestod_slo_fast_burn_events_total{slo=%q} %d\n", s.name, s.fastBurnEvents)
	}

	var bundles int
	var droppedFiles int64
	var ringTotal uint64
	if m.flightStats != nil {
		bundles, droppedFiles, ringTotal = m.flightStats()
	}
	fmt.Fprintln(w, "# HELP pestod_flight_bundles_total Flight-recorder repro bundles captured (persisted or not).")
	fmt.Fprintln(w, "# TYPE pestod_flight_bundles_total counter")
	fmt.Fprintf(w, "pestod_flight_bundles_total %d\n", bundles)
	fmt.Fprintln(w, "# HELP pestod_flight_bundle_files_dropped_total Bundle files not written because the per-process cap was reached.")
	fmt.Fprintln(w, "# TYPE pestod_flight_bundle_files_dropped_total counter")
	fmt.Fprintf(w, "pestod_flight_bundle_files_dropped_total %d\n", droppedFiles)
	fmt.Fprintln(w, "# HELP pestod_flight_ring_records_total Telemetry records ever admitted to the flight-recorder ring.")
	fmt.Fprintln(w, "# TYPE pestod_flight_ring_records_total counter")
	fmt.Fprintf(w, "pestod_flight_ring_records_total %d\n", ringTotal)
}

func gauge(f func() int64) int64 {
	if f == nil {
		return 0
	}
	return f()
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
