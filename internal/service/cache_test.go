package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pesto/internal/gen"
)

func TestCacheSingleflight(t *testing.T) {
	c := newPlanCache(16)
	key := [32]byte{1}
	const waiters = 32
	started := make(chan struct{})
	var wg sync.WaitGroup
	bodies := make([][]byte, waiters)
	var fillRuns int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := c.getOrFill(context.Background(), key, key, func(context.Context) ([]byte, error) {
				fillRuns++ // leader-only; racy writes here would trip -race
				<-started  // hold followers on the ready channel
				return []byte("plan"), nil
			})
			if err != nil {
				t.Errorf("getOrFill: %v", err)
			}
			bodies[i] = body
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let followers pile onto the entry
	close(started)
	wg.Wait()
	if fillRuns != 1 {
		t.Fatalf("fill ran %d times, want 1", fillRuns)
	}
	if got := c.fills.Load(); got != 1 {
		t.Fatalf("fills counter %d, want 1", got)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, []byte("plan")) {
			t.Fatalf("waiter %d got %q", i, b)
		}
	}
}

func TestCacheFailedFillRetries(t *testing.T) {
	c := newPlanCache(16)
	key := [32]byte{2}
	boom := errors.New("boom")
	if _, _, err := c.getOrFill(context.Background(), key, key, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatalf("failed fill cached: len %d", c.len())
	}
	body, hit, err := c.getOrFill(context.Background(), key, key, func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || hit || !bytes.Equal(body, []byte("ok")) {
		t.Fatalf("retry: body=%q hit=%v err=%v", body, hit, err)
	}
	if got := c.fills.Load(); got != 2 {
		t.Fatalf("fills %d, want 2", got)
	}
}

func TestCacheFollowerContextCancel(t *testing.T) {
	c := newPlanCache(16)
	key := [32]byte{3}
	block := make(chan struct{})
	go c.getOrFill(context.Background(), key, key, func(context.Context) ([]byte, error) {
		<-block
		return []byte("late"), nil
	})
	for c.len() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.getOrFill(ctx, key, key, func(context.Context) ([]byte, error) {
		t.Error("follower ran fill")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	close(block)
}

func TestCacheEvictionStress(t *testing.T) {
	c := newPlanCache(4)
	const goroutines = 32
	const keys = 24
	const iters = 64
	var wg sync.WaitGroup
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var key [32]byte
				key[0] = byte((gr*7 + i) % keys)
				want := []byte{key[0]}
				body, _, err := c.getOrFill(context.Background(), key, key, func(context.Context) ([]byte, error) {
					return []byte{key[0]}, nil
				})
				if err != nil {
					t.Errorf("getOrFill: %v", err)
					return
				}
				// Evictions refill, but refills of a deterministic fill
				// are byte-identical.
				if !bytes.Equal(body, want) {
					t.Errorf("key %d got body %v", key[0], body)
					return
				}
			}
		}(gr)
	}
	wg.Wait()
	if got := c.len(); got > 4 {
		t.Fatalf("cache over capacity after quiescence: %d", got)
	}
	if c.evictions.Load() == 0 {
		t.Fatal("no evictions despite keys > capacity")
	}
}

// TestServiceStressRace is the issue's singleflight stress: 64
// goroutines hammering the daemon with a mix of repeat graphs. With the
// cache sized above the number of distinct requests, the number of
// solves must equal the number of distinct cache keys, and every
// response for one key must be byte-identical.
func TestServiceStressRace(t *testing.T) {
	const distinct = 6
	const goroutines = 64
	const perGoroutine = 8

	s := New(Config{MaxConcurrentSolves: 4, QueueDepth: goroutines, CacheEntries: 64})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	bodies := make([][]byte, distinct)
	for i := range bodies {
		g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: int64(i + 1), Nodes: 12})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], err = json.Marshal(PlaceRequest{Graph: g, Options: RequestOptions{BudgetMs: 50}})
		if err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	responses := make(map[int][][]byte)
	var wg sync.WaitGroup
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				which := (gr + i) % distinct
				resp, err := http.Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(bodies[which]))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %s", resp.StatusCode, data)
					return
				}
				mu.Lock()
				responses[which] = append(responses[which], data)
				mu.Unlock()
			}
		}(gr)
	}
	wg.Wait()

	fills, evictions, _ := s.CacheStats()
	if evictions != 0 {
		t.Fatalf("unexpected evictions %d with cap > distinct keys", evictions)
	}
	if fills != distinct {
		t.Fatalf("solves = %d, want %d (singleflight violated)", fills, distinct)
	}
	total := 0
	for which, got := range responses {
		total += len(got)
		for i := 1; i < len(got); i++ {
			if !bytes.Equal(got[0], got[i]) {
				t.Fatalf("graph %d response %d differs:\n%s\nvs\n%s", which, i, got[0], got[i])
			}
		}
	}
	if total != goroutines*perGoroutine {
		t.Fatalf("served %d responses, want %d", total, goroutines*perGoroutine)
	}
}

// TestServiceEvictRefillByteIdentical mixes hits, misses and evictions
// (cache smaller than the working set) and checks that refilled entries
// still serve byte-identical bodies — determinism, not cache residency,
// is what the byte-identity guarantee rests on.
func TestServiceEvictRefillByteIdentical(t *testing.T) {
	const distinct = 8
	s := New(Config{MaxConcurrentSolves: 2, QueueDepth: 64, CacheEntries: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background())

	bodies := make([][]byte, distinct)
	for i := range bodies {
		g, err := gen.Generate(gen.Config{Family: gen.Chain, Seed: int64(i + 1), Nodes: 10})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], err = json.Marshal(PlaceRequest{Graph: g, Options: RequestOptions{BudgetMs: 50}})
		if err != nil {
			t.Fatal(err)
		}
	}
	first := make([][]byte, distinct)
	for round := 0; round < 3; round++ {
		for i, body := range bodies {
			resp, err := http.Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			if round == 0 {
				first[i] = data
			} else if !bytes.Equal(first[i], data) {
				t.Fatalf("round %d graph %d differs from round 0:\n%s\nvs\n%s", round, i, first[i], data)
			}
		}
	}
	_, evictions, _ := s.CacheStats()
	if evictions == 0 {
		t.Fatal("working set over capacity produced no evictions")
	}
}

func TestCacheKeyDistinguishesOptions(t *testing.T) {
	fp := [32]byte{9}
	base := RequestOptions{GPUs: 2, Hosts: 1, GPUMemBytes: 1 << 30, BudgetMs: 100}
	seen := map[[32]byte]string{cacheKey2(base, fp): "base"}
	variants := map[string]RequestOptions{
		"gpus":     {GPUs: 4, Hosts: 1, GPUMemBytes: 1 << 30, BudgetMs: 100},
		"hosts":    {GPUs: 2, Hosts: 2, GPUMemBytes: 1 << 30, BudgetMs: 100},
		"mem":      {GPUs: 2, Hosts: 1, GPUMemBytes: 2 << 30, BudgetMs: 100},
		"budget":   {GPUs: 2, Hosts: 1, GPUMemBytes: 1 << 30, BudgetMs: 200},
		"seed":     {GPUs: 2, Hosts: 1, GPUMemBytes: 1 << 30, BudgetMs: 100, Seed: 7},
		"schedule": {GPUs: 2, Hosts: 1, GPUMemBytes: 1 << 30, BudgetMs: 100, ScheduleFromILP: true},
	}
	for name, o := range variants {
		k := cacheKey2(o, fp)
		if prev, dup := seen[k]; dup {
			t.Errorf("option %q collides with %q", name, prev)
		}
		seen[k] = name
	}
	// Verify and NoCache must NOT change the key: they do not change
	// the plan.
	same := base
	same.Verify = true
	same.NoCache = true
	if cacheKey2(same, fp) != cacheKey2(base, fp) {
		t.Error("verify/noCache changed the cache key")
	}
	// A different fingerprint must change the key.
	if cacheKey2(base, [32]byte{10}) == cacheKey2(base, fp) {
		t.Error("fingerprint does not reach the cache key")
	}
}

func cacheKey2(o RequestOptions, fp [32]byte) [32]byte { return o.cacheKey(fp) }

func TestAdmissionFastPathAndRelease(t *testing.T) {
	a := newAdmission(2, 0)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.inFlight(); got != 2 {
		t.Fatalf("inFlight %d, want 2", got)
	}
	if _, err := a.acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	r1()
	r3, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r2()
	r3()
	if got := a.inFlight(); got != 0 {
		t.Fatalf("inFlight %d after releases", got)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 2)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = a.acquire(ctx)
	if !errors.Is(err, ErrQueueTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrQueueTimeout wrapping deadline", err)
	}
	if got := a.queueLen(); got != 0 {
		t.Fatalf("queueLen %d after timeout", got)
	}
}

func TestAdmissionQueueHandoff(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	for a.queueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never got the freed slot")
	}
}

func TestMetricsHistogramBuckets(t *testing.T) {
	m := newMetrics()
	m.observeSolve(500*time.Microsecond, "ilp-exact") // ≤ 0.001
	m.observeSolve(40*time.Millisecond, "ilp-exact")  // ≤ 0.1
	m.observeSolve(2*time.Minute, "ilp-exact")        // +Inf
	m.observeSolve(time.Millisecond, "error")         // separate series
	var buf bytes.Buffer
	m.write(&buf)
	text := buf.String()
	for _, want := range []string{
		`pestod_solve_duration_seconds_bucket{stage="ilp-exact",le="0.001"} 1`,
		`pestod_solve_duration_seconds_bucket{stage="ilp-exact",le="0.1"} 2`,
		`pestod_solve_duration_seconds_bucket{stage="ilp-exact",le="30"} 2`,
		`pestod_solve_duration_seconds_bucket{stage="ilp-exact",le="+Inf"} 3`,
		`pestod_solve_duration_seconds_count{stage="ilp-exact"} 3`,
		`pestod_solve_duration_seconds_bucket{stage="error",le="+Inf"} 1`,
		`pestod_solve_duration_seconds_count{stage="error"} 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestMetricsConcurrentScrape(t *testing.T) {
	m := newMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.request("place", "ok")
				m.cacheEvent("hit")
				m.planServed(fmt.Sprintf("stage-%d", i%3))
				m.observeSolve(time.Duration(j)*time.Millisecond, "ilp-exact")
				if j%10 == 0 {
					m.write(io.Discard)
				}
			}
		}(i)
	}
	wg.Wait()
	var buf bytes.Buffer
	m.write(&buf)
	if !bytes.Contains(buf.Bytes(), []byte(`pestod_requests_total{endpoint="place",outcome="ok"} 1600`)) {
		t.Fatalf("lost increments:\n%s", buf.String())
	}
}
