package service

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for the SLO tracker.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1754550000, 0)} }
func snapFor(t *testing.T, tr *sloTracker, name string) sloSnapshot {
	t.Helper()
	for _, s := range tr.snapshot() {
		if s.name == name {
			return s
		}
	}
	t.Fatalf("objective %q not in snapshot", name)
	return sloSnapshot{}
}

func TestBurnWindowSlides(t *testing.T) {
	clk := newFakeClock()
	w := newBurnWindow(10*time.Second, 30) // 5m window
	w.observe(clk.Now(), true)
	w.observe(clk.Now(), false)
	if good, bad := w.totals(clk.Now()); good != 1 || bad != 1 {
		t.Fatalf("totals = %d/%d, want 1/1", good, bad)
	}
	// Still inside the window 4 minutes later.
	clk.advance(4 * time.Minute)
	if _, bad := w.totals(clk.Now()); bad != 1 {
		t.Fatalf("bad expired early")
	}
	// Gone once the window has slid past.
	clk.advance(2 * time.Minute)
	if good, bad := w.totals(clk.Now()); good != 0 || bad != 0 {
		t.Fatalf("totals = %d/%d after expiry, want 0/0", good, bad)
	}
	// A stale ring slot is reset when its epoch comes around again.
	w.observe(clk.Now(), false)
	if good, bad := w.totals(clk.Now()); good != 1 || bad != 0 {
		t.Fatalf("totals = %d/%d after reuse, want 1/0", good, bad)
	}
}

func TestSLOFastBurnEdgeTriggeredWithHysteresis(t *testing.T) {
	clk := newFakeClock()
	tr := newSLOTracker(clk.Now)
	var fired []string
	tr.onFastBurn = func(slo string, fast, slow float64) {
		fired = append(fired, slo)
		if fast < sloFastBurnThreshold || slow < sloFastBurnThreshold {
			t.Errorf("fired with rates %g/%g below threshold", fast, slow)
		}
	}

	// One 5xx against the 0.1% availability budget is a 1000x burn in
	// both windows: the episode starts, exactly once.
	tr.observe("availability", true)
	tr.observe("availability", true)
	if len(fired) != 1 || fired[0] != "availability" {
		t.Fatalf("fired = %v, want one availability event", fired)
	}
	s := snapFor(t, tr, "availability")
	if !s.fastBurnActive || s.fastBurnEvents != 1 {
		t.Fatalf("active=%v events=%d, want active with 1 event", s.fastBurnActive, s.fastBurnEvents)
	}

	// Good traffic after the fast window slid past the failures clears
	// the episode (hysteresis: fast rate back under half threshold).
	clk.advance(sloFastWindow + time.Minute)
	tr.observe("availability", false)
	if s := snapFor(t, tr, "availability"); s.fastBurnActive {
		t.Fatalf("episode did not clear after recovery")
	}

	// A fresh failure burst starts a second episode.
	tr.observe("availability", true)
	if len(fired) != 2 {
		t.Fatalf("fired %d times, want 2 (edge-triggered per episode)", len(fired))
	}
}

func TestSLOLatencyClassification(t *testing.T) {
	clk := newFakeClock()
	tr := newSLOTracker(clk.Now)
	// heuristic-fallback threshold is 100ms.
	tr.observeLatency("heuristic-fallback", 50*time.Millisecond)
	tr.observeLatency("heuristic-fallback", 150*time.Millisecond)
	tr.observeLatency("no-such-rung", time.Hour) // dropped, not registered
	s := snapFor(t, tr, "latency-heuristic-fallback")
	if s.good != 1 || s.bad != 1 {
		t.Fatalf("good=%d bad=%d, want 1/1", s.good, s.bad)
	}
	if s.budgetUsed != (0.5 / 0.01) {
		t.Fatalf("budgetUsed = %g, want 50", s.budgetUsed)
	}
	for _, snap := range tr.snapshot() {
		if snap.name == "latency-no-such-rung" {
			t.Fatalf("unknown rung grew an objective")
		}
	}
}

func TestSLOSnapshotSortedAndComplete(t *testing.T) {
	tr := newSLOTracker(nil)
	snaps := tr.snapshot()
	if len(snaps) != 7 { // availability + 6 rungs
		t.Fatalf("objectives = %d, want 7", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].name >= snaps[i].name {
			t.Fatalf("snapshot not sorted: %q before %q", snaps[i-1].name, snaps[i].name)
		}
	}
}
