package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syncBuffer makes a bytes.Buffer safe for the logger, which may be
// written from solver goroutines while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDPropagation follows one ID through every telemetry
// surface: the response header echoes it, the span dump is keyed by
// it, and every JSONL log line carries it.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	const rid = "test-req-42"
	body := testBody(t, 1, fastOptions())
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/place", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("X-Request-ID echoed as %q, want %q", got, rid)
	}

	sr, err := http.Get(ts.URL + "/v1/requests/" + rid + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, sr)
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("span dump status %d: %s", sr.StatusCode, data)
	}
	var dump struct {
		RequestID string           `json:"requestId"`
		Records   []spanDumpRecord `json:"records"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("span dump not JSON: %v", err)
	}
	if dump.RequestID != rid {
		t.Fatalf("span dump for %q, want %q", dump.RequestID, rid)
	}
	names := map[string]bool{}
	for _, r := range dump.Records {
		names[r.Name] = true
	}
	if !names["placement.place"] {
		t.Fatalf("span dump misses the placement.place span: %v", names)
	}
	if !names["placement.stage"] {
		t.Fatalf("span dump misses the ladder-rung span: %v", names)
	}

	logText := logBuf.String()
	if logText == "" {
		t.Fatal("no log lines emitted")
	}
	for i, line := range strings.Split(strings.TrimSpace(logText), "\n") {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line %d not JSON: %v (%s)", i, err, line)
		}
		if entry["requestId"] != rid {
			t.Fatalf("log line %d requestId = %v, want %q (%s)", i, entry["requestId"], rid, line)
		}
	}
}

// TestRequestIDGenerated: absent or unusable client IDs are replaced
// with a generated one rather than echoed.
func TestRequestIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := testBody(t, 1, fastOptions())
	// Control characters cannot travel through the Go HTTP client at
	// all; sanitization of those is covered below via requestID directly.
	req, err := http.NewRequest(http.MethodGet, "http://example/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "bad\x01id")
	if got := requestID(req); got == "bad\x01id" || got == "" {
		t.Errorf("control bytes: requestID = %q, want a generated id", got)
	}
	for name, hdr := range map[string]string{
		"absent":     "",
		"overlong":   strings.Repeat("x", maxRequestIDLen+1),
		"with-space": "two words",
		"non-ascii":  "идентификатор",
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/place", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("X-Request-ID", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		got := resp.Header.Get("X-Request-ID")
		if got == "" || got == hdr {
			t.Errorf("%s: X-Request-ID = %q, want a generated id", name, got)
		}
	}
}

// TestErrorResponseCarriesRequestID: error bodies include the same ID
// the header carries, so a quoted error is traceable.
func TestErrorResponseCarriesRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/place", []byte("{"))
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID == "" || er.RequestID != resp.Header.Get("X-Request-ID") {
		t.Fatalf("body requestId %q, header %q: want equal and non-empty", er.RequestID, resp.Header.Get("X-Request-ID"))
	}
}

func TestSpansUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/requests/nope/spans")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestSpanStoreEviction: the store is a ring of SpanHistory entries.
func TestSpanStoreEviction(t *testing.T) {
	st := newSpanStore(3)
	for i := 0; i < 5; i++ {
		st.put(fmt.Sprintf("r%d", i), nil)
	}
	for i := 0; i < 2; i++ {
		if _, ok := st.get(fmt.Sprintf("r%d", i)); ok {
			t.Errorf("r%d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := st.get(fmt.Sprintf("r%d", i)); !ok {
			t.Errorf("r%d evicted too early", i)
		}
	}
	// A repeated ID overwrites in place without consuming a slot.
	st.put("r4", nil)
	if _, ok := st.get("r2"); !ok {
		t.Error("overwriting r4 evicted r2")
	}
}

// TestMetricsGoldenIdle pins the full exposition of a fresh server:
// the emission order is sorted and deterministic, so the idle scrape
// is byte-identical across runs and refactors. Regenerate with
// -update.
func TestMetricsGoldenIdle(t *testing.T) {
	s := New(Config{})
	var buf bytes.Buffer
	s.met.write(&buf)
	golden := filepath.Join("testdata", "metrics_idle.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("idle metrics exposition changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// And a second write is byte-identical to the first.
	var again bytes.Buffer
	s.met.write(&again)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("consecutive idle writes differ")
	}
}
