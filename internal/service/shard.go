package service

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// RingPoint maps a graph fingerprint onto the fleet hash ring's
// keyspace: the first 8 bytes of the (already uniformly distributed)
// SHA-256 fingerprint, big-endian. The fleet router and the cache
// export endpoint must agree on this function — it defines which
// replica owns which plans — so it lives here, next to the cache, and
// the router imports it rather than redefining it.
func RingPoint(fp [32]byte) uint64 { return binary.BigEndian.Uint64(fp[:8]) }

// CacheEntryWire is one plan-cache entry on the warm-sync wire: the
// cache key and graph fingerprint as hex, and the stored response body
// verbatim (it is already JSON, and byte-preserving transfer is what
// keeps replayed responses byte-identical across replicas).
type CacheEntryWire struct {
	Key         string          `json:"key"`
	Fingerprint string          `json:"fingerprint"`
	Body        json.RawMessage `json:"body"`
}

// CacheExport is the body of GET /v1/cache/export and
// POST /v1/cache/import.
type CacheExport struct {
	Entries []CacheEntryWire `json:"entries"`
}

// CacheImportResult reports what an import installed.
type CacheImportResult struct {
	// Installed counts entries newly added to the cache.
	Installed int `json:"installed"`
	// Skipped counts entries the cache already had (local solves
	// outrank synced copies).
	Skipped int `json:"skipped"`
}

// handleCacheExport serves GET /v1/cache/export?lo=&hi=: the completed
// plan-cache entries whose fingerprint ring-point lies on the arc
// (lo, hi] (decimal uint64s; lo == hi means the full ring, lo > hi
// wraps through zero). The fleet router calls this on a rejoining
// replica's ring neighbors to warm-sync its keyspace before routing
// traffic to it.
func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lo, err1 := strconv.ParseUint(q.Get("lo"), 10, 64)
	hi, err2 := strconv.ParseUint(q.Get("hi"), 10, 64)
	if err1 != nil || err2 != nil {
		s.reject(w, "cache_export", "", http.StatusBadRequest, "bad_request",
			fmt.Errorf("lo/hi must be decimal uint64 ring points: %w", ErrBadRequest))
		return
	}
	entries := s.cache.exportShard(lo, hi)
	out := CacheExport{Entries: make([]CacheEntryWire, 0, len(entries))}
	for _, e := range entries {
		out.Entries = append(out.Entries, CacheEntryWire{
			Key:         hex.EncodeToString(e.key[:]),
			Fingerprint: hex.EncodeToString(e.fp[:]),
			Body:        json.RawMessage(e.body),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
	s.met.request("cache_export", "ok")
	s.slo.observe("availability", false)
}

// handleCacheImport serves POST /v1/cache/import: bulk-install
// previously exported entries. Existing keys are skipped, malformed
// entries are rejected wholesale with 400 (a warm-sync peer speaks
// this schema exactly or not at all). Every body must embed the cache
// key it is being installed under: a response produced for one key —
// say a delta plan, keyed in the delta namespace — can never be
// re-filed under another key (the cold entry it would shadow), whether
// by a buggy peer or a malicious one.
func (s *Server) handleCacheImport(w http.ResponseWriter, r *http.Request) {
	var in CacheExport
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes*4)
	if err := json.NewDecoder(body).Decode(&in); err != nil {
		s.reject(w, "cache_import", "", http.StatusBadRequest, "bad_request",
			fmt.Errorf("decode import: %v: %w", err, ErrBadRequest))
		return
	}
	var res CacheImportResult
	for i, e := range in.Entries {
		key, err1 := hex32(e.Key)
		fp, err2 := hex32(e.Fingerprint)
		if err1 != nil || err2 != nil || len(e.Body) == 0 {
			s.reject(w, "cache_import", "", http.StatusBadRequest, "bad_request",
				fmt.Errorf("entry %d malformed: %w", i, ErrBadRequest))
			return
		}
		var emb struct {
			CacheKey string `json:"cacheKey"`
		}
		if err := json.Unmarshal(e.Body, &emb); err != nil || emb.CacheKey != e.Key {
			s.reject(w, "cache_import", "", http.StatusBadRequest, "bad_request",
				fmt.Errorf("entry %d: body's cacheKey does not match install key %s: %w", i, e.Key, ErrBadRequest))
			return
		}
		if s.cache.install(key, fp, []byte(e.Body)) {
			res.Installed++
		} else {
			res.Skipped++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
	s.met.request("cache_import", "ok")
	s.slo.observe("availability", false)
}

func hex32(s string) ([32]byte, error) {
	var out [32]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != 32 {
		return out, fmt.Errorf("want 32 bytes, got %d", len(b))
	}
	copy(out[:], b)
	return out, nil
}
