package service

import (
	"sort"
	"sync"
	"time"

	"pesto/internal/placement"
)

// SLO burn-rate monitoring, the SRE multiwindow recipe: each objective
// tracks its bad-event fraction over a fast (5m) and a slow (1h)
// sliding window; the burn rate is that fraction divided by the error
// budget, so rate 1.0 consumes the budget exactly at the sustainable
// pace. A fast-burn alert fires — edge-triggered, once per episode —
// when BOTH windows exceed 14.4x (a 0.1% budget fully gone in ~50
// minutes), the short window confirming it is happening *now*, the
// long one filtering blips. Hysteresis re-arms the alert only after
// the fast window falls below half the threshold.
const (
	sloFastWindow = 5 * time.Minute
	sloFastBucket = 10 * time.Second
	sloSlowWindow = time.Hour
	sloSlowBucket = time.Minute

	sloFastBurnThreshold = 14.4
	sloFastBurnClear     = sloFastBurnThreshold / 2
)

// sloObjective is one service-level objective: a name, an error
// budget (the tolerated bad fraction), and — for the per-rung latency
// objectives — the latency threshold that separates good from bad.
type sloObjective struct {
	name      string
	budget    float64
	threshold time.Duration
}

// sloLatencyThresholds are the per-rung latency objectives: a solve
// served by a rung should finish within that rung's regime. They
// bracket what the solve-duration histogram buckets already encode —
// the exact ILP gets tens of seconds, the heuristic rung must be
// near-instant.
var sloLatencyThresholds = []struct {
	stage     placement.Stage
	threshold time.Duration
}{
	{placement.StageILP, 30 * time.Second},
	{placement.StageRefine, 2500 * time.Millisecond},
	{placement.StagePipelineDP, 250 * time.Millisecond},
	{placement.StageFallback, 100 * time.Millisecond},
	{placement.StageReplan, time.Second},
	{placement.StageIncremental, time.Second},
}

// sloObjectives builds the fixed objective set. Objectives are
// pre-registered (never created on demand) so the idle /metrics scrape
// is complete and byte-stable.
func sloObjectives() []sloObjective {
	objs := []sloObjective{
		// Availability: at most 0.1% of requests may fail server-side
		// (5xx). Client errors are the client's budget, not ours.
		{name: "availability", budget: 0.001},
	}
	for _, lt := range sloLatencyThresholds {
		objs = append(objs, sloObjective{
			name:      "latency-" + lt.stage.String(),
			budget:    0.01,
			threshold: lt.threshold,
		})
	}
	return objs
}

// burnBucket is one time-bucket of good/bad counts. epoch identifies
// which absolute bucket interval the counts belong to, so stale slots
// of the ring are recognized and reset lazily.
type burnBucket struct {
	epoch     int64
	good, bad int64
}

// burnWindow is a bucketed sliding window: a ring of step-sized
// buckets indexed by absolute epoch, summed over the last len(buckets)
// epochs at read time. Writes and reads are O(1) and O(len) with no
// timers or goroutines.
type burnWindow struct {
	step    time.Duration
	buckets []burnBucket
}

func newBurnWindow(step time.Duration, n int) *burnWindow {
	return &burnWindow{step: step, buckets: make([]burnBucket, n)}
}

func (w *burnWindow) observe(now time.Time, bad bool) {
	epoch := now.UnixNano() / int64(w.step)
	b := &w.buckets[int(epoch%int64(len(w.buckets)))]
	if b.epoch != epoch {
		*b = burnBucket{epoch: epoch}
	}
	if bad {
		b.bad++
	} else {
		b.good++
	}
}

// totals sums the window's live buckets: epochs within the window
// ending at now.
func (w *burnWindow) totals(now time.Time) (good, bad int64) {
	epoch := now.UnixNano() / int64(w.step)
	min := epoch - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		b := w.buckets[i]
		if b.epoch >= min && b.epoch <= epoch {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burnRate is the window's bad fraction divided by the error budget;
// zero while the window is empty.
func (w *burnWindow) burnRate(now time.Time, budget float64) float64 {
	good, bad := w.totals(now)
	total := good + bad
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// sloState is one objective's live accounting.
type sloState struct {
	obj        sloObjective
	fast, slow *burnWindow
	good, bad  int64

	fastBurnActive bool
	fastBurnEvents int64
}

// sloTracker owns the fixed objective set. The states map is built
// once and never mutated afterward, so lookups need no lock; the
// per-state counters are guarded by mu.
type sloTracker struct {
	clock func() time.Time
	// onFastBurn, when set, is called (outside the lock) each time an
	// objective newly enters fast burn — the flight recorder's trigger.
	onFastBurn func(slo string, fastRate, slowRate float64)

	mu     sync.Mutex
	names  []string
	states map[string]*sloState
}

func newSLOTracker(clock func() time.Time) *sloTracker {
	if clock == nil {
		clock = time.Now
	}
	t := &sloTracker{clock: clock, states: make(map[string]*sloState)}
	for _, obj := range sloObjectives() {
		t.states[obj.name] = &sloState{
			obj:  obj,
			fast: newBurnWindow(sloFastBucket, int(sloFastWindow/sloFastBucket)),
			slow: newBurnWindow(sloSlowBucket, int(sloSlowWindow/sloSlowBucket)),
		}
		t.names = append(t.names, obj.name)
	}
	sort.Strings(t.names)
	return t
}

// observe records one event against the named objective. Unknown
// names are dropped (objectives are fixed, not created on demand).
func (t *sloTracker) observe(name string, bad bool) {
	st := t.states[name]
	if st == nil {
		return
	}
	t.mu.Lock()
	now := t.clock()
	if bad {
		st.bad++
	} else {
		st.good++
	}
	st.fast.observe(now, bad)
	st.slow.observe(now, bad)
	var fire bool
	var fastRate, slowRate float64
	if bad && !st.fastBurnActive {
		fastRate = st.fast.burnRate(now, st.obj.budget)
		slowRate = st.slow.burnRate(now, st.obj.budget)
		if fastRate >= sloFastBurnThreshold && slowRate >= sloFastBurnThreshold {
			st.fastBurnActive = true
			st.fastBurnEvents++
			fire = true
		}
	} else if !bad && st.fastBurnActive {
		if st.fast.burnRate(now, st.obj.budget) < sloFastBurnClear {
			st.fastBurnActive = false
		}
	}
	cb := t.onFastBurn
	t.mu.Unlock()
	if fire && cb != nil {
		cb(name, fastRate, slowRate)
	}
}

// observeLatency classifies one served solve against its rung's
// latency objective. Rungs without an objective (none today) are
// ignored.
func (t *sloTracker) observeLatency(stage string, d time.Duration) {
	st := t.states["latency-"+stage]
	if st == nil {
		return
	}
	t.observe(st.obj.name, d > st.obj.threshold)
}

// sloSnapshot is one objective's scrape-time reading.
type sloSnapshot struct {
	name           string
	good, bad      int64
	budgetUsed     float64 // lifetime bad fraction / budget
	fastRate       float64
	slowRate       float64
	fastBurnActive bool
	fastBurnEvents int64
}

// snapshot reads every objective in sorted-name order.
func (t *sloTracker) snapshot() []sloSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	out := make([]sloSnapshot, 0, len(t.names))
	for _, name := range t.names {
		st := t.states[name]
		snap := sloSnapshot{
			name:           name,
			good:           st.good,
			bad:            st.bad,
			fastRate:       st.fast.burnRate(now, st.obj.budget),
			slowRate:       st.slow.burnRate(now, st.obj.budget),
			fastBurnActive: st.fastBurnActive,
			fastBurnEvents: st.fastBurnEvents,
		}
		if total := st.good + st.bad; total > 0 && st.obj.budget > 0 {
			snap.budgetUsed = (float64(st.bad) / float64(total)) / st.obj.budget
		}
		out = append(out, snap)
	}
	return out
}
