package service

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pesto/internal/graph"
	"pesto/internal/incr"
	"pesto/internal/obs"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// ErrUnknownBase marks a delta request whose base fingerprint is not
// resident on this replica (404). Clients fall back to a full
// /v1/place with the edited graph; the response to that makes the
// graph resident for future deltas.
var ErrUnknownBase = errors.New("unknown base graph")

// DeltaRequest is the JSON body of POST /v1/place/delta: an edit list
// against a previously placed graph, identified by its canonical
// fingerprint. The server replays the edits onto its resident copy of
// the base graph and re-places the result incrementally, reusing the
// prior plan for the untouched region.
type DeltaRequest struct {
	// BaseFingerprint is the hex graph fingerprint of the already-placed
	// base graph (the "fingerprint" field of a prior place or delta
	// response).
	BaseFingerprint string `json:"baseFingerprint"`
	// Edits is the ordered edit list to apply to the base graph.
	Edits []incr.Edit `json:"edits"`
	// Options configures the target system and the solve. They must
	// match the base solve's options for the warm path to find its
	// prior plan.
	Options RequestOptions `json:"options"`
}

// DeltaResponse is the JSON body served for a delta placement: the
// regular place response for the edited graph, plus the incremental
// provenance. CacheKey is the delta key — namespaced separately from
// cold keys, so a delta result can never shadow the cold entry for
// the same graph.
type DeltaResponse struct {
	PlaceResponse
	// BaseFingerprint echoes the request's base graph.
	BaseFingerprint string `json:"baseFingerprint"`
	// Warm is true when the plan came from the warm re-place path
	// (prior devices frozen outside the dirty region), false for cold
	// fallbacks and near-hits.
	Warm bool `json:"warm"`
	// DirtyGroups / TotalGroups / ReuseFraction are the warm path's
	// coarse-group accounting (see placement.IncrementalInfo).
	DirtyGroups   int     `json:"dirtyGroups"`
	TotalGroups   int     `json:"totalGroups"`
	ReuseFraction float64 `json:"reuseFraction"`
	// ChainDepth counts warm re-places since the last cold solve; the
	// server forces a cold refresh past placement.Options.IncrMaxChain.
	ChainDepth int `json:"chainDepth"`
	// AnchorQuality is the chain's quality record (see
	// placement.IncrementalInfo.AnchorQuality); the server threads it
	// through resident bases so the warm path's drift detector keeps
	// its reference across delta chains.
	AnchorQuality float64 `json:"anchorQuality,omitempty"`
	// FallbackReason says why a cold path answered ("near-hit" when an
	// exact cold solve of the edited graph was already cached).
	FallbackReason string `json:"fallbackReason,omitempty"`
}

// deltaKeyVersion namespaces delta cache keys away from cold place
// keys. The two key spaces sharing one cache must never collide: a
// delta result cached under a cold key would shadow (and could
// poison) the cold entry for the edited graph, so the namespace is
// folded into the hash before anything request-derived.
const deltaKeyVersion = "pesto/service-delta-key/v1\n"

// deltaCacheKey is the content address of a delta request: base graph
// fingerprint + canonical edit-list fingerprint + every normalized
// option that can change the plan bytes.
func deltaCacheKey(baseFP, editsFP [32]byte, o RequestOptions) [32]byte {
	h := sha256.New()
	h.Write([]byte(deltaKeyVersion))
	h.Write(baseFP[:])
	h.Write(editsFP[:])
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(uint64(o.GPUs))
	u64(uint64(o.Hosts))
	u64(uint64(o.GPUMemBytes))
	u64(uint64(o.BudgetMs))
	u64(uint64(o.Seed))
	b := uint64(0)
	if o.ScheduleFromILP {
		b = 1
	}
	u64(b)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// DecodeDeltaRequest reads and validates one delta request body of at
// most limit bytes, under the same no-panic contract as
// DecodePlaceRequest.
func DecodeDeltaRequest(r io.Reader, limit int64) (*DeltaRequest, error) {
	if limit <= 0 {
		limit = 32 << 20
	}
	lr := &io.LimitedReader{R: r, N: limit + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("read body: %v: %w", err, ErrBadRequest)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("body over %d bytes: %w", limit, ErrTooLarge)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req DeltaRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode delta request: %v: %w", err, ErrBadRequest)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after request body: %w", ErrBadRequest)
	}
	if _, err := hex32(req.BaseFingerprint); err != nil {
		return nil, fmt.Errorf("baseFingerprint: %v: %w", err, ErrBadRequest)
	}
	if len(req.Edits) == 0 {
		return nil, fmt.Errorf("empty edit list: %w", ErrBadRequest)
	}
	return &req, nil
}

// baseEntry is one resident base graph: the graph, the latest plan
// served for it, how many warm re-places that plan already chains off
// the last cold solve, and the chain's quality record (the drift
// detector's reference — without it every delta would re-anchor on
// its immediate predecessor and drift could compound one margin at a
// time).
type baseEntry struct {
	g      *graph.Graph
	plan   sim.Plan
	chain  int
	anchor float64
	elem   *list.Element
}

// baseStore is a bounded LRU of graphs the server has placed, keyed by
// canonical fingerprint. /v1/place registers every successfully placed
// graph (chain depth zero); /v1/place/delta both reads its base here
// and registers the edited result, so delta chains work without the
// client ever re-uploading a graph. Eviction only limits which bases
// deltas can target — plans live in the plan cache, not here.
type baseStore struct {
	mu      sync.Mutex
	cap     int
	entries map[[32]byte]*baseEntry
	lru     *list.List // front = most recently used; values are [32]byte keys
}

func newBaseStore(capacity int) *baseStore {
	if capacity <= 0 {
		capacity = 128
	}
	return &baseStore{
		cap:     capacity,
		entries: make(map[[32]byte]*baseEntry, capacity),
		lru:     list.New(),
	}
}

// get returns the resident entry for fp, refreshing its LRU position.
func (b *baseStore) get(fp [32]byte) (*baseEntry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	if ok {
		b.lru.MoveToFront(e.elem)
	}
	return e, ok
}

// put registers (or refreshes) the graph under fp with the plan that
// currently serves it.
func (b *baseStore) put(fp [32]byte, g *graph.Graph, plan sim.Plan, chain int, anchor float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[fp]; ok {
		e.g, e.plan, e.chain, e.anchor = g, plan, chain, anchor
		b.lru.MoveToFront(e.elem)
		return
	}
	e := &baseEntry{g: g, plan: plan, chain: chain, anchor: anchor}
	e.elem = b.lru.PushFront(fp)
	b.entries[fp] = e
	for len(b.entries) > b.cap {
		back := b.lru.Back()
		delete(b.entries, back.Value.([32]byte))
		b.lru.Remove(back)
	}
}

func (b *baseStore) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// registerBase makes a successfully placed graph a valid delta base.
// The plan is recovered from the serialized response body; a body
// that does not parse is simply not registered (the place path
// already succeeded — base residency is best-effort amortization).
func (s *Server) registerBase(fp [32]byte, g *graph.Graph, body []byte) {
	var resp PlaceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return
	}
	s.bases.put(fp, g, resp.Plan, 0, 0)
}

// handleDelta serves POST /v1/place/delta: apply the edit list to the
// resident base graph, answer from the delta cache when the exact
// (base, edits, options) tuple was already solved, otherwise re-place
// incrementally with the base's prior plan as a partial assignment.
// The response is cached under the delta key namespace — structurally
// disjoint from cold place keys — so a delta plan can never shadow or
// displace the cold entry for the same graph.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	ctx, rid, finish := s.beginTelemetry(w, r, "delta")
	req, err := DecodeDeltaRequest(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		finish(s.httpError(w, "delta", rid, err))
		return
	}
	opts, err := req.Options.normalized(s.cfg)
	if err != nil {
		finish(s.httpError(w, "delta", rid, err))
		return
	}
	baseFP, _ := hex32(req.BaseFingerprint) // validated by the decoder
	base, ok := s.bases.get(baseFP)
	if !ok {
		finish(s.httpError(w, "delta", rid,
			fmt.Errorf("base graph %s not resident here: %w", req.BaseFingerprint, ErrUnknownBase)))
		return
	}
	edited, nodeMap, err := incr.ApplyAll(base.g, req.Edits)
	if err != nil {
		finish(s.httpError(w, "delta", rid, fmt.Errorf("apply edits: %v: %w", err, ErrBadRequest)))
		return
	}
	if s.cfg.MaxGraphNodes > 0 && edited.NumNodes() > s.cfg.MaxGraphNodes {
		finish(s.httpError(w, "delta", rid,
			fmt.Errorf("edited graph has %d nodes, limit %d: %w", edited.NumNodes(), s.cfg.MaxGraphNodes, ErrTooLarge)))
		return
	}
	editedFP := edited.Fingerprint()
	key := deltaCacheKey(baseFP, incr.Fingerprint(req.Edits), opts)
	prior := placement.PriorPlacement{
		Graph:         base.g,
		Plan:          base.plan,
		NodeMap:       nodeMap,
		ChainDepth:    base.chain,
		AnchorQuality: base.anchor,
	}

	var body []byte
	var hit bool
	if opts.NoCache {
		body, err = s.solveDelta(ctx, edited, editedFP, baseFP, key, prior, opts)
	} else {
		body, hit, err = s.cache.getOrFill(ctx, key, editedFP, func(interest context.Context) ([]byte, error) {
			fillCtx, cancel := context.WithTimeout(s.baseCtx, 2*opts.budget()+5*time.Second)
			defer cancel()
			stop := context.AfterFunc(interest, cancel)
			defer stop()
			fillCtx = obs.Into(fillCtx, obs.From(ctx))
			return s.solveDelta(fillCtx, edited, editedFP, baseFP, key, prior, opts)
		})
	}
	if err != nil {
		finish(s.httpError(w, "delta", rid, err))
		return
	}
	// Make the edited graph a base for the next delta in the chain,
	// cache hits included: residency follows traffic, not just solves.
	var resp DeltaResponse
	if err := json.Unmarshal(body, &resp); err == nil {
		s.bases.put(editedFP, edited, resp.Plan, resp.ChainDepth, resp.AnchorQuality)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Pesto-Cache", cacheStatus(hit))
	w.Write(body)
	s.met.request("delta", "ok")
	s.met.cacheEvent(cacheStatus(hit))
	s.slo.observe("availability", false)
	finish("ok")
}

// solveDelta produces the serialized DeltaResponse for one admitted
// delta solve. Before taking a solver slot it checks for a near-hit:
// an exact cold solve of the edited graph already in the plan cache
// (same options) is re-wrapped as the delta answer — no solve at all.
func (s *Server) solveDelta(ctx context.Context, edited *graph.Graph, editedFP, baseFP, key [32]byte, prior placement.PriorPlacement, opts RequestOptions) ([]byte, error) {
	if cold, ok := s.cache.lookup(opts.cacheKey(editedFP)); ok {
		var cr PlaceResponse
		if err := json.Unmarshal(cold, &cr); err == nil {
			s.met.incremental("near-hit", 0, 0)
			cr.CacheKey = hex.EncodeToString(key[:])
			return json.Marshal(DeltaResponse{
				PlaceResponse:   cr,
				BaseFingerprint: hex.EncodeToString(baseFP[:]),
				FallbackReason:  "near-hit",
			})
		}
	}

	endSolve, err := s.beginSolve()
	if err != nil {
		return nil, err
	}
	defer endSolve()
	release, err := s.admit.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	start := time.Now()
	res, err := placement.Incremental(ctx, edited, opts.system(), prior, opts.placeOptions(s.cfg))
	elapsed := time.Since(start)
	if err != nil {
		s.met.observeSolve(elapsed, "error")
		return nil, err
	}
	s.met.observeSolve(elapsed, res.Provenance.Stage.String())
	s.met.planServed(res.Provenance.Stage.String())
	info := res.Provenance.Incremental
	path := "warm"
	if info.ColdFallback {
		path = "cold"
	}
	s.met.incremental(path, int64(info.DirtyGroups), int64(info.TotalGroups))

	return json.Marshal(DeltaResponse{
		PlaceResponse: PlaceResponse{
			Fingerprint: hex.EncodeToString(editedFP[:]),
			CacheKey:    hex.EncodeToString(key[:]),
			Plan:        res.Plan,
			Stage:       res.Provenance.Stage.String(),
			Degraded:    res.Provenance.Degraded,
			MakespanNs:  int64(res.SimulatedMakespan),
			PredictedNs: int64(res.PredictedMakespan),
			Verified:    true, // Incremental verifies warm plans unconditionally; cold path verifies via placeOptions
		},
		BaseFingerprint: hex.EncodeToString(baseFP[:]),
		Warm:            !info.ColdFallback,
		DirtyGroups:     info.DirtyGroups,
		TotalGroups:     info.TotalGroups,
		ReuseFraction:   info.ReuseFraction,
		ChainDepth:      info.ChainDepth,
		AnchorQuality:   info.AnchorQuality,
		FallbackReason:  info.FallbackReason,
	})
}
