// Package service turns the Pesto placement pipeline into a
// long-running placement-as-a-service daemon: clients POST a
// computation graph (the internal/graph JSON codec) plus options and
// receive a verified plan as deterministic JSON.
//
// The paper's solves are expensive by design (CPLEX minutes on large
// graphs); the whole point of a serving layer is to pay that cost once
// and amortize it. Three mechanisms do the amortizing:
//
//   - A content-addressed plan cache keyed by the graph's canonical
//     fingerprint plus the normalized options, with LRU eviction and
//     singleflight fill: N concurrent requests for one graph trigger
//     exactly one solve, and repeat requests are answered from memory
//     with byte-identical bodies.
//   - Admission control: bounded solver concurrency, a bounded wait
//     queue, and per-request deadlines mapped onto the degradation
//     ladder's entry rung (tight budget → heuristic rung, generous →
//     exact ILP). Saturation answers 429/503 with Retry-After instead
//     of queueing unboundedly.
//   - Every cache-filling solve runs with verification on: a plan that
//     fails the independent invariant checker never enters the cache,
//     so a poisoned cache entry is impossible.
//
// The package uses only the standard library (net/http, no deps) and
// exposes /v1/place, /v1/trace, /healthz and a hand-rolled Prometheus
// /metrics. See DESIGN.md, "Serving model".
package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pesto/internal/flight"
	"pesto/internal/graph"
	"pesto/internal/obs"
	"pesto/internal/placement"
	"pesto/internal/sim"
	"pesto/internal/trace"
)

// Config sizes the daemon. The zero value of every field means "use
// the default".
type Config struct {
	// MaxConcurrentSolves bounds simultaneously running solves; zero
	// means 2. Each solve itself fans out over Parallel workers, so
	// total solver CPU ≈ MaxConcurrentSolves × Parallel.
	MaxConcurrentSolves int
	// QueueDepth bounds requests waiting for a solver slot; zero means
	// 8, negative means no queue at all. Requests beyond slots+queue
	// get 429.
	QueueDepth int
	// CacheEntries bounds the plan cache; zero means 256.
	CacheEntries int
	// DefaultBudget is the solve budget for requests that set none;
	// zero means 10s.
	DefaultBudget time.Duration
	// MaxBudget caps any requested budget; zero means 60s.
	MaxBudget time.Duration
	// Parallel is the per-solve worker-pool width handed to the
	// placement pipeline; zero means GOMAXPROCS.
	Parallel int
	// MaxBodyBytes bounds request bodies; zero means 32 MiB.
	MaxBodyBytes int64
	// MaxGraphNodes bounds accepted graph sizes; zero means 50000.
	MaxGraphNodes int
	// RetryAfter is the hint returned with 429/503; zero means 1s.
	RetryAfter time.Duration
	// Logger, when set, receives one structured line per telemetry
	// record (JSONL when backed by slog.NewJSONHandler) with the request
	// ID on every line. Nil disables request logging.
	Logger *slog.Logger
	// SpanHistory bounds how many recent requests keep their span dumps
	// for GET /v1/requests/{id}/spans; zero means 64.
	SpanHistory int
	// BaseGraphEntries bounds the resident base-graph store backing
	// POST /v1/place/delta; zero means 128. Evicted bases make deltas
	// against them 404 (clients fall back to a full place) — plans are
	// unaffected, they live in the plan cache.
	BaseGraphEntries int
	// FlightDir is where the flight recorder persists triggered repro
	// bundles; empty keeps captures in memory only (still counted and
	// visible in /metrics, not written to disk).
	FlightDir string
	// FlightRingSize bounds the flight recorder's always-on telemetry
	// ring served at GET /debug/flight; zero means 4096 records.
	FlightRingSize int
	// FlightMaxBundles caps bundle files written per process; zero
	// means 64.
	FlightMaxBundles int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentSolves <= 0 {
		c.MaxConcurrentSolves = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 10 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 60 * time.Second
	}
	if c.MaxBudget < c.DefaultBudget {
		c.DefaultBudget = c.MaxBudget
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxGraphNodes <= 0 {
		c.MaxGraphNodes = 50000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BaseGraphEntries <= 0 {
		c.BaseGraphEntries = 128
	}
	return c
}

// Server is the placement-as-a-service daemon. Construct with New,
// mount as an http.Handler, and Drain before exit.
type Server struct {
	cfg    Config
	cache  *planCache
	bases  *baseStore
	admit  *admission
	met    *metrics
	mux    *http.ServeMux
	spans  *spanStore
	flight *flight.Recorder
	slo    *sloTracker

	// baseCtx bounds detached cache-fill solves; cancel aborts them
	// when a drain deadline expires (the hard stop).
	baseCtx context.Context
	cancel  context.CancelFunc
	// solves tracks in-flight solve work for graceful drain. solveMu
	// orders registration against Drain: a WaitGroup counter may not go
	// 0→1 concurrently with Wait, so beginSolve registers under the
	// same lock Drain takes before waiting — a solve either registered
	// before the drain began or is rejected.
	solveMu  sync.Mutex
	solves   sync.WaitGroup
	draining atomic.Bool
}

// errDraining rejects solve work that arrives after Drain began.
var errDraining = errors.New("server draining")

// beginSolve registers one unit of solve work, unless draining. It is
// the *single* drain gate: handlers do not pre-check the draining flag
// (a request admitted between such a check and registration would race
// Drain), so every solve-shaped request takes exactly one consistent
// path to its 503 — errDraining surfacing out of the solve. Cache hits
// keep being served during drain; only new solve work is refused.
// The returned release func is non-nil exactly when err is nil.
func (s *Server) beginSolve() (release func(), err error) {
	s.solveMu.Lock()
	defer s.solveMu.Unlock()
	if s.draining.Load() {
		return nil, errDraining
	}
	s.solves.Add(1)
	return s.solves.Done, nil
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newPlanCache(cfg.CacheEntries),
		bases: newBaseStore(cfg.BaseGraphEntries),
		admit: newAdmission(cfg.MaxConcurrentSolves, cfg.QueueDepth),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
		spans: newSpanStore(cfg.SpanHistory),
		flight: flight.New(flight.Config{
			Dir:        cfg.FlightDir,
			RingSize:   cfg.FlightRingSize,
			MaxBundles: cfg.FlightMaxBundles,
		}),
		slo: newSLOTracker(nil),
	}
	// A fast-burning SLO is itself a flight-recorder trigger: the
	// bundle carries the ring (recent spans across requests) even
	// though no single request is to blame.
	s.slo.onFastBurn = func(slo string, fast, slow float64) {
		s.flight.Capture(flight.Bundle{
			Trigger: "slo-fast-burn",
			Detail:  fmt.Sprintf("slo %s burning %.1fx budget (5m) / %.1fx (1h)", slo, fast, slow),
		})
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.met.queueDepth = s.admit.queueLen
	s.met.inFlight = s.admit.inFlight
	s.met.cacheEntries = func() int64 { return int64(s.cache.len()) }
	s.met.sloSnapshot = s.slo.snapshot
	s.met.flightStats = s.flight.Stats
	s.mux.HandleFunc("POST /v1/place", s.handlePlace)
	s.mux.HandleFunc("POST /v1/place/delta", s.handleDelta)
	s.mux.HandleFunc("POST /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/cache/export", s.handleCacheExport)
	s.mux.HandleFunc("POST /v1/cache/import", s.handleCacheImport)
	s.mux.HandleFunc("GET /v1/requests/{id}/spans", s.handleSpans)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting solve requests and waits for in-flight solves
// to finish. If ctx expires first, outstanding solves are cancelled
// (the hard stop) and ctx's error is returned; the call still waits
// for them to unwind before returning, so no solver goroutine outlives
// Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.solveMu.Lock()
	s.draining.Store(true)
	s.solveMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.solves.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// beginTelemetry opens the request's telemetry scope: it resolves the
// request ID (echoed on the response immediately, so error replies
// carry it too), builds a per-request recorder over a bounded memory
// sink plus the configured logger, and returns the context carrying
// the recorder along with the finish hook that flushes counters,
// retains the span dump for /v1/requests/{id}/spans, folds solver
// progress into /metrics and emits the summary log line.
func (s *Server) beginTelemetry(w http.ResponseWriter, r *http.Request, endpoint string) (ctx context.Context, rid string, finish func(outcome string)) {
	rid = requestID(r)
	w.Header().Set("X-Request-ID", rid)
	// Sinks: the per-request bounded memory sink (the span dump), the
	// process-wide flight-recorder ring (always on), and optionally the
	// structured logger.
	sink := obs.NewBoundedMemorySink(requestSinkLimit)
	sinks := []obs.Sink{sink, s.flight.Ring()}
	var logger *slog.Logger
	if s.cfg.Logger != nil {
		logger = s.cfg.Logger.With("requestId", rid, "endpoint", endpoint)
		sinks = append(sinks, obs.NewSlogSink(logger))
	}
	rec := obs.NewRecorder(sinks...)
	// A fleet router hop arrives with an X-Pesto-Trace context; echo it
	// and tag this request's telemetry with it, so the stitched trace
	// and the span dump agree on which hop the records belong to.
	var tc obs.TraceContext
	if h := r.Header.Get(obs.TraceHeader); h != "" {
		if parsed, err := obs.ParseTraceHeader(h); err == nil {
			tc = parsed
			w.Header().Set(obs.TraceHeader, h)
			rec.Point("fleet.hop",
				obs.String("traceId", tc.TraceID),
				obs.Int("hop", int64(tc.Hop)))
		}
	}
	start := time.Now()
	finish = func(outcome string) {
		rec.FlushCounters()
		s.spans.put(rid, sink.Records())
		s.met.solverProgress(rec.Counter("ilp.nodes"), rec.Counter("lp.pivots"), rec.Counter("ilp.incumbents"),
			rec.Counter("lp.solves"), rec.Counter("lp.warmstart.hits"), rec.Counter("lp.warmstart.misses"))
		if logger != nil {
			logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("outcome", outcome),
				slog.Int64("durUs", time.Since(start).Microseconds()))
		}
	}
	ctx = obs.Into(r.Context(), rec)
	ctx = withReqMeta(ctx, reqMeta{rid: rid, traceID: tc.TraceID})
	return ctx, rid, finish
}

// handlePlace serves POST /v1/place: decode, normalize, answer from
// the cache or solve once, and reply with the deterministic response
// body. Cache status and solve wall-clock travel in headers
// (X-Pesto-Cache, X-Pesto-Solve-Ms) so identical requests stay
// byte-identical in the body.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	ctx, rid, finish := s.beginTelemetry(w, r, "place")
	req, opts, err := s.decode(r)
	if err != nil {
		finish(s.httpError(w, "place", rid, err))
		return
	}
	body, hit, err := s.respond(ctx, req, opts)
	if err != nil {
		finish(s.httpError(w, "place", rid, err))
		return
	}
	// A successfully placed graph becomes a valid base for
	// POST /v1/place/delta — hits included, so residency follows
	// traffic across restarts of the client, not just cold solves.
	s.registerBase(req.Graph.Fingerprint(), req.Graph, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Pesto-Cache", cacheStatus(hit))
	w.Write(body)
	s.met.request("place", "ok")
	s.met.cacheEvent(cacheStatus(hit))
	s.slo.observe("availability", false)
	finish("ok")
}

// handleTrace serves POST /v1/trace: the same request body as
// /v1/place, answered with the Chrome Trace Event timeline
// (chrome://tracing, Perfetto) of one simulated training step under
// the plan the place path would return — same cache, same admission.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ctx, rid, finish := s.beginTelemetry(w, r, "trace")
	req, opts, err := s.decode(r)
	if err != nil {
		finish(s.httpError(w, "trace", rid, err))
		return
	}
	body, hit, err := s.respond(ctx, req, opts)
	if err != nil {
		finish(s.httpError(w, "trace", rid, err))
		return
	}
	var resp PlaceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		finish(s.httpError(w, "trace", rid, fmt.Errorf("decode cached response: %w", err)))
		return
	}
	sys := opts.system()
	step, err := sim.Run(req.Graph, sys, resp.Plan)
	if err != nil {
		finish(s.httpError(w, "trace", rid, fmt.Errorf("simulate for trace: %w", err)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Pesto-Cache", cacheStatus(hit))
	w.Header().Set("Content-Disposition", `attachment; filename="pesto-trace.json"`)
	if err := trace.WriteChromeTrace(w, req.Graph, sys, resp.Plan, step); err != nil {
		// Headers are gone; nothing recoverable. Count it and move on.
		s.met.request("trace", "error")
		s.slo.observe("availability", true)
		finish("error")
		return
	}
	s.met.request("trace", "ok")
	s.met.cacheEvent(cacheStatus(hit))
	s.slo.observe("availability", false)
	finish("ok")
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"queueDepth":     s.admit.queueLen(),
		"inFlightSolves": s.admit.inFlight(),
		"cacheEntries":   s.cache.len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
}

// decode reads and normalizes one solve-shaped request.
func (s *Server) decode(r *http.Request) (*PlaceRequest, RequestOptions, error) {
	req, err := DecodePlaceRequest(r.Body, s.cfg.MaxBodyBytes, s.cfg.MaxGraphNodes)
	if err != nil {
		return nil, RequestOptions{}, err
	}
	opts, err := req.Options.normalized(s.cfg)
	if err != nil {
		return nil, RequestOptions{}, err
	}
	return req, opts, nil
}

// respond produces the deterministic response body for a normalized
// request: from the cache when possible, by solving otherwise.
func (s *Server) respond(ctx context.Context, req *PlaceRequest, opts RequestOptions) (body []byte, hit bool, err error) {
	fp := req.Graph.Fingerprint()
	key := opts.cacheKey(fp)
	if opts.NoCache {
		// Uncached solves run entirely under the request context:
		// client disconnect aborts the solve (leak_test.go in
		// internal/placement proves nothing outlives it).
		body, err = s.solve(ctx, req.Graph, fp, key, opts)
		return body, false, err
	}
	return s.cache.getOrFill(ctx, key, fp, func(interest context.Context) ([]byte, error) {
		// Cache fills run on their own goroutine, detached from any one
		// request's context: with singleflight, followers may be waiting
		// on this solve, so the first requester hanging up must not kill
		// their answer. The fill is bounded by the solve budget (plus
		// ladder slack), the server's own lifetime, and the interest
		// context — which the cache cancels only when *every* waiter has
		// abandoned the key, so a solve nobody wants frees its solver
		// slot instead of running to completion.
		fillCtx, cancel := context.WithTimeout(s.baseCtx, 2*opts.budget()+5*time.Second)
		defer cancel()
		stop := context.AfterFunc(interest, cancel)
		defer stop()
		// Detaching drops the request context's values too, so the
		// requester's recorder is re-injected: the fill's spans and
		// solver counters still land in its telemetry. The request
		// metadata rides along for the flight recorder's bundles.
		fillCtx = obs.Into(fillCtx, obs.From(ctx))
		fillCtx = withReqMeta(fillCtx, reqMetaFrom(ctx))
		return s.solve(fillCtx, req.Graph, fp, key, opts)
	})
}

// solve runs one admitted, verified placement and serializes the
// deterministic response body.
func (s *Server) solve(ctx context.Context, g *graph.Graph, fp, key [32]byte, opts RequestOptions) ([]byte, error) {
	endSolve, err := s.beginSolve()
	if err != nil {
		return nil, err
	}
	defer endSolve()
	release, err := s.admit.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	start := time.Now()
	res, err := placement.PlaceMultiGPU(ctx, g, opts.system(), opts.placeOptions(s.cfg))
	elapsed := time.Since(start)
	if err != nil {
		s.met.observeSolve(elapsed, "error")
		if errors.Is(err, placement.ErrVerification) {
			// A verification failure is exactly what the flight recorder
			// exists for: capture the full repro before the error
			// propagates.
			s.captureBundle(ctx, "verify-failure", err.Error(), g, fp, opts, "", elapsed, 0, nil)
		}
		return nil, err
	}
	stage := res.Provenance.Stage.String()
	s.met.observeSolve(elapsed, stage)
	s.met.planServed(stage)
	s.slo.observeLatency(stage, elapsed)
	if pi := res.Provenance.Pipeline; pi != nil {
		s.met.pipelinePlanServed(pi.Schedule, pi.Stages, pi.Bubble)
	}

	body, err := json.Marshal(placeResponse(fp, key, res))
	if err != nil {
		return nil, err
	}
	// Flight-recorder triggers, checked against the rolling baseline
	// after the solve is already serialized (captures never delay or
	// fail a response). A ladder collapse to the last rung outranks a
	// merely slow solve.
	slow, p99 := s.flight.SlowSolve(elapsed)
	switch {
	case res.Provenance.Degraded && res.Provenance.Stage == placement.StageFallback:
		s.captureBundle(ctx, "degraded-fallback", "ladder degraded to "+stage,
			g, fp, opts, stage, elapsed, p99, body)
	case slow:
		s.captureBundle(ctx, "slow-solve",
			fmt.Sprintf("solve %v vs rolling p99 %v", elapsed, p99),
			g, fp, opts, stage, elapsed, p99, body)
	}
	return body, nil
}

// placeResponse builds the deterministic response for one solve
// result. It is shared by the serving path and bundle replay, so a
// replayed solve reproduces the exact served bytes.
func placeResponse(fp, key [32]byte, res *placement.Result) PlaceResponse {
	return PlaceResponse{
		Fingerprint: hex.EncodeToString(fp[:]),
		CacheKey:    hex.EncodeToString(key[:]),
		Plan:        res.Plan,
		Stage:       res.Provenance.Stage.String(),
		Degraded:    res.Provenance.Degraded,
		MakespanNs:  int64(res.SimulatedMakespan),
		PredictedNs: int64(res.PredictedMakespan),
		Verified:    true, // placeOptions forces Verify; failures error out above
		Pipeline:    res.Provenance.Pipeline,
	}
}

// captureBundle snapshots one triggered repro bundle: the exact graph
// and normalized options (replayable by `pesto -replay-bundle`), the
// served response bytes when one exists, the request's solver counters
// and the flight ring. Failures to capture are deliberately silent —
// the flight recorder must never fail a request.
func (s *Server) captureBundle(ctx context.Context, trigger, detail string, g *graph.Graph,
	fp [32]byte, opts RequestOptions, stage string, elapsed, p99 time.Duration, respBody []byte) {
	var gbuf bytes.Buffer
	if err := g.WriteJSON(&gbuf); err != nil {
		return
	}
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		return
	}
	meta := reqMetaFrom(ctx)
	b := flight.Bundle{
		Trigger:       trigger,
		Detail:        detail,
		RequestID:     meta.rid,
		TraceID:       meta.traceID,
		Fingerprint:   hex.EncodeToString(fp[:]),
		Stage:         stage,
		Seed:          opts.Seed,
		SolveNs:       elapsed.Nanoseconds(),
		BaselineP99Ns: p99.Nanoseconds(),
		Graph:         gbuf.Bytes(),
		Options:       optsJSON,
		Replayable:    true,
	}
	if len(respBody) > 0 {
		b.Response = json.RawMessage(respBody)
	}
	if c := obs.From(ctx).Counters(); len(c) > 0 {
		b.Counters = c
	}
	s.flight.Capture(b)
}

// httpError maps an error onto its status code, emits the JSON error
// body and records the outcome metric. It returns the outcome label so
// callers can close their telemetry scope with it.
func (s *Server) httpError(w http.ResponseWriter, endpoint, rid string, err error) string {
	var code int
	var outcome string
	switch {
	case errors.Is(err, ErrBadRequest):
		code, outcome = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrTooLarge):
		code, outcome = http.StatusRequestEntityTooLarge, "too_large"
	case errors.Is(err, ErrUnknownBase):
		code, outcome = http.StatusNotFound, "unknown_base"
	case errors.Is(err, ErrSaturated):
		code, outcome = http.StatusTooManyRequests, "saturated"
	case errors.Is(err, ErrQueueTimeout):
		code, outcome = http.StatusServiceUnavailable, "queue_timeout"
	case errors.Is(err, errDraining):
		code, outcome = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code, outcome = http.StatusServiceUnavailable, "cancelled"
	case errors.Is(err, placement.ErrUnsupportedSystem),
		errors.Is(err, placement.ErrNoPlacement),
		errors.Is(err, placement.ErrVerification),
		errors.Is(err, sim.ErrOOM),
		errors.Is(err, sim.ErrBadPlacement):
		code, outcome = http.StatusUnprocessableEntity, "unprocessable"
	default:
		code, outcome = http.StatusInternalServerError, "error"
	}
	s.reject(w, endpoint, rid, code, outcome, err)
	return outcome
}

// reject writes one JSON error response with overload hints. The
// request ID rides in the body so clients quoting an error can be
// correlated with logs and span dumps; 429/503 responses carry the
// Retry-After hint both as the standard header and as parseable
// seconds in the body (retryAfterSec), so clients that only see the
// body can still back off correctly.
func (s *Server) reject(w http.ResponseWriter, endpoint, rid string, code int, outcome string, err error) {
	w.Header().Set("Content-Type", "application/json")
	resp := ErrorResponse{Error: err.Error(), RequestID: rid}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		resp.RetryAfterSec = int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(resp.RetryAfterSec, 10))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
	s.met.request(endpoint, outcome)
	// Availability SLO: only server-side failures burn the error
	// budget. 4xx rejections are the client's problem.
	s.slo.observe("availability", code >= 500)
}

func cacheStatus(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// WarmFromDir pre-fills the cache from a directory of graph JSON files
// (*.json, the WriteGraph schema), solving each with default options.
// It returns the number of graphs warmed; the first decode or solve
// error aborts the warm-up. Deterministic order (sorted filenames) so
// warm-up is reproducible.
func (s *Server) WarmFromDir(ctx context.Context, dir string) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(names)
	warmed := 0
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		f, err := os.Open(name)
		if err != nil {
			return warmed, err
		}
		g, err := graph.ReadJSON(f)
		f.Close()
		if err != nil {
			return warmed, fmt.Errorf("warm %s: %w", name, err)
		}
		opts, err := RequestOptions{}.normalized(s.cfg)
		if err != nil {
			return warmed, err
		}
		if _, _, err := s.respond(ctx, &PlaceRequest{Graph: g, Options: opts}, opts); err != nil {
			return warmed, fmt.Errorf("warm %s: %w", name, err)
		}
		warmed++
	}
	return warmed, nil
}

// CacheStats reports fill/eviction counters for tests and operators.
func (s *Server) CacheStats() (fills, evictions int64, entries int) {
	return s.cache.fills.Load(), s.cache.evictions.Load(), s.cache.len()
}
