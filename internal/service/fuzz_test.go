package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pesto/internal/gen"
)

// FuzzDecodePlaceRequest holds the request decoder to its contract: any
// input either decodes into a valid request or fails with an error that
// maps to a 4xx (ErrBadRequest or ErrTooLarge). Nothing a client sends
// may panic the daemon.
func FuzzDecodePlaceRequest(f *testing.F) {
	g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: 1, Nodes: 8})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(PlaceRequest{Graph: g, Options: RequestOptions{BudgetMs: 100}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{"graph": null}`)
	f.Add(`{"graph": {"nodes": [], "edges": []}}`)
	f.Add(`{"graph": {"nodes": [{"id": 0, "kind": "gpu"}], "edges": [{"from": 0, "to": 0}]}}`)
	f.Add(`{"graph": {"nodes": [{"id": 5}]}}`)
	f.Add(`{"options": {"gpus": -1}}`)
	f.Add(`{} {}`)
	f.Add(`[1,2,3]`)
	f.Add(`"`)
	f.Add(strings.Repeat("9", 4096))

	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodePlaceRequest(strings.NewReader(body), 1<<20, 1000)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("error %v maps to 500, want a 4xx error", err)
			}
			return
		}
		if req == nil || req.Graph == nil {
			t.Fatal("nil request without error")
		}
		// A decoded graph must be structurally valid: the solver relies
		// on it downstream.
		if err := req.Graph.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid graph: %v", err)
		}
		// Options must either normalize or reject as a bad request.
		if _, err := req.Options.normalized(Config{}.withDefaults()); err != nil && !errors.Is(err, ErrBadRequest) {
			t.Fatalf("normalize error %v is not ErrBadRequest", err)
		}
	})
}

// FuzzPlaceHandler drives the full HTTP surface: malformed bodies must
// come back 400/413, never 500, and never crash the server.
func FuzzPlaceHandler(f *testing.F) {
	f.Add(`{"graph": [`)
	f.Add(`{"graph": {"nodes": [{"id": 0, "kind": "gpu", "costNanos": 5}], "edges": []}, "options": {"budgetMs": 1}}`)
	f.Add(``)

	s := New(Config{MaxBodyBytes: 1 << 16, MaxGraphNodes: 64, DefaultBudget: 10 * time.Millisecond})
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/place", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusUnprocessableEntity, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("status %d for body %q: %s", rec.Code, body, rec.Body.String())
		}
		if rec.Code != http.StatusOK {
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("non-2xx body %q is not an ErrorResponse", rec.Body.String())
			}
		} else if !bytes.Contains(rec.Body.Bytes(), []byte(`"verified":true`)) {
			t.Fatalf("200 response without verified plan: %s", rec.Body.String())
		}
	})
}
