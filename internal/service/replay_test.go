package service

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pesto/internal/flight"
)

// hairTriggerFlight swaps in a flight recorder that flags every solve
// after the first as slow, so tests can force captures without real
// slowness.
func hairTriggerFlight(s *Server, dir string) {
	s.flight = flight.New(flight.Config{
		Dir:        dir,
		MinSamples: 1,
		SlowFactor: 1e-9,
		SlowFloor:  time.Nanosecond,
	})
}

// TestFlightCaptureAndReplay drives two solves through the HTTP
// surface, lets the second trigger a slow-solve bundle, and replays
// the bundle: the re-executed solve must reproduce the served response
// byte-for-byte.
func TestFlightCaptureAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{})
	hairTriggerFlight(s, dir)

	opts := fastOptions()
	opts.NoCache = true // every request must really solve
	readAll(t, post(t, ts.URL+"/v1/place", testBody(t, 1, opts)))
	served := readAll(t, post(t, ts.URL+"/v1/place", testBody(t, 2, opts)))

	matches, err := filepath.Glob(filepath.Join(dir, "bundle-*-slow-solve.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no slow-solve bundle written (err=%v)", err)
	}
	b, err := flight.ReadBundleFile(matches[0])
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	if !b.Replayable || b.RequestID == "" || b.Seed != 0 && b.Seed != opts.Seed {
		t.Fatalf("bundle incomplete: %+v", b)
	}
	if string(compactJSON(b.Response)) != strings.TrimSpace(string(served)) {
		t.Fatalf("bundle response differs from served bytes")
	}

	res, err := ReplayBundle(context.Background(), b, 0)
	if err != nil {
		t.Fatalf("ReplayBundle: %v", err)
	}
	if !res.Match {
		t.Fatalf("replay mismatch:\ngot:  %s\nwant: %s", res.Got, res.Want)
	}
	// And again at a different worker count: bytes must not move.
	res1, err := ReplayBundle(context.Background(), b, 1)
	if err != nil || !res1.Match {
		t.Fatalf("replay at parallel=1: match=%v err=%v", res1.Match, err)
	}
}

func TestReplayBundleRejectsNonReplayable(t *testing.T) {
	if _, err := ReplayBundle(context.Background(), flight.Bundle{Trigger: "slo-fast-burn"}, 0); err == nil {
		t.Fatalf("non-replayable bundle accepted")
	}
}

// TestDebugFlightEndpoint checks the always-on ring surfaces request
// telemetry at GET /debug/flight.
func TestDebugFlightEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	readAll(t, post(t, ts.URL+"/v1/place", testBody(t, 3, fastOptions())))

	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatalf("GET /debug/flight: %v", err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Records      []spanDumpRecord `json:"records"`
		TotalRecords uint64           `json:"totalRecords"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Records) == 0 || out.TotalRecords == 0 {
		t.Fatalf("ring empty after a solve: %d records, total %d", len(out.Records), out.TotalRecords)
	}
}

// TestTraceHeaderTagging checks a request arriving with a fleet trace
// context echoes it and tags its span dump with the hop.
func TestTraceHeaderTagging(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/place",
		strings.NewReader(string(testBody(t, 4, fastOptions()))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Pesto-Trace", "trace-abc;hop=2;parent=0")
	req.Header.Set("X-Request-ID", "trace-abc.h2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("X-Pesto-Trace"); got != "trace-abc;hop=2;parent=0" {
		t.Fatalf("trace header not echoed: %q", got)
	}

	dump := readAll(t, mustGet(t, ts.URL+"/v1/requests/trace-abc.h2/spans"))
	var out struct {
		Records []spanDumpRecord `json:"records"`
	}
	if err := json.Unmarshal(dump, &out); err != nil {
		t.Fatalf("decode span dump: %v", err)
	}
	found := false
	for _, r := range out.Records {
		if r.Kind == "point" && r.Name == "fleet.hop" &&
			r.Attrs["traceId"] == "trace-abc" && r.Attrs["hop"] == "2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet.hop tag missing from span dump: %s", dump)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp
}
