package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"pesto/internal/graph"
	"pesto/internal/pipeline"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// Errors reported by request decoding and validation. Every one of
// them maps to a 4xx status; nothing a client sends may panic the
// daemon (the fuzz target holds the decoder to this).
var (
	// ErrBadRequest marks malformed or invalid request bodies (400).
	ErrBadRequest = errors.New("bad request")
	// ErrTooLarge marks request bodies or graphs over the configured
	// limits (413).
	ErrTooLarge = errors.New("request too large")
)

// PlaceRequest is the JSON body of POST /v1/place and POST /v1/trace:
// a computation graph in the internal/graph codec plus normalized
// placement options.
type PlaceRequest struct {
	// Graph is the computation DAG to place, in the same JSON schema
	// WriteGraph emits. Decoding validates structure and acyclicity.
	Graph *graph.Graph `json:"graph"`
	// Options configures the target system and the solve.
	Options RequestOptions `json:"options"`
}

// RequestOptions is the client-facing option surface. The zero value
// of every field means "use the default"; normalized resolves the
// defaults and bounds so equal requests always mean equal cache keys.
type RequestOptions struct {
	// GPUs is the number of GPUs per host; zero means 2 (the paper's
	// testbed).
	GPUs int `json:"gpus,omitempty"`
	// Hosts is the number of hosts; zero means 1. Hosts > 1 builds the
	// hierarchical multi-host topology (NVLink within a host, a
	// datacenter link between hosts).
	Hosts int `json:"hosts,omitempty"`
	// GPUMemBytes is the per-GPU memory capacity; zero means 16 GiB.
	GPUMemBytes int64 `json:"gpuMemBytes,omitempty"`
	// BudgetMs bounds the solve in milliseconds and selects the
	// degradation-ladder entry rung (tight budgets start at the
	// heuristic rung, generous ones at the exact ILP). Zero means the
	// server's default budget; values above the server's maximum are
	// clamped down to it.
	BudgetMs int64 `json:"budgetMs,omitempty"`
	// Seed seeds the deterministic parts of the heuristics.
	Seed int64 `json:"seed,omitempty"`
	// ScheduleFromILP attaches an explicit per-device order to the plan
	// (Pesto's control dependencies) instead of placement-only FIFO.
	ScheduleFromILP bool `json:"scheduleFromILP,omitempty"`
	// Verify requests the verification verdict in the response. It
	// does not change the plan: every solve that fills the cache is
	// verified unconditionally (a poisoned cache entry is impossible),
	// so this flag only surfaces what already happened.
	Verify bool `json:"verify,omitempty"`
	// NoCache bypasses the plan cache for this request: the solve runs
	// fresh and its result is not stored. Benchmarks and ablations use
	// it; production callers should not.
	NoCache bool `json:"noCache,omitempty"`
	// PipelineMicrobatches switches the solve into the microbatched
	// pipeline-parallel planning regime with this many microbatches.
	// Zero (the default) keeps the classic single-shot ladder.
	PipelineMicrobatches int `json:"pipelineMicrobatches,omitempty"`
	// PipelineSchedule pins the microbatch discipline ("gpipe" or
	// "1f1b"); empty means the planner scores both and keeps the
	// better. Only valid with PipelineMicrobatches > 0.
	PipelineSchedule string `json:"pipelineSchedule,omitempty"`
}

// normalized resolves defaults and enforces bounds. The returned
// options are what the cache key and the solver consume; requests that
// normalize equal are the same request.
func (o RequestOptions) normalized(cfg Config) (RequestOptions, error) {
	if o.GPUs == 0 {
		o.GPUs = 2
	}
	if o.GPUs < 2 || o.GPUs > 64 {
		return o, fmt.Errorf("gpus %d out of range [2,64]: %w", o.GPUs, ErrBadRequest)
	}
	if o.Hosts == 0 {
		o.Hosts = 1
	}
	if o.Hosts < 1 || o.Hosts > 16 {
		return o, fmt.Errorf("hosts %d out of range [1,16]: %w", o.Hosts, ErrBadRequest)
	}
	if o.GPUMemBytes == 0 {
		o.GPUMemBytes = 16 << 30
	}
	if o.GPUMemBytes < 0 {
		return o, fmt.Errorf("gpuMemBytes %d negative: %w", o.GPUMemBytes, ErrBadRequest)
	}
	if o.BudgetMs < 0 {
		return o, fmt.Errorf("budgetMs %d negative: %w", o.BudgetMs, ErrBadRequest)
	}
	if o.BudgetMs == 0 {
		// A sub-millisecond server default must not truncate to zero:
		// BudgetMs 0 would mean "no ILP time limit".
		if o.BudgetMs = cfg.DefaultBudget.Milliseconds(); o.BudgetMs == 0 {
			o.BudgetMs = 1
		}
	}
	if max := cfg.MaxBudget.Milliseconds(); o.BudgetMs > max {
		o.BudgetMs = max
	}
	if o.PipelineMicrobatches < 0 || o.PipelineMicrobatches > pipeline.MaxMicrobatches {
		return o, fmt.Errorf("pipelineMicrobatches %d out of range [0,%d]: %w",
			o.PipelineMicrobatches, pipeline.MaxMicrobatches, ErrBadRequest)
	}
	if o.PipelineSchedule != "" {
		if o.PipelineMicrobatches == 0 {
			return o, fmt.Errorf("pipelineSchedule without pipelineMicrobatches: %w", ErrBadRequest)
		}
		kind, err := pipeline.ParseSchedule(o.PipelineSchedule)
		if err != nil {
			return o, fmt.Errorf("pipelineSchedule %q: %v: %w", o.PipelineSchedule, err, ErrBadRequest)
		}
		// Canonical name, so aliases ("fill-drain", "pipedream") share a
		// cache key with their canonical spelling; "auto" folds into the
		// empty default for the same reason.
		if kind == pipeline.ScheduleAuto {
			o.PipelineSchedule = ""
		} else {
			o.PipelineSchedule = kind.String()
		}
	}
	return o, nil
}

// budget is the normalized solve budget as a duration.
func (o RequestOptions) budget() time.Duration {
	return time.Duration(o.BudgetMs) * time.Millisecond
}

// system builds the target hardware model.
func (o RequestOptions) system() sim.System {
	if o.Hosts > 1 {
		return sim.NewMultiHostSystem(o.Hosts, o.GPUs, o.GPUMemBytes)
	}
	return sim.NewSystem(o.GPUs, o.GPUMemBytes)
}

// placeOptions maps the normalized request onto the placement
// pipeline. Verification is always on: no plan enters the cache (or
// leaves the server) unchecked.
func (o RequestOptions) placeOptions(cfg Config) placement.Options {
	budget := o.budget()
	opts := placement.Options{
		ILPTimeLimit:    budget,
		StartStage:      placement.StageForDeadline(budget),
		Seed:            o.Seed,
		Parallel:        cfg.Parallel,
		ScheduleFromILP: o.ScheduleFromILP,
		Verify:          true,
	}
	if o.PipelineMicrobatches > 0 {
		kind, _ := pipeline.ParseSchedule(o.PipelineSchedule) // normalized already validated it
		opts.Pipeline = pipeline.Options{Microbatches: o.PipelineMicrobatches, Schedule: kind}
	}
	return opts
}

// cacheKeyVersion is folded into every cache key so the key changes
// whenever the response schema or the option serialization does.
const cacheKeyVersion = "pesto/service-key/v2\n"

// cacheKey derives the content address of a request: the graph's
// canonical fingerprint combined with every normalized option that can
// change the plan bytes. Verify and NoCache are deliberately excluded
// — neither changes the plan, so requests differing only in them share
// one cache entry.
func (o RequestOptions) cacheKey(fp [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte(cacheKeyVersion))
	h.Write(fp[:])
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(uint64(o.GPUs))
	u64(uint64(o.Hosts))
	u64(uint64(o.GPUMemBytes))
	u64(uint64(o.BudgetMs))
	u64(uint64(o.Seed))
	b := uint64(0)
	if o.ScheduleFromILP {
		b = 1
	}
	u64(b)
	u64(uint64(o.PipelineMicrobatches))
	u64(uint64(len(o.PipelineSchedule)))
	h.Write([]byte(o.PipelineSchedule))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// PlaceResponse is the JSON body served for a placed graph. Every
// field is deterministic for a fixed cache key, so identical requests
// receive byte-identical bodies (the cache stores and replays the
// serialized form verbatim). Per-request facts — cache hit or miss,
// wall-clock solve time — travel in response headers instead.
type PlaceResponse struct {
	// Fingerprint is the hex graph fingerprint (content address of the
	// graph alone).
	Fingerprint string `json:"fingerprint"`
	// CacheKey is the hex content address of graph + options — the key
	// the plan cache stores this response under.
	CacheKey string `json:"cacheKey"`
	// Plan is the placement (and optional schedule).
	Plan sim.Plan `json:"plan"`
	// Stage names the degradation-ladder rung that produced the plan.
	Stage string `json:"stage"`
	// Degraded is true when a rung below the requested entry rung
	// served the plan.
	Degraded bool `json:"degraded"`
	// MakespanNs is the simulated per-step training time of the plan.
	MakespanNs int64 `json:"makespanNs"`
	// PredictedNs is the solver's own objective value, when one exists.
	PredictedNs int64 `json:"predictedNs,omitempty"`
	// Verified records that the plan passed the independent invariant
	// checker before entering the cache. Always true on success paths.
	Verified bool `json:"verified"`
	// Pipeline carries the microbatched pipeline provenance (stage
	// shape, schedule, bubble fraction, per-stage utilization and peak
	// memory) when the solve ran in the pipeline regime.
	Pipeline *pipeline.Info `json:"pipeline,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response. RequestID
// matches the X-Request-ID response header, so an error quoted by a
// client can be correlated with server logs and span dumps.
// RetryAfterSec mirrors the Retry-After header on 429/503 responses —
// parseable backoff seconds for clients (and the fleet router) that
// only look at bodies.
type ErrorResponse struct {
	Error         string `json:"error"`
	RequestID     string `json:"requestId,omitempty"`
	RetryAfterSec int64  `json:"retryAfterSec,omitempty"`
}

// DecodePlaceRequest reads and validates one request body of at most
// limit bytes. Malformed JSON, schema violations, invalid graphs and
// oversized bodies are errors (wrapping ErrBadRequest or ErrTooLarge);
// no input makes it panic — the fuzz target's contract.
func DecodePlaceRequest(r io.Reader, limit int64, maxNodes int) (*PlaceRequest, error) {
	if limit <= 0 {
		limit = 32 << 20
	}
	lr := &io.LimitedReader{R: r, N: limit + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("read body: %v: %w", err, ErrBadRequest)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("body over %d bytes: %w", limit, ErrTooLarge)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req PlaceRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %v: %w", err, ErrBadRequest)
	}
	// Trailing garbage after the JSON value is a malformed request,
	// not an extension point.
	if dec.More() {
		return nil, fmt.Errorf("trailing data after request body: %w", ErrBadRequest)
	}
	if req.Graph == nil {
		return nil, fmt.Errorf("missing graph: %w", ErrBadRequest)
	}
	if req.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("empty graph: %w", ErrBadRequest)
	}
	if maxNodes > 0 && req.Graph.NumNodes() > maxNodes {
		return nil, fmt.Errorf("graph has %d nodes, limit %d: %w", req.Graph.NumNodes(), maxNodes, ErrTooLarge)
	}
	return &req, nil
}
