package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// Errors reported by admission control. Handlers map them onto the
// overload status codes: ErrSaturated → 429 (the wait queue itself is
// full — retry later), ErrQueueTimeout → 503 (the request queued but
// its deadline passed before a solver slot freed). Both responses
// carry Retry-After.
var (
	ErrSaturated    = errors.New("solver saturated: wait queue full")
	ErrQueueTimeout = errors.New("deadline passed while queued for a solver slot")
)

// admission bounds concurrent solver load: at most `slots` solves run
// at once, and at most `queueDepth` further requests may wait for a
// slot. Everything beyond that is rejected immediately — a saturated
// solver that queues unboundedly converts overload into latency and
// then into memory exhaustion; bounded admission converts it into fast
// 429s the client can back off on.
type admission struct {
	slots      chan struct{}
	queueDepth int64
	queued     atomic.Int64
}

func newAdmission(concurrency, queueDepth int) *admission {
	if concurrency <= 0 {
		concurrency = 2
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:      make(chan struct{}, concurrency),
		queueDepth: int64(queueDepth),
	}
}

// acquire claims a solver slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success. Waiting is
// bounded by ctx — a request whose deadline passes while queued gets
// ErrQueueTimeout, not a late solve it can no longer use.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	release = func() { <-a.slots }
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return release, nil
	default:
	}
	// Join the bounded wait queue.
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		return nil, ErrSaturated
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, errors.Join(ErrQueueTimeout, ctx.Err())
	}
}

// inFlight reports the number of running solves.
func (a *admission) inFlight() int64 { return int64(len(a.slots)) }

// queueLen reports the number of requests waiting for a slot.
func (a *admission) queueLen() int64 { return a.queued.Load() }
