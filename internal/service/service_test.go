package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pesto/internal/gen"
)

// testBody serializes one solve request for the generated graph.
func testBody(t *testing.T, seed int64, opts RequestOptions) []byte {
	t.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: seed, Nodes: 16})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	body, err := json.Marshal(PlaceRequest{Graph: g, Options: opts})
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return body
}

// fastOptions keeps test solves on the heuristic rung (milliseconds,
// not ILP seconds).
func fastOptions() RequestOptions { return RequestOptions{BudgetMs: 50} }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return data
}

func TestPlaceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := testBody(t, 1, fastOptions())

	resp := post(t, ts.URL+"/v1/place", body)
	first := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Pesto-Cache"); got != "miss" {
		t.Fatalf("first request X-Pesto-Cache = %q, want miss", got)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(first, &pr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !pr.Verified {
		t.Fatal("response not verified")
	}
	if pr.MakespanNs <= 0 {
		t.Fatalf("non-positive makespan %d", pr.MakespanNs)
	}
	if len(pr.Fingerprint) != 64 || len(pr.CacheKey) != 64 {
		t.Fatalf("bad content addresses: fp=%q key=%q", pr.Fingerprint, pr.CacheKey)
	}

	// The identical request must be a cache hit with a byte-identical
	// body.
	resp = post(t, ts.URL+"/v1/place", body)
	second := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pesto-Cache"); got != "hit" {
		t.Fatalf("repeat X-Pesto-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat response differs:\n%s\nvs\n%s", first, second)
	}
	if fills, _, _ := s.CacheStats(); fills != 1 {
		t.Fatalf("fills = %d, want 1", fills)
	}
}

func TestPlaceDistinctOptionsDistinctKeys(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := testBody(t, 1, RequestOptions{BudgetMs: 50, GPUs: 2})
	b := testBody(t, 1, RequestOptions{BudgetMs: 50, GPUs: 4})
	var keys [2]string
	for i, body := range [][]byte{a, b} {
		resp := post(t, ts.URL+"/v1/place", body)
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var pr PlaceResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		keys[i] = pr.CacheKey
		if keys[i] == "" {
			t.Fatal("empty cache key")
		}
	}
	if keys[0] == keys[1] {
		t.Fatalf("same cache key %s for different GPU counts", keys[0])
	}
}

func TestPlaceBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]string{
		"malformed":     `{"graph": [`,
		"unknown field": `{"graph": null, "bogus": 1}`,
		"missing graph": `{"options": {}}`,
		"trailing":      `{"options": {}} trailing`,
		"empty body":    ``,
		"bad options":   `{"graph":{"nodes":[{"id":0,"kind":"gpu","costNanos":10}],"edges":[]},"options":{"gpus":1}}`,
	}
	for name, body := range cases {
		resp := post(t, ts.URL+"/v1/place", []byte(body))
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, resp.StatusCode, data)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not ErrorResponse (%v)", name, data, err)
		}
	}
}

func TestPlaceTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	resp := post(t, ts.URL+"/v1/place", testBody(t, 1, fastOptions()))
	readAll(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}

	_, ts = newTestServer(t, Config{MaxGraphNodes: 3})
	resp = post(t, ts.URL+"/v1/place", testBody(t, 1, fastOptions()))
	readAll(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize graph: status %d, want 413", resp.StatusCode)
	}
}

func TestPlaceSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentSolves: 1, QueueDepth: -1})
	// Occupy the only solver slot so the request cannot run, with an
	// empty queue so it cannot wait either.
	s.admit.slots <- struct{}{}
	defer func() { <-s.admit.slots }()

	body := testBody(t, 1, RequestOptions{BudgetMs: 50, NoCache: true})
	resp := post(t, ts.URL+"/v1/place", body)
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestPlaceQueueTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentSolves: 1, QueueDepth: 4})
	s.admit.slots <- struct{}{}
	defer func() { <-s.admit.slots }()

	body := testBody(t, 1, RequestOptions{BudgetMs: 50, NoCache: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/place", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		// The client may give up before the server writes the 503; the
		// server-side outcome is still what we want to check, but a
		// transport error here is acceptable behavior too.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected transport error: %v", err)
		}
		return
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestDrainRejectsAndHealthTurns503(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp := post(t, ts.URL+"/v1/place", testBody(t, 1, fastOptions()))
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("place while draining: status %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, hr)
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hr.StatusCode)
	}
	if !strings.Contains(string(data), "draining") {
		t.Fatalf("healthz body %s does not report draining", data)
	}
}

func TestDrainDeadlineCancelsSolves(t *testing.T) {
	s := New(Config{})
	// Simulate one stuck in-flight solve.
	endSolve, err := s.beginSolve()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Drain(ctx) }()
	// The hard stop cancels baseCtx; the "solve" observes it and exits.
	go func() {
		<-s.baseCtx.Done()
		endSolve()
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("drain error %v, want deadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("healthz not JSON: %v (%s)", err, data)
	}
	if h["status"] != "ok" {
		t.Fatalf("status %v, want ok", h["status"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Generate some traffic first.
	post(t, ts.URL+"/v1/place", testBody(t, 1, fastOptions())).Body.Close()
	post(t, ts.URL+"/v1/place", testBody(t, 1, fastOptions())).Body.Close()
	post(t, ts.URL+"/v1/place", []byte("{")).Body.Close()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		return string(readAll(t, resp))
	}
	text := scrape()
	for _, want := range []string{
		`pestod_requests_total{endpoint="place",outcome="ok"} 2`,
		`pestod_requests_total{endpoint="place",outcome="bad_request"} 1`,
		`pestod_cache_events_total{event="hit"} 1`,
		`pestod_cache_events_total{event="miss"} 1`,
		"pestod_plans_total{stage=",
		"pestod_queue_depth 0",
		"pestod_inflight_solves 0",
		"pestod_cache_entries 1",
		`pestod_solve_duration_seconds_bucket{stage="heuristic-fallback",le="+Inf"} 1`,
		`pestod_solve_duration_seconds_count{stage="heuristic-fallback"} 1`,
		"pestod_bnb_nodes_total",
		"pestod_lp_pivots_total",
		"pestod_incumbent_improvements_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// An idle server scrapes byte-identically.
	if again := scrape(); again != text {
		t.Fatalf("idle scrapes differ:\n%s\nvs\n%s", text, again)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := testBody(t, 1, fastOptions())
	resp := post(t, ts.URL+"/v1/trace", body)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	// The trace request shares the plan cache with /v1/place.
	resp = post(t, ts.URL+"/v1/place", body)
	readAll(t, resp)
	if got := resp.Header.Get("X-Pesto-Cache"); got != "hit" {
		t.Fatalf("place after trace X-Pesto-Cache = %q, want hit", got)
	}
}

func TestWarmFromDir(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		g, err := gen.Generate(gen.Config{Family: gen.Chain, Seed: int64(i + 1), Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("g%d.json", i)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-graph file must abort the warm-up with an error.
	s, ts := newTestServer(t, Config{DefaultBudget: 50 * time.Millisecond})
	warmed, err := s.WarmFromDir(context.Background(), dir)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warmed != 3 {
		t.Fatalf("warmed %d, want 3", warmed)
	}
	if _, _, entries := s.CacheStats(); entries != 3 {
		t.Fatalf("cache entries %d, want 3", entries)
	}
	// A request for a warmed graph hits immediately.
	g, err := gen.Generate(gen.Config{Family: gen.Chain, Seed: 1, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(PlaceRequest{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/v1/place", body)
	readAll(t, resp)
	if got := resp.Header.Get("X-Pesto-Cache"); got != "hit" {
		t.Fatalf("warmed graph X-Pesto-Cache = %q, want hit", got)
	}

	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WarmFromDir(context.Background(), dir); err == nil {
		t.Fatal("warm over junk succeeded")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/place")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/place: status %d, want 405", resp.StatusCode)
	}
}

// TestPlacePipelineRequest drives the microbatched pipeline regime
// through the HTTP surface: the response carries the pipeline
// provenance, the plan stage is the pipeline rung, the cache key is
// sensitive to the pipeline options, and the pipeline metrics appear
// in the exposition.
func TestPlacePipelineRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	g, err := gen.Generate(gen.PipelineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(opts RequestOptions) []byte {
		body, err := json.Marshal(PlaceRequest{Graph: g, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	plain := mk(RequestOptions{BudgetMs: 500})
	piped := mk(RequestOptions{BudgetMs: 500, PipelineMicrobatches: 4, PipelineSchedule: "gpipe"})

	resp := post(t, ts.URL+"/v1/place", piped)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PlaceResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Stage != "pipeline-dp" || pr.Degraded {
		t.Fatalf("stage = %q degraded = %v, want pipeline-dp un-degraded", pr.Stage, pr.Degraded)
	}
	if pr.Pipeline == nil || pr.Pipeline.Microbatches != 4 || pr.Pipeline.Schedule != "gpipe" {
		t.Fatalf("pipeline provenance = %+v", pr.Pipeline)
	}
	if pr.Pipeline.Bubble < 0 || pr.Pipeline.Bubble >= 1 {
		t.Fatalf("bubble = %g", pr.Pipeline.Bubble)
	}

	// A plain request for the same graph gets its own cache entry and
	// no pipeline provenance.
	resp = post(t, ts.URL+"/v1/place", plain)
	data = readAll(t, resp)
	var plainPr PlaceResponse
	if err := json.Unmarshal(data, &plainPr); err != nil {
		t.Fatal(err)
	}
	if plainPr.CacheKey == pr.CacheKey {
		t.Fatal("pipeline options not folded into the cache key")
	}
	if plainPr.Pipeline != nil {
		t.Fatal("single-shot response carries pipeline provenance")
	}

	// Schedule aliases normalize onto one cache key.
	resp = post(t, ts.URL+"/v1/place", mk(RequestOptions{BudgetMs: 500, PipelineMicrobatches: 4, PipelineSchedule: "fill-drain"}))
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alias status %d: %s", resp.StatusCode, data)
	}
	var aliasPr PlaceResponse
	if err := json.Unmarshal(data, &aliasPr); err != nil {
		t.Fatal(err)
	}
	if aliasPr.CacheKey != pr.CacheKey {
		t.Fatal("fill-drain and gpipe landed on different cache keys")
	}

	// Invalid pipeline options are 400s.
	for name, opts := range map[string]RequestOptions{
		"schedule-without-mb": {BudgetMs: 500, PipelineSchedule: "gpipe"},
		"negative-mb":         {BudgetMs: 500, PipelineMicrobatches: -1},
		"unknown-schedule":    {BudgetMs: 500, PipelineMicrobatches: 4, PipelineSchedule: "zigzag"},
	} {
		resp := post(t, ts.URL+"/v1/place", mk(opts))
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, resp.StatusCode, body)
		}
	}

	// The pipeline metrics surfaced.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met := string(readAll(t, mresp))
	if !strings.Contains(met, `pestod_pipeline_plans_total{schedule="gpipe"} 1`) {
		t.Errorf("pipeline plan counter missing from exposition:\n%s", met)
	}
	if !strings.Contains(met, "pestod_pipeline_bubble_fraction_count 1") {
		t.Errorf("bubble summary missing from exposition")
	}
	_ = s
}
