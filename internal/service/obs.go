package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"

	"pesto/internal/obs"
)

// reqMeta is the request identity the flight recorder stamps into
// bundles: the request ID and (when the request arrived through the
// fleet router) its trace ID. It travels by context so detached
// cache-fill solves keep it.
type reqMeta struct {
	rid     string
	traceID string
}

type reqMetaKey struct{}

func withReqMeta(ctx context.Context, m reqMeta) context.Context {
	return context.WithValue(ctx, reqMetaKey{}, m)
}

func reqMetaFrom(ctx context.Context) reqMeta {
	m, _ := ctx.Value(reqMetaKey{}).(reqMeta)
	return m
}

// maxRequestIDLen caps client-supplied X-Request-ID values so a hostile
// header cannot bloat logs or the span store.
const maxRequestIDLen = 120

// requestSinkLimit bounds the per-request memory sink. A full solve
// emits tens of spans and a few hundred samples; 4096 leaves room for
// large B&B runs without letting one request hold megabytes.
const requestSinkLimit = 4096

// requestID returns the client's X-Request-ID when it is usable —
// printable ASCII, within length bounds — and otherwise generates one.
// The ID is echoed on the response, stamped into every log line and
// keys the span store, so one string follows a request through every
// telemetry surface.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > maxRequestIDLen {
		return newRequestID()
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return newRequestID()
		}
	}
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable in practice; a fixed ID
		// keeps the request serviceable and is only a telemetry label.
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// spanStore retains the telemetry records of the last N requests,
// keyed by request ID, for GET /v1/requests/{id}/spans. It is a ring:
// admitting request N+1 evicts the oldest. IDs are client-influenced,
// so a repeated ID simply overwrites its previous entry.
type spanStore struct {
	mu    sync.Mutex
	byID  map[string][]obs.Record
	order []string
	limit int
}

func newSpanStore(limit int) *spanStore {
	if limit <= 0 {
		limit = 64
	}
	return &spanStore{byID: make(map[string][]obs.Record), limit: limit}
}

func (st *spanStore) put(id string, recs []obs.Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		for len(st.order) >= st.limit {
			delete(st.byID, st.order[0])
			st.order = st.order[1:]
		}
		st.order = append(st.order, id)
	}
	st.byID[id] = recs
}

func (st *spanStore) get(id string) ([]obs.Record, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	recs, ok := st.byID[id]
	return recs, ok
}

// spanDumpRecord is the wire form of one telemetry record in the span
// dump: kinds by name, durations in nanoseconds, attributes folded
// into an object.
type spanDumpRecord struct {
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	TsNs   int64             `json:"tsNs"`
	DurNs  int64             `json:"durNs,omitempty"`
	Span   uint64            `json:"span,omitempty"`
	Parent uint64            `json:"parent,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// handleSpans serves GET /v1/requests/{id}/spans: the retained
// telemetry of one recent request — the span tree, counter flushes and
// solver progress samples — as JSON. Unknown or evicted IDs are 404.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	recs, ok := s.spans.get(id)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "no spans retained for request id", RequestID: id})
		return
	}
	out := struct {
		RequestID string           `json:"requestId"`
		Records   []spanDumpRecord `json:"records"`
	}{RequestID: id, Records: dumpRecords(recs)}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// dumpRecords converts telemetry records to the span-dump wire form.
func dumpRecords(recs []obs.Record) []spanDumpRecord {
	out := make([]spanDumpRecord, 0, len(recs))
	for _, rec := range recs {
		dr := spanDumpRecord{
			Kind:   rec.Kind.String(),
			Name:   rec.Name,
			TsNs:   int64(rec.Ts),
			DurNs:  int64(rec.Dur),
			Span:   rec.ID,
			Parent: rec.Parent,
			Value:  rec.Value,
		}
		if len(rec.Attrs) > 0 {
			dr.Attrs = make(map[string]string, len(rec.Attrs))
			for _, a := range rec.Attrs {
				dr.Attrs[a.Key] = a.Value
			}
		}
		out = append(out, dr)
	}
	return out
}

// handleFlight serves GET /debug/flight: the flight recorder's
// always-on ring (the process's most recent telemetry across all
// requests, oldest first) plus the capture counters.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	recs := s.flight.Ring().Snapshot()
	captured, dropped, total := s.flight.Stats()
	out := struct {
		Records            []spanDumpRecord `json:"records"`
		TotalRecords       uint64           `json:"totalRecords"`
		BundlesCaptured    int              `json:"bundlesCaptured"`
		BundleFilesDropped int64            `json:"bundleFilesDropped"`
	}{Records: dumpRecords(recs), TotalRecords: total, BundlesCaptured: captured, BundleFilesDropped: dropped}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
