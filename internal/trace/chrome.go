package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// chromeEvent is one event in the Chrome Trace Event format, loadable
// in chrome://tracing or Perfetto. Sim exports emit only "complete"
// events (ph=X); the combined solver+execution export also uses
// counters (ph=C, numeric args), instants (ph=i, with scope S) and
// process-name metadata (ph=M).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TsUs float64        `json:"ts"`
	DUs  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace exports a simulated training step in the Chrome
// Trace Event format: one "process" per device plus one per directional
// link (transfers carry their queueing delay as an argument). Open the
// output in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result) error {
	out := simChromeFile(g, sys, plan, res)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// simChromeFile builds the execution-timeline part of a trace: one
// process per device and per directional link, complete events only.
func simChromeFile(g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result) chromeFile {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	out := chromeFile{Metadata: map[string]string{
		"generator": "pesto simulator",
		"makespan":  res.Makespan.String(),
	}}

	// Device lanes: pid = device id, tid 0.
	for i := 0; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		if res.Start[id] < 0 {
			continue
		}
		nd, _ := g.Node(id)
		dev, _ := sys.Device(plan.Device[id])
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: nd.Name,
			Cat:  "op",
			Ph:   "X",
			TsUs: us(res.Start[id]),
			DUs:  us(res.Finish[id] - res.Start[id]),
			PID:  int(plan.Device[id]),
			TID:  0,
			Args: map[string]any{
				"device": dev.Name,
				"kind":   nd.Kind.String(),
			},
		})
	}
	// Link lanes: pid = 1000 + from*64 + to.
	for _, tr := range res.Transfers {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("xfer %dB", tr.Edge.Bytes),
			Cat:  "transfer",
			Ph:   "X",
			TsUs: us(tr.Start),
			DUs:  us(tr.Finish - tr.Start),
			PID:  1000 + int(tr.From)*64 + int(tr.To),
			TID:  0,
			Args: map[string]any{
				"queued": tr.Queued().String(),
				"from":   fmt.Sprint(tr.From),
				"to":     fmt.Sprint(tr.To),
			},
		})
	}
	return out
}
