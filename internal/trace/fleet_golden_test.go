package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fleetScenario is a synthetic but structurally faithful failover
// trace: the ring owner r1 refuses the first hop, a hedge to r2 races
// a retry to r0, and r0's serving hop carries a replica span dump
// (solver spans, a counter sample, a point). Fixed absolute
// nanoseconds exercise the t0 rebase.
func fleetScenario() ([]FleetHop, [][]FleetSpanRecord) {
	const base = int64(1_754_550_000_000_000_000)
	ms := func(n int) int64 { return int64(n) * 1_000_000 }
	hops := []FleetHop{
		{Seq: 0, Replica: "r1", Pass: 0, Kind: "first", RequestID: "trace-golden.h0",
			StartNs: base, EndNs: base + ms(2), Err: "fleet: replica down"},
		{Seq: 1, Replica: "r2", Pass: 0, Kind: "hedge", RequestID: "trace-golden.h1",
			StartNs: base + ms(1), EndNs: base + ms(9), Status: 503},
		{Seq: 2, Replica: "r0", Pass: 1, Kind: "retry", RequestID: "trace-golden.h2",
			StartNs: base + ms(3), EndNs: base + ms(15), Status: 200, Served: true},
	}
	dumps := [][]FleetSpanRecord{
		nil, // dead replica: no dump, lane omitted
		{
			{Kind: "point", Name: "admission.shed", TsNs: ms(1),
				Attrs: map[string]string{"reason": "queue-full"}},
		},
		{
			{Kind: "span", Name: "placement.place", TsNs: 0, DurNs: ms(11), Span: 1,
				Attrs: map[string]string{"outcome": "ok"}},
			{Kind: "span", Name: "placement.ilp", TsNs: ms(2), DurNs: ms(6), Span: 2, Parent: 1,
				Attrs: map[string]string{"status": "feasible"}},
			{Kind: "sample", Name: "ilp.incumbent", TsNs: ms(5), Value: 0.8},
			{Kind: "point", Name: "fleet.hop", TsNs: ms(1),
				Attrs: map[string]string{"traceId": "trace-golden", "hop": "2"}},
		},
	}
	return hops, dumps
}

// TestChromeTraceFleetGolden pins the stitched cross-replica export
// byte-for-byte. Regenerate with -update and review like code.
func TestChromeTraceFleetGolden(t *testing.T) {
	hops, dumps := fleetScenario()
	var buf bytes.Buffer
	if err := WriteChromeTraceFleet(&buf, "trace-golden", hops, dumps); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_fleet.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("stitched trace output changed; run with -update if intentional.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	var parsed chromeFile
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden file not valid JSON: %v", err)
	}
	// Lane structure: the router at routerPID with the hedge packed
	// onto a second thread (it overlaps the first hop), replicas r0 and
	// r2 as their own processes in sorted ID order, dead r1 absent.
	pids := map[int]string{}
	routerLanes := map[int]bool{}
	hopEvents, served := 0, 0
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" {
			pids[e.PID] = e.Args["name"].(string)
			continue
		}
		if e.PID == routerPID && e.Ph == "X" {
			hopEvents++
			routerLanes[e.TID] = true
			if e.Args["served"] == true {
				served++
			}
		}
	}
	if pids[routerPID] != "fleet router" || pids[replicaBasePID] != "replica r0" || pids[replicaBasePID+1] != "replica r2" {
		t.Fatalf("process lanes wrong: %v", pids)
	}
	if len(pids) != 3 {
		t.Fatalf("dead replica r1 got a lane: %v", pids)
	}
	if hopEvents != 3 || served != 1 {
		t.Fatalf("hop events = %d (served %d), want 3 (served 1)", hopEvents, served)
	}
	if len(routerLanes) != 2 {
		t.Fatalf("overlapping hedge not packed onto its own lane: %d lanes", len(routerLanes))
	}
	for _, e := range parsed.TraceEvents {
		if e.TsUs < 0 || e.DUs < 0 {
			t.Fatalf("negative time after t0 rebase: %+v", e)
		}
	}

	// Stitching is deterministic: a second call over the same input
	// must reproduce the golden bytes exactly.
	var again bytes.Buffer
	h2, d2 := fleetScenario()
	if err := WriteChromeTraceFleet(&again, "trace-golden", h2, d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatal("stitcher output not deterministic across calls")
	}
}
