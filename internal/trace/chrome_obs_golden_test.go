package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"pesto/internal/obs"
)

// solverRecords is a synthetic but structurally faithful solver
// telemetry set: a placement root span, two ladder rungs (the first
// failed, the second won) with a nested ILP span, the incumbent/bound
// convergence series, and an incumbent point event. Fixed offsets keep
// the golden deterministic.
func solverRecords() []obs.Record {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []obs.Record{
		{Kind: obs.KindSpan, Name: "placement.ilp", Ts: ms(2), Dur: ms(5), ID: 3, Parent: 2,
			Attrs: []obs.Attr{obs.String("status", "feasible"), obs.Int("nodes", 12)}},
		{Kind: obs.KindSpan, Name: "placement.stage", Ts: ms(1), Dur: ms(7), ID: 2, Parent: 1,
			Attrs: []obs.Attr{obs.String("stage", "ilp-exact"), obs.String("outcome", "failed")}},
		{Kind: obs.KindSpan, Name: "placement.stage", Ts: ms(8), Dur: ms(3), ID: 4, Parent: 1,
			Attrs: []obs.Attr{obs.String("stage", "warm-start+refine"), obs.String("outcome", "ok")}},
		{Kind: obs.KindSpan, Name: "placement.place", Ts: ms(0), Dur: ms(12), ID: 1,
			Attrs: []obs.Attr{obs.String("outcome", "ok")}},
		{Kind: obs.KindSample, Name: "ilp.incumbent", Ts: ms(4), Value: 0.9},
		{Kind: obs.KindSample, Name: "ilp.bound", Ts: ms(4), Value: 0.4},
		{Kind: obs.KindSample, Name: "ilp.incumbent", Ts: ms(6), Value: 0.7},
		{Kind: obs.KindSample, Name: "ilp.bound", Ts: ms(6), Value: 0.55},
		{Kind: obs.KindPoint, Name: "ilp.incumbent", Ts: ms(6),
			Attrs: []obs.Attr{obs.String("source", "dive")}},
	}
}

// TestChromeTraceObsGolden pins the combined solver+execution export:
// sim events and solver spans/counters/instants in one file on a
// shared timeline. Regenerate with -update and review like code.
func TestChromeTraceObsGolden(t *testing.T) {
	g, sys, plan, res := scenario(t)
	var buf bytes.Buffer
	if err := WriteChromeTraceObs(&buf, g, sys, plan, res, solverRecords()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_obs.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("combined trace output changed; run with -update if intentional.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	var parsed chromeFile
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden file not valid JSON: %v", err)
	}
	phCount := map[string]int{}
	simEvents, solverSpans := 0, 0
	for _, e := range parsed.TraceEvents {
		phCount[e.Ph]++
		switch {
		case e.Ph == "X" && e.PID < solverPID:
			simEvents++
		case e.Ph == "X" && e.PID == solverPID:
			solverSpans++
		case e.Ph == "i" && e.S == "":
			t.Fatalf("instant event without scope: %+v", e)
		}
		if e.TsUs < 0 || e.DUs < 0 {
			t.Fatalf("negative time in event %+v", e)
		}
	}
	if simEvents == 0 {
		t.Fatal("no sim events in combined trace")
	}
	if solverSpans != 4 {
		t.Fatalf("solver spans = %d, want 4", solverSpans)
	}
	if phCount["C"] != 4 || phCount["i"] != 1 || phCount["M"] != 1 {
		t.Fatalf("event mix = %v, want 4 counters, 1 instant, 1 metadata", phCount)
	}

	// Solver spans must not overlap within one thread lane (the greedy
	// packing invariant chrome://tracing relies on).
	byTid := map[int][]chromeEvent{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" && e.PID == solverPID {
			byTid[e.TID] = append(byTid[e.TID], e)
		}
	}
	if len(byTid) < 2 {
		t.Fatalf("nested spans share one lane: tids = %d, want >= 2", len(byTid))
	}
	for tid, evs := range byTid {
		sort.Slice(evs, func(i, j int) bool { return evs[i].TsUs < evs[j].TsUs })
		for i := 1; i < len(evs); i++ {
			if prevEnd := evs[i-1].TsUs + evs[i-1].DUs; evs[i].TsUs < prevEnd {
				t.Fatalf("solver tid %d: %q at %vus overlaps %q ending %vus",
					tid, evs[i].Name, evs[i].TsUs, evs[i-1].Name, prevEnd)
			}
		}
	}

	// Re-encoding the parsed structure must be stable, as for the sim
	// golden.
	var re bytes.Buffer
	enc := json.NewEncoder(&re)
	if err := enc.Encode(parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), want) {
		t.Fatal("golden file does not round-trip through chromeFile")
	}
}
