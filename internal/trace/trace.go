// Package trace renders simulated training-step timelines as text
// Gantt charts — the visualization behind the paper's Figure 5, which
// contrasts bunched inter-GPU transfers (congestion constraints off)
// against staggered ones (constraints on).
//
// A chart has one lane per device plus one lane per active directional
// link. Device lanes show busy intervals; link lanes distinguish
// serving ('#') from queueing ('·'), so congestion is visible at a
// glance.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// Options controls chart rendering.
type Options struct {
	// Width is the number of character columns for the time axis; zero
	// means 96.
	Width int
	// MaxLanes bounds the number of lanes printed; zero means 16.
	MaxLanes int
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 96
	}
	if o.MaxLanes <= 0 {
		o.MaxLanes = 16
	}
	return o
}

// interval is a [from, to) busy span with a fill rune.
type interval struct {
	from, to time.Duration
	fill     byte
}

// lane is one horizontal band of the chart.
type lane struct {
	name      string
	intervals []interval
}

// Gantt renders the timeline of a simulation result.
func Gantt(w io.Writer, g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result, opts Options) error {
	opts = opts.withDefaults()
	if res.Makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}

	lanes := buildLanes(g, sys, plan, res)
	if len(lanes) > opts.MaxLanes {
		lanes = lanes[:opts.MaxLanes]
	}

	scale := float64(opts.Width) / float64(res.Makespan)
	col := func(t time.Duration) int {
		c := int(float64(t) * scale)
		if c >= opts.Width {
			c = opts.Width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	nameWidth := 0
	for _, l := range lanes {
		if len(l.name) > nameWidth {
			nameWidth = len(l.name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  0%s%v\n", nameWidth, "", strings.Repeat(" ", opts.Width-len(res.Makespan.String())), res.Makespan)
	for _, l := range lanes {
		row := make([]byte, opts.Width)
		for i := range row {
			row[i] = ' '
		}
		for _, iv := range l.intervals {
			lo, hi := col(iv.from), col(iv.to)
			if hi < lo {
				hi = lo
			}
			for c := lo; c <= hi && c < opts.Width; c++ {
				row[c] = iv.fill
			}
		}
		fmt.Fprintf(&b, "%*s |%s|\n", nameWidth, l.name, row)
	}
	b.WriteString("legend: '#' busy/serving, '·' queued transfer\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// buildLanes assembles device and link lanes from a result.
func buildLanes(g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result) []lane {
	var lanes []lane
	for _, d := range sys.Devices {
		l := lane{name: d.Name}
		for i := 0; i < g.NumNodes(); i++ {
			id := graph.NodeID(i)
			if plan.Device[id] != d.ID || res.Start[id] < 0 {
				continue
			}
			l.intervals = append(l.intervals, interval{from: res.Start[id], to: res.Finish[id], fill: '#'})
		}
		sortIntervals(l.intervals)
		lanes = append(lanes, l)
	}
	byLink := map[[2]sim.DeviceID][]sim.TransferEvent{}
	for _, tr := range res.Transfers {
		k := [2]sim.DeviceID{tr.From, tr.To}
		byLink[k] = append(byLink[k], tr)
	}
	keys := make([][2]sim.DeviceID, 0, len(byLink))
	for k := range byLink {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		from, _ := sys.Device(k[0])
		to, _ := sys.Device(k[1])
		l := lane{name: fmt.Sprintf("%s→%s", from.Name, to.Name)}
		for _, tr := range byLink[k] {
			if q := tr.Queued(); q > 0 {
				l.intervals = append(l.intervals, interval{from: tr.Enqueue, to: tr.Start, fill: '.'})
			}
			l.intervals = append(l.intervals, interval{from: tr.Start, to: tr.Finish, fill: '#'})
		}
		sortIntervals(l.intervals)
		lanes = append(lanes, l)
	}
	return lanes
}

func sortIntervals(ivs []interval) {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
}

// Summary prints a one-paragraph textual digest of a result: makespan,
// utilizations, transfer counts and queueing.
func Summary(w io.Writer, sys sim.System, res sim.Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %v;", res.Makespan)
	for _, d := range sys.Devices {
		fmt.Fprintf(&b, " %s %.0f%%", d.Name, 100*res.Utilization(d.ID))
	}
	var queued time.Duration
	congested := 0
	for _, tr := range res.Transfers {
		queued += tr.Queued()
		if tr.Queued() > 0 {
			congested++
		}
	}
	fmt.Fprintf(&b, "; %d transfers (%d queued, total wait %v)\n", len(res.Transfers), congested, queued)
	_, err := io.WriteString(w, b.String())
	return err
}
