package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the exporter's exact output for the
// deterministic two-GPU scenario. The golden file is a valid Chrome
// Trace Event JSON document; regenerate it with `go test
// ./internal/trace/ -run Golden -update` after an intentional format
// change and review the diff like code.
func TestChromeTraceGolden(t *testing.T) {
	g, sys, plan, res := scenario(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, g, sys, plan, res); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace output changed; run with -update if intentional.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	// The golden file itself must round-trip as a Chrome trace: valid
	// JSON, complete events only, non-negative times, and per-pid
	// events that are monotone and non-overlapping once sorted.
	var parsed chromeFile
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden file not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("golden file has no events")
	}
	byPid := map[int][]chromeEvent{}
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("non-complete event %+v", e)
		}
		if e.TsUs < 0 || e.DUs < 0 {
			t.Fatalf("negative time in event %+v", e)
		}
		byPid[e.PID] = append(byPid[e.PID], e)
	}
	for pid, evs := range byPid {
		sort.Slice(evs, func(i, j int) bool { return evs[i].TsUs < evs[j].TsUs })
		for i := 1; i < len(evs); i++ {
			prevEnd := evs[i-1].TsUs + evs[i-1].DUs
			if evs[i].TsUs < prevEnd {
				t.Fatalf("pid %d: event %q at %vus overlaps %q ending %vus",
					pid, evs[i].Name, evs[i].TsUs, evs[i-1].Name, prevEnd)
			}
		}
	}
	// Round-trip: re-encoding the parsed structure must be stable.
	var re bytes.Buffer
	enc := json.NewEncoder(&re)
	if err := enc.Encode(parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), want) {
		t.Fatal("golden file does not round-trip through chromeFile")
	}
}
