package trace

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"pesto/internal/graph"
	"pesto/internal/obs"
	"pesto/internal/sim"
)

// solverPID is the Chrome-trace process id of the solver lanes. Device
// lanes use raw device ids and link lanes 1000+, so 2000 keeps the
// solver visually separate in Perfetto.
const solverPID = 2000

// WriteChromeTraceObs exports the simulated execution timeline together
// with the solver's telemetry records on one shared clock: device and
// link lanes as in WriteChromeTrace, plus a "solver" process whose
// threads hold the span tree (ladder rungs, coarsening, branch and
// bound, refinement), counter tracks for the sample series (the
// incumbent-vs-bound convergence), and instant markers for point
// events. Spans are packed greedily into threads so overlapping
// (nested or concurrent) spans land on separate lines.
func WriteChromeTraceObs(w io.Writer, g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result, recs []obs.Record) error {
	out := simChromeFile(g, sys, plan, res)
	appendSolverEvents(&out, recs)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// appendSolverEvents converts obs records into solver-process events,
// deterministically: spans sorted by start then id, then samples, then
// points, each sorted by timestamp then name.
func appendSolverEvents(out *chromeFile, recs []obs.Record) {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	var spans, samples, points []obs.Record
	for _, r := range recs {
		switch r.Kind {
		case obs.KindSpan:
			spans = append(spans, r)
		case obs.KindSample:
			samples = append(samples, r)
		case obs.KindPoint:
			points = append(points, r)
		}
	}
	if len(spans)+len(samples)+len(points) == 0 {
		return
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name",
		Cat:  "__metadata",
		Ph:   "M",
		PID:  solverPID,
		Args: map[string]any{"name": "solver"},
	})

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Ts != spans[j].Ts {
			return spans[i].Ts < spans[j].Ts
		}
		return spans[i].ID < spans[j].ID
	})
	// Greedy interval partitioning: each span takes the first thread
	// whose previous span has ended. Nested spans therefore stack on
	// successive lines, as chrome://tracing renders same-thread nesting
	// only for strictly enclosed intervals.
	var laneEnd []time.Duration
	for _, sp := range spans {
		lane := -1
		for li, end := range laneEnd {
			if end <= sp.Ts {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = sp.Ts + sp.Dur
		args := map[string]any{"span": sp.ID}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "solver",
			Ph:   "X",
			TsUs: us(sp.Ts),
			DUs:  us(sp.Dur),
			PID:  solverPID,
			TID:  lane,
			Args: args,
		})
	}

	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Ts != samples[j].Ts {
			return samples[i].Ts < samples[j].Ts
		}
		return samples[i].Name < samples[j].Name
	})
	for _, s := range samples {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "solver",
			Ph:   "C",
			TsUs: us(s.Ts),
			PID:  solverPID,
			TID:  0,
			Args: map[string]any{"value": s.Value},
		})
	}

	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Ts != points[j].Ts {
			return points[i].Ts < points[j].Ts
		}
		return points[i].Name < points[j].Name
	})
	for _, p := range points {
		args := make(map[string]any, len(p.Attrs))
		for _, a := range p.Attrs {
			args[a.Key] = a.Value
		}
		if len(args) == 0 {
			args = nil
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: p.Name,
			Cat:  "solver",
			Ph:   "i",
			TsUs: us(p.Ts),
			PID:  solverPID,
			TID:  0,
			S:    "p",
			Args: args,
		})
	}
}
