package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Fleet-trace process IDs: the router's hop lane sits at 3000, each
// replica's lane at 3001+ in sorted replica-ID order — visually apart
// from the device (0+), link (1000+) and solver (2000) lanes of the
// single-process exports.
const (
	routerPID       = 3000
	replicaBasePID  = 3001
	fleetCat        = "fleet"
	fleetReplicaCat = "replica"
)

// FleetHop is one router attempt in a stitched trace, on the router's
// clock (absolute nanoseconds). It mirrors the fleet package's hop
// record; the types are duplicated here so the trace package stays
// importable by fleet.
type FleetHop struct {
	Seq       int
	Replica   string
	Pass      int
	Kind      string // first | retry | hedge | last-resort | warm-sync
	RequestID string
	StartNs   int64
	EndNs     int64
	Status    int
	Err       string
	Served    bool
}

// FleetSpanRecord is one record of a replica's span dump, matching the
// JSON the service's GET /v1/requests/{id}/spans emits — the stitcher
// decodes replica responses straight into it. Timestamps are offsets
// from the replica request's own start.
type FleetSpanRecord struct {
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	TsNs   int64             `json:"tsNs"`
	DurNs  int64             `json:"durNs"`
	Span   uint64            `json:"span"`
	Parent uint64            `json:"parent"`
	Value  float64           `json:"value"`
	Attrs  map[string]string `json:"attrs"`
}

// WriteChromeTraceFleet stitches one fleet trace into a Chrome Trace
// Event file: the router's hops as complete events on a "fleet router"
// process (greedily lane-packed, so a hedge racing its primary renders
// on its own line), and each replica's span dump as its own process,
// shifted onto the router's clock by its hop's start time. dumps is
// indexed like hops; a nil entry (dead replica, evicted dump) just
// leaves that hop without replica-side detail. Output is deterministic
// for fixed input: hops sort by (StartNs, Seq), replicas by ID, and
// within a replica records keep dump order per hop.
func WriteChromeTraceFleet(w io.Writer, traceID string, hops []FleetHop, dumps [][]FleetSpanRecord) error {
	out := chromeFile{Metadata: map[string]string{
		"generator": "pesto fleet router",
		"traceId":   traceID,
	}}
	if len(hops) > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Cat:  "__metadata",
			Ph:   "M",
			PID:  routerPID,
			Args: map[string]any{"name": "fleet router"},
		})
	}

	// Everything is rebased so the earliest hop start is t=0: Chrome
	// trace timestamps are microsecond floats, which would lose
	// precision on absolute unix-epoch nanoseconds.
	var t0 int64
	for i, h := range hops {
		if i == 0 || h.StartNs < t0 {
			t0 = h.StartNs
		}
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }

	order := make([]int, len(hops))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ha, hb := hops[order[a]], hops[order[b]]
		if ha.StartNs != hb.StartNs {
			return ha.StartNs < hb.StartNs
		}
		return ha.Seq < hb.Seq
	})

	// Router lane: greedy interval partitioning, as in the solver
	// export — overlapping hops (hedges) take successive threads.
	var laneEnd []int64
	for _, i := range order {
		h := hops[i]
		end := h.EndNs
		if end < h.StartNs {
			end = h.StartNs
		}
		lane := -1
		for li, le := range laneEnd {
			if le <= h.StartNs {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = end
		args := map[string]any{
			"seq":       h.Seq,
			"replica":   h.Replica,
			"pass":      h.Pass,
			"requestId": h.RequestID,
		}
		if h.Status != 0 {
			args["status"] = h.Status
		}
		if h.Err != "" {
			args["err"] = h.Err
		}
		if h.Served {
			args["served"] = true
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "hop " + h.Kind,
			Cat:  fleetCat,
			Ph:   "X",
			TsUs: us(h.StartNs - t0),
			DUs:  us(end - h.StartNs),
			PID:  routerPID,
			TID:  lane,
			Args: args,
		})
	}

	// Replica lanes: one process per distinct replica that contributed
	// a dump, in sorted ID order. Each hop's records are shifted by the
	// hop's start so everything shares the router's clock; spans get
	// the same greedy lane packing per replica.
	replicaIDs := make(map[string]bool)
	for i, h := range hops {
		if i < len(dumps) && len(dumps[i]) > 0 {
			replicaIDs[h.Replica] = true
		}
	}
	sorted := make([]string, 0, len(replicaIDs))
	for id := range replicaIDs {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	pidOf := make(map[string]int, len(sorted))
	for i, id := range sorted {
		pid := replicaBasePID + i
		pidOf[id] = pid
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Cat:  "__metadata",
			Ph:   "M",
			PID:  pid,
			Args: map[string]any{"name": "replica " + id},
		})
	}
	type placed struct {
		rec    FleetSpanRecord
		baseNs int64
		hopSeq int
	}
	byReplica := make(map[string][]placed, len(sorted))
	for i, h := range hops {
		if i >= len(dumps) {
			break
		}
		for _, rec := range dumps[i] {
			byReplica[h.Replica] = append(byReplica[h.Replica], placed{rec: rec, baseNs: h.StartNs - t0, hopSeq: h.Seq})
		}
	}
	for _, id := range sorted {
		recs := byReplica[id]
		pid := pidOf[id]
		var spans, rest []placed
		for _, p := range recs {
			if p.rec.Kind == "span" {
				spans = append(spans, p)
			} else {
				rest = append(rest, p)
			}
		}
		sort.SliceStable(spans, func(a, b int) bool {
			ta, tb := spans[a].baseNs+spans[a].rec.TsNs, spans[b].baseNs+spans[b].rec.TsNs
			if ta != tb {
				return ta < tb
			}
			return spans[a].rec.Span < spans[b].rec.Span
		})
		var laneEnd []int64
		for _, p := range spans {
			start := p.baseNs + p.rec.TsNs
			end := start + p.rec.DurNs
			lane := -1
			for li, le := range laneEnd {
				if le <= start {
					lane = li
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, 0)
			}
			laneEnd[lane] = end
			args := map[string]any{"hop": p.hopSeq, "span": p.rec.Span}
			if p.rec.Parent != 0 {
				args["parent"] = p.rec.Parent
			}
			for k, v := range p.rec.Attrs {
				args[k] = v
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: p.rec.Name,
				Cat:  fleetReplicaCat,
				Ph:   "X",
				TsUs: us(start),
				DUs:  us(p.rec.DurNs),
				PID:  pid,
				TID:  lane,
				Args: args,
			})
		}
		sort.SliceStable(rest, func(a, b int) bool {
			ta, tb := rest[a].baseNs+rest[a].rec.TsNs, rest[b].baseNs+rest[b].rec.TsNs
			if ta != tb {
				return ta < tb
			}
			return rest[a].rec.Name < rest[b].rec.Name
		})
		for _, p := range rest {
			switch p.rec.Kind {
			case "sample":
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: p.rec.Name,
					Cat:  fleetReplicaCat,
					Ph:   "C",
					TsUs: us(p.baseNs + p.rec.TsNs),
					PID:  pid,
					TID:  0,
					Args: map[string]any{"value": p.rec.Value},
				})
			case "point":
				args := make(map[string]any, len(p.rec.Attrs))
				for k, v := range p.rec.Attrs {
					args[k] = v
				}
				if len(args) == 0 {
					args = nil
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: p.rec.Name,
					Cat:  fleetReplicaCat,
					Ph:   "i",
					TsUs: us(p.baseNs + p.rec.TsNs),
					PID:  pid,
					TID:  0,
					S:    "p",
					Args: args,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
