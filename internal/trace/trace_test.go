package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

func scenario(t *testing.T) (*graph.Graph, sim.System, sim.Plan, sim.Result) {
	t.Helper()
	g := graph.New(3)
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Memory: 1})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Memory: 1})
	c := g.AddNode(graph.Node{Name: "c", Kind: graph.KindGPU, Cost: 50 * time.Microsecond, Memory: 1})
	if err := g.AddEdge(a, c, 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c, 4<<20); err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, 16<<30)
	plan := sim.Plan{Device: []sim.DeviceID{1, 1, 2}}
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	return g, sys, plan, res
}

func TestGanttShowsLanesAndQueueing(t *testing.T) {
	g, sys, plan, res := scenario(t)
	var sb strings.Builder
	if err := Gantt(&sb, g, sys, plan, res, Options{Width: 60}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"cpu:0", "gpu:0", "gpu:1", "gpu:0→gpu:1", "#", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// The two transfers to gpu:1 share the link; the second must queue,
	// which shows up as the '.' fill.
	if !strings.Contains(out, ".") {
		t.Errorf("expected queued transfer marker:\n%s", out)
	}
	// Every lane line fits the requested width (plus name and bars).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && len([]rune(line)) > 60+20 {
			t.Errorf("line too wide: %q", line)
		}
	}
}

func TestGanttEmptyResult(t *testing.T) {
	g := graph.New(0)
	sys := sim.NewSystem(1, 1)
	var sb strings.Builder
	if err := Gantt(&sb, g, sys, sim.Plan{}, sim.Result{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("got %q", sb.String())
	}
}

func TestGanttLaneCap(t *testing.T) {
	g, sys, plan, res := scenario(t)
	var sb strings.Builder
	if err := Gantt(&sb, g, sys, plan, res, Options{Width: 40, MaxLanes: 1}); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(sb.String(), "\n") {
		if strings.Contains(l, "|") {
			lines++
		}
	}
	if lines != 1 {
		t.Errorf("lanes = %d, want 1", lines)
	}
}

func TestSummary(t *testing.T) {
	_, sys, _, res := scenario(t)
	var sb strings.Builder
	if err := Summary(&sb, sys, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"makespan", "gpu:0", "transfers", "queued"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	g, sys, plan, res := scenario(t)
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, g, sys, plan, res); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	// 3 ops + 2 transfers.
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(parsed.TraceEvents))
	}
	ops, xfers := 0, 0
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" || e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("malformed event %+v", e)
		}
		if e.PID >= 1000 {
			xfers++
		} else {
			ops++
		}
	}
	if ops != 3 || xfers != 2 {
		t.Fatalf("ops=%d xfers=%d", ops, xfers)
	}
}
