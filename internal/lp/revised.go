package lp

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements a bounded-variable revised simplex method with
// sparse column storage and a product-form (eta-file) basis: B^{-1} is
// never materialized, it is represented as a sequence of sparse eta
// transformations applied by FTRAN/BTRAN. Pricing is Dantzig with a
// Bland fallback, and a dual-simplex loop (revised_iter.go) re-solves
// warm-started problems after bound changes — the branch-and-bound
// child case. Periodic refactorization rebuilds the eta file from the
// basis columns to contain both drift and eta-file growth.
//
// The dense full-tableau solver in tableau.go is kept as the reference
// implementation; differential tests assert the two agree.

// Nonbasic/basic status codes for columns of the standard form.
const (
	stBasic int8 = iota
	stLower      // nonbasic at lower bound
	stUpper      // nonbasic at upper bound
	stFree       // nonbasic free (value 0)
)

// spCol is one sparse column of the standard-form matrix.
type spCol struct {
	idx []int32
	val []float64
}

// stdForm is the equality standard form min c·x s.t. Ax = b, lo ≤ x ≤ hi,
// with one slack column per row. Unlike the dense tableau it does not
// shift lower bounds or flip row signs, so the structure depends only on
// the constraint pattern — a parent and a child that differ only in
// variable bounds share the same standard form shape, which is what
// makes basis reuse across B&B nodes valid.
//
// The dense solver's anti-degeneracy RHS perturbation (loosen inequality
// i by delta_i = 1e-9*(i+1)) is reproduced here as slack bounds:
// LE rows get slack ∈ [−delta, +inf), GE rows slack ∈ (−inf, +delta],
// EQ rows slack ∈ [0, 0]. Row equilibration matches the dense rule.
type stdForm struct {
	m, n    int // rows, total columns (structural + slacks)
	nStruct int
	cols    []spCol
	cost    []float64
	lo, hi  []float64
	b       []float64
}

func buildStdForm(p *Problem) (*stdForm, error) {
	m := len(p.cons)
	n := p.numVars + m
	f := &stdForm{
		m: m, n: n, nStruct: p.numVars,
		cols: make([]spCol, n),
		cost: make([]float64, n),
		lo:   make([]float64, n),
		hi:   make([]float64, n),
		b:    make([]float64, m),
	}
	copy(f.cost, p.obj)
	copy(f.lo, p.lower)
	copy(f.hi, p.upper)
	for v := 0; v < p.numVars; v++ {
		if f.lo[v] > f.hi[v] {
			return nil, fmt.Errorf("var %d: inverted bounds", v)
		}
	}
	// Aggregate duplicate terms per row deterministically with a dense
	// scratch vector + touched list (no map iteration).
	scratch := make([]float64, p.numVars)
	touched := make([]int, 0, 16)
	for i, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.Terms {
			if scratch[t.Var] == 0 {
				touched = append(touched, t.Var)
			}
			scratch[t.Var] += t.Coef
		}
		// Row equilibration, same rule as the dense tableau: scale so the
		// largest structural coefficient has magnitude ~1 when the row is
		// badly out of range.
		maxAbs := 0.0
		for _, v := range touched {
			if a := math.Abs(scratch[v]); a > maxAbs {
				maxAbs = a
			}
		}
		scale := 1.0
		if maxAbs > 0 && (maxAbs > 16 || maxAbs < 1.0/16) {
			scale = 1 / maxAbs
		}
		// Touched order follows first appearance in Terms; sort into
		// ascending var order for deterministic sparse columns. Rows are
		// visited in index order so each column's row indices arrive
		// already sorted.
		insertionSortInts(touched)
		for _, v := range touched {
			coef := scratch[v] * scale
			scratch[v] = 0
			if coef == 0 {
				continue
			}
			f.cols[v].idx = append(f.cols[v].idx, int32(i))
			f.cols[v].val = append(f.cols[v].val, coef)
		}
		// Slack column: +1 entry in row i (the row is scaled, the slack
		// is not — equivalent to scaling the slack's bounds, which are
		// the perturbation deltas; keep coefficient 1 and scale deltas).
		sj := p.numVars + i
		f.cols[sj] = spCol{idx: []int32{int32(i)}, val: []float64{1}}
		f.b[i] = c.RHS * scale
		delta := 1e-9 * float64(i+1) * scale
		switch c.Rel {
		case LE:
			f.lo[sj], f.hi[sj] = -delta, math.Inf(1)
		case GE:
			f.lo[sj], f.hi[sj] = math.Inf(-1), delta
		case EQ:
			f.lo[sj], f.hi[sj] = 0, 0
		default:
			return nil, fmt.Errorf("unknown relation %v", c.Rel)
		}
	}
	return f, nil
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// eta is one product-form transformation: replacing the basic column of
// row r by a column whose FTRAN image was w turns B^{-1} into E·B^{-1}
// with E = I except column r. Applying E to a vector x is
//
//	x[r] /= w_r;  x[i] -= w_i * x[r]  (i ≠ r)
//
// stored sparsely as invDiag = 1/w_r and the nonzero off-diagonal w_i.
// Etas are immutable once appended; warm-started children share their
// parent's eta prefix by slice copy.
type eta struct {
	r       int32
	invDiag float64
	idx     []int32   // rows i ≠ r with w_i ≠ 0
	val     []float64 // the w_i
}

// Basis is an exported simplex basis: which column is basic in each row
// and the bound status of every column. It can be taken from an optimal
// Solution and passed to SolveWarm* to warm-start a re-solve of a
// problem with the same constraint structure (same rows, same columns)
// and possibly different bounds — the branch-and-bound child case.
//
// Alongside the combinatorial basis it carries the eta-file
// representation of B^{-1}, so importing costs a slice copy rather than
// a refactorization; etaNnz tracks its size so overly long or dense
// files are rebuilt on import instead. A Basis is immutable once
// created; concurrent reads are safe (B&B siblings share their
// parent's Basis).
type Basis struct {
	rows, cols int
	basic      []int32
	status     []int8
	etas       []eta
	etaNnz     int
}

// Rows reports the constraint-row count the basis was built for.
func (b *Basis) Rows() int { return b.rows }

// Cols reports the standard-form column count the basis was built for.
func (b *Basis) Cols() int { return b.cols }

// revised is the mutable solver state for one solve.
type revised struct {
	f        *stdForm
	basis    []int   // basis[i] = column basic in row i
	rowOf    []int32 // rowOf[j] = row where j is basic, -1 if nonbasic
	status   []int8
	etas     []eta     // B^{-1} = E_k ··· E_1 (slack basis start)
	etaNnz   int       // total off-diagonal nonzeros across etas
	etasBase int       // len(etas) right after the last refactorization
	nnzBase  int       // etaNnz right after the last refactorization
	xB       []float64 // values of basic variables

	deadline    time.Time
	iters       int // total pivots (primal + dual)
	dualIters   int
	refactors   int
	maxIters    int
	work        []float64 // FTRAN scratch, len m
	ybuf        []float64 // dual-price scratch, len m
	rbuf        []float64 // dual-simplex row scratch, len m
	deadlineHit bool
}

const feasTol = 1e-7

// etaOverBudget decides when to rebuild the eta file. Both triggers are
// relative to the state right after the previous refactorization: a
// rebuilt file inherently carries fill-in, so an absolute nnz cap would
// re-trip immediately and degrade the solver to one O(m·nnz) rebuild
// per pivot. Instead we allow a fixed number of incremental etas per
// cycle (amortizing the rebuild) and a doubling of the nonzero mass
// (shedding fill-in and floating-point drift).
func (s *revised) etaOverBudget() bool {
	m := s.f.m
	if len(s.etas)-s.etasBase > 96+m/16 {
		return true
	}
	return s.etaNnz > 2*s.nnzBase+8*m+1024
}

func newRevised(f *stdForm, deadline time.Time) *revised {
	s := &revised{
		f:        f,
		basis:    make([]int, f.m),
		rowOf:    make([]int32, f.n),
		status:   make([]int8, f.n),
		xB:       make([]float64, f.m),
		work:     make([]float64, f.m),
		ybuf:     make([]float64, f.m),
		rbuf:     make([]float64, f.m),
		deadline: deadline,
	}
	s.maxIters = 2000 + 50*(f.m+f.n)
	if s.maxIters > 60000 {
		s.maxIters = 60000
	}
	return s
}

// initSlackBasis sets the all-slack basis: B = I (empty eta file),
// structural columns nonbasic at their finite bound (lower preferred),
// slacks basic.
func (s *revised) initSlackBasis() {
	f := s.f
	for j := 0; j < f.n; j++ {
		s.rowOf[j] = -1
		switch {
		case !math.IsInf(f.lo[j], -1):
			s.status[j] = stLower
		case !math.IsInf(f.hi[j], 1):
			s.status[j] = stUpper
		default:
			s.status[j] = stFree
		}
	}
	for i := 0; i < f.m; i++ {
		j := f.nStruct + i
		s.basis[i] = j
		s.rowOf[j] = int32(i)
		s.status[j] = stBasic
	}
	s.etas = s.etas[:0]
	s.etaNnz = 0
	s.etasBase, s.nnzBase = 0, 0
	s.computeXB()
}

// nbValue returns the value of nonbasic column j given its status.
func (s *revised) nbValue(j int) float64 {
	switch s.status[j] {
	case stLower:
		return s.f.lo[j]
	case stUpper:
		return s.f.hi[j]
	default:
		return 0
	}
}

// ftranInPlace applies B^{-1} to x (len m) through the eta file.
func (s *revised) ftranInPlace(x []float64) {
	for k := range s.etas {
		e := &s.etas[k]
		t := x[e.r]
		if t == 0 {
			continue
		}
		t *= e.invDiag
		x[e.r] = t
		for p, i := range e.idx {
			x[i] -= e.val[p] * t
		}
	}
}

// btranInPlace applies y ← y·B^{-1} through the eta file in reverse.
func (s *revised) btranInPlace(y []float64) {
	for k := len(s.etas) - 1; k >= 0; k-- {
		e := &s.etas[k]
		acc := y[e.r]
		for p, i := range e.idx {
			if v := y[i]; v != 0 {
				acc -= v * e.val[p]
			}
		}
		y[e.r] = acc * e.invDiag
	}
}

// computeXB recomputes basic values xB = B^{-1}(b − N·xN) from scratch.
func (s *revised) computeXB() {
	f := s.f
	bt := s.xB // fill in place, then transform
	copy(bt, f.b)
	for j := 0; j < f.n; j++ {
		if s.status[j] == stBasic {
			continue
		}
		v := s.nbValue(j)
		if v == 0 {
			continue
		}
		c := &f.cols[j]
		for k, r := range c.idx {
			bt[r] -= c.val[k] * v
		}
	}
	s.ftranInPlace(bt)
}

// ftran computes w = B^{-1} A_q into s.work and returns it.
func (s *revised) ftran(q int) []float64 {
	w := s.work
	for i := range w {
		w[i] = 0
	}
	c := &s.f.cols[q]
	for t, r := range c.idx {
		w[r] = c.val[t]
	}
	s.ftranInPlace(w)
	return w
}

// appendEta records the product-form update for entering column q
// replacing the basic column of row r, where w = B^{-1} A_q.
func (s *revised) appendEta(r int, w []float64) {
	m := s.f.m
	nnz := 0
	for i := 0; i < m; i++ {
		if i != r && math.Abs(w[i]) > 1e-12 {
			nnz++
		}
	}
	e := eta{
		r:       int32(r),
		invDiag: 1 / w[r],
		idx:     make([]int32, 0, nnz),
		val:     make([]float64, 0, nnz),
	}
	for i := 0; i < m; i++ {
		if i != r && math.Abs(w[i]) > 1e-12 {
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, w[i])
		}
	}
	s.etas = append(s.etas, e)
	s.etaNnz += nnz
}

// etaUpdate applies the basis bookkeeping and the eta append for
// entering column q replacing the basic column of row r.
func (s *revised) etaUpdate(r, q int, w []float64) {
	s.appendEta(r, w)
	leave := s.basis[r]
	s.rowOf[leave] = -1
	s.basis[r] = q
	s.rowOf[q] = int32(r)
	s.status[q] = stBasic
	s.iters++
}

// refactorize rebuilds the eta file from the basis columns: starting
// from the identity (all-slack) scaffold, each basic column is pivoted
// into some still-unassigned row, choosing the largest available pivot
// element (ties to the lowest row). The row a column lands in is the
// algorithm's choice — only the basic SET is fixed — so the basis
// bookkeeping is re-permuted to match. Basic slacks whose own row is
// free are assigned there eta-free; columns whose pivot candidates are
// all canceled are deferred to a later pass. Returns an error if the
// basis matrix is numerically singular.
func (s *revised) refactorize() error {
	f := s.f
	s.refactors++
	s.etas = s.etas[:0]
	s.etaNnz = 0
	assigned := make([]bool, f.m)
	newBasis := make([]int, f.m)
	var pending []int
	for i := 0; i < f.m; i++ {
		j := s.basis[i]
		if j >= f.nStruct && !assigned[j-f.nStruct] {
			// A basic slack sits in its own scaffold row for free.
			r := j - f.nStruct
			assigned[r] = true
			newBasis[r] = j
		} else {
			pending = append(pending, j)
		}
	}
	// Sparsest columns first (a static Markowitz-style ordering): early
	// etas then touch few rows, which sharply limits fill-in in the
	// FTRANs of the denser columns processed later. Stable tie-break on
	// column index keeps the rebuild deterministic.
	sort.SliceStable(pending, func(a, b int) bool {
		na, nb := len(f.cols[pending[a]].idx), len(f.cols[pending[b]].idx)
		if na != nb {
			return na < nb
		}
		return pending[a] < pending[b]
	})
	for len(pending) > 0 {
		var deferred []int
		progressed := false
		for _, j := range pending {
			w := s.ftran(j)
			r, piv := -1, 1e-10
			for i := 0; i < f.m; i++ {
				if assigned[i] {
					continue
				}
				if a := math.Abs(w[i]); a > piv {
					r, piv = i, a
				}
			}
			if r < 0 {
				deferred = append(deferred, j)
				continue
			}
			s.appendEta(r, w)
			assigned[r] = true
			newBasis[r] = j
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("singular basis (%d columns unpivotable)", len(deferred))
		}
		pending = deferred
	}
	copy(s.basis, newBasis)
	for i, j := range s.basis {
		s.rowOf[j] = int32(i)
	}
	s.etasBase = len(s.etas)
	s.nnzBase = s.etaNnz
	return nil
}

// maybeRefactor refactorizes when the eta file outgrows its budget.
// On singularity it reports the error so callers can abandon the solve.
func (s *revised) maybeRefactor() error {
	if !s.etaOverBudget() {
		return nil
	}
	if err := s.refactorize(); err != nil {
		return err
	}
	s.computeXB()
	return nil
}

// deadlineExpired samples the wall clock; called between pivots.
func (s *revised) deadlineExpired() bool {
	if s.deadline.IsZero() {
		return false
	}
	if time.Now().After(s.deadline) {
		s.deadlineHit = true
		return true
	}
	return false
}

// extract reads structural values from the current iterate.
func (s *revised) extract() []float64 {
	x := make([]float64, s.f.nStruct)
	for j := 0; j < s.f.nStruct; j++ {
		if s.status[j] == stBasic {
			x[j] = s.xB[s.rowOf[j]]
		} else {
			x[j] = s.nbValue(j)
		}
		if math.Abs(x[j]) < eps {
			x[j] = 0
		}
	}
	return x
}

// objValue is c·x at the current iterate over all standard-form columns
// (slack costs are zero, so this equals the structural objective).
func (s *revised) objValue() float64 {
	z := 0.0
	for j := 0; j < s.f.nStruct; j++ {
		if s.f.cost[j] == 0 {
			continue
		}
		var v float64
		if s.status[j] == stBasic {
			v = s.xB[s.rowOf[j]]
		} else {
			v = s.nbValue(j)
		}
		z += s.f.cost[j] * v
	}
	return z
}

// exportBasis snapshots the current basis (sharing the immutable eta
// file) for reuse by a later warm-started solve.
func (s *revised) exportBasis() *Basis {
	b := &Basis{
		rows:   s.f.m,
		cols:   s.f.n,
		basic:  make([]int32, s.f.m),
		status: make([]int8, s.f.n),
		etas:   append([]eta(nil), s.etas...),
		etaNnz: s.etaNnz,
	}
	for i, j := range s.basis {
		b.basic[i] = int32(j)
	}
	copy(b.status, s.status)
	return b
}

// importBasis loads a prior basis, validating shape and repairing
// nonbasic statuses against the (possibly tightened) bounds. Returns an
// error when the basis does not fit this problem or is singular.
func (s *revised) importBasis(b *Basis) error {
	f := s.f
	if b == nil || b.rows != f.m || b.cols != f.n {
		return fmt.Errorf("basis shape mismatch")
	}
	seen := make([]bool, f.n)
	for i := 0; i < f.m; i++ {
		j := int(b.basic[i])
		if j < 0 || j >= f.n || seen[j] {
			return fmt.Errorf("invalid basis column %d", j)
		}
		seen[j] = true
	}
	for j := 0; j < f.n; j++ {
		s.rowOf[j] = -1
		st := b.status[j]
		// Repair statuses that no longer point at a finite bound.
		switch st {
		case stLower:
			if math.IsInf(f.lo[j], -1) {
				if math.IsInf(f.hi[j], 1) {
					st = stFree
				} else {
					st = stUpper
				}
			}
		case stUpper:
			if math.IsInf(f.hi[j], 1) {
				if math.IsInf(f.lo[j], -1) {
					st = stFree
				} else {
					st = stLower
				}
			}
		case stFree:
			if !math.IsInf(f.lo[j], -1) {
				st = stLower
			} else if !math.IsInf(f.hi[j], 1) {
				st = stUpper
			}
		case stBasic:
			// Recorded below from b.basic.
			st = stLower
			if math.IsInf(f.lo[j], -1) {
				st = stFree
			}
		}
		s.status[j] = st
	}
	for i := 0; i < f.m; i++ {
		j := int(b.basic[i])
		s.basis[i] = j
		s.rowOf[j] = int32(i)
		s.status[j] = stBasic
	}
	// Adopt the exporter's eta file when it is within budget (the etas
	// themselves are immutable and safely shared; the slice header is
	// copied so our appends never alias the exporter's file). An
	// oversized file is rebuilt instead.
	s.etas = append(s.etas[:0], b.etas...)
	s.etaNnz = b.etaNnz
	s.etasBase = len(s.etas)
	s.nnzBase = s.etaNnz
	if len(s.etas) > 2*f.m+128 || s.etaNnz > 16*f.m+2048 {
		if err := s.refactorize(); err != nil {
			return err
		}
	}
	s.computeXB()
	return nil
}

// primalFeasible reports whether all basic variables are within bounds.
func (s *revised) primalFeasible() bool {
	f := s.f
	for i, j := range s.basis {
		if s.xB[i] < f.lo[j]-feasTol || s.xB[i] > f.hi[j]+feasTol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether the current basis satisfies the
// reduced-cost sign conditions for the phase-2 objective.
func (s *revised) dualFeasible() bool {
	y := s.duals(false)
	f := s.f
	for j := 0; j < f.n; j++ {
		if s.status[j] == stBasic {
			continue
		}
		d := f.cost[j] - s.colDot(y, j)
		switch s.status[j] {
		case stLower:
			if d < -feasTol {
				return false
			}
		case stUpper:
			if d > feasTol {
				return false
			}
		case stFree:
			if d < -feasTol || d > feasTol {
				return false
			}
		}
	}
	return true
}

// duals computes y = c_B · B^{-1} by BTRAN. For phase 1 the basic costs
// are the composite infeasibility costs (+1 above upper, −1 below
// lower).
func (s *revised) duals(phase1 bool) []float64 {
	f := s.f
	y := s.ybuf
	for i := range y {
		y[i] = 0
	}
	for i, j := range s.basis {
		if phase1 {
			if s.xB[i] > f.hi[j]+feasTol {
				y[i] = 1
			} else if s.xB[i] < f.lo[j]-feasTol {
				y[i] = -1
			}
		} else if c := f.cost[j]; c != 0 {
			y[i] = c
		}
	}
	s.btranInPlace(y)
	return y
}

// basisRow computes rho = e_r · B^{-1} (row r of the basis inverse) by
// BTRAN into the dual scratch buffer.
func (s *revised) basisRow(r int) []float64 {
	rho := s.rbuf
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	s.btranInPlace(rho)
	return rho
}

// colDot computes y · A_j over the sparse column j.
func (s *revised) colDot(y []float64, j int) float64 {
	c := &s.f.cols[j]
	sum := 0.0
	for t, r := range c.idx {
		sum += y[r] * c.val[t]
	}
	return sum
}

// totalInfeas sums bound violations of the basic variables.
func (s *revised) totalInfeas() float64 {
	f := s.f
	tot := 0.0
	for i, j := range s.basis {
		if s.xB[i] > f.hi[j] {
			tot += s.xB[i] - f.hi[j]
		} else if s.xB[i] < f.lo[j] {
			tot += f.lo[j] - s.xB[i]
		}
	}
	return tot
}
