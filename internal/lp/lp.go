// Package lp implements simplex solvers for linear programs. It is the
// substrate underneath internal/ilp, which together replace the CPLEX
// dependency of the Pesto paper (§3.2.2 "by solving this 0-1 integer
// programming using standard optimization software like CPLEX").
//
// The solver handles minimization problems over variables with bounds
// (finite or infinite on either side) and ≤, ≥ and = constraints. The
// default engine is a bounded-variable revised simplex with sparse
// column storage and a product-form (eta-file) basis — Dantzig pricing
// with a Bland's-rule anti-cycling fallback, periodic refactorization,
// and warm starts from an exported Basis with a dual-simplex repair
// loop (revised.go / revised_iter.go). The original dense two-phase
// full-tableau solver is retained in tableau.go as the reference
// implementation behind SolveDense and the differential tests.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Rel is the relation of a linear constraint.
type Rel int

const (
	// LE is a ≤ constraint.
	LE Rel = iota + 1
	// GE is a ≥ constraint.
	GE
	// EQ is an = constraint.
	EQ
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Term is one coefficient of a sparse constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear constraint sum(Terms) Rel RHS.
type Constraint struct {
	Terms []Term
	Rel   Rel
	RHS   float64
}

// Problem is a linear program: minimize c·x subject to constraints and
// variable bounds. Construct with NewProblem, then AddConstraint.
type Problem struct {
	numVars int
	obj     []float64
	lower   []float64
	upper   []float64 // math.Inf(1) when unbounded above
	cons    []Constraint
}

// NewProblem creates a problem with n variables, zero objective, lower
// bounds of 0 and no upper bounds.
func NewProblem(n int) *Problem {
	p := &Problem{
		numVars: n,
		obj:     make([]float64, n),
		lower:   make([]float64, n),
		upper:   make([]float64, n),
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars reports the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjective sets the coefficient of variable v in the minimization
// objective.
func (p *Problem) SetObjective(v int, c float64) error {
	if v < 0 || v >= p.numVars {
		return fmt.Errorf("objective var %d out of range", v)
	}
	p.obj[v] = c
	return nil
}

// SetBounds sets lower and upper bounds of variable v. Use
// math.Inf(1) for an unbounded upper limit.
func (p *Problem) SetBounds(v int, lo, hi float64) error {
	if v < 0 || v >= p.numVars {
		return fmt.Errorf("bounds var %d out of range", v)
	}
	if lo > hi {
		return fmt.Errorf("bounds var %d: lower %g > upper %g", v, lo, hi)
	}
	p.lower[v] = lo
	p.upper[v] = hi
	return nil
}

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lower[v], p.upper[v] }

// AddConstraint appends a constraint. Terms referencing out-of-range
// variables are rejected.
func (p *Problem) AddConstraint(c Constraint) error {
	for _, t := range c.Terms {
		if t.Var < 0 || t.Var >= p.numVars {
			return fmt.Errorf("constraint var %d out of range", t.Var)
		}
	}
	p.cons = append(p.cons, c)
	return nil
}

// ConstraintAt returns constraint i. The returned value shares its
// Terms slice with the problem; callers must not mutate it.
func (p *Problem) ConstraintAt(i int) Constraint { return p.cons[i] }

// ObjectiveCoef returns the objective coefficient of variable v.
func (p *Problem) ObjectiveCoef(v int) float64 { return p.obj[v] }

// Clone returns a deep copy; the branch-and-bound layer clones the root
// problem to apply branching bounds.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		numVars: p.numVars,
		obj:     append([]float64(nil), p.obj...),
		lower:   append([]float64(nil), p.lower...),
		upper:   append([]float64(nil), p.upper...),
		cons:    make([]Constraint, len(p.cons)),
	}
	// Constraint term slices are never mutated after AddConstraint, so
	// sharing them is safe and avoids O(nnz) copying per B&B node.
	copy(c.cons, p.cons)
	return c
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can decrease without bound.
	Unbounded
	// IterLimit means the iteration limit was exceeded.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // values of the structural variables
	Objective float64
	Iters     int
	// Basis is the optimal basis, exported on Optimal solves by the
	// revised solver so the next solve of a structurally identical
	// problem (same constraints, possibly tighter bounds) can warm-start
	// via SolveWarm. Nil from the dense reference solver.
	Basis *Basis
	// DualFeasible marks Objective as a valid lower bound on the true
	// optimum even when Status is IterLimit — set when a warm-started
	// dual-simplex solve ran out of time before regaining primal
	// feasibility. Branch and bound uses it to keep truncated work.
	DualFeasible bool
}

// ErrNoSolution is wrapped by Solve for infeasible/unbounded problems so
// callers can branch on it.
var ErrNoSolution = errors.New("no solution")

const (
	eps     = 1e-9
	epsCost = 1e-9
)

// Observer receives named counter increments from the solver —
// "lp.solves" once per solve, "lp.pivots" with the iteration count,
// "lp.pivots.dual" with the dual-simplex share, "lp.refactorizations"
// with basis rebuilds, and "lp.warmstart.hits" / "lp.warmstart.misses"
// from the SolveWarm* entry points. *obs.Recorder satisfies it; lp
// stays free of telemetry imports. Implementations must be safe for
// concurrent use, since relaxations solve in parallel across B&B
// batches.
type Observer interface {
	Add(name string, delta int64)
}

// denseOnly forces every Solve* call through the dense reference
// tableau; benchmarks flip it to A/B the two solvers on the full
// placement pipeline.
var denseOnly atomic.Bool

// ForceDenseForTesting routes all Solve* calls through the dense
// reference tableau while on. Test/bench only; not for production use.
func ForceDenseForTesting(on bool) { denseOnly.Store(on) }

// Solve minimizes the problem and returns the optimal solution, or a
// Solution whose Status explains why none exists (in which case the
// error wraps ErrNoSolution). The default engine is the revised simplex
// in revised.go; the dense tableau remains available via SolveDense.
func Solve(p *Problem) (Solution, error) {
	return SolveDeadlineObs(p, time.Time{}, nil)
}

// SolveDeadline is Solve with a wall-clock deadline; when the deadline
// passes mid-solve the result carries IterLimit status (wrapped in
// ErrNoSolution) so callers can treat it like any other unfinished
// relaxation. The deadline is checked between pivots, and a phase-2
// timeout still returns the best feasible iterate found so far. A zero
// deadline means no limit.
func SolveDeadline(p *Problem, deadline time.Time) (Solution, error) {
	return SolveDeadlineObs(p, deadline, nil)
}

// SolveDeadlineObs is SolveDeadline reporting solver counters to an
// optional observer (nil disables reporting).
func SolveDeadlineObs(p *Problem, deadline time.Time, o Observer) (Solution, error) {
	if denseOnly.Load() {
		return solveDenseObs(p, deadline, o)
	}
	return solveRevised(p, nil, false, deadline, o)
}

// SolveWarm is Solve warm-started from a prior basis (nil falls back to
// a cold solve, counted as a warm-start miss).
func SolveWarm(p *Problem, warm *Basis) (Solution, error) {
	return SolveWarmDeadlineObs(p, warm, time.Time{}, nil)
}

// SolveWarmDeadlineObs re-solves a problem with the same constraint
// structure as the solve that produced warm — typically after bounds
// tightened (a branch-and-bound child). A basis that is still primal
// feasible skips phase 1 entirely; one that is only dual feasible is
// repaired by dual simplex; anything else falls back to a cold solve.
// Hit/miss counters are reported to the observer either way.
func SolveWarmDeadlineObs(p *Problem, warm *Basis, deadline time.Time, o Observer) (Solution, error) {
	if denseOnly.Load() {
		return solveDenseObs(p, deadline, o)
	}
	return solveRevised(p, warm, true, deadline, o)
}

// SolveDense runs the dense two-phase full-tableau reference solver.
// It is retained for differential testing against the revised simplex.
func SolveDense(p *Problem) (Solution, error) {
	return solveDenseObs(p, time.Time{}, nil)
}

// solveDenseObs is the original dense-tableau driver.
func solveDenseObs(p *Problem, deadline time.Time, o Observer) (sol Solution, err error) {
	if o != nil {
		defer func() {
			o.Add("lp.solves", 1)
			o.Add("lp.pivots", int64(sol.Iters))
		}()
	}
	t, err := newTableau(p)
	if err != nil {
		return Solution{}, err
	}
	t.deadline = deadline
	if t.needPhase1 {
		st, iters := t.run(true)
		t.iters += iters
		if st != Optimal {
			return Solution{Status: st, Iters: t.iters}, fmt.Errorf("phase 1: %v: %w", st, ErrNoSolution)
		}
		if t.phase1Objective() > 1e-6 {
			return Solution{Status: Infeasible, Iters: t.iters}, fmt.Errorf("infeasible: %w", ErrNoSolution)
		}
		t.dropArtificials()
	}
	st, iters := t.run(false)
	t.iters += iters
	sol = Solution{Status: st, Iters: t.iters}
	if st != Optimal {
		return sol, fmt.Errorf("phase 2: %v: %w", st, ErrNoSolution)
	}
	sol.X = t.extract()
	sol.Objective = dot(p.obj, sol.X)
	return sol, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
