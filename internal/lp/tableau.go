package lp

import (
	"fmt"
	"math"
	"time"
)

// tableau is a full-tableau simplex state. Columns are laid out as
// [structural | slack+surplus | artificial | RHS]; rows carry the
// constraint system in canonical form with basis[i] the basic column of
// row i. costP1 and costP2 are the phase-1 and phase-2 objective rows
// (reduced costs, with the last cell holding −z).
type tableau struct {
	rows  [][]float64
	basis []int
	cost1 []float64
	cost2 []float64

	nStruct    int
	nCols      int // total columns including RHS
	artStart   int // first artificial column index
	needPhase1 bool
	deadline   time.Time // zero means unlimited
	lower      []float64 // original lower bounds for extraction
	iters      int
}

func newTableau(p *Problem) (*tableau, error) {
	// Shift every variable by its lower bound so all variables are ≥ 0,
	// and materialize finite upper bounds as extra ≤ rows.
	type row struct {
		coefs []float64 // dense over structural vars
		rel   Rel
		rhs   float64
	}
	n := p.numVars
	rows := make([]row, 0, len(p.cons)+n)
	for _, c := range p.cons {
		r := row{coefs: make([]float64, n), rel: c.Rel, rhs: c.RHS}
		for _, t := range c.Terms {
			r.coefs[t.Var] += t.Coef
			r.rhs -= t.Coef * p.lower[t.Var] // shift
		}
		rows = append(rows, r)
	}
	for v := 0; v < n; v++ {
		if hi := p.upper[v]; !math.IsInf(hi, 1) {
			span := hi - p.lower[v]
			if span < 0 {
				return nil, fmt.Errorf("var %d: inverted bounds", v)
			}
			r := row{coefs: make([]float64, n), rel: LE, rhs: span}
			r.coefs[v] = 1
			rows = append(rows, r)
		}
	}
	// Row equilibration: scale every row so its largest coefficient has
	// magnitude 1. This keeps rows of wildly different units (e.g.
	// memory bytes vs normalized times) numerically comparable in the
	// dense tableau.
	for i := range rows {
		maxAbs := 0.0
		for _, c := range rows[i].coefs {
			if a := math.Abs(c); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 0 && (maxAbs > 16 || maxAbs < 1.0/16) {
			inv := 1 / maxAbs
			for j := range rows[i].coefs {
				rows[i].coefs[j] *= inv
			}
			rows[i].rhs *= inv
		}
	}
	// Anti-degeneracy perturbation: loosen every inequality by a tiny
	// row-dependent amount. Chains of identical operations produce
	// massively degenerate bases that stall Dantzig pricing; the
	// perturbation breaks the ties. Loosening can only enlarge the
	// feasible region, so feasibility conclusions stay valid, and the
	// objective shifts by O(1e-6) at most.
	for i := range rows {
		delta := 1e-9 * float64(i+1)
		switch rows[i].rel {
		case LE:
			rows[i].rhs += delta
		case GE:
			rows[i].rhs -= delta
		}
	}
	// Normalize all RHS to be nonnegative.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
	}
	m := len(rows)
	// Count slack/surplus and artificial columns.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		default:
			return nil, fmt.Errorf("unknown relation %v", r.rel)
		}
	}
	t := &tableau{
		rows:     make([][]float64, m),
		basis:    make([]int, m),
		nStruct:  n,
		nCols:    n + nSlack + nArt + 1,
		artStart: n + nSlack,
		lower:    append([]float64(nil), p.lower...),
	}
	slackCol := n
	artCol := t.artStart
	rhsCol := t.nCols - 1
	for i, r := range rows {
		tr := make([]float64, t.nCols)
		copy(tr, r.coefs)
		tr[rhsCol] = r.rhs
		switch r.rel {
		case LE:
			tr[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			tr[slackCol] = -1
			slackCol++
			tr[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			tr[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = tr
	}
	t.needPhase1 = nArt > 0

	// Phase-2 cost row: structural objective, canonical already because
	// initial basic variables (slacks, artificials) have zero phase-2
	// cost.
	t.cost2 = make([]float64, t.nCols)
	copy(t.cost2, p.obj)
	// Phase-1 cost row: +1 per artificial; canonicalize by subtracting
	// each artificial-basic row.
	t.cost1 = make([]float64, t.nCols)
	for c := t.artStart; c < rhsCol; c++ {
		t.cost1[c] = 1
	}
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := range t.cost1 {
				t.cost1[j] -= t.rows[i][j]
			}
		}
	}
	return t, nil
}

func (t *tableau) phase1Objective() float64 {
	return -t.cost1[t.nCols-1]
}

// run executes simplex iterations on the given phase's cost row until
// optimality, unboundedness, or the iteration cap.
func (t *tableau) run(phase1 bool) (Status, int) {
	cost := t.cost2
	if phase1 {
		cost = t.cost1
	}
	rhsCol := t.nCols - 1
	maxIters := 2000 + 50*(len(t.rows)+t.nCols)
	if maxIters > 60000 {
		maxIters = 60000
	}
	// Stall detection: long runs of degenerate pivots (objective not
	// moving) first force Bland's anti-cycling rule, then abort with
	// IterLimit so callers (branch and bound) can move on instead of
	// burning the whole time budget in one relaxation.
	const (
		stallBland = 2000
		stallAbort = 8000
	)
	lastObj := math.Inf(1)
	stall := 0
	for iter := 0; iter < maxIters; iter++ {
		if iter%128 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return IterLimit, iter
		}
		obj := -cost[rhsCol]
		if obj < lastObj-1e-12 {
			lastObj = obj
			stall = 0
		} else {
			stall++
			if stall > stallAbort {
				return IterLimit, iter
			}
		}
		// Entering column: most negative reduced cost (Dantzig), or
		// Bland's rule once we suspect cycling or stalling.
		useBland := iter >= maxIters/2 || stall >= stallBland
		col := -1
		if !useBland {
			best := -epsCost
			for j := 0; j < rhsCol; j++ {
				if !phase1 && j >= t.artStart {
					continue // artificials never re-enter in phase 2
				}
				if cost[j] < best {
					best = cost[j]
					col = j
				}
			}
		} else {
			for j := 0; j < rhsCol; j++ {
				if !phase1 && j >= t.artStart {
					continue
				}
				if cost[j] < -epsCost {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return Optimal, iter
		}
		// Ratio test. Entries below pivTol are ineligible: dividing a
		// dense row by a near-zero pivot amplifies its rounding error
		// into the whole tableau, and after hundreds of pivots the
		// tableau system drifts measurably from the original problem
		// (the skipped variable overshoots its bound by at most
		// pivTol·step — far below feasTol). Near-tied ratios prefer the
		// clearly larger pivot for the same reason, except under Bland's
		// rule, whose anti-cycling proof needs the lowest basis index.
		const pivTol = 1e-7
		row := -1
		bestRatio := math.Inf(1)
		bestA := 0.0
		for i := range t.rows {
			a := t.rows[i][col]
			if a <= pivTol {
				continue
			}
			ratio := t.rows[i][rhsCol] / a
			if row < 0 || ratio < bestRatio-eps {
				bestRatio, row, bestA = ratio, i, a
				continue
			}
			if ratio >= bestRatio+eps {
				continue
			}
			better := false
			if useBland {
				better = t.basis[i] < t.basis[row]
			} else {
				better = a > 4*bestA || (4*a > bestA && t.basis[i] < t.basis[row])
			}
			if better {
				if ratio < bestRatio {
					bestRatio = ratio
				}
				row, bestA = i, a
			}
		}
		if row < 0 {
			return Unbounded, iter
		}
		t.pivot(row, col)
	}
	return IterLimit, maxIters
}

// pivot makes column col basic in row row, updating all rows and both
// cost rows.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := range t.rows {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	for _, cost := range [][]float64{t.cost1, t.cost2} {
		f := cost[col]
		if f == 0 {
			continue
		}
		for j := range cost {
			cost[j] -= f * pr[j]
		}
		cost[col] = 0
	}
	t.basis[row] = col
}

// dropArtificials removes artificial variables from the basis after a
// successful phase 1. Basic artificials at level zero are pivoted out on
// any eligible non-artificial column; rows that turn out to be redundant
// (all non-artificial entries zero) are deleted.
func (t *tableau) dropArtificials() {
	rhsCol := t.nCols - 1
	var keep []int
	for i := 0; i < len(t.rows); i++ {
		if t.basis[i] < t.artStart {
			keep = append(keep, i)
			continue
		}
		// Pivot on the largest-magnitude eligible entry: the artificial
		// sits at level ~0, so any nonzero column works algebraically,
		// but a near-zero pivot divides the row by it and injects its
		// rounding error into the basis as real infeasibility.
		jBest, aBest := -1, eps
		for j := 0; j < t.artStart; j++ {
			if a := math.Abs(t.rows[i][j]); a > aBest {
				jBest, aBest = j, a
			}
		}
		if jBest >= 0 {
			t.pivot(i, jBest)
			keep = append(keep, i)
		}
		// else: redundant row; drop it below.
	}
	if len(keep) != len(t.rows) {
		rows := make([][]float64, 0, len(keep))
		basis := make([]int, 0, len(keep))
		for _, i := range keep {
			rows = append(rows, t.rows[i])
			basis = append(basis, t.basis[i])
		}
		t.rows = rows
		t.basis = basis
	}
	_ = rhsCol
}

// extract reads structural variable values from the tableau, undoing the
// lower-bound shift.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.nStruct)
	rhsCol := t.nCols - 1
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rows[i][rhsCol]
		}
	}
	for j := range x {
		x[j] += t.lower[j]
		if math.Abs(x[j]) < eps {
			x[j] = 0
		}
	}
	return x
}
