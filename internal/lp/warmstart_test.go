package lp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// countObs is a thread-safe Observer for asserting solver counters.
type countObs struct {
	mu sync.Mutex
	m  map[string]int64
}

func newCountObs() *countObs { return &countObs{m: make(map[string]int64)} }

func (o *countObs) Add(name string, delta int64) {
	o.mu.Lock()
	o.m[name] += delta
	o.mu.Unlock()
}

func (o *countObs) get(name string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.m[name]
}

// TestWarmStartAfterBoundTightening is the branch-and-bound child
// pattern: solve a relaxation, tighten one binary-like variable's
// bounds, and re-solve warm from the parent basis. The warm solve must
// count as a hit and agree with a cold solve of the same child.
func TestWarmStartAfterBoundTightening(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	children := 0
	for i := 0; i < 120; i++ {
		p := randomLP(rng)
		parent, err := Solve(p)
		if err != nil || parent.Status != Optimal {
			continue
		}
		if parent.Basis == nil {
			t.Fatalf("instance %d: optimal solve exported no basis", i)
		}
		// Branch on the first variable with room: pin it to its floor.
		child := p.Clone()
		branched := false
		for v := 0; v < p.NumVars(); v++ {
			lo, hi := p.Bounds(v)
			if hi-lo > 0.5 {
				mid := math.Floor((lo + hi) / 2)
				if mid < lo {
					mid = lo
				}
				_ = child.SetBounds(v, lo, mid)
				branched = true
				break
			}
		}
		if !branched {
			continue
		}
		children++
		obsv := newCountObs()
		warm, werr := SolveWarmDeadlineObs(child, parent.Basis, time.Time{}, obsv)
		cold, cerr := Solve(child)
		if (werr == nil) != (cerr == nil) || warm.Status != cold.Status {
			t.Fatalf("instance %d: warm %v/%v vs cold %v/%v", i, warm.Status, werr, cold.Status, cerr)
		}
		if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("instance %d: warm objective %.12g != cold %.12g", i, warm.Objective, cold.Objective)
		}
		if hits, misses := obsv.get("lp.warmstart.hits"), obsv.get("lp.warmstart.misses"); hits+misses != 1 {
			t.Fatalf("instance %d: hits=%d misses=%d, want exactly one classification", i, hits, misses)
		}
		if obsv.get("lp.solves") != 1 {
			t.Fatalf("instance %d: lp.solves=%d, want 1", i, obsv.get("lp.solves"))
		}
	}
	if children < 30 {
		t.Fatalf("only %d warm-start children exercised, corpus too small", children)
	}
}

// TestWarmStartNilAndIncompatibleBases asserts the miss paths: a nil
// basis and a basis from a structurally different problem must both
// fall back to a correct cold solve, counted as misses.
func TestWarmStartNilAndIncompatibleBases(t *testing.T) {
	p := NewProblem(2)
	_ = p.SetObjective(0, -1)
	_ = p.SetObjective(1, -1)
	_ = p.SetBounds(0, 0, 3)
	_ = p.SetBounds(1, 0, 3)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: LE, RHS: 4})

	obsv := newCountObs()
	sol, err := SolveWarmDeadlineObs(p, nil, time.Time{}, obsv)
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-(-4)) > 1e-6 {
		t.Fatalf("nil basis: status=%v obj=%g err=%v", sol.Status, sol.Objective, err)
	}
	if obsv.get("lp.warmstart.misses") != 1 || obsv.get("lp.warmstart.hits") != 0 {
		t.Fatalf("nil basis: hits=%d misses=%d, want 0/1",
			obsv.get("lp.warmstart.hits"), obsv.get("lp.warmstart.misses"))
	}

	// A basis exported from an unrelated, larger problem.
	q := NewProblem(5)
	for v := 0; v < 5; v++ {
		_ = q.SetBounds(v, 0, 1)
	}
	_ = q.AddConstraint(Constraint{Terms: []Term{{0, 1}, {3, 2}}, Rel: LE, RHS: 1})
	_ = q.AddConstraint(Constraint{Terms: []Term{{1, 1}, {4, -1}}, Rel: GE, RHS: 0})
	qsol, err := Solve(q)
	if err != nil || qsol.Basis == nil {
		t.Fatalf("donor solve: %v", err)
	}
	obsv = newCountObs()
	sol, err = SolveWarmDeadlineObs(p, qsol.Basis, time.Time{}, obsv)
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-(-4)) > 1e-6 {
		t.Fatalf("incompatible basis: status=%v obj=%g err=%v", sol.Status, sol.Objective, err)
	}
	if obsv.get("lp.warmstart.misses") != 1 || obsv.get("lp.warmstart.hits") != 0 {
		t.Fatalf("incompatible basis: hits=%d misses=%d, want 0/1",
			obsv.get("lp.warmstart.hits"), obsv.get("lp.warmstart.misses"))
	}
}

// TestDeadlineTruncatedBoundValid expires the deadline before the
// first pivot of warm-started children and checks every truncated
// result that claims DualFeasible really is a lower bound on the
// child's true optimum — the property branch and bound relies on to
// keep deadline-truncated work.
func TestDeadlineTruncatedBoundValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truncated := 0
	for i := 0; i < 150; i++ {
		p := randomLP(rng)
		parent, err := Solve(p)
		if err != nil || parent.Status != Optimal {
			continue
		}
		child := p.Clone()
		branched := false
		for v := 0; v < p.NumVars(); v++ {
			lo, hi := p.Bounds(v)
			if hi-lo > 0.5 {
				_ = child.SetBounds(v, lo, math.Max(lo, math.Floor((lo+hi)/2)))
				branched = true
				break
			}
		}
		if !branched {
			continue
		}
		expired := time.Now().Add(-time.Second)
		warm, _ := SolveWarmDeadlineObs(child, parent.Basis, expired, nil)
		cold, cerr := Solve(child)
		switch warm.Status {
		case IterLimit:
			if !warm.DualFeasible {
				continue
			}
			truncated++
			if cerr == nil && cold.Status == Optimal && warm.Objective > cold.Objective+1e-6 {
				t.Fatalf("instance %d: truncated bound %.12g above true optimum %.12g",
					i, warm.Objective, cold.Objective)
			}
		case Optimal:
			// The parent basis stayed primal feasible: phase 2 truncated at
			// iteration zero can still price out optimal immediately, or the
			// feasible iterate is returned without optimality; either way the
			// objective must not beat the true optimum.
			if cold.Status == Optimal && warm.Objective < cold.Objective-1e-6 {
				t.Fatalf("instance %d: expired-deadline solve claims objective %.12g below optimum %.12g",
					i, warm.Objective, cold.Objective)
			}
		}
	}
	if truncated < 10 {
		t.Fatalf("only %d dual-truncated children, corpus too small to mean anything", truncated)
	}
}

// TestWarmStartBasisSharedAcrossChildren solves two different children
// from the same parent basis — the sibling-share pattern — and checks
// neither solve corrupts the other (the Basis must behave as
// immutable).
func TestWarmStartBasisSharedAcrossChildren(t *testing.T) {
	p := NewProblem(3)
	_ = p.SetObjective(0, -2)
	_ = p.SetObjective(1, -3)
	_ = p.SetObjective(2, -1)
	for v := 0; v < 3; v++ {
		_ = p.SetBounds(v, 0, 1)
	}
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Rel: LE, RHS: 1.5})
	parent, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	left := p.Clone()
	_ = left.SetBounds(1, 0, 0)
	right := p.Clone()
	_ = right.SetBounds(1, 1, 1)

	lWarm, lerr := SolveWarm(left, parent.Basis)
	rWarm, rerr := SolveWarm(right, parent.Basis)
	lCold, _ := Solve(left)
	rCold, _ := Solve(right)
	if lerr != nil || rerr != nil {
		t.Fatalf("warm children: %v / %v", lerr, rerr)
	}
	if math.Abs(lWarm.Objective-lCold.Objective) > 1e-6 || math.Abs(rWarm.Objective-rCold.Objective) > 1e-6 {
		t.Fatalf("shared-basis children diverge from cold: left %g vs %g, right %g vs %g",
			lWarm.Objective, lCold.Objective, rWarm.Objective, rCold.Objective)
	}
	// Re-run the left child from the same basis: identical answer means
	// the first pair of solves did not mutate the shared basis.
	lAgain, err := SolveWarm(left, parent.Basis)
	if err != nil || math.Abs(lAgain.Objective-lWarm.Objective) > 1e-9 {
		t.Fatalf("re-solve from shared basis drifted: %g vs %g (err %v)", lAgain.Objective, lWarm.Objective, err)
	}
}
