package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveBasicMax(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6, x,y >= 0  => x=4, y=0, obj 12.
	p := NewProblem(2)
	_ = p.SetObjective(0, -3)
	_ = p.SetObjective(1, -2)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: LE, RHS: 4})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 3}}, Rel: LE, RHS: 6})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -12) || !approx(sol.X[0], 4) || !approx(sol.X[1], 0) {
		t.Fatalf("got X=%v obj=%g, want X=[4 0] obj=-12", sol.X, sol.Objective)
	}
}

func TestSolveWithGEAndEQ(t *testing.T) {
	// min x + y s.t. x + y >= 2, x - y = 0  => x=y=1, obj 2.
	p := NewProblem(2)
	_ = p.SetObjective(0, 1)
	_ = p.SetObjective(1, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: GE, RHS: 2})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, -1}}, Rel: EQ, RHS: 0})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 2) || !approx(sol.X[0], 1) || !approx(sol.X[1], 1) {
		t.Fatalf("got X=%v obj=%g, want X=[1 1] obj=2", sol.X, sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := NewProblem(1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Rel: LE, RHS: 1})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Rel: GE, RHS: 2})
	sol, err := Solve(p)
	if !errors.Is(err, ErrNoSolution) || sol.Status != Infeasible {
		t.Fatalf("got status=%v err=%v, want infeasible", sol.Status, err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x with x >= 0 free above.
	p := NewProblem(1)
	_ = p.SetObjective(0, -1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Rel: GE, RHS: 0})
	sol, err := Solve(p)
	if !errors.Is(err, ErrNoSolution) || sol.Status != Unbounded {
		t.Fatalf("got status=%v err=%v, want unbounded", sol.Status, err)
	}
}

func TestSolveUpperBounds(t *testing.T) {
	// max x + y with 0 <= x,y <= 1 and x + y <= 1.5 => obj 1.5.
	p := NewProblem(2)
	_ = p.SetObjective(0, -1)
	_ = p.SetObjective(1, -1)
	_ = p.SetBounds(0, 0, 1)
	_ = p.SetBounds(1, 0, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: LE, RHS: 1.5})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -1.5) {
		t.Fatalf("obj = %g, want -1.5", sol.Objective)
	}
	if sol.X[0] > 1+1e-6 || sol.X[1] > 1+1e-6 {
		t.Fatalf("bounds violated: %v", sol.X)
	}
}

func TestSolveNonzeroLowerBounds(t *testing.T) {
	// min x + y with x >= 2, y in [3, 5], x + y <= 10.
	p := NewProblem(2)
	_ = p.SetObjective(0, 1)
	_ = p.SetObjective(1, 1)
	_ = p.SetBounds(0, 2, math.Inf(1))
	_ = p.SetBounds(1, 3, 5)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: LE, RHS: 10})
	sol := solveOK(t, p)
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 3) || !approx(sol.Objective, 5) {
		t.Fatalf("got X=%v obj=%g, want [2 3] obj=5", sol.X, sol.Objective)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(1)
	_ = p.SetObjective(0, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, -1}}, Rel: LE, RHS: -3})
	sol := solveOK(t, p)
	if !approx(sol.X[0], 3) {
		t.Fatalf("x = %g, want 3", sol.X[0])
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classically degenerate LP (Beale-like); the Bland fallback must
	// terminate. min -0.75x1 + 150x2 - 0.02x3 + 6x4 subject to the
	// cycling-prone constraints.
	p := NewProblem(4)
	for i, c := range []float64{-0.75, 150, -0.02, 6} {
		_ = p.SetObjective(i, c)
	}
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, Rel: LE, RHS: 0})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, Rel: LE, RHS: 0})
	_ = p.AddConstraint(Constraint{Terms: []Term{{2, 1}}, Rel: LE, RHS: 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -0.05) {
		t.Fatalf("obj = %g, want -0.05", sol.Objective)
	}
}

func TestSolveEqualityOnly(t *testing.T) {
	// x + y = 3, x - y = 1 => x=2, y=1; objective min x.
	p := NewProblem(2)
	_ = p.SetObjective(0, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: EQ, RHS: 3})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, -1}}, Rel: EQ, RHS: 1})
	sol := solveOK(t, p)
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 1) {
		t.Fatalf("X = %v, want [2 1]", sol.X)
	}
}

func TestSolveRedundantConstraints(t *testing.T) {
	// Duplicate equality rows create redundant artificial rows which
	// dropArtificials must remove.
	p := NewProblem(2)
	_ = p.SetObjective(0, 1)
	_ = p.SetObjective(1, 2)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: EQ, RHS: 4})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 2}, {1, 2}}, Rel: EQ, RHS: 8})
	sol := solveOK(t, p)
	if !approx(sol.X[0]+sol.X[1], 4) || !approx(sol.Objective, 4) {
		t.Fatalf("X = %v obj=%g", sol.X, sol.Objective)
	}
}

func TestValidationErrors(t *testing.T) {
	p := NewProblem(1)
	if err := p.SetObjective(5, 1); err == nil {
		t.Error("SetObjective out of range should fail")
	}
	if err := p.SetBounds(0, 2, 1); err == nil {
		t.Error("inverted bounds should fail")
	}
	if err := p.AddConstraint(Constraint{Terms: []Term{{3, 1}}, Rel: LE, RHS: 0}); err == nil {
		t.Error("constraint with unknown var should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(2)
	_ = p.SetObjective(0, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Rel: GE, RHS: 1})
	c := p.Clone()
	_ = c.SetBounds(0, 0.5, 0.5)
	if lo, _ := p.Bounds(0); lo != 0 {
		t.Fatal("clone bound mutation leaked into original")
	}
	// Both still solvable.
	if _, err := Solve(p); err != nil {
		t.Fatalf("original: %v", err)
	}
	if _, err := Solve(c); err != nil {
		t.Fatalf("clone: %v", err)
	}
}

// TestPropertyRandomFeasibleLPs generates LPs with a known feasible point
// and checks that the solver (a) declares them feasible and (b) returns a
// solution satisfying every constraint within tolerance, with objective
// no worse than the known point's.
func TestPropertyRandomFeasibleLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := NewProblem(n)
		x0 := make([]float64, n) // known feasible point
		for j := 0; j < n; j++ {
			x0[j] = rng.Float64() * 10
			_ = p.SetObjective(j, rng.NormFloat64())
			_ = p.SetBounds(j, 0, 20)
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				c := rng.NormFloat64()
				terms = append(terms, Term{Var: j, Coef: c})
				lhs += c * x0[j]
			}
			// Make the constraint satisfied at x0 with slack.
			_ = p.AddConstraint(Constraint{Terms: terms, Rel: LE, RHS: lhs + rng.Float64()})
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Verify feasibility of the returned point.
		for i := 0; i < p.NumConstraints(); i++ {
			c := p.cons[i]
			lhs := 0.0
			for _, tm := range c.Terms {
				lhs += tm.Coef * sol.X[tm.Var]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-6 || sol.X[j] > 20+1e-6 {
				return false
			}
		}
		// Optimality vs the known point.
		obj0 := 0.0
		for j := 0; j < n; j++ {
			obj0 += p.obj[j] * x0[j]
		}
		return sol.Objective <= obj0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDeadlineExpiry(t *testing.T) {
	// An already-expired deadline must surface as IterLimit, not hang.
	p := NewProblem(3)
	_ = p.SetObjective(0, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Rel: GE, RHS: 3})
	sol, err := SolveDeadline(p, time.Now().Add(-time.Second))
	if !errors.Is(err, ErrNoSolution) || sol.Status != IterLimit {
		t.Fatalf("status=%v err=%v, want IterLimit", sol.Status, err)
	}
}

func TestSolveZeroDeadlineMeansUnlimited(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetObjective(0, 1)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Rel: GE, RHS: 2})
	sol, err := SolveDeadline(p, time.Time{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status=%v err=%v", sol.Status, err)
	}
}
