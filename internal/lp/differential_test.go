package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a seeded random instance for differential testing.
// All variables get finite boxes so instances are never unbounded (the
// unbounded path has its own directed tests); degenerate structure is
// injected deliberately: duplicated rows, zero objective entries and
// right-hand sides that make several bases optimal.
func randomLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(7)
	m := 1 + rng.Intn(10)
	p := NewProblem(n)
	for v := 0; v < n; v++ {
		// Zero objective on ~1/3 of the variables (degeneracy fuel).
		if rng.Intn(3) > 0 {
			_ = p.SetObjective(v, math.Round((rng.Float64()*8-4)*4)/4)
		}
		lo := 0.0
		if rng.Intn(4) == 0 {
			lo = -1 - rng.Float64()*2
		}
		_ = p.SetBounds(v, lo, lo+1+rng.Float64()*4)
	}
	rel := func() Rel { return Rel(1 + rng.Intn(3)) }
	var prev Constraint
	for i := 0; i < m; i++ {
		if i > 0 && rng.Intn(5) == 0 {
			// Exact duplicate of the previous row: a degenerate basis.
			_ = p.AddConstraint(prev)
			continue
		}
		nt := 1 + rng.Intn(n)
		seen := make(map[int]bool, nt)
		var terms []Term
		for len(terms) < nt {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			terms = append(terms, Term{Var: v, Coef: math.Round((rng.Float64()*8 - 4))})
		}
		c := Constraint{Terms: terms, Rel: rel(), RHS: math.Round((rng.Float64()*12 - 4))}
		_ = p.AddConstraint(c)
		prev = c
	}
	return p
}

// TestDifferentialRevisedVsDense runs the revised simplex against the
// dense-tableau reference on a seeded corpus, asserting the two agree
// on feasibility and, when optimal, on the objective to 1e-6. The
// corpus mixes feasible, degenerate and infeasible instances.
func TestDifferentialRevisedVsDense(t *testing.T) {
	const instances = 250
	rng := rand.New(rand.NewSource(61))
	feasible, infeasible := 0, 0
	for i := 0; i < instances; i++ {
		p := randomLP(rng)
		rsol, _ := Solve(p)
		dsol, _ := SolveDense(p)
		switch dsol.Status {
		case Optimal:
			feasible++
			if rsol.Status != Optimal {
				t.Fatalf("instance %d: dense optimal (%g), revised %v", i, dsol.Objective, rsol.Status)
			}
			if math.Abs(rsol.Objective-dsol.Objective) > 1e-6 {
				t.Fatalf("instance %d: objective mismatch: revised %.12g dense %.12g",
					i, rsol.Objective, dsol.Objective)
			}
		case Infeasible:
			infeasible++
			if rsol.Status != Infeasible {
				t.Fatalf("instance %d: dense infeasible, revised %v (obj %g)", i, rsol.Status, rsol.Objective)
			}
		default:
			t.Fatalf("instance %d: dense reference returned %v", i, dsol.Status)
		}
	}
	// The corpus must actually exercise both outcomes, or the test is
	// weaker than it claims.
	if feasible < 50 || infeasible < 20 {
		t.Fatalf("corpus too lopsided: %d feasible, %d infeasible of %d", feasible, infeasible, instances)
	}
}

// TestBealeCycling is Beale's classic degenerate LP, which cycles
// forever under pure Dantzig pricing with naive tie-breaking. The
// solver must terminate (stall detection hands pricing to Bland's
// rule) at the known optimum of -1/20.
func TestBealeCycling(t *testing.T) {
	p := NewProblem(4)
	_ = p.SetObjective(0, -0.75)
	_ = p.SetObjective(1, 150)
	_ = p.SetObjective(2, -0.02)
	_ = p.SetObjective(3, 6)
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, Rel: LE, RHS: 0})
	_ = p.AddConstraint(Constraint{Terms: []Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, Rel: LE, RHS: 0})
	_ = p.AddConstraint(Constraint{Terms: []Term{{2, 1}}, Rel: LE, RHS: 1})
	for name, solve := range map[string]func(*Problem) (Solution, error){
		"revised": Solve,
		"dense":   SolveDense,
	} {
		sol, err := solve(p)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("%s: status=%v err=%v, want optimal (anti-cycling failed?)", name, sol.Status, err)
		}
		if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
			t.Fatalf("%s: objective %g, want -0.05", name, sol.Objective)
		}
	}
}

// pivotCap mirrors the solver's own iteration budget; no random
// instance may exceed it (termination safety net for the fuzzer).
func pivotCap(p *Problem) int {
	cap := 2000 + 50*(p.NumConstraints()+p.NumVars()+p.NumConstraints())
	if cap > 60000 {
		cap = 60000
	}
	return cap
}

// FuzzRevisedSimplex derives small LPs from fuzz bytes and checks the
// revised solver terminates within its pivot cap and agrees with the
// dense reference on feasibility and objective.
func FuzzRevisedSimplex(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(7))
	f.Add(int64(42))
	f.Add(int64(-3))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		rsol, _ := Solve(p)
		if rsol.Iters > pivotCap(p) {
			t.Fatalf("seed %d: %d pivots exceeds cap %d", seed, rsol.Iters, pivotCap(p))
		}
		dsol, _ := SolveDense(p)
		if dsol.Status == Optimal {
			if rsol.Status != Optimal {
				t.Fatalf("seed %d: dense optimal, revised %v", seed, rsol.Status)
			}
			if math.Abs(rsol.Objective-dsol.Objective) > 1e-6 {
				t.Fatalf("seed %d: objectives diverge: revised %.12g dense %.12g", seed, rsol.Objective, dsol.Objective)
			}
		}
		if dsol.Status == Infeasible && rsol.Status != Infeasible {
			t.Fatalf("seed %d: dense infeasible, revised %v", seed, rsol.Status)
		}
	})
}
