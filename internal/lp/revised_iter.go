package lp

import (
	"fmt"
	"math"
	"time"
)

// Iteration loops of the revised simplex: composite-phase-1 and phase-2
// primal, the dual simplex used for warm-started re-solves, and the
// top-level driver.

const (
	stallBland = 2000 // degenerate iterations before Bland's rule kicks in
	stallAbort = 8000 // degenerate iterations before giving up
)

// priceEntering scans the nonbasic columns for an entering candidate.
// Dantzig pricing picks the most improving reduced cost (ties to the
// lowest column index); Bland's rule picks the first eligible column.
// Fixed columns (lo == hi) can never move and are skipped. Returns -1
// when the current basis prices out optimal for the phase objective.
func (s *revised) priceEntering(phase1, bland bool, y []float64) (q int, dq float64) {
	f := s.f
	q = -1
	best := epsCost
	for j := 0; j < f.n; j++ {
		if s.status[j] == stBasic || f.hi[j]-f.lo[j] < 1e-12 {
			continue
		}
		var cj float64
		if !phase1 {
			cj = f.cost[j]
		}
		d := cj - s.colDot(y, j)
		var mag float64
		switch s.status[j] {
		case stLower:
			mag = -d
		case stUpper:
			mag = d
		case stFree:
			mag = math.Abs(d)
		}
		if mag > best {
			q, dq = j, d
			if bland {
				return q, dq
			}
			best = mag
		}
	}
	return q, dq
}

// confirmTerminal guards every terminal verdict (optimal, infeasible,
// phase-1 feasible) against eta-file drift: accumulated product-form
// updates can perturb the duals enough to price out a non-optimal
// basis. If any etas were appended since the last refactorization, the
// inverse is rebuilt from scratch and the caller must re-price
// (returns false); once the verdict is reached on a freshly factored
// basis it stands (returns true). A rebuild failure also returns true —
// the tentative verdict is the best available on a numerically
// singular basis.
func (s *revised) confirmTerminal() bool {
	if len(s.etas) <= s.etasBase {
		return true
	}
	if err := s.refactorize(); err != nil {
		return true
	}
	s.computeXB()
	return false
}

// primal runs bounded-variable primal simplex iterations. With phase1
// true it minimizes the composite infeasibility of the basic variables
// (costs ±1 on out-of-bound basics, recomputed every iteration) and
// returns Optimal once feasible, Infeasible when priced out with
// residual infeasibility. With phase1 false it minimizes the problem
// objective from a primal-feasible basis and returns Optimal, Unbounded
// or IterLimit. The wall-clock deadline is checked every 32 pivots.
func (s *revised) primal(phase1 bool) Status {
	f := s.f
	lastObj := math.Inf(1)
	stall := 0
	for iter := 0; iter < s.maxIters; iter++ {
		if iter%32 == 0 && s.deadlineExpired() {
			return IterLimit
		}
		if err := s.maybeRefactor(); err != nil {
			return IterLimit
		}
		var obj float64
		if phase1 {
			obj = s.totalInfeas()
			if obj < 1e-9 {
				if !s.confirmTerminal() {
					continue
				}
				return Optimal
			}
		} else {
			obj = s.objValue()
		}
		if obj < lastObj-1e-12 {
			lastObj = obj
			stall = 0
		} else {
			stall++
			if stall > stallAbort {
				return IterLimit
			}
		}
		bland := iter >= s.maxIters/2 || stall >= stallBland
		y := s.duals(phase1)
		q, dq := s.priceEntering(phase1, bland, y)
		if q < 0 {
			if !s.confirmTerminal() {
				continue
			}
			if phase1 && s.totalInfeas() > 1e-6 {
				return Infeasible
			}
			return Optimal
		}
		sigma := 1.0
		switch s.status[q] {
		case stUpper:
			sigma = -1
		case stFree:
			if dq > 0 {
				sigma = -1
			}
		}
		w := s.ftran(q)
		// Ratio test over the basic variables. di is the rate of change
		// of xB[i] per unit step of the entering variable. In phase 1 an
		// infeasible basic only blocks at the bound it is approaching
		// (where its composite cost changes); a feasible basic blocks at
		// whichever finite bound it moves toward.
		tRow := math.Inf(1)
		r := -1
		wr := 0.0
		rUp := false // leaving variable exits at its upper bound
		for i := 0; i < f.m; i++ {
			wi := w[i]
			if wi > -eps && wi < eps {
				continue
			}
			di := -sigma * wi
			bi := s.basis[i]
			lo, hi := f.lo[bi], f.hi[bi]
			xb := s.xB[i]
			t := math.Inf(1)
			atUp := false
			if phase1 && xb < lo-feasTol {
				if di > eps {
					t = (lo - xb) / di
				}
			} else if phase1 && xb > hi+feasTol {
				if di < -eps {
					t, atUp = (hi-xb)/di, true
				}
			} else if di > eps && !math.IsInf(hi, 1) {
				t, atUp = (hi-xb)/di, true
			} else if di < -eps && !math.IsInf(lo, -1) {
				t = (lo - xb) / di
			}
			if math.IsInf(t, 1) {
				continue
			}
			if t < 0 {
				t = 0
			}
			if r < 0 || t < tRow-eps {
				tRow, r, wr, rUp = t, i, wi, atUp
			} else if t < tRow+eps {
				// Near-tie: prefer a clearly larger pivot magnitude for
				// stability, otherwise the lower basic column index for
				// determinism.
				aw, ab := math.Abs(wi), math.Abs(wr)
				if aw > 4*ab || (4*aw > ab && bi < s.basis[r]) {
					if t < tRow {
						tRow = t
					}
					r, wr, rUp = i, wi, atUp
				}
			}
		}
		// The entering variable's own opposite bound can be the binding
		// limit, in which case it flips bounds without a basis change.
		span := f.hi[q] - f.lo[q]
		if s.status[q] != stFree && !math.IsInf(span, 1) && span < tRow-eps {
			for i := 0; i < f.m; i++ {
				s.xB[i] -= sigma * span * w[i]
			}
			if s.status[q] == stLower {
				s.status[q] = stUpper
			} else {
				s.status[q] = stLower
			}
			s.iters++
			continue
		}
		if r < 0 {
			if phase1 {
				return IterLimit // defensive: phase 1 is bounded below
			}
			return Unbounded
		}
		if math.Abs(wr) < 1e-9 {
			// Unusably small pivot: rebuild the inverse and retry the
			// iteration with fresh numbers.
			if err := s.refactorize(); err != nil {
				return IterLimit
			}
			s.computeXB()
			continue
		}
		t := tRow
		enterVal := s.nbValue(q) + sigma*t
		for i := 0; i < f.m; i++ {
			if i == r {
				continue
			}
			s.xB[i] -= sigma * t * w[i]
		}
		leave := s.basis[r]
		if rUp {
			s.status[leave] = stUpper
		} else {
			s.status[leave] = stLower
		}
		s.etaUpdate(r, q, w)
		s.xB[r] = enterVal
	}
	return IterLimit
}

// dual runs bounded-variable dual simplex from a dual-feasible basis,
// driving out primal infeasibility while keeping reduced-cost signs
// valid. It returns Optimal when the basis becomes primal feasible
// (phase 2 then verifies optimality, usually with zero extra pivots),
// Infeasible when a violated row admits no entering column, and
// IterLimit on deadline or stall. The objective value of the current
// basis is a valid lower bound throughout (weak duality), which is what
// lets branch-and-bound keep deadline-truncated work.
func (s *revised) dual() Status {
	f := s.f
	lastObj := math.Inf(-1)
	stall := 0
	for iter := 0; iter < s.maxIters; iter++ {
		if iter%32 == 0 && s.deadlineExpired() {
			return IterLimit
		}
		if err := s.maybeRefactor(); err != nil {
			return IterLimit
		}
		obj := s.objValue()
		if obj > lastObj+1e-12 {
			lastObj = obj
			stall = 0
		} else {
			stall++
			if stall > stallAbort {
				return IterLimit
			}
		}
		bland := stall >= stallBland
		// Leaving row: most violated basic variable (Bland: first
		// violated row, a fixed scan order that cannot cycle).
		r := -1
		viol := 0.0
		below := false
		for i := 0; i < f.m; i++ {
			bi := s.basis[i]
			var v float64
			var bel bool
			if s.xB[i] < f.lo[bi]-feasTol {
				v, bel = f.lo[bi]-s.xB[i], true
			} else if s.xB[i] > f.hi[bi]+feasTol {
				v, bel = s.xB[i]-f.hi[bi], false
			} else {
				continue
			}
			if r < 0 || (!bland && v > viol) {
				viol, r, below = v, i, bel
			}
			if bland {
				break
			}
		}
		if r < 0 {
			if !s.confirmTerminal() {
				continue
			}
			return Optimal
		}
		// Entering column: dual ratio test over row r of B^{-1}A. The
		// min ratio keeps every reduced cost on its feasible side; ties
		// prefer the larger |alpha| for stability.
		y := s.duals(false)
		rho := s.basisRow(r)
		q := -1
		var alphaQ, ratioBest float64
		for j := 0; j < f.n; j++ {
			if s.status[j] == stBasic || f.hi[j]-f.lo[j] < 1e-12 {
				continue
			}
			alpha := s.colDot(rho, j)
			if alpha < eps && alpha > -eps {
				continue
			}
			ok := false
			switch s.status[j] {
			case stLower:
				ok = (below && alpha < 0) || (!below && alpha > 0)
			case stUpper:
				ok = (below && alpha > 0) || (!below && alpha < 0)
			case stFree:
				ok = true
			}
			if !ok {
				continue
			}
			d := f.cost[j] - s.colDot(y, j)
			var ratio float64
			if below {
				ratio = -d / alpha
			} else {
				ratio = d / alpha
			}
			if ratio < 0 {
				ratio = 0
			}
			if q < 0 || ratio < ratioBest-eps ||
				(ratio < ratioBest+eps && math.Abs(alpha) > math.Abs(alphaQ)) {
				q, alphaQ, ratioBest = j, alpha, ratio
			}
		}
		if q < 0 {
			if !s.confirmTerminal() {
				continue
			}
			return Infeasible
		}
		w := s.ftran(q)
		if math.Abs(w[r]) < 1e-11 {
			if err := s.refactorize(); err != nil {
				return IterLimit
			}
			s.computeXB()
			continue
		}
		var target float64
		if below {
			target = f.lo[s.basis[r]]
		} else {
			target = f.hi[s.basis[r]]
		}
		deltaQ := (s.xB[r] - target) / w[r]
		// If the entering variable would blow past its own opposite
		// bound, flip it there instead of pivoting; row r stays violated
		// (less so) and the next iteration continues.
		span := f.hi[q] - f.lo[q]
		if s.status[q] != stFree && !math.IsInf(span, 1) && math.Abs(deltaQ) > span+eps {
			step := span
			if deltaQ < 0 {
				step = -span
			}
			for i := 0; i < f.m; i++ {
				s.xB[i] -= step * w[i]
			}
			if s.status[q] == stLower {
				s.status[q] = stUpper
			} else {
				s.status[q] = stLower
			}
			s.iters++
			s.dualIters++
			continue
		}
		enterVal := s.nbValue(q) + deltaQ
		for i := 0; i < f.m; i++ {
			if i == r {
				continue
			}
			s.xB[i] -= deltaQ * w[i]
		}
		leave := s.basis[r]
		if below {
			s.status[leave] = stLower
		} else {
			s.status[leave] = stUpper
		}
		s.etaUpdate(r, q, w)
		s.dualIters++
		s.xB[r] = enterVal
	}
	return IterLimit
}

// solveRevised is the driver behind Solve/SolveDeadline/SolveWarm. With
// a warm basis it tries, in order: pure primal phase 2 (basis still
// primal feasible), dual simplex (basis dual feasible after a bound
// change — the B&B child case), and otherwise falls back to a cold
// two-phase solve. countWarm controls whether warm-start hit/miss
// counters are emitted (true only for the SolveWarm* entry points).
func solveRevised(p *Problem, warm *Basis, countWarm bool, deadline time.Time, o Observer) (sol Solution, err error) {
	f, ferr := buildStdForm(p)
	if ferr != nil {
		return Solution{}, ferr
	}
	var s *revised
	warmHit := false
	extraIters := 0
	dualItersPrev, refacPrev := 0, 0
	if o != nil {
		defer func() {
			o.Add("lp.solves", 1)
			o.Add("lp.pivots", int64(sol.Iters))
			if s != nil {
				o.Add("lp.pivots.dual", int64(dualItersPrev+s.dualIters))
				o.Add("lp.refactorizations", int64(refacPrev+s.refactors))
			}
			if countWarm {
				if warmHit {
					o.Add("lp.warmstart.hits", 1)
				} else {
					o.Add("lp.warmstart.misses", 1)
				}
			}
		}()
	}

	finishPhase2 := func() (Solution, error) {
		st := s.primal(false)
		res := Solution{Status: st, Iters: extraIters + s.iters, DualFeasible: st == Optimal}
		switch st {
		case Optimal:
			// Recompute basic values once from the current inverse to
			// shed incremental drift before extraction.
			s.computeXB()
			res.X = s.extract()
			res.Objective = dot(p.obj, res.X)
			res.Basis = s.exportBasis()
			return res, nil
		case IterLimit:
			if s.primalFeasible() {
				// Deadline or stall mid-phase-2: the current iterate is
				// feasible, return it rather than discarding the work.
				s.computeXB()
				res.X = s.extract()
				res.Objective = dot(p.obj, res.X)
			}
			return res, fmt.Errorf("phase 2: %v: %w", st, ErrNoSolution)
		default:
			return res, fmt.Errorf("phase 2: %v: %w", st, ErrNoSolution)
		}
	}

	if warm != nil {
		s = newRevised(f, deadline)
		if s.importBasis(warm) == nil {
			switch {
			case s.primalFeasible():
				warmHit = true
				return finishPhase2()
			case s.dualFeasible():
				st := s.dual()
				switch st {
				case Optimal:
					warmHit = true
					return finishPhase2()
				case Infeasible:
					warmHit = true
					sol = Solution{Status: Infeasible, Iters: s.iters}
					return sol, fmt.Errorf("infeasible: %w", ErrNoSolution)
				case IterLimit:
					if s.deadlineHit {
						// Out of time mid-dual: the basis is still dual
						// feasible, so its objective is a valid lower
						// bound. Hand it back instead of losing it.
						warmHit = true
						sol = Solution{
							Status:       IterLimit,
							Iters:        s.iters,
							Objective:    s.objValue(),
							DualFeasible: true,
						}
						return sol, fmt.Errorf("dual simplex: %v: %w", st, ErrNoSolution)
					}
					// Numerical stall: abandon the warm state, go cold.
				}
			}
			// Neither primal nor dual feasible (or dual stalled): the
			// import bought nothing — cold restart, counted as a miss.
		}
		extraIters = s.iters
		dualItersPrev, refacPrev = s.dualIters, s.refactors
	}

	s = newRevised(f, deadline)
	s.initSlackBasis()
	if !s.primalFeasible() {
		st := s.primal(true)
		if st != Optimal {
			sol = Solution{Status: st, Iters: extraIters + s.iters}
			if st == Infeasible {
				return sol, fmt.Errorf("infeasible: %w", ErrNoSolution)
			}
			return sol, fmt.Errorf("phase 1: %v: %w", st, ErrNoSolution)
		}
	}
	return finishPhase2()
}
