// Package flight is pestod's black-box flight recorder: a bounded
// in-memory ring of recent telemetry records that is always on, plus
// triggered capture of self-contained repro bundles. When a solve
// crosses its rolling-p99 baseline, the ladder degrades to the
// fallback rung, verification fails, or an SLO burns too fast, the
// recorder snapshots everything needed to re-execute the request —
// graph, options, seed, fingerprint, spans — into a JSON bundle that
// `pesto -replay-bundle` re-runs byte-deterministically.
//
// Like internal/obs it is stdlib-only and safe for concurrent use;
// the ring is an obs.Sink, so it taps the same per-request recorder
// the span store uses.
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pesto/internal/obs"
)

// Schema versions the bundle wire format.
const Schema = "pesto/flight-bundle/v1"

// Ring is a bounded ring buffer of telemetry records: the newest
// RingSize records of the process, overwriting the oldest. It
// implements obs.Sink so per-request recorders can tee into it.
type Ring struct {
	mu    sync.Mutex
	buf   []obs.Record
	next  int
	full  bool
	total uint64
}

// NewRing builds a ring holding size records (<=0 means 4096).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = 4096
	}
	return &Ring{buf: make([]obs.Record, size)}
}

// Record implements obs.Sink.
func (r *Ring) Record(rec obs.Record) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot copies the buffered records, oldest first.
func (r *Ring) Snapshot() []obs.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]obs.Record, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]obs.Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many records the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total reports how many records have ever been recorded.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SpanRecord is the bundle's wire form of one telemetry record — the
// same shape the span-dump endpoint uses, so bundles and span dumps
// read identically.
type SpanRecord struct {
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	TsNs   int64             `json:"tsNs"`
	DurNs  int64             `json:"durNs,omitempty"`
	Span   uint64            `json:"span,omitempty"`
	Parent uint64            `json:"parent,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// FromObsRecords converts telemetry records to the bundle wire form.
func FromObsRecords(recs []obs.Record) []SpanRecord {
	out := make([]SpanRecord, 0, len(recs))
	for _, rec := range recs {
		sr := SpanRecord{
			Kind:   rec.Kind.String(),
			Name:   rec.Name,
			TsNs:   int64(rec.Ts),
			DurNs:  int64(rec.Dur),
			Span:   rec.ID,
			Parent: rec.Parent,
			Value:  rec.Value,
		}
		if len(rec.Attrs) > 0 {
			sr.Attrs = make(map[string]string, len(rec.Attrs))
			for _, a := range rec.Attrs {
				sr.Attrs[a.Key] = a.Value
			}
		}
		out = append(out, sr)
	}
	return out
}

// Bundle is one self-contained repro capture. Graph, Options and
// Response are the exact request/response bytes (already normalized by
// the service), so a replay re-executes the same solve: same graph,
// same options, same seed — and byte-identical output when Replayable.
type Bundle struct {
	Schema        string           `json:"schema"`
	Trigger       string           `json:"trigger"` // slow-solve | degraded-fallback | verify-failure | slo-fast-burn
	Detail        string           `json:"detail,omitempty"`
	CapturedAtNs  int64            `json:"capturedAtNs"`
	RequestID     string           `json:"requestId,omitempty"`
	TraceID       string           `json:"traceId,omitempty"`
	Fingerprint   string           `json:"fingerprint,omitempty"`
	Stage         string           `json:"stage,omitempty"`
	Seed          int64            `json:"seed,omitempty"`
	SolveNs       int64            `json:"solveNs,omitempty"`
	BaselineP99Ns int64            `json:"baselineP99Ns,omitempty"`
	Graph         json.RawMessage  `json:"graph,omitempty"`
	Options       json.RawMessage  `json:"options,omitempty"`
	Response      json.RawMessage  `json:"response,omitempty"`
	Spans         []SpanRecord     `json:"spans,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	// Replayable marks bundles carrying a complete (graph, options)
	// pair whose solve is expected to reproduce byte-identically.
	Replayable bool `json:"replayable"`
}

// ReadBundleFile loads and schema-checks a bundle.
func ReadBundleFile(path string) (Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Bundle{}, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return Bundle{}, fmt.Errorf("decode bundle %s: %w", path, err)
	}
	if b.Schema != Schema {
		return Bundle{}, fmt.Errorf("bundle %s: schema %q, want %q", path, b.Schema, Schema)
	}
	return b, nil
}

// Config sizes a Recorder. Zero values mean defaults.
type Config struct {
	// Dir is where triggered bundles are written; empty means capture
	// in memory only (counted, returned to the caller, not persisted).
	Dir string
	// RingSize bounds the always-on record ring; zero means 4096.
	RingSize int
	// BaselineWindow is how many recent solve latencies the rolling
	// p99 baseline is computed over; zero means 512.
	BaselineWindow int
	// MinSamples is how many latencies the window needs before the
	// slow-solve trigger arms; zero means 32.
	MinSamples int
	// SlowFactor is the baseline multiplier that makes a solve "slow";
	// zero means 1.5 (a solve 50% over the rolling p99 triggers).
	SlowFactor float64
	// SlowFloor is the minimum duration a solve must exceed to trigger
	// regardless of baseline — it keeps microsecond cache-adjacent
	// noise from capturing bundles; zero means 25ms.
	SlowFloor time.Duration
	// MaxBundles caps bundle files written per process; zero means 64.
	// Past the cap, captures are still counted but not persisted.
	MaxBundles int
	// Clock stamps captures; nil means time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.BaselineWindow <= 0 {
		c.BaselineWindow = 512
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 1.5
	}
	if c.SlowFloor <= 0 {
		c.SlowFloor = 25 * time.Millisecond
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 64
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Recorder is the per-process flight recorder: the always-on ring, the
// rolling latency baseline, and the bundle writer. All methods are
// safe for concurrent use; no goroutines are spawned.
type Recorder struct {
	cfg  Config
	ring *Ring

	mu      sync.Mutex
	lat     []time.Duration
	latNext int
	latFull bool
	seq     int
	written int
	dropped int64
}

// New builds a recorder.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{cfg: cfg, ring: NewRing(cfg.RingSize)}
}

// Ring is the always-on record ring; register it as an obs sink.
func (r *Recorder) Ring() *Ring { return r.ring }

// SlowSolve checks d against the rolling p99 baseline and then admits
// it into the window (check-then-record: a latency never competes with
// itself). It reports whether d should trigger a capture and the
// baseline it was compared against (0 while the window is still
// arming).
func (r *Recorder) SlowSolve(d time.Duration) (slow bool, p99 time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lat == nil {
		r.lat = make([]time.Duration, r.cfg.BaselineWindow)
	}
	n := r.latNext
	if r.latFull {
		n = r.cfg.BaselineWindow
	}
	if n >= r.cfg.MinSamples {
		p99 = latP99(r.lat, n)
		if d >= r.cfg.SlowFloor && float64(d) > float64(p99)*r.cfg.SlowFactor {
			slow = true
		}
	}
	r.lat[r.latNext] = d
	r.latNext++
	if r.latNext == r.cfg.BaselineWindow {
		r.latNext = 0
		r.latFull = true
	}
	return slow, p99
}

// latP99 computes the 99th percentile of the window's first n entries
// (the live region: the whole buffer once the ring has wrapped).
func latP99(buf []time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	tmp := make([]time.Duration, n)
	copy(tmp, buf[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := (99*n + 99) / 100 // ceil(0.99 n)
	if idx > n {
		idx = n
	}
	return tmp[idx-1]
}

// Capture stamps and persists a bundle, returning the file path
// (empty when Dir is unset or the MaxBundles cap was hit — the
// capture still counts either way) and the stamped bundle.
func (r *Recorder) Capture(b Bundle) (Bundle, string, error) {
	b.Schema = Schema
	b.CapturedAtNs = r.cfg.Clock().UnixNano()
	if b.Spans == nil {
		b.Spans = FromObsRecords(r.ring.Snapshot())
	}
	r.mu.Lock()
	seq := r.seq
	r.seq++
	persist := r.cfg.Dir != "" && r.written < r.cfg.MaxBundles
	if persist {
		r.written++
	} else if r.cfg.Dir != "" {
		r.dropped++
	}
	r.mu.Unlock()
	if !persist {
		return b, "", nil
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return b, "", err
	}
	data = append(data, '\n')
	path := filepath.Join(r.cfg.Dir, fmt.Sprintf("bundle-%06d-%s.json", seq, b.Trigger))
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return b, "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return b, "", err
	}
	return b, path, nil
}

// Stats reads the recorder's counters: bundles captured (persisted or
// not), bundle files dropped by the MaxBundles cap, and the ring's
// lifetime record count.
func (r *Recorder) Stats() (captured int, droppedFiles int64, ringTotal uint64) {
	r.mu.Lock()
	captured = r.seq
	droppedFiles = r.dropped
	r.mu.Unlock()
	return captured, droppedFiles, r.ring.Total()
}
