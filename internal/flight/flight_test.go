package flight

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"pesto/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Record(obs.Record{Kind: obs.KindPoint, Name: fmt.Sprintf("p%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	for i, rec := range snap {
		if want := fmt.Sprintf("p%d", i+2); rec.Name != want {
			t.Fatalf("snap[%d] = %q, want %q", i, rec.Name, want)
		}
	}
	if r.Total() != 6 || r.Len() != 4 {
		t.Fatalf("Total = %d Len = %d, want 6 and 4", r.Total(), r.Len())
	}
}

// TestRingConcurrent races writers against snapshots; the race
// detector is the assertion.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(obs.Record{Kind: obs.KindPoint, Name: "w", Ts: time.Duration(w*1000 + i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := r.Snapshot()
			if len(snap) > 64 {
				t.Errorf("snapshot overflow: %d", len(snap))
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Total(); got != 8*500 {
		t.Fatalf("Total = %d, want %d", got, 8*500)
	}
}

func TestSlowSolveBaseline(t *testing.T) {
	r := New(Config{MinSamples: 8, BaselineWindow: 32, SlowFactor: 1.5, SlowFloor: time.Millisecond})
	// Arming: the first MinSamples never trigger.
	for i := 0; i < 8; i++ {
		if slow, _ := r.SlowSolve(10 * time.Millisecond); slow {
			t.Fatalf("triggered while arming at sample %d", i)
		}
	}
	// Inside baseline: 10ms against a 10ms p99 is not slow.
	if slow, p99 := r.SlowSolve(10 * time.Millisecond); slow || p99 != 10*time.Millisecond {
		t.Fatalf("slow=%v p99=%v, want false and 10ms", slow, p99)
	}
	// An outlier well past factor*p99 triggers.
	slow, p99 := r.SlowSolve(100 * time.Millisecond)
	if !slow || p99 != 10*time.Millisecond {
		t.Fatalf("outlier: slow=%v p99=%v, want true and 10ms", slow, p99)
	}
	// Check-then-record: the outlier is in the window now, but one
	// sample out of ten only moves the p99 to the outlier itself, so an
	// equal repeat no longer triggers (it cannot beat 1.5x itself).
	if slow, _ := r.SlowSolve(100 * time.Millisecond); slow {
		t.Fatalf("repeat of the outlier triggered against itself")
	}
}

func TestSlowSolveFloor(t *testing.T) {
	r := New(Config{MinSamples: 4, SlowFloor: 25 * time.Millisecond})
	for i := 0; i < 8; i++ {
		r.SlowSolve(10 * time.Microsecond)
	}
	// 60x the baseline but under the floor: cache-adjacent noise.
	if slow, _ := r.SlowSolve(600 * time.Microsecond); slow {
		t.Fatalf("sub-floor outlier triggered")
	}
}

func TestCaptureWritesBundle(t *testing.T) {
	dir := t.TempDir()
	clock := func() time.Time { return time.Unix(1754550000, 123) }
	r := New(Config{Dir: dir, Clock: clock})
	r.Ring().Record(obs.Record{Kind: obs.KindSpan, Name: "solve", Ts: 10, Dur: 20, ID: 1})
	b, path, err := r.Capture(Bundle{Trigger: "slow-solve", RequestID: "rid1", Stage: "ilp-exact"})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if b.Schema != Schema || b.CapturedAtNs != clock().UnixNano() {
		t.Fatalf("bundle not stamped: %+v", b)
	}
	if len(b.Spans) != 1 || b.Spans[0].Name != "solve" {
		t.Fatalf("ring spans not folded in: %+v", b.Spans)
	}
	want := filepath.Join(dir, "bundle-000000-slow-solve.json")
	if path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	got, err := ReadBundleFile(path)
	if err != nil {
		t.Fatalf("ReadBundleFile: %v", err)
	}
	if got.Trigger != "slow-solve" || got.RequestID != "rid1" || got.Stage != "ilp-exact" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestCaptureMaxBundles(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{Dir: dir, MaxBundles: 2, Clock: func() time.Time { return time.Unix(0, 0) }})
	paths := 0
	for i := 0; i < 5; i++ {
		_, p, err := r.Capture(Bundle{Trigger: "degraded-fallback", Spans: []SpanRecord{}})
		if err != nil {
			t.Fatalf("Capture %d: %v", i, err)
		}
		if p != "" {
			paths++
		}
	}
	if paths != 2 {
		t.Fatalf("wrote %d files, want 2", paths)
	}
	captured, dropped, _ := r.Stats()
	if captured != 5 || dropped != 3 {
		t.Fatalf("captured=%d dropped=%d, want 5 and 3", captured, dropped)
	}
}

func TestReadBundleFileRejectsSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"schema":"pesto/flight-bundle/v0","trigger":"x"}`), 0o644)
	if _, err := ReadBundleFile(path); err == nil {
		t.Fatalf("v0 schema accepted")
	}
}

// TestCaptureNoGoroutineLeak storms the trigger path and checks the
// recorder spawned nothing: capture is synchronous by design.
func TestCaptureNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	r := New(Config{Clock: func() time.Time { return time.Unix(0, 0) }})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.SlowSolve(time.Duration(i) * time.Millisecond)
				r.Capture(Bundle{Trigger: "slow-solve", Spans: []SpanRecord{}})
			}
		}()
	}
	wg.Wait()
	// Allow the test's own worker goroutines to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after trigger storm", before, runtime.NumGoroutine())
}

// TestBundleGolden pins the bundle JSON schema byte-for-byte.
func TestBundleGolden(t *testing.T) {
	clock := func() time.Time { return time.Unix(1754550000, 0) }
	r := New(Config{Dir: t.TempDir(), Clock: clock})
	b := Bundle{
		Trigger:       "slow-solve",
		Detail:        "solve 120ms vs p99 40ms",
		RequestID:     "deadbeef01234567.h0",
		TraceID:       "deadbeef01234567",
		Fingerprint:   "a1b2c3",
		Stage:         "ilp-exact",
		Seed:          42,
		SolveNs:       120_000_000,
		BaselineP99Ns: 40_000_000,
		Graph:         json.RawMessage(`{"nodes":[]}`),
		Options:       json.RawMessage(`{"seed":42}`),
		Response:      json.RawMessage(`{"stage":"ilp-exact"}`),
		Spans: []SpanRecord{
			{Kind: "span", Name: "solve", TsNs: 1000, DurNs: 2000, Span: 1, Attrs: map[string]string{"stage": "ilp-exact"}},
			{Kind: "sample", Name: "counter.lp.pivots", TsNs: 3000, Value: 17},
		},
		Counters:   map[string]int64{"lp.pivots": 17},
		Replayable: true,
	}
	_, path, err := r.Capture(b)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	golden := filepath.Join("testdata", "bundle_schema.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bundle schema drifted from golden; run with -update if intentional.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
