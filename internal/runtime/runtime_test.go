package runtime

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

const gpuMem = 16 << 30

func mustEdge(t *testing.T, g *graph.Graph, u, v graph.NodeID, bytes int64) {
	t.Helper()
	if err := g.AddEdge(u, v, bytes); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
}

func gpuNode(cost time.Duration) graph.Node {
	return graph.Node{Name: "op", Kind: graph.KindGPU, Cost: cost, Memory: 1 << 20, Layer: -1}
}

// orderFromPlacement derives a per-device topological order.
func orderFromPlacement(t *testing.T, g *graph.Graph, sys sim.System, dev []sim.DeviceID) [][]graph.NodeID {
	t.Helper()
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	order := make([][]graph.NodeID, len(sys.Devices))
	for _, id := range topo {
		order[dev[id]] = append(order[dev[id]], id)
	}
	return order
}

func TestExecuteChain(t *testing.T) {
	g := graph.New(3)
	a := g.AddNode(gpuNode(10 * time.Microsecond))
	b := g.AddNode(gpuNode(20 * time.Microsecond))
	c := g.AddNode(gpuNode(30 * time.Microsecond))
	mustEdge(t, g, a, b, 64)
	mustEdge(t, g, b, c, 64)
	sys := sim.NewSystem(1, gpuMem)
	dev := []sim.DeviceID{1, 1, 1}
	plan := sim.Plan{Device: dev, Order: orderFromPlacement(t, g, sys, dev)}
	res, err := Execute(g, sys, plan, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Makespan != 60*time.Microsecond {
		t.Fatalf("makespan = %v, want 60µs", res.Makespan)
	}
	if res.Start[b] != 10*time.Microsecond || res.Finish[c] != 60*time.Microsecond {
		t.Fatalf("timing wrong: %v %v", res.Start[b], res.Finish[c])
	}
}

func TestExecuteCrossDeviceMatchesSimulator(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode(10 * time.Microsecond))
	b := g.AddNode(gpuNode(10 * time.Microsecond))
	mustEdge(t, g, a, b, 1<<20)
	sys := sim.NewSystem(2, gpuMem)
	dev := []sim.DeviceID{1, 2}
	plan := sim.Plan{Device: dev, Order: orderFromPlacement(t, g, sys, dev)}
	rt, err := Execute(g, sys, plan, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sm, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if rt.Makespan != sm.Makespan {
		t.Fatalf("runtime %v != simulator %v", rt.Makespan, sm.Makespan)
	}
}

func TestExecuteLinkFCFS(t *testing.T) {
	// Two sequential producers on GPU1 send to GPU2; transfers must
	// serialize on the one-way link exactly as in the simulator.
	g := graph.New(4)
	p1 := g.AddNode(gpuNode(10 * time.Microsecond))
	p2 := g.AddNode(gpuNode(10 * time.Microsecond))
	c1 := g.AddNode(gpuNode(time.Microsecond))
	c2 := g.AddNode(gpuNode(time.Microsecond))
	mustEdge(t, g, p1, p2, 8) // force sequential producers
	mustEdge(t, g, p1, c1, 4<<20)
	mustEdge(t, g, p2, c2, 4<<20)
	sys := sim.NewSystem(2, gpuMem)
	dev := []sim.DeviceID{1, 1, 2, 2}
	plan := sim.Plan{Device: dev, Order: orderFromPlacement(t, g, sys, dev)}
	rt, err := Execute(g, sys, plan, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sm, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if rt.Makespan != sm.Makespan {
		t.Fatalf("runtime %v != simulator %v", rt.Makespan, sm.Makespan)
	}
}

func TestExecuteRequiresOrder(t *testing.T) {
	g := graph.New(1)
	g.AddNode(gpuNode(time.Microsecond))
	sys := sim.NewSystem(1, gpuMem)
	_, err := Execute(g, sys, sim.Plan{Device: []sim.DeviceID{1}}, Options{})
	if !errors.Is(err, sim.ErrBadPlacement) {
		t.Fatalf("err = %v, want ErrBadPlacement", err)
	}
}

func TestExecuteDetectsDeadlock(t *testing.T) {
	// Cross-device cyclic wait: a->b (1->2) ordered after d on device 2
	// where d depends on c on device 1 ordered after... simplest: same
	// device inverted order.
	g := graph.New(2)
	a := g.AddNode(gpuNode(time.Microsecond))
	b := g.AddNode(gpuNode(time.Microsecond))
	mustEdge(t, g, a, b, 8)
	sys := sim.NewSystem(1, gpuMem)
	plan := sim.Plan{Device: []sim.DeviceID{1, 1}, Order: [][]graph.NodeID{nil, {b, a}}}
	if _, err := Execute(g, sys, plan, Options{}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestExecuteCrossDeviceDeadlock(t *testing.T) {
	// a(dev1) -> b(dev2), c(dev2) -> d(dev1); order dev1: [d, a],
	// dev2: [b, c] creates a circular wait across devices.
	g := graph.New(4)
	a := g.AddNode(gpuNode(time.Microsecond))
	b := g.AddNode(gpuNode(time.Microsecond))
	c := g.AddNode(gpuNode(time.Microsecond))
	d := g.AddNode(gpuNode(time.Microsecond))
	mustEdge(t, g, a, b, 8)
	mustEdge(t, g, c, d, 8)
	sys := sim.NewSystem(2, gpuMem)
	plan := sim.Plan{
		Device: []sim.DeviceID{1, 2, 2, 1},
		Order:  [][]graph.NodeID{nil, {d, a}, {b, c}},
	}
	if _, err := Execute(g, sys, plan, Options{}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestNoiseReproducibleAndSmall(t *testing.T) {
	g := graph.New(1)
	id := g.AddNode(gpuNode(100 * time.Microsecond))
	sys := sim.NewSystem(1, gpuMem)
	plan := sim.Plan{Device: []sim.DeviceID{1}, Order: [][]graph.NodeID{nil, {id}}}
	opts := Options{NoiseSigma: 0.05, Seed: 9, Iteration: 3}
	r1, err := Execute(g, sys, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(g, sys, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed+iter differ: %v vs %v", r1.Makespan, r2.Makespan)
	}
	opts.Iteration = 4
	r3, err := Execute(g, sys, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Makespan == r1.Makespan {
		t.Fatal("different iterations produced identical noise")
	}
	// Noise is small: within 5 sigma of the nominal cost.
	if math.Abs(float64(r1.Makespan)-100e3) > 0.25*100e3 {
		t.Fatalf("noise too large: %v", r1.Makespan)
	}
}

// TestRuntimeAgreesWithSimulatorOnRandomDAGs is the §5.4 validation in
// miniature: identical plans through both engines must agree exactly
// when noise is off (both implement the same FCFS semantics; ties can
// reorder same-instant transfers, which does not change the makespan on
// these graphs).
func TestRuntimeAgreesWithSimulatorOnRandomDAGs(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(gpuNode(time.Duration(1+rng.Intn(300)) * time.Microsecond))
		}
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u >= v {
				continue
			}
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(rng.Intn(1<<20)))
		}
		dev := make([]sim.DeviceID, n)
		for i := range dev {
			dev[i] = sim.DeviceID(1 + rng.Intn(2))
		}
		order := make([][]graph.NodeID, len(sys.Devices))
		topo, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range topo {
			order[dev[id]] = append(order[dev[id]], id)
		}
		plan := sim.Plan{Device: dev, Order: order}
		rt, err := Execute(g, sys, plan, Options{})
		if err != nil {
			t.Fatalf("seed %d: Execute: %v", seed, err)
		}
		sm, err := sim.Run(g, sys, plan)
		if err != nil {
			t.Fatalf("seed %d: sim.Run: %v", seed, err)
		}
		diff := math.Abs(float64(rt.Makespan - sm.Makespan))
		if diff/float64(sm.Makespan) > 0.02 {
			t.Fatalf("seed %d: runtime %v vs simulator %v", seed, rt.Makespan, sm.Makespan)
		}
	}
}

func TestClockSleepOrdering(t *testing.T) {
	// Direct clock exercise: three workers sleeping different amounts
	// must observe strictly increasing wake times.
	c := NewClock(3)
	wakes := make([]time.Duration, 3)
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			d := time.Duration(i+1) * time.Millisecond
			if err := c.Sleep(d); err != nil {
				t.Errorf("Sleep: %v", err)
			}
			wakes[i] = c.Now()
			c.Exit()
			done <- i
		}()
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	sorted := append([]time.Duration(nil), wakes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range wakes {
		if wakes[i] != time.Duration(i+1)*time.Millisecond {
			t.Fatalf("worker %d woke at %v", i, wakes[i])
		}
	}
}

func TestClockDeadlockDetected(t *testing.T) {
	// Two workers each blocked on a future the other never completes.
	c := NewClock(2)
	f1, f2 := &future{}, &future{}
	errs := make(chan error, 2)
	go func() {
		_, err := f1.wait(c, 0)
		errs <- err
	}()
	go func() {
		_, err := f2.wait(c, 0)
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrDeadlock) {
				t.Fatalf("err = %v, want ErrDeadlock", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock not detected")
		}
	}
}

func TestFutureCompleteIdempotent(t *testing.T) {
	c := NewClock(1)
	f := &future{}
	f.complete(c, 10*time.Microsecond)
	f.complete(c, 99*time.Microsecond) // ignored
	at, err := f.wait(c, 0)
	if err != nil || at != 10*time.Microsecond {
		t.Fatalf("at=%v err=%v", at, err)
	}
	c.Exit()
}
