package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pesto/internal/fault"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

// traceOf renders an executed step as a canonical byte-comparable
// string, mirroring sim.Result.TraceString.
func traceOf(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %d\n", int64(r.Makespan))
	for i := range r.Start {
		fmt.Fprintf(&b, "op %d [%d %d]\n", i, int64(r.Start[i]), int64(r.Finish[i]))
	}
	return b.String()
}

func randomOrderedPlan(t *testing.T, seed int64, n int, sys sim.System) (*graph.Graph, sim.Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(gpuNode(time.Duration(1+rng.Intn(300)) * time.Microsecond))
	}
	for k := 0; k < 2*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u < v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(rng.Intn(1<<20)))
		}
	}
	dev := make([]sim.DeviceID, n)
	for i := range dev {
		dev[i] = sim.DeviceID(1 + rng.Intn(2))
	}
	return g, sim.Plan{Device: dev, Order: orderFromPlacement(t, g, sys, dev)}
}

func TestExecuteInjectedDeterministic(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	g, plan := randomOrderedPlan(t, 11, 30, sys)
	spec, err := fault.ParseSpec("seed=42;straggler:p=0.3,mult=8;link:*,scale=2")
	if err != nil {
		t.Fatal(err)
	}
	var traces []string
	for i := 0; i < 5; i++ {
		r, err := Execute(g, sys, plan, Options{Injector: fault.New(spec)})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		traces = append(traces, traceOf(r))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i] != traces[0] {
			t.Fatalf("round %d trace differs: the injected schedule depends on goroutine interleaving", i)
		}
	}
	clean, err := Execute(g, sys, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Execute(g, sys, plan, Options{Injector: fault.New(spec)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan < clean.Makespan {
		t.Fatalf("stragglers shortened the step: %v < %v", r.Makespan, clean.Makespan)
	}
}

func TestExecuteInjectedDeviceFailure(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	g, plan := randomOrderedPlan(t, 12, 20, sys)
	clean, err := Execute(g, sys, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Fail: []fault.DeviceFailure{{Dev: 2, At: clean.Makespan / 2}}}
	_, err = Execute(g, sys, plan, Options{Injector: fault.New(spec)})
	if !errors.Is(err, sim.ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	var dfe *sim.DeviceFailedError
	if !errors.As(err, &dfe) || dfe.Device != 2 {
		t.Fatalf("failure detail = %v", err)
	}
}

func TestExecuteInjectedOOM(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	g, plan := randomOrderedPlan(t, 13, 20, sys)
	clean, err := Execute(g, sys, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Mem: []fault.MemFault{{Dev: 1, Frac: 0, At: clean.Makespan / 2}}}
	_, err = Execute(g, sys, plan, Options{Injector: fault.New(spec)})
	if !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

// panicInjector panics in the chosen hook to prove worker recovery.
type panicInjector struct {
	inOp, inTransfer bool
}

func (p *panicInjector) OpDuration(_ graph.NodeID, _ sim.DeviceID, _, base time.Duration) time.Duration {
	if p.inOp {
		panic("injected op panic")
	}
	return base
}

func (p *panicInjector) TransferDuration(_, _ sim.DeviceID, _ int64, _, base time.Duration) time.Duration {
	if p.inTransfer {
		panic("injected transfer panic")
	}
	return base
}

func (p *panicInjector) DeviceCapacity(_ sim.DeviceID, _ time.Duration, base int64) int64 {
	return base
}

func (p *panicInjector) FailureTime(sim.DeviceID) (time.Duration, bool) { return 0, false }

func TestExecuteRecoversWorkerPanics(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	g := graph.New(2)
	a := g.AddNode(gpuNode(10 * time.Microsecond))
	b := g.AddNode(gpuNode(10 * time.Microsecond))
	mustEdge(t, g, a, b, 1<<20)
	dev := []sim.DeviceID{1, 2}
	plan := sim.Plan{Device: dev, Order: orderFromPlacement(t, g, sys, dev)}

	// Device-worker panic.
	_, err := Execute(g, sys, plan, Options{Injector: &panicInjector{inOp: true}})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("device panic: err = %v, want ErrWorkerPanic", err)
	}
	// Link-worker panic (the cross-device edge forces a transfer).
	_, err = Execute(g, sys, plan, Options{Injector: &panicInjector{inTransfer: true}})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("link panic: err = %v, want ErrWorkerPanic", err)
	}
	// Sanity: the same plan executes cleanly without the saboteur.
	if _, err := Execute(g, sys, plan, Options{Injector: &panicInjector{}}); err != nil {
		t.Fatalf("benign injector: %v", err)
	}
}

func TestExecuteInjectedAgreesWithSimulator(t *testing.T) {
	// Deterministic link degradation (no stragglers, no stalls) must
	// realize identically on both engines: the fault hooks are pure
	// functions of the same virtual quantities.
	sys := sim.NewSystem(2, gpuMem)
	g, plan := randomOrderedPlan(t, 14, 25, sys)
	spec, err := fault.ParseSpec("link:*,scale=3")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Execute(g, sys, plan, Options{Injector: fault.New(spec)})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sim.RunInjected(g, sys, plan, fault.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Makespan != sm.Makespan {
		t.Fatalf("runtime %v != simulator %v under identical faults", rt.Makespan, sm.Makespan)
	}
}
