// Package runtime is a concurrent mini-executor for placed DNN graphs:
// one goroutine per device, FCFS link queues, and control-dependency
// enforcement — a stand-in for the modified TensorFlow runtime of §4 of
// the Pesto paper (placement via set_assigned_device, scheduling via
// add_control_dependency). Time is virtual: a deadlock-detecting
// discrete clock advances only when every worker is blocked, so a
// multi-minute training step simulates in microseconds of wall time.
//
// The package exists to validate internal/sim the way §5.4 validates the
// paper's simulator against its implementation: the same plan is run
// through both engines and the per-step times are compared (the paper
// reports 0.1–11.3% disagreement; see internal/experiments).
package runtime

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDeadlock is returned when every worker is blocked on futures that
// can never complete — an invalid schedule.
var ErrDeadlock = errors.New("virtual clock deadlock: all workers blocked")

// Clock is a virtual clock shared by a fixed set of worker goroutines.
// Workers advance time cooperatively: when all registered workers are
// sleeping or blocked, the clock jumps to the earliest wake-up.
type Clock struct {
	mu       sync.Mutex
	now      time.Duration
	runnable int
	sleepers sleeperHeap
	blocked  int // workers waiting on futures
	dead     bool
	deadCh   chan struct{}
	seq      int
}

type sleeper struct {
	wake time.Duration
	ch   chan time.Duration
	seq  int
}

type sleeperHeap []sleeper

func (h sleeperHeap) Len() int { return len(h) }
func (h sleeperHeap) Less(i, j int) bool {
	if h[i].wake != h[j].wake {
		return h[i].wake < h[j].wake
	}
	return h[i].seq < h[j].seq
}
func (h sleeperHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sleeperHeap) Push(x interface{}) { *h = append(*h, x.(sleeper)) }
func (h *sleeperHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewClock creates a clock expecting the given number of worker
// goroutines.
func NewClock(workers int) *Clock {
	return &Clock{runnable: workers, deadCh: make(chan struct{})}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep blocks the calling worker for d of virtual time.
func (c *Clock) Sleep(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	ch := make(chan time.Duration, 1)
	c.seq++
	heap.Push(&c.sleepers, sleeper{wake: c.now + d, ch: ch, seq: c.seq})
	c.runnable--
	c.maybeAdvanceLocked()
	dead := c.deadCh
	c.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-dead:
		return ErrDeadlock
	}
}

// Exit permanently removes the calling worker from the clock's
// accounting (call when a device worker finishes its schedule).
func (c *Clock) Exit() {
	c.mu.Lock()
	c.runnable--
	c.maybeAdvanceLocked()
	c.mu.Unlock()
}

// maybeAdvanceLocked advances time when no worker is runnable. Declares
// deadlock when nothing can ever run again.
func (c *Clock) maybeAdvanceLocked() {
	if c.runnable > 0 || c.dead {
		return
	}
	if c.sleepers.Len() == 0 {
		if c.blocked > 0 {
			c.dead = true
			close(c.deadCh)
		}
		return
	}
	// Jump to the earliest wake time and release every sleeper due then.
	next := c.sleepers[0].wake
	c.now = next
	for c.sleepers.Len() > 0 && c.sleepers[0].wake == next {
		s := heap.Pop(&c.sleepers).(sleeper)
		c.runnable++
		s.ch <- c.now
	}
}

// future is a one-shot event completed at a virtual timestamp.
type future struct {
	mu    sync.Mutex
	done  bool
	at    time.Duration
	waits []chan time.Duration
}

// complete marks the future done at virtual time t and wakes waiters.
func (f *future) complete(c *Clock, t time.Duration) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.at = t
	waits := f.waits
	f.waits = nil
	f.mu.Unlock()
	c.mu.Lock()
	for range waits {
		c.blocked--
		c.runnable++
	}
	c.mu.Unlock()
	for _, ch := range waits {
		ch <- t
	}
}

// wait blocks the calling worker until the future completes and returns
// max(callerNow, completion time).
func (f *future) wait(c *Clock, now time.Duration) (time.Duration, error) {
	f.mu.Lock()
	if f.done {
		at := f.at
		f.mu.Unlock()
		if at > now {
			return at, nil
		}
		return now, nil
	}
	ch := make(chan time.Duration, 1)
	f.waits = append(f.waits, ch)
	f.mu.Unlock()

	c.mu.Lock()
	c.blocked++
	c.runnable--
	c.maybeAdvanceLocked()
	dead := c.deadCh
	c.mu.Unlock()

	select {
	case at := <-ch:
		if at > now {
			return at, nil
		}
		return now, nil
	case <-dead:
		return 0, fmt.Errorf("waiting for dependency: %w", ErrDeadlock)
	}
}
