package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ErrWorkerPanic is returned (wrapped) by Execute when a device or
// link worker goroutine panics: the panic is recovered inside the
// worker and surfaces as an ordinary error instead of crashing the
// process. Match with errors.Is.
var ErrWorkerPanic = errors.New("runtime worker panicked")

// Options configures an execution.
type Options struct {
	// NoiseSigma is the standard deviation of multiplicative Gaussian
	// noise applied to each operation's compute time, modelling the
	// small run-to-run variability the paper measures in Figure 4a.
	// Zero runs noise-free.
	NoiseSigma float64
	// Seed seeds the noise generator; executions with equal seeds and
	// iteration numbers reproduce exactly.
	Seed int64
	// Iteration distinguishes repeated training steps so noise differs
	// across steps of a profiling run.
	Iteration int
	// Injector, when non-nil, filters every compute time, transfer
	// time and memory capacity through the fault-injection hooks (see
	// sim.Injector and internal/fault) — the same hooks the simulator
	// honors, so both engines realize one fault schedule identically.
	Injector sim.Injector
}

// Result reports one executed training step.
type Result struct {
	Makespan      time.Duration
	Start, Finish []time.Duration
}

// transferReq is a tensor transfer handed to a link worker.
type transferReq struct {
	edge    graph.Edge
	enqueue time.Duration
}

// linkQueue is a clock-aware FIFO between device workers and a link
// worker. Pop blocks through the virtual clock so deadlock detection and
// time advancement keep working while the link idles.
type linkQueue struct {
	mu     sync.Mutex
	items  []transferReq
	waiter chan transferReq
}

func (q *linkQueue) push(c *Clock, r transferReq) {
	q.mu.Lock()
	if q.waiter != nil {
		w := q.waiter
		q.waiter = nil
		q.mu.Unlock()
		c.mu.Lock()
		c.blocked--
		c.runnable++
		c.mu.Unlock()
		w <- r
		return
	}
	q.items = append(q.items, r)
	q.mu.Unlock()
}

func (q *linkQueue) pop(c *Clock) (transferReq, error) {
	q.mu.Lock()
	if len(q.items) > 0 {
		r := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		return r, nil
	}
	ch := make(chan transferReq, 1)
	q.waiter = ch
	q.mu.Unlock()

	c.mu.Lock()
	c.blocked++
	c.runnable--
	c.maybeAdvanceLocked()
	dead := c.deadCh
	c.mu.Unlock()

	select {
	case r := <-ch:
		return r, nil
	case <-dead:
		return transferReq{}, fmt.Errorf("link idle: %w", ErrDeadlock)
	}
}

// Execute runs one training step of g under plan on sys. The plan must
// carry an explicit per-device Order (the control-dependency schedule
// Pesto installs); ready-queue plans belong in internal/sim.
func Execute(g *graph.Graph, sys sim.System, plan sim.Plan, opts Options) (Result, error) {
	if err := plan.Validate(g, sys); err != nil {
		return Result{}, err
	}
	if plan.Order == nil {
		return Result{}, fmt.Errorf("runtime requires an explicit schedule order: %w", sim.ErrBadPlacement)
	}
	if err := plan.CheckMemory(g, sys); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()

	// Futures: one per node (producer finished) is not enough — each
	// edge completes at a different time when transfers are involved,
	// so allocate one future per edge, plus links.
	edgeFut := make(map[[2]graph.NodeID]*future, g.NumEdges())
	for _, e := range g.Edges() {
		edgeFut[[2]graph.NodeID{e.From, e.To}] = &future{}
	}

	// Directional links that will carry at least one transfer, with
	// their expected transfer counts.
	type linkKey [2]sim.DeviceID
	expect := make(map[linkKey]int)
	for _, e := range g.Edges() {
		from, to := plan.Device[e.From], plan.Device[e.To]
		if from != to {
			expect[linkKey{from, to}]++
		}
	}
	queues := make(map[linkKey]*linkQueue, len(expect))
	for k := range expect {
		queues[k] = &linkQueue{}
	}

	numWorkers := len(sys.Devices) + len(queues)
	clock := NewClock(numWorkers)

	res := Result{
		Start:  make([]time.Duration, n),
		Finish: make([]time.Duration, n),
	}
	for i := range res.Start {
		res.Start[i] = -1
		res.Finish[i] = -1
	}

	// Capacity 2× workers: a worker that reports an error and then
	// panics during unwinding sends twice (body + recover defer); the
	// channel must never block a defer.
	errCh := make(chan error, 2*numWorkers)
	var wg sync.WaitGroup

	// Link workers.
	for k, q := range queues {
		k, q := k, q
		count := expect[k]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer clock.Exit()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("link %d->%d worker: %v: %w", k[0], k[1], r, ErrWorkerPanic)
				}
			}()
			for i := 0; i < count; i++ {
				req, err := q.pop(clock)
				if err != nil {
					errCh <- err
					return
				}
				dur := sys.TransferTime(k[0], k[1], req.edge.Bytes)
				if opts.Injector != nil {
					dur = opts.Injector.TransferDuration(k[0], k[1], req.edge.Bytes, clock.Now(), dur)
					if dur < 0 {
						dur = 0
					}
				}
				if err := clock.Sleep(dur); err != nil {
					errCh <- err
					return
				}
				edgeFut[[2]graph.NodeID{req.edge.From, req.edge.To}].complete(clock, clock.Now())
			}
		}()
	}

	// Device workers.
	for d := range sys.Devices {
		devID := sim.DeviceID(d)
		var order []graph.NodeID
		if d < len(plan.Order) {
			order = plan.Order[d]
		}
		dev := sys.Devices[d]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer clock.Exit()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("device %d worker: %v: %w", devID, r, ErrWorkerPanic)
				}
			}()
			now := time.Duration(0)
			var memStarted int64 // cumulative footprint of started ops
			for _, id := range order {
				// Wait for every input edge's data.
				for _, e := range g.Pred(id) {
					t, err := edgeFut[[2]graph.NodeID{e.From, e.To}].wait(clock, now)
					if err != nil {
						errCh <- fmt.Errorf("op %d: %w", id, err)
						return
					}
					now = t
				}
				nd, _ := g.Node(id)
				dur := opDuration(nd, dev.Speed, opts)
				if inj := opts.Injector; inj != nil {
					dur = inj.OpDuration(id, devID, now, dur)
					if dur < 0 {
						dur = 0
					}
					if ft, ok := inj.FailureTime(devID); ok && now+dur >= ft {
						errCh <- fmt.Errorf("op %d: %w", id, &sim.DeviceFailedError{Device: devID, At: ft})
						return
					}
					if dev.Memory > 0 {
						capNow := inj.DeviceCapacity(devID, now, dev.Memory)
						if memStarted+nd.Memory > capNow {
							errCh <- fmt.Errorf("op %d: device %s needs %d of %d effective bytes at %v: %w",
								id, dev.Name, memStarted+nd.Memory, capNow, now, sim.ErrOOM)
							return
						}
					}
					memStarted += nd.Memory
				}
				res.Start[id] = now
				if err := clock.Sleep(dur); err != nil {
					errCh <- fmt.Errorf("op %d: %w", id, err)
					return
				}
				now = clock.Now()
				res.Finish[id] = now
				// Publish outputs.
				for _, e := range g.Succ(id) {
					target := plan.Device[e.To]
					if target == devID {
						edgeFut[[2]graph.NodeID{e.From, e.To}].complete(clock, now)
						continue
					}
					queues[linkKey{devID, target}].push(clock, transferReq{edge: e, enqueue: now})
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	// One failing worker strands its peers on futures that never
	// complete, so the root cause arrives alongside secondary
	// ErrDeadlock reports from the stranded workers. Prefer the root
	// cause: any non-deadlock error outranks a deadlock.
	var firstErr error
	for err := range errCh {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, ErrDeadlock) && !errors.Is(err, ErrDeadlock)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	for i := 0; i < n; i++ {
		if res.Finish[i] < 0 {
			return Result{}, fmt.Errorf("op %d never executed: %w", i, ErrDeadlock)
		}
		if res.Finish[i] > res.Makespan {
			res.Makespan = res.Finish[i]
		}
	}
	return res, nil
}

// opDuration computes an operation's (possibly noisy) execution time.
func opDuration(nd graph.Node, speed float64, opts Options) time.Duration {
	if speed <= 0 {
		speed = 1
	}
	d := float64(nd.Cost) / speed
	if opts.NoiseSigma > 0 {
		const mix1, mix2 = 0x1E3779B97F4A7C15, 0x2545F4914F6CDD1D
		rng := rand.New(rand.NewSource(opts.Seed ^ (int64(nd.ID)+1)*mix1 ^ int64(opts.Iteration)*mix2))
		d *= 1 + opts.NoiseSigma*rng.NormFloat64()
		if d < 0 {
			d = 0
		}
	}
	return time.Duration(d)
}
