package runtime_test

// Differential oracle between the two execution engines on generated
// graphs: with an explicit per-device order and zero noise, the
// goroutine-per-device runtime and the discrete-event simulator must
// realize the same step within tolerance, both must verify, and neither
// may undercut the LP lower bound.

import (
	"sort"
	"testing"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/runtime"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

// orderedPlan builds a deterministic two-GPU placement with an explicit
// per-device topological order (Kahn's algorithm, smallest NodeID
// first).
func orderedPlan(g *graph.Graph, sys sim.System) sim.Plan {
	plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes())}
	grp := map[string]sim.DeviceID{}
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		d := sim.DeviceID(1 + int(nd.ID)%2)
		if nd.Coloc != "" {
			if prev, ok := grp[nd.Coloc]; ok {
				d = prev
			} else {
				grp[nd.Coloc] = d
			}
		}
		plan.Device[nd.ID] = d
	}

	indeg := make([]int, g.NumNodes())
	for _, e := range g.Edges() {
		indeg[e.To]++
	}
	var ready []graph.NodeID
	for i := range indeg {
		if indeg[i] == 0 {
			ready = append(ready, graph.NodeID(i))
		}
	}
	plan.Order = make([][]graph.NodeID, len(sys.Devices))
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
		id := ready[0]
		ready = ready[1:]
		d := plan.Device[id]
		plan.Order[d] = append(plan.Order[d], id)
		for _, e := range g.Succ(id) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return plan
}

func TestRuntimeAgreesWithSimulatorOnGeneratedGraphs(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g, err := gen.Generate(gen.RandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(2, 16<<30)
		plan := orderedPlan(g, sys)

		sres, err := verify.Check(g, sys, plan)
		if err != nil {
			t.Fatalf("seed %d: ordered plan does not verify: %v", seed, err)
		}
		rres, err := runtime.Execute(g, sys, plan, runtime.Options{})
		if err != nil {
			t.Fatalf("seed %d: runtime: %v", seed, err)
		}
		diff := float64(rres.Makespan - sres.Makespan)
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(sres.Makespan) > 0.02 {
			t.Fatalf("seed %d: runtime %v vs simulator %v beyond 2%%", seed, rres.Makespan, sres.Makespan)
		}

		lb, err := verify.LowerBound(g, sys)
		if err != nil {
			t.Fatal(err)
		}
		if rres.Makespan < lb {
			t.Fatalf("seed %d: runtime makespan %v undercuts bound %v", seed, rres.Makespan, lb)
		}
	}
}
