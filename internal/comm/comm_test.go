package comm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestModelTime(t *testing.T) {
	m := Model{Type: GPUToGPU, Beta0: 10 * time.Microsecond, Beta1: 1.0} // 1 ns per byte
	cases := []struct {
		bytes int64
		want  time.Duration
	}{
		{0, 10 * time.Microsecond},
		{1000, 11 * time.Microsecond},
		{-5, 10 * time.Microsecond},
	}
	for _, c := range cases {
		if got := m.Time(c.bytes); got != c.want {
			t.Errorf("Time(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestModelTimeNeverNegative(t *testing.T) {
	m := Model{Beta0: -time.Second, Beta1: 0}
	if got := m.Time(10); got != 0 {
		t.Errorf("Time = %v, want 0", got)
	}
}

func TestBandwidth(t *testing.T) {
	m := Model{Beta1: 1e9 / 10e9} // 10 GB/s
	if bw := m.Bandwidth(); math.Abs(bw-10e9) > 1 {
		t.Errorf("Bandwidth = %g, want 10e9", bw)
	}
	if bw := (Model{}).Bandwidth(); !math.IsInf(bw, 1) {
		t.Errorf("zero Beta1 bandwidth = %g, want +Inf", bw)
	}
}

func TestFitRecoversExactLine(t *testing.T) {
	// Exact data on T = 5µs + 2ns/B should be recovered with R² = 1.
	var samples []Sample
	for _, b := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		samples = append(samples, Sample{Bytes: b, Time: 5*time.Microsecond + time.Duration(2*b)*time.Nanosecond})
	}
	m, err := Fit(GPUToGPU, samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(m.Beta1-2) > 1e-6 {
		t.Errorf("Beta1 = %g, want 2", m.Beta1)
	}
	if d := m.Beta0 - 5*time.Microsecond; d < -time.Nanosecond || d > time.Nanosecond {
		t.Errorf("Beta0 = %v, want 5µs", m.Beta0)
	}
	if m.R2 < 0.999999 {
		t.Errorf("R2 = %g, want ~1", m.R2)
	}
}

func TestFitNoisyDataHighR2(t *testing.T) {
	// The paper reports R² of 0.92–0.99 for real profiles; with 5%
	// multiplicative noise, the fit should still land in that regime.
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 200; i++ {
		b := int64(1<<12 + rng.Intn(1<<24))
		base := 10e3 + 0.5*float64(b) // ns
		noisy := base * (1 + 0.05*rng.NormFloat64())
		samples = append(samples, Sample{Bytes: b, Time: time.Duration(noisy)})
	}
	m, err := Fit(CPUToGPU, samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.R2 < 0.92 {
		t.Errorf("R2 = %g, want >= 0.92", m.R2)
	}
	if math.Abs(m.Beta1-0.5) > 0.05 {
		t.Errorf("Beta1 = %g, want ~0.5", m.Beta1)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(GPUToGPU, nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("nil samples: %v, want ErrTooFewSamples", err)
	}
	same := []Sample{{Bytes: 10, Time: time.Millisecond}, {Bytes: 10, Time: 2 * time.Millisecond}}
	if _, err := Fit(GPUToGPU, same); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("degenerate samples: %v, want ErrTooFewSamples", err)
	}
}

func TestCostModelDefaultsOrdering(t *testing.T) {
	cm := NewCostModel()
	const mb = 1 << 20
	nv := cm.Time(GPUToGPU, 64*mb)
	pcie := cm.Time(CPUToGPU, 64*mb)
	if nv >= pcie {
		t.Errorf("NVLink (%v) should be faster than PCIe (%v) for large transfers", nv, pcie)
	}
	if nv <= 0 || pcie <= 0 {
		t.Errorf("transfer times must be positive: nv=%v pcie=%v", nv, pcie)
	}
}

func TestCostModelScaled(t *testing.T) {
	cm := NewCostModel()
	fast := cm.Scaled(10)
	slow := cm.Scaled(0.1)
	const b = 1 << 22
	base := cm.Time(GPUToGPU, b)
	if f := fast.Time(GPUToGPU, b); f >= base {
		t.Errorf("10x scale: %v should be < %v", f, base)
	}
	if s := slow.Time(GPUToGPU, b); s <= base {
		t.Errorf("0.1x scale: %v should be > %v", s, base)
	}
	// Non-positive factors fall back to identity.
	if id := cm.Scaled(0).Time(GPUToGPU, b); id != base {
		t.Errorf("Scaled(0) changed time: %v vs %v", id, base)
	}
}

func TestCostModelFromOverrides(t *testing.T) {
	custom := Model{Type: GPUToGPU, Beta0: time.Millisecond, Beta1: 0, R2: 1}
	cm := NewCostModelFrom(custom)
	if got := cm.Time(GPUToGPU, 123); got != time.Millisecond {
		t.Errorf("override not applied: %v", got)
	}
	// Other link types keep defaults.
	if got := cm.Time(CPUToGPU, 0); got != 15*time.Microsecond {
		t.Errorf("CPU→GPU default = %v, want 15µs", got)
	}
}

func TestLinkTypeString(t *testing.T) {
	for lt, want := range map[LinkType]string{
		CPUToGPU: "CPU→GPU", GPUToCPU: "GPU→CPU", GPUToGPU: "GPU→GPU",
	} {
		if lt.String() != want {
			t.Errorf("%d.String() = %q, want %q", lt, lt.String(), want)
		}
	}
}

func TestPropertyFitInterpolatesMonotonically(t *testing.T) {
	// For any positive slope/intercept line, the fitted model's
	// predictions must be monotone in size.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b0 := time.Duration(rng.Intn(100000)) * time.Nanosecond
		b1 := rng.Float64() * 3
		var samples []Sample
		for i := 0; i < 20; i++ {
			b := int64((i + 1) * 4096)
			samples = append(samples, Sample{Bytes: b, Time: b0 + time.Duration(b1*float64(b))})
		}
		m, err := Fit(GPUToGPU, samples)
		if err != nil {
			return false
		}
		prev := time.Duration(-1)
		for _, b := range []int64{0, 1 << 10, 1 << 15, 1 << 20, 1 << 25} {
			cur := m.Time(b)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
