// Package comm models inter-device communication for Pesto. Following
// §3.1 of the paper, the transfer time of a tensor over a link is a
// linear function of its size, T = β0 + β1·bytes, with the coefficients
// fitted per link type (CPU→GPU, GPU→CPU, GPU→GPU) by ordinary least
// squares over profiled transfer samples.
//
// The package also carries the default link profiles used throughout the
// repository; their magnitudes mimic the paper's testbed (PCIe 3.0 x16
// for CPU↔GPU, NVLink 2.0 for GPU↔GPU) so that communication can be
// "several orders of magnitude higher than the compute time of some
// operations" (§3), which is what makes Pesto's congestion constraints
// matter.
package comm

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// LinkType classifies a communication link by the device kinds at its
// endpoints, matching the paper's communication classification.
type LinkType int

const (
	// CPUToGPU is host-to-device traffic (PCIe in the paper's testbed).
	CPUToGPU LinkType = iota + 1
	// GPUToCPU is device-to-host traffic.
	GPUToCPU
	// GPUToGPU is peer-to-peer traffic (NVLink in the paper's testbed).
	GPUToGPU
)

// String implements fmt.Stringer.
func (t LinkType) String() string {
	switch t {
	case CPUToGPU:
		return "CPU→GPU"
	case GPUToCPU:
		return "GPU→CPU"
	case GPUToGPU:
		return "GPU→GPU"
	default:
		return fmt.Sprintf("LinkType(%d)", int(t))
	}
}

// Model is the fitted linear communication-time model for one link type:
// Time(bytes) = Beta0 + Beta1·bytes.
type Model struct {
	Type LinkType
	// Beta0 is the fixed per-transfer latency.
	Beta0 time.Duration
	// Beta1 is the per-byte transfer time in nanoseconds per byte.
	Beta1 float64
	// R2 is the coefficient of determination of the fit that produced
	// the model, or 1 for analytically constructed models.
	R2 float64
}

// Time evaluates the model for a transfer of the given size. Negative
// sizes are treated as zero; predictions are floored at zero.
func (m Model) Time(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	ns := float64(m.Beta0.Nanoseconds()) + m.Beta1*float64(bytes)
	if ns < 0 {
		ns = 0
	}
	return time.Duration(math.Round(ns)) * time.Nanosecond
}

// Bandwidth reports the asymptotic bandwidth of the model in bytes per
// second (1/Beta1, scaled), or +Inf when Beta1 is zero.
func (m Model) Bandwidth() float64 {
	if m.Beta1 <= 0 {
		return math.Inf(1)
	}
	return 1e9 / m.Beta1
}

// Sample is one profiled transfer: a payload size and the observed
// transfer time.
type Sample struct {
	Bytes int64
	Time  time.Duration
}

// Errors reported by Fit.
var (
	ErrTooFewSamples = errors.New("need at least two samples with distinct sizes")
)

// Fit performs ordinary least squares of time on bytes and returns the
// fitted Model for the link type, including the R² of the fit. This is
// the regression step of §3.1 (the paper reports R² of 0.92–0.99).
func Fit(t LinkType, samples []Sample) (Model, error) {
	if len(samples) < 2 {
		return Model{}, fmt.Errorf("fit %v: %w", t, ErrTooFewSamples)
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		x := float64(s.Bytes)
		y := float64(s.Time.Nanoseconds())
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Model{}, fmt.Errorf("fit %v: %w", t, ErrTooFewSamples)
	}
	beta1 := (n*sxy - sx*sy) / den
	beta0 := (sy - beta1*sx) / n

	// R² = 1 - SS_res / SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for _, s := range samples {
		y := float64(s.Time.Nanoseconds())
		pred := beta0 + beta1*float64(s.Bytes)
		ssRes += (y - pred) * (y - pred)
		ssTot += (y - meanY) * (y - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Model{
		Type:  t,
		Beta0: time.Duration(math.Round(beta0)),
		Beta1: beta1,
		R2:    r2,
	}, nil
}

// Default link profiles. Magnitudes follow published microbenchmarks of
// the paper's testbed class (Li et al., "Evaluating Modern GPU
// Interconnect", cited by the paper as [42]): NVLink 2.0 ≈ 22 GB/s
// effective single direction with ~10 µs launch latency; PCIe 3.0 x16
// ≈ 10 GB/s with ~15 µs latency.
func defaultModels() map[LinkType]Model {
	return map[LinkType]Model{
		GPUToGPU: {Type: GPUToGPU, Beta0: 10 * time.Microsecond, Beta1: 1e9 / 22e9, R2: 1},
		CPUToGPU: {Type: CPUToGPU, Beta0: 15 * time.Microsecond, Beta1: 1e9 / 10e9, R2: 1},
		GPUToCPU: {Type: GPUToCPU, Beta0: 15 * time.Microsecond, Beta1: 1e9 / 10e9, R2: 1},
	}
}

// CostModel predicts transfer times for every link type. It is the
// object Pesto's ILP and the simulator share so that planned and
// simulated communication times agree.
type CostModel struct {
	models map[LinkType]Model
	// scale divides predicted times; >1 models a faster interconnect
	// (used by the Figure 8b sweep).
	scale float64
}

// NewCostModel returns a cost model with the default NVLink/PCIe
// profiles.
func NewCostModel() *CostModel {
	return &CostModel{models: defaultModels(), scale: 1}
}

// NewCostModelFrom builds a cost model from explicitly fitted models;
// link types not present fall back to the defaults.
func NewCostModelFrom(models ...Model) *CostModel {
	cm := NewCostModel()
	for _, m := range models {
		cm.models[m.Type] = m
	}
	return cm
}

// Scaled returns a copy of the cost model with all transfer times divided
// by factor (factor > 1 means a faster interconnect). Factor must be
// positive.
func (cm *CostModel) Scaled(factor float64) *CostModel {
	if factor <= 0 {
		factor = 1
	}
	out := &CostModel{models: make(map[LinkType]Model, len(cm.models)), scale: cm.scale * factor}
	for k, v := range cm.models {
		out.models[k] = v
	}
	return out
}

// Model returns the fitted model for a link type.
func (cm *CostModel) Model(t LinkType) Model {
	return cm.models[t]
}

// Time predicts the transfer time of bytes over a link of type t,
// honoring the interconnect scale factor.
func (cm *CostModel) Time(t LinkType, bytes int64) time.Duration {
	d := cm.models[t].Time(bytes)
	if cm.scale != 1 {
		d = time.Duration(float64(d) / cm.scale)
	}
	return d
}
