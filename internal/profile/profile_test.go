package profile

import (
	"math"
	"testing"
	"time"

	"pesto/internal/comm"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

func layeredGraph(t *testing.T, layers, width int) *graph.Graph {
	t.Helper()
	g := graph.New(layers * width)
	var prev []graph.NodeID
	for l := 0; l < layers; l++ {
		var cur []graph.NodeID
		for w := 0; w < width; w++ {
			cost := time.Duration(10+l*5+w) * time.Microsecond
			cur = append(cur, g.AddNode(graph.Node{
				Name: "op", Kind: graph.KindGPU, Cost: cost, Layer: l,
			}))
		}
		for _, p := range prev {
			for _, c := range cur {
				if err := g.AddEdge(p, c, 1024); err != nil {
					t.Fatalf("AddEdge: %v", err)
				}
			}
		}
		prev = cur
	}
	return g
}

func TestComputeMeansCloseToTruth(t *testing.T) {
	g := layeredGraph(t, 4, 3)
	prof, err := Compute(g, Options{Iterations: 50, NoiseSigma: 0.03, Seed: 1})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for _, nd := range g.Nodes() {
		mean := float64(prof.Mean[nd.ID])
		truth := float64(nd.Cost)
		if math.Abs(mean-truth)/truth > 0.05 {
			t.Errorf("node %d: mean %v vs truth %v", nd.ID, prof.Mean[nd.ID], nd.Cost)
		}
	}
}

func TestComputeNormStddevSmall(t *testing.T) {
	// Figure 4a regime: normalized stddev should be small (< ~0.15)
	// for essentially all ops at sigma=0.03.
	g := layeredGraph(t, 5, 4)
	prof, err := Compute(g, Options{Iterations: 100, NoiseSigma: 0.03, Seed: 2})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	cdf := prof.StddevCDF(0)
	if len(cdf) != g.NumNodes() {
		t.Fatalf("CDF covers %d of %d ops", len(cdf), g.NumNodes())
	}
	if p95 := Quantile(cdf, 0.95); p95 > 0.15 {
		t.Errorf("95th percentile normalized stddev = %g, want < 0.15", p95)
	}
	// CDF must be sorted.
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("CDF not sorted")
		}
	}
}

func TestStddevCDFFiltersSmallOps(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Microsecond})
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Millisecond})
	prof, err := Compute(g, Options{Iterations: 10, Seed: 3})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if got := len(prof.StddevCDF(100 * time.Microsecond)); got != 1 {
		t.Fatalf("filtered CDF has %d entries, want 1", got)
	}
}

func TestApplyTo(t *testing.T) {
	g := layeredGraph(t, 2, 2)
	prof, err := Compute(g, Options{Iterations: 20, Seed: 4})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if err := prof.ApplyTo(g); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	for _, nd := range g.Nodes() {
		if nd.Cost != prof.Mean[nd.ID] {
			t.Errorf("node %d cost %v != mean %v", nd.ID, nd.Cost, prof.Mean[nd.ID])
		}
	}
	other := graph.New(1)
	other.AddNode(graph.Node{})
	if err := prof.ApplyTo(other); err == nil {
		t.Error("ApplyTo on mismatched graph should fail")
	}
}

func TestCommunicationFitQuality(t *testing.T) {
	sys := sim.NewSystem(2, 16<<30)
	for _, lt := range []comm.LinkType{comm.CPUToGPU, comm.GPUToCPU, comm.GPUToGPU} {
		prof, err := Communication(sys, lt, CommOptions{Seed: 5})
		if err != nil {
			t.Fatalf("Communication(%v): %v", lt, err)
		}
		if prof.Model.R2 < 0.92 {
			t.Errorf("%v: R² = %g, want >= 0.92 (Figure 4b regime)", lt, prof.Model.R2)
		}
		// The fitted slope should approximate the true model's.
		truth := sys.Comm.Model(lt)
		if math.Abs(prof.Model.Beta1-truth.Beta1)/truth.Beta1 > 0.1 {
			t.Errorf("%v: Beta1 %g vs truth %g", lt, prof.Model.Beta1, truth.Beta1)
		}
	}
}

func TestCommunicationNeedsDevices(t *testing.T) {
	oneGPU := sim.NewSystem(1, 16<<30)
	if _, err := Communication(oneGPU, comm.GPUToGPU, CommOptions{}); err == nil {
		t.Error("GPU→GPU profiling with one GPU should fail")
	}
	noGPU := sim.NewSystem(0, 0)
	if _, err := Communication(noGPU, comm.CPUToGPU, CommOptions{}); err == nil {
		t.Error("CPU→GPU profiling without GPUs should fail")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {1, 5}, {0.5, 3}, {-1, 1}, {2, 5}}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
}

func TestComputeRejectsCyclicGraph(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: 1})
	b := g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: 1})
	_ = g.AddEdge(a, b, 1)
	_ = g.AddEdge(b, a, 1)
	if _, err := Compute(g, Options{Iterations: 1}); err == nil {
		t.Fatal("expected error for cyclic graph")
	}
}
