// Package profile estimates operation compute times and link
// communication models, implementing §3.1 of the Pesto paper. Compute
// times are measured by running a number of training iterations of the
// model on the runtime executor and averaging per-operation durations
// (the paper runs 100 iterations and relies on the per-op variability
// being small — its Figure 4a); communication is profiled by timing
// transfers of varying sizes and fitting the linear model of Figure 4b
// with ordinary least squares.
package profile

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pesto/internal/comm"
	"pesto/internal/graph"
	"pesto/internal/runtime"
	"pesto/internal/sim"
)

// Options configures compute-time profiling.
type Options struct {
	// Iterations is the number of training steps to run; zero means
	// 100, the paper's choice (≤0.1% of a typical training budget).
	Iterations int
	// NoiseSigma models run-to-run variability of op compute times;
	// zero means 0.03, matching the small normalized stddevs of
	// Figure 4a.
	NoiseSigma float64
	// Seed makes profiling reproducible.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 0.03
	}
	return o
}

// ComputeProfile holds per-operation timing statistics gathered over
// profiling iterations.
type ComputeProfile struct {
	// Mean is the average measured duration per node, the p_i estimate
	// fed to the Pesto ILP.
	Mean []time.Duration
	// NormStddev is stddev/mean per node (0 for zero-cost ops).
	NormStddev []float64
	// Iterations is the number of steps measured.
	Iterations int
}

// Compute profiles g by executing opts.Iterations training steps on a
// single-GPU system (memory limits are lifted during profiling, as the
// paper profiles models wherever they fit) and measuring every
// operation's duration.
func Compute(g *graph.Graph, opts Options) (*ComputeProfile, error) {
	opts = opts.withDefaults()
	sys := sim.NewSystem(1, 0) // unlimited GPU memory for profiling
	n := g.NumNodes()
	dev := make([]sim.DeviceID, n)
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU {
			dev[nd.ID] = 1
		}
	}
	topo, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	order := make([][]graph.NodeID, len(sys.Devices))
	for _, id := range topo {
		order[dev[id]] = append(order[dev[id]], id)
	}
	plan := sim.Plan{Device: dev, Order: order}

	sum := make([]float64, n)
	sumSq := make([]float64, n)
	for it := 0; it < opts.Iterations; it++ {
		res, err := runtime.Execute(g, sys, plan, runtime.Options{
			NoiseSigma: opts.NoiseSigma,
			Seed:       opts.Seed,
			Iteration:  it,
		})
		if err != nil {
			return nil, fmt.Errorf("profile iteration %d: %w", it, err)
		}
		for i := 0; i < n; i++ {
			d := float64(res.Finish[i] - res.Start[i])
			sum[i] += d
			sumSq[i] += d * d
		}
	}
	prof := &ComputeProfile{
		Mean:       make([]time.Duration, n),
		NormStddev: make([]float64, n),
		Iterations: opts.Iterations,
	}
	k := float64(opts.Iterations)
	for i := 0; i < n; i++ {
		mean := sum[i] / k
		prof.Mean[i] = time.Duration(math.Round(mean))
		if mean > 0 {
			variance := sumSq[i]/k - mean*mean
			if variance < 0 {
				variance = 0
			}
			prof.NormStddev[i] = math.Sqrt(variance) / mean
		}
	}
	return prof, nil
}

// ApplyTo overwrites g's per-node costs with the profiled means — the
// step that turns a structural graph into the ILP's input.
func (p *ComputeProfile) ApplyTo(g *graph.Graph) error {
	if len(p.Mean) != g.NumNodes() {
		return fmt.Errorf("profile covers %d of %d nodes", len(p.Mean), g.NumNodes())
	}
	for i, m := range p.Mean {
		if err := g.SetCost(graph.NodeID(i), m); err != nil {
			return err
		}
	}
	return nil
}

// StddevCDF returns the sorted normalized standard deviations of all
// operations whose mean cost is at least minCost — the Figure 4a CDF
// (the paper filters out very small operations "for ease of
// illustration").
func (p *ComputeProfile) StddevCDF(minCost time.Duration) []float64 {
	var vals []float64
	for i, m := range p.Mean {
		if m >= minCost {
			vals = append(vals, p.NormStddev[i])
		}
	}
	sort.Float64s(vals)
	return vals
}

// Quantile reads the q-th quantile (0..1) from a sorted CDF sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// CommOptions configures communication profiling.
type CommOptions struct {
	// Sizes are the transfer sizes to probe; nil uses 1 KiB … 64 MiB
	// in powers of four.
	Sizes []int64
	// SamplesPerSize is the number of timed transfers per size; zero
	// means 5.
	SamplesPerSize int
	// NoiseSigma perturbs measured times multiplicatively; zero means
	// 0.05 (yielding the R² ≈ 0.92–0.99 regime the paper reports).
	NoiseSigma float64
	// Seed makes profiling reproducible.
	Seed int64
}

func (o CommOptions) withDefaults() CommOptions {
	if len(o.Sizes) == 0 {
		for b := int64(1 << 10); b <= 64<<20; b <<= 2 {
			o.Sizes = append(o.Sizes, b)
		}
	}
	if o.SamplesPerSize <= 0 {
		o.SamplesPerSize = 5
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 0.05
	}
	return o
}

// CommProfile holds the measured samples and the fitted linear model for
// one link type.
type CommProfile struct {
	Type    comm.LinkType
	Samples []comm.Sample
	Model   comm.Model
}

// Communication profiles a link of the given type on sys by timing
// transfers of varying sizes and fitting the linear model. The probe
// graph is independent of any DNN, matching §3.1's observation that the
// communication model "can thus be easily obtained via offline profiling
// ... from any model".
func Communication(sys sim.System, lt comm.LinkType, opts CommOptions) (*CommProfile, error) {
	opts = opts.withDefaults()
	from, to, err := probeDevices(sys, lt)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	prof := &CommProfile{Type: lt}
	for _, size := range opts.Sizes {
		for s := 0; s < opts.SamplesPerSize; s++ {
			true0 := sys.TransferTime(from, to, size)
			measured := float64(true0) * (1 + opts.NoiseSigma*rng.NormFloat64())
			if measured < 0 {
				measured = 0
			}
			prof.Samples = append(prof.Samples, comm.Sample{
				Bytes: size,
				Time:  time.Duration(measured),
			})
		}
	}
	m, err := comm.Fit(lt, prof.Samples)
	if err != nil {
		return nil, fmt.Errorf("profile %v: %w", lt, err)
	}
	prof.Model = m
	return prof, nil
}

// probeDevices picks a device pair realizing the requested link type.
func probeDevices(sys sim.System, lt comm.LinkType) (from, to sim.DeviceID, err error) {
	gpus := sys.GPUs()
	switch lt {
	case comm.CPUToGPU:
		if len(gpus) < 1 {
			return 0, 0, fmt.Errorf("profile %v: no GPU in system", lt)
		}
		return sys.CPUID(), gpus[0], nil
	case comm.GPUToCPU:
		if len(gpus) < 1 {
			return 0, 0, fmt.Errorf("profile %v: no GPU in system", lt)
		}
		return gpus[0], sys.CPUID(), nil
	case comm.GPUToGPU:
		if len(gpus) < 2 {
			return 0, 0, fmt.Errorf("profile %v: need two GPUs", lt)
		}
		return gpus[0], gpus[1], nil
	default:
		return 0, 0, fmt.Errorf("unknown link type %v", lt)
	}
}
