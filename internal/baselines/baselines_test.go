package baselines

import (
	"errors"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/models"
	"pesto/internal/sim"
)

const gpuMem = 16 << 30

func smallRNNLM(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := models.RNNLM(models.RNNLMConfig{Layers: 2, Hidden: 128, Batch: 8, SeqLen: 4, Vocab: 500})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallNASNet(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := models.NASNet(models.NASNetConfig{Cells: 2, Filters: 16, Batch: 2, Spatial: 4})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExpertLayeredIsContiguousAndBalanced(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(2, gpuMem)
	plan, err := Expert(g, sys, ExpertLayered)
	if err != nil {
		t.Fatalf("Expert: %v", err)
	}
	if err := plan.Validate(g, sys); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	// Layer → device must be monotone: once we switch to GPU2 we never
	// go back (contiguous blocks).
	devByLayer := map[int]sim.DeviceID{}
	maxLayer := 0
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		if d, ok := devByLayer[nd.Layer]; ok && d != plan.Device[nd.ID] {
			t.Fatalf("layer %d split across devices", nd.Layer)
		}
		devByLayer[nd.Layer] = plan.Device[nd.ID]
		if nd.Layer > maxLayer {
			maxLayer = nd.Layer
		}
	}
	switched := false
	for l := 1; l <= maxLayer; l++ {
		d, ok := devByLayer[l]
		if !ok {
			continue
		}
		if d == 2 {
			switched = true
		} else if switched {
			t.Fatalf("layer %d back on GPU1 after switch: not contiguous", l)
		}
	}
	if !switched {
		t.Fatal("expert never used the second GPU")
	}
	// Both GPUs host meaningful compute.
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.DeviceBusy[1] == 0 || res.DeviceBusy[2] == 0 {
		t.Fatal("one GPU idle under expert placement")
	}
}

func TestExpertBranchesSplitsNASNet(t *testing.T) {
	g := smallNASNet(t)
	sys := sim.NewSystem(2, gpuMem)
	plan, err := Expert(g, sys, ExpertBranches)
	if err != nil {
		t.Fatalf("Expert: %v", err)
	}
	// Odd branches on GPU1, even on GPU2, untagged on GPU1.
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		want := sim.DeviceID(1)
		if nd.Branch > 0 && (nd.Branch-1)%2 == 1 {
			want = 2
		}
		if plan.Device[nd.ID] != want {
			t.Fatalf("op %q (branch %d) on %v, want %v", nd.Name, nd.Branch, plan.Device[nd.ID], want)
		}
	}
	if _, err := sim.Run(g, sys, plan); err != nil {
		t.Fatalf("simulate: %v", err)
	}
}

func TestExpertOOMOnOversizedUnbalancedModel(t *testing.T) {
	// Calibrate a NASNet so the untagged+odd-branch share exceeds one
	// GPU while a balanced split fits — the Figure 7 Expert-OOM
	// scenario.
	g, err := models.NASNet(models.NASNetConfig{Cells: 2, Filters: 16, Batch: 2, Spatial: 4, TargetMemory: 29 << 30})
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, gpuMem)
	plan, err := Expert(g, sys, ExpertBranches)
	if err != nil {
		t.Fatalf("Expert: %v", err)
	}
	if _, err := sim.Run(g, sys, plan); !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("expected Expert to OOM, got %v", err)
	}
	// Baechi must still find a feasible plan.
	bplan, _, _, err := BestBaechi(g, sys)
	if err != nil {
		t.Fatalf("BestBaechi: %v", err)
	}
	if _, err := sim.Run(g, sys, bplan); err != nil {
		t.Fatalf("baechi plan OOMs too: %v", err)
	}
}

func TestBaechiHeuristicsProduceValidPlans(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(2, gpuMem)
	for _, h := range []BaechiHeuristic{MTopo, METF, MSCT} {
		plan, err := Baechi(g, sys, h)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := plan.Validate(g, sys); err != nil {
			t.Fatalf("%v: invalid plan: %v", h, err)
		}
		if _, err := sim.Run(g, sys, plan); err != nil {
			t.Fatalf("%v: simulate: %v", h, err)
		}
	}
}

func TestBaechiMemoryAware(t *testing.T) {
	// Three 7GB ops on 2×16GB GPUs: no GPU can host all three; all
	// heuristics must split them across devices.
	g := graph.New(3)
	var ids []graph.NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, g.AddNode(graph.Node{
			Name: "big", Kind: graph.KindGPU,
			Cost: 100 * time.Microsecond, Memory: 7 << 30, Layer: 1,
		}))
	}
	_ = g.AddEdge(ids[0], ids[1], 1<<10)
	_ = g.AddEdge(ids[1], ids[2], 1<<10)
	sys := sim.NewSystem(2, gpuMem)
	for _, h := range []BaechiHeuristic{MTopo, METF, MSCT} {
		plan, err := Baechi(g, sys, h)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if _, err := sim.Run(g, sys, plan); err != nil {
			t.Fatalf("%v: placement OOMs: %v", h, err)
		}
	}
}

func TestBestBaechiPicksFastest(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(2, gpuMem)
	plan, h, mk, err := BestBaechi(g, sys)
	if err != nil {
		t.Fatalf("BestBaechi: %v", err)
	}
	if mk <= 0 {
		t.Fatal("zero makespan")
	}
	// Re-simulating the returned plan reproduces the reported makespan.
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Makespan != mk {
		t.Fatalf("reported %v, resimulated %v", mk, res.Makespan)
	}
	// And it is no worse than each individual heuristic.
	for _, other := range []BaechiHeuristic{MTopo, METF, MSCT} {
		p2, err := Baechi(g, sys, other)
		if err != nil {
			continue
		}
		r2, err := sim.Run(g, sys, p2)
		if err != nil {
			continue
		}
		if mk > r2.Makespan {
			t.Fatalf("best (%v, %v) worse than %v (%v)", h, mk, other, r2.Makespan)
		}
	}
}

func TestSingleGPU(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(2, gpuMem)
	plan, err := SingleGPU(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU && plan.Device[nd.ID] != 1 {
			t.Fatalf("op %d not on GPU 1", nd.ID)
		}
	}
}

func TestCriticalPathPlan(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(2, gpuMem)
	base, err := SingleGPU(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CriticalPathPlan(g, base)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != sim.PolicyPriority || len(plan.Priority) != g.NumNodes() {
		t.Fatal("priority plan malformed")
	}
	if _, err := sim.Run(g, sys, plan); err != nil {
		t.Fatalf("simulate: %v", err)
	}
}

func TestNoGPUs(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(0, 0)
	if _, err := Expert(g, sys, ExpertLayered); !errors.Is(err, ErrNoGPUs) {
		t.Errorf("Expert: %v", err)
	}
	if _, err := Baechi(g, sys, MSCT); !errors.Is(err, ErrNoGPUs) {
		t.Errorf("Baechi: %v", err)
	}
	if _, err := SingleGPU(g, sys); !errors.Is(err, ErrNoGPUs) {
		t.Errorf("SingleGPU: %v", err)
	}
}

func TestHEFTProducesValidCompetitivePlans(t *testing.T) {
	g := smallRNNLM(t)
	sys := sim.NewSystem(2, gpuMem)
	plan, err := HEFT(g, sys)
	if err != nil {
		t.Fatalf("HEFT: %v", err)
	}
	if err := plan.Validate(g, sys); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// HEFT should beat the single-GPU default on a parallelizable grid.
	sp, err := SingleGPU(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.Run(g, sys, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan >= sr.Makespan {
		t.Errorf("HEFT (%v) no better than single GPU (%v)", res.Makespan, sr.Makespan)
	}
}

func TestHEFTMemoryAware(t *testing.T) {
	g := graph.New(3)
	var ids []graph.NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, g.AddNode(graph.Node{
			Name: "big", Kind: graph.KindGPU,
			Cost: 100 * time.Microsecond, Memory: 7 << 30, Layer: 1,
		}))
	}
	_ = g.AddEdge(ids[0], ids[1], 1<<10)
	sys := sim.NewSystem(2, gpuMem)
	plan, err := HEFT(g, sys)
	if err != nil {
		t.Fatalf("HEFT: %v", err)
	}
	if _, err := sim.Run(g, sys, plan); err != nil {
		t.Fatalf("HEFT placement OOMs: %v", err)
	}
}

func TestHEFTNoGPUs(t *testing.T) {
	g := smallRNNLM(t)
	if _, err := HEFT(g, sim.NewSystem(0, 0)); !errors.Is(err, ErrNoGPUs) {
		t.Fatalf("err = %v, want ErrNoGPUs", err)
	}
}
