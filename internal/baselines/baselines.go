// Package baselines implements the placement strategies Pesto is
// evaluated against in §5 of the paper:
//
//   - Expert: the manual, layer-wise placement domain experts use
//     (contiguous blocks of layers per GPU; embedding with the first
//     layer; attention/softmax with the last; NASNet branches split
//     across GPUs within each cell). Expert ignores memory, which is
//     why it OOMs on the large NASNet variants in Figure 7.
//   - Baechi (Jeon et al., SoCC'20) heuristics: m-TOPO, m-ETF and
//     m-SCT, re-implemented from the algorithm descriptions — memory-
//     aware variants of topological splitting, Earliest-Task-First and
//     Small-Communication-Times scheduling.
//   - A critical-path list scheduler (the "naive scheduling" of
//     Figure 2(b)).
//
// All strategies produce a sim.Plan with placement only (Policy FIFO):
// like their originals, they rely on the framework's ready-queue
// scheduling rather than installing control dependencies.
package baselines

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ErrNoGPUs is returned when the system has no GPU to place onto.
var ErrNoGPUs = errors.New("system has no GPUs")

// cpuPlacement pre-fills the CPU-bound operations and returns the list
// of GPU operations left to place.
func cpuPlacement(g *graph.Graph, sys sim.System) ([]sim.DeviceID, []graph.NodeID) {
	dev := make([]sim.DeviceID, g.NumNodes())
	var gpuOps []graph.NodeID
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU {
			gpuOps = append(gpuOps, nd.ID)
		} else {
			dev[nd.ID] = sys.CPUID()
		}
	}
	return dev, gpuOps
}

// applyColoc forces every colocation group onto the device of its first
// member.
func applyColoc(g *graph.Graph, dev []sim.DeviceID) {
	rep := make(map[string]sim.DeviceID)
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU || nd.Coloc == "" {
			continue
		}
		if d, ok := rep[nd.Coloc]; ok {
			dev[nd.ID] = d
		} else {
			rep[nd.Coloc] = dev[nd.ID]
		}
	}
}

// ExpertMode selects the manual placement family.
type ExpertMode int

const (
	// ExpertLayered assigns contiguous blocks of layers to each GPU,
	// balancing total compute — the RNNLM/NMT/Transformer expert
	// strategy [58].
	ExpertLayered ExpertMode = iota + 1
	// ExpertBranches splits the parallel branches inside each layer
	// (NASNet cell) across GPUs — the NASNet expert strategy [10].
	ExpertBranches
)

// Expert produces the manual expert placement. It deliberately ignores
// memory capacities (it models a human following the published layer
// recipes); sim.Run will surface ErrOOM exactly as TensorFlow does.
func Expert(g *graph.Graph, sys sim.System, mode ExpertMode) (sim.Plan, error) {
	gpus := sys.GPUs()
	if len(gpus) == 0 {
		return sim.Plan{}, ErrNoGPUs
	}
	dev, gpuOps := cpuPlacement(g, sys)
	switch mode {
	case ExpertLayered:
		expertLayered(g, gpus, dev, gpuOps)
	case ExpertBranches:
		expertBranches(g, gpus, dev, gpuOps)
	default:
		return sim.Plan{}, fmt.Errorf("unknown expert mode %d", mode)
	}
	applyColoc(g, dev)
	return sim.Plan{Device: dev, Policy: sim.PolicyFIFO}, nil
}

// expertLayered splits layers into contiguous, compute-balanced blocks.
func expertLayered(g *graph.Graph, gpus []sim.DeviceID, dev []sim.DeviceID, gpuOps []graph.NodeID) {
	// Total compute per layer.
	layerCost := make(map[int]time.Duration)
	var layers []int
	for _, id := range gpuOps {
		nd, _ := g.Node(id)
		if _, seen := layerCost[nd.Layer]; !seen {
			layers = append(layers, nd.Layer)
		}
		layerCost[nd.Layer] += nd.Cost
	}
	sort.Ints(layers)
	var total time.Duration
	for _, l := range layers {
		total += layerCost[l]
	}
	// Greedy contiguous split: advance to the next GPU once the running
	// cost crosses the per-GPU share.
	layerDev := make(map[int]sim.DeviceID, len(layers))
	share := total / time.Duration(len(gpus))
	gi := 0
	var run time.Duration
	for _, l := range layers {
		layerDev[l] = gpus[gi]
		run += layerCost[l]
		if run >= share && gi < len(gpus)-1 {
			gi++
			run = 0
		}
	}
	for _, id := range gpuOps {
		nd, _ := g.Node(id)
		dev[id] = layerDev[nd.Layer]
	}
}

// expertBranches round-robins the parallel branches within each layer
// (NASNet cell) across GPUs using the Branch tags on nodes; untagged
// operations (cell stems, concats, softmax) follow the first GPU, which
// is exactly the footprint imbalance that makes Expert OOM on the large
// NASNet variants in Figure 7.
func expertBranches(g *graph.Graph, gpus []sim.DeviceID, dev []sim.DeviceID, gpuOps []graph.NodeID) {
	for _, id := range gpuOps {
		nd, _ := g.Node(id)
		if nd.Branch > 0 {
			dev[id] = gpus[(nd.Branch-1)%len(gpus)]
		} else {
			dev[id] = gpus[0]
		}
	}
}

// SingleGPU places every GPU operation on the first GPU — TensorFlow's
// default behaviour (§6: "TensorFlow tries to fit the entire DNN on a
// single GPU").
func SingleGPU(g *graph.Graph, sys sim.System) (sim.Plan, error) {
	gpus := sys.GPUs()
	if len(gpus) == 0 {
		return sim.Plan{}, ErrNoGPUs
	}
	dev, gpuOps := cpuPlacement(g, sys)
	for _, id := range gpuOps {
		dev[id] = gpus[0]
	}
	return sim.Plan{Device: dev, Policy: sim.PolicyFIFO}, nil
}

// CriticalPathPlan is the "naive scheduling" of Figure 2(b): single
// placement given, priority by hop-count distance to the sink —
// longest-path-first while ignoring compute requirements.
func CriticalPathPlan(g *graph.Graph, base sim.Plan) (sim.Plan, error) {
	n := g.NumNodes()
	order, err := g.TopoSort()
	if err != nil {
		return sim.Plan{}, err
	}
	prio := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range g.Succ(v) {
			if prio[e.To]+1 > prio[v] {
				prio[v] = prio[e.To] + 1
			}
		}
	}
	out := base
	out.Policy = sim.PolicyPriority
	out.Priority = prio
	return out, nil
}
