package baselines_test

// Differential coverage for the baseline planners: every plan they emit
// on generated graphs must pass the independent invariant checker, and
// no realized makespan may undercut the LP-relaxation lower bound.
// These are the oracles the sweep applies at scale; this file keeps a
// fast, always-on slice of them inside the baselines package's own
// test run.

import (
	"errors"
	"testing"

	"pesto/internal/baselines"
	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

const gpuMem = int64(16) << 30

func generated(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.RandomConfig(seed))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return g
}

func TestHEFTVerifiesOnGeneratedGraphs(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	for seed := int64(0); seed < 25; seed++ {
		g := generated(t, seed)
		plan, err := baselines.HEFT(g, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := verify.Check(g, sys, plan)
		if err != nil {
			t.Fatalf("seed %d: HEFT plan rejected: %v", seed, err)
		}
		lb, err := verify.LowerBound(g, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Makespan < lb {
			t.Fatalf("seed %d: HEFT makespan %v undercuts bound %v", seed, res.Makespan, lb)
		}
	}
}

func TestBaechiVerifiesOnGeneratedGraphs(t *testing.T) {
	sys := sim.NewSystem(2, gpuMem)
	for seed := int64(0); seed < 25; seed++ {
		g := generated(t, seed)
		lb, err := verify.LowerBound(g, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, h := range []baselines.BaechiHeuristic{baselines.MTopo, baselines.METF, baselines.MSCT} {
			plan, err := baselines.Baechi(g, sys, h)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, h, err)
			}
			res, err := verify.Check(g, sys, plan)
			if err != nil {
				t.Fatalf("seed %d %v: plan rejected: %v", seed, h, err)
			}
			if res.Makespan < lb {
				t.Fatalf("seed %d %v: makespan %v undercuts bound %v", seed, h, res.Makespan, lb)
			}
		}
	}
}

func TestSingleGPUVerifiesOrReportsOOM(t *testing.T) {
	// On ample memory the plan verifies; on insufficient memory either
	// the planner or the checker must classify the problem as memory.
	for seed := int64(0); seed < 25; seed++ {
		g := generated(t, seed)
		sys := sim.NewSystem(2, gpuMem)
		plan, err := baselines.SingleGPU(g, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := verify.Check(g, sys, plan); err != nil {
			t.Fatalf("seed %d: single-GPU plan rejected: %v", seed, err)
		}

		var total int64
		for _, nd := range g.Nodes() {
			if nd.Kind == graph.KindGPU {
				total += nd.Memory
			}
		}
		if total == 0 {
			continue
		}
		tight := sim.NewSystem(2, total-1)
		tp, err := baselines.SingleGPU(g, tight)
		if err != nil {
			if !errors.Is(err, sim.ErrOOM) {
				t.Fatalf("seed %d: tight-memory failure not OOM: %v", seed, err)
			}
			continue
		}
		if _, err := verify.Check(g, tight, tp); !errors.Is(err, verify.ErrMemory) {
			t.Fatalf("seed %d: over-capacity plan accepted or misclassified: %v", seed, err)
		}
	}
}
