package baselines

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// BaechiHeuristic selects one of Baechi's three memory-aware placement
// algorithms (Jeon et al., SoCC'20), the algorithmic state of the art
// Pesto compares against in Figure 7 and Tables 2–3.
type BaechiHeuristic int

const (
	// MTopo splits a topological order into per-device chunks by
	// memory budget.
	MTopo BaechiHeuristic = iota + 1
	// METF greedily assigns the ready task that can start earliest,
	// memory permitting (memory-aware Earliest-Task-First).
	METF
	// MSCT augments m-ETF with Small-Communication-Times favorite-child
	// preferences: each task's heaviest-communication successor is
	// biased onto the same device, approximating the SCT LP of Hanen &
	// Munier as Baechi does. In the paper's experiments m-SCT is the
	// best Baechi heuristic throughout.
	MSCT
)

// String implements fmt.Stringer.
func (h BaechiHeuristic) String() string {
	switch h {
	case MTopo:
		return "m-TOPO"
	case METF:
		return "m-ETF"
	case MSCT:
		return "m-SCT"
	default:
		return fmt.Sprintf("BaechiHeuristic(%d)", int(h))
	}
}

// Baechi computes a memory-aware placement with the selected heuristic.
// Like the original system, it emits placement only (the framework's
// ready queue schedules operations).
func Baechi(g *graph.Graph, sys sim.System, h BaechiHeuristic) (sim.Plan, error) {
	gpus := sys.GPUs()
	if len(gpus) == 0 {
		return sim.Plan{}, ErrNoGPUs
	}
	var (
		dev []sim.DeviceID
		err error
	)
	switch h {
	case MTopo:
		dev, err = mTopo(g, sys, gpus)
	case METF:
		dev, err = mETFLike(g, sys, gpus, false)
	case MSCT:
		dev, err = mETFLike(g, sys, gpus, true)
	default:
		return sim.Plan{}, fmt.Errorf("unknown baechi heuristic %d", h)
	}
	if err != nil {
		return sim.Plan{}, err
	}
	applyColoc(g, dev)
	return sim.Plan{Device: dev, Policy: sim.PolicyFIFO}, nil
}

// BestBaechi evaluates all three heuristics through the simulator and
// returns the fastest feasible plan with its heuristic — the paper
// always reports "the best Baechi heuristic" (in its experiments,
// m-SCT).
func BestBaechi(g *graph.Graph, sys sim.System) (sim.Plan, BaechiHeuristic, time.Duration, error) {
	var (
		bestPlan sim.Plan
		bestH    BaechiHeuristic
		bestMk   time.Duration
		found    bool
	)
	for _, h := range []BaechiHeuristic{MSCT, METF, MTopo} {
		plan, err := Baechi(g, sys, h)
		if err != nil {
			continue
		}
		res, err := sim.Run(g, sys, plan)
		if err != nil {
			continue
		}
		if !found || res.Makespan < bestMk {
			bestPlan, bestH, bestMk, found = plan, h, res.Makespan, true
		}
	}
	if !found {
		return sim.Plan{}, 0, 0, fmt.Errorf("no baechi heuristic produced a feasible plan: %w", sim.ErrOOM)
	}
	return bestPlan, bestH, bestMk, nil
}

// mTopo fills devices with contiguous chunks of the topological order,
// bounded by a per-device memory budget.
func mTopo(g *graph.Graph, sys sim.System, gpus []sim.DeviceID) ([]sim.DeviceID, error) {
	dev, gpuOps := cpuPlacement(g, sys)
	var total int64
	for _, id := range gpuOps {
		nd, _ := g.Node(id)
		total += nd.Memory
	}
	budget := total/int64(len(gpus)) + 1
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	gi := 0
	var used int64
	for _, id := range order {
		nd, _ := g.Node(id)
		if nd.Kind != graph.KindGPU {
			continue
		}
		if used+nd.Memory > budget && gi < len(gpus)-1 {
			gi++
			used = 0
		}
		dev[id] = gpus[gi]
		used += nd.Memory
	}
	return dev, nil
}

// mETFLike is the scheduling core shared by m-ETF and m-SCT. It builds
// a tentative schedule (earliest start times with communication and
// device-availability constraints) and keeps the resulting placement.
func mETFLike(g *graph.Graph, sys sim.System, gpus []sim.DeviceID, sct bool) ([]sim.DeviceID, error) {
	dev, _ := cpuPlacement(g, sys)
	n := g.NumNodes()
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}

	// Favorite child per node: the successor with the largest tensor
	// (SCT's "small communication times" preference).
	fav := make([]graph.NodeID, n)
	for i := range fav {
		fav[i] = -1
	}
	if sct {
		for i := 0; i < n; i++ {
			var best int64 = -1
			for _, e := range g.Succ(graph.NodeID(i)) {
				if e.Bytes > best {
					best = e.Bytes
					fav[i] = e.To
				}
			}
		}
	}

	// Device state. The CPU participates for CPU/kernel ops so cross
	// CPU-GPU communication is accounted for.
	devFree := make(map[sim.DeviceID]time.Duration, len(sys.Devices))
	memUsed := make(map[sim.DeviceID]int64, len(sys.Devices))
	lastOn := make(map[sim.DeviceID]graph.NodeID)
	finish := make([]time.Duration, n)

	pending := make([]int, n)
	var ready []graph.NodeID
	for i := 0; i < n; i++ {
		pending[i] = g.InDegree(graph.NodeID(i))
		if pending[i] == 0 {
			ready = append(ready, graph.NodeID(i))
		}
	}

	capOf := func(d sim.DeviceID) int64 {
		dv, _ := sys.Device(d)
		return dv.Memory
	}
	est := func(id graph.NodeID, d sim.DeviceID) time.Duration {
		t := devFree[d]
		for _, e := range g.Pred(id) {
			arr := finish[e.From]
			if dev[e.From] != d {
				arr += sys.TransferTime(dev[e.From], d, e.Bytes)
			}
			if arr > t {
				t = arr
			}
		}
		return t
	}

	for len(ready) > 0 {
		// Pick the (op, device) pair with minimum EST; m-SCT biases
		// favorite children towards their parent's device.
		bestI, bestScore := -1, time.Duration(math.MaxInt64)
		var bestDev sim.DeviceID
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
		for ri, id := range ready {
			nd, _ := g.Node(id)
			var candidates []sim.DeviceID
			if nd.Kind == graph.KindGPU {
				candidates = gpus
			} else {
				candidates = []sim.DeviceID{sys.CPUID()}
			}
			for _, d := range candidates {
				if c := capOf(d); c > 0 && nd.Kind == graph.KindGPU && memUsed[d]+nd.Memory > c {
					continue // memory-aware: skip full devices
				}
				score := est(id, d)
				if sct {
					// Prefer running a favorite child right after its
					// parent on the same device.
					for _, e := range g.Pred(id) {
						if fav[e.From] == id && dev[e.From] == d && lastOn[d] == e.From {
							score -= sys.TransferTime(d, otherGPU(gpus, d), e.Bytes) / 2
							if score < 0 {
								score = 0
							}
						}
					}
				}
				if score < bestScore {
					bestScore = score
					bestI = ri
					bestDev = d
				}
			}
		}
		if bestI < 0 {
			return nil, fmt.Errorf("baechi: no device fits any ready op: %w", sim.ErrOOM)
		}
		id := ready[bestI]
		ready = append(ready[:bestI], ready[bestI+1:]...)
		nd, _ := g.Node(id)
		start := est(id, bestDev)
		finish[id] = start + nd.Cost
		devFree[bestDev] = finish[id]
		dev[id] = bestDev
		lastOn[bestDev] = id
		if nd.Kind == graph.KindGPU {
			memUsed[bestDev] += nd.Memory
		}
		for _, e := range g.Succ(id) {
			pending[e.To]--
			if pending[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return dev, nil
}

// otherGPU returns some GPU different from d (or d itself when there is
// only one).
func otherGPU(gpus []sim.DeviceID, d sim.DeviceID) sim.DeviceID {
	for _, g := range gpus {
		if g != d {
			return g
		}
	}
	return d
}
