package baselines

import (
	"fmt"
	"sort"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// HEFT computes a Heterogeneous-Earliest-Finish-Time placement
// (Topcuoglu et al., cited by the paper in §6 as one of the ad-hoc
// heuristics "commonly employed in different systems"). Tasks are
// visited in decreasing upward rank (critical-path-to-sink including
// average communication) and each is assigned to the memory-feasible
// device minimizing its earliest finish time.
//
// Like Baechi, HEFT emits placement only; the framework's ready queue
// schedules operations at runtime.
func HEFT(g *graph.Graph, sys sim.System) (sim.Plan, error) {
	gpus := sys.GPUs()
	if len(gpus) == 0 {
		return sim.Plan{}, ErrNoGPUs
	}
	n := g.NumNodes()
	nodes := g.Nodes()
	dev, _ := cpuPlacement(g, sys)

	// Upward rank: rank(i) = cost(i) + max over successors of
	// (avg comm + rank(succ)). Average comm uses the GPU-GPU model and
	// a 1/k chance of crossing, the standard HEFT averaging.
	order, err := g.TopoSort()
	if err != nil {
		return sim.Plan{}, err
	}
	rank := make([]float64, n)
	crossP := 1 - 1/float64(len(gpus))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range g.Succ(v) {
			avgComm := crossP * float64(sys.TransferTime(gpus[0], gpus[len(gpus)-1], e.Bytes))
			if r := avgComm + rank[e.To]; r > rank[v] {
				rank[v] = r
			}
		}
		rank[v] += float64(nodes[v].Cost)
	}

	// Visit in decreasing rank; this respects precedence because a
	// predecessor's rank strictly exceeds its successors'.
	visit := make([]graph.NodeID, n)
	for i := range visit {
		visit[i] = graph.NodeID(i)
	}
	sort.Slice(visit, func(a, b int) bool {
		if rank[visit[a]] != rank[visit[b]] {
			return rank[visit[a]] > rank[visit[b]]
		}
		return visit[a] < visit[b]
	})

	devFree := make(map[sim.DeviceID]time.Duration, len(sys.Devices))
	memUsed := make(map[sim.DeviceID]int64, len(sys.Devices))
	finish := make([]time.Duration, n)
	for _, id := range visit {
		nd := nodes[id]
		candidates := gpus
		if nd.Kind != graph.KindGPU {
			candidates = []sim.DeviceID{sys.CPUID()}
		}
		bestDev := sim.DeviceID(-1)
		var bestEFT time.Duration
		for _, d := range candidates {
			dd, _ := sys.Device(d)
			if dd.Memory > 0 && nd.Kind == graph.KindGPU && memUsed[d]+nd.Memory > dd.Memory {
				continue
			}
			est := devFree[d]
			for _, e := range g.Pred(id) {
				arr := finish[e.From]
				if dev[e.From] != d {
					arr += sys.TransferTime(dev[e.From], d, e.Bytes)
				}
				if arr > est {
					est = arr
				}
			}
			eft := est + nd.Cost
			if bestDev < 0 || eft < bestEFT {
				bestDev, bestEFT = d, eft
			}
		}
		if bestDev < 0 {
			return sim.Plan{}, fmt.Errorf("heft: no device fits op %d: %w", id, sim.ErrOOM)
		}
		dev[id] = bestDev
		finish[id] = bestEFT
		devFree[bestDev] = bestEFT
		if nd.Kind == graph.KindGPU {
			memUsed[bestDev] += nd.Memory
		}
	}
	applyColoc(g, dev)
	return sim.Plan{Device: dev, Policy: sim.PolicyFIFO}, nil
}
