package placement

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/models"
	"pesto/internal/sim"
)

const gpuMem = 16 << 30

func mustEdge(t *testing.T, g *graph.Graph, u, v graph.NodeID, bytes int64) {
	t.Helper()
	if err := g.AddEdge(u, v, bytes); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
}

func gpuNode(name string, cost time.Duration) graph.Node {
	return graph.Node{Name: name, Kind: graph.KindGPU, Cost: cost, Memory: 1 << 20, Layer: -1}
}

// figure2 reproduces the toy DAG of Figure 2(a): five small ops A–E
// feeding two compute-heavy ops F and G. Scheduling F and G early on
// separate GPUs is what the optimal solution of Figure 2(d) does.
func figure2(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(8)
	a := g.AddNode(gpuNode("A", 20*time.Microsecond))
	b := g.AddNode(gpuNode("B", 30*time.Microsecond))
	c := g.AddNode(gpuNode("C", 30*time.Microsecond))
	d := g.AddNode(gpuNode("D", 40*time.Microsecond))
	e := g.AddNode(gpuNode("E", 40*time.Microsecond))
	f := g.AddNode(gpuNode("F", 200*time.Microsecond))
	h := g.AddNode(gpuNode("G", 200*time.Microsecond))
	out := g.AddNode(gpuNode("H", 20*time.Microsecond))
	mustEdge(t, g, a, b, 4<<10)
	mustEdge(t, g, a, c, 4<<10)
	mustEdge(t, g, b, d, 4<<10)
	mustEdge(t, g, c, e, 4<<10)
	mustEdge(t, g, a, f, 4<<10)
	mustEdge(t, g, a, h, 4<<10)
	mustEdge(t, g, d, out, 4<<10)
	mustEdge(t, g, e, out, 4<<10)
	mustEdge(t, g, f, out, 4<<10)
	mustEdge(t, g, h, out, 4<<10)
	return g
}

func place(t *testing.T, g *graph.Graph, sys sim.System, opts Options) *Result {
	t.Helper()
	res, err := Place(context.Background(), g, sys, opts)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	return res
}

func TestPlaceFigure2Toy(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{CoarsenTarget: 8, ScheduleFromILP: true, ILPTimeLimit: 5 * time.Second})

	simRes, err := sim.Run(g, sys, res.Plan)
	if err != nil {
		t.Fatalf("simulate pesto plan: %v", err)
	}

	// Baseline: everything on one GPU.
	single := make([]sim.DeviceID, g.NumNodes())
	for i := range single {
		single[i] = 1
	}
	sr, err := sim.Run(g, sys, sim.Plan{Device: single})
	if err != nil {
		t.Fatalf("single GPU baseline: %v", err)
	}

	if simRes.Makespan > sr.Makespan {
		t.Errorf("pesto (%v) worse than single-GPU (%v)", simRes.Makespan, sr.Makespan)
	}
	// The DAG has two 200µs ops that can run in parallel; two GPUs
	// should yield a clearly parallel schedule.
	if float64(simRes.Makespan) > 0.85*float64(sr.Makespan) {
		t.Errorf("pesto %v not parallel enough vs single GPU %v", simRes.Makespan, sr.Makespan)
	}
	if res.PredictedMakespan <= 0 {
		t.Error("missing predicted makespan")
	}
}

func TestPlaceTinyGraphIsOptimal(t *testing.T) {
	// Two independent equal ops, negligible comm: optimal C_max is one
	// op per GPU. The B&B must prove optimality (Theorem 3.1 regime).
	g := graph.New(2)
	g.AddNode(gpuNode("a", 100*time.Microsecond))
	g.AddNode(gpuNode("b", 100*time.Microsecond))
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{CoarsenTarget: 2, ScheduleFromILP: true})
	if res.ILPStatus != ilp.OptimalStatus {
		t.Fatalf("status = %v, want optimal", res.ILPStatus)
	}
	if res.Plan.Device[0] == res.Plan.Device[1] {
		t.Fatalf("optimal placement must split the two ops, got %v", res.Plan.Device)
	}
	simRes, err := sim.Run(g, sys, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Makespan != 100*time.Microsecond {
		t.Fatalf("makespan = %v, want 100µs", simRes.Makespan)
	}
}

func TestPlaceSerialChainStaysColocated(t *testing.T) {
	// A serial chain with huge tensors must not be split: any cut adds
	// pure communication time.
	g := graph.New(6)
	prev := g.AddNode(gpuNode("n0", 50*time.Microsecond))
	for i := 1; i < 6; i++ {
		cur := g.AddNode(gpuNode("n", 50*time.Microsecond))
		mustEdge(t, g, prev, cur, 64<<20) // ~3ms on NVLink
		prev = cur
	}
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{CoarsenTarget: 6, ScheduleFromILP: true, MemorySlack: 0.6})
	first := res.Plan.Device[0]
	for i, d := range res.Plan.Device {
		if d != first {
			t.Fatalf("node %d split off (%v vs %v): serial chain should stay colocated", i, d, first)
		}
	}
}

func TestPlaceRespectsMemoryCapacity(t *testing.T) {
	// Two 10 GB ops cannot share a 16 GB GPU even though they form a
	// chain (communication would prefer colocation).
	g := graph.New(2)
	a := g.AddNode(graph.Node{Name: "big1", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Memory: 10 << 30})
	b := g.AddNode(graph.Node{Name: "big2", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Memory: 10 << 30})
	mustEdge(t, g, a, b, 1<<20)
	sys := sim.NewSystem(2, 16<<30)
	res := place(t, g, sys, Options{CoarsenTarget: 2, ScheduleFromILP: true})
	if res.Plan.Device[a] == res.Plan.Device[b] {
		t.Fatalf("memory constraint violated: both 10GB ops on device %v", res.Plan.Device[a])
	}
	if _, err := sim.Run(g, sys, res.Plan); err != nil {
		t.Fatalf("plan does not simulate: %v", err)
	}
}

func TestPlaceHonorsColocationGroups(t *testing.T) {
	g := graph.New(4)
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Cost: 50 * time.Microsecond, Coloc: "grp", Memory: 1})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Cost: 50 * time.Microsecond, Coloc: "grp", Memory: 1})
	c := g.AddNode(gpuNode("c", 50*time.Microsecond))
	d := g.AddNode(gpuNode("d", 50*time.Microsecond))
	mustEdge(t, g, a, c, 8)
	mustEdge(t, g, b, d, 8)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{CoarsenTarget: 4, ScheduleFromILP: true})
	if res.Plan.Device[a] != res.Plan.Device[b] {
		t.Fatalf("colocation group split: %v vs %v", res.Plan.Device[a], res.Plan.Device[b])
	}
}

func TestPlaceMixedCPUAndGPU(t *testing.T) {
	g := graph.New(4)
	in := g.AddNode(graph.Node{Name: "input", Kind: graph.KindCPU, Cost: 10 * time.Microsecond})
	k := g.AddNode(graph.Node{Name: "kernel", Kind: graph.KindKernel, Cost: 2 * time.Microsecond})
	op := g.AddNode(gpuNode("matmul", 100*time.Microsecond))
	out := g.AddNode(graph.Node{Name: "summary", Kind: graph.KindCPU, Cost: 5 * time.Microsecond})
	mustEdge(t, g, in, k, 1<<10)
	mustEdge(t, g, k, op, 1<<10)
	mustEdge(t, g, op, out, 1<<10)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{CoarsenTarget: 4, ScheduleFromILP: true})
	if res.Plan.Device[in] != sys.CPUID() || res.Plan.Device[k] != sys.CPUID() || res.Plan.Device[out] != sys.CPUID() {
		t.Fatalf("CPU/kernel ops misplaced: %v", res.Plan.Device)
	}
	if d := res.Plan.Device[op]; d != 1 && d != 2 {
		t.Fatalf("GPU op on device %v", d)
	}
	if _, err := sim.Run(g, sys, res.Plan); err != nil {
		t.Fatalf("simulate: %v", err)
	}
}

func TestPlaceRejectsWrongGPUCount(t *testing.T) {
	g := graph.New(1)
	g.AddNode(gpuNode("a", time.Microsecond))
	for _, n := range []int{1, 3} {
		sys := sim.NewSystem(n, gpuMem)
		if _, err := Place(context.Background(), g, sys, Options{}); !errors.Is(err, ErrUnsupportedSystem) {
			t.Errorf("%d GPUs: err = %v, want ErrUnsupportedSystem", n, err)
		}
	}
}

func TestCongestionConstraintsHelp(t *testing.T) {
	// A graph designed to punish bunched transfers: two chains that
	// each cross GPUs with large tensors. With congestion constraints
	// the ILP staggers or avoids the transfers; without them its
	// predicted makespan is optimistic and the realized schedule is no
	// better.
	g := congestionHeavyGraph(t)
	sys := sim.NewSystem(2, gpuMem)
	with := place(t, g, sys, Options{CoarsenTarget: 10, ScheduleFromILP: true, ILPTimeLimit: 6 * time.Second})
	without := place(t, g, sys, Options{CoarsenTarget: 10, ScheduleFromILP: true, ILPTimeLimit: 6 * time.Second, DisableCongestion: true})
	rw, err := sim.Run(g, sys, with.Plan)
	if err != nil {
		t.Fatal(err)
	}
	rwo, err := sim.Run(g, sys, without.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// The congestion-aware plan must not lose (ties allowed: both may
	// discover the colocated optimum).
	if float64(rw.Makespan) > 1.05*float64(rwo.Makespan) {
		t.Errorf("congestion-aware plan (%v) worse than oblivious plan (%v)", rw.Makespan, rwo.Makespan)
	}
}

func congestionHeavyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(12)
	src := g.AddNode(gpuNode("src", 10*time.Microsecond))
	var sinks []graph.NodeID
	for c := 0; c < 4; c++ {
		a := g.AddNode(gpuNode("a", 300*time.Microsecond))
		b := g.AddNode(gpuNode("b", 300*time.Microsecond))
		mustEdge(t, g, src, a, 1<<10)
		mustEdge(t, g, a, b, 8<<20)
		sinks = append(sinks, b)
	}
	out := g.AddNode(gpuNode("out", 10*time.Microsecond))
	for _, s := range sinks {
		mustEdge(t, g, s, out, 1<<10)
	}
	return g
}

func TestPlacePropertyRandomGraphsProduceValidPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sys := sim.NewSystem(2, gpuMem)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(gpuNode("op", time.Duration(5+rng.Intn(200))*time.Microsecond))
		}
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u >= v {
				continue
			}
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(1+rng.Intn(1<<18)))
		}
		res, err := Place(context.Background(), g, sys, Options{
			CoarsenTarget: 8, ScheduleFromILP: true, ILPTimeLimit: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("seed %d: Place: %v", seed, err)
		}
		simRes, err := sim.Run(g, sys, res.Plan)
		if err != nil {
			t.Fatalf("seed %d: simulate: %v", seed, err)
		}
		cp, _, _ := g.CriticalPath()
		if simRes.Makespan < cp {
			t.Fatalf("seed %d: makespan %v below critical path %v", seed, simRes.Makespan, cp)
		}
	}
}

func TestPlacementOnlyModeUsesReadyQueue(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{CoarsenTarget: 8, ScheduleFromILP: false})
	if res.Plan.Order != nil {
		t.Fatal("placement-only mode must not carry an explicit order")
	}
	if _, err := sim.Run(g, sys, res.Plan); err != nil {
		t.Fatalf("simulate: %v", err)
	}
}

func TestPlaceILPOnlyMode(t *testing.T) {
	// ILPOnly returns exactly the branch-and-bound artifact: on a tiny
	// graph it proves optimality and the plan carries the blob order.
	g := graph.New(2)
	g.AddNode(gpuNode("a", 100*time.Microsecond))
	g.AddNode(gpuNode("b", 100*time.Microsecond))
	sys := sim.NewSystem(2, gpuMem)
	res, err := Place(context.Background(), g, sys, Options{
		CoarsenTarget: 2, ILPOnly: true, ScheduleFromILP: true, ILPTimeLimit: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.ILPStatus != ilp.OptimalStatus || res.Gap != 0 {
		t.Fatalf("status=%v gap=%g, want proven optimal", res.ILPStatus, res.Gap)
	}
	if res.Plan.Device[0] == res.Plan.Device[1] {
		t.Fatalf("optimal ILP-only placement must split: %v", res.Plan.Device)
	}
	if res.Plan.Order == nil {
		t.Fatal("ILP-only plan missing the schedule order")
	}
	if _, err := sim.Run(g, sys, res.Plan); err != nil {
		t.Fatalf("simulate: %v", err)
	}
}

// TestPlaceDeterministicAcrossWorkerCounts is the engine's core
// guarantee: candidate generation and merging never depend on worker
// count or completion order, so the same seed yields byte-identical
// plans at any parallelism. The branch and bound is truncated by a
// node cap (deterministic on every machine) rather than wall clock,
// and the time budget is generous enough that refinement reaches its
// local optimum before the deadline on every run — so each run's
// search sees exactly the same candidates.
func TestPlaceDeterministicAcrossWorkerCounts(t *testing.T) {
	rnnlm := func(t *testing.T) *graph.Graph {
		t.Helper()
		v, err := models.FindVariant("RNNLM-small")
		if err != nil {
			t.Fatalf("FindVariant: %v", err)
		}
		g, err := v.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return g
	}
	cases := []struct {
		name  string
		build func(*testing.T) *graph.Graph
		opts  Options
	}{
		{
			name:  "figure2-toy",
			build: figure2,
			opts:  Options{CoarsenTarget: 8, ScheduleFromILP: true, ILPTimeLimit: 120 * time.Second, ILPMaxNodes: 24, Seed: 7},
		},
		{
			name:  "rnnlm-small",
			build: rnnlm,
			opts: Options{
				CoarsenTarget: 12, ILPMaxSize: 8, ScheduleFromILP: true,
				ILPTimeLimit: 120 * time.Second, ILPMaxNodes: 8, Seed: 7,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			sys := sim.NewSystem(2, gpuMem)
			var ref *Result
			for _, workers := range []int{1, 2, 8} {
				opts := tc.opts
				opts.Parallel = workers
				res := place(t, g, sys, opts)
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res.Plan, ref.Plan) {
					t.Errorf("workers=%d: plan differs from workers=1\n got: %+v\nwant: %+v", workers, res.Plan, ref.Plan)
				}
				if res.SimulatedMakespan != ref.SimulatedMakespan {
					t.Errorf("workers=%d: makespan %v != %v", workers, res.SimulatedMakespan, ref.SimulatedMakespan)
				}
			}
		})
	}
}

// TestPlaceReturnsContextError: a cancelled caller gets ctx.Err back
// (wrapped), never a partial plan.
func TestPlaceCancelledContextReturnsError(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Place(ctx, g, sys, Options{CoarsenTarget: 8, ILPTimeLimit: 5 * time.Second})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res != nil {
			t.Fatalf("got partial result %+v alongside cancellation", res)
		}
	})

	t.Run("cancelled-mid-pipeline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		res, err := Place(ctx, g, sys, Options{CoarsenTarget: 8, ILPTimeLimit: 5 * time.Second, Parallel: 2})
		if err == nil {
			// The toy can legitimately finish inside the timeout; only a
			// partial-result-with-error combination would be a bug.
			if res == nil {
				t.Fatal("nil result and nil error")
			}
			return
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
		if res != nil {
			t.Fatalf("got partial result alongside %v", err)
		}
	})
}
