package placement

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

const benchPipelineGPUMem = int64(16) << 30

// benchPipelineWorkload is the pipeline benchmark's fixed input: the
// layered BENCH_service graph (gen.Layered seed=7, 96 nodes) on a
// 2-GPU box — large enough that the exact ILP rung works for its
// answer, small enough that the gate's repeated DP solves stay in the
// milliseconds.
func benchPipelineWorkload(tb testing.TB) (*graph.Graph, sim.System) {
	tb.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 7, Nodes: 96})
	if err != nil {
		tb.Fatal(err)
	}
	return g, sim.NewSystem(2, benchPipelineGPUMem)
}

// timePipelineDP runs the StagePipelineDP rung once, cold, and returns
// its wall time.
func timePipelineDP(tb testing.TB, g *graph.Graph, sys sim.System) time.Duration {
	tb.Helper()
	opts := Options{StartStage: StagePipelineDP, Seed: 1, Verify: true}
	start := time.Now()
	res, err := PlaceMultiGPU(context.Background(), g, sys, opts)
	took := time.Since(start)
	if err != nil {
		tb.Fatal(err)
	}
	if res.Provenance.Stage != StagePipelineDP {
		tb.Fatalf("plan served by %v, want %v", res.Provenance.Stage, StagePipelineDP)
	}
	return took
}

// BenchmarkPipelineDPRung times the contiguous-split DP rung against
// the full exact-ILP rung on the same graph and snapshots the
// comparison to BENCH_pipeline.json (repo root). The ILP half is the
// expensive one, so it only runs when not in -short mode; run without
// -short to regenerate the snapshot.
func BenchmarkPipelineDPRung(b *testing.B) {
	g, sys := benchPipelineWorkload(b)
	ctx := context.Background()

	var nsDP, nsILP int64
	var dpMakespan, ilpMakespan time.Duration
	b.Run("dp", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total += timePipelineDP(b, g, sys)
		}
		nsDP = int64(total) / int64(b.N)
		res, err := PlaceMultiGPU(ctx, g, sys, Options{StartStage: StagePipelineDP, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		dpMakespan = res.SimulatedMakespan
	})
	b.Run("ilp", func(b *testing.B) {
		if testing.Short() {
			b.Skip("exact ILP rung; run without -short to regenerate the snapshot")
		}
		opts := Options{ILPTimeLimit: 20 * time.Second, Seed: 1, Verify: true}
		var total time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			res, err := PlaceMultiGPU(ctx, g, sys, opts)
			total += time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			if res.Provenance.Stage != StageILP {
				b.Fatalf("plan served by %v, want %v", res.Provenance.Stage, StageILP)
			}
			ilpMakespan = res.SimulatedMakespan
		}
		nsILP = int64(total) / int64(b.N)
	})
	if nsDP == 0 || nsILP == 0 {
		return // short mode: no snapshot without the ILP half
	}
	snapshot := map[string]any{
		"graph":            "gen.Layered seed=7 nodes=96, 2 GPUs",
		"ns_per_dp_plan":   nsDP,
		"ns_per_ilp_plan":  nsILP,
		"speedup":          float64(nsILP) / float64(nsDP),
		"dp_makespan_ns":   int64(dpMakespan),
		"ilp_makespan_ns":  int64(ilpMakespan),
		"quality_vs_exact": float64(dpMakespan) / float64(ilpMakespan),
		"note":             "StagePipelineDP rung latency vs the exact ILP rung on the same graph; TestPipelineRegression holds ns_per_dp_plan to <=2x of this snapshot",
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_pipeline.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// TestPipelineRegression is the CI gate behind make bench-pipeline:
// re-times the StagePipelineDP rung and fails if it regresses more
// than 2x over the committed BENCH_pipeline.json snapshot. Wall-clock
// gates are noisy on shared runners, so it takes the best of three
// solves and only the PESTO_BENCH_PIPELINE=1 environment opts in.
func TestPipelineRegression(t *testing.T) {
	if os.Getenv("PESTO_BENCH_PIPELINE") == "" {
		t.Skip("set PESTO_BENCH_PIPELINE=1 to run the pipeline regression gate")
	}
	raw, err := os.ReadFile("../../BENCH_pipeline.json")
	if err != nil {
		t.Fatalf("no committed snapshot: %v", err)
	}
	var snap struct {
		NsPerDPPlan    int64   `json:"ns_per_dp_plan"`
		Speedup        float64 `json:"speedup"`
		QualityVsExact float64 `json:"quality_vs_exact"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.NsPerDPPlan <= 0 {
		t.Fatal("committed BENCH_pipeline.json has no ns_per_dp_plan")
	}
	if snap.Speedup < 2 {
		t.Fatalf("committed snapshot speedup %.2f < 2x target: the DP rung must be meaningfully cheaper than the ILP rung", snap.Speedup)
	}
	g, sys := benchPipelineWorkload(t)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		if took := timePipelineDP(t, g, sys); took < best {
			best = took
		}
	}
	limit := time.Duration(2 * snap.NsPerDPPlan)
	t.Logf("pipeline-dp rung best-of-3: %v (committed %v, limit %v)",
		best, time.Duration(snap.NsPerDPPlan), limit)
	if best > limit {
		t.Fatalf("pipeline-dp rung regressed: %v > 2x committed %v",
			best, time.Duration(snap.NsPerDPPlan))
	}
}
