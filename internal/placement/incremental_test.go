package placement

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/incr"
	"pesto/internal/sim"
)

// incrTestOpts keeps incremental tests fast and machine-independent.
func incrTestOpts() Options {
	return Options{
		ILPTimeLimit: 5 * time.Second,
		StartStage:   StageRefine,
		Seed:         1,
		Verify:       true,
	}
}

func genGraph(t *testing.T, nodes int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Nodes: nodes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIncrementalWarmTrace(t *testing.T) {
	g := genGraph(t, 48, 7)
	sys := sim.NewSystem(2, gpuMem)
	opts := incrTestOpts()
	ctx := context.Background()

	cold, err := PlaceMultiGPU(ctx, g, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	prior := PriorPlacement{Graph: g, Plan: cold.Plan}

	edits, err := gen.EditTrace(g, gen.EditTraceConfig{Seed: 3, Steps: 12})
	if err != nil {
		t.Fatal(err)
	}
	cur := g
	warmCount := 0
	for step, e := range edits {
		next, m, err := incr.Apply(cur, e)
		if err != nil {
			t.Fatalf("step %d apply: %v", step, err)
		}
		prior.NodeMap = m
		res, err := Incremental(ctx, next, sys, prior, opts)
		if err != nil {
			t.Fatalf("step %d incremental: %v", step, err)
		}
		info := res.Provenance.Incremental
		if info == nil {
			t.Fatalf("step %d: no incremental provenance", step)
		}
		if !info.ColdFallback {
			warmCount++
			if res.Provenance.Stage != StageIncremental {
				t.Fatalf("step %d: warm stage = %v", step, res.Provenance.Stage)
			}
			if info.TotalGroups <= 0 || info.DirtyGroups < 0 || info.DirtyGroups > info.TotalGroups {
				t.Fatalf("step %d: group accounting %+v", step, info)
			}
			if info.ReuseFraction < 0 || info.ReuseFraction > 1 {
				t.Fatalf("step %d: reuse fraction %v", step, info.ReuseFraction)
			}
		}
		// Every incremental plan must be independently valid (package
		// test mode forces full verification inside the call too).
		if err := res.Plan.Validate(next, sys); err != nil {
			t.Fatalf("step %d: plan invalid: %v", step, err)
		}
		// Quality: within 5% of a from-scratch cold solve.
		coldStep, err := PlaceMultiGPU(ctx, next, sys, opts)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if float64(res.SimulatedMakespan) > 1.05*float64(coldStep.SimulatedMakespan) {
			t.Fatalf("step %d: warm makespan %v > 1.05x cold %v",
				step, res.SimulatedMakespan, coldStep.SimulatedMakespan)
		}
		cur = next
		prior = PriorPlacement{Graph: cur, Plan: res.Plan, ChainDepth: info.ChainDepth}
	}
	if warmCount == 0 {
		t.Fatal("no step took the warm path")
	}
}

func TestIncrementalByteDeterministicAcrossParallel(t *testing.T) {
	g := genGraph(t, 48, 9)
	sys := sim.NewSystem(2, gpuMem)
	opts := incrTestOpts()
	ctx := context.Background()
	cold, err := PlaceMultiGPU(ctx, g, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	edited, m, err := incr.Apply(g, incr.Edit{Kind: incr.KindReweight, Node: 10, CostNs: int64(3 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, par := range []int{1, 2, 8} {
		o := opts
		o.Parallel = par
		res, err := Incremental(ctx, edited, sys, PriorPlacement{Graph: g, Plan: cold.Plan, NodeMap: m}, o)
		if err != nil {
			t.Fatalf("parallel %d: %v", par, err)
		}
		b, err := json.Marshal(res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if !bytes.Equal(want, b) {
			t.Fatalf("parallel %d produced different plan bytes", par)
		}
	}
}

func TestIncrementalFallbacks(t *testing.T) {
	g := genGraph(t, 40, 2)
	sys := sim.NewSystem(2, gpuMem)
	opts := incrTestOpts()
	ctx := context.Background()
	cold, err := PlaceMultiGPU(ctx, g, sys, opts)
	if err != nil {
		t.Fatal(err)
	}

	// No prior graph → cold with reason.
	res, err := Incremental(ctx, g, sys, PriorPlacement{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info := res.Provenance.Incremental; info == nil || !info.ColdFallback || info.FallbackReason != "no-prior" {
		t.Fatalf("no-prior info = %+v", res.Provenance.Incremental)
	}

	// A prior plan that does not validate against its graph → cold.
	bad := cold.Plan.Clone()
	bad.Device = bad.Device[:len(bad.Device)-1]
	res, err = Incremental(ctx, g, sys, PriorPlacement{Graph: g, Plan: bad}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info := res.Provenance.Incremental; info == nil || info.FallbackReason != "invalid-prior" {
		t.Fatalf("invalid-prior info = %+v", res.Provenance.Incremental)
	}

	// Chain depth past the bound forces a cold refresh.
	res, err = Incremental(ctx, g, sys, PriorPlacement{Graph: g, Plan: cold.Plan, ChainDepth: 1}, Options{
		ILPTimeLimit: 2 * time.Second, StartStage: StageRefine, IncrMaxChain: 1, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info := res.Provenance.Incremental; info == nil || info.FallbackReason != "chain-refresh" {
		t.Fatalf("chain-refresh info = %+v", res.Provenance.Incremental)
	}

	// A rewritten graph (whole thing dirty) trips the dirty threshold.
	rewritten := genGraph(t, 40, 99)
	res, err = Incremental(ctx, rewritten, sys, PriorPlacement{Graph: g, Plan: cold.Plan, NodeMap: nil}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info := res.Provenance.Incremental; info == nil || !info.ColdFallback {
		t.Fatalf("rewritten graph info = %+v", res.Provenance.Incremental)
	}
}

// TestIncrementalCleanGroupsKeepDevices pins the reuse contract: after
// a small local edit, operations in clean groups stay on their prior
// devices (the warm path froze them), up to the memory-repair escape
// hatch which this graph does not trigger.
func TestIncrementalCleanGroupsKeepDevices(t *testing.T) {
	g := genGraph(t, 64, 5)
	sys := sim.NewSystem(2, gpuMem)
	opts := incrTestOpts()
	ctx := context.Background()
	cold, err := PlaceMultiGPU(ctx, g, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Reweight one node: a one-op dirty region.
	edited, m, err := incr.Apply(g, incr.Edit{Kind: incr.KindReweight, Node: 20, CostNs: int64(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Incremental(ctx, edited, sys, PriorPlacement{Graph: g, Plan: cold.Plan, NodeMap: m}, opts)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Provenance.Incremental
	if info.ColdFallback {
		t.Fatalf("one-op edit fell back cold: %+v", info)
	}
	if info.DirtyGroups == 0 || info.DirtyGroups == info.TotalGroups {
		t.Fatalf("dirty accounting off: %+v", info)
	}
	if info.ReuseFraction < 0.5 {
		t.Fatalf("reuse fraction %v too low for a one-op edit", info.ReuseFraction)
	}
}
