package placement

import "time"

// Deadline thresholds for StageForDeadline. The exact ILP pipeline is
// only worth entering when it has room to coarsen, solve and refine;
// the warm-start+refinement pipeline produces useful plans within a
// few hundred milliseconds; below that only the near-instant baseline
// heuristics can answer in time.
const (
	// pipelineDeadline is the minimum budget at which the
	// contiguous-split DP rung is attempted.
	pipelineDeadline = 100 * time.Millisecond
	// refineDeadline is the minimum budget at which the
	// warm-start+refinement rung is attempted.
	refineDeadline = 250 * time.Millisecond
	// ilpDeadline is the minimum budget at which the exact ILP rung is
	// attempted.
	ilpDeadline = 2 * time.Second
)

// StageForDeadline maps a solve-time budget to the deepest
// degradation-ladder rung worth starting at: generous budgets afford
// the exact ILP, mid-range budgets the warm-start+refinement pipeline,
// and tight ones go straight to the heuristic fallback. A non-positive
// budget means "no deadline" and runs the full ladder.
//
// This is the admission-time mapping the serving layer
// (internal/service) applies to per-request deadlines: requests in a
// hurry are not made to wait for an ILP attempt that would blow their
// deadline and then degrade anyway — they enter the ladder at the rung
// their budget can actually pay for, via Options.StartStage.
func StageForDeadline(budget time.Duration) Stage {
	switch {
	case budget <= 0:
		return StageILP
	case budget < pipelineDeadline:
		return StageFallback
	case budget < refineDeadline:
		return StagePipelineDP
	case budget < ilpDeadline:
		return StageRefine
	default:
		return StageILP
	}
}

// stagesFrom drops the ladder rungs above start, keeping at least the
// last rung so every request gets some answer. Rungs are ordered by
// their Stage value (StageILP < StageRefine < StagePipelineDP <
// StageFallback). The dropped rungs come back as skipped, so
// Provenance.Stages can report why they never ran.
func stagesFrom(stages []stageDef, start Stage) (kept []stageDef, skipped []Stage) {
	for len(stages) > 1 && stages[0].stage < start {
		skipped = append(skipped, stages[0].stage)
		stages = stages[1:]
	}
	return stages, skipped
}
