package placement

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/obs"
	"pesto/internal/pipeline"
	"pesto/internal/sim"
)

// Errors reported by the degradation ladder.
var (
	// ErrDegraded marks plans produced by a fallback rung of the
	// ladder rather than the exact pipeline. It is never returned as
	// Place's error when a fallback succeeds — the plan is valid — but
	// Result.Provenance.Err() wraps it so callers can errors.Is-match
	// degraded outcomes. Replan results wrap it too: a post-failure
	// plan is by definition degraded.
	ErrDegraded = errors.New("degraded placement")
	// ErrStagePanic marks a ladder stage that panicked; the panic is
	// recovered into an error and the ladder moves on to the next rung.
	ErrStagePanic = errors.New("placement stage panicked")
	// ErrStageSkipped marks a ladder rung that never ran because
	// Options.StartStage entered the ladder below it. StageReport.Err
	// wraps it so per-stage reports distinguish "skipped by budget"
	// from "tried and failed".
	ErrStageSkipped = errors.New("placement stage skipped")
)

// Stage names one rung of the degradation ladder.
type Stage int

const (
	// StageILP is the exact pipeline: coarsen, branch-and-bound ILP,
	// warm starts and refinement (placeILP).
	StageILP Stage = iota + 1
	// StageRefine is the ILP-free pipeline: warm-start seeds, greedy
	// list-scheduling placements and hill-climbing refinement
	// (placeRefine) — also the primary pipeline for k > 2 GPUs.
	StageRefine
	// StagePipelineDP is the contiguous-split rung: the Tarnawski-style
	// dynamic program over (split point, device count) cuts the coarse
	// graph's topological order into per-device stages minimizing the
	// bottleneck stage time, then the best of that split and the
	// baseline placements wins (placePipelineDP). Much cheaper than
	// refinement, stronger than the bare baselines on deep models —
	// and, with Options.Pipeline set, the rung that plans microbatched
	// pipeline execution (see internal/pipeline).
	StagePipelineDP
	// StageFallback is the last rung: the best of the Baechi
	// heuristics, HEFT and single-GPU, simulated and picked by
	// realized makespan (placeFallback). Near-instant.
	StageFallback
	// StageReplan marks plans produced by Replan after a device
	// failure.
	StageReplan
	// StageIncremental marks plans produced by Incremental's warm
	// re-place path: a prior plan reused as a partial assignment with
	// only the dirty region re-solved.
	StageIncremental
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageILP:
		return "ilp-exact"
	case StageRefine:
		return "warm-start+refine"
	case StagePipelineDP:
		return "pipeline-dp"
	case StageFallback:
		return "heuristic-fallback"
	case StageReplan:
		return "replan"
	case StageIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// StageAttempt records one failed attempt at one rung.
type StageAttempt struct {
	Stage   Stage
	Attempt int // 1-based attempt number within the stage
	Err     error
	Elapsed time.Duration
}

// StageReport summarizes one ladder rung's fate within a single Place
// call: the wall time the rung consumed across all of its attempts and
// the error that ended it. Err is nil for the rung that produced the
// plan, wraps ErrStageSkipped for rungs Options.StartStage jumped
// over (Duration zero), and otherwise carries the rung's final
// failure.
type StageReport struct {
	Stage    Stage
	Duration time.Duration
	Err      error
	// LPSolves, LPPivots, WarmHits and WarmMisses count the LP-solver
	// work the rung performed across all of its attempts — how many
	// relaxations it solved, the simplex pivots they cost, and how
	// many of them ran from an imported basis versus cold. All zero
	// for skipped rungs and for rungs that never invoke a solver
	// (the heuristic fallback).
	LPSolves   int64
	LPPivots   int64
	WarmHits   int64
	WarmMisses int64
}

// Provenance records how a plan was obtained: the rung that produced
// it and every failed attempt before it. Callers use it to tell an
// optimal plan from a degraded one.
type Provenance struct {
	// Stage is the rung that produced the returned plan.
	Stage Stage
	// Degraded is true when a fallback rung (not the ladder's first)
	// produced the plan.
	Degraded bool
	// Attempts lists the failed attempts, in order.
	Attempts []StageAttempt
	// Stages reports every rung the ladder considered, in ladder
	// order — skipped, failed and winning alike — with per-rung wall
	// time. It answers "where did the milliseconds go" where Attempts
	// answers "what went wrong".
	Stages []StageReport
	// Incremental records the warm re-place accounting when the plan
	// came through Incremental (on both its warm and cold-fallback
	// paths); nil for ordinary cold solves.
	Incremental *IncrementalInfo
	// Pipeline records the winning (partition, schedule) pair — stage
	// layout, microbatch schedule, simulated step time, bubble
	// fraction, per-stage utilization and peak memory — when the plan
	// came through the Options.Pipeline planning regime; nil
	// otherwise.
	Pipeline *pipeline.Info
}

// Err returns nil for a non-degraded result, and otherwise an error
// wrapping ErrDegraded that describes the fallback and what the
// earlier rungs died of — errors.Is(p.Err(), ErrDegraded) is the
// degradation check.
func (p Provenance) Err() error {
	if !p.Degraded {
		return nil
	}
	var b strings.Builder
	for i, a := range p.Attempts {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%v attempt %d: %v", a.Stage, a.Attempt, a.Err)
	}
	return fmt.Errorf("%w: served by %v after [%s]", ErrDegraded, p.Stage, b.String())
}

// stageFunc is one rung's implementation.
type stageFunc func(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error)

// stageDef pairs a rung with its implementation.
type stageDef struct {
	stage Stage
	run   stageFunc
}

// Place runs the Pesto placement-and-scheduling pipeline as a
// graceful-degradation ladder:
//
//  1. the exact pipeline (coarsen → ILP branch and bound → warm starts
//     → refinement),
//  2. the ILP-free warm-start + refinement pipeline,
//  3. the best baseline heuristic (Baechi family, HEFT, single-GPU).
//
// Each rung runs under its own deadline with bounded retry/backoff
// (Options.StageRetries/StageBackoff), and panics inside a rung are
// recovered into errors — a crashing or stalling solver degrades the
// answer instead of taking the caller down. The rung that produced the
// returned plan is recorded in Result.Provenance; use
// Provenance.Err() (wrapping ErrDegraded) to detect fallbacks.
// Cancelling ctx aborts the whole ladder and returns the context
// error: caller cancellation is never degraded around.
//
// Options.DisableFallback restores the bare exact pipeline.
func Place(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(sys.GPUs()) != 2 {
		return nil, fmt.Errorf("pesto: system has %d usable GPUs: %w", len(sys.GPUs()), ErrUnsupportedSystem)
	}
	ctx, span := obs.Start(ctx, "placement.place", obs.Int("graph-nodes", int64(g.NumNodes())))
	var res *Result
	var err error
	if opts.Pipeline.Enabled() {
		// The microbatched pipeline regime is a different planning
		// problem (minimize step time over M microbatches, not
		// single-shot makespan); it runs directly, not as a ladder rung,
		// so its provenance — including the winning (partition,
		// schedule) pair — survives intact.
		res, err = placePipeline(ctx, g, sys, opts)
	} else if opts.DisableFallback {
		res, err = placeILP(ctx, g, sys, opts)
	} else {
		kept, skipped := stagesFrom([]stageDef{
			{StageILP, placeILP},
			{StageRefine, placeRefine},
			{StagePipelineDP, placePipelineDP},
			{StageFallback, placeFallback},
		}, opts.StartStage)
		res, err = runLadder(ctx, g, sys, opts, kept, skipped)
	}
	if err != nil {
		span.End(obs.String("outcome", "error"), obs.String("error", err.Error()))
		return nil, err
	}
	if verr := verifyResult(g, sys, res.Plan, opts); verr != nil {
		span.End(obs.String("outcome", "verification-failed"), obs.String("error", verr.Error()))
		return nil, verr
	}
	span.End(obs.String("outcome", "ok"),
		obs.String("stage", res.Provenance.Stage.String()),
		obs.Dur("makespan", res.SimulatedMakespan))
	return res, nil
}

// runLadder walks the stages in order until one returns a plan. Every
// attempt is panic-recovered; each gets the remaining overall budget
// (floored so the cheap fallback rungs always get a chance) and a hard
// backstop deadline at twice its nominal budget, which is what cuts a
// stalled solver loose.
func runLadder(ctx context.Context, g *graph.Graph, sys sim.System, opts Options, stages []stageDef, skipped []Stage) (*Result, error) {
	start := time.Now()
	total := opts.ILPTimeLimit
	rec := obs.From(ctx)
	var attempts []StageAttempt
	reports := make([]StageReport, 0, len(skipped)+len(stages))
	for _, s := range skipped {
		reports = append(reports, StageReport{
			Stage: s,
			Err:   fmt.Errorf("ladder entered at %v: %w", stages[0].stage, ErrStageSkipped),
		})
	}
	// Per-rung LP-solver accounting: counter snapshots around each rung
	// turn the request-wide telemetry totals into per-stage deltas.
	solverSnap := func() [4]int64 {
		return [4]int64{
			rec.Counter("lp.solves"), rec.Counter("lp.pivots"),
			rec.Counter("lp.warmstart.hits"), rec.Counter("lp.warmstart.misses"),
		}
	}
	fillSolver := func(r *StageReport, before [4]int64) {
		after := solverSnap()
		r.LPSolves = after[0] - before[0]
		r.LPPivots = after[1] - before[1]
		r.WarmHits = after[2] - before[2]
		r.WarmMisses = after[3] - before[3]
	}
	for si, st := range stages {
		budget := total - time.Since(start)
		if budget < 50*time.Millisecond {
			budget = 50 * time.Millisecond
		}
		stageStart := time.Now()
		solverBefore := solverSnap()
		var lastErr error
		for attempt := 1; attempt <= 1+opts.StageRetries; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pesto: cancelled during %v: %w", st.stage, err)
			}
			attemptStart := time.Now()
			actx, sp := obs.Start(ctx, "placement.stage",
				obs.String("stage", st.stage.String()),
				obs.Int("attempt", int64(attempt)),
				obs.Dur("budget", budget))
			res, err := runStageAttempt(actx, g, sys, opts, st, budget)
			if err == nil {
				sp.End(obs.String("outcome", "ok"))
				rep := StageReport{Stage: st.stage, Duration: time.Since(stageStart)}
				fillSolver(&rep, solverBefore)
				reports = append(reports, rep)
				res.Provenance = Provenance{Stage: st.stage, Degraded: si > 0, Attempts: attempts, Stages: reports}
				res.PlacementTime = time.Since(start)
				return res, nil
			}
			sp.End(obs.String("outcome", "failed"), obs.String("error", err.Error()))
			rec.Add("placement.stage.failures", 1)
			lastErr = err
			attempts = append(attempts, StageAttempt{
				Stage: st.stage, Attempt: attempt, Err: err, Elapsed: time.Since(attemptStart),
			})
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pesto: cancelled during %v: %w", st.stage, err)
			}
			// A stage that already ran out its deadline will do so
			// again; don't burn the next rung's budget re-proving it.
			if attempt <= opts.StageRetries && !errors.Is(err, context.DeadlineExceeded) {
				time.Sleep(opts.StageBackoff)
			} else {
				break
			}
		}
		rep := StageReport{Stage: st.stage, Duration: time.Since(stageStart), Err: lastErr}
		fillSolver(&rep, solverBefore)
		reports = append(reports, rep)
	}
	p := Provenance{Degraded: true, Attempts: attempts, Stages: reports}
	return nil, fmt.Errorf("pesto: every ladder stage failed (%w): %w", p.Err(), ErrNoPlacement)
}

// runStageAttempt runs one rung attempt under its budget, converting
// panics (a crashing solver, an injected fault) into errors.
func runStageAttempt(ctx context.Context, g *graph.Graph, sys sim.System, opts Options, st stageDef, budget time.Duration) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("stage %v: %v: %w", st.stage, r, ErrStagePanic)
		}
	}()
	if opts.StageHook != nil {
		if herr := opts.StageHook(st.stage); herr != nil {
			return nil, fmt.Errorf("stage %v: %w", st.stage, herr)
		}
	}
	// The stage plans against its share of the budget; the hard
	// backstop (2× budget plus slack) only fires when the stage stalls
	// past its own internal deadline discipline.
	stageOpts := opts
	stageOpts.ILPTimeLimit = budget
	sctx, cancel := context.WithDeadline(ctx, time.Now().Add(2*budget+250*time.Millisecond))
	defer cancel()
	return st.run(sctx, g, sys, stageOpts)
}

// placeFallback is the ladder's last rung: every baseline strategy the
// repository implements, realized on the simulator, best makespan
// wins. It needs no solver, no search budget and no luck — some plan
// always comes back for any system with at least one healthy GPU.
func placeFallback(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pesto fallback: %w", err)
	}
	type namedPlan struct {
		name string
		plan sim.Plan
		err  error
	}
	var cands []namedPlan
	if bp, h, _, berr := baselines.BestBaechi(g, sys); berr == nil {
		cands = append(cands, namedPlan{name: "baechi-" + h.String(), plan: bp})
	}
	if hp, herr := baselines.HEFT(g, sys); herr == nil {
		cands = append(cands, namedPlan{name: "heft", plan: hp})
	}
	if sp, serr := baselines.SingleGPU(g, sys); serr == nil {
		cands = append(cands, namedPlan{name: "single-gpu", plan: sp})
	}
	var bestPlan sim.Plan
	var bestRes sim.Result
	bestMk := time.Duration(-1)
	for _, c := range cands {
		r, err := sim.Run(g, sys, c.plan)
		if err != nil {
			continue
		}
		if bestMk < 0 || r.Makespan < bestMk {
			bestMk, bestPlan, bestRes = r.Makespan, c.plan, r
		}
	}
	if bestMk < 0 {
		return nil, fmt.Errorf("pesto fallback: no baseline heuristic yields a feasible plan: %w", ErrNoPlacement)
	}
	if opts.ScheduleFromILP {
		ordered, err := orderPlanByStarts(g, bestPlan, bestRes.Start, len(sys.Devices))
		if err == nil {
			if _, serr := sim.Run(g, sys, ordered); serr == nil {
				bestPlan = ordered
			}
		}
	}
	return &Result{
		Plan:              bestPlan,
		ILPStatus:         ilp.NoSolutionStatus,
		PredictedMakespan: bestMk,
		SimulatedMakespan: bestMk,
		PlacementTime:     time.Since(start),
	}, nil
}
