package placement

import (
	"math"
	"testing"

	"pesto/internal/coarsen"
	"pesto/internal/gen"
	"pesto/internal/lp"
	"pesto/internal/sim"
)

// TestDifferentialRootRelaxations runs the revised simplex against the
// dense-tableau reference on the root LP relaxations of a generated
// corpus — the exact models the branch and bound solves — asserting
// objectives agree to 1e-6. Instances stay small enough for the dense
// reference to finish comfortably; the revised engine has no such
// excuse at any size.
func TestDifferentialRootRelaxations(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	sys := sim.NewSystem(2, 0)
	opts := Options{}.withDefaults()
	instances := 0
	for _, fam := range gen.Families() {
		for seed := int64(0); seed < 42; seed++ {
			g, err := gen.Generate(gen.Config{Family: fam, Seed: seed, Nodes: 12 + int(seed%5)})
			if err != nil {
				t.Fatalf("%v seed %d: %v", fam, seed, err)
			}
			cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.ILPMaxSize})
			if err != nil {
				t.Fatalf("%v seed %d: coarsen: %v", fam, seed, err)
			}
			m, err := buildModel(cres.Coarse, sys, opts)
			if err != nil {
				t.Fatalf("%v seed %d: model: %v", fam, seed, err)
			}
			instances++
			rsol, rerr := lp.Solve(m.lp)
			dsol, derr := lp.SolveDense(m.lp)
			if dsol.Status != lp.Optimal {
				t.Fatalf("%v seed %d: dense reference %v (%v)", fam, seed, dsol.Status, derr)
			}
			if rsol.Status != lp.Optimal {
				t.Fatalf("%v seed %d: revised %v (%v), dense optimal", fam, seed, rsol.Status, rerr)
			}
			if math.Abs(rsol.Objective-dsol.Objective) > 1e-6 {
				t.Fatalf("%v seed %d: root relaxation mismatch: revised %.12g dense %.12g",
					fam, seed, rsol.Objective, dsol.Objective)
			}
		}
	}
	if instances < 200 {
		t.Fatalf("only %d corpus instances, want >= 200", instances)
	}
}

// TestGroupModelMatchesPerOp cross-checks the two ILP formulations on
// colocation-heavy graphs: the group-level model (one placement binary
// per colocation group) and the PerOpModel ablation (per-op binaries
// tied by equality rows) must agree on the root relaxation — the group
// model is a presolved reformulation, not a different problem.
// Congestion is disabled because the top-K comm selection differs
// between the two (same-group comm vertices occupy per-op slots), and
// objectives are compared denormalized: each model normalizes by its
// own horizon, which for the per-op model includes same-group comm
// costs the group model never materializes.
func TestGroupModelMatchesPerOp(t *testing.T) {
	sys := sim.NewSystem(2, 0)
	for seed := int64(0); seed < 12; seed++ {
		g, err := gen.Generate(gen.Config{Family: gen.ColocHeavy, Seed: seed, Nodes: 18})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := coarsen.Coarsen(g, coarsen.Options{Target: 48})
		if err != nil {
			t.Fatal(err)
		}
		grpOpts := Options{}.withDefaults()
		grpOpts.DisableCongestion = true
		opOpts := grpOpts
		opOpts.PerOpModel = true
		gm, err := buildModel(cres.Coarse, sys, grpOpts)
		if err != nil {
			t.Fatal(err)
		}
		om, err := buildModel(cres.Coarse, sys, opOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(gm.xGroups) > len(om.xGroups) {
			t.Fatalf("seed %d: group model has more placement vars (%d) than per-op (%d)",
				seed, len(gm.xGroups), len(om.xGroups))
		}
		if gm.lp.NumVars() >= om.lp.NumVars() && len(gm.xGroups) < len(om.xGroups) {
			t.Fatalf("seed %d: grouping merged binaries (%d < %d) but did not shrink the model (%d vs %d vars)",
				seed, len(gm.xGroups), len(om.xGroups), gm.lp.NumVars(), om.lp.NumVars())
		}
		gsol, gerr := lp.Solve(gm.lp)
		osol, oerr := lp.Solve(om.lp)
		if gerr != nil || oerr != nil || gsol.Status != lp.Optimal || osol.Status != lp.Optimal {
			t.Fatalf("seed %d: group %v/%v per-op %v/%v", seed, gsol.Status, gerr, osol.Status, oerr)
		}
		gObj := gsol.Objective * float64(gm.horizon)
		oObj := osol.Objective * float64(om.horizon)
		denom := math.Max(math.Abs(oObj), 1)
		if math.Abs(gObj-oObj)/denom > 1e-6 {
			t.Fatalf("seed %d: group relaxation %.12g != per-op %.12g (denormalized ns)",
				seed, gObj, oObj)
		}
	}
}
