package placement

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ReplanArrival is the scale-up mirror of Replan: a new (or recovered)
// GPU joins the system and the running plan is rebalanced onto it.
// Where Replan evicts everything off a dead device, ReplanArrival
// migrates the heaviest eviction units (colocation groups wholesale,
// then singles, by compute cost) off the most-loaded survivors onto
// the arrival until its share reaches the balanced load, then
// re-optimizes the result with the refinement machinery — the migrated
// vector seeds the search exactly as in the failure path. The returned
// plan passes Validate and CheckMemory against sys with the arrival
// healthy.
//
// The arrived device must be a healthy GPU in sys (ErrUnsupportedSystem
// otherwise), and plan must be valid for sys — typically a plan
// computed while the device was failed, which a valid plan then simply
// does not use. RecoveryDelta is Makespan - PrevMakespan and is
// normally negative: the arrival buys speedup. Provenance carries
// StageReplan but not Degraded — scale-up is an improvement, not a
// fallback.
func ReplanArrival(ctx context.Context, g *graph.Graph, sys sim.System, plan sim.Plan, arrived sim.DeviceID, opts Options) (*ReplanResult, error) {
	start := time.Now()
	opts = opts.withDefaults()
	ad, ok := sys.Device(arrived)
	if !ok {
		return nil, fmt.Errorf("replan-arrival: unknown device %d: %w", arrived, sim.ErrBadPlacement)
	}
	if ad.Kind != sim.GPU {
		return nil, fmt.Errorf("replan-arrival: device %s is not a GPU: %w", ad.Name, ErrUnsupportedSystem)
	}
	if ad.Failed {
		return nil, fmt.Errorf("replan-arrival: device %s is marked failed; clear the failure before rebalancing onto it: %w", ad.Name, ErrUnsupportedSystem)
	}
	if err := plan.Validate(g, sys); err != nil {
		return nil, fmt.Errorf("replan-arrival: source plan: %w", err)
	}
	if plan.Order != nil {
		opts.ScheduleFromILP = true
	}

	var prevMk time.Duration
	if r, err := sim.Run(g, sys, plan); err == nil {
		prevMk = r.Makespan
	}

	dev, migrated := migrateOnto(g, sys, plan.Device, arrived)
	migratedPlan := sim.Plan{Device: dev, Policy: sim.PolicyFIFO}
	if err := migratedPlan.Validate(g, sys); err != nil {
		return nil, fmt.Errorf("replan-arrival: migrated plan: %w", err)
	}
	if err := migratedPlan.CheckMemory(g, sys); err != nil {
		return nil, fmt.Errorf("replan-arrival: migrated plan: %w", err)
	}

	pool := engine.New(opts.Parallel)
	sctx, cancelSearch := context.WithDeadline(ctx, start.Add(opts.ILPTimeLimit))
	defer cancelSearch()
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		return nil, fmt.Errorf("replan-arrival coarsen: %w", err)
	}
	h := &heuristic{
		cg:      cres.Coarse,
		sys:     sys,
		horizon: horizonFor(g, sys),
		opts:    opts,
		orig:    g,
		cres:    cres,
		pool:    pool,
	}
	// Both the pre-arrival incumbent and the rebalanced vector seed the
	// search: if migration was a bad idea the refiner keeps the old
	// plan, so ReplanArrival never answers worse than doing nothing.
	h.evalOriginal(plan.Device)
	h.evalOriginal(dev)
	h.evalAssign(h.projectOriginal(dev))
	h.refine(sctx)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("replan-arrival: cancelled during refinement: %w", err)
	}
	if h.bestDev == nil {
		return nil, fmt.Errorf("replan-arrival: no candidate plan simulates: %w", ErrNoPlacement)
	}
	newPlan, mk, err := finalizePlan(ctx, g, h, h.bestDev, opts, len(sys.Devices))
	if err != nil {
		return nil, fmt.Errorf("replan-arrival: %w", err)
	}
	out := &ReplanResult{
		Plan:          newPlan,
		Survivors:     sys,
		Makespan:      mk,
		PrevMakespan:  prevMk,
		Migrated:      migrated,
		PlacementTime: time.Since(start),
		Provenance:    Provenance{Stage: StageReplan},
	}
	if prevMk > 0 {
		out.RecoveryDelta = mk - prevMk
	}
	if verr := verifyResult(g, sys, out.Plan, opts); verr != nil {
		return nil, verr
	}
	return out, nil
}

// migrateOnto rebalances compute onto a newly arrived GPU: eviction
// units (colocation groups wholesale, singles otherwise) are pulled
// off the most-loaded donor GPUs, heaviest compute first, until the
// arrival's load reaches the balanced share total/k or nothing movable
// fits its memory. The walk is fully deterministic (donor load desc /
// ID asc, unit cost desc / node ID asc). Migration is best-effort —
// an arrival nothing fits onto migrates zero units and the refiner
// decides from there.
func migrateOnto(g *graph.Graph, sys sim.System, device []sim.DeviceID, arrived sim.DeviceID) ([]sim.DeviceID, int) {
	dev := append([]sim.DeviceID(nil), device...)
	gpus := sys.GPUs()

	load := make(map[sim.DeviceID]time.Duration, len(gpus))
	used := make(map[sim.DeviceID]int64, len(gpus))
	var total time.Duration
	for _, n := range g.Nodes() {
		d := dev[n.ID]
		dv, _ := sys.Device(d)
		if dv.Kind != sim.GPU {
			continue
		}
		load[d] += n.Cost
		used[d] += n.Memory
		total += n.Cost
	}
	capOf := func(d sim.DeviceID) int64 {
		dv, _ := sys.Device(d)
		if dv.Memory <= 0 {
			return math.MaxInt64
		}
		return dv.Memory
	}
	target := total / time.Duration(len(gpus))

	// Eviction units per donor device.
	type unit struct {
		ids  []graph.NodeID
		cost time.Duration
		mem  int64
	}
	byDevice := make(map[sim.DeviceID][]*unit)
	groups := make(map[string]*unit)
	for _, n := range g.Nodes() {
		d := dev[n.ID]
		if d == arrived {
			continue
		}
		if dv, _ := sys.Device(d); dv.Kind != sim.GPU || dv.Failed {
			continue
		}
		if n.Coloc != "" {
			u, ok := groups[n.Coloc]
			if !ok {
				u = &unit{}
				groups[n.Coloc] = u
				byDevice[d] = append(byDevice[d], u)
			}
			u.ids = append(u.ids, n.ID)
			u.cost += n.Cost
			u.mem += n.Memory
		} else {
			byDevice[d] = append(byDevice[d], &unit{ids: []graph.NodeID{n.ID}, cost: n.Cost, mem: n.Memory})
		}
	}
	for _, us := range byDevice {
		sort.SliceStable(us, func(i, j int) bool {
			if us[i].cost != us[j].cost {
				return us[i].cost > us[j].cost
			}
			return us[i].ids[0] < us[j].ids[0]
		})
	}

	migrated := 0
	for load[arrived] < target {
		// Heaviest donor still above the balanced share.
		donor := sim.DeviceID(-1)
		for _, d := range gpus {
			if d == arrived || len(byDevice[d]) == 0 || load[d] <= target {
				continue
			}
			if donor < 0 || load[d] > load[donor] || (load[d] == load[donor] && d < donor) {
				donor = d
			}
		}
		if donor < 0 {
			break
		}
		// Its heaviest unit that fits the arrival's memory and does not
		// swing the donor below what the arrival would rise to.
		moved := false
		for i, u := range byDevice[donor] {
			if used[arrived]+u.mem > capOf(arrived) {
				continue
			}
			if load[donor]-u.cost < load[arrived] {
				continue
			}
			for _, id := range u.ids {
				dev[id] = arrived
			}
			load[donor] -= u.cost
			used[donor] -= u.mem
			load[arrived] += u.cost
			used[arrived] += u.mem
			migrated += len(u.ids)
			byDevice[donor] = append(byDevice[donor][:i], byDevice[donor][i+1:]...)
			moved = true
			break
		}
		if !moved {
			byDevice[donor] = nil // nothing movable from this donor
		}
	}
	return dev, migrated
}
