// Package placement implements Pesto's core contribution (§3.2 of the
// paper): jointly optimal placement and scheduling of DNN operations on
// two GPUs plus a CPU, formulated as a 0-1 integer linear program over a
// communication-augmented DAG, solved after graph coarsening (§3.3).
//
// The pipeline is Place → (coarsen) → (augment) → (build ILP) →
// (branch & bound with a list-scheduling incumbent heuristic) →
// (extract & expand). On small instances the branch and bound proves
// optimality (the Theorem 3.1 regime); on larger ones the reported
// solution carries the remaining optimality gap.
package placement

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/graph"
	"pesto/internal/lp"
	"pesto/internal/sim"
)

// commKind classifies an augmentation vertex (§3.2.2 "DAG
// augmentation").
type commKind int

const (
	commGG commKind = iota + 1 // GPU→GPU: duration gated by z_k
	commCG                     // CPU→GPU: always transfers
	commGC                     // GPU→CPU: always transfers
)

// commVertex is one added vertex k with edges (i,k),(k,j) for an
// original edge (i,j).
type commVertex struct {
	kind     commKind
	from, to graph.NodeID // endpoints i, j in the coarse graph
	cost     time.Duration
}

// model is the assembled Pesto ILP for a (coarse) graph on a 2-GPU
// system, with the variable layout needed to read solutions back.
type model struct {
	g   *graph.Graph
	sys sim.System

	comms []commVertex

	// Variable indices.
	sOp   []int // start time per graph node
	sComm []int // start time per comm vertex
	cmax  int
	// xVar maps each node to its placement binary (-1 for non-GPU
	// nodes). With the group-level model (the default), every GPU node
	// in one colocation group shares a single variable, so distinct
	// entries repeat; xGroups lists each distinct placement variable
	// once, in allocation order — the model's "placement groups".
	xVar    []int
	xGroups []int
	zVar    []int // z_k per comm vertex; -1 for CG/GC (always 1)
	binary  []int

	horizon time.Duration // normalization unit
	lp      *lp.Problem
}

// buildModel augments the coarse graph with communication vertices and
// assembles the constraints (1)–(9) of the Pesto ILP plus the
// non-overlapping (10), congestion (7) and memory (8) constraint groups.
func buildModel(g *graph.Graph, sys sim.System, opts Options) (*model, error) {
	gpus := sys.GPUs()
	if len(gpus) != 2 {
		return nil, fmt.Errorf("pesto ILP: need exactly 2 GPUs, system has %d: %w", len(gpus), ErrUnsupportedSystem)
	}
	m := &model{g: g, sys: sys}

	// --- DAG augmentation: one comm vertex per cross-kind-capable edge.
	// Transfer costs come from the system's pairwise model, so link
	// overrides (hierarchical topologies) are honored.
	cpu := sys.CPUID()
	nodes := g.Nodes()
	// colocKey is the effective colocation key of a node under the
	// group-level model; the PerOpModel ablation dissolves groups back
	// into per-op variables (and per-edge comm vertices).
	colocKey := func(i graph.NodeID) string {
		if opts.PerOpModel {
			return ""
		}
		return nodes[i].Coloc
	}
	for _, e := range g.Edges() {
		fk := nodes[e.From].Kind
		tk := nodes[e.To].Kind
		fGPU := fk == graph.KindGPU
		tGPU := tk == graph.KindGPU
		switch {
		case fGPU && tGPU:
			if k := colocKey(e.From); k != "" && k == colocKey(e.To) {
				// Colocated endpoints can never be split, so the edge
				// carries no transfer and needs no comm vertex or z
				// variable; the plain-precedence loop below covers it.
				break
			}
			m.comms = append(m.comms, commVertex{
				kind: commGG, from: e.From, to: e.To,
				cost: sys.TransferTime(gpus[0], gpus[1], e.Bytes),
			})
		case !fGPU && tGPU:
			m.comms = append(m.comms, commVertex{
				kind: commCG, from: e.From, to: e.To,
				cost: sys.TransferTime(cpu, gpus[0], e.Bytes),
			})
		case fGPU && !tGPU:
			m.comms = append(m.comms, commVertex{
				kind: commGC, from: e.From, to: e.To,
				cost: sys.TransferTime(gpus[0], cpu, e.Bytes),
			})
		default:
			// CPU→CPU (incl. kernel): colocated, no comm vertex.
		}
	}

	// --- Device speeds (heterogeneous GPUs are supported: an
	// operation's duration becomes d0 + (d1-d0)·x_i, still linear).
	dev0, _ := sys.Device(gpus[0])
	dev1, _ := sys.Device(gpus[1])
	cpuDev, _ := sys.Device(sys.CPUID())
	s0, s1, sc := dev0.Speed, dev1.Speed, cpuDev.Speed
	if s0 <= 0 {
		s0 = 1
	}
	if s1 <= 0 {
		s1 = 1
	}
	if sc <= 0 {
		sc = 1
	}
	slowest := s0
	if s1 < slowest {
		slowest = s1
	}

	// --- Horizon for normalization and big-M: a serial schedule at the
	// slowest applicable speed always fits inside it.
	var h time.Duration
	for _, nd := range nodes {
		sp := sc
		if nd.Kind == graph.KindGPU {
			sp = slowest
		}
		h += time.Duration(float64(nd.Cost) / sp)
	}
	for _, cv := range m.comms {
		h += cv.cost
	}
	if h <= 0 {
		h = time.Nanosecond
	}
	m.horizon = h
	norm := func(d time.Duration) float64 { return float64(d) / float64(h) }
	const bigM = 2.0 // times are normalized to [0,1]

	// --- Variable layout.
	n := g.NumNodes()
	k := len(m.comms)
	nv := 0
	alloc := func() int { nv++; return nv - 1 }
	m.sOp = make([]int, n)
	for i := range m.sOp {
		m.sOp[i] = alloc()
	}
	m.sComm = make([]int, k)
	for i := range m.sComm {
		m.sComm[i] = alloc()
	}
	m.cmax = alloc()
	m.xVar = make([]int, n)
	var gpuNodes []graph.NodeID
	// Group-level placement variables: one binary per colocation group
	// rather than per operation (SNIPPETS' QuickP formulation, composing
	// with §3.3 coarsening). Ungrouped nodes — and every node under the
	// PerOpModel ablation — get their own variable, so a graph without
	// groups falls back to the per-op model exactly.
	xOfGroup := make(map[string]int)
	for i, nd := range nodes {
		if nd.Kind != graph.KindGPU {
			m.xVar[i] = -1
			continue
		}
		gpuNodes = append(gpuNodes, graph.NodeID(i))
		grp := colocKey(graph.NodeID(i))
		if grp != "" {
			if v, ok := xOfGroup[grp]; ok {
				m.xVar[i] = v
				continue
			}
		}
		v := alloc()
		m.xVar[i] = v
		m.xGroups = append(m.xGroups, v)
		if grp != "" {
			xOfGroup[grp] = v
		}
	}
	m.zVar = make([]int, k)
	for i, cv := range m.comms {
		if cv.kind == commGG {
			m.zVar[i] = alloc()
		} else {
			m.zVar[i] = -1
		}
	}

	// Reachability (transitive precedence) over the coarse graph: pairs
	// already ordered by precedence need no disjunctive machinery.
	reach, err := reachability(g)
	if err != nil {
		return nil, err
	}

	// δ variables come later (allocated as constraints are emitted), so
	// build the LP after we know... lp.Problem requires var count up
	// front; allocate δs now by enumerating the same pairs the emitters
	// will: easiest is to collect constraint rows first with a growable
	// variable allocator, then size the problem.
	type row struct {
		terms []lp.Term
		rel   lp.Rel
		rhs   float64
	}
	var rows []row
	add := func(terms []lp.Term, rel lp.Rel, rhs float64) {
		rows = append(rows, row{terms: terms, rel: rel, rhs: rhs})
	}

	// base(i) is the duration of i on GPU-0 (or the CPU); delta(i) is
	// the duration change when placed on GPU-1 instead.
	base := func(i graph.NodeID) float64 {
		if nodes[i].Kind == graph.KindGPU {
			return norm(time.Duration(float64(nodes[i].Cost) / s0))
		}
		return norm(time.Duration(float64(nodes[i].Cost) / sc))
	}
	delta := func(i graph.NodeID) float64 {
		if nodes[i].Kind != graph.KindGPU || s0 == s1 {
			return 0
		}
		return norm(time.Duration(float64(nodes[i].Cost)/s1)) - norm(time.Duration(float64(nodes[i].Cost)/s0))
	}
	// durTerms appends i's placement-dependent duration to a row's
	// left-hand side with the given sign and returns the adjusted
	// terms; the constant part goes to the RHS at the call site.
	durTerms := func(terms []lp.Term, i graph.NodeID, sign float64) []lp.Term {
		if d := delta(i); d != 0 {
			terms = append(terms, lp.Term{Var: m.xVar[i], Coef: sign * d})
		}
		return terms
	}
	p := base

	// (1)+(2): precedence through comm vertices; (3): Cmax bounds.
	for ci, cv := range m.comms {
		// S_i + dur_i <= S_k
		add(durTerms([]lp.Term{{Var: m.sOp[cv.from], Coef: 1}, {Var: m.sComm[ci], Coef: -1}}, cv.from, 1), lp.LE, -p(cv.from))
		// S_k + dur_k <= S_j, dur_k = z_k*p_k (GG) or p_k (CG/GC).
		if m.zVar[ci] >= 0 {
			add([]lp.Term{
				{Var: m.sComm[ci], Coef: 1},
				{Var: m.zVar[ci], Coef: norm(cv.cost)},
				{Var: m.sOp[cv.to], Coef: -1},
			}, lp.LE, 0)
		} else {
			add([]lp.Term{{Var: m.sComm[ci], Coef: 1}, {Var: m.sOp[cv.to], Coef: -1}}, lp.LE, -norm(cv.cost))
		}
	}
	hasComm := make(map[[2]graph.NodeID]bool, k)
	for _, cv := range m.comms {
		hasComm[[2]graph.NodeID{cv.from, cv.to}] = true
	}
	for _, e := range g.Edges() {
		if hasComm[[2]graph.NodeID{e.From, e.To}] {
			continue
		}
		// CPU→CPU edge: plain precedence, colocated transfer free.
		add(durTerms([]lp.Term{{Var: m.sOp[e.From], Coef: 1}, {Var: m.sOp[e.To], Coef: -1}}, e.From, 1), lp.LE, -p(e.From))
	}
	for i := 0; i < n; i++ {
		// S_i + dur_i <= Cmax.
		add(durTerms([]lp.Term{{Var: m.sOp[i], Coef: 1}, {Var: m.cmax, Coef: -1}}, graph.NodeID(i), 1), lp.LE, -p(graph.NodeID(i)))
	}

	// (5): z_k = x_i XOR x_j, linearized as four inequalities.
	for ci, cv := range m.comms {
		if m.zVar[ci] < 0 {
			continue
		}
		z, xi, xj := m.zVar[ci], m.xVar[cv.from], m.xVar[cv.to]
		add([]lp.Term{{Var: z, Coef: 1}, {Var: xi, Coef: -1}, {Var: xj, Coef: -1}}, lp.LE, 0)
		add([]lp.Term{{Var: z, Coef: -1}, {Var: xi, Coef: 1}, {Var: xj, Coef: -1}}, lp.LE, 0)
		add([]lp.Term{{Var: z, Coef: -1}, {Var: xi, Coef: -1}, {Var: xj, Coef: 1}}, lp.LE, 0)
		add([]lp.Term{{Var: z, Coef: 1}, {Var: xi, Coef: 1}, {Var: xj, Coef: 1}}, lp.LE, 2)
	}

	// Colocation: equal x within a group. Under the group-level model
	// members already share one variable, so tying rows exist only for
	// the PerOpModel ablation.
	if opts.PerOpModel {
		colocRep := make(map[string]graph.NodeID)
		for _, id := range gpuNodes {
			grp := nodes[id].Coloc
			if grp == "" {
				continue
			}
			if repID, ok := colocRep[grp]; ok {
				add([]lp.Term{{Var: m.xVar[id], Coef: 1}, {Var: m.xVar[repID], Coef: -1}}, lp.EQ, 0)
			} else {
				colocRep[grp] = id
			}
		}
	}

	// (10): non-overlap of same-device operations. Unordered pairs not
	// related by precedence get one δ binary and the gated disjunction.
	// Only the NonOverlapTopK pairs with the largest combined compute
	// time are modelled; dropped pairs make C_max optimistic but keep
	// the LP tractable (plans are re-validated in the simulator).
	var deltaVars []int
	// GPU–GPU pairs.
	for _, pair := range topPairs(gpuNodes, reach, nodes, opts.NonOverlapTopK) {
		{
			i, j := pair[0], pair[1]
			d := alloc()
			deltaVars = append(deltaVars, d)
			xi, xj := m.xVar[i], m.xVar[j]
			// Same GPU-1 (x_i=x_j=1): relax term M(2-x_i-x_j).
			// S_i >= S_j + dur_j - M δ - M(2-x_i-x_j)
			add(durTerms([]lp.Term{
				{Var: m.sOp[j], Coef: 1}, {Var: m.sOp[i], Coef: -1},
				{Var: d, Coef: -bigM}, {Var: xi, Coef: bigM}, {Var: xj, Coef: bigM},
			}, j, 1), lp.LE, -p(j)+2*bigM)
			add(durTerms([]lp.Term{
				{Var: m.sOp[i], Coef: 1}, {Var: m.sOp[j], Coef: -1},
				{Var: d, Coef: bigM}, {Var: xi, Coef: bigM}, {Var: xj, Coef: bigM},
			}, i, 1), lp.LE, -p(i)+3*bigM)
			// Same GPU-0 (x_i=x_j=0): relax term M(x_i+x_j).
			add(durTerms([]lp.Term{
				{Var: m.sOp[j], Coef: 1}, {Var: m.sOp[i], Coef: -1},
				{Var: d, Coef: -bigM}, {Var: xi, Coef: -bigM}, {Var: xj, Coef: -bigM},
			}, j, 1), lp.LE, -p(j))
			add(durTerms([]lp.Term{
				{Var: m.sOp[i], Coef: 1}, {Var: m.sOp[j], Coef: -1},
				{Var: d, Coef: bigM}, {Var: xi, Coef: -bigM}, {Var: xj, Coef: -bigM},
			}, i, 1), lp.LE, -p(i)+bigM)
		}
	}
	// CPU pairs (single CPU core model, incl. kernel ops).
	var cpuNodes []graph.NodeID
	for i, nd := range nodes {
		if nd.Kind == graph.KindCPU || nd.Kind == graph.KindKernel {
			cpuNodes = append(cpuNodes, graph.NodeID(i))
		}
	}
	for _, pair := range topPairs(cpuNodes, reach, nodes, opts.NonOverlapTopK) {
		{
			i, j := pair[0], pair[1]
			d := alloc()
			deltaVars = append(deltaVars, d)
			add([]lp.Term{
				{Var: m.sOp[j], Coef: 1}, {Var: m.sOp[i], Coef: -1}, {Var: d, Coef: -bigM},
			}, lp.LE, -p(j))
			add([]lp.Term{
				{Var: m.sOp[i], Coef: 1}, {Var: m.sOp[j], Coef: -1}, {Var: d, Coef: bigM},
			}, lp.LE, -p(i)+bigM)
		}
	}

	// (7): congestion — GG transfers sharing a one-way GPU link must not
	// overlap. Skip pairs ordered by precedence (producer of one
	// reaches consumer of the other); only the CongestionTopK largest
	// transfers get pairwise constraints (tiny transfers contribute no
	// meaningful congestion but quadratic LP rows).
	if !opts.DisableCongestion {
		gg := topComms(m.comms, commGG, opts.CongestionTopK)
		for ai := 0; ai < len(gg); ai++ {
			a := gg[ai]
			for bi := ai + 1; bi < len(gg); bi++ {
				b := gg[bi]
				ca, cb := m.comms[a], m.comms[b]
				if reach.reach(ca.to, cb.from) || reach.reach(cb.to, ca.from) {
					continue // transfers are precedence-ordered
				}
				d := alloc()
				deltaVars = append(deltaVars, d)
				xa, xb := m.xVar[ca.from], m.xVar[ca.to]
				xc, xd := m.xVar[cb.from], m.xVar[cb.to]
				// Direction 1→0 active iff xa=1, xb=0, xc=1, xd=0:
				// relax with M(xa+xc-xb-xd-2).
				congestion := func(sFirst, sSecond int, durSecond lp.Term, deltaCoef float64, deltaRHS float64, dir int) {
					// S_first >= S_second + dur_second - Mδ(±) + M(pattern-2)
					terms := []lp.Term{
						{Var: sSecond, Coef: 1},
						{Var: sFirst, Coef: -1},
						{Var: d, Coef: deltaCoef},
					}
					if durSecond.Coef != 0 {
						terms = append(terms, durSecond)
					}
					if dir == 0 { // traffic into GPU-0: sources x=1, dests x=0
						terms = append(terms,
							lp.Term{Var: xa, Coef: bigM}, lp.Term{Var: xc, Coef: bigM},
							lp.Term{Var: xb, Coef: -bigM}, lp.Term{Var: xd, Coef: -bigM})
						add(terms, lp.LE, deltaRHS+2*bigM)
					} else { // traffic into GPU-1: sources x=0, dests x=1
						terms = append(terms,
							lp.Term{Var: xa, Coef: -bigM}, lp.Term{Var: xc, Coef: -bigM},
							lp.Term{Var: xb, Coef: bigM}, lp.Term{Var: xd, Coef: bigM})
						add(terms, lp.LE, deltaRHS+2*bigM)
					}
				}
				for dir := 0; dir < 2; dir++ {
					// S_a >= S_b + z_b p_b - Mδ + relax
					congestion(m.sComm[a], m.sComm[b],
						lp.Term{Var: m.zVar[b], Coef: norm(cb.cost)}, -bigM, 0, dir)
					// S_b >= S_a + z_a p_a - M(1-δ) + relax
					congestion(m.sComm[b], m.sComm[a],
						lp.Term{Var: m.zVar[a], Coef: norm(ca.cost)}, bigM, bigM, dir)
				}
			}
		}
		// CG/GC transfers share the per-GPU PCIe link with others headed
		// to/from the same GPU.
		m.addHostLinkCongestion(reach, &deltaVars, alloc, add, norm, bigM, opts.CongestionTopK)
	}

	// (8): memory — hard per-GPU capacity plus the paper's balance
	// approximation.
	if !opts.DisableMemory {
		var total int64
		for _, id := range gpuNodes {
			total += nodes[id].Memory
		}
		if total > 0 {
			// Coefficients are normalized by the total footprint so the
			// memory rows share the [0,1] scale of the time rows (the
			// dense simplex tableau needs comparable row magnitudes).
			// Footprints are accumulated per placement variable first:
			// group members share one x, and one term per variable keeps
			// the row free of duplicates.
			memOf := make(map[int]int64, len(m.xGroups))
			for _, id := range gpuNodes {
				memOf[m.xVar[id]] += nodes[id].Memory
			}
			terms := make([]lp.Term, 0, len(m.xGroups))
			for _, x := range m.xGroups {
				if mem := memOf[x]; mem > 0 {
					terms = append(terms, lp.Term{Var: x, Coef: float64(mem) / float64(total)})
				}
			}
			dev0, _ := sys.Device(gpus[0])
			dev1, _ := sys.Device(gpus[1])
			// Σ m_i x_i <= cap(GPU-1).
			if dev1.Memory > 0 {
				add(append([]lp.Term(nil), terms...), lp.LE, float64(dev1.Memory)/float64(total))
			}
			// Σ m_i (1-x_i) <= cap(GPU-0)  ⇔  -Σ m_i x_i <= cap0 - total.
			if dev0.Memory > 0 {
				neg := make([]lp.Term, len(terms))
				for i, t := range terms {
					neg[i] = lp.Term{Var: t.Var, Coef: -t.Coef}
				}
				add(neg, lp.LE, float64(dev0.Memory)/float64(total)-1)
			}
			// Balance: |Σ m_i x_i - total/2| <= slack·total. Only
			// enforced when the model cannot fit a single GPU — for
			// models that fit, forcing a split would impose
			// communication for no feasibility benefit, and the
			// C_max objective already decides whether splitting pays.
			needsSplit := (dev0.Memory > 0 && total > dev0.Memory) || (dev1.Memory > 0 && total > dev1.Memory)
			// opts has been through withDefaults — the one place that
			// resolves "zero means X" for every option — so no
			// re-deriving of the default here.
			slack := opts.MemorySlack
			if needsSplit && slack < 0.5 {
				add(append([]lp.Term(nil), terms...), lp.LE, 0.5+slack)
				neg := make([]lp.Term, len(terms))
				for i, t := range terms {
					neg[i] = lp.Term{Var: t.Var, Coef: -t.Coef}
				}
				add(neg, lp.LE, -(0.5 - slack))
			}
		}
	}

	// --- Materialize the LP.
	prob := lp.NewProblem(nv)
	if err := prob.SetObjective(m.cmax, 1); err != nil {
		return nil, err
	}
	for _, s := range m.sOp {
		if err := prob.SetBounds(s, 0, math.Inf(1)); err != nil {
			return nil, err
		}
	}
	// xGroups holds each placement variable exactly once (group members
	// share an xVar entry), so no dedupe pass is needed here.
	for _, x := range m.xGroups {
		if err := prob.SetBounds(x, 0, 1); err != nil {
			return nil, err
		}
		m.binary = append(m.binary, x)
	}
	for _, z := range m.zVar {
		if z >= 0 {
			if err := prob.SetBounds(z, 0, 1); err != nil {
				return nil, err
			}
			m.binary = append(m.binary, z)
		}
	}
	for _, d := range deltaVars {
		if err := prob.SetBounds(d, 0, 1); err != nil {
			return nil, err
		}
		m.binary = append(m.binary, d)
	}
	for _, r := range rows {
		if err := prob.AddConstraint(lp.Constraint{Terms: r.terms, Rel: r.rel, RHS: r.rhs}); err != nil {
			return nil, err
		}
	}
	m.lp = prob
	return m, nil
}

// addHostLinkCongestion emits non-overlap constraints for CPU↔GPU
// transfers sharing a per-GPU PCIe direction: two CG vertices contend
// iff their consumers land on the same GPU (and similarly GC producers).
func (m *model) addHostLinkCongestion(
	reach *reachSet,
	deltaVars *[]int,
	alloc func() int,
	add func([]lp.Term, lp.Rel, float64),
	norm func(time.Duration) float64,
	bigM float64,
	topK int,
) {
	for _, ka := range []commKind{commCG, commGC} {
		sel := topComms(m.comms, ka, topK)
		m.hostLinkPairs(sel, ka, reach, deltaVars, alloc, add, norm, bigM)
	}
}

// hostLinkPairs emits the gated non-overlap constraints among one kind
// of host-link transfer.
func (m *model) hostLinkPairs(
	sel []int,
	ka commKind,
	reach *reachSet,
	deltaVars *[]int,
	alloc func() int,
	add func([]lp.Term, lp.Rel, float64),
	norm func(time.Duration) float64,
	bigM float64,
) {
	for ai := 0; ai < len(sel); ai++ {
		a := sel[ai]
		for bi := ai + 1; bi < len(sel); bi++ {
			b := sel[bi]
			ca, cb := m.comms[a], m.comms[b]
			if reach.reach(ca.to, cb.from) || reach.reach(cb.to, ca.from) {
				continue
			}
			// The GPU endpoint determines the link.
			ga, gb := ca.to, cb.to
			if ka == commGC {
				ga, gb = ca.from, cb.from
			}
			xa, xb := m.xVar[ga], m.xVar[gb]
			d := alloc()
			*deltaVars = append(*deltaVars, d)
			for dir := 0; dir < 2; dir++ {
				// Same-GPU gate: dir 0 relaxes by M(xa+xb), dir 1 by
				// M(2-xa-xb).
				gate := func(terms []lp.Term, rhs float64) {
					if dir == 0 {
						terms = append(terms, lp.Term{Var: xa, Coef: -bigM}, lp.Term{Var: xb, Coef: -bigM})
						add(terms, lp.LE, rhs)
					} else {
						terms = append(terms, lp.Term{Var: xa, Coef: bigM}, lp.Term{Var: xb, Coef: bigM})
						add(terms, lp.LE, rhs+2*bigM)
					}
				}
				gate([]lp.Term{
					{Var: m.sComm[b], Coef: 1}, {Var: m.sComm[a], Coef: -1}, {Var: d, Coef: -bigM},
				}, -norm(cb.cost))
				gate([]lp.Term{
					{Var: m.sComm[a], Coef: 1}, {Var: m.sComm[b], Coef: -1}, {Var: d, Coef: bigM},
				}, -norm(ca.cost)+bigM)
			}
		}
	}
}

// reachSet is a bitset transitive-closure over a small graph.
type reachSet struct {
	n    int
	bits []uint64 // n rows of ceil(n/64) words
	w    int
}

func reachability(g *graph.Graph) (*reachSet, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	w := (n + 63) / 64
	r := &reachSet{n: n, w: w, bits: make([]uint64, n*w)}
	// Process in reverse topological order: reach(v) = {v} ∪ reach(succ).
	for i := len(order) - 1; i >= 0; i-- {
		v := int(order[i])
		row := r.bits[v*w : (v+1)*w]
		row[v/64] |= 1 << (uint(v) % 64)
		for _, e := range g.Succ(order[i]) {
			src := r.bits[int(e.To)*w : (int(e.To)+1)*w]
			for j := 0; j < w; j++ {
				row[j] |= src[j]
			}
		}
	}
	return r, nil
}

// reach reports whether v is reachable from u (inclusive of u==v).
func (r *reachSet) reach(u, v graph.NodeID) bool {
	return r.bits[int(u)*r.w+int(v)/64]&(1<<(uint(v)%64)) != 0
}

// ordered reports whether u and v are related by precedence either way.
func (r *reachSet) ordered(u, v graph.NodeID) bool {
	return r.reach(u, v) || r.reach(v, u)
}

// topPairs enumerates unordered, precedence-unrelated pairs of the
// given nodes and keeps the topK with the largest combined compute
// time.
func topPairs(ids []graph.NodeID, reach *reachSet, nodes []graph.Node, topK int) [][2]graph.NodeID {
	type weighted struct {
		pair [2]graph.NodeID
		w    time.Duration
	}
	var all []weighted
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			i, j := ids[a], ids[b]
			if reach.ordered(i, j) {
				continue
			}
			all = append(all, weighted{pair: [2]graph.NodeID{i, j}, w: nodes[i].Cost + nodes[j].Cost})
		}
	}
	sort.Slice(all, func(x, y int) bool {
		if all[x].w != all[y].w {
			return all[x].w > all[y].w
		}
		if all[x].pair[0] != all[y].pair[0] {
			return all[x].pair[0] < all[y].pair[0]
		}
		return all[x].pair[1] < all[y].pair[1]
	})
	if len(all) > topK {
		all = all[:topK]
	}
	out := make([][2]graph.NodeID, len(all))
	for i, w := range all {
		out[i] = w.pair
	}
	return out
}

// topComms returns the indices of the topK most expensive comm vertices
// of one kind, in deterministic order.
func topComms(comms []commVertex, kind commKind, topK int) []int {
	var idx []int
	for i, cv := range comms {
		if cv.kind == kind {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if comms[idx[a]].cost != comms[idx[b]].cost {
			return comms[idx[a]].cost > comms[idx[b]].cost
		}
		return idx[a] < idx[b]
	})
	if len(idx) > topK {
		idx = idx[:topK]
	}
	sort.Ints(idx)
	return idx
}
