package placement

import (
	"errors"
	"fmt"

	"pesto/internal/graph"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

// ErrVerification marks a plan that the independent checker
// (internal/verify) rejected after placement. It always arrives wrapped
// around the specific invariant-class error, so callers can first gate
// on ErrVerification and then classify with verify.ErrAffinity,
// verify.ErrPrecedence, etc.
var ErrVerification = errors.New("placement failed verification")

// testAlwaysVerify forces verification of every produced plan
// regardless of Options.Verify. The placement test suite switches it on
// in an init func so no plan leaves the package unchecked during tests;
// production callers opt in per call via Options.Verify.
var testAlwaysVerify bool

// verifyResult re-proves a produced plan against the independent
// invariant checker when Options.Verify (or the test hook) asks for it.
// With DisableMemory the memory invariant is lifted — the caller
// explicitly ordered capacity ignored, so verifying it would reject by
// construction — while every other invariant still holds.
func verifyResult(g *graph.Graph, sys sim.System, plan sim.Plan, opts Options) error {
	if !opts.Verify && !testAlwaysVerify {
		return nil
	}
	if opts.DisableMemory {
		sys = liftMemory(sys)
	}
	if _, err := verify.Check(g, sys, plan); err != nil {
		return fmt.Errorf("%w: %w", ErrVerification, err)
	}
	return nil
}

// liftMemory clones the system with unlimited device memory (zero means
// no limit throughout the simulator and checker).
func liftMemory(sys sim.System) sim.System {
	out := sys.Clone()
	for i := range out.Devices {
		out.Devices[i].Memory = 0
	}
	return out
}
