package placement

import (
	"context"
	"errors"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

func TestReplanMigratesEverythingOffFailedDevice(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{ILPTimeLimit: 5 * time.Second, ScheduleFromILP: true})

	const failed = sim.DeviceID(2)
	onFailed := 0
	for _, d := range res.Plan.Device {
		if d == failed {
			onFailed++
		}
	}
	rr, err := Replan(context.Background(), g, sys, res.Plan, failed, Options{ILPTimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if err := rr.Plan.Validate(g, rr.Survivors); err != nil {
		t.Fatalf("replanned plan invalid: %v", err)
	}
	if err := rr.Plan.CheckMemory(g, rr.Survivors); err != nil {
		t.Fatalf("replanned plan violates memory: %v", err)
	}
	for id, d := range rr.Plan.Device {
		if d == failed {
			t.Fatalf("op %d still on failed device", id)
		}
	}
	if rr.Migrated != onFailed {
		t.Fatalf("Migrated = %d, want %d (ops on the failed device)", rr.Migrated, onFailed)
	}
	// The simulator must complete a step on the survivor system.
	step, err := sim.Run(g, rr.Survivors, rr.Plan)
	if err != nil {
		t.Fatalf("degraded step does not simulate: %v", err)
	}
	if step.Makespan != rr.Makespan {
		t.Fatalf("reported makespan %v != simulated %v", rr.Makespan, step.Makespan)
	}
	if rr.PrevMakespan <= 0 {
		t.Fatalf("PrevMakespan = %v, want the healthy step time", rr.PrevMakespan)
	}
	if rr.RecoveryDelta != rr.Makespan-rr.PrevMakespan {
		t.Fatalf("RecoveryDelta = %v, want %v", rr.RecoveryDelta, rr.Makespan-rr.PrevMakespan)
	}
	// A strictly scheduled source plan recovers to a strictly scheduled
	// plan.
	if res.Plan.Order != nil && rr.Plan.Order == nil {
		t.Fatal("replanned plan dropped the explicit schedule")
	}
	if rr.Provenance.Stage != StageReplan || !rr.Provenance.Degraded {
		t.Fatalf("provenance = %+v, want degraded %v", rr.Provenance, StageReplan)
	}
	if !errors.Is(rr.Provenance.Err(), ErrDegraded) {
		t.Fatalf("Provenance.Err() = %v, want ErrDegraded", rr.Provenance.Err())
	}
}

func TestReplanRejectsNonGPUAndUnknownDevices(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{ILPTimeLimit: 5 * time.Second})
	if _, err := Replan(context.Background(), g, sys, res.Plan, 0, Options{}); !errors.Is(err, ErrUnsupportedSystem) {
		t.Fatalf("CPU failure: err = %v, want ErrUnsupportedSystem", err)
	}
	if _, err := Replan(context.Background(), g, sys, res.Plan, 99, Options{}); !errors.Is(err, sim.ErrBadPlacement) {
		t.Fatalf("unknown device: err = %v, want ErrBadPlacement", err)
	}
}

func TestReplanNeedsASurvivingGPU(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode("a", 10*time.Microsecond))
	b := g.AddNode(gpuNode("b", 10*time.Microsecond))
	mustEdge(t, g, a, b, 1024)
	sys := sim.NewSystem(1, gpuMem)
	plan := sim.Plan{Device: []sim.DeviceID{1, 1}}
	if _, err := Replan(context.Background(), g, sys, plan, 1, Options{}); !errors.Is(err, ErrUnsupportedSystem) {
		t.Fatalf("err = %v, want ErrUnsupportedSystem", err)
	}
}

func TestReplanRejectsMigrationWithoutMemory(t *testing.T) {
	// Two GPUs of 5 MB; 2 MB ops split 2/2 (4 MB per device). Failing
	// one device would need 8 MB on the survivor: the memory constraint
	// must fail the replan with ErrOOM, not be degraded around.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Name: "op", Kind: graph.KindGPU, Cost: 10 * time.Microsecond, Memory: 2 << 20, Layer: -1})
	}
	sys := sim.NewSystem(2, 5<<20)
	plan := sim.Plan{Device: []sim.DeviceID{1, 1, 2, 2}}
	if err := plan.CheckMemory(g, sys); err != nil {
		t.Fatalf("source plan should fit: %v", err)
	}
	_, err := Replan(context.Background(), g, sys, plan, 2, Options{ILPTimeLimit: time.Second})
	if !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestReplanMultiHostMemoryAware(t *testing.T) {
	// 2 hosts × 2 GPUs of 5 MB. Ops: four 2 MB ops, one per GPU. The
	// survivors each have 3 MB free, so the single evicted op fits —
	// and must land somewhere without violating any survivor's limit.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Name: "op", Kind: graph.KindGPU, Cost: 10 * time.Microsecond, Memory: 2 << 20, Layer: -1})
	}
	sys := sim.NewMultiHostSystem(2, 2, 5<<20)
	plan := sim.Plan{Device: []sim.DeviceID{1, 2, 3, 4}}
	rr, err := Replan(context.Background(), g, sys, plan, 4, Options{ILPTimeLimit: time.Second})
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if err := rr.Plan.CheckMemory(g, rr.Survivors); err != nil {
		t.Fatalf("multi-host replan violates memory: %v", err)
	}
	for id, d := range rr.Plan.Device {
		if d == 4 {
			t.Fatalf("op %d still on failed device 4", id)
		}
	}
	if _, err := sim.Run(g, rr.Survivors, rr.Plan); err != nil {
		t.Fatalf("multi-host degraded step: %v", err)
	}

	// Saturate the survivors (two ops each on GPUs 1-3, one pair on 4 —
	// 4 MB used of 5 MB everywhere): now the eviction cannot fit.
	g2 := graph.New(8)
	for i := 0; i < 8; i++ {
		g2.AddNode(graph.Node{Name: "op", Kind: graph.KindGPU, Cost: 10 * time.Microsecond, Memory: 2 << 20, Layer: -1})
	}
	full := sim.Plan{Device: []sim.DeviceID{1, 1, 2, 2, 3, 3, 4, 4}}
	if err := full.CheckMemory(g2, sys); err != nil {
		t.Fatalf("saturated plan should fit: %v", err)
	}
	if _, err := Replan(context.Background(), g2, sys, full, 4, Options{ILPTimeLimit: time.Second}); !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM on saturated survivors", err)
	}
}

func TestReplanKeepsColocGroupsTogether(t *testing.T) {
	g := graph.New(4)
	g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Cost: 10 * time.Microsecond, Memory: 1 << 20, Coloc: "grp", Layer: -1})
	g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Cost: 10 * time.Microsecond, Memory: 1 << 20, Coloc: "grp", Layer: -1})
	g.AddNode(gpuNode("c", 10*time.Microsecond))
	g.AddNode(gpuNode("d", 10*time.Microsecond))
	sys := sim.NewSystem(3, gpuMem)
	plan := sim.Plan{Device: []sim.DeviceID{3, 3, 1, 2}}
	rr, err := Replan(context.Background(), g, sys, plan, 3, Options{ILPTimeLimit: time.Second})
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if rr.Plan.Device[0] != rr.Plan.Device[1] {
		t.Fatalf("coloc group split across %d and %d", rr.Plan.Device[0], rr.Plan.Device[1])
	}
	if err := rr.Plan.Validate(g, rr.Survivors); err != nil {
		t.Fatalf("replanned plan invalid: %v", err)
	}
}
