package placement

import (
	"context"
	"errors"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/models"
	"pesto/internal/sim"
)

func TestPlaceMultiGPUFourWay(t *testing.T) {
	// Four independent heavy pipelines: a 4-GPU placement should run
	// them in parallel, roughly 4x faster than one GPU.
	g := graph.New(16)
	var sink []graph.NodeID
	src := g.AddNode(gpuNode("src", 5*time.Microsecond))
	for p := 0; p < 4; p++ {
		prev := src
		for i := 0; i < 3; i++ {
			cur := g.AddNode(gpuNode("op", 200*time.Microsecond))
			mustEdge(t, g, prev, cur, 1<<10)
			prev = cur
		}
		sink = append(sink, prev)
	}
	out := g.AddNode(gpuNode("out", 5*time.Microsecond))
	for _, s := range sink {
		mustEdge(t, g, s, out, 1<<10)
	}

	sys4 := sim.NewSystem(4, gpuMem)
	res, err := PlaceMultiGPU(context.Background(), g, sys4, Options{
		ILPTimeLimit: 4 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		t.Fatalf("PlaceMultiGPU: %v", err)
	}
	r4, err := sim.Run(g, sys4, res.Plan)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}

	single := make([]sim.DeviceID, g.NumNodes())
	for i := range single {
		single[i] = 1
	}
	r1, err := sim.Run(g, sys4, sim.Plan{Device: single})
	if err != nil {
		t.Fatal(err)
	}
	if float64(r4.Makespan) > 0.45*float64(r1.Makespan) {
		t.Errorf("4-GPU placement %v not parallel enough vs single GPU %v", r4.Makespan, r1.Makespan)
	}
	// All four GPUs should host work.
	used := map[sim.DeviceID]bool{}
	for _, d := range res.Plan.Device {
		used[d] = true
	}
	gpuCount := 0
	for d := range used {
		if d >= 1 {
			gpuCount++
		}
	}
	if gpuCount < 3 {
		t.Errorf("only %d GPUs used: %v", gpuCount, res.Plan.Device)
	}
}

func TestPlaceMultiGPUDefersToExactFor2(t *testing.T) {
	g := graph.New(2)
	g.AddNode(gpuNode("a", 100*time.Microsecond))
	g.AddNode(gpuNode("b", 100*time.Microsecond))
	sys := sim.NewSystem(2, gpuMem)
	res, err := PlaceMultiGPU(context.Background(), g, sys, Options{CoarsenTarget: 2, ScheduleFromILP: true})
	if err != nil {
		t.Fatal(err)
	}
	// The exact path proves optimality on this trivial instance.
	if res.Gap != 0 {
		t.Errorf("gap = %g, want 0 (exact 2-GPU path)", res.Gap)
	}
}

func TestPlaceMultiGPURejectsTooFewGPUs(t *testing.T) {
	g := graph.New(1)
	g.AddNode(gpuNode("a", time.Microsecond))
	if _, err := PlaceMultiGPU(context.Background(), g, sim.NewSystem(1, gpuMem), Options{}); !errors.Is(err, ErrUnsupportedSystem) {
		t.Fatalf("err = %v, want ErrUnsupportedSystem", err)
	}
}

func TestPlaceMultiGPUModelVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	v, err := models.FindVariant("RNNLM-small")
	if err != nil {
		t.Fatal(err)
	}
	g, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(4, gpuMem)
	res, err := PlaceMultiGPU(context.Background(), g, sys, Options{
		ILPTimeLimit: 4 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := sim.Run(g, sys, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// Must not lose to the 2-GPU result by more than a sliver.
	sys2 := sim.NewSystem(2, gpuMem)
	res2, err := Place(context.Background(), g, sys2, Options{
		ILPTimeLimit: 4 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(g, sys2, res2.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r4.Makespan) > 1.1*float64(r2.Makespan) {
		t.Errorf("4 GPUs (%v) worse than 2 GPUs (%v)", r4.Makespan, r2.Makespan)
	}
}
