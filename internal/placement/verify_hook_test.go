package placement

// Every plan produced while the placement test suite runs is re-proved
// by the independent invariant checker, whether or not the individual
// test asked for Options.Verify. A planner regression that emits an
// infeasible plan therefore fails loudly in whichever test produced it,
// not just in the dedicated verification tests.
func init() {
	testAlwaysVerify = true
}
