package placement

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/coarsen"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/obs"
	"pesto/internal/pipeline"
	"pesto/internal/sim"
)

// Errors reported by Place.
var (
	// ErrUnsupportedSystem marks systems the ILP formulation does not
	// cover (it needs exactly two GPUs, the paper's primary setting;
	// §3.2.2 sketches the multi-GPU extension).
	ErrUnsupportedSystem = errors.New("unsupported system for Pesto ILP")
	// ErrNoPlacement means no feasible placement was found at all.
	ErrNoPlacement = errors.New("no feasible placement found")
)

// Options configures the Pesto placement pipeline.
type Options struct {
	// CoarsenTarget is the coarse-graph size handed to the ILP. The
	// paper coarsens to ~200 vertices for CPLEX; this repository's
	// heuristic/refinement layers default to 192 (close to the paper);
	// the exact branch and bound additionally coarsens to ILPMaxSize
	// (see DESIGN.md).
	CoarsenTarget int
	// ILPTimeLimit bounds the branch-and-bound search; zero means 10s.
	ILPTimeLimit time.Duration
	// ILPMaxNodes bounds the number of branch-and-bound nodes explored;
	// zero defers to the solver's default. Unlike the wall-clock
	// ILPTimeLimit, a node cap truncates the search at the same point on
	// every machine, making the whole pipeline reproducible when the
	// budget, not convergence, ends the search.
	ILPMaxNodes int
	// DisableCongestion removes congestion from the planner's world
	// model — the Figure 5 ablation. The ILP drops constraint group
	// (7), and the warm-start/refinement heuristics evaluate against a
	// congestion-free, negligible-communication system (the assumptions
	// §3.2.2 attributes to prior DAG schedulers). The returned plan is
	// still meant for the real FCFS system, where its bunched transfers
	// serialize.
	DisableCongestion bool
	// DisableMemory drops the memory constraints (8).
	DisableMemory bool
	// MemorySlack is the allowed relative imbalance of the per-GPU
	// memory split; zero means 0.15.
	MemorySlack float64
	// CongestionTopK bounds the number of communication vertices that
	// receive pairwise congestion constraints (the largest transfers;
	// congestion among tiny transfers is immaterial but inflates the
	// LP quadratically). Zero means 16.
	CongestionTopK int
	// ILPMaxSize caps the coarse-graph size handed to the exact ILP;
	// graphs finer than this get a second, smaller coarsening for the
	// branch and bound while heuristics work at CoarsenTarget. Zero
	// means 48.
	ILPMaxSize int
	// NonOverlapTopK bounds the number of same-device non-overlap
	// pairs, keeping those with the largest combined compute time.
	// Dropped pairs can make the ILP's C_max optimistic; the realized
	// plan is always re-validated through the simulator. Zero means
	// 64.
	NonOverlapTopK int
	// ILPOnly disables the warm starts, the simulator-guided candidate
	// selection and the refinement, returning exactly what the branch
	// and bound produced (placement and blob schedule from the ILP's
	// start times). Used by ablations that isolate the ILP's
	// constraints — e.g. Figure 5's congestion study, where the
	// always-congestion-aware heuristics would mask the effect.
	ILPOnly bool
	// ScheduleFromILP controls whether the ILP's start times become a
	// strict per-device order (Pesto's control dependencies). When
	// false, only the placement is used and the simulator's
	// TensorFlow-like ready queue schedules operations — the fallback
	// §3.3 describes for heavily coarsened graphs.
	ScheduleFromILP bool
	// Seed seeds the deterministic parts of heuristics.
	Seed int64
	// Parallel bounds the number of worker goroutines used for
	// candidate evaluation, refinement moves and branch-and-bound LP
	// relaxations; zero means GOMAXPROCS, negative values also fall
	// back to GOMAXPROCS. The returned plan is byte-identical for a
	// fixed Seed at every Parallel value: the engine merges results in
	// submission order, so parallelism changes only the wall clock.
	Parallel int
	// StageRetries is the number of extra attempts each rung of the
	// degradation ladder gets after its first failure (panic or error),
	// with a short backoff in between; zero means 1 retry, negative
	// means none. Retries are skipped once a stage's deadline has
	// passed — re-running a deterministic timeout is wasted budget.
	StageRetries int
	// StageBackoff is the pause between retries of a failed ladder
	// stage; zero means 5ms.
	StageBackoff time.Duration
	// DisableFallback turns the degradation ladder off: Place runs the
	// exact ILP pipeline only and returns its error on failure instead
	// of degrading to the warm-start or baseline stages. Ablations and
	// tests that must observe the exact pipeline's failure use this.
	DisableFallback bool
	// StartStage skips the degradation-ladder rungs above it: Place
	// starts at the given rung instead of the exact ILP. StageRefine
	// starts at the warm-start+refinement pipeline, StageFallback goes
	// straight to the near-instant heuristics. Zero (or StageILP) runs
	// the full ladder. A plan served by the requested starting rung is
	// not Degraded — degradation is measured against what was asked
	// for, not against the full ladder. The serving layer maps
	// per-request deadlines to this field via StageForDeadline.
	// Ignored when DisableFallback is set (that flag pins the exact
	// pipeline).
	StartStage Stage
	// StageHook, when non-nil, is invoked at the start of every ladder
	// stage attempt. A non-nil return fails that attempt; a panic
	// exercises the ladder's panic recovery. It exists for fault
	// injection in tests and resilience experiments.
	StageHook func(Stage) error
	// PerOpModel is an ablation that disables the group-level ILP
	// model: every GPU operation gets its own placement binary and
	// colocation is enforced with equality rows (the pre-group
	// formulation), instead of one shared binary per colocation group.
	// The group-level default shrinks rows, columns and the binary
	// count before the solver runs; the ablation exists to measure
	// that shrinkage and to cross-check the two formulations against
	// each other.
	PerOpModel bool
	// IncrDirtyThreshold is the dirty-group fraction above which
	// Incremental abandons the warm re-place and falls back to a cold
	// solve: past it, re-solving the dirty region costs about as much
	// as solving fresh and the reuse no longer pays. Zero means 0.5;
	// negative disables the threshold (always try warm).
	IncrDirtyThreshold float64
	// IncrMaxChain bounds how many warm re-places may chain off one
	// cold solve before Incremental forces a cold refresh. Each warm
	// step inherits the previous plan, so quality drift compounds, and
	// a periodic cold solve re-anchors it. Zero means 9; negative
	// disables the bound.
	IncrMaxChain int
	// Pipeline selects the microbatched pipeline-parallel planning
	// regime (Microbatches > 0): Place cuts the coarse graph into
	// contiguous stages with the contiguous-split DP, searches GPipe
	// and 1F1B schedules over Options.Pipeline.Microbatches
	// microbatches on the simulator, and returns the stage placement
	// with the winning (partition, schedule) pair recorded in
	// Result.Provenance.Pipeline. The zero value keeps the classic
	// one-shot FIFO regime.
	Pipeline pipeline.Options
	// Verify re-proves every returned plan against the independent
	// invariant checker (internal/verify) — precedence, colocation,
	// affinity, memory, link discipline and makespan accounting — and
	// fails with an ErrVerification-wrapped error instead of returning
	// a plan that violates any of them. With DisableMemory set, the
	// memory invariant is lifted to match the caller's request. The
	// placement test suite forces this on for every plan; production
	// callers pay one extra simulation per Place/Replan call when
	// enabled.
	Verify bool
}

// withDefaults resolves every "zero means X" rule in one place — the
// engine, the experiment harness and the tests all rely on this being
// the only site that derives defaults.
func (o Options) withDefaults() Options {
	if o.CoarsenTarget <= 0 {
		o.CoarsenTarget = 192
	}
	if o.ILPTimeLimit <= 0 {
		o.ILPTimeLimit = 10 * time.Second
	}
	if o.MemorySlack <= 0 {
		o.MemorySlack = 0.15
	}
	if o.CongestionTopK <= 0 {
		o.CongestionTopK = 16
	}
	if o.ILPMaxSize <= 0 {
		o.ILPMaxSize = 48
	}
	if o.NonOverlapTopK <= 0 {
		o.NonOverlapTopK = 64
	}
	if o.StageRetries == 0 {
		o.StageRetries = 1
	} else if o.StageRetries < 0 {
		o.StageRetries = 0
	}
	if o.StageBackoff <= 0 {
		o.StageBackoff = 5 * time.Millisecond
	}
	if o.IncrDirtyThreshold == 0 {
		o.IncrDirtyThreshold = 0.5
	}
	if o.IncrMaxChain == 0 {
		o.IncrMaxChain = 9
	}
	o.Pipeline = o.Pipeline.WithDefaults()
	return o
}

// Result is the outcome of Place.
type Result struct {
	// Plan is the placement (and, with ScheduleFromILP, the schedule)
	// for the original graph.
	Plan sim.Plan
	// CoarsePlan is the same plan at coarse granularity.
	CoarsePlan sim.Plan
	// CoarseSize is the number of coarse vertices the ILP solved over.
	CoarseSize int
	// LPVars, LPRows and LPGroups record the solved model's size: LP
	// variables, constraint rows, and distinct placement binaries (one
	// per colocation group under the group-level model, one per GPU op
	// under Options.PerOpModel). They are provenance for "how big was
	// the model the solver actually saw"; zero when the winning ladder
	// rung never built an ILP.
	LPVars, LPRows, LPGroups int
	// ILPStatus, Gap and Nodes report the branch-and-bound outcome;
	// Gap == 0 with OptimalStatus is the Theorem 3.1 regime.
	ILPStatus ilp.Status
	Gap       float64
	Nodes     int
	// PredictedMakespan is the ILP's C_max (or the incumbent
	// heuristic's simulated makespan when that won). It can be
	// optimistic when non-overlap/congestion pairs were capped.
	PredictedMakespan time.Duration
	// SimulatedMakespan is the realized makespan of the returned Plan
	// on the discrete-event simulator — the value that selected it.
	SimulatedMakespan time.Duration
	// PlacementTime is the end-to-end time Place took — the paper's
	// "placement time" metric (Table 2).
	PlacementTime time.Duration
	// CoarsenIterations reports coarsening effort.
	CoarsenIterations int
	// Provenance records which rung of the degradation ladder produced
	// the plan and what every earlier attempt died of, so callers can
	// tell an optimal plan from a degraded one.
	Provenance Provenance
}

// placeILP runs the full exact Pesto pipeline on g for sys: coarsen,
// build the ILP, solve with branch and bound plus a list-scheduling
// incumbent heuristic, and expand the coarse solution to an
// original-graph plan. It is the first rung of Place's degradation
// ladder (see ladder.go); callers outside the ladder should use Place.
//
// Independent candidate evaluations — warm-start seeds, refinement
// moves, branch-and-bound LP relaxations and the final candidate
// simulations — run concurrently on an opts.Parallel-wide worker pool.
// Cancelling ctx aborts the pipeline: in-flight work stops and the
// pipeline returns the (wrapped) context error instead of a partial
// plan.
func placeILP(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if len(sys.GPUs()) != 2 {
		return nil, fmt.Errorf("pesto: system has %d GPUs: %w", len(sys.GPUs()), ErrUnsupportedSystem)
	}
	pool := engine.New(opts.Parallel)
	// The search phases (ILP + refinement) share a deadline-bound
	// context derived from the time budget, so budget exhaustion
	// cancels in-flight work instead of being polled. Caller
	// cancellation is checked against the parent ctx: a spent budget
	// is normal, a cancelled caller is an error.
	sctx, cancelSearch := context.WithDeadline(ctx, start.Add(opts.ILPTimeLimit))
	defer cancelSearch()

	rec := obs.From(ctx)

	// Two coarsening granularities (both §3.3): a fine one preserving
	// parallelism for the list-scheduling heuristics and refinement,
	// and — when the fine graph is still too large for the exact
	// branch and bound — a smaller one for the ILP, the way the paper
	// coarsens to a CPLEX-tractable ~200 vertices.
	_, coarsenSpan := obs.Start(ctx, "placement.coarsen", obs.Int("target", int64(opts.CoarsenTarget)))
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		coarsenSpan.End(obs.String("outcome", "error"))
		return nil, fmt.Errorf("pesto coarsen: %w", err)
	}
	cg := cres.Coarse

	ilpCres := cres
	if cg.NumNodes() > opts.ILPMaxSize {
		ilpCres, err = coarsen.Coarsen(g, coarsen.Options{Target: opts.ILPMaxSize})
		if err != nil {
			coarsenSpan.End(obs.String("outcome", "error"))
			return nil, fmt.Errorf("pesto coarsen (ilp level): %w", err)
		}
	}
	coarsenSpan.End(obs.Int("coarse-nodes", int64(cg.NumNodes())), obs.Int("ilp-nodes", int64(ilpCres.Coarse.NumNodes())))
	_, modelSpan := obs.Start(ctx, "placement.model")
	m, err := buildModel(ilpCres.Coarse, sys, opts)
	if err != nil {
		modelSpan.End(obs.String("outcome", "error"))
		return nil, fmt.Errorf("pesto model: %w", err)
	}
	modelSpan.End(obs.Int("lp-vars", int64(m.lp.NumVars())), obs.Int("lp-constraints", int64(m.lp.NumConstraints())),
		obs.Int("placement-groups", int64(len(m.xGroups))))

	// Incumbent heuristic: round the relaxation's placement, repair
	// memory, list-schedule the original graph, and report the realized
	// makespan (a valid C_max upper bound: any valid schedule is a
	// feasible ILP point, §3.2.2).
	hILP := &heuristic{model: m, cg: ilpCres.Coarse, sys: sys, horizon: m.horizon, opts: opts, orig: g, cres: ilpCres, pool: pool, rec: rec}
	incumbent := hILP.tryIncumbent
	if opts.ILPOnly {
		incumbent = nil // pure branch and bound
	}
	// The time budget is split between the exact branch and bound and a
	// hill-climbing refinement at the finer granularity (single coarse-
	// node moves evaluated through the simulator), which recovers the
	// scheduling-aware quality the capped ILP may miss.
	ilpBudget := opts.ILPTimeLimit * 6 / 10
	if opts.ILPOnly {
		ilpBudget = opts.ILPTimeLimit // no refinement phase to reserve for
	}
	ictx, ilpSpan := obs.Start(sctx, "placement.ilp", obs.Dur("budget", ilpBudget))
	sol, err := ilp.Solve(ictx, ilp.Problem{LP: m.lp, Binary: m.binary}, ilp.Options{
		TimeLimit: ilpBudget,
		MaxNodes:  opts.ILPMaxNodes,
		Incumbent: incumbent,
		Pool:      pool,
	})
	ilpSpan.End(obs.String("status", sol.Status.String()),
		obs.Int("nodes", int64(sol.Nodes)), obs.F64("gap", sol.Gap))
	if err != nil && !errors.Is(err, ilp.ErrInfeasible) {
		return nil, fmt.Errorf("pesto ilp: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pesto: cancelled during ilp: %w", err)
	}
	if opts.ILPOnly {
		return finishILPOnly(g, sys, m, ilpCres, sol, opts, start)
	}
	if sol.Status == ilp.OptimalStatus || sol.Status == ilp.FeasibleStatus {
		hILP.evalAssign(m.assignmentFromX(sol.X))
	}

	// Fine-granularity seeding and refinement, inheriting the ILP
	// level's best placement.
	// List-scheduling placements (the ETF/SCT family) also warm-start
	// the search — a standard MILP technique standing in for the
	// stronger solver the paper had: whatever the greedy schedulers
	// find is a feasible ILP point, so Pesto starts from at least
	// their quality and improves from there.
	// Seeding runs on the caller's context, not the budget-bound sctx:
	// the warm starts are cheap and must produce an incumbent even when
	// the branch and bound consumed the whole time budget. Only the
	// open-ended refinement loop is cut off by the budget.
	h := &heuristic{cg: cres.Coarse, sys: sys, horizon: m.horizon, opts: opts, orig: g, cres: cres, pool: pool, rec: rec}
	_, seedSpan := obs.Start(ctx, "placement.seed")
	h.seedAssignments(ctx)
	h.seedListScheduling(ctx)
	h.seedBaselines(ctx)
	if hILP.bestDev != nil {
		h.adoptOriginal(hILP.bestDev)
	}
	seedSpan.End(obs.F64("objective", h.bestObj))
	roundsBefore := rec.Counter("placement.refine.rounds")
	_, refineSpan := obs.Start(ctx, "placement.refine")
	h.refine(sctx)
	refineSpan.End(obs.Int("rounds", rec.Counter("placement.refine.rounds")-roundsBefore),
		obs.F64("objective", h.bestObj))
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pesto: cancelled during refinement: %w", err)
	}

	res := &Result{
		CoarseSize:        cg.NumNodes(),
		LPVars:            m.lp.NumVars(),
		LPRows:            m.lp.NumConstraints(),
		LPGroups:          len(m.xGroups),
		ILPStatus:         sol.Status,
		Gap:               sol.Gap,
		Nodes:             sol.Nodes,
		CoarsenIterations: cres.Iterations,
	}

	// Collect candidate coarse plans: the ILP's solution (whose C_max
	// can be optimistic when constraint pairs were capped) and the
	// heuristic's best rounding. Every candidate is expanded to the
	// original graph twice — once with the strict blob order the coarse
	// schedule implies, and once under ready-queue FIFO scheduling (the
	// paper's §3.3 fallback "when each vertex in the final coarsened
	// graph may contain hundreds of operations ... instead employ the
	// default TensorFlow scheduling") — and the realized simulated
	// makespan decides.
	ilpSolved := sol.Status == ilp.OptimalStatus || sol.Status == ilp.FeasibleStatus
	type candidate struct {
		plan sim.Plan   // coarse plan; Order carries ILP start-time schedules
		lvl  *heuristic // granularity the plan belongs to
	}
	var candidates []candidate
	if ilpSolved {
		res.PredictedMakespan = time.Duration(sol.Objective * float64(m.horizon))
		cp, err := m.coarsePlan(m.assignmentFromX(sol.X), sol.X, true)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, candidate{plan: cp, lvl: hILP})
	}
	if h.bestDev != nil {
		if !ilpSolved {
			res.PredictedMakespan = time.Duration(h.bestObj * float64(m.horizon))
			if res.ILPStatus == ilp.NoSolutionStatus || res.ILPStatus == ilp.InfeasibleStatus {
				res.ILPStatus = ilp.FeasibleStatus
			}
		}
		// The global winner is already an original-granularity device
		// vector; wrap it as a pre-expanded candidate.
		candidates = append(candidates, candidate{plan: sim.Plan{
			Device: append([]sim.DeviceID(nil), h.bestDev...),
			Policy: sim.PolicyFIFO,
		}, lvl: nil})
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("pesto: ilp %v and no heuristic incumbent: %w", sol.Status, ErrNoPlacement)
	}

	// Enumerate all variants sequentially (cheap), then simulate them
	// concurrently. Each task is pure — its own sim.Run calls against
	// the shared read-only graph and system — and the winner is picked
	// by reducing the merged results in submission order, so the
	// chosen plan does not depend on the worker count.
	type variantCand struct {
		plan   sim.Plan
		coarse sim.Plan
	}
	var variants []variantCand
	for _, c := range candidates {
		cp := c.plan
		expanded := cp.Device
		if c.lvl != nil {
			expanded = c.lvl.expandDevices(cp.Device)
		}
		for _, v := range h.candidatePlans(expanded) {
			variants = append(variants, variantCand{plan: v, coarse: cp})
		}
		if c.lvl != nil && cp.Order != nil {
			// Strict blob order implied by the coarse ILP schedule.
			ordered, err := expand(g, c.lvl.cres, cp, true)
			if err != nil {
				return nil, err
			}
			variants = append(variants, variantCand{plan: ordered, coarse: cp})
		}
	}
	simSys := h.simSystem()
	type variantOut struct {
		plan sim.Plan
		mk   time.Duration
		ok   bool
	}
	_, candSpan := obs.Start(ctx, "placement.candidates", obs.Int("variants", int64(len(variants))))
	outs, mapErr := engine.Map(ctx, pool, len(variants), func(_ context.Context, i int) (variantOut, error) {
		cand := variants[i].plan
		if cand.Order == nil && opts.ScheduleFromILP {
			// Materialize ready-queue schedules as explicit orders
			// so downstream consumers (e.g. the runtime executor)
			// get control dependencies either way.
			r, err := sim.Run(g, simSys, cand)
			if err != nil {
				return variantOut{}, nil
			}
			oc, err := orderPlanByStarts(g, cand, r.Start, len(sys.Devices))
			if err != nil {
				return variantOut{}, nil
			}
			cand = oc
		}
		r, err := sim.Run(g, simSys, cand)
		if err != nil {
			return variantOut{}, nil
		}
		return variantOut{plan: cand, mk: r.Makespan, ok: true}, nil
	})
	candSpan.End()
	if mapErr != nil {
		return nil, fmt.Errorf("pesto: cancelled during candidate evaluation: %w", mapErr)
	}
	var bestPlan sim.Plan
	var bestCoarse sim.Plan
	bestMk := time.Duration(-1)
	for i, o := range outs {
		if o.Err != nil || !o.Value.ok {
			continue
		}
		if bestMk < 0 || o.Value.mk < bestMk {
			bestMk = o.Value.mk
			bestPlan = o.Value.plan
			bestCoarse = variants[i].coarse
		}
	}
	if bestMk < 0 {
		return nil, fmt.Errorf("pesto: no candidate plan simulates: %w", ErrNoPlacement)
	}
	if !opts.ScheduleFromILP {
		bestPlan = sim.Plan{Device: bestPlan.Device, Policy: sim.PolicyFIFO}
	}
	res.CoarsePlan = bestCoarse
	res.Plan = bestPlan
	res.SimulatedMakespan = bestMk
	res.PlacementTime = time.Since(start)
	return res, nil
}

// orderPlanByStarts attaches an explicit per-device order to a plan,
// sorted by observed start times (ties broken topologically).
func orderPlanByStarts(g *graph.Graph, plan sim.Plan, starts []time.Duration, numDevices int) (sim.Plan, error) {
	order, err := g.TopoSort()
	if err != nil {
		return sim.Plan{}, err
	}
	topoPos := make([]int, g.NumNodes())
	for i, v := range order {
		topoPos[v] = i
	}
	byDev := make(map[sim.DeviceID][]graph.NodeID)
	for i := range plan.Device {
		byDev[plan.Device[i]] = append(byDev[plan.Device[i]], graph.NodeID(i))
	}
	out := sim.Plan{Device: plan.Device, Order: make([][]graph.NodeID, numDevices)}
	for dev, ids := range byDev {
		sort.Slice(ids, func(a, b int) bool {
			if starts[ids[a]] != starts[ids[b]] {
				return starts[ids[a]] < starts[ids[b]]
			}
			return topoPos[ids[a]] < topoPos[ids[b]]
		})
		out.Order[dev] = ids
	}
	return out, nil
}

// assignmentFromX reads the coarse placement from an ILP solution
// vector.
func (m *model) assignmentFromX(x []float64) []sim.DeviceID {
	gpus := m.sys.GPUs()
	out := make([]sim.DeviceID, m.g.NumNodes())
	for i, nd := range m.g.Nodes() {
		switch nd.Kind {
		case graph.KindGPU:
			if x != nil && m.xVar[i] >= 0 && x[m.xVar[i]] >= 0.5 {
				out[i] = gpus[1]
			} else {
				out[i] = gpus[0]
			}
		default:
			out[i] = m.sys.CPUID()
		}
	}
	return out
}

// coarsePlan builds a coarse-graph plan from a device assignment. With
// fromILP and a full solution vector, the per-device order follows the
// ILP start times; otherwise the FIFO list scheduler both orders and
// validates the plan.
func (m *model) coarsePlan(assign []sim.DeviceID, x []float64, fromILP bool) (sim.Plan, error) {
	plan := sim.Plan{Device: append([]sim.DeviceID(nil), assign...)}
	if !fromILP {
		plan.Policy = sim.PolicyFIFO
		return plan, nil
	}
	type timed struct {
		id graph.NodeID
		s  float64
	}
	topoPos := make([]int, m.g.NumNodes())
	order, err := m.g.TopoSort()
	if err != nil {
		return sim.Plan{}, err
	}
	for i, v := range order {
		topoPos[v] = i
	}
	byDev := make(map[sim.DeviceID][]timed)
	for i := range assign {
		s := 0.0
		if x != nil && m.sOp[i] < len(x) {
			s = x[m.sOp[i]]
		}
		byDev[assign[i]] = append(byDev[assign[i]], timed{id: graph.NodeID(i), s: s})
	}
	plan.Order = make([][]graph.NodeID, len(m.sys.Devices))
	for dev, ts := range byDev {
		sort.Slice(ts, func(a, b int) bool {
			if ts[a].s != ts[b].s {
				return ts[a].s < ts[b].s
			}
			return topoPos[ts[a].id] < topoPos[ts[b].id]
		})
		ids := make([]graph.NodeID, len(ts))
		for i, t := range ts {
			ids[i] = t.id
		}
		plan.Order[dev] = ids
	}
	return plan, nil
}

// expand lifts a coarse plan onto the original graph.
func expand(g *graph.Graph, cres *coarsen.Result, coarse sim.Plan, withOrder bool) (sim.Plan, error) {
	plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes())}
	for orig := range plan.Device {
		plan.Device[orig] = coarse.Device[cres.CoarseOf[orig]]
	}
	if !withOrder || coarse.Order == nil {
		plan.Policy = sim.PolicyFIFO
		return plan, nil
	}
	plan.Order = make([][]graph.NodeID, len(coarse.Order))
	for dev, corder := range coarse.Order {
		for _, cid := range corder {
			plan.Order[dev] = append(plan.Order[dev], cres.Members[cid]...)
		}
	}
	return plan, nil
}

// heuristic supplies feasible incumbents to the branch and bound by
// rounding the LP relaxation's placement variables and list-scheduling
// the coarse graph through the simulator. Two ready-queue disciplines
// are tried per rounding — FIFO (the TensorFlow default) and
// cost-weighted critical-path priority (which schedules heavy ops like
// Figure 2's F and G first) — and the better schedule becomes the
// incumbent.
type heuristic struct {
	// model is set only at the ILP granularity (for x-vector interop
	// with the branch and bound); fine-granularity heuristics leave it
	// nil.
	model   *model
	cg      *graph.Graph // coarse graph at this granularity
	sys     sim.System
	horizon time.Duration // objective normalization unit
	opts    Options
	// orig and cres let the heuristic evaluate candidates on the
	// original graph: coarse-level simulation serializes whole blobs
	// and systematically overestimates split placements, which would
	// bias the search towards single-GPU plans.
	orig *graph.Graph
	cres *coarsen.Result
	prio []float64 // cost-weighted bottom levels of orig, lazy
	// pool evaluates independent candidates concurrently. Scoring is
	// pure (scoreOriginal); all best-so-far recording happens on the
	// submitting goroutine in submission order, so results are
	// identical at any worker count.
	pool *engine.Pool
	// rec is the telemetry recorder cached off the context once at
	// construction: scoreOriginal runs on worker goroutines in the
	// hottest loop, where a context lookup per call would cost more
	// than the counter itself. Nil disables recording.
	rec *obs.Recorder

	// movable, when non-nil, restricts refinement to the coarse nodes
	// marked true: only moves whose flip set touches a movable node
	// are enumerated. Incremental placement uses it to hold clean
	// groups at their inherited devices while the dirty region is
	// re-solved. Nil (the cold-solve default) means every node moves.
	movable []bool

	// Global winner at original granularity (any source: seeds, ILP
	// roundings, list-scheduling warm starts, refinement moves).
	bestDev    []sim.DeviceID
	bestObj    float64 // normalized original-graph makespan
	bestPolicy sim.SchedulePolicy

	// Refinement state at this heuristic's coarse granularity.
	coarseBest    []sim.DeviceID
	coarseBestObj float64
}

// seedCandidates builds the deterministic warm-start placements at this
// heuristic's coarse granularity: all-on-GPU-0, alternation by
// topological index (two phases), a contiguous compute-balanced split
// (the Expert shape), and a layer-contiguous split. seedAssignments
// scores them for the cold pipeline; the incremental path blends them
// onto its dirty region as extra restart basins.
func (h *heuristic) seedCandidates() [][]sim.DeviceID {
	order, err := h.cg.TopoSort()
	if err != nil {
		return nil
	}
	gpus := h.sys.GPUs()
	k := len(gpus)
	nodes := h.cg.Nodes()
	mk := func(f func(pos int, id graph.NodeID) int) []sim.DeviceID {
		assign := make([]sim.DeviceID, len(nodes))
		for pos, id := range order {
			if nodes[id].Kind == graph.KindGPU {
				assign[id] = gpus[f(pos, id)%k]
			} else {
				assign[id] = h.sys.CPUID()
			}
		}
		return assign
	}
	// Contiguous compute-balanced k-way split over the topo order.
	var total, run time.Duration
	for _, nd := range nodes {
		if nd.Kind == graph.KindGPU {
			total += nd.Cost
		}
	}
	splitAt := make(map[graph.NodeID]int, len(order))
	for _, id := range order {
		if nodes[id].Kind != graph.KindGPU {
			continue
		}
		run += nodes[id].Cost
		idx := 0
		if total > 0 {
			idx = int(int64(k) * int64(run-nodes[id].Cost/2) / int64(total+1))
		}
		if idx >= k {
			idx = k - 1
		}
		splitAt[id] = idx
	}
	maxLayer := 0
	for _, nd := range nodes {
		if nd.Layer > maxLayer {
			maxLayer = nd.Layer
		}
	}
	seeds := [][]sim.DeviceID{
		mk(func(int, graph.NodeID) int { return 0 }),
		mk(func(pos int, _ graph.NodeID) int { return pos % k }),
		mk(func(pos int, _ graph.NodeID) int { return (pos / 2) % k }),
		mk(func(_ int, id graph.NodeID) int { return splitAt[id] }),
		mk(func(_ int, id graph.NodeID) int {
			if maxLayer <= 0 {
				return 0
			}
			return nodes[id].Layer * k / (maxLayer + 1)
		}),
	}
	// The contiguous-split DP's bottleneck-optimal split (forward-only
	// cost model, matching the FIFO scoring below). Seeding it here
	// keeps the ladder monotone through the StagePipelineDP rung: the
	// refine rung starts from at least as good a basin as the DP rung
	// can serve.
	if dp := dpSplitAssign(h.cg, h.sys); dp != nil {
		seeds = append(seeds, dp)
	}
	return seeds
}

// dpSplitAssign runs the pipeline package's contiguous-split DP over
// the heuristic's coarse graph and returns the stage assignment as a
// device vector, or nil when no feasible split exists.
func dpSplitAssign(cg *graph.Graph, sys sim.System) []sim.DeviceID {
	gpus := sys.GPUs()
	var part *pipeline.Partition
	// Fewer GPU groups than GPUs (tiny coarse graphs) still deserve a
	// seed: shrink the stage count until a split exists.
	for S := len(gpus); S >= 1 && part == nil; S-- {
		if p, err := pipeline.PartitionDP(cg, sys, gpus[:S], -1); err == nil {
			part = p
		}
	}
	if part == nil {
		return nil
	}
	assign := make([]sim.DeviceID, cg.NumNodes())
	cpu := sys.CPUID()
	for i := range assign {
		assign[i] = cpu
	}
	for _, st := range part.Stages {
		for _, id := range st.Nodes {
			assign[id] = st.Device
		}
	}
	return assign
}

// seedAssignments evaluates the seedCandidates placements before any
// search runs. Each goes through colocation and memory repair and both
// schedule disciplines; the seeds are scored concurrently and recorded
// in submission order.
func (h *heuristic) seedAssignments(ctx context.Context) {
	seeds := h.seedCandidates()
	if seeds == nil {
		return
	}
	for _, assign := range seeds {
		h.repairColocAssign(assign)
		h.repairMemory(assign)
	}
	h.bottomLevels() // warm the lazy priority cache before fanning out
	expanded := make([][]sim.DeviceID, len(seeds))
	for i := range seeds {
		expanded[i] = h.expandDevices(seeds[i])
	}
	outs, err := engine.Map(ctx, h.pool, len(seeds), func(_ context.Context, i int) (scored, error) {
		return h.scoreOriginal(expanded[i]), nil
	})
	if err != nil {
		return
	}
	for i, o := range outs {
		if o.Err == nil && o.Value.ok {
			h.adoptScored(seeds[i], expanded[i], o.Value)
		}
	}
}

// seedBaselines warm-starts the search with the published baseline
// placements — the same candidate set the ladder's fallback rung would
// serve. Adopting them here makes the ladder's quality monotone by
// construction: the refine rung starts from (and hill-climbs away
// from) the best plan the fallback rung could return, so degrading a
// rung can never improve the answer. The 1000-instance differential
// sweep holds the ladder to exactly this property.
func (h *heuristic) seedBaselines(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	if bp, _, _, err := baselines.BestBaechi(h.orig, h.sys); err == nil {
		h.adoptOriginal(bp.Device)
	}
	if hp, err := baselines.HEFT(h.orig, h.sys); err == nil {
		h.adoptOriginal(hp.Device)
	}
	if sp, err := baselines.SingleGPU(h.orig, h.sys); err == nil {
		h.adoptOriginal(sp.Device)
	}
}

// seedListScheduling warm-starts the search with greedy
// earliest-start-time placements computed on the original graph (with
// and without the SCT favorite-child bias), projected to this
// granularity. The two greedy builds run concurrently; adoption is
// sequential in submission order.
func (h *heuristic) seedListScheduling(ctx context.Context) {
	simSys := h.simSystem()
	outs, err := engine.Map(ctx, h.pool, 2, func(_ context.Context, i int) ([]sim.DeviceID, error) {
		return greedyETF(h.orig, simSys, i == 1)
	})
	if err != nil {
		return
	}
	for _, o := range outs {
		if o.Err != nil {
			continue
		}
		h.adoptOriginal(o.Value)
	}
}

// greedyETF builds an earliest-task-first placement: repeatedly assign
// the ready operation that can start soonest on a memory-feasible
// device, accounting for communication from already-placed parents.
// With sct, each task's largest-tensor successor is biased towards the
// parent's device.
func greedyETF(g *graph.Graph, sys sim.System, sct bool) ([]sim.DeviceID, error) {
	gpus := sys.GPUs()
	n := g.NumNodes()
	nodes := g.Nodes()
	dev := make([]sim.DeviceID, n)
	fav := make([]graph.NodeID, n)
	for i := range fav {
		fav[i] = -1
	}
	if sct {
		for i := 0; i < n; i++ {
			var best int64 = -1
			for _, e := range g.Succ(graph.NodeID(i)) {
				if e.Bytes > best {
					best = e.Bytes
					fav[i] = e.To
				}
			}
		}
	}
	devFree := make(map[sim.DeviceID]time.Duration)
	memUsed := make(map[sim.DeviceID]int64)
	finish := make([]time.Duration, n)
	pending := make([]int, n)
	var ready []graph.NodeID
	for i := 0; i < n; i++ {
		pending[i] = g.InDegree(graph.NodeID(i))
		if pending[i] == 0 {
			ready = append(ready, graph.NodeID(i))
		}
	}
	est := func(id graph.NodeID, d sim.DeviceID) time.Duration {
		t := devFree[d]
		for _, e := range g.Pred(id) {
			arr := finish[e.From]
			if dev[e.From] != d {
				arr += sys.TransferTime(dev[e.From], d, e.Bytes)
			}
			if arr > t {
				t = arr
			}
		}
		return t
	}
	capOf := func(d sim.DeviceID) int64 {
		dv, _ := sys.Device(d)
		return dv.Memory
	}
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
		bestI := -1
		var bestDev sim.DeviceID
		bestScore := time.Duration(math.MaxInt64)
		for ri, id := range ready {
			nd := nodes[id]
			cands := gpus
			if nd.Kind != graph.KindGPU {
				cands = []sim.DeviceID{sys.CPUID()}
			}
			for _, d := range cands {
				if c := capOf(d); c > 0 && nd.Kind == graph.KindGPU && memUsed[d]+nd.Memory > c {
					continue
				}
				score := est(id, d)
				if sct {
					for _, e := range g.Pred(id) {
						if fav[e.From] == id && dev[e.From] == d {
							score -= score / 8
						}
					}
				}
				if score < bestScore {
					bestScore, bestI, bestDev = score, ri, d
				}
			}
		}
		if bestI < 0 {
			return nil, fmt.Errorf("greedy etf: no device fits any ready op: %w", sim.ErrOOM)
		}
		id := ready[bestI]
		ready = append(ready[:bestI], ready[bestI+1:]...)
		nd := nodes[id]
		startT := est(id, bestDev)
		finish[id] = startT + nd.Cost
		devFree[bestDev] = finish[id]
		dev[id] = bestDev
		if nd.Kind == graph.KindGPU {
			memUsed[bestDev] += nd.Memory
		}
		for _, e := range g.Succ(id) {
			pending[e.To]--
			if pending[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return dev, nil
}

// tryIncumbent implements ilp.Options.Incumbent. It requires the
// heuristic to be bound to the ILP model.
func (h *heuristic) tryIncumbent(relaxed []float64) ([]float64, float64, bool) {
	if h.model == nil {
		return nil, 0, false
	}
	assign := h.model.assignmentFromX(relaxed)
	h.repairColoc(assign, relaxed)
	h.repairMemory(assign)
	if _, ok := h.evalAssign(assign); !ok {
		return nil, 0, false
	}
	// Report only the objective back to the B&B for pruning; the
	// placement layer keeps the plan itself. The returned vector just
	// carries the x values so assignmentFromX could reproduce it.
	x := make([]float64, h.model.lp.NumVars())
	gpus := h.sys.GPUs()
	for i := range h.model.xVar {
		if h.model.xVar[i] >= 0 && h.coarseBest[i] == gpus[1] {
			x[h.model.xVar[i]] = 1
		}
	}
	return x, h.coarseBestObj, true
}

// scored is the outcome of scoring one device vector: its best
// normalized makespan over the schedule disciplines tried and the
// discipline that achieved it.
type scored struct {
	obj    float64
	policy sim.SchedulePolicy
	ok     bool
}

// scoreOriginal simulates an original-granularity device vector under
// both schedule disciplines and reports the better one. It never
// mutates the heuristic, so sibling scores may run concurrently —
// provided bottomLevels has been warmed first (it backs the priority
// plan and is itself lazily cached).
func (h *heuristic) scoreOriginal(dev []sim.DeviceID) scored {
	sys := h.simSystem()
	out := scored{obj: math.Inf(1)}
	for _, plan := range h.candidatePlans(dev) {
		h.rec.Add("placement.sims", 1)
		res, err := sim.Run(h.orig, sys, plan)
		if err != nil {
			continue
		}
		if o := float64(res.Makespan) / float64(h.horizon); o < out.obj {
			out.obj = o
			out.policy = plan.Policy
		}
		out.ok = true
	}
	return out
}

// recordOriginal merges one scored original-granularity vector into
// the global best. Must be called from a single goroutine, in
// submission order, so the winner is independent of worker count.
func (h *heuristic) recordOriginal(dev []sim.DeviceID, s scored) {
	if !s.ok {
		return
	}
	if h.bestDev == nil || s.obj < h.bestObj {
		h.bestDev = append([]sim.DeviceID(nil), dev...)
		h.bestObj = s.obj
		h.bestPolicy = s.policy
	}
}

// adoptScored records a scored coarse assignment (with its expansion)
// as both the original-granularity and refinement-level best when it
// improves on them.
func (h *heuristic) adoptScored(assign, expanded []sim.DeviceID, s scored) {
	if !s.ok {
		return
	}
	h.recordOriginal(expanded, s)
	if h.coarseBest == nil || s.obj < h.coarseBestObj {
		h.coarseBest = append([]sim.DeviceID(nil), assign...)
		h.coarseBestObj = s.obj
	}
}

// evalOriginal scores and records an original-granularity device
// vector sequentially. It reports the vector's own best objective.
func (h *heuristic) evalOriginal(dev []sim.DeviceID) (float64, bool) {
	s := h.scoreOriginal(dev)
	h.recordOriginal(dev, s)
	return s.obj, s.ok
}

// evalAssign expands a coarse assignment onto the original graph,
// evaluates it, and records it as the refinement starting point when it
// improves on the coarse-level best.
func (h *heuristic) evalAssign(assign []sim.DeviceID) (float64, bool) {
	expanded := h.expandDevices(assign)
	s := h.scoreOriginal(expanded)
	h.adoptScored(assign, expanded, s)
	return s.obj, s.ok
}

// adoptOriginal projects an original-graph device vector onto this
// heuristic's coarse granularity (majority compute time per coarse
// node) and evaluates it, letting a coarser level's result seed a finer
// refinement.
func (h *heuristic) adoptOriginal(devices []sim.DeviceID) {
	h.evalOriginal(devices)
	h.evalAssign(h.projectOriginal(devices))
}

// projectOriginal maps an original-graph device vector to this
// heuristic's coarse granularity: each GPU coarse node goes to the
// healthy GPU carrying the compute-time majority of its members (ties
// to the lowest device ID, so the projection is deterministic), CPU
// coarse nodes to the CPU. Members assigned to devices outside the
// healthy GPU set — e.g. a failed device during Replan — carry no
// weight, which is what migrates them.
func (h *heuristic) projectOriginal(devices []sim.DeviceID) []sim.DeviceID {
	gpus := h.sys.GPUs()
	assign := make([]sim.DeviceID, h.cg.NumNodes())
	nodes := h.orig.Nodes()
	isGPU := make(map[sim.DeviceID]bool, len(gpus))
	for _, d := range gpus {
		isGPU[d] = true
	}
	weight := make(map[sim.DeviceID]time.Duration, len(gpus))
	for c, ms := range h.cres.Members {
		kind := graph.KindCPU
		for d := range weight {
			delete(weight, d)
		}
		for _, orig := range ms {
			kind = nodes[orig].Kind
			if kind != graph.KindGPU {
				break
			}
			if isGPU[devices[orig]] {
				weight[devices[orig]] += nodes[orig].Cost + 1
			}
		}
		if kind != graph.KindGPU {
			assign[c] = h.sys.CPUID()
			continue
		}
		best := gpus[0]
		for _, d := range gpus[1:] {
			if weight[d] > weight[best] {
				best = d
			}
		}
		assign[c] = best
	}
	return assign
}

// expandDevices lifts a coarse device assignment to the original nodes.
func (h *heuristic) expandDevices(assign []sim.DeviceID) []sim.DeviceID {
	out := make([]sim.DeviceID, h.orig.NumNodes())
	for i := range out {
		out[i] = assign[h.cres.CoarseOf[i]]
	}
	return out
}

// refine hill-climbs the best assignment by flipping one coarse node
// (or one colocation group) at a time until no move helps or the
// context's deadline passes. Each round scores every single-move
// neighbour of the current assignment concurrently through the pool,
// then applies the best strictly-improving one (earliest in move order
// on ties). Because the candidate set of a round depends only on the
// current assignment — never on worker count or completion order — the
// climb visits the same sequence of assignments at any parallelism.
func (h *heuristic) refine(ctx context.Context) {
	if h.coarseBest == nil {
		return
	}
	gpus := h.sys.GPUs()
	nodes := h.cg.Nodes()
	// Group flips by colocation so groups move wholesale.
	groups := make(map[string][]graph.NodeID)
	var singles []graph.NodeID
	for _, nd := range nodes {
		if nd.Kind != graph.KindGPU {
			continue
		}
		if nd.Coloc != "" {
			groups[nd.Coloc] = append(groups[nd.Coloc], nd.ID)
		} else {
			singles = append(singles, nd.ID)
		}
	}
	// Highest-cost movers first: they change the balance the most.
	sort.Slice(singles, func(a, b int) bool {
		if nodes[singles[a]].Cost != nodes[singles[b]].Cost {
			return nodes[singles[a]].Cost > nodes[singles[b]].Cost
		}
		return singles[a] < singles[b]
	})
	moves := make([][]graph.NodeID, 0, len(singles)+len(groups))
	for _, id := range singles {
		moves = append(moves, []graph.NodeID{id})
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		moves = append(moves, groups[k])
	}
	if h.movable != nil {
		// Restricted climb: a move survives when any node it flips is
		// movable (a colocation group straddling the dirty boundary
		// must still move wholesale).
		kept := moves[:0]
		for _, mv := range moves {
			for _, id := range mv {
				if int(id) < len(h.movable) && h.movable[id] {
					kept = append(kept, mv)
					break
				}
			}
		}
		moves = kept
	}

	h.bottomLevels() // warm the lazy priority cache before fanning out

	type neighbour struct {
		assign   []sim.DeviceID
		expanded []sim.DeviceID
	}
	for {
		h.rec.Add("placement.refine.rounds", 1)
		// Enumerate every single-move neighbour of the current best.
		var cands []neighbour
		for _, mv := range moves {
			for _, target := range gpus {
				if h.coarseBest[mv[0]] == target {
					continue
				}
				cand := append([]sim.DeviceID(nil), h.coarseBest...)
				for _, id := range mv {
					cand[id] = target
				}
				cands = append(cands, neighbour{assign: cand, expanded: h.expandDevices(cand)})
			}
		}
		outs, err := engine.Map(ctx, h.pool, len(cands), func(_ context.Context, i int) (scored, error) {
			return h.scoreOriginal(cands[i].expanded), nil
		})
		if err != nil {
			return // deadline or caller cancellation: keep the best so far
		}
		// Apply the best strictly-improving neighbour, first-wins on ties.
		best := -1
		for i, o := range outs {
			if !o.Value.ok || o.Value.obj >= h.coarseBestObj-1e-12 {
				continue
			}
			if best < 0 || o.Value.obj < outs[best].Value.obj {
				best = i
			}
		}
		if best < 0 {
			return
		}
		h.adoptScored(cands[best].assign, cands[best].expanded, outs[best].Value)
	}
}

// simSystem is the world model the heuristics evaluate against: memory
// capacities are lifted when the ILP's memory constraints are disabled,
// and links become infinitely parallel when the congestion constraints
// are disabled — the planner then believes what a congestion-free ILP
// believes (the Figure 5 ablation), even though the real system still
// serializes transfers.
func (h *heuristic) simSystem() sim.System {
	sys := h.sys
	if h.opts.DisableCongestion {
		// The congestion-blind world model of prior DAG schedulers the
		// paper calls out (§3.2.2): unlimited link bandwidth AND
		// communication much faster than computation.
		sys.CongestionFree = true
		sys.Comm = sys.Comm.Scaled(1e6)
	}
	if h.opts.DisableMemory {
		sys.Devices = append([]sim.Device(nil), h.sys.Devices...)
		for i := range sys.Devices {
			sys.Devices[i].Memory = 0
		}
	}
	return sys
}

// candidatePlans returns the original-graph schedules tried for one
// expanded assignment. Without ScheduleFromILP the returned plan is
// placement-only (the simulator's ready queue schedules it), so only
// the FIFO realization is scored — evaluating a priority schedule that
// the final plan then drops would let the search pick a vector whose
// realized makespan is worse than its score, breaking the ladder's
// monotonicity against the FIFO-realized baselines.
func (h *heuristic) candidatePlans(expanded []sim.DeviceID) []sim.Plan {
	if !h.opts.ScheduleFromILP {
		return []sim.Plan{{Device: expanded, Policy: sim.PolicyFIFO}}
	}
	return []sim.Plan{
		{Device: expanded, Policy: sim.PolicyFIFO},
		{Device: expanded, Policy: sim.PolicyPriority, Priority: h.bottomLevels()},
	}
}

// bottomLevels computes (and caches) each original node's cost-weighted
// longest path to a sink, the classic list-scheduling priority.
func (h *heuristic) bottomLevels() []float64 {
	if h.prio != nil {
		return h.prio
	}
	order, err := h.orig.TopoSort()
	if err != nil {
		h.prio = make([]float64, h.orig.NumNodes())
		return h.prio
	}
	nodes := h.orig.Nodes()
	bl := make([]float64, len(nodes))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range h.orig.Succ(v) {
			if bl[e.To] > bl[v] {
				bl[v] = bl[e.To]
			}
		}
		bl[v] += float64(nodes[v].Cost)
	}
	h.prio = bl
	return bl
}

// repairColoc forces colocation groups onto one GPU (majority of the
// fractional mass). Requires the ILP model binding.
func (h *heuristic) repairColoc(assign []sim.DeviceID, relaxed []float64) {
	gpus := h.sys.GPUs()
	groupMass := make(map[string][2]float64)
	for i, nd := range h.cg.Nodes() {
		if nd.Kind != graph.KindGPU || nd.Coloc == "" || h.model.xVar[i] < 0 {
			continue
		}
		mass := groupMass[nd.Coloc]
		v := relaxed[h.model.xVar[i]]
		mass[0] += 1 - v
		mass[1] += v
		groupMass[nd.Coloc] = mass
	}
	for i, nd := range h.cg.Nodes() {
		if nd.Kind != graph.KindGPU || nd.Coloc == "" {
			continue
		}
		mass := groupMass[nd.Coloc]
		if mass[1] > mass[0] {
			assign[i] = gpus[1]
		} else {
			assign[i] = gpus[0]
		}
	}
}

// repairColocAssign forces colocation groups onto the device of the
// group's compute-time majority, for assignment-based seeds.
func (h *heuristic) repairColocAssign(assign []sim.DeviceID) {
	gpus := h.sys.GPUs()
	groupMass := make(map[string]map[sim.DeviceID]time.Duration)
	for _, nd := range h.cg.Nodes() {
		if nd.Kind != graph.KindGPU || nd.Coloc == "" {
			continue
		}
		if groupMass[nd.Coloc] == nil {
			groupMass[nd.Coloc] = make(map[sim.DeviceID]time.Duration, len(gpus))
		}
		groupMass[nd.Coloc][assign[nd.ID]] += nd.Cost + 1
	}
	winner := make(map[string]sim.DeviceID, len(groupMass))
	for grp, mass := range groupMass {
		best := gpus[0]
		for _, d := range gpus {
			if mass[d] > mass[best] {
				best = d
			}
		}
		winner[grp] = best
	}
	for _, nd := range h.cg.Nodes() {
		if nd.Kind != graph.KindGPU || nd.Coloc == "" {
			continue
		}
		assign[nd.ID] = winner[nd.Coloc]
	}
}

// repairMemory greedily moves the largest-memory movable nodes off an
// over-capacity GPU.
func (h *heuristic) repairMemory(assign []sim.DeviceID) {
	if h.opts.DisableMemory {
		return
	}
	gpus := h.sys.GPUs()
	nodes := h.cg.Nodes()
	use := map[sim.DeviceID]int64{}
	for i, nd := range nodes {
		if nd.Kind == graph.KindGPU {
			use[assign[i]] += nd.Memory
		}
	}
	for _, from := range gpus {
		dev, _ := h.sys.Device(from)
		if dev.Memory <= 0 {
			continue
		}
		leastLoaded := func() sim.DeviceID {
			to := from
			for _, g2 := range gpus {
				if g2 == from {
					continue
				}
				if to == from || use[g2] < use[to] {
					to = g2
				}
			}
			return to
		}
		for use[from] > dev.Memory {
			to := leastLoaded()
			if to == from {
				return
			}
			// Move the largest non-colocated node (coloc groups move
			// wholesale, skipped here for simplicity — groups are
			// typically small).
			bestIdx := -1
			var bestMem int64
			for i, nd := range nodes {
				if nd.Kind == graph.KindGPU && assign[i] == from && nd.Coloc == "" && nd.Memory > bestMem {
					bestMem = nd.Memory
					bestIdx = i
				}
			}
			if bestIdx < 0 {
				return // nothing movable; CheckMemory will reject
			}
			assign[bestIdx] = to
			use[from] -= bestMem
			use[to] += bestMem
		}
	}
}

// finishILPOnly extracts the plan straight from the branch-and-bound
// solution: placement from the x variables and a strict per-device
// order from the ILP start times. No heuristics intervene, so the
// result reflects the ILP's constraint set exactly (ablation mode).
func finishILPOnly(g *graph.Graph, sys sim.System, m *model, cres *coarsen.Result, sol ilp.Solution, opts Options, start time.Time) (*Result, error) {
	if sol.Status != ilp.OptimalStatus && sol.Status != ilp.FeasibleStatus {
		return nil, fmt.Errorf("pesto ilp-only: %v: %w", sol.Status, ErrNoPlacement)
	}
	res := &Result{
		CoarseSize:        cres.Coarse.NumNodes(),
		LPVars:            m.lp.NumVars(),
		LPRows:            m.lp.NumConstraints(),
		LPGroups:          len(m.xGroups),
		ILPStatus:         sol.Status,
		Gap:               sol.Gap,
		Nodes:             sol.Nodes,
		CoarsenIterations: cres.Iterations,
		PredictedMakespan: time.Duration(sol.Objective * float64(m.horizon)),
	}
	cp, err := m.coarsePlan(m.assignmentFromX(sol.X), sol.X, opts.ScheduleFromILP)
	if err != nil {
		return nil, err
	}
	res.CoarsePlan = cp
	plan, err := expand(g, cres, cp, opts.ScheduleFromILP)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	if r, err := sim.Run(g, sys, plan); err == nil {
		res.SimulatedMakespan = r.Makespan
	}
	res.PlacementTime = time.Since(start)
	return res, nil
}
