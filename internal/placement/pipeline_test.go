package placement

import (
	"context"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/pipeline"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

// TestPlacePipelineRegime is the end-to-end acceptance test of the
// Options.Pipeline planning regime on the pipeline-friendly zoo with
// M >= 4: the regime returns a StagePipelineDP result whose provenance
// carries the winning (partition, schedule) pair, whose microbatched
// step beats the single-shot FIFO baseline, and whose re-materialized
// pipeline plan passes the independent pipeline invariants.
func TestPlacePipelineRegime(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := gen.Generate(gen.PipelineConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(4, 16<<30)
		opts := Options{
			ILPTimeLimit: 2 * time.Second,
			Pipeline:     pipeline.Options{Microbatches: 4},
		}
		res, err := PlaceMultiGPU(context.Background(), g, sys, opts)
		if err != nil {
			t.Fatalf("seed %d: PlaceMultiGPU: %v", seed, err)
		}
		if res.Provenance.Stage != StagePipelineDP {
			t.Fatalf("seed %d: served by %v, want %v", seed, res.Provenance.Stage, StagePipelineDP)
		}
		info := res.Provenance.Pipeline
		if info == nil {
			t.Fatalf("seed %d: provenance carries no pipeline info", seed)
		}
		if info.Microbatches != 4 || info.Stages < 1 {
			t.Fatalf("seed %d: info = %+v", seed, info)
		}
		if info.Makespan != res.SimulatedMakespan {
			t.Errorf("seed %d: SimulatedMakespan %v != pipeline step %v", seed, res.SimulatedMakespan, info.Makespan)
		}
		if info.FIFOStep <= 0 || info.Makespan >= info.FIFOStep {
			t.Errorf("seed %d: pipeline step %v does not beat single-shot %v", seed, info.Makespan, info.FIFOStep)
		}
		if info.Bubble < 0 || info.Bubble >= 1 {
			t.Errorf("seed %d: bubble = %g out of [0, 1)", seed, info.Bubble)
		}
		// The stage placement travels as an ordinary plan for the
		// original graph.
		if verr := res.Plan.Validate(g, sys); verr != nil {
			t.Errorf("seed %d: returned plan invalid: %v", seed, verr)
		}
		// The microbatched artifact re-materializes deterministically
		// and passes the independent pipeline checker.
		pp, err := PipelinePlan(g, sys, opts)
		if err != nil {
			t.Fatalf("seed %d: PipelinePlan: %v", seed, err)
		}
		if _, verr := verify.CheckPipeline(pp.Graph, sys, pp.Sim, pp.Meta); verr != nil {
			t.Errorf("seed %d: CheckPipeline: %v", seed, verr)
		}
	}
}

// TestPlacePipelineRegimeTwoGPU covers the two-GPU Place entry point.
func TestPlacePipelineRegimeTwoGPU(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, 16<<30)
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 2 * time.Second,
		Pipeline:     pipeline.Options{Microbatches: 8, Schedule: pipeline.Schedule1F1B},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.Provenance.Stage != StagePipelineDP || res.Provenance.Pipeline == nil {
		t.Fatalf("provenance = %+v, want pipeline-dp with info", res.Provenance)
	}
	if res.Provenance.Pipeline.Schedule != "1f1b" {
		t.Errorf("schedule = %q, want pinned 1f1b", res.Provenance.Pipeline.Schedule)
	}
}

// TestPipelineDPRungMonotone: the contiguous-split rung is a true
// ladder rung — on any graph it answers at least as well as the
// heuristic fallback below it (it adopts the same baselines), and the
// refine rung above answers at least as well as it (refine seeds with
// the DP split).
func TestPipelineDPRungMonotone(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := gen.Generate(gen.PipelineConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(4, 16<<30)
		opts := Options{ILPTimeLimit: 2 * time.Second}.withDefaults()
		ctx := context.Background()
		dp, err := placePipelineDP(ctx, g, sys, opts)
		if err != nil {
			t.Fatalf("seed %d: placePipelineDP: %v", seed, err)
		}
		fb, err := placeFallback(ctx, g, sys, opts)
		if err != nil {
			t.Fatalf("seed %d: placeFallback: %v", seed, err)
		}
		if dp.SimulatedMakespan > fb.SimulatedMakespan {
			t.Errorf("seed %d: pipeline-dp %v worse than fallback %v — ladder not monotone",
				seed, dp.SimulatedMakespan, fb.SimulatedMakespan)
		}
	}
}

// TestPipelineDPRungProvenance: entering the ladder at the new rung
// serves from it, un-degraded.
func TestPipelineDPRungStartStage(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(4, 16<<30)
	res, err := PlaceMultiGPU(context.Background(), g, sys, Options{
		ILPTimeLimit: time.Second,
		StartStage:   StagePipelineDP,
	})
	if err != nil {
		t.Fatalf("PlaceMultiGPU: %v", err)
	}
	if res.Provenance.Stage != StagePipelineDP {
		t.Fatalf("served by %v, want %v", res.Provenance.Stage, StagePipelineDP)
	}
	if res.Provenance.Degraded {
		t.Fatal("requested rung marked degraded")
	}
	if res.Provenance.Pipeline != nil {
		t.Fatal("rung mode (no Options.Pipeline) attached pipeline info")
	}
}
