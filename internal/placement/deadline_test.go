package placement

import (
	"context"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/sim"
)

func TestStageForDeadline(t *testing.T) {
	cases := []struct {
		budget time.Duration
		want   Stage
	}{
		{0, StageILP},
		{-time.Second, StageILP},
		{50 * time.Millisecond, StageFallback},
		{pipelineDeadline - time.Nanosecond, StageFallback},
		{pipelineDeadline, StagePipelineDP},
		{refineDeadline - time.Nanosecond, StagePipelineDP},
		{refineDeadline, StageRefine},
		{time.Second, StageRefine},
		{ilpDeadline, StageILP},
		{time.Minute, StageILP},
	}
	for _, c := range cases {
		if got := StageForDeadline(c.budget); got != c.want {
			t.Errorf("StageForDeadline(%v) = %v, want %v", c.budget, got, c.want)
		}
	}
}

func TestStagesFrom(t *testing.T) {
	full := []stageDef{{StageILP, nil}, {StageRefine, nil}, {StageFallback, nil}}
	if got, skipped := stagesFrom(full, 0); len(got) != 3 || len(skipped) != 0 {
		t.Fatalf("StartStage zero: got %d stages (skipped %v), want 3 and none skipped", len(got), skipped)
	}
	got, skipped := stagesFrom(full, StageRefine)
	if len(got) != 2 || got[0].stage != StageRefine {
		t.Fatalf("StartStage refine: got %v", got)
	}
	if len(skipped) != 1 || skipped[0] != StageILP {
		t.Fatalf("StartStage refine: skipped %v, want [ilp-exact]", skipped)
	}
	got, skipped = stagesFrom(full, StageFallback)
	if len(got) != 1 || got[0].stage != StageFallback {
		t.Fatalf("StartStage fallback: got %v", got)
	}
	if len(skipped) != 2 || skipped[0] != StageILP || skipped[1] != StageRefine {
		t.Fatalf("StartStage fallback: skipped %v, want [ilp-exact warm-start+refine]", skipped)
	}
	// Past the last rung: keep the last rung rather than an empty ladder.
	if got, skipped := stagesFrom(full, StageReplan); len(got) != 1 || got[0].stage != StageFallback || len(skipped) != 2 {
		t.Fatalf("StartStage past end: got %v skipped %v", got, skipped)
	}
}

// TestPlaceStartStage proves StartStage actually skips rungs: a
// StageHook observes which rungs run, and the provenance records the
// starting rung as non-degraded (degradation is relative to the
// request, not the full ladder).
func TestPlaceStartStage(t *testing.T) {
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 7, Nodes: 16})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sys := sim.NewSystem(2, 16<<30)
	for _, start := range []Stage{StageRefine, StagePipelineDP, StageFallback} {
		var seen []Stage
		res, err := Place(context.Background(), g, sys, Options{
			ILPTimeLimit: 2 * time.Second,
			StartStage:   start,
			StageHook: func(s Stage) error {
				seen = append(seen, s)
				return nil
			},
		})
		if err != nil {
			t.Fatalf("Place(start=%v): %v", start, err)
		}
		for _, s := range seen {
			if s < start {
				t.Errorf("start=%v: rung %v ran despite being above the starting rung", start, s)
			}
		}
		if res.Provenance.Stage != start {
			t.Errorf("start=%v: served by %v", start, res.Provenance.Stage)
		}
		if res.Provenance.Degraded {
			t.Errorf("start=%v: plan marked degraded although the requested rung served it", start)
		}
		if perr := res.Provenance.Err(); perr != nil {
			t.Errorf("start=%v: Provenance.Err() = %v, want nil", start, perr)
		}
	}
}

// TestPlaceMultiGPUStartStage covers the k-GPU ladder (refine →
// fallback) with a fallback start.
func TestPlaceMultiGPUStartStage(t *testing.T) {
	g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: 11, Nodes: 16})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sys := sim.NewSystem(4, 16<<30)
	res, err := PlaceMultiGPU(context.Background(), g, sys, Options{
		ILPTimeLimit: time.Second,
		StartStage:   StageFallback,
	})
	if err != nil {
		t.Fatalf("PlaceMultiGPU: %v", err)
	}
	if res.Provenance.Stage != StageFallback {
		t.Fatalf("served by %v, want %v", res.Provenance.Stage, StageFallback)
	}
	if res.Provenance.Degraded {
		t.Fatal("plan marked degraded although the fallback rung was requested")
	}
}
