package placement

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/comm"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/obs"
	"pesto/internal/sim"
)

// PlaceMultiGPU extends Pesto to systems with more than two GPUs — the
// extension §3.2.2 sketches ("for 4 GPUs, the placement of operation i
// can be indicated by the pair {x_i, y_i}"). The exact ILP here covers
// the paper's primary two-GPU setting; for k > 2 GPUs this function
// runs the same pipeline with the ILP step replaced by its warm-start
// and refinement machinery generalized to k devices (seeds, greedy
// earliest-start placement, colocation/memory repair, hill climbing),
// all evaluated through the same simulator. For exactly two GPUs it
// defers to Place.
func PlaceMultiGPU(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	gpus := sys.GPUs()
	if len(gpus) == 2 {
		return Place(ctx, g, sys, opts)
	}
	if len(gpus) < 2 {
		return nil, fmt.Errorf("pesto: system has %d usable GPUs: %w", len(gpus), ErrUnsupportedSystem)
	}
	opts = opts.withDefaults()
	ctx, span := obs.Start(ctx, "placement.place",
		obs.Int("graph-nodes", int64(g.NumNodes())), obs.Int("gpus", int64(len(gpus))))
	var res *Result
	var err error
	if opts.Pipeline.Enabled() {
		// See Place: the pipeline regime bypasses the ladder so its
		// provenance survives.
		res, err = placePipeline(ctx, g, sys, opts)
	} else if opts.DisableFallback {
		res, err = placeRefine(ctx, g, sys, opts)
	} else {
		// k > 2 has no exact rung; its ladder is refine →
		// contiguous-split DP → heuristics.
		kept, skipped := stagesFrom([]stageDef{
			{StageRefine, placeRefine},
			{StagePipelineDP, placePipelineDP},
			{StageFallback, placeFallback},
		}, opts.StartStage)
		res, err = runLadder(ctx, g, sys, opts, kept, skipped)
	}
	if err != nil {
		span.End(obs.String("outcome", "error"), obs.String("error", err.Error()))
		return nil, err
	}
	if verr := verifyResult(g, sys, res.Plan, opts); verr != nil {
		span.End(obs.String("outcome", "verification-failed"), obs.String("error", verr.Error()))
		return nil, verr
	}
	span.End(obs.String("outcome", "ok"),
		obs.String("stage", res.Provenance.Stage.String()),
		obs.Dur("makespan", res.SimulatedMakespan))
	return res, nil
}

// placeRefine is the ILP-free pipeline: warm-start seeds, greedy
// list-scheduling placements, colocation/memory repair and
// hill-climbing refinement, all evaluated through the simulator. It is
// the primary pipeline for k > 2 GPUs and the middle rung of the
// two-GPU degradation ladder (it works for any k >= 1).
func placeRefine(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if len(sys.GPUs()) < 1 {
		return nil, fmt.Errorf("pesto: system has no usable GPUs: %w", ErrUnsupportedSystem)
	}

	rec := obs.From(ctx)
	_, coarsenSpan := obs.Start(ctx, "placement.coarsen", obs.Int("target", int64(opts.CoarsenTarget)))
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		coarsenSpan.End(obs.String("outcome", "error"))
		return nil, fmt.Errorf("pesto coarsen: %w", err)
	}
	coarsenSpan.End(obs.Int("coarse-nodes", int64(cres.Coarse.NumNodes())))

	pool := engine.New(opts.Parallel)
	// The warm-start and refinement phases share the ILP's time budget;
	// caller cancellation is checked separately so a cancelled caller
	// gets an error, not a half-refined plan.
	sctx, cancelSearch := context.WithDeadline(ctx, start.Add(opts.ILPTimeLimit))
	defer cancelSearch()

	h := &heuristic{
		cg:      cres.Coarse,
		sys:     sys,
		horizon: horizonFor(g, sys),
		opts:    opts,
		orig:    g,
		cres:    cres,
		pool:    pool,
		rec:     rec,
	}
	// Seeds run on the caller's context so an exhausted time budget
	// still yields an incumbent; only refinement is budget-bound.
	_, seedSpan := obs.Start(ctx, "placement.seed")
	h.seedAssignments(ctx)
	h.seedListScheduling(ctx)
	h.seedBaselines(ctx)
	seedSpan.End(obs.F64("objective", h.bestObj))
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pesto: cancelled during warm start: %w", err)
	}
	roundsBefore := rec.Counter("placement.refine.rounds")
	_, refineSpan := obs.Start(ctx, "placement.refine")
	h.refine(sctx)
	refineSpan.End(obs.Int("rounds", rec.Counter("placement.refine.rounds")-roundsBefore),
		obs.F64("objective", h.bestObj))
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pesto: cancelled during refinement: %w", err)
	}
	if h.bestDev == nil {
		return nil, fmt.Errorf("pesto multi-gpu: %w", ErrNoPlacement)
	}

	res := &Result{
		CoarseSize:        cres.Coarse.NumNodes(),
		ILPStatus:         ilp.FeasibleStatus,
		CoarsenIterations: cres.Iterations,
		PredictedMakespan: time.Duration(h.bestObj * float64(h.horizon)),
	}
	plan, mk, err := finalizePlan(ctx, g, h, h.bestDev, opts, len(sys.Devices))
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	res.SimulatedMakespan = mk
	res.CoarsePlan = sim.Plan{Device: append([]sim.DeviceID(nil), h.coarseBest...), Policy: sim.PolicyFIFO}
	res.PlacementTime = time.Since(start)
	return res, nil
}

// horizonFor is the objective normalization unit used when no ILP model
// exists: total compute plus a worst-case communication bound.
func horizonFor(g *graph.Graph, sys sim.System) time.Duration {
	h := g.TotalCost()
	for _, e := range g.Edges() {
		h += sys.Comm.Time(comm.GPUToGPU, e.Bytes)
	}
	if h <= 0 {
		h = time.Nanosecond
	}
	return h
}

// finalizePlan evaluates a device vector under both schedule policies,
// materializes an explicit order when the options ask for one, and
// returns the better plan with its simulated makespan. The candidates
// simulate concurrently; the winner is reduced in candidate order so
// the result is independent of worker count.
func finalizePlan(ctx context.Context, g *graph.Graph, h *heuristic, dev []sim.DeviceID, opts Options, numDevices int) (sim.Plan, time.Duration, error) {
	simSys := h.simSystem()
	cands := h.candidatePlans(dev)
	type finalized struct {
		plan sim.Plan
		mk   time.Duration
		ok   bool
	}
	outs, err := engine.Map(ctx, h.pool, len(cands), func(_ context.Context, i int) (finalized, error) {
		cand := cands[i]
		if cand.Order == nil && opts.ScheduleFromILP {
			r, err := sim.Run(g, simSys, cand)
			if err != nil {
				return finalized{}, nil
			}
			oc, err := orderPlanByStarts(g, cand, r.Start, numDevices)
			if err != nil {
				return finalized{}, nil
			}
			cand = oc
		}
		r, err := sim.Run(g, simSys, cand)
		if err != nil {
			return finalized{}, nil
		}
		return finalized{plan: cand, mk: r.Makespan, ok: true}, nil
	})
	if err != nil {
		return sim.Plan{}, 0, fmt.Errorf("pesto: cancelled during candidate evaluation: %w", err)
	}
	var bestPlan sim.Plan
	bestMk := time.Duration(-1)
	for _, o := range outs {
		if o.Err != nil || !o.Value.ok {
			continue
		}
		if bestMk < 0 || o.Value.mk < bestMk {
			bestMk = o.Value.mk
			bestPlan = o.Value.plan
		}
	}
	if bestMk < 0 {
		return sim.Plan{}, 0, fmt.Errorf("pesto: no candidate plan simulates: %w", ErrNoPlacement)
	}
	if !opts.ScheduleFromILP {
		bestPlan = sim.Plan{Device: bestPlan.Device, Policy: sim.PolicyFIFO}
	}
	return bestPlan, bestMk, nil
}
