package placement

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/incr"
	"pesto/internal/obs"
	"pesto/internal/sim"
)

// PriorPlacement carries the plan being reused by Incremental: the
// graph it was solved for, the plan itself, and the node map relating
// the new graph's IDs back to the prior graph's (-1 marks operations
// the edits created; nil means positional identity). ChainDepth
// counts how many warm re-places already chained off the last cold
// solve — Incremental forces a cold refresh past Options.IncrMaxChain
// so quality drift cannot compound without bound. AnchorQuality is
// the lowest makespan-over-lower-bound ratio any solve in the chain's
// history has achieved (thread IncrementalInfo.AnchorQuality forward
// to keep it); zero makes Incremental bootstrap it by simulating the
// prior plan on the prior graph.
type PriorPlacement struct {
	Graph         *graph.Graph
	Plan          sim.Plan
	NodeMap       []graph.NodeID
	ChainDepth    int
	AnchorQuality float64
}

// IncrementalInfo is the provenance of one Incremental call: how much
// of the prior plan survived and why (or whether) the warm path was
// abandoned.
type IncrementalInfo struct {
	// DirtyGroups and TotalGroups count coarse groups: dirty ones were
	// re-solved, the rest kept their inherited devices.
	DirtyGroups int
	TotalGroups int
	// ReuseFraction is 1 - DirtyGroups/TotalGroups: the share of the
	// coarse graph whose placement was frozen from the prior plan.
	ReuseFraction float64
	// ChainDepth is the warm-chain length of the returned plan: 0 for
	// a cold solve, prior depth + 1 for a warm one.
	ChainDepth int
	// AnchorQuality is the lowest quality ratio — makespan over the
	// graph's placement-independent lower bound — achieved by any
	// solve in this chain's history, cold refreshes included. Callers
	// chaining warm steps thread it into the next PriorPlacement so
	// the drift detector keeps a ratchet-free record of what quality
	// is demonstrably reachable (comparing against the previous *warm*
	// step would let drift compound one margin at a time, and the last
	// cold alone can be an unluckily poor solve that masks drift).
	AnchorQuality float64
	// ColdFallback is true when Incremental answered with a cold solve
	// instead of the warm path; FallbackReason says why.
	ColdFallback   bool
	FallbackReason string
}

// Incremental re-places an edited graph by treating the prior plan as
// a partial assignment. It diffs prior.Graph against g (under
// prior.NodeMap), closes the dirty set over coarsen groups and their
// critical-path-adjacent neighbors, confirms every remaining group
// clean via its sub-fingerprint, and then re-solves only the dirty
// region: clean groups enter the hill climb with their inherited
// devices held fixed, dirty groups are movable. The result is
// verified against the full internal/verify invariant checker before
// it is returned — on any verification failure, on a dirty fraction
// above Options.IncrDirtyThreshold, on a warm chain longer than
// Options.IncrMaxChain, or on any defect in the prior, Incremental
// falls back to a cold PlaceMultiGPU solve. Either way the returned
// Result carries Provenance.Incremental accounting.
//
// Like every placement entry point, the outcome is byte-deterministic
// for fixed inputs at any Options.Parallel value.
func Incremental(ctx context.Context, g *graph.Graph, sys sim.System, prior PriorPlacement, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	ctx, span := obs.Start(ctx, "placement.incremental",
		obs.Int("graph-nodes", int64(g.NumNodes())))

	res, err := incrementalAttempt(ctx, g, sys, prior, opts, start)
	if err != nil {
		span.End(obs.String("outcome", "error"), obs.String("error", err.Error()))
		return nil, err
	}
	info := res.Provenance.Incremental
	span.End(obs.String("outcome", "ok"),
		obs.Bool("cold-fallback", info.ColdFallback),
		obs.Int("dirty-groups", int64(info.DirtyGroups)),
		obs.F64("reuse-fraction", info.ReuseFraction))
	return res, nil
}

// incrementalAttempt runs the warm path and degrades to incrementalCold
// whenever the reuse contract cannot be met.
func incrementalAttempt(ctx context.Context, g *graph.Graph, sys sim.System, prior PriorPlacement, opts Options, start time.Time) (*Result, error) {
	if len(sys.GPUs()) < 1 {
		return nil, fmt.Errorf("pesto incremental: system has no usable GPUs: %w", ErrUnsupportedSystem)
	}
	if prior.Graph == nil {
		return incrementalCold(ctx, g, sys, opts, "no-prior", 0)
	}
	if err := prior.Plan.Validate(prior.Graph, sys); err != nil {
		return incrementalCold(ctx, g, sys, opts, "invalid-prior", 0)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pesto incremental: edited graph: %w", err)
	}
	if opts.IncrMaxChain > 0 && prior.ChainDepth >= opts.IncrMaxChain {
		return incrementalCold(ctx, g, sys, opts, "chain-refresh", prior.AnchorQuality)
	}

	diff := incr.Compare(prior.Graph, g, prior.NodeMap)
	// Edits that insert or delete operations re-solve cold. They
	// restructure the schedule globally — freed capacity or a new
	// chain can admit a plan several percent better that no climb
	// respecting the clean-group pin reaches (measured on the edit
	// traces: pinned search with every widening and restart below
	// still lands up to 8% over a fresh solve after a delete, and no
	// reference cheaper than a cold solve detects which deletes do
	// this). Weight and edge edits keep the warm path; that is where
	// locality actually holds.
	if diff.AddedNodes+diff.RemovedNodes > 0 {
		return incrementalCold(ctx, g, sys, opts, "structural-refresh", prior.AnchorQuality)
	}
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		return nil, fmt.Errorf("pesto incremental coarsen: %w", err)
	}
	total := cres.Coarse.NumNodes()

	// Dirty closure: groups touched by the diff plus critical-path
	// neighbors, then a sub-fingerprint audit of everything still
	// presumed clean — a group whose mapped prior content hashes
	// differently (or whose members don't all map) joins the dirty
	// set. The sub-fingerprints are belt and braces over the diff: an
	// undetected drift between graph versions cannot silently freeze
	// a changed group.
	dirtyGroup := make([]bool, total)
	for _, c := range incr.DirtyGroups(g, cres, diff.Dirty) {
		if int(c) < total {
			dirtyGroup[c] = true
		}
	}
	m := normalizeNodeMap(prior.Graph, g, prior.NodeMap)
	for c := 0; c < total; c++ {
		if dirtyGroup[c] {
			continue
		}
		members := cres.Members[c]
		mapped := make([]graph.NodeID, 0, len(members))
		clean := true
		for _, op := range members {
			mo := m[op]
			if mo < 0 {
				clean = false
				break
			}
			mapped = append(mapped, mo)
		}
		if !clean || coarsen.GroupFingerprint(g, members) != coarsen.GroupFingerprint(prior.Graph, mapped) {
			dirtyGroup[c] = true
		}
	}
	editDirty := 0
	for _, d := range dirtyGroup {
		if d {
			editDirty++
		}
	}
	// The locality threshold judges the *edit* footprint alone — the
	// structural widening below is a search aid, not evidence the edit
	// touched more of the graph.
	if opts.IncrDirtyThreshold > 0 && float64(editDirty) > opts.IncrDirtyThreshold*float64(total) {
		return incrementalCold(ctx, g, sys, opts, "dirty-threshold", prior.AnchorQuality)
	}
	// Every edit shifts load along the schedule's spine — a reweight
	// stretches the path itself, an edge edit reroutes it — and the
	// restricted climb around the edit site alone cannot rebalance
	// that. Widen the movable set beyond the edit's footprint, but
	// under a hard budget: the climb below costs one simulation per
	// movable group per round, so the budget is the speedup. The
	// budget spends first on the coarse critical-path groups (makespan
	// is decided there) and then on the heaviest off-path groups (a
	// busy device's load is the other thing that pins makespan). When
	// the widened climb still cannot match from-scratch quality, the
	// drift detector below catches it and the step re-solves cold —
	// the budget trades warm-step frequency for warm-step speed, never
	// quality.
	dirty := editDirty
	budget := total / 8
	if budget < 16 {
		budget = 16
	}
	if dirty > budget {
		budget = dirty
	}
	widen := func(id graph.NodeID) {
		if int(id) < total && !dirtyGroup[id] && dirty < budget {
			dirtyGroup[id] = true
			dirty++
		}
	}
	if _, cp, cperr := cres.Coarse.CriticalPath(); cperr == nil {
		for _, c := range cp {
			widen(c)
		}
	}
	cnodes := cres.Coarse.Nodes()
	heavy := make([]graph.NodeID, 0, total)
	for _, nd := range cnodes {
		if nd.Kind == graph.KindGPU {
			heavy = append(heavy, nd.ID)
		}
	}
	sort.Slice(heavy, func(a, b int) bool {
		if cnodes[heavy[a]].Cost != cnodes[heavy[b]].Cost {
			return cnodes[heavy[a]].Cost > cnodes[heavy[b]].Cost
		}
		return heavy[a] < heavy[b]
	})
	for _, id := range heavy {
		widen(id)
	}
	info := &IncrementalInfo{
		DirtyGroups:   dirty,
		TotalGroups:   total,
		ReuseFraction: 1 - float64(dirty)/float64(max(total, 1)),
		ChainDepth:    prior.ChainDepth + 1,
	}

	// Warm search: the inherited device vector seeds the climb and
	// only dirty groups may move. No full seed sweep, no unrestricted
	// refinement — the restricted neighbourhood is where the speedup
	// comes from.
	rec := obs.From(ctx)
	pool := engine.New(opts.Parallel)
	sctx, cancelSearch := context.WithDeadline(ctx, start.Add(opts.ILPTimeLimit))
	defer cancelSearch()
	h := &heuristic{
		cg:      cres.Coarse,
		sys:     sys,
		horizon: horizonFor(g, sys),
		opts:    opts,
		orig:    g,
		cres:    cres,
		pool:    pool,
		rec:     rec,
		movable: dirtyGroup,
	}
	inherited := inheritDevices(g, sys, prior, m)
	proj := h.projectOriginal(inherited)
	h.repairColocAssign(proj)
	h.repairMemory(proj)
	h.evalAssign(proj)
	// Re-seed the dirty region: a greedy earliest-task-first build is a
	// different constructive basin than the inherited plan, and chained
	// warm steps otherwise inherit each other's local optima. Blending
	// its devices onto the movable groups only — clean groups keep the
	// inherited device, honoring the partial-assignment contract —
	// gives the climb a second start at the cost of one greedy build
	// and two extra simulations; evalAssign keeps whichever start
	// scores best. Everything here is counted sims: the warm path's
	// whole speedup is its simulation budget, so each start has to
	// earn its place (the cold solver's full seed sweep does not).
	etfObj := math.Inf(1)
	if etf, eerr := greedyETF(g, h.simSystem(), false); eerr == nil {
		// Score the raw build too (without adopting it — it ignores
		// the partial-assignment pin): it doubles as the escape
		// detector below.
		if s := h.scoreOriginal(etf); s.ok {
			etfObj = s.obj
		}
		blend := append([]sim.DeviceID(nil), proj...)
		cand := h.projectOriginal(etf)
		for c := range blend {
			if c < len(dirtyGroup) && dirtyGroup[c] {
				blend[c] = cand[c]
			}
		}
		h.repairColocAssign(blend)
		h.repairMemory(blend)
		h.evalAssign(blend)
	}
	// Two quality detectors gate every warm answer, and the restricted
	// climb runs only when they object to the cheap starts above —
	// most edits barely move the schedule, and for those the starts
	// already pass, so the climb's simulations are pure waste.
	//
	// Escape detector: an edit can suddenly make a much better plan
	// feasible — one the warm search cannot reach because clean groups
	// are pinned. The anchor-relative drift check is blind to that
	// (the warm plan did not get worse; the graph got easier), but a
	// plain greedy build on the edited graph is not: cold adopts it as
	// a seed, so losing to it by more than the margin means a cold
	// solve would beat the warm plan by at least as much.
	//
	// Drift detector: the pinned search can land (or stay stuck) in a
	// basin a from-scratch solve would escape, and no reference
	// cheaper than a cold solve bounds that directly. The proxy is the
	// plan's makespan over the graph's placement-independent lower
	// bound, compared against the lowest such ratio the chain has ever
	// achieved: the bound moves with the graph as edits accumulate, so
	// a ratio drifting past that record means the plan — not the
	// graph — got worse. The record, not the last cold alone, is the
	// reference because cold quality itself jitters several percent
	// between neighboring graphs; a poor cold anchor would otherwise
	// hide real drift behind its own bad luck.
	anchor := prior.AnchorQuality
	if anchor == 0 {
		if r, rerr := sim.Run(prior.Graph, sys, prior.Plan); rerr == nil {
			anchor = float64(r.Makespan) / float64(qualityLowerBound(prior.Graph, sys))
		}
	}
	var plan sim.Plan
	var mk time.Duration
	refined := false
	for {
		if h.bestDev == nil {
			return incrementalCold(ctx, g, sys, opts, "no-candidate", prior.AnchorQuality)
		}
		if h.bestObj <= etfObj*incrQualityMargin {
			var ferr error
			plan, mk, ferr = finalizePlan(ctx, g, h, h.bestDev, opts, len(sys.Devices))
			if ferr != nil {
				return incrementalCold(ctx, g, sys, opts, "finalize-failed", prior.AnchorQuality)
			}
			q := float64(mk) / float64(qualityLowerBound(g, sys))
			if anchor <= 0 || q <= anchor*incrQualityMargin {
				if anchor == 0 || q < anchor {
					anchor = q
				}
				break
			}
		}
		if refined {
			return incrementalCold(ctx, g, sys, opts, "quality-drift", anchor)
		}
		h.refine(sctx)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pesto incremental: cancelled during refinement: %w", err)
		}
		refined = true
	}
	info.AnchorQuality = anchor

	res := &Result{
		Plan:              plan,
		CoarsePlan:        sim.Plan{Device: append([]sim.DeviceID(nil), h.coarseBest...), Policy: sim.PolicyFIFO},
		CoarseSize:        total,
		ILPStatus:         ilp.FeasibleStatus,
		PredictedMakespan: time.Duration(h.bestObj * float64(h.horizon)),
		SimulatedMakespan: mk,
		CoarsenIterations: cres.Iterations,
		PlacementTime:     time.Since(start),
		Provenance:        Provenance{Stage: StageIncremental, Incremental: info},
	}
	// A warm plan never ships unverified, whatever the caller asked
	// for: reuse must not be able to smuggle a stale invariant
	// violation past the checker. Verification failure is a fallback,
	// not an error — the cold path re-solves from scratch.
	vopts := opts
	vopts.Verify = true
	if verr := verifyResult(g, sys, res.Plan, vopts); verr != nil {
		return incrementalCold(ctx, g, sys, opts, "verification-failed", prior.AnchorQuality)
	}
	return res, nil
}

// incrementalCold is Incremental's escape hatch: a from-scratch solve
// with the fallback reason recorded in the provenance. anchorFloor is
// the chain's quality record so far (zero when
// there is no usable chain history); the fresh solve's own ratio only
// replaces it if it is better, so one unlucky cold cannot loosen the
// drift detector's reference.
func incrementalCold(ctx context.Context, g *graph.Graph, sys sim.System, opts Options, reason string, anchorFloor float64) (*Result, error) {
	obs.From(ctx).Add("placement.incremental.cold", 1)
	res, err := PlaceMultiGPU(ctx, g, sys, opts)
	if err != nil {
		return nil, fmt.Errorf("pesto incremental: cold fallback (%s): %w", reason, err)
	}
	anchor := float64(res.SimulatedMakespan) / float64(qualityLowerBound(g, sys))
	if anchorFloor > 0 && anchorFloor < anchor {
		anchor = anchorFloor
	}
	res.Provenance.Incremental = &IncrementalInfo{
		TotalGroups:    res.CoarseSize,
		AnchorQuality:  anchor,
		ColdFallback:   true,
		FallbackReason: reason,
	}
	return res, nil
}

// incrQualityMargin is how far past the anchor's quality ratio a warm
// plan may drift before the step re-solves cold. The sweep's oracle
// allows 5% over a fresh cold solve; the margin sits well under it
// because the lower bound's tightness itself moves between the anchor
// graph and the edited one — an edit can make the graph easier in a
// way the bound does not see, and the headroom absorbs that.
const incrQualityMargin = 1.02

// qualityLowerBound is the placement-independent makespan floor the
// drift detector normalizes against: no schedule beats a perfect split
// of the GPU compute across devices, nor the graph's cost-weighted
// critical path.
func qualityLowerBound(g *graph.Graph, sys sim.System) time.Duration {
	var total time.Duration
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU {
			total += nd.Cost
		}
	}
	lb := total / time.Duration(max(len(sys.GPUs()), 1))
	if cp, _, err := g.CriticalPath(); err == nil && cp > lb {
		lb = cp
	}
	if lb <= 0 {
		lb = time.Nanosecond
	}
	return lb
}

// normalizeNodeMap resolves a caller-supplied node map to one entry
// per node of the edited graph, each either a valid prior ID or -1.
// A nil map means positional identity, matching incr.Compare.
func normalizeNodeMap(prior, g *graph.Graph, nodeMap []graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	np := prior.NumNodes()
	m := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		switch {
		case nodeMap == nil:
			if i < np {
				m[i] = graph.NodeID(i)
			} else {
				m[i] = -1
			}
		case i < len(nodeMap) && nodeMap[i] >= 0 && int(nodeMap[i]) < np:
			m[i] = nodeMap[i]
		default:
			m[i] = -1
		}
	}
	return m
}

// inheritDevices builds the warm starting vector: every mapped GPU
// operation keeps its prior device; new operations adopt the device
// of their first already-assigned predecessor (walking in topological
// order, so chains of new operations inherit coherently) and default
// to the first GPU otherwise. Colocation groups are then made
// consistent with a deterministic first-member-wins pass. Devices no
// longer in the system (or non-GPU assignments of GPU ops) are
// treated as unmapped.
func inheritDevices(g *graph.Graph, sys sim.System, prior PriorPlacement, m []graph.NodeID) []sim.DeviceID {
	gpus := sys.GPUs()
	isGPU := make(map[sim.DeviceID]bool, len(gpus))
	for _, d := range gpus {
		isGPU[d] = true
	}
	n := g.NumNodes()
	dev := make([]sim.DeviceID, n)
	assigned := make([]bool, n)
	nodes := g.Nodes()
	order, err := g.TopoSort()
	if err != nil {
		order = make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
	}
	for _, id := range order {
		if nodes[id].Kind != graph.KindGPU {
			dev[id] = sys.CPUID()
			assigned[id] = true
			continue
		}
		if mo := m[id]; mo >= 0 && int(mo) < len(prior.Plan.Device) && isGPU[prior.Plan.Device[mo]] {
			dev[id] = prior.Plan.Device[mo]
			assigned[id] = true
			continue
		}
		dev[id] = gpus[0]
		for _, e := range g.Pred(id) {
			if assigned[e.From] && isGPU[dev[e.From]] {
				dev[id] = dev[e.From]
				break
			}
		}
		assigned[id] = true
	}
	// Colocation consistency: the group's first member (by node ID)
	// decides for everyone.
	colocDev := make(map[string]sim.DeviceID)
	for i := 0; i < n; i++ {
		nd := nodes[i]
		if nd.Kind != graph.KindGPU || nd.Coloc == "" {
			continue
		}
		if d, ok := colocDev[nd.Coloc]; ok {
			dev[i] = d
		} else {
			colocDev[nd.Coloc] = dev[i]
		}
	}
	return dev
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
