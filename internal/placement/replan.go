package placement

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ReplanResult is the outcome of Replan: a valid plan for the
// surviving devices plus the cost of the recovery.
type ReplanResult struct {
	// Plan is the recovered plan; the failed device carries zero
	// operations.
	Plan sim.Plan
	// Survivors is sys with the failed device marked Failed — the
	// system the plan validates and simulates against.
	Survivors sim.System
	// Makespan is the recovered plan's simulated per-step time on the
	// survivor system.
	Makespan time.Duration
	// PrevMakespan is the original plan's simulated per-step time on
	// the healthy system (zero when the original plan no longer
	// simulates cleanly).
	PrevMakespan time.Duration
	// RecoveryDelta is Makespan - PrevMakespan: what the failure costs
	// per training step.
	RecoveryDelta time.Duration
	// Migrated counts the operations moved off the failed device.
	Migrated int
	// PlacementTime is the end-to-end replanning time.
	PlacementTime time.Duration
	// Provenance marks the plan as degraded (StageReplan); its Err()
	// wraps ErrDegraded.
	Provenance Provenance
}

// Replan migrates every operation off a failed device onto the
// survivors under the memory constraints and re-optimizes the result
// with the refinement machinery: greedy most-free-memory migration
// (colocation groups move wholesale), then hill climbing at coarse
// granularity against the survivor system, all under the
// opts.ILPTimeLimit budget. The returned plan passes Validate and
// CheckMemory against the survivor system with the failed device
// carrying zero operations.
//
// The failed device must be a GPU — CPU and kernel operations have
// device affinity and nowhere to migrate (ErrUnsupportedSystem) — and
// at least one GPU must survive. When no survivor has room for an
// evicted operation, Replan fails with an error wrapping sim.ErrOOM:
// memory constraints are never degraded around.
func Replan(ctx context.Context, g *graph.Graph, sys sim.System, plan sim.Plan, failed sim.DeviceID, opts Options) (*ReplanResult, error) {
	start := time.Now()
	opts = opts.withDefaults()
	fd, ok := sys.Device(failed)
	if !ok {
		return nil, fmt.Errorf("replan: unknown device %d: %w", failed, sim.ErrBadPlacement)
	}
	if fd.Kind != sim.GPU {
		return nil, fmt.Errorf("replan: device %s is not a GPU; its operations have device affinity and cannot migrate: %w", fd.Name, ErrUnsupportedSystem)
	}
	if err := plan.Validate(g, sys); err != nil {
		return nil, fmt.Errorf("replan: source plan: %w", err)
	}
	survivors := sys.WithFailedDevice(failed)
	if len(survivors.GPUs()) == 0 {
		return nil, fmt.Errorf("replan: no GPU survives the failure of %s: %w", fd.Name, ErrUnsupportedSystem)
	}
	if plan.Order != nil {
		// A strictly scheduled plan should recover to a strictly
		// scheduled plan.
		opts.ScheduleFromILP = true
	}

	var prevMk time.Duration
	if r, err := sim.Run(g, sys, plan); err == nil {
		prevMk = r.Makespan
	}

	dev, migrated, err := migrateOff(g, survivors, plan.Device, failed)
	if err != nil {
		return nil, err
	}
	migratedPlan := sim.Plan{Device: dev, Policy: sim.PolicyFIFO}
	if err := migratedPlan.Validate(g, survivors); err != nil {
		return nil, fmt.Errorf("replan: migrated plan: %w", err)
	}
	if err := migratedPlan.CheckMemory(g, survivors); err != nil {
		return nil, fmt.Errorf("replan: migrated plan: %w", err)
	}

	// Re-optimize with the refinement machinery against the survivor
	// system: the migrated vector seeds the search, the projection of
	// it seeds the coarse-level hill climb.
	pool := engine.New(opts.Parallel)
	sctx, cancelSearch := context.WithDeadline(ctx, start.Add(opts.ILPTimeLimit))
	defer cancelSearch()
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		return nil, fmt.Errorf("replan coarsen: %w", err)
	}
	h := &heuristic{
		cg:      cres.Coarse,
		sys:     survivors,
		horizon: horizonFor(g, survivors),
		opts:    opts,
		orig:    g,
		cres:    cres,
		pool:    pool,
	}
	h.evalOriginal(dev)
	h.evalAssign(h.projectOriginal(dev))
	h.refine(sctx)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("replan: cancelled during refinement: %w", err)
	}
	if h.bestDev == nil {
		return nil, fmt.Errorf("replan: no candidate plan simulates: %w", ErrNoPlacement)
	}
	newPlan, mk, err := finalizePlan(ctx, g, h, h.bestDev, opts, len(sys.Devices))
	if err != nil {
		return nil, fmt.Errorf("replan: %w", err)
	}
	for id, d := range newPlan.Device {
		if d == failed {
			return nil, fmt.Errorf("replan: op %d still on failed device %s: %w", id, fd.Name, sim.ErrBadPlacement)
		}
	}
	out := &ReplanResult{
		Plan:          newPlan,
		Survivors:     survivors,
		Makespan:      mk,
		PrevMakespan:  prevMk,
		Migrated:      migrated,
		PlacementTime: time.Since(start),
		Provenance:    Provenance{Stage: StageReplan, Degraded: true},
	}
	if prevMk > 0 {
		out.RecoveryDelta = mk - prevMk
	}
	// The recovered plan is verified against the survivor system: the
	// failed device is present but marked failed, so the checker also
	// proves nothing still runs on it.
	if verr := verifyResult(g, survivors, out.Plan, opts); verr != nil {
		return nil, verr
	}
	return out, nil
}

// migrateOff reassigns every operation on the failed device to the
// survivor GPU with the most free memory, biggest evictees first so
// large tensors claim space while it exists. Colocation groups move
// wholesale. The walk order is fully deterministic (memory desc, node
// ID asc). Fails with an ErrOOM-wrapped error when some evictee fits
// no survivor.
func migrateOff(g *graph.Graph, survivors sim.System, device []sim.DeviceID, failed sim.DeviceID) ([]sim.DeviceID, int, error) {
	dev := append([]sim.DeviceID(nil), device...)
	gpus := survivors.GPUs()

	// Free memory per survivor under the ops staying put.
	used := make(map[sim.DeviceID]int64, len(gpus))
	for _, n := range g.Nodes() {
		if dev[n.ID] != failed {
			used[dev[n.ID]] += n.Memory
		}
	}
	capOf := func(d sim.DeviceID) int64 {
		dv, _ := survivors.Device(d)
		if dv.Memory <= 0 {
			return math.MaxInt64 // unlimited
		}
		return dv.Memory
	}

	// Eviction units: colocation groups move wholesale (a validated
	// plan keeps each group on one device, so a group is either
	// entirely on the failed device or not at all).
	type unit struct {
		ids []graph.NodeID
		mem int64
	}
	groups := make(map[string]*unit)
	var units []*unit
	migrated := 0
	for _, n := range g.Nodes() {
		if dev[n.ID] != failed {
			continue
		}
		migrated++
		if n.Coloc != "" {
			u, ok := groups[n.Coloc]
			if !ok {
				u = &unit{}
				groups[n.Coloc] = u
				units = append(units, u)
			}
			u.ids = append(u.ids, n.ID)
			u.mem += n.Memory
		} else {
			units = append(units, &unit{ids: []graph.NodeID{n.ID}, mem: n.Memory})
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		if units[i].mem != units[j].mem {
			return units[i].mem > units[j].mem
		}
		return units[i].ids[0] < units[j].ids[0]
	})

	for _, u := range units {
		best := sim.DeviceID(-1)
		var bestFree int64 = -1
		for _, d := range gpus {
			free := capOf(d) - used[d]
			if free >= u.mem && free > bestFree {
				best, bestFree = d, free
			}
		}
		if best < 0 {
			return nil, 0, fmt.Errorf("replan: %d bytes (ops %v) evicted from device %d fit no survivor: %w",
				u.mem, u.ids, failed, sim.ErrOOM)
		}
		for _, id := range u.ids {
			dev[id] = best
		}
		used[best] += u.mem
	}
	return dev, migrated, nil
}
