package placement

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/incr"
	"pesto/internal/sim"
)

const benchIncrGPUMem = int64(16) << 30

// benchIncrWorkload builds the incremental benchmark's edit trace: the
// BENCH_service graph (gen.Layered seed=7, 96 nodes) mutated by a
// 48-step seeded trace, with every intermediate graph and node map
// materialized up front so the timed loops pay for placement only.
func benchIncrWorkload(tb testing.TB) (base *graph.Graph, graphs []*graph.Graph, maps [][]graph.NodeID) {
	tb.Helper()
	base, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 7, Nodes: 96})
	if err != nil {
		tb.Fatal(err)
	}
	edits, err := gen.EditTrace(base, gen.EditTraceConfig{Seed: 17, Steps: 48})
	if err != nil {
		tb.Fatal(err)
	}
	cur := base
	for _, e := range edits {
		next, m, err := incr.Apply(cur, e)
		if err != nil {
			tb.Fatal(err)
		}
		graphs = append(graphs, next)
		maps = append(maps, m)
		cur = next
	}
	return base, graphs, maps
}

func benchIncrOptions() Options {
	return Options{
		ILPTimeLimit: 5 * time.Second,
		StartStage:   StageRefine,
		Seed:         1,
		Verify:       true,
	}
}

// runWarmTrace replays the whole edit trace through Incremental,
// chaining each step's plan into the next step's prior (initial cold
// anchor excluded from all timings). warmTotal/warm average the steps
// that stayed on the warm path — the re-places the speedup claim is
// about — while total/steps amortize over everything including
// chain-refresh and drift fallbacks. worstRatio is the worst
// warm-vs-cold makespan ratio observed when colds is non-nil (colds[i]
// is the from-scratch solve of graphs[i]).
func runWarmTrace(tb testing.TB, base *graph.Graph, graphs []*graph.Graph, maps [][]graph.NodeID, colds []*Result) (warmTotal, total time.Duration, steps, warm int, worstRatio float64) {
	tb.Helper()
	ctx := context.Background()
	opts := benchIncrOptions()
	sys := sim.NewSystem(2, benchIncrGPUMem)
	cold, err := PlaceMultiGPU(ctx, base, sys, opts)
	if err != nil {
		tb.Fatal(err)
	}
	prior := PriorPlacement{Graph: base, Plan: cold.Plan}
	for i, g := range graphs {
		prior.NodeMap = maps[i]
		start := time.Now()
		res, err := Incremental(ctx, g, sys, prior, opts)
		took := time.Since(start)
		total += took
		if err != nil {
			tb.Fatalf("step %d: %v", i, err)
		}
		steps++
		info := res.Provenance.Incremental
		if info == nil {
			tb.Fatalf("step %d: no incremental provenance", i)
		}
		if !info.ColdFallback {
			warmTotal += took
			warm++
		}
		if colds != nil {
			if r := float64(res.SimulatedMakespan) / float64(colds[i].SimulatedMakespan); r > worstRatio {
				worstRatio = r
			}
		}
		prior = PriorPlacement{Graph: g, Plan: res.Plan,
			ChainDepth: info.ChainDepth, AnchorQuality: info.AnchorQuality}
	}
	return warmTotal, total, steps, warm, worstRatio
}

// BenchmarkIncrementalTrace times cold from-scratch solves and the
// amortized incremental re-place (chain-refresh cold anchors included)
// over the same 48-step edit trace, checks the worst per-step makespan
// ratio, and snapshots the comparison to BENCH_incr.json (repo root).
// The quality pass re-solves every step cold, so it only runs when not
// in -short mode; run without -short to regenerate the snapshot.
func BenchmarkIncrementalTrace(b *testing.B) {
	base, graphs, maps := benchIncrWorkload(b)
	sys := sim.NewSystem(2, benchIncrGPUMem)
	opts := benchIncrOptions()
	ctx := context.Background()

	var nsCold, nsWarm, nsAmortized int64
	var warmSteps, totalSteps int
	var worstRatio float64
	b.Run("cold", func(b *testing.B) {
		// One from-scratch solve per trace step, averaged over the whole
		// trace — the same graph population the warm loop replays, so
		// the speedup compares like with like (the late-trace graphs
		// are larger and cost more than the early ones).
		var total time.Duration
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				start := time.Now()
				if _, err := PlaceMultiGPU(ctx, g, sys, opts); err != nil {
					b.Fatal(err)
				}
				total += time.Since(start)
			}
		}
		nsCold = int64(total) / int64(b.N*len(graphs))
	})
	b.Run("warm", func(b *testing.B) {
		if testing.Short() {
			b.Skip("full-trace replay; run without -short to regenerate the snapshot")
		}
		colds := make([]*Result, len(graphs))
		for i, g := range graphs {
			r, err := PlaceMultiGPU(ctx, g, sys, opts)
			if err != nil {
				b.Fatal(err)
			}
			colds[i] = r
		}
		b.ResetTimer()
		var warmTotal, total time.Duration
		var warm, steps int
		for i := 0; i < b.N; i++ {
			wd, d, n, w, ratio := runWarmTrace(b, base, graphs, maps, colds)
			warmTotal += wd
			total += d
			warm += w
			steps += n
			warmSteps, totalSteps = w, n
			if ratio > worstRatio {
				worstRatio = ratio
			}
		}
		if warm > 0 {
			nsWarm = int64(warmTotal) / int64(warm)
		}
		nsAmortized = int64(total) / int64(steps)
	})
	if nsCold == 0 || nsWarm == 0 {
		return // short mode: no snapshot without the warm half
	}
	snapshot := map[string]any{
		"graph":                 "gen.Layered seed=7 nodes=96, edit trace seed=17 steps=48",
		"ns_per_cold_solve":     nsCold,
		"ns_per_warm_replace":   nsWarm,
		"ns_per_step_amortized": nsAmortized,
		"speedup":               float64(nsCold) / float64(nsWarm),
		"amortized_speedup":     float64(nsCold) / float64(nsAmortized),
		"warm_steps":            warmSteps,
		"trace_steps":           totalSteps,
		"max_makespan_ratio":    worstRatio,
		"note":                  "warm re-place time averaged over the steps that stayed warm, vs a from-scratch solve per step; ns_per_step_amortized folds the chain-refresh and drift cold fallbacks back in; TestIncrRegression holds ns_per_warm_replace to <=2x of this snapshot",
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_incr.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// TestIncrRegression is the CI gate behind make bench-incr: re-times the
// amortized warm re-place over the benchmark trace and fails if it
// regresses more than 2x over the committed BENCH_incr.json snapshot.
// Wall-clock gates are noisy on shared runners, so it takes the best of
// three trace replays and only the PESTO_BENCH_INCR=1 environment opts
// in.
func TestIncrRegression(t *testing.T) {
	if os.Getenv("PESTO_BENCH_INCR") == "" {
		t.Skip("set PESTO_BENCH_INCR=1 to run the incremental regression gate")
	}
	raw, err := os.ReadFile("../../BENCH_incr.json")
	if err != nil {
		t.Fatalf("no committed snapshot: %v", err)
	}
	var snap struct {
		NsPerWarmReplace int64   `json:"ns_per_warm_replace"`
		Speedup          float64 `json:"speedup"`
		MaxMakespanRatio float64 `json:"max_makespan_ratio"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.NsPerWarmReplace <= 0 {
		t.Fatal("committed BENCH_incr.json has no ns_per_warm_replace")
	}
	if snap.Speedup < 10 {
		t.Fatalf("committed snapshot speedup %.2f < 10x target", snap.Speedup)
	}
	if snap.MaxMakespanRatio > 1.05 {
		t.Fatalf("committed snapshot max_makespan_ratio %.4f > 1.05 target", snap.MaxMakespanRatio)
	}
	base, graphs, maps := benchIncrWorkload(t)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		warmTotal, _, _, warm, _ := runWarmTrace(t, base, graphs, maps, nil)
		if warm == 0 {
			t.Fatal("no step took the warm path")
		}
		if per := warmTotal / time.Duration(warm); per < best {
			best = per
		}
	}
	limit := time.Duration(2 * snap.NsPerWarmReplace)
	t.Logf("amortized warm re-place best-of-3: %v/step (committed %v, limit %v)",
		best, time.Duration(snap.NsPerWarmReplace), limit)
	if best > limit {
		t.Fatalf("incremental re-place regressed: %v/step > 2x committed %v",
			best, time.Duration(snap.NsPerWarmReplace))
	}
}
