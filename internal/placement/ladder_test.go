package placement

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pesto/internal/sim"
)

func TestLadderHappyPathIsNotDegraded(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{ILPTimeLimit: 5 * time.Second})
	if res.Provenance.Stage != StageILP {
		t.Fatalf("stage = %v, want %v", res.Provenance.Stage, StageILP)
	}
	if res.Provenance.Degraded {
		t.Fatal("happy path marked degraded")
	}
	if err := res.Provenance.Err(); err != nil {
		t.Fatalf("Provenance.Err() = %v on the happy path", err)
	}
}

func TestLadderFallsBackOnStagePanic(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageHook: func(s Stage) error {
			if s == StageILP {
				panic("solver crash")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := res.Plan.Validate(g, sys); err != nil {
		t.Fatalf("fallback plan invalid: %v", err)
	}
	if res.Provenance.Stage != StageRefine {
		t.Fatalf("stage = %v, want %v", res.Provenance.Stage, StageRefine)
	}
	if !res.Provenance.Degraded {
		t.Fatal("fallback not marked degraded")
	}
	perr := res.Provenance.Err()
	if !errors.Is(perr, ErrDegraded) {
		t.Fatalf("Provenance.Err() = %v, want ErrDegraded", perr)
	}
	if len(res.Provenance.Attempts) == 0 || !errors.Is(res.Provenance.Attempts[0].Err, ErrStagePanic) {
		t.Fatalf("attempts = %+v, want a recovered ErrStagePanic", res.Provenance.Attempts)
	}
	if _, serr := sim.Run(g, sys, res.Plan); serr != nil {
		t.Fatalf("fallback plan does not simulate: %v", serr)
	}
}

func TestLadderFallsBackOnDeadlineExpiry(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	start := time.Now()
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageRetries: 2, // deadline expiry must NOT be retried
		StageHook: func(s Stage) error {
			if s == StageILP {
				return fmt.Errorf("solver timed out: %w", context.DeadlineExceeded)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("ladder took %v, far past the budget", elapsed)
	}
	if res.Provenance.Stage != StageRefine || !res.Provenance.Degraded {
		t.Fatalf("provenance = %+v, want degraded %v", res.Provenance, StageRefine)
	}
	ilpAttempts := 0
	for _, a := range res.Provenance.Attempts {
		if a.Stage == StageILP {
			ilpAttempts++
		}
	}
	if ilpAttempts != 1 {
		t.Fatalf("deadline-expired stage retried %d times, want 1 attempt", ilpAttempts)
	}
	if err := res.Plan.Validate(g, sys); err != nil {
		t.Fatalf("fallback plan invalid: %v", err)
	}
}

func TestLadderRetriesTransientFailures(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	calls := 0
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageRetries: 1,
		StageBackoff: time.Millisecond,
		StageHook: func(s Stage) error {
			if s == StageILP {
				calls++
				if calls == 1 {
					return errors.New("transient failure")
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if calls != 2 {
		t.Fatalf("ILP stage attempted %d times, want 2 (original + 1 retry)", calls)
	}
	// The retry succeeded, so the plan comes from the first rung.
	if res.Provenance.Stage != StageILP || res.Provenance.Degraded {
		t.Fatalf("provenance = %+v, want non-degraded %v", res.Provenance, StageILP)
	}
	if len(res.Provenance.Attempts) != 1 {
		t.Fatalf("attempts = %+v, want the one transient failure", res.Provenance.Attempts)
	}
}

func TestLadderLastRungServesWhenEverythingElseDies(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageHook: func(s Stage) error {
			if s != StageFallback {
				panic("rung sabotaged")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.Provenance.Stage != StageFallback || !res.Provenance.Degraded {
		t.Fatalf("provenance = %+v, want degraded %v", res.Provenance, StageFallback)
	}
	if err := res.Plan.Validate(g, sys); err != nil {
		t.Fatalf("last-rung plan invalid: %v", err)
	}
	if _, serr := sim.Run(g, sys, res.Plan); serr != nil {
		t.Fatalf("last-rung plan does not simulate: %v", serr)
	}
}

func TestLadderEveryStageFailing(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	_, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 2 * time.Second,
		StageHook:    func(Stage) error { return errors.New("sabotaged") },
	})
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("err = %v, want ErrNoPlacement", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, should describe the degradation attempts", err)
	}
}

func TestLadderHonorsCancellation(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Place(ctx, g, sys, Options{ILPTimeLimit: 5 * time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (cancellation must not be degraded around)", err)
	}
}

func TestMultiGPULadderFallsBack(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(4, gpuMem)
	res, err := PlaceMultiGPU(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageHook: func(s Stage) error {
			if s == StageRefine || s == StagePipelineDP {
				panic(s.String() + " crash")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("PlaceMultiGPU: %v", err)
	}
	if res.Provenance.Stage != StageFallback || !res.Provenance.Degraded {
		t.Fatalf("provenance = %+v, want degraded %v", res.Provenance, StageFallback)
	}
	if err := res.Plan.Validate(g, sys); err != nil {
		t.Fatalf("fallback plan invalid: %v", err)
	}
}
