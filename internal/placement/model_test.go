package placement

import (
	"context"
	"math"
	"testing"
	"time"

	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/sim"
)

// solveExact builds the model for g and solves it to optimality with a
// generous budget (graphs here are tiny).
func solveExact(t *testing.T, g *graph.Graph, opts Options) (*model, ilp.Solution) {
	t.Helper()
	sys := sim.NewSystem(2, gpuMem)
	m, err := buildModel(g, sys, opts.withDefaults())
	if err != nil {
		t.Fatalf("buildModel: %v", err)
	}
	sol, err := ilp.Solve(context.Background(), ilp.Problem{LP: m.lp, Binary: m.binary}, ilp.Options{
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("ilp.Solve: %v", err)
	}
	if sol.Status != ilp.OptimalStatus {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return m, sol
}

// TestModelXORLinearization: z_k must equal x_i XOR x_j in every
// integral solution.
func TestModelXORLinearization(t *testing.T) {
	g := graph.New(4)
	a := g.AddNode(gpuNode("a", 10*time.Microsecond))
	b := g.AddNode(gpuNode("b", 10*time.Microsecond))
	c := g.AddNode(gpuNode("c", 10*time.Microsecond))
	d := g.AddNode(gpuNode("d", 10*time.Microsecond))
	mustEdge(t, g, a, b, 1<<20)
	mustEdge(t, g, c, d, 1<<20)
	m, sol := solveExact(t, g, Options{})
	for ci, cv := range m.comms {
		if m.zVar[ci] < 0 {
			continue
		}
		xi := sol.X[m.xVar[cv.from]]
		xj := sol.X[m.xVar[cv.to]]
		z := sol.X[m.zVar[ci]]
		want := 0.0
		if (xi > 0.5) != (xj > 0.5) {
			want = 1
		}
		if math.Abs(z-want) > 1e-6 {
			t.Errorf("comm %d: z=%g for x_i=%g x_j=%g", ci, z, xi, xj)
		}
	}
}

// TestModelNonOverlapHolds: two independent equal ops forced onto one
// GPU (via colocation) must not overlap in the ILP schedule.
func TestModelNonOverlapHolds(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Coloc: "grp", Memory: 1})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Cost: 100 * time.Microsecond, Coloc: "grp", Memory: 1})
	m, sol := solveExact(t, g, Options{})
	xa, xb := sol.X[m.xVar[a]], sol.X[m.xVar[b]]
	if (xa > 0.5) != (xb > 0.5) {
		t.Fatalf("colocation violated: x_a=%g x_b=%g", xa, xb)
	}
	sa, sb := sol.X[m.sOp[a]], sol.X[m.sOp[b]]
	p := float64(100*time.Microsecond) / float64(m.horizon)
	// One must finish (within the anti-degeneracy perturbation) before
	// the other starts.
	sep := math.Max(sa, sb) - math.Min(sa, sb)
	if sep < p-1e-4 {
		t.Errorf("overlap: S_a=%g S_b=%g p=%g", sa, sb, p)
	}
	// And the optimal C_max is serial execution of both.
	if sol.Objective < 2*p-1e-4 {
		t.Errorf("C_max %g below serial bound %g", sol.Objective, 2*p)
	}
}

// TestModelCongestionSerializesTransfers: two cross-GPU transfers in
// the same direction must not overlap on the link when congestion
// constraints are on.
func TestModelCongestionSerializesTransfers(t *testing.T) {
	// Producers p1, p2 colocated on one GPU; consumers c1, c2 on the
	// other (forced by coloc groups). Transfers share one direction.
	g := graph.New(4)
	p1 := g.AddNode(graph.Node{Name: "p1", Kind: graph.KindGPU, Cost: time.Microsecond, Coloc: "src", Memory: 1})
	p2 := g.AddNode(graph.Node{Name: "p2", Kind: graph.KindGPU, Cost: time.Microsecond, Coloc: "src", Memory: 1})
	c1 := g.AddNode(graph.Node{Name: "c1", Kind: graph.KindGPU, Cost: time.Microsecond, Coloc: "dst", Memory: 1})
	c2 := g.AddNode(graph.Node{Name: "c2", Kind: graph.KindGPU, Cost: time.Microsecond, Coloc: "dst", Memory: 1})
	const bytes = 8 << 20
	mustEdge(t, g, p1, c1, bytes)
	mustEdge(t, g, p2, c2, bytes)
	// Force the split: the two coloc groups must land on different GPUs
	// or there is no transfer at all; add memory pressure to separate
	// them.
	_ = g.SetMemory(p1, 9<<30)
	_ = g.SetMemory(p2, 1<<20)
	_ = g.SetMemory(c1, 9<<30)
	_ = g.SetMemory(c2, 1<<20)

	m, sol := solveExact(t, g, Options{})
	// Identify the GG comm vertices and check: if both transfers are
	// active (z=1) and same direction, their service intervals must not
	// overlap.
	type active struct {
		s, dur float64
		dir    int
	}
	var acts []active
	for ci, cv := range m.comms {
		if m.zVar[ci] < 0 || sol.X[m.zVar[ci]] < 0.5 {
			continue
		}
		dir := 0
		if sol.X[m.xVar[cv.from]] > 0.5 {
			dir = 1
		}
		acts = append(acts, active{
			s:   sol.X[m.sComm[ci]],
			dur: float64(cv.cost) / float64(m.horizon),
			dir: dir,
		})
	}
	for i := 0; i < len(acts); i++ {
		for j := i + 1; j < len(acts); j++ {
			if acts[i].dir != acts[j].dir {
				continue
			}
			aEnd := acts[i].s + acts[i].dur
			bEnd := acts[j].s + acts[j].dur
			if acts[i].s < bEnd-1e-4 && acts[j].s < aEnd-1e-4 {
				t.Errorf("same-direction transfers overlap: [%g,%g] vs [%g,%g]",
					acts[i].s, aEnd, acts[j].s, bEnd)
			}
		}
	}
}

// TestModelPredictionMatchesSimulation: for a tiny graph with all
// constraint pairs materialized, the ILP's C_max must match the
// simulator's makespan for the extracted plan (the §3.2.2 1-1
// correspondence, within the eager-simulation slack).
func TestModelPredictionMatchesSimulation(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res, err := Place(context.Background(), g, sys, Options{
		CoarsenTarget: 32, ILPTimeLimit: 8 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	r, err := sim.Run(g, sys, res.Plan)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// The realized schedule can beat the prediction (eager execution)
	// but should be in its vicinity when everything is modelled.
	lo, hi := 0.5*float64(res.PredictedMakespan), 1.5*float64(res.PredictedMakespan)
	if float64(r.Makespan) < lo || float64(r.Makespan) > hi {
		t.Errorf("simulated %v far from predicted %v", r.Makespan, res.PredictedMakespan)
	}
}

// TestModelHorizonNormalization: the normalized optimum must be within
// (0, 1] — a serial schedule is always feasible within the horizon.
func TestModelHorizonNormalization(t *testing.T) {
	g := graph.New(3)
	a := g.AddNode(gpuNode("a", 30*time.Microsecond))
	b := g.AddNode(gpuNode("b", 40*time.Microsecond))
	c := g.AddNode(gpuNode("c", 50*time.Microsecond))
	mustEdge(t, g, a, b, 1<<10)
	mustEdge(t, g, b, c, 1<<10)
	_, sol := solveExact(t, g, Options{})
	if sol.Objective <= 0 || sol.Objective > 1+1e-6 {
		t.Errorf("normalized C_max = %g outside (0,1]", sol.Objective)
	}
}

// TestModelHeterogeneousGPUsPreferFast: with one GPU 4x faster and
// meaningful communication, the optimal placement puts the heavy chain
// on the fast GPU.
func TestModelHeterogeneousGPUsPreferFast(t *testing.T) {
	g := graph.New(3)
	a := g.AddNode(gpuNode("a", 100*time.Microsecond))
	b := g.AddNode(gpuNode("b", 100*time.Microsecond))
	c := g.AddNode(gpuNode("c", 100*time.Microsecond))
	mustEdge(t, g, a, b, 8<<20)
	mustEdge(t, g, b, c, 8<<20)
	sys := sim.NewSystem(2, gpuMem)
	sys.Devices[2].Speed = 4 // gpu:1 is 4x faster
	res, err := Place(context.Background(), g, sys, Options{
		CoarsenTarget: 3, ILPTimeLimit: 5 * time.Second, ScheduleFromILP: true,
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	for _, id := range []graph.NodeID{a, b, c} {
		if res.Plan.Device[id] != 2 {
			t.Fatalf("op %d on %v, want the fast GPU 2 (plan %v)", id, res.Plan.Device[id], res.Plan.Device)
		}
	}
	r, err := sim.Run(g, sys, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// 300µs of compute at 4x speed = 75µs.
	if r.Makespan > 80*time.Microsecond {
		t.Fatalf("makespan %v, want ~75µs on the fast GPU", r.Makespan)
	}
}

// TestModelHierarchicalLinksRaiseCommCost: with a multi-host system,
// the ILP's comm vertices must price inter-host transfers at the slow
// network model.
func TestModelHierarchicalLinksRaiseCommCost(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode("a", time.Microsecond))
	b := g.AddNode(gpuNode("b", time.Microsecond))
	mustEdge(t, g, a, b, 8<<20)
	multi := sim.NewMultiHostSystem(2, 1, gpuMem) // 2 hosts x 1 GPU
	m, err := buildModel(g, multi, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	nv := sim.NewSystem(2, gpuMem)
	mNV, err := buildModel(g, nv, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.comms) != 1 || len(mNV.comms) != 1 {
		t.Fatalf("expected one comm vertex each")
	}
	if m.comms[0].cost <= mNV.comms[0].cost {
		t.Fatalf("inter-host transfer (%v) not pricier than NVLink (%v)",
			m.comms[0].cost, mNV.comms[0].cost)
	}
}
