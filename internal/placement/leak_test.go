package placement

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/sim"
)

// waitGoroutines polls until the goroutine count drops to at most want
// or the deadline passes, returning the last observed count. Freshly
// cancelled contexts and finished workers need a few scheduler rounds
// to unwind.
func waitGoroutines(t *testing.T, want int, deadline time.Duration) int {
	t.Helper()
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestPlaceCancellationNoGoroutineLeak is the end-to-end audit of
// request-context cancellation: cancelling a Place call mid-solve — at
// any Parallel width, while the ILP branch and bound and the
// refinement fan-outs are in flight — must leave no goroutine behind.
// The engine pool guarantees this by construction (engine.Run returns
// only after its WaitGroup drains), so a leak here means a fan-out
// escaped the pool.
func TestPlaceCancellationNoGoroutineLeak(t *testing.T) {
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 3, Nodes: 48})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sys := sim.NewSystem(2, 16<<30)
	before := runtime.NumGoroutine()

	for _, parallel := range []int{1, 4, 8} {
		// Cancel mid-solve from a timer: the solve gets enough time to
		// fan out workers, then the context dies under them.
		for _, delay := range []time.Duration{0, 5 * time.Millisecond, 25 * time.Millisecond} {
			ctx, cancel := context.WithTimeout(context.Background(), delay)
			_, perr := Place(ctx, g, sys, Options{
				ILPTimeLimit: 5 * time.Second,
				Parallel:     parallel,
				Seed:         1,
			})
			cancel()
			if delay == 0 && perr == nil {
				t.Fatalf("parallel=%d: Place succeeded despite an already-expired context", parallel)
			}
			// A fast solve may beat the longer delays; when it lost the
			// race, the error must wrap the context error.
			if perr != nil && !errors.Is(perr, context.DeadlineExceeded) && !errors.Is(perr, context.Canceled) {
				t.Fatalf("parallel=%d delay=%v: error %v does not wrap the context error", parallel, delay, perr)
			}
		}
	}

	// A couple of extra goroutines of slack: the runtime's own
	// background goroutines (GC workers, timer scavenger) come and go.
	if after := waitGoroutines(t, before+3, 5*time.Second); after > before+3 {
		t.Fatalf("goroutine leak: %d before, %d after cancelled Place calls", before, after)
	}
}

// TestPlaceMultiGPUCancellationNoGoroutineLeak covers the ILP-free
// k-GPU pipeline's fan-outs (seeds, refinement, finalize).
func TestPlaceMultiGPUCancellationNoGoroutineLeak(t *testing.T) {
	g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: 9, Nodes: 40})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sys := sim.NewSystem(4, 16<<30)
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		// A fast solve may legitimately beat the longer delays; the
		// leak check below is the assertion, not the error.
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*5*time.Millisecond)
		_, perr := PlaceMultiGPU(ctx, g, sys, Options{ILPTimeLimit: 5 * time.Second, Parallel: 8, Seed: 1})
		cancel()
		if i == 0 && perr == nil {
			t.Fatal("PlaceMultiGPU succeeded despite an already-expired context")
		}
	}
	if after := waitGoroutines(t, before+3, 5*time.Second); after > before+3 {
		t.Fatalf("goroutine leak: %d before, %d after cancelled PlaceMultiGPU calls", before, after)
	}
}
