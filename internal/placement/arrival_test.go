package placement

import (
	"context"
	"errors"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

// TestReplanArrivalRebalances: a plan computed on the survivors of a
// failure rebalances onto the recovered device and never ends up
// slower than the pre-arrival incumbent.
func TestReplanArrivalRebalances(t *testing.T) {
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 21, Nodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(4, gpuMem)
	const arrived = sim.DeviceID(4)

	// Plan while the device is down, then bring it back.
	down := sys.WithFailedDevice(arrived)
	res, err := PlaceMultiGPU(context.Background(), g, down, Options{ILPTimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatalf("PlaceMultiGPU on degraded system: %v", err)
	}
	rr, err := ReplanArrival(context.Background(), g, sys, res.Plan, arrived, Options{ILPTimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatalf("ReplanArrival: %v", err)
	}
	if err := rr.Plan.Validate(g, sys); err != nil {
		t.Fatalf("rebalanced plan invalid: %v", err)
	}
	if err := rr.Plan.CheckMemory(g, sys); err != nil {
		t.Fatalf("rebalanced plan violates memory: %v", err)
	}
	step, err := sim.Run(g, sys, rr.Plan)
	if err != nil {
		t.Fatalf("rebalanced step does not simulate: %v", err)
	}
	if step.Makespan != rr.Makespan {
		t.Fatalf("reported makespan %v != simulated %v", rr.Makespan, step.Makespan)
	}
	if rr.PrevMakespan <= 0 {
		t.Fatal("PrevMakespan missing")
	}
	if rr.Makespan > rr.PrevMakespan {
		t.Fatalf("arrival made things worse: %v -> %v (incumbent seeding must prevent this)",
			rr.PrevMakespan, rr.Makespan)
	}
	if rr.RecoveryDelta != rr.Makespan-rr.PrevMakespan {
		t.Fatalf("RecoveryDelta = %v, want %v", rr.RecoveryDelta, rr.Makespan-rr.PrevMakespan)
	}
	if rr.Provenance.Stage != StageReplan {
		t.Fatalf("Provenance.Stage = %v, want %v", rr.Provenance.Stage, StageReplan)
	}
	if rr.Provenance.Degraded {
		t.Fatal("scale-up marked degraded")
	}
}

// TestReplanArrivalMovesWork: with a heavily loaded pool the arrival
// actually receives operations.
func TestReplanArrivalMovesWork(t *testing.T) {
	// Two independent heavy chains with tiny tensors: splitting across
	// two GPUs halves the step, so the arrival must end up used.
	g := graph.New(17)
	in := g.AddNode(graph.Node{Name: "input", Kind: graph.KindCPU, Cost: 10 * time.Microsecond})
	for c := 0; c < 2; c++ {
		prev := in
		for i := 0; i < 8; i++ {
			id := g.AddNode(graph.Node{Name: "op", Kind: graph.KindGPU, Cost: 500 * time.Microsecond, Memory: 1 << 20})
			_ = g.AddEdge(prev, id, 1<<10)
			prev = id
		}
	}
	sys := sim.NewSystem(2, gpuMem)
	// Everything on GPU 1; GPU 2 "arrives".
	plan := singleGPUPlan(g, sys)
	if err := plan.Validate(g, sys); err != nil {
		t.Fatalf("seed plan invalid: %v", err)
	}
	rr, err := ReplanArrival(context.Background(), g, sys, plan, 2, Options{ILPTimeLimit: 2 * time.Second})
	if err != nil {
		t.Fatalf("ReplanArrival: %v", err)
	}
	onArrived := 0
	for _, d := range rr.Plan.Device {
		if d == 2 {
			onArrived++
		}
	}
	if rr.Migrated == 0 {
		t.Fatal("no operations migrated onto the arrival")
	}
	if onArrived == 0 {
		t.Fatal("final plan leaves the arrival empty")
	}
}

// TestReplanArrivalRejects: non-GPU and failed arrivals are errors, as
// is an invalid source plan.
func TestReplanArrivalRejects(t *testing.T) {
	g, err := gen.Generate(gen.Config{Family: gen.Diamond, Seed: 5, Nodes: 12})
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, gpuMem)
	plan := singleGPUPlan(g, sys)
	if _, err := ReplanArrival(context.Background(), g, sys, plan, 0, Options{}); !errors.Is(err, ErrUnsupportedSystem) {
		t.Fatalf("CPU arrival: err = %v, want ErrUnsupportedSystem", err)
	}
	if _, err := ReplanArrival(context.Background(), g, sys.WithFailedDevice(2), plan, 2, Options{}); !errors.Is(err, ErrUnsupportedSystem) {
		t.Fatalf("failed arrival: err = %v, want ErrUnsupportedSystem", err)
	}
	if _, err := ReplanArrival(context.Background(), g, sys, sim.Plan{}, 2, Options{}); err == nil {
		t.Fatal("empty source plan accepted")
	}
}

// singleGPUPlan pins every CPU-affine op to the host and every GPU op
// to GPU 1, the densest "pre-arrival" incumbent.
func singleGPUPlan(g *graph.Graph, sys sim.System) sim.Plan {
	dev := make([]sim.DeviceID, g.NumNodes())
	for _, n := range g.Nodes() {
		if sys.CompatibleDevice(n.Kind, 0) {
			dev[n.ID] = 0
		} else {
			dev[n.ID] = 1
		}
	}
	return sim.Plan{Device: dev, Policy: sim.PolicyFIFO}
}
