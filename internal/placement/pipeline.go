package placement

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/ilp"
	"pesto/internal/obs"
	"pesto/internal/pipeline"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

// placePipelineDP is the contiguous-split rung of the degradation
// ladder: the Tarnawski-style DP cuts the coarse graph's topological
// order into one contiguous stage per device, minimizing the
// bottleneck stage time under the communication model, and the best of
// those splits (one per stage count) and the baseline placements wins.
// No hill climbing, no LP — a fast rung between refinement and the
// bare heuristics. With Options.Pipeline set it instead runs the full
// microbatched pipeline planning regime (placePipeline).
func placePipelineDP(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	if opts.Pipeline.Enabled() {
		return placePipeline(ctx, g, sys, opts)
	}
	start := time.Now()
	opts = opts.withDefaults()
	gpus := sys.GPUs()
	if len(gpus) < 1 {
		return nil, fmt.Errorf("pesto pipeline-dp: system has no usable GPUs: %w", ErrUnsupportedSystem)
	}
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		return nil, fmt.Errorf("pesto pipeline-dp coarsen: %w", err)
	}
	h := &heuristic{
		cg:      cres.Coarse,
		sys:     sys,
		horizon: horizonFor(g, sys),
		opts:    opts,
		orig:    g,
		cres:    cres,
		pool:    engine.New(opts.Parallel),
		rec:     obs.From(ctx),
	}
	// One DP split per stage count: deeper cuts trade communication
	// for balance, and the simulator arbitrates.
	cpu := sys.CPUID()
	for S := len(gpus); S >= 1; S-- {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pesto pipeline-dp: %w", err)
		}
		part, perr := pipeline.PartitionDP(h.cg, sys, gpus[:S], -1)
		if perr != nil {
			continue
		}
		assign := make([]sim.DeviceID, h.cg.NumNodes())
		for i := range assign {
			assign[i] = cpu
		}
		for _, st := range part.Stages {
			for _, id := range st.Nodes {
				assign[id] = st.Device
			}
		}
		h.repairColocAssign(assign)
		h.repairMemory(assign)
		h.evalAssign(assign)
	}
	// Adopting the baseline set keeps the ladder monotone: this rung
	// never answers worse than the fallback rung below it.
	h.seedBaselines(ctx)
	if h.bestDev == nil {
		return nil, fmt.Errorf("pesto pipeline-dp: %w", ErrNoPlacement)
	}
	plan, mk, err := finalizePlan(ctx, g, h, h.bestDev, opts, len(sys.Devices))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Plan:              plan,
		CoarseSize:        cres.Coarse.NumNodes(),
		ILPStatus:         ilp.FeasibleStatus,
		CoarsenIterations: cres.Iterations,
		PredictedMakespan: time.Duration(h.bestObj * float64(h.horizon)),
		SimulatedMakespan: mk,
		PlacementTime:     time.Since(start),
	}
	if h.coarseBest != nil {
		res.CoarsePlan = sim.Plan{Device: append([]sim.DeviceID(nil), h.coarseBest...), Policy: sim.PolicyFIFO}
	}
	return res, nil
}

// placePipeline is the Options.Pipeline planning regime: coarsen, run
// the joint (partition, schedule) search of internal/pipeline over the
// coarse graph, prove the winning microbatched plan against the
// verifier's pipeline invariants, and return the stage placement
// expanded to the original graph with the pipeline provenance
// attached.
//
// Result.Plan is the stage placement as an ordinary FIFO plan for the
// original graph (so every existing consumer — verifier, executor,
// cache — keeps working), while Result.Provenance.Pipeline carries the
// microbatched step: schedule, simulated step time, bubble fraction,
// per-stage utilization and peak memory. Result.SimulatedMakespan is
// the pipeline step time — the quantity the regime optimizes.
func placePipeline(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	popts := opts.Pipeline.WithDefaults()
	if err := popts.Validate(); err != nil {
		return nil, fmt.Errorf("pesto pipeline: %w", err)
	}
	ctx, span := obs.Start(ctx, "placement.pipeline",
		obs.Int("microbatches", int64(popts.Microbatches)),
		obs.String("schedule", popts.Schedule.String()))
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		span.End(obs.String("outcome", "error"))
		return nil, fmt.Errorf("pesto pipeline coarsen: %w", err)
	}
	searchSys := sys
	if opts.DisableMemory {
		searchSys = liftMemory(sys)
	}
	out, err := pipeline.Search(ctx, cres.Coarse, searchSys, popts)
	if err != nil {
		span.End(obs.String("outcome", "error"), obs.String("error", err.Error()))
		return nil, fmt.Errorf("pesto pipeline: %w", err)
	}
	// Every emitted pipeline plan is re-proved against the independent
	// pipeline invariants (stage contiguity, microbatch precedence,
	// memory, cross-stage overlap) — unconditionally: the microbatched
	// schedule is exactly the artifact the search cannot be trusted to
	// certify itself.
	if _, verr := verify.CheckPipeline(out.Plan.Graph, searchSys, out.Plan.Sim, out.Plan.Meta); verr != nil {
		span.End(obs.String("outcome", "verification-failed"))
		return nil, fmt.Errorf("pesto pipeline: %w: %w", ErrVerification, verr)
	}

	// Expand the stage assignment to the original graph through the
	// usual repair + candidate machinery so colocation and memory hold
	// at operation granularity.
	h := &heuristic{
		cg:      cres.Coarse,
		sys:     sys,
		horizon: horizonFor(g, sys),
		opts:    opts,
		orig:    g,
		cres:    cres,
		pool:    engine.New(opts.Parallel),
		rec:     obs.From(ctx),
	}
	assign := make([]sim.DeviceID, h.cg.NumNodes())
	cpu := sys.CPUID()
	for i := range assign {
		assign[i] = cpu
	}
	for _, st := range out.Plan.Partition.Stages {
		for _, id := range st.Nodes {
			assign[id] = st.Device
		}
	}
	h.repairColocAssign(assign)
	h.repairMemory(assign)
	if _, ok := h.evalAssign(assign); !ok {
		return nil, fmt.Errorf("pesto pipeline: stage placement does not simulate: %w", ErrNoPlacement)
	}
	plan, fifoMk, err := finalizePlan(ctx, g, h, h.bestDev, opts, len(sys.Devices))
	if err != nil {
		return nil, err
	}

	info := out.Info()
	res := &Result{
		Plan:              plan,
		CoarseSize:        cres.Coarse.NumNodes(),
		ILPStatus:         ilp.FeasibleStatus,
		CoarsenIterations: cres.Iterations,
		PredictedMakespan: out.FIFOStep,
		SimulatedMakespan: out.Score.Makespan,
		PlacementTime:     time.Since(start),
		Provenance: Provenance{
			Stage:    StagePipelineDP,
			Pipeline: info,
		},
	}
	res.CoarsePlan = sim.Plan{Device: append([]sim.DeviceID(nil), assign...), Policy: sim.PolicyFIFO}
	span.End(obs.String("outcome", "ok"),
		obs.Int("stages", int64(info.Stages)),
		obs.Dur("step", info.Makespan),
		obs.F64("bubble", info.Bubble),
		obs.Dur("fifo-step", fifoMk))
	return res, nil
}

// PipelinePlan re-materializes the winning microbatched execution
// artifact for a pipeline-regime result: the replicated task graph,
// the simulator plan with the per-device schedule orders, and the
// metadata. Callers that want to execute or inspect the microbatched
// step (experiments, traces, the verifier sweep) rebuild it from the
// same deterministic inputs rather than carrying the full artifact on
// every Result.
func PipelinePlan(g *graph.Graph, sys sim.System, opts Options) (*pipeline.Plan, error) {
	opts = opts.withDefaults()
	popts := opts.Pipeline.WithDefaults()
	if !popts.Enabled() {
		return nil, fmt.Errorf("pesto pipeline: Options.Pipeline not set: %w", pipeline.ErrBadSpec)
	}
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.CoarsenTarget})
	if err != nil {
		return nil, fmt.Errorf("pesto pipeline coarsen: %w", err)
	}
	searchSys := sys
	if opts.DisableMemory {
		searchSys = liftMemory(sys)
	}
	out, err := pipeline.Search(context.Background(), cres.Coarse, searchSys, popts)
	if err != nil {
		return nil, fmt.Errorf("pesto pipeline: %w", err)
	}
	return out.Plan, nil
}
