package placement

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/gen"
	"pesto/internal/lp"
	"pesto/internal/sim"
)

// benchRungModel builds the exact model the BENCH_service graph's
// ilp-exact rung solves: gen.Layered seed=7, 96 nodes, coarsened to the
// default ILPMaxSize. This is the workload BENCH_service.json's
// ns_per_cold_solve is dominated by, so it is the one BENCH_lp.json
// tracks.
func benchRungModel(tb testing.TB) *model {
	tb.Helper()
	g, err := gen.Generate(gen.Config{Family: gen.Layered, Seed: 7, Nodes: 96})
	if err != nil {
		tb.Fatal(err)
	}
	opts := Options{}.withDefaults()
	cres, err := coarsen.Coarsen(g, coarsen.Options{Target: opts.ILPMaxSize})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := buildModel(cres.Coarse, sim.NewSystem(2, 0), opts)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkLPRung times a cold solve of the ILP rung's root relaxation
// on both engines and snapshots the comparison to BENCH_lp.json (repo
// root). The dense reference is skipped in -short mode so the CI gate
// (make bench-lp) only pays for the engine it guards; run without
// -short to regenerate the snapshot.
func BenchmarkLPRung(b *testing.B) {
	m := benchRungModel(b)
	var nsRevised, nsDense int64
	var itersRevised, itersDense int
	b.Run("revised", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			sol, err := lp.Solve(m.lp)
			total += time.Since(start)
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("revised: %v (%v)", sol.Status, err)
			}
			itersRevised = sol.Iters
		}
		nsRevised = int64(total) / int64(b.N)
	})
	b.Run("dense", func(b *testing.B) {
		if testing.Short() {
			b.Skip("dense reference takes seconds per solve")
		}
		var total time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			sol, err := lp.SolveDense(m.lp)
			total += time.Since(start)
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("dense: %v (%v)", sol.Status, err)
			}
			itersDense = sol.Iters
		}
		nsDense = int64(total) / int64(b.N)
	})
	if nsRevised == 0 || nsDense == 0 {
		return // short mode: no snapshot without the dense half
	}
	snapshot := map[string]any{
		"graph":                   "gen.Layered seed=7 nodes=96",
		"model":                   fmt.Sprintf("ilp-exact rung root LP: %d rows x %d vars (%d binaries)", m.lp.NumConstraints(), m.lp.NumVars(), len(m.binary)),
		"ns_per_cold_solve":       nsRevised,
		"ns_per_cold_solve_dense": nsDense,
		"speedup":                 float64(nsDense) / float64(nsRevised),
		"pivots_revised":          itersRevised,
		"pivots_dense":            itersDense,
		"note":                    "cold root-relaxation solve of the exact rung's model, revised simplex vs the dense-tableau reference; TestLPRungRegression holds ns_per_cold_solve to <=2x of this snapshot",
	}
	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_lp.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// TestLPRungRegression is the CI gate behind make bench-lp: re-times
// the revised-simplex cold solve of the rung model and fails if it
// regresses more than 2x over the committed BENCH_lp.json snapshot.
// Wall-clock gates are noisy on shared runners, so it takes the best of
// three solves and only the PESTO_BENCH_LP=1 environment opts in.
func TestLPRungRegression(t *testing.T) {
	if os.Getenv("PESTO_BENCH_LP") == "" {
		t.Skip("set PESTO_BENCH_LP=1 to run the LP-rung regression gate")
	}
	raw, err := os.ReadFile("../../BENCH_lp.json")
	if err != nil {
		t.Fatalf("no committed snapshot: %v", err)
	}
	var snap struct {
		NsPerColdSolve int64 `json:"ns_per_cold_solve"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.NsPerColdSolve <= 0 {
		t.Fatal("committed BENCH_lp.json has no ns_per_cold_solve")
	}
	m := benchRungModel(t)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		sol, err := lp.Solve(m.lp)
		if d := time.Since(start); d < best {
			best = d
		}
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("cold solve %d: %v (%v)", i, sol.Status, err)
		}
	}
	limit := time.Duration(2 * snap.NsPerColdSolve)
	t.Logf("cold solve best-of-3: %v (committed %v, limit %v)",
		best, time.Duration(snap.NsPerColdSolve), limit)
	if best > limit {
		t.Fatalf("ILP-rung cold solve regressed: %v > 2x committed %v",
			best, time.Duration(snap.NsPerColdSolve))
	}
}
