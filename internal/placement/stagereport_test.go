package placement

import (
	"context"
	"errors"
	"testing"
	"time"

	"pesto/internal/obs"
	"pesto/internal/sim"
)

// TestStageReportsHappyPath: the winning rung is the only report and
// carries its wall time with a nil Err.
func TestStageReportsHappyPath(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res := place(t, g, sys, Options{ILPTimeLimit: 5 * time.Second})
	st := res.Provenance.Stages
	if len(st) != 1 {
		t.Fatalf("Stages = %+v, want exactly the winning rung", st)
	}
	if st[0].Stage != StageILP || st[0].Err != nil {
		t.Fatalf("winning report = %+v, want {ilp-exact, nil err}", st[0])
	}
	if st[0].Duration <= 0 {
		t.Fatalf("winning rung duration = %v, want > 0", st[0].Duration)
	}
	if st[0].Duration > res.PlacementTime {
		t.Fatalf("rung duration %v exceeds total placement time %v", st[0].Duration, res.PlacementTime)
	}
}

// TestStageReportsOnFallback: a failed rung keeps its final error and
// wall time; the winner follows with nil Err.
func TestStageReportsOnFallback(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageRetries: -1,
		StageHook: func(s Stage) error {
			if s == StageILP {
				return errors.New("injected ilp failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	st := res.Provenance.Stages
	if len(st) != 2 {
		t.Fatalf("Stages = %+v, want [failed ilp, winning refine]", st)
	}
	if st[0].Stage != StageILP || st[0].Err == nil {
		t.Fatalf("failed rung report = %+v, want ilp-exact with its error", st[0])
	}
	if st[0].Duration <= 0 {
		t.Fatalf("failed rung duration = %v, want > 0", st[0].Duration)
	}
	if st[1].Stage != StageRefine || st[1].Err != nil {
		t.Fatalf("winning rung report = %+v, want warm-start+refine with nil err", st[1])
	}
}

// TestStageReportsSkippedRungs: rungs jumped over by StartStage appear
// with ErrStageSkipped and zero duration, so callers can tell "never
// tried" from "tried and failed".
func TestStageReportsSkippedRungs(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 2 * time.Second,
		StartStage:   StageFallback,
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	st := res.Provenance.Stages
	if len(st) != 4 {
		t.Fatalf("Stages = %+v, want [skipped ilp, skipped refine, skipped pipeline-dp, winning fallback]", st)
	}
	for i, want := range []Stage{StageILP, StageRefine, StagePipelineDP} {
		if st[i].Stage != want {
			t.Errorf("Stages[%d].Stage = %v, want %v", i, st[i].Stage, want)
		}
		if !errors.Is(st[i].Err, ErrStageSkipped) {
			t.Errorf("Stages[%d].Err = %v, want ErrStageSkipped", i, st[i].Err)
		}
		if st[i].Duration != 0 {
			t.Errorf("Stages[%d].Duration = %v, want 0 (never ran)", i, st[i].Duration)
		}
	}
	if st[3].Stage != StageFallback || st[3].Err != nil {
		t.Fatalf("winning report = %+v, want {heuristic-fallback, nil}", st[3])
	}
}

// TestStageReportsRetriesAggregated: retried attempts fold into one
// per-rung report whose duration covers all attempts.
func TestStageReportsRetriesAggregated(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	fails := 0
	res, err := Place(context.Background(), g, sys, Options{
		ILPTimeLimit: 5 * time.Second,
		StageRetries: 1,
		StageHook: func(s Stage) error {
			if s == StageILP {
				fails++
				return errors.New("transient")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if fails != 2 {
		t.Fatalf("ilp rung attempted %d times, want 2 (1 + 1 retry)", fails)
	}
	st := res.Provenance.Stages
	if len(st) != 2 || st[0].Stage != StageILP {
		t.Fatalf("Stages = %+v, want one aggregated ilp report then the winner", st)
	}
	if len(res.Provenance.Attempts) != 2 {
		t.Fatalf("Attempts = %+v, want both failed attempts preserved", res.Provenance.Attempts)
	}
	var attemptSum time.Duration
	for _, a := range res.Provenance.Attempts {
		attemptSum += a.Elapsed
	}
	if st[0].Duration < attemptSum {
		t.Fatalf("aggregated rung duration %v below sum of attempts %v", st[0].Duration, attemptSum)
	}
}

// TestPlacementSpans: a recorder on the context observes the ladder —
// the place-level span, per-rung stage spans nested under it, and the
// pipeline counters.
func TestPlacementSpans(t *testing.T) {
	g := figure2(t)
	sys := sim.NewSystem(2, gpuMem)
	sink := obs.NewMemorySink()
	rec := obs.NewRecorder(sink)
	ctx := obs.Into(context.Background(), rec)
	if _, err := Place(ctx, g, sys, Options{ILPTimeLimit: 5 * time.Second, Verify: true}); err != nil {
		t.Fatalf("Place: %v", err)
	}
	spans := map[string][]obs.Record{}
	for _, r := range sink.Records() {
		if r.Kind == obs.KindSpan {
			spans[r.Name] = append(spans[r.Name], r)
		}
	}
	for _, name := range []string{"placement.place", "placement.stage", "placement.coarsen", "placement.ilp", "placement.seed", "placement.refine"} {
		if len(spans[name]) == 0 {
			t.Errorf("no %q span recorded", name)
		}
	}
	place := spans["placement.place"]
	if len(place) != 1 || place[0].Parent != 0 {
		t.Fatalf("placement.place spans = %+v, want one root span", place)
	}
	for _, st := range spans["placement.stage"] {
		if st.Parent != place[0].ID {
			t.Errorf("stage span parented to %d, want placement.place %d", st.Parent, place[0].ID)
		}
	}
	if rec.Counter("placement.sims") <= 0 {
		t.Errorf("placement.sims = %d, want > 0", rec.Counter("placement.sims"))
	}
	if rec.Counter("ilp.nodes") <= 0 {
		t.Errorf("ilp.nodes = %d, want > 0", rec.Counter("ilp.nodes"))
	}
	if rec.Counter("lp.pivots") <= 0 {
		t.Errorf("lp.pivots = %d, want > 0", rec.Counter("lp.pivots"))
	}
	if rec.Counter("engine.tasks") <= 0 {
		t.Errorf("engine.tasks = %d, want > 0", rec.Counter("engine.tasks"))
	}
}
