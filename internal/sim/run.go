package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pesto/internal/graph"
)

// TransferEvent records one inter-device tensor transfer for timeline
// analysis (the Figure 5 Gantt charts).
type TransferEvent struct {
	Edge     graph.Edge
	From, To DeviceID
	Enqueue  time.Duration // when the producer finished
	Start    time.Duration // when the FCFS link began serving it
	Finish   time.Duration
}

// Queued reports how long the transfer waited behind others on its link
// — the congestion Pesto's ILP constraints stagger away.
func (t TransferEvent) Queued() time.Duration { return t.Start - t.Enqueue }

// Result is the outcome of simulating one training step.
type Result struct {
	// Makespan is the per-step training time C_max.
	Makespan time.Duration
	// Start and Finish give per-node execution windows.
	Start, Finish []time.Duration
	// DeviceBusy is the total compute time per device.
	DeviceBusy []time.Duration
	// Transfers lists every inter-device transfer in link-service
	// order.
	Transfers []TransferEvent
	// LinkBusy is the total service time per directional link.
	LinkBusy map[[2]DeviceID]time.Duration
}

// Utilization reports DeviceBusy/Makespan for a device.
func (r Result) Utilization(d DeviceID) float64 {
	if r.Makespan <= 0 || int(d) >= len(r.DeviceBusy) {
		return 0
	}
	return float64(r.DeviceBusy[d]) / float64(r.Makespan)
}

// MaxQueueing returns the largest per-transfer queueing delay observed.
func (r Result) MaxQueueing() time.Duration {
	var m time.Duration
	for _, t := range r.Transfers {
		if q := t.Queued(); q > m {
			m = q
		}
	}
	return m
}

type eventKind int

const (
	evOpDone eventKind = iota + 1
	evTransferDone
)

type event struct {
	t    time.Duration
	seq  int
	kind eventKind
	node graph.NodeID // op that finished (evOpDone)
	edge graph.Edge   // transfer that finished (evTransferDone)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type readyOp struct {
	id      graph.NodeID
	readyAt time.Duration
	seq     int
}

type deviceState struct {
	busyUntil time.Duration
	running   graph.NodeID // -1 when idle
	orderPos  int          // cursor into Plan.Order for strict schedules
	ready     []readyOp    // ready set for policy scheduling
}

// Run simulates one training step of g on sys under plan. It validates
// the plan and the memory constraints first, returning ErrOOM when a
// device's cumulative footprint exceeds its capacity.
//
// Run is re-entrant: all simulation state (event heap, device states,
// link queues, the PolicyRandom RNG) is local to the call, and g, sys
// and plan are only read, never written. Concurrent Runs may therefore
// share all three, which is what lets the placement engine evaluate
// many candidate plans in parallel against one graph and system. The
// caller must only guarantee that nothing mutates g, sys or plan while
// Runs are in flight (use Plan.Clone/System.Clone to mutate copies).
func Run(g *graph.Graph, sys System, plan Plan) (Result, error) {
	return run(g, sys, plan, nil)
}

// run is the shared core of Run and RunInjected.
func run(g *graph.Graph, sys System, plan Plan, inj Injector) (Result, error) {
	if err := plan.Validate(g, sys); err != nil {
		return Result{}, err
	}
	if err := plan.CheckMemory(g, sys); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	res := Result{
		Start:      make([]time.Duration, n),
		Finish:     make([]time.Duration, n),
		DeviceBusy: make([]time.Duration, len(sys.Devices)),
		LinkBusy:   make(map[[2]DeviceID]time.Duration),
	}
	for i := range res.Start {
		res.Start[i] = -1
		res.Finish[i] = -1
	}

	policy := plan.Policy
	if policy == 0 {
		policy = PolicyFIFO
	}
	rng := rand.New(rand.NewSource(plan.Seed))

	pendingDeps := make([]int, n)
	for i := 0; i < n; i++ {
		pendingDeps[i] = g.InDegree(graph.NodeID(i))
	}
	readyAt := make([]time.Duration, n) // max over dep-arrival times

	devs := make([]deviceState, len(sys.Devices))
	for i := range devs {
		devs[i].running = -1
	}
	linkFree := make(map[[2]DeviceID]time.Duration)

	var evq eventHeap
	seq := 0
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&evq, e)
	}

	executed := 0

	// Fault-injection state: the first injected fault (mid-run OOM or
	// device failure) aborts the run. memStarted tracks the cumulative
	// footprint of operations started per device, compared against the
	// injector's (possibly shrinking) effective capacity.
	var injErr error
	var memStarted []int64
	if inj != nil {
		memStarted = make([]int64, len(sys.Devices))
	}

	markReady := func(id graph.NodeID, now time.Duration) {
		d := &devs[plan.Device[id]]
		d.ready = append(d.ready, readyOp{id: id, readyAt: now, seq: seq})
	}

	// pickReady removes and returns the next op for a policy-scheduled
	// device, or -1 when none is ready.
	pickReady := func(d *deviceState) graph.NodeID {
		if len(d.ready) == 0 {
			return -1
		}
		idx := 0
		switch policy {
		case PolicyFIFO:
			for i := 1; i < len(d.ready); i++ {
				a, b := d.ready[i], d.ready[idx]
				if a.readyAt < b.readyAt || (a.readyAt == b.readyAt && a.id < b.id) {
					idx = i
				}
			}
		case PolicyRandom:
			idx = rng.Intn(len(d.ready))
		case PolicyPriority:
			for i := 1; i < len(d.ready); i++ {
				a, b := d.ready[i], d.ready[idx]
				pa, pb := plan.Priority[a.id], plan.Priority[b.id]
				if pa > pb || (pa == pb && a.id < b.id) {
					idx = i
				}
			}
		}
		id := d.ready[idx].id
		d.ready = append(d.ready[:idx], d.ready[idx+1:]...)
		return id
	}

	startOp := func(devID DeviceID, id graph.NodeID, now time.Duration) {
		d := &devs[devID]
		dev := sys.Devices[devID]
		nd, _ := g.Node(id)
		speed := dev.Speed
		if speed <= 0 {
			speed = 1
		}
		dur := time.Duration(math.Round(float64(nd.Cost) / speed))
		if inj != nil {
			dur = inj.OpDuration(id, devID, now, dur)
			if dur < 0 {
				dur = 0
			}
			if ft, ok := inj.FailureTime(devID); ok && now+dur >= ft {
				// The op would start on, or still be running on, a dead
				// device.
				injErr = &DeviceFailedError{Device: devID, At: ft}
				return
			}
			if dev.Memory > 0 {
				capNow := inj.DeviceCapacity(devID, now, dev.Memory)
				if memStarted[devID]+nd.Memory > capNow {
					injErr = fmt.Errorf("device %s needs %d of %d effective bytes at %v: %w",
						dev.Name, memStarted[devID]+nd.Memory, capNow, now, ErrOOM)
					return
				}
			}
			memStarted[devID] += nd.Memory
		}
		d.running = id
		d.busyUntil = now + dur
		res.Start[id] = now
		res.DeviceBusy[devID] += dur
		push(event{t: now + dur, kind: evOpDone, node: id})
	}

	// dispatch tries to start work on a device at the given time.
	dispatch := func(devID DeviceID, now time.Duration) {
		d := &devs[devID]
		if d.running >= 0 {
			return
		}
		if plan.Order != nil && int(devID) < len(plan.Order) && plan.Order[devID] != nil {
			order := plan.Order[devID]
			if d.orderPos >= len(order) {
				return
			}
			next := order[d.orderPos]
			if pendingDeps[next] > 0 || readyAt[next] > now {
				return // strict schedule: wait for the designated op
			}
			d.orderPos++
			startOp(devID, next, now)
			return
		}
		if id := pickReady(d); id >= 0 {
			startOp(devID, id, now)
		}
	}

	// depSatisfied records the arrival of one dependency of id at time t.
	depSatisfied := func(id graph.NodeID, t time.Duration) {
		if t > readyAt[id] {
			readyAt[id] = t
		}
		pendingDeps[id]--
		if pendingDeps[id] == 0 {
			markReady(id, readyAt[id])
			dispatch(plan.Device[id], readyAt[id])
		}
	}

	// Seed the roots.
	for i := 0; i < n; i++ {
		if pendingDeps[i] == 0 {
			markReady(graph.NodeID(i), 0)
		}
	}
	for d := range devs {
		dispatch(DeviceID(d), 0)
	}

	var now time.Duration
	for evq.Len() > 0 && injErr == nil {
		ev := heap.Pop(&evq).(event)
		now = ev.t
		switch ev.kind {
		case evOpDone:
			id := ev.node
			devID := plan.Device[id]
			d := &devs[devID]
			d.running = -1
			res.Finish[id] = now
			executed++
			// Fan out: colocated successors are satisfied now; remote
			// ones enqueue a transfer on the FCFS link.
			for _, e := range g.Succ(id) {
				target := plan.Device[e.To]
				if target == devID {
					depSatisfied(e.To, now)
					continue
				}
				lk := [2]DeviceID{devID, target}
				start := now
				if !sys.CongestionFree {
					if free := linkFree[lk]; free > start {
						start = free
					}
				}
				dur := sys.TransferTime(devID, target, e.Bytes)
				if inj != nil {
					dur = inj.TransferDuration(devID, target, e.Bytes, start, dur)
					if dur < 0 {
						dur = 0
					}
				}
				finish := start + dur
				linkFree[lk] = finish
				res.LinkBusy[lk] += dur
				res.Transfers = append(res.Transfers, TransferEvent{
					Edge: e, From: devID, To: target,
					Enqueue: now, Start: start, Finish: finish,
				})
				push(event{t: finish, kind: evTransferDone, edge: e})
			}
			dispatch(devID, now)
		case evTransferDone:
			depSatisfied(ev.edge.To, now)
		}
	}

	if injErr != nil {
		return res, injErr
	}
	if executed != n {
		return res, fmt.Errorf("simulation deadlocked: executed %d of %d operations (invalid schedule order?): %w", executed, n, ErrBadPlacement)
	}
	res.Makespan = now
	sort.Slice(res.Transfers, func(i, j int) bool {
		if res.Transfers[i].Start != res.Transfers[j].Start {
			return res.Transfers[i].Start < res.Transfers[j].Start
		}
		return res.Transfers[i].Finish < res.Transfers[j].Finish
	})
	return res, nil
}
