package sim

import (
	"errors"
	"fmt"

	"pesto/internal/graph"
)

// SchedulePolicy selects how a device picks among ready operations when
// the plan carries no explicit per-device order.
type SchedulePolicy int

const (
	// PolicyFIFO executes ready operations in the order they became
	// ready (ties by node ID). Deterministic stand-in for TensorFlow's
	// ready-queue behaviour.
	PolicyFIFO SchedulePolicy = iota + 1
	// PolicyRandom picks a uniformly random ready operation, matching
	// §2.1's "TensorFlow randomly picks an operation from the ready
	// queue". Seeded for reproducibility via Plan.Seed.
	PolicyRandom
	// PolicyPriority picks the ready operation with the highest
	// Plan.Priority value (ties by node ID). Used by list-scheduling
	// baselines such as critical-path-first.
	PolicyPriority
)

// String implements fmt.Stringer.
func (p SchedulePolicy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	case PolicyPriority:
		return "priority"
	default:
		return fmt.Sprintf("SchedulePolicy(%d)", int(p))
	}
}

// Plan is a placement plus an optional schedule for a graph: the output
// of Pesto and of every baseline, and the input to the simulator.
type Plan struct {
	// Device maps each node (by ID index) to the device executing it.
	Device []DeviceID

	// Order, when non-nil, gives the explicit execution order of the
	// operations assigned to each device (outer index: DeviceID).
	// Devices honor it strictly — exactly what Pesto enforces in
	// TensorFlow via control dependencies (§4). Devices may be absent
	// (nil inner slice) when they host no operations.
	Order [][]graph.NodeID

	// Policy selects the ready-queue discipline used for devices
	// without an explicit order; zero means PolicyFIFO.
	Policy SchedulePolicy

	// Priority holds per-node priorities for PolicyPriority.
	Priority []float64

	// Seed seeds PolicyRandom.
	Seed int64
}

// Clone returns a deep copy of the plan. Simulation never mutates a
// plan, so cloning is only needed when a caller wants to modify a plan
// (e.g. generate refinement moves) while other goroutines still read
// the original.
func (p Plan) Clone() Plan {
	out := Plan{Policy: p.Policy, Seed: p.Seed}
	if p.Device != nil {
		out.Device = append([]DeviceID(nil), p.Device...)
	}
	if p.Priority != nil {
		out.Priority = append([]float64(nil), p.Priority...)
	}
	if p.Order != nil {
		out.Order = make([][]graph.NodeID, len(p.Order))
		for d, ids := range p.Order {
			if ids != nil {
				out.Order[d] = append([]graph.NodeID(nil), ids...)
			}
		}
	}
	return out
}

// Errors reported by Plan validation and simulation.
var (
	ErrBadPlacement = errors.New("invalid placement")
	ErrOOM          = errors.New("out of device memory")
)

// Validate checks the plan against a graph and system: every node is
// placed on a compatible existing device, colocation groups stay
// together, and any explicit order covers exactly the nodes placed on
// that device.
func (p Plan) Validate(g *graph.Graph, sys System) error {
	if len(p.Device) != g.NumNodes() {
		return fmt.Errorf("%w: placement covers %d of %d nodes", ErrBadPlacement, len(p.Device), g.NumNodes())
	}
	colocDev := make(map[string]DeviceID)
	for _, n := range g.Nodes() {
		d := p.Device[n.ID]
		if _, ok := sys.Device(d); !ok {
			return fmt.Errorf("%w: node %d on unknown device %d", ErrBadPlacement, n.ID, d)
		}
		if !sys.CompatibleDevice(n.Kind, d) {
			return fmt.Errorf("%w: node %d (%v) on incompatible device %d", ErrBadPlacement, n.ID, n.Kind, d)
		}
		if n.Coloc != "" {
			if prev, ok := colocDev[n.Coloc]; ok && prev != d {
				return fmt.Errorf("%w: colocation group %q split across devices %d and %d", ErrBadPlacement, n.Coloc, prev, d)
			}
			colocDev[n.Coloc] = d
		}
	}
	if p.Order != nil {
		seen := make(map[graph.NodeID]bool, g.NumNodes())
		for dev, order := range p.Order {
			for _, id := range order {
				if int(id) < 0 || int(id) >= g.NumNodes() {
					return fmt.Errorf("%w: order references unknown node %d", ErrBadPlacement, id)
				}
				if p.Device[id] != DeviceID(dev) {
					return fmt.Errorf("%w: order of device %d contains node %d placed on %d", ErrBadPlacement, dev, id, p.Device[id])
				}
				if seen[id] {
					return fmt.Errorf("%w: node %d appears twice in order", ErrBadPlacement, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != g.NumNodes() {
			return fmt.Errorf("%w: order covers %d of %d nodes", ErrBadPlacement, len(seen), g.NumNodes())
		}
	}
	if p.Policy == PolicyPriority && len(p.Priority) != g.NumNodes() {
		return fmt.Errorf("%w: priority vector covers %d of %d nodes", ErrBadPlacement, len(p.Priority), g.NumNodes())
	}
	return nil
}

// MemoryUsage sums the memory footprint placed on each device.
func (p Plan) MemoryUsage(g *graph.Graph, sys System) map[DeviceID]int64 {
	use := make(map[DeviceID]int64, len(sys.Devices))
	for _, n := range g.Nodes() {
		if int(n.ID) < len(p.Device) {
			use[p.Device[n.ID]] += n.Memory
		}
	}
	return use
}

// CheckMemory returns an ErrOOM-wrapped error naming the first device
// whose cumulative memory footprint exceeds its capacity — the paper's
// memory approximation (§3.2.2 "Memory constraints") and the failure
// mode the Expert strategy hits on the large NASNet variants.
func (p Plan) CheckMemory(g *graph.Graph, sys System) error {
	use := p.MemoryUsage(g, sys)
	for _, d := range sys.Devices {
		if d.Memory > 0 && use[d.ID] > d.Memory {
			return fmt.Errorf("device %s needs %d of %d bytes: %w", d.Name, use[d.ID], d.Memory, ErrOOM)
		}
	}
	return nil
}
