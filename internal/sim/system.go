// Package sim provides the hardware model and discrete-event simulator
// that stand in for the paper's TensorFlow testbed (2× V100 + NVLink).
// It executes a placed (and optionally explicitly scheduled) DNN DAG on
// simulated devices connected by one-directional First-Come-First-Served
// communication links, the exact congestion semantics Pesto's ILP models
// (§3.2.1: "we model inter-device communication links as a
// First-Come-First-Served queue", no preemption anywhere).
//
// The simulator is deliberately shared between planning and evaluation:
// Pesto's ILP, the baselines, and the experiment harness all measure
// per-step training time through Run, so comparisons are apples to
// apples — mirroring §5.4 of the paper, where a simulator validated
// against the implementation (0.1–11.3% error) drives the exploratory
// studies.
package sim

import (
	"fmt"
	"time"

	"pesto/internal/comm"
	"pesto/internal/graph"
)

// DeviceID identifies a device within a System. The CPU is always
// device 0; GPUs follow.
type DeviceID int

// DeviceKind distinguishes the CPU host from GPU accelerators.
type DeviceKind int

const (
	// CPU is the host processor; it executes KindCPU and KindKernel
	// operations and is assumed to have ample memory.
	CPU DeviceKind = iota + 1
	// GPU is an accelerator with finite memory executing KindGPU
	// operations.
	GPU
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// Device describes one compute device.
type Device struct {
	ID   DeviceID
	Kind DeviceKind
	Name string
	// Memory is the device memory capacity in bytes; zero means
	// unlimited (used for the CPU).
	Memory int64
	// Speed scales compute time: an operation of cost p runs in
	// p/Speed. 1.0 matches the paper's V100 baseline; the Figure 8a
	// sweep raises it.
	Speed float64
	// Failed marks a device that has died (or been administratively
	// drained). Failed devices keep their ID — device IDs index plan
	// vectors — but GPUs() skips them and CompatibleDevice rejects
	// them, so Validate refuses plans that still use them and every
	// placement heuristic routes around them. See WithFailedDevice and
	// placement.Replan.
	Failed bool
}

// System is a host with one CPU and a set of GPUs, plus the fitted
// communication cost model shared by the planner and the simulator.
type System struct {
	Devices []Device
	Comm    *comm.CostModel

	// CongestionFree, when set, makes every directional link infinitely
	// parallel: transfers never queue behind each other. Real hardware
	// is never like this (§3.2.1) — the flag exists so planners can be
	// handed a congestion-blind world model for the Figure 5 ablation.
	CongestionFree bool

	// LinkOverrides refines the kind-based communication model with
	// per-device-pair models — the "hierarchical and heterogeneous
	// communication models" §3.2.2 mentions (e.g. NVLink within a host,
	// Ethernet between hosts). Keys are directed (from, to) pairs;
	// missing pairs fall back to the kind-based model.
	LinkOverrides map[[2]DeviceID]comm.Model
}

// NewSystem builds a system with one CPU and numGPUs GPUs of the given
// memory capacity, at unit compute speed, with the default NVLink/PCIe
// communication model. It mirrors the paper's testbed when called as
// NewSystem(2, 16<<30).
func NewSystem(numGPUs int, gpuMemory int64) System {
	s := System{Comm: comm.NewCostModel()}
	s.Devices = append(s.Devices, Device{ID: 0, Kind: CPU, Name: "cpu:0", Speed: 1})
	for i := 0; i < numGPUs; i++ {
		s.Devices = append(s.Devices, Device{
			ID:     DeviceID(i + 1),
			Kind:   GPU,
			Name:   fmt.Sprintf("gpu:%d", i),
			Memory: gpuMemory,
			Speed:  1,
		})
	}
	return s
}

// Clone returns a copy of the system whose Devices slice and
// LinkOverrides map are independent of the receiver's, so the copy can
// be mutated (speed scaling, memory lifting) while other goroutines
// still read the original. The communication cost model is shared: it
// is immutable after construction (Scaled returns a new model).
func (s System) Clone() System {
	out := System{Comm: s.Comm, CongestionFree: s.CongestionFree}
	if s.Devices != nil {
		out.Devices = append([]Device(nil), s.Devices...)
	}
	if s.LinkOverrides != nil {
		out.LinkOverrides = make(map[[2]DeviceID]comm.Model, len(s.LinkOverrides))
		for k, m := range s.LinkOverrides {
			out.LinkOverrides[k] = m
		}
	}
	return out
}

// CPUID returns the device ID of the host CPU.
func (s System) CPUID() DeviceID { return 0 }

// GPUs returns the IDs of the healthy GPU devices in order. Failed
// devices are skipped, so planners built on GPUs() automatically
// route around them.
func (s System) GPUs() []DeviceID {
	var out []DeviceID
	for _, d := range s.Devices {
		if d.Kind == GPU && !d.Failed {
			out = append(out, d.ID)
		}
	}
	return out
}

// WithFailedDevice returns a copy of the system with the given device
// marked failed. Plans placing work on it no longer Validate, and the
// placement machinery (which enumerates candidates via GPUs and
// CompatibleDevice) only considers the survivors.
func (s System) WithFailedDevice(id DeviceID) System {
	out := s.Clone()
	if int(id) >= 0 && int(id) < len(out.Devices) {
		out.Devices[id].Failed = true
	}
	return out
}

// Device returns the device with the given ID.
func (s System) Device(id DeviceID) (Device, bool) {
	if id < 0 || int(id) >= len(s.Devices) {
		return Device{}, false
	}
	return s.Devices[id], true
}

// WithComputeSpeed returns a copy of the system with every device's
// compute speed multiplied by factor (> 1 is faster hardware, the
// Figure 8a axis).
func (s System) WithComputeSpeed(factor float64) System {
	out := System{Comm: s.Comm, Devices: append([]Device(nil), s.Devices...), CongestionFree: s.CongestionFree, LinkOverrides: s.LinkOverrides}
	for i := range out.Devices {
		out.Devices[i].Speed *= factor
	}
	return out
}

// WithCommSpeed returns a copy of the system with the interconnect sped
// up (factor > 1) or slowed down (factor < 1), the Figure 8b axis.
func (s System) WithCommSpeed(factor float64) System {
	out := System{Comm: s.Comm.Scaled(factor), Devices: append([]Device(nil), s.Devices...), CongestionFree: s.CongestionFree}
	if s.LinkOverrides != nil {
		out.LinkOverrides = make(map[[2]DeviceID]comm.Model, len(s.LinkOverrides))
		for k, m := range s.LinkOverrides {
			scaled := m
			scaled.Beta0 = time.Duration(float64(m.Beta0) / factor)
			scaled.Beta1 = m.Beta1 / factor
			out.LinkOverrides[k] = scaled
		}
	}
	return out
}

// LinkTypeBetween classifies the link between two devices for the
// communication model.
func (s System) LinkTypeBetween(from, to DeviceID) comm.LinkType {
	fd, _ := s.Device(from)
	td, _ := s.Device(to)
	switch {
	case fd.Kind == CPU && td.Kind == GPU:
		return comm.CPUToGPU
	case fd.Kind == GPU && td.Kind == CPU:
		return comm.GPUToCPU
	default:
		return comm.GPUToGPU
	}
}

// TransferTime predicts the time to move bytes from one device to
// another; zero when the devices are the same (§2.1: colocated
// communication latency is negligible). Per-pair link overrides take
// precedence over the kind-based model.
func (s System) TransferTime(from, to DeviceID, bytes int64) time.Duration {
	if from == to {
		return 0
	}
	if m, ok := s.LinkOverrides[[2]DeviceID{from, to}]; ok {
		return m.Time(bytes)
	}
	return s.Comm.Time(s.LinkTypeBetween(from, to), bytes)
}

// NewMultiHostSystem builds a hierarchical system: hosts × gpusPerHost
// GPUs where intra-host GPU pairs communicate over NVLink and
// inter-host pairs over a datacenter network (≈25 GbE: 50µs latency,
// ~3 GB/s). One CPU stands in for all hosts' input pipelines.
func NewMultiHostSystem(hosts, gpusPerHost int, gpuMemory int64) System {
	s := NewSystem(hosts*gpusPerHost, gpuMemory)
	network := comm.Model{
		Type:  comm.GPUToGPU,
		Beta0: 50 * time.Microsecond,
		Beta1: 1e9 / 3e9,
		R2:    1,
	}
	s.LinkOverrides = make(map[[2]DeviceID]comm.Model)
	gpus := s.GPUs()
	hostOf := func(d DeviceID) int { return (int(d) - 1) / gpusPerHost }
	for _, a := range gpus {
		for _, b := range gpus {
			if a != b && hostOf(a) != hostOf(b) {
				s.LinkOverrides[[2]DeviceID{a, b}] = network
			}
		}
	}
	return s
}

// CompatibleDevice reports whether an operation of the given kind may be
// placed on the device (device affinity, §3.2.1).
func (s System) CompatibleDevice(kind graph.OpKind, id DeviceID) bool {
	d, ok := s.Device(id)
	if !ok || d.Failed {
		return false
	}
	switch kind {
	case graph.KindGPU:
		return d.Kind == GPU
	case graph.KindCPU, graph.KindKernel:
		return d.Kind == CPU
	default:
		return false
	}
}
