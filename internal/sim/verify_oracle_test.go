package sim_test

// Differential oracle between the simulator and the independent
// checker: on generated graphs, any plan sim.Run accepts must produce a
// timeline CheckExecution certifies — every invariant the checker
// re-derives (precedence through FCFS transfers, device serialization,
// link discipline, accounting) must hold of the simulator's own output.

import (
	"testing"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

func TestSimulatorOutputAlwaysVerifies(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g, err := gen.Generate(gen.RandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		for split := 0; split < 2; split++ {
			sys := sim.NewSystem(2, 16<<30)
			plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes())}
			grp := map[string]sim.DeviceID{}
			for _, nd := range g.Nodes() {
				if nd.Kind != graph.KindGPU {
					continue
				}
				d := sim.DeviceID(1 + (int(nd.ID)+split)%2)
				if nd.Coloc != "" {
					if prev, ok := grp[nd.Coloc]; ok {
						d = prev
					} else {
						grp[nd.Coloc] = d
					}
				}
				plan.Device[nd.ID] = d
			}
			res, err := sim.Run(g, sys, plan)
			if err != nil {
				t.Fatalf("seed %d split %d: %v", seed, split, err)
			}
			if err := verify.CheckExecution(g, sys, plan, res); err != nil {
				t.Fatalf("seed %d split %d: simulator output fails verification: %v", seed, split, err)
			}
		}
	}
}

func TestCongestionFreeOutputAlsoVerifies(t *testing.T) {
	// The checker skips the link discipline on congestion-free systems
	// but everything else must still hold.
	g, err := gen.Generate(gen.RandomConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, 16<<30)
	sys.CongestionFree = true
	plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes())}
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU {
			plan.Device[nd.ID] = sim.DeviceID(1 + int(nd.ID)%2)
		}
	}
	// Colocation groups onto one device.
	grp := map[string]sim.DeviceID{}
	for _, nd := range g.Nodes() {
		if nd.Coloc == "" || nd.Kind != graph.KindGPU {
			continue
		}
		if prev, ok := grp[nd.Coloc]; ok {
			plan.Device[nd.ID] = prev
		} else {
			grp[nd.Coloc] = plan.Device[nd.ID]
		}
	}
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckExecution(g, sys, plan, res); err != nil {
		t.Fatalf("congestion-free output fails verification: %v", err)
	}
}
