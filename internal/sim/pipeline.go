package sim

import (
	"fmt"
	"time"

	"pesto/internal/graph"
)

// PipelineMeta annotates a microbatch-replicated execution graph so the
// simulator (and the independent verifier) can account for it at
// pipeline granularity. The graph it describes replicates each pipeline
// stage into one forward task per microbatch — plus, for training
// pipelines, one backward task per microbatch — and PipelineMeta maps
// every node of that graph back to its (stage, microbatch, direction)
// coordinates. Host-side source tasks (input pre-processing on the
// CPU) carry stage and microbatch -1/m.
type PipelineMeta struct {
	// Stages is the number of pipeline stages S.
	Stages int
	// Microbatches is the number of microbatches M the step is split
	// into.
	Microbatches int
	// Discipline names the schedule that produced the per-device
	// orders: "gpipe", "1f1b", or "" when no discipline is claimed
	// (only the generic pipeline invariants then apply).
	Discipline string
	// StageOf maps each node of the pipeline graph to its stage index
	// in [0, Stages), or -1 for host-side source tasks.
	StageOf []int
	// MBOf maps each node to its microbatch index in [0, Microbatches).
	MBOf []int
	// Backward marks backward (gradient) tasks.
	Backward []bool
	// StageDevice is the device each stage's tasks run on.
	StageDevice []DeviceID
	// StageWeightBytes is the resident parameter footprint of each
	// stage — paid once per stage, independent of microbatch count.
	StageWeightBytes []int64
	// StageActBytes is the per-microbatch activation footprint a stage
	// holds from the moment its forward task for a microbatch starts
	// until that microbatch's backward task on the stage finishes (or
	// until the forward finishes, for inference pipelines with no
	// backward tasks).
	StageActBytes []int64
}

// Validate checks that the metadata is shaped for a graph of n nodes.
func (m PipelineMeta) Validate(n int) error {
	if m.Stages <= 0 || m.Microbatches <= 0 {
		return fmt.Errorf("pipeline meta: %d stages x %d microbatches", m.Stages, m.Microbatches)
	}
	if len(m.StageOf) != n || len(m.MBOf) != n || len(m.Backward) != n {
		return fmt.Errorf("pipeline meta: per-node slices sized %d/%d/%d for %d nodes",
			len(m.StageOf), len(m.MBOf), len(m.Backward), n)
	}
	if len(m.StageDevice) != m.Stages || len(m.StageWeightBytes) != m.Stages || len(m.StageActBytes) != m.Stages {
		return fmt.Errorf("pipeline meta: per-stage slices sized %d/%d/%d for %d stages",
			len(m.StageDevice), len(m.StageWeightBytes), len(m.StageActBytes), m.Stages)
	}
	for id, s := range m.StageOf {
		if s < -1 || s >= m.Stages {
			return fmt.Errorf("pipeline meta: node %d in stage %d of %d", id, s, m.Stages)
		}
		if mb := m.MBOf[id]; mb < -1 || mb >= m.Microbatches {
			return fmt.Errorf("pipeline meta: node %d in microbatch %d of %d", id, mb, m.Microbatches)
		}
	}
	return nil
}

// PipelineStageStats is the per-stage accounting of one simulated
// pipeline step.
type PipelineStageStats struct {
	// Device is the stage's device.
	Device DeviceID
	// Busy is the total compute time the stage's tasks occupied the
	// device.
	Busy time.Duration
	// Utilization is Busy / makespan — the fill fraction of the
	// stage's lane in the pipeline diagram.
	Utilization float64
	// PeakMemory is the stage's peak resident footprint: weights plus
	// the largest number of simultaneously live activations observed
	// in the simulated timeline times the per-microbatch activation
	// footprint.
	PeakMemory int64
	// PeakInFlight is the largest number of microbatches whose
	// activations were live on the stage at once (the quantity 1F1B
	// bounds near S and GPipe lets grow to M).
	PeakInFlight int
}

// PipelineAccounting reduces a simulated pipeline execution to
// per-stage statistics and the overall bubble fraction
// 1 - sum(stage busy) / (S * makespan): the fraction of the S device
// lanes the schedule left idle.
func PipelineAccounting(g *graph.Graph, meta PipelineMeta, res Result) ([]PipelineStageStats, float64, error) {
	if err := meta.Validate(g.NumNodes()); err != nil {
		return nil, 0, err
	}
	stats := make([]PipelineStageStats, meta.Stages)
	for s := range stats {
		stats[s].Device = meta.StageDevice[s]
	}
	// Busy time per stage from the realized windows (compute only:
	// transfers live on links, not device lanes).
	for _, n := range g.Nodes() {
		s := meta.StageOf[n.ID]
		if s < 0 {
			continue
		}
		stats[s].Busy += res.Finish[n.ID] - res.Start[n.ID]
	}
	// Activation lifetimes: live from forward start to the matching
	// backward finish (forward finish when no backward task exists).
	type window struct{ start, end time.Duration }
	live := make(map[[2]int]window) // (stage, microbatch) -> window
	for _, n := range g.Nodes() {
		s := meta.StageOf[n.ID]
		if s < 0 {
			continue
		}
		key := [2]int{s, meta.MBOf[n.ID]}
		w, ok := live[key]
		if !ok {
			w = window{start: res.Start[n.ID], end: res.Finish[n.ID]}
		} else {
			if res.Start[n.ID] < w.start {
				w.start = res.Start[n.ID]
			}
			if res.Finish[n.ID] > w.end {
				w.end = res.Finish[n.ID]
			}
		}
		live[key] = w
	}
	type edge struct {
		t     time.Duration
		delta int
	}
	perStage := make([][]edge, meta.Stages)
	for key, w := range live {
		perStage[key[0]] = append(perStage[key[0]], edge{w.start, +1}, edge{w.end, -1})
	}
	for s := range perStage {
		es := perStage[s]
		// Insertion-order independence: sort by time, releases before
		// acquisitions at the same instant (back-to-back microbatches
		// do not double-count).
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && (es[j].t < es[j-1].t || (es[j].t == es[j-1].t && es[j].delta < es[j-1].delta)); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		cur, peak := 0, 0
		for _, e := range es {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		stats[s].PeakInFlight = peak
		stats[s].PeakMemory = meta.StageWeightBytes[s] + int64(peak)*meta.StageActBytes[s]
		if res.Makespan > 0 {
			stats[s].Utilization = float64(stats[s].Busy) / float64(res.Makespan)
		}
	}
	var busy time.Duration
	for _, st := range stats {
		busy += st.Busy
	}
	bubble := 0.0
	if res.Makespan > 0 && meta.Stages > 0 {
		bubble = 1 - float64(busy)/(float64(meta.Stages)*float64(res.Makespan))
		if bubble < 0 {
			bubble = 0
		}
	}
	return stats, bubble, nil
}

// WithDeviceSpeed returns a copy of the system with one device's
// compute speed replaced (not scaled): the heterogeneous-hardware
// knob, where WithComputeSpeed scales the whole pool uniformly.
func (s System) WithDeviceSpeed(id DeviceID, speed float64) System {
	out := System{Comm: s.Comm, Devices: append([]Device(nil), s.Devices...), CongestionFree: s.CongestionFree, LinkOverrides: s.LinkOverrides}
	if int(id) < len(out.Devices) && speed > 0 {
		out.Devices[id].Speed = speed
	}
	return out
}

// WithGPUSpeeds returns a copy of the system with the i-th usable
// GPU's compute speed set to speeds[i] (extra entries are ignored,
// missing ones leave the GPU at its current speed; non-positive
// entries are skipped). This is the `-device-speeds` CLI surface.
func (s System) WithGPUSpeeds(speeds []float64) System {
	out := System{Comm: s.Comm, Devices: append([]Device(nil), s.Devices...), CongestionFree: s.CongestionFree, LinkOverrides: s.LinkOverrides}
	for i, d := range out.GPUs() {
		if i >= len(speeds) {
			break
		}
		if speeds[i] > 0 {
			out.Devices[d].Speed = speeds[i]
		}
	}
	return out
}
