package sim

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pesto/internal/graph"
)

const gpuMem = 16 << 30

func mustEdge(t *testing.T, g *graph.Graph, u, v graph.NodeID, bytes int64) {
	t.Helper()
	if err := g.AddEdge(u, v, bytes); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
}

func gpuNode(cost time.Duration) graph.Node {
	return graph.Node{Name: "op", Kind: graph.KindGPU, Cost: cost, Memory: 1 << 20, Layer: -1}
}

func TestChainOnOneGPU(t *testing.T) {
	g := graph.New(3)
	a := g.AddNode(gpuNode(10 * time.Microsecond))
	b := g.AddNode(gpuNode(20 * time.Microsecond))
	c := g.AddNode(gpuNode(30 * time.Microsecond))
	mustEdge(t, g, a, b, 1024)
	mustEdge(t, g, b, c, 1024)
	sys := NewSystem(2, gpuMem)
	plan := Plan{Device: []DeviceID{1, 1, 1}}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Makespan != 60*time.Microsecond {
		t.Fatalf("makespan = %v, want 60µs (no transfer cost on-device)", res.Makespan)
	}
	if len(res.Transfers) != 0 {
		t.Fatalf("on-device edges produced %d transfers", len(res.Transfers))
	}
	if res.DeviceBusy[1] != 60*time.Microsecond {
		t.Fatalf("busy = %v", res.DeviceBusy[1])
	}
	if u := res.Utilization(1); u != 1 {
		t.Fatalf("utilization = %g, want 1", u)
	}
}

func TestCrossDeviceTransferAddsLatency(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode(10 * time.Microsecond))
	b := g.AddNode(gpuNode(10 * time.Microsecond))
	const bytes = 1 << 20
	mustEdge(t, g, a, b, bytes)
	sys := NewSystem(2, gpuMem)
	plan := Plan{Device: []DeviceID{1, 2}}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tt := sys.TransferTime(1, 2, bytes)
	want := 10*time.Microsecond + tt + 10*time.Microsecond
	if res.Makespan != want {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if len(res.Transfers) != 1 {
		t.Fatalf("transfers = %d, want 1", len(res.Transfers))
	}
	tr := res.Transfers[0]
	if tr.From != 1 || tr.To != 2 || tr.Queued() != 0 {
		t.Fatalf("unexpected transfer %+v", tr)
	}
}

func TestFCFSLinkCongestion(t *testing.T) {
	// Two producers on GPU0 finish back to back; both send to GPU1.
	// The second transfer must queue behind the first (§3.2.1 FCFS).
	g := graph.New(4)
	p1 := g.AddNode(gpuNode(10 * time.Microsecond))
	p2 := g.AddNode(gpuNode(10 * time.Microsecond))
	c1 := g.AddNode(gpuNode(time.Microsecond))
	c2 := g.AddNode(gpuNode(time.Microsecond))
	const bytes = 4 << 20
	mustEdge(t, g, p1, c1, bytes)
	mustEdge(t, g, p2, c2, bytes)
	sys := NewSystem(2, gpuMem)
	plan := Plan{Device: []DeviceID{1, 1, 2, 2}}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Transfers) != 2 {
		t.Fatalf("transfers = %d, want 2", len(res.Transfers))
	}
	first, second := res.Transfers[0], res.Transfers[1]
	if second.Start < first.Finish {
		t.Fatalf("link not FCFS-serialized: second starts %v before first finishes %v", second.Start, first.Finish)
	}
	if second.Queued() <= 0 {
		t.Fatalf("second transfer should have queued, got %v", second.Queued())
	}
	if res.MaxQueueing() != second.Queued() {
		t.Fatalf("MaxQueueing mismatch")
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	// GPU0→GPU1 and GPU1→GPU0 are distinct one-way links.
	g := graph.New(4)
	a := g.AddNode(gpuNode(10 * time.Microsecond))
	b := g.AddNode(gpuNode(time.Microsecond))
	c := g.AddNode(gpuNode(10 * time.Microsecond))
	d := g.AddNode(gpuNode(time.Microsecond))
	const bytes = 4 << 20
	mustEdge(t, g, a, b, bytes) // GPU1 -> GPU2
	mustEdge(t, g, c, d, bytes) // GPU2 -> GPU1
	sys := NewSystem(2, gpuMem)
	plan := Plan{Device: []DeviceID{1, 2, 2, 1}}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tr := range res.Transfers {
		if tr.Queued() != 0 {
			t.Fatalf("opposite-direction transfer queued: %+v", tr)
		}
	}
}

func TestStrictOrderIsHonored(t *testing.T) {
	// Two independent ops on one GPU; the order forces the long one
	// first even though FIFO would pick the other (lower ID, same ready
	// time).
	g := graph.New(2)
	short := g.AddNode(gpuNode(1 * time.Microsecond))
	long := g.AddNode(gpuNode(50 * time.Microsecond))
	sys := NewSystem(1, gpuMem)
	plan := Plan{
		Device: []DeviceID{1, 1},
		Order:  [][]graph.NodeID{nil, {long, short}},
	}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Start[long] != 0 || res.Start[short] != 50*time.Microsecond {
		t.Fatalf("order not honored: start(long)=%v start(short)=%v", res.Start[long], res.Start[short])
	}
}

func TestInvalidOrderDeadlocksWithError(t *testing.T) {
	// a -> b on the same device but ordered b first: head-of-line
	// blocking must be detected as a deadlock, not an infinite loop.
	g := graph.New(2)
	a := g.AddNode(gpuNode(time.Microsecond))
	b := g.AddNode(gpuNode(time.Microsecond))
	mustEdge(t, g, a, b, 8)
	sys := NewSystem(1, gpuMem)
	plan := Plan{Device: []DeviceID{1, 1}, Order: [][]graph.NodeID{nil, {b, a}}}
	if _, err := Run(g, sys, plan); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestPriorityPolicy(t *testing.T) {
	g := graph.New(2)
	lo := g.AddNode(gpuNode(time.Microsecond))
	hi := g.AddNode(gpuNode(time.Microsecond))
	sys := NewSystem(1, gpuMem)
	plan := Plan{
		Device:   []DeviceID{1, 1},
		Policy:   PolicyPriority,
		Priority: []float64{1, 10},
	}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Start[hi] != 0 {
		t.Fatalf("high-priority op started at %v", res.Start[hi])
	}
	if res.Start[lo] != time.Microsecond {
		t.Fatalf("low-priority op started at %v", res.Start[lo])
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New(20)
	for i := 0; i < 20; i++ {
		g.AddNode(gpuNode(time.Duration(1+rng.Intn(50)) * time.Microsecond))
	}
	for i := 0; i < 15; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u >= v {
			continue
		}
		_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1024)
	}
	sys := NewSystem(2, gpuMem)
	dev := make([]DeviceID, 20)
	for i := range dev {
		dev[i] = DeviceID(1 + i%2)
	}
	planA := Plan{Device: dev, Policy: PolicyRandom, Seed: 42}
	r1, err := Run(g, sys, planA)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(g, sys, planA)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed, different makespans: %v vs %v", r1.Makespan, r2.Makespan)
	}
}

func TestOOMDetected(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Microsecond, Memory: 10 << 30})
	b := g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Microsecond, Memory: 10 << 30})
	mustEdge(t, g, a, b, 8)
	sys := NewSystem(2, 16<<30)
	// Both 10 GB ops on one 16 GB GPU: OOM.
	if _, err := Run(g, sys, Plan{Device: []DeviceID{1, 1}}); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	// Split across GPUs: fits.
	if _, err := Run(g, sys, Plan{Device: []DeviceID{1, 2}}); err != nil {
		t.Fatalf("split placement: %v", err)
	}
}

func TestPlacementValidation(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{Kind: graph.KindCPU, Cost: time.Microsecond})
	g.AddNode(gpuNode(time.Microsecond))
	sys := NewSystem(1, gpuMem)
	cases := []Plan{
		{Device: []DeviceID{0}},               // wrong length
		{Device: []DeviceID{1, 1}},            // CPU op on GPU
		{Device: []DeviceID{0, 0}},            // GPU op on CPU
		{Device: []DeviceID{0, DeviceID(99)}}, // unknown device
	}
	for i, p := range cases {
		if _, err := Run(g, sys, p); !errors.Is(err, ErrBadPlacement) {
			t.Errorf("case %d: err = %v, want ErrBadPlacement", i, err)
		}
	}
}

func TestColocValidation(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: 1, Coloc: "grp"})
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: 1, Coloc: "grp"})
	sys := NewSystem(2, gpuMem)
	if _, err := Run(g, sys, Plan{Device: []DeviceID{1, 2}}); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("split coloc group: err = %v, want ErrBadPlacement", err)
	}
}

func TestKernelOpsRunOnCPU(t *testing.T) {
	g := graph.New(2)
	k := g.AddNode(graph.Node{Kind: graph.KindKernel, Cost: 5 * time.Microsecond})
	op := g.AddNode(gpuNode(10 * time.Microsecond))
	mustEdge(t, g, k, op, 256)
	sys := NewSystem(1, gpuMem)
	plan := Plan{Device: []DeviceID{0, 1}}
	res, err := Run(g, sys, plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DeviceBusy[0] != 5*time.Microsecond {
		t.Fatalf("kernel op not on CPU: busy=%v", res.DeviceBusy[0])
	}
	if len(res.Transfers) != 1 {
		t.Fatalf("CPU→GPU transfer missing")
	}
}

func TestComputeSpeedScaling(t *testing.T) {
	g := graph.New(1)
	g.AddNode(gpuNode(100 * time.Microsecond))
	sys := NewSystem(1, gpuMem)
	fast := sys.WithComputeSpeed(4)
	r1, err := Run(g, sys, Plan{Device: []DeviceID{1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, fast, Plan{Device: []DeviceID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Makespan*4 != r1.Makespan {
		t.Fatalf("4x speed: %v vs %v", r2.Makespan, r1.Makespan)
	}
}

func TestCommSpeedScaling(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode(time.Microsecond))
	b := g.AddNode(gpuNode(time.Microsecond))
	mustEdge(t, g, a, b, 8<<20)
	sys := NewSystem(2, gpuMem)
	slow := sys.WithCommSpeed(0.1)
	r1, err := Run(g, sys, Plan{Device: []DeviceID{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, slow, Plan{Device: []DeviceID{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Makespan <= r1.Makespan {
		t.Fatalf("slower interconnect should increase makespan: %v vs %v", r2.Makespan, r1.Makespan)
	}
}

// TestPropertySimulatorInvariants: on random DAGs with random valid
// placements, (a) makespan >= critical path (at unit speed), (b) every
// node starts after all predecessors' data arrives, (c) device busy time
// <= makespan, (d) no two ops overlap on one device.
func TestPropertySimulatorInvariants(t *testing.T) {
	sys := NewSystem(2, gpuMem)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(gpuNode(time.Duration(1+rng.Intn(200)) * time.Microsecond))
		}
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u >= v {
				continue
			}
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(rng.Intn(1<<18)))
		}
		dev := make([]DeviceID, n)
		for i := range dev {
			dev[i] = DeviceID(1 + rng.Intn(2))
		}
		res, err := Run(g, sys, Plan{Device: dev, Policy: PolicyFIFO})
		if err != nil {
			return false
		}
		cp, _, err := g.CriticalPath()
		if err != nil || res.Makespan < cp {
			return false
		}
		// Precedence with transfer times.
		for _, e := range g.Edges() {
			arrive := res.Finish[e.From]
			if dev[e.From] != dev[e.To] {
				arrive += sys.TransferTime(dev[e.From], dev[e.To], e.Bytes)
			}
			if res.Start[e.To] < arrive {
				return false
			}
		}
		// Non-overlap per device.
		type win struct{ s, f time.Duration }
		byDev := make(map[DeviceID][]win)
		for i := 0; i < n; i++ {
			id := graph.NodeID(i)
			byDev[dev[i]] = append(byDev[dev[i]], win{res.Start[id], res.Finish[id]})
		}
		for d, ws := range byDev {
			if res.DeviceBusy[d] > res.Makespan {
				return false
			}
			for i := range ws {
				for j := i + 1; j < len(ws); j++ {
					a, b := ws[i], ws[j]
					if a.s < b.f && b.s < a.f {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCongestionFreeLinksDoNotQueue(t *testing.T) {
	// Two simultaneous same-direction transfers: the FCFS system
	// queues the second; the congestion-free belief does not.
	g := graph.New(4)
	p1 := g.AddNode(gpuNode(10 * time.Microsecond))
	p2 := g.AddNode(gpuNode(10 * time.Microsecond))
	c1 := g.AddNode(gpuNode(time.Microsecond))
	c2 := g.AddNode(gpuNode(time.Microsecond))
	const bytes = 4 << 20
	mustEdge(t, g, p1, c1, bytes)
	mustEdge(t, g, p2, c2, bytes)
	plan := Plan{Device: []DeviceID{1, 1, 2, 2}}

	real := NewSystem(2, gpuMem)
	rr, err := Run(g, real, plan)
	if err != nil {
		t.Fatal(err)
	}
	blind := real
	blind.CongestionFree = true
	br, err := Run(g, blind, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rr.MaxQueueing() <= 0 {
		t.Fatal("real system should queue")
	}
	if br.MaxQueueing() != 0 {
		t.Fatalf("congestion-free system queued: %v", br.MaxQueueing())
	}
	if br.Makespan >= rr.Makespan {
		t.Fatalf("congestion-free makespan %v not below real %v", br.Makespan, rr.Makespan)
	}
}

func TestSpeedScalingPreservesCongestionFree(t *testing.T) {
	s := NewSystem(2, gpuMem)
	s.CongestionFree = true
	if !s.WithComputeSpeed(2).CongestionFree || !s.WithCommSpeed(2).CongestionFree {
		t.Fatal("With*Speed dropped the CongestionFree flag")
	}
}

func TestMultiHostLinkOverrides(t *testing.T) {
	sys := NewMultiHostSystem(2, 2, gpuMem) // gpus 1,2 on host0; 3,4 on host1
	const b = 8 << 20
	intra := sys.TransferTime(1, 2, b)
	inter := sys.TransferTime(1, 3, b)
	if inter <= intra {
		t.Fatalf("inter-host %v should exceed intra-host %v", inter, intra)
	}
	// Overrides survive speed scaling; 2x comm speed halves (approx)
	// inter-host times too.
	fast := sys.WithCommSpeed(2)
	if got := fast.TransferTime(1, 3, b); got >= inter {
		t.Fatalf("scaled inter-host %v not faster than %v", got, inter)
	}
	// Simulation across hosts works end to end.
	g := graph.New(2)
	a := g.AddNode(gpuNode(time.Microsecond))
	c := g.AddNode(gpuNode(time.Microsecond))
	mustEdge(t, g, a, c, b)
	res, err := Run(g, sys, Plan{Device: []DeviceID{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < inter {
		t.Fatalf("makespan %v below the inter-host transfer %v", res.Makespan, inter)
	}
}

func TestHeterogeneousDeviceSpeeds(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode(100 * time.Microsecond))
	b := g.AddNode(gpuNode(100 * time.Microsecond))
	sys := NewSystem(2, gpuMem)
	sys.Devices[2].Speed = 2
	res, err := Run(g, sys, Plan{Device: []DeviceID{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[a] != 100*time.Microsecond || res.Finish[b] != 50*time.Microsecond {
		t.Fatalf("finish times %v %v, want 100µs and 50µs", res.Finish[a], res.Finish[b])
	}
}

func TestPlanCloneIsDeep(t *testing.T) {
	p := Plan{
		Device:   []DeviceID{1, 2, 1},
		Order:    [][]graph.NodeID{nil, {0, 2}, {1}},
		Policy:   PolicyPriority,
		Priority: []float64{3, 2, 1},
		Seed:     7,
	}
	c := p.Clone()
	c.Device[0] = 2
	c.Order[1][0] = 1
	c.Priority[0] = 99
	if p.Device[0] != 1 || p.Order[1][0] != 0 || p.Priority[0] != 3 {
		t.Fatalf("Clone shares backing storage with original: %+v", p)
	}
	if c.Policy != p.Policy || c.Seed != p.Seed {
		t.Fatalf("Clone dropped scalar fields: %+v", c)
	}
	if p.Order[0] != nil || c.Order[0] != nil {
		t.Fatal("nil inner order must stay nil")
	}
}

func TestSystemCloneIsIndependent(t *testing.T) {
	sys := NewMultiHostSystem(2, 2, gpuMem)
	c := sys.Clone()
	c.Devices[1].Speed = 99
	for k := range c.LinkOverrides {
		m := c.LinkOverrides[k]
		m.Beta1 *= 100
		c.LinkOverrides[k] = m
		break
	}
	if sys.Devices[1].Speed == 99 {
		t.Fatal("Clone shares the Devices slice")
	}
	for k, m := range sys.LinkOverrides {
		if c.LinkOverrides[k].Beta1 != m.Beta1 {
			// exactly one key was perturbed in the clone; the original
			// must be untouched
			if m.Beta1 == c.LinkOverrides[k].Beta1 {
				t.Fatal("Clone shares the LinkOverrides map")
			}
		}
	}
}

// TestRunIsReentrant runs many simulations of the same graph, system
// and plan concurrently and checks they all agree with a sequential
// run — the property the placement engine relies on to evaluate
// candidates in parallel (run it under -race to audit sharing).
func TestRunIsReentrant(t *testing.T) {
	g := graph.New(8)
	var prev graph.NodeID = -1
	for i := 0; i < 8; i++ {
		id := g.AddNode(gpuNode(time.Duration(10+i) * time.Microsecond))
		if prev >= 0 {
			mustEdge(t, g, prev, id, 1<<16)
		}
		prev = id
	}
	sys := NewSystem(2, gpuMem)
	plan := Plan{Device: []DeviceID{1, 1, 2, 2, 1, 1, 2, 2}, Policy: PolicyFIFO}
	want, err := Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]time.Duration, 16)
	errs := make([]error, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := Run(g, sys, plan)
			got[i], errs[i] = r.Makespan, err
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if got[i] != want.Makespan {
			t.Fatalf("concurrent run %d: makespan %v != sequential %v", i, got[i], want.Makespan)
		}
	}
}
