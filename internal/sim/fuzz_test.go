package sim

import (
	"testing"
	"time"

	"pesto/internal/graph"
)

// FuzzRunNeverPanics drives the simulator with arbitrary structured
// inputs (graph shape + placement bytes): every outcome must be either
// a clean error or a result satisfying basic invariants — never a panic
// or a hang.
func FuzzRunNeverPanics(f *testing.F) {
	f.Add(uint8(3), uint8(2), []byte{0, 1, 2})
	f.Add(uint8(5), uint8(1), []byte{1, 1, 1, 1, 1})
	f.Add(uint8(4), uint8(3), []byte{9, 0, 1, 2})
	f.Add(uint8(0), uint8(2), []byte{})
	f.Fuzz(func(t *testing.T, n, gpus uint8, placement []byte) {
		if n > 24 {
			n = 24
		}
		if gpus > 4 {
			gpus = 4
		}
		g := graph.New(int(n))
		for i := 0; i < int(n); i++ {
			kind := graph.KindGPU
			if i%5 == 4 {
				kind = graph.KindCPU
			}
			g.AddNode(graph.Node{
				Name: "op", Kind: kind,
				Cost:   time.Duration(1+i) * time.Microsecond,
				Memory: int64(i) << 10,
			})
		}
		// Deterministic forward edges derived from the sizes.
		for i := 0; i+1 < int(n); i++ {
			_ = g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), int64(i)<<8)
			if i+3 < int(n) {
				_ = g.AddEdge(graph.NodeID(i), graph.NodeID(i+3), 64)
			}
		}
		sys := NewSystem(int(gpus), 16<<30)
		dev := make([]DeviceID, int(n))
		for i := range dev {
			b := byte(0)
			if i < len(placement) {
				b = placement[i]
			}
			dev[i] = DeviceID(int(b) % (int(gpus) + 2)) // may be invalid on purpose
		}
		res, err := Run(g, sys, Plan{Device: dev})
		if err != nil {
			return // rejection is a valid outcome
		}
		if res.Makespan < 0 {
			t.Fatal("negative makespan")
		}
		for i := 0; i < int(n); i++ {
			if res.Finish[i] < res.Start[i] {
				t.Fatalf("op %d finishes before it starts", i)
			}
		}
	})
}
