package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"pesto/internal/graph"
)

// jsonPlan is the serialized form of a Plan: the artifact a deployment
// would hand to the training runtime (the paper's implementation
// injects it into tf.Session, §4).
type jsonPlan struct {
	Device   []int     `json:"device"`
	Order    [][]int   `json:"order,omitempty"`
	Policy   int       `json:"policy,omitempty"`
	Priority []float64 `json:"priority,omitempty"`
	Seed     int64     `json:"seed,omitempty"`
}

// MarshalJSON serializes the plan.
func (p Plan) MarshalJSON() ([]byte, error) {
	out := jsonPlan{
		Device:   make([]int, len(p.Device)),
		Policy:   int(p.Policy),
		Priority: p.Priority,
		Seed:     p.Seed,
	}
	for i, d := range p.Device {
		out.Device[i] = int(d)
	}
	if p.Order != nil {
		out.Order = make([][]int, len(p.Order))
		for dev, ids := range p.Order {
			out.Order[dev] = make([]int, len(ids))
			for i, id := range ids {
				out.Order[dev][i] = int(id)
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON replaces the receiver with the serialized plan.
// Structural validation against a graph happens at use time via
// Plan.Validate.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var in jsonPlan
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decode plan: %w", err)
	}
	out := Plan{
		Policy:   SchedulePolicy(in.Policy),
		Priority: in.Priority,
		Seed:     in.Seed,
		Device:   make([]DeviceID, len(in.Device)),
	}
	for i, d := range in.Device {
		out.Device[i] = DeviceID(d)
	}
	if in.Order != nil {
		out.Order = make([][]graph.NodeID, len(in.Order))
		for dev, ids := range in.Order {
			out.Order[dev] = make([]graph.NodeID, len(ids))
			for i, id := range ids {
				out.Order[dev][i] = graph.NodeID(id)
			}
		}
	}
	*p = out
	return nil
}

// WritePlanJSON writes a plan to w.
func WritePlanJSON(w io.Writer, p Plan) error {
	data, err := p.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadPlanJSON parses a plan from r.
func ReadPlanJSON(r io.Reader) (Plan, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if err := p.UnmarshalJSON(data); err != nil {
		return Plan{}, err
	}
	return p, nil
}
