package sim_test

// External test package: internal/fault implements sim.Injector, so
// tests that drive the simulator through a real injector must live
// outside package sim to avoid an import cycle.

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pesto/internal/fault"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

const injGPUMem = 16 << 30

func randomGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{
			Name: "op", Kind: graph.KindGPU, Layer: -1,
			Cost:   time.Duration(1+rng.Intn(200)) * time.Microsecond,
			Memory: 1 << 20,
		})
	}
	for k := 0; k < 2*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u < v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(rng.Intn(1<<18)))
		}
	}
	return g
}

func alternatingPlan(n int) sim.Plan {
	dev := make([]sim.DeviceID, n)
	for i := range dev {
		dev[i] = sim.DeviceID(1 + i%2)
	}
	return sim.Plan{Device: dev, Policy: sim.PolicyFIFO}
}

func TestRunInjectedNilIsRun(t *testing.T) {
	g := randomGraph(1, 30)
	sys := sim.NewSystem(2, injGPUMem)
	plan := alternatingPlan(30)
	a, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunInjected(g, sys, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceString() != b.TraceString() {
		t.Fatal("RunInjected(nil) diverges from Run")
	}
}

func TestRunInjectedDeterministic(t *testing.T) {
	g := randomGraph(2, 40)
	sys := sim.NewSystem(2, injGPUMem)
	plan := alternatingPlan(40)
	const specStr = "seed=42;straggler:p=0.2,mult=8;link:*,scale=2,stall=50us@100us"
	spec, err := fault.ParseSpec(specStr)
	if err != nil {
		t.Fatal(err)
	}
	var traces []string
	for i := 0; i < 5; i++ {
		// A fresh injector each round: determinism must come from the
		// spec, not injector instance state.
		r, err := sim.RunInjected(g, sys, plan, fault.New(spec))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		traces = append(traces, r.TraceString())
	}
	for i := 1; i < len(traces); i++ {
		if traces[i] != traces[0] {
			t.Fatalf("round %d trace differs from round 0", i)
		}
	}
	clean, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	var r sim.Result
	if r, err = sim.RunInjected(g, sys, plan, fault.New(spec)); err != nil {
		t.Fatal(err)
	}
	if r.Makespan < clean.Makespan {
		t.Fatalf("stragglers + degraded links shortened the step: %v < %v", r.Makespan, clean.Makespan)
	}
}

func TestRunInjectedDeviceFailure(t *testing.T) {
	g := randomGraph(3, 30)
	sys := sim.NewSystem(2, injGPUMem)
	plan := alternatingPlan(30)
	clean, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	spec := fault.Spec{Fail: []fault.DeviceFailure{{Dev: 2, At: clean.Makespan / 2}}}
	_, err = sim.RunInjected(g, sys, plan, fault.New(spec))
	if !errors.Is(err, sim.ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	var dfe *sim.DeviceFailedError
	if !errors.As(err, &dfe) {
		t.Fatalf("err %v is not a *DeviceFailedError", err)
	}
	if dfe.Device != 2 || dfe.At != clean.Makespan/2 {
		t.Fatalf("failure detail = %+v", dfe)
	}
	// A failure after the step completes is harmless.
	late := fault.Spec{Fail: []fault.DeviceFailure{{Dev: 2, At: clean.Makespan + time.Second}}}
	if _, err := sim.RunInjected(g, sys, plan, fault.New(late)); err != nil {
		t.Fatalf("post-step failure aborted the run: %v", err)
	}
}

func TestRunInjectedMidRunOOM(t *testing.T) {
	g := randomGraph(4, 30)
	sys := sim.NewSystem(2, injGPUMem)
	plan := alternatingPlan(30)
	clean, err := sim.Run(g, sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	// The static CheckMemory passes (footprint well under 16 GB), but
	// the injected capacity collapse mid-step must surface ErrOOM.
	spec := fault.Spec{Mem: []fault.MemFault{{Dev: 2, Frac: 0, At: clean.Makespan / 2}}}
	_, err = sim.RunInjected(g, sys, plan, fault.New(spec))
	if !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestWithFailedDevice(t *testing.T) {
	sys := sim.NewSystem(2, injGPUMem)
	failed := sys.WithFailedDevice(2)
	if len(sys.GPUs()) != 2 {
		t.Fatal("WithFailedDevice mutated the original system")
	}
	if got := failed.GPUs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("survivor GPUs = %v, want [1]", got)
	}
	if len(failed.Devices) != len(sys.Devices) {
		t.Fatal("failed device removed instead of marked: device IDs must stay stable")
	}
	// Plans touching the failed device no longer validate.
	g := graph.New(1)
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Microsecond, Layer: -1})
	if _, err := sim.Run(g, failed, sim.Plan{Device: []sim.DeviceID{2}}); !errors.Is(err, sim.ErrBadPlacement) {
		t.Fatalf("placement on failed device: err = %v, want ErrBadPlacement", err)
	}
	if _, err := sim.Run(g, failed, sim.Plan{Device: []sim.DeviceID{1}}); err != nil {
		t.Fatalf("placement on survivor: %v", err)
	}
}

func TestCheckMemoryMultiHost(t *testing.T) {
	// 2 hosts × 2 GPUs, tiny capacity: the per-device constraint must
	// hold on every host, and ErrOOM must be errors.Is-matchable.
	sys := sim.NewMultiHostSystem(2, 2, 3<<20)
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: time.Microsecond, Memory: 2 << 20, Layer: -1})
	}
	// Two 2 MB ops on a 3 MB remote-host GPU: OOM there.
	plan := sim.Plan{Device: []sim.DeviceID{1, 3, 3, 4}}
	if err := plan.CheckMemory(g, sys); !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("CheckMemory = %v, want ErrOOM", err)
	}
	if _, err := sim.Run(g, sys, plan); !errors.Is(err, sim.ErrOOM) {
		t.Fatalf("Run = %v, want ErrOOM", err)
	}
	// Spread over all four GPUs: fits and simulates.
	ok := sim.Plan{Device: []sim.DeviceID{1, 2, 3, 4}}
	if err := ok.CheckMemory(g, sys); err != nil {
		t.Fatalf("spread plan CheckMemory: %v", err)
	}
	if _, err := sim.Run(g, sys, ok); err != nil {
		t.Fatalf("spread plan Run: %v", err)
	}
}

// FuzzRunInjectedNeverPanics: under arbitrary fault specs and graph
// shapes, the simulator must return a clean error or a valid Result —
// never panic, never report Finish < Start for an executed op.
func FuzzRunInjectedNeverPanics(f *testing.F) {
	f.Add(int64(1), "seed=42;straggler:p=0.5,mult=8")
	f.Add(int64(2), "fail:2@100us")
	f.Add(int64(3), "mem:1,frac=0.1@50us;link:*,scale=10,stall=1ms@0s")
	f.Add(int64(4), "")
	f.Fuzz(func(t *testing.T, gseed int64, specStr string) {
		spec, err := fault.ParseSpec(specStr)
		if err != nil {
			return
		}
		n := 3 + int(uint64(gseed)%37)
		g := randomGraph(gseed, n)
		sys := sim.NewSystem(2, injGPUMem)
		r, err := sim.RunInjected(g, sys, alternatingPlan(n), fault.New(spec))
		if err != nil {
			return
		}
		for i := range r.Start {
			if r.Finish[i] < r.Start[i] {
				t.Fatalf("op %d: finish %v before start %v", i, r.Finish[i], r.Start[i])
			}
		}
		if r.Makespan < 0 {
			t.Fatalf("negative makespan %v", r.Makespan)
		}
	})
}
