package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pesto/internal/graph"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Device:   []DeviceID{0, 1, 2, 1},
		Order:    [][]graph.NodeID{nil, {1, 3}, {2}},
		Policy:   PolicyPriority,
		Priority: []float64{1, 2, 3, 4},
		Seed:     7,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Normalize the nil-vs-empty inner slice difference.
	if len(back.Order[0]) != 0 {
		t.Fatalf("order[0] = %v", back.Order[0])
	}
	back.Order[0] = nil
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip differs:\n%+v\n%+v", p, back)
	}
}

func TestPlanJSONHelpers(t *testing.T) {
	p := Plan{Device: []DeviceID{1, 2}}
	var buf bytes.Buffer
	if err := WritePlanJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Device, back.Device) {
		t.Fatal("devices differ")
	}
	if _, err := ReadPlanJSON(bytes.NewBufferString("{")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestPlanJSONValidatesAtUse(t *testing.T) {
	// A decoded plan with nonsense devices is rejected by Run, not by
	// decoding.
	g := graph.New(1)
	g.AddNode(graph.Node{Kind: graph.KindGPU, Cost: 1})
	var p Plan
	if err := json.Unmarshal([]byte(`{"device":[9]}`), &p); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, NewSystem(1, 1<<30), p); err == nil {
		t.Fatal("expected validation error at use time")
	}
}
