package sim

import (
	"math"
	"testing"
	"time"

	"pesto/internal/graph"
)

// pipelineFixture builds a hand-placed S=2, M=2 training pipeline with a
// fully known timeline:
//
//	stage 0 (GPU 1): F0 [0,10) F1 [10,20) B1 [40,60) B0 [60,80)
//	stage 1 (GPU 2): F0 [10,20) F1 [20,30) B1 [30,40) ... B0 waits
//
// Backward tasks cost 2x forward. The windows below are authored
// directly in a Result so the accounting math is checked against exact
// numbers rather than against the simulator.
func pipelineFixture() (*graph.Graph, PipelineMeta, Result) {
	const us = time.Microsecond
	g := graph.New(8)
	// Node layout: f[s][m] then b[s][m].
	var f, b [2][2]graph.NodeID
	for s := 0; s < 2; s++ {
		for m := 0; m < 2; m++ {
			f[s][m] = g.AddNode(gpuNode(10 * us))
		}
	}
	for s := 0; s < 2; s++ {
		for m := 0; m < 2; m++ {
			b[s][m] = g.AddNode(gpuNode(20 * us))
		}
	}
	meta := PipelineMeta{
		Stages:           2,
		Microbatches:     2,
		Discipline:       "gpipe",
		StageOf:          make([]int, 8),
		MBOf:             make([]int, 8),
		Backward:         make([]bool, 8),
		StageDevice:      []DeviceID{1, 2},
		StageWeightBytes: []int64{100, 200},
		StageActBytes:    []int64{10, 20},
	}
	res := Result{Makespan: 80 * us, Start: make([]time.Duration, 8), Finish: make([]time.Duration, 8)}
	set := func(id graph.NodeID, s, m int, bwd bool, start, end time.Duration) {
		meta.StageOf[id], meta.MBOf[id], meta.Backward[id] = s, m, bwd
		res.Start[id], res.Finish[id] = start, end
	}
	set(f[0][0], 0, 0, false, 0, 10*us)
	set(f[0][1], 0, 1, false, 10*us, 20*us)
	set(f[1][0], 1, 0, false, 10*us, 20*us)
	set(f[1][1], 1, 1, false, 20*us, 30*us)
	set(b[1][1], 1, 1, true, 30*us, 50*us)
	set(b[1][0], 1, 0, true, 50*us, 70*us)
	set(b[0][1], 0, 1, true, 50*us, 70*us)
	set(b[0][0], 0, 0, true, 70*us, 90*us)
	res.Makespan = 90 * us
	return g, meta, res
}

func TestPipelineAccounting(t *testing.T) {
	g, meta, res := pipelineFixture()
	stats, bubble, err := PipelineAccounting(g, meta, res)
	if err != nil {
		t.Fatalf("PipelineAccounting: %v", err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d stage stats", len(stats))
	}
	// Busy: each stage runs 2 forwards (10µs) + 2 backwards (20µs) = 60µs.
	for s, st := range stats {
		if st.Busy != 60*time.Microsecond {
			t.Errorf("stage %d busy = %v, want 60µs", s, st.Busy)
		}
		wantUtil := float64(60) / 90
		if math.Abs(st.Utilization-wantUtil) > 1e-12 {
			t.Errorf("stage %d utilization = %g, want %g", s, st.Utilization, wantUtil)
		}
		if st.Device != meta.StageDevice[s] {
			t.Errorf("stage %d device = %v", s, st.Device)
		}
	}
	// In-flight: both stages hold both microbatches' activations at once
	// (mb0 lives to its backward finish, overlapping mb1 entirely).
	if stats[0].PeakInFlight != 2 || stats[1].PeakInFlight != 2 {
		t.Errorf("peak in-flight = %d/%d, want 2/2", stats[0].PeakInFlight, stats[1].PeakInFlight)
	}
	if want := int64(100 + 2*10); stats[0].PeakMemory != want {
		t.Errorf("stage 0 peak memory = %d, want %d", stats[0].PeakMemory, want)
	}
	if want := int64(200 + 2*20); stats[1].PeakMemory != want {
		t.Errorf("stage 1 peak memory = %d, want %d", stats[1].PeakMemory, want)
	}
	// Bubble: 1 - (60+60) / (2*90) = 1/3.
	if math.Abs(bubble-1.0/3) > 1e-12 {
		t.Errorf("bubble = %g, want 1/3", bubble)
	}
}

func TestPipelineAccountingSequentialNoOverlap(t *testing.T) {
	// A single-stage, forward-only "pipeline" where microbatches run
	// back to back: activation windows touch at one instant but never
	// overlap, so peak in-flight must stay 1 (releases sort before
	// acquisitions at equal times).
	const us = time.Microsecond
	g := graph.New(2)
	a := g.AddNode(gpuNode(10 * us))
	b := g.AddNode(gpuNode(10 * us))
	meta := PipelineMeta{
		Stages: 1, Microbatches: 2, Discipline: "gpipe",
		StageOf: []int{0, 0}, MBOf: []int{0, 1}, Backward: []bool{false, false},
		StageDevice: []DeviceID{1}, StageWeightBytes: []int64{7}, StageActBytes: []int64{3},
	}
	res := Result{
		Makespan: 20 * us,
		Start:    []time.Duration{0, 10 * us},
		Finish:   []time.Duration{10 * us, 20 * us},
	}
	_ = a
	_ = b
	stats, bubble, err := PipelineAccounting(g, meta, res)
	if err != nil {
		t.Fatalf("PipelineAccounting: %v", err)
	}
	if stats[0].PeakInFlight != 1 {
		t.Errorf("back-to-back microbatches double-counted: peak in-flight = %d", stats[0].PeakInFlight)
	}
	if stats[0].PeakMemory != 7+3 {
		t.Errorf("peak memory = %d, want 10", stats[0].PeakMemory)
	}
	if bubble != 0 {
		t.Errorf("fully packed lane reports bubble %g", bubble)
	}
}

func TestPipelineMetaValidate(t *testing.T) {
	_, meta, _ := pipelineFixture()
	if err := meta.Validate(8); err != nil {
		t.Fatalf("valid meta rejected: %v", err)
	}
	bad := meta
	bad.Stages = 0
	if err := bad.Validate(8); err == nil {
		t.Error("zero stages accepted")
	}
	bad = meta
	if err := bad.Validate(9); err == nil {
		t.Error("wrong node count accepted")
	}
	bad = meta
	bad.StageOf = append([]int(nil), meta.StageOf...)
	bad.StageOf[3] = 2
	if err := bad.Validate(8); err == nil {
		t.Error("out-of-range stage accepted")
	}
	bad = meta
	bad.MBOf = append([]int(nil), meta.MBOf...)
	bad.MBOf[5] = 99
	if err := bad.Validate(8); err == nil {
		t.Error("out-of-range microbatch accepted")
	}
	bad = meta
	bad.StageDevice = meta.StageDevice[:1]
	if err := bad.Validate(8); err == nil {
		t.Error("short StageDevice accepted")
	}
}

func TestWithDeviceSpeed(t *testing.T) {
	sys := NewSystem(2, gpuMem)
	fast := sys.WithDeviceSpeed(2, 4)
	if fast.Devices[2].Speed != 4 {
		t.Fatalf("speed not applied: %g", fast.Devices[2].Speed)
	}
	if sys.Devices[2].Speed != 1 {
		t.Fatal("WithDeviceSpeed mutated the receiver")
	}
	// Non-positive speeds and out-of-range devices are no-ops.
	if got := sys.WithDeviceSpeed(2, 0).Devices[2].Speed; got != 1 {
		t.Errorf("zero speed applied: %g", got)
	}
	if got := sys.WithDeviceSpeed(2, -3).Devices[2].Speed; got != 1 {
		t.Errorf("negative speed applied: %g", got)
	}
	sys.WithDeviceSpeed(99, 2) // must not panic
}

func TestWithGPUSpeeds(t *testing.T) {
	sys := NewSystem(3, gpuMem)
	out := sys.WithGPUSpeeds([]float64{2, 0, 0.5, 7, 7})
	gpus := out.GPUs()
	if len(gpus) != 3 {
		t.Fatalf("GPUs() = %v", gpus)
	}
	if out.Devices[gpus[0]].Speed != 2 {
		t.Errorf("gpu 0 speed = %g, want 2", out.Devices[gpus[0]].Speed)
	}
	if out.Devices[gpus[1]].Speed != 1 {
		t.Errorf("gpu 1 non-positive entry not skipped: %g", out.Devices[gpus[1]].Speed)
	}
	if out.Devices[gpus[2]].Speed != 0.5 {
		t.Errorf("gpu 2 speed = %g, want 0.5", out.Devices[gpus[2]].Speed)
	}
	if out.Devices[0].Speed != 1 {
		t.Error("CPU speed touched by GPU speed list")
	}
	for _, d := range sys.Devices {
		if d.Speed != 1 {
			t.Fatal("WithGPUSpeeds mutated the receiver")
		}
	}
	// Shorter list than pool: remaining GPUs keep their speed.
	part := sys.WithGPUSpeeds([]float64{3})
	if part.Devices[gpus[1]].Speed != 1 || part.Devices[gpus[2]].Speed != 1 {
		t.Error("unlisted GPUs rescaled")
	}
	// Heterogeneous speeds actually change simulated time.
	g := graph.New(1)
	g.AddNode(gpuNode(100 * time.Microsecond))
	r, err := Run(g, sys.WithGPUSpeeds([]float64{4}), Plan{Device: []DeviceID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 25*time.Microsecond {
		t.Errorf("4x GPU runs 100µs op in %v, want 25µs", r.Makespan)
	}
}
