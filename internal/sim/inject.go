package sim

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"pesto/internal/graph"
)

// ErrDeviceFailed marks a simulation or execution aborted because a
// device failed (was injected to fail) while it still had work to do.
// Match with errors.Is; the concrete *DeviceFailedError carries the
// device and the virtual failure time, which Replan consumes.
var ErrDeviceFailed = errors.New("device failed")

// DeviceFailedError reports which device failed and when. It unwraps to
// ErrDeviceFailed.
type DeviceFailedError struct {
	Device DeviceID
	At     time.Duration
}

func (e *DeviceFailedError) Error() string {
	return fmt.Sprintf("device %d failed at %v", e.Device, e.At)
}

// Unwrap makes errors.Is(err, ErrDeviceFailed) work.
func (e *DeviceFailedError) Unwrap() error { return ErrDeviceFailed }

// Injector is the fault-injection hook shared by the discrete-event
// simulator (Run) and the concurrent runtime executor
// (internal/runtime.Execute). Implementations must be pure: every
// method is a function of its arguments and the injector's immutable
// configuration only, never of call order or wall-clock time. That
// purity is what makes fault-injected runs byte-identical across
// repeats and across worker counts — both engines may call the hooks
// from many goroutines in arbitrary interleavings.
//
// internal/fault provides the canonical seeded implementation; a nil
// Injector everywhere means "no faults".
type Injector interface {
	// OpDuration returns the (possibly perturbed) execution time of an
	// operation that starts at virtual time start with nominal duration
	// base on the given device.
	OpDuration(id graph.NodeID, dev DeviceID, start, base time.Duration) time.Duration
	// TransferDuration returns the (possibly perturbed) service time of
	// a transfer whose link service begins at virtual time start with
	// nominal duration base.
	TransferDuration(from, to DeviceID, bytes int64, start, base time.Duration) time.Duration
	// DeviceCapacity returns the effective memory capacity of a device
	// at virtual time at, given its configured capacity base. Shrinking
	// capacities surface as ErrOOM mid-run.
	DeviceCapacity(dev DeviceID, at time.Duration, base int64) int64
	// FailureTime reports the virtual time at which the device fails
	// outright, if it does.
	FailureTime(dev DeviceID) (time.Duration, bool)
}

// RunInjected simulates one training step like Run, with every
// compute, communication and memory quantity filtered through the
// fault injector. A nil injector is exactly Run.
//
// Fault semantics:
//
//   - Op and transfer durations are rewritten by the injector's pure
//     hooks (stragglers, degraded or stalled links).
//   - Before an operation starts on a device, the device's cumulative
//     footprint (all operations started there so far, plus the new one)
//     is checked against the injector's effective capacity at that
//     virtual time; exceeding it aborts the run with an error wrapping
//     ErrOOM.
//   - An operation that would start on — or still be running on — a
//     device at its injected failure time aborts the run with a
//     *DeviceFailedError (errors.Is ErrDeviceFailed).
//
// Determinism: with a fixed plan and injector, repeated calls return
// identical Results (the event order is a pure function of the inputs).
func RunInjected(g *graph.Graph, sys System, plan Plan, inj Injector) (Result, error) {
	return run(g, sys, plan, inj)
}

// TraceString renders the per-node execution windows and the transfer
// timeline as a canonical multi-line string — the byte-comparable event
// trace used by the determinism tests and the fault-injection
// acceptance checks. Two Results are behaviourally identical iff their
// TraceStrings are equal.
func (r Result) TraceString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %d\n", int64(r.Makespan))
	for i := range r.Start {
		fmt.Fprintf(&b, "op %d [%d %d]\n", i, int64(r.Start[i]), int64(r.Finish[i]))
	}
	for _, t := range r.Transfers {
		fmt.Fprintf(&b, "xfer %d->%d dev%d->dev%d %dB [%d %d %d]\n",
			t.Edge.From, t.Edge.To, t.From, t.To, t.Edge.Bytes,
			int64(t.Enqueue), int64(t.Start), int64(t.Finish))
	}
	return b.String()
}
