package gen

import (
	"bytes"
	"testing"
)

// FuzzGenerate drives the generator with arbitrary seeds and size
// knobs: it must never panic, always emit a graph that passes
// Validate, and stay byte-deterministic for equal inputs.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(0), int64(1), 24, 3)
	f.Add(int64(42), int64(2), 8, 1)
	f.Add(int64(-7), int64(5), 200, 9)
	f.Add(int64(1<<40), int64(999), 1, 0)
	f.Fuzz(func(t *testing.T, seed, famRaw int64, nodes, width int) {
		fams := Families()
		fam := fams[((famRaw%int64(len(fams)))+int64(len(fams)))%int64(len(fams))]
		if nodes < 0 {
			nodes = -nodes
		}
		nodes %= 300
		if width < 0 {
			width = -width
		}
		width %= 20
		cfg := Config{Family: fam, Seed: seed, Nodes: nodes, Width: width}
		g, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: generated invalid graph: %v", cfg, err)
		}
		g2, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := g.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := g2.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%+v: generation not deterministic", cfg)
		}
	})
}
