package gen

import (
	"fmt"
	"math/rand"
	"time"

	"pesto/internal/graph"
	"pesto/internal/incr"
)

// EditTraceConfig parameterizes the seeded edit-trace generator. The
// zero value of every field means "use the default"; equal (base,
// config) pairs generate byte-identical traces.
type EditTraceConfig struct {
	// Seed drives every random choice.
	Seed int64
	// Steps is the trace length; zero means 32.
	Steps int
}

// EditTrace generates a deterministic trace of Steps edits against
// base, modeling a developer iterating on a model: mostly cost/tensor
// reweights (re-profiled operations), with occasional op insertions,
// deletions, edge rewires and grown layers. Each edit is valid
// against the graph produced by applying the previous ones, so the
// whole trace applies cleanly with incr.ApplyAll (or one step at a
// time with incr.Apply).
func EditTrace(base *graph.Graph, cfg EditTraceConfig) ([]incr.Edit, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 32
	}
	if base == nil || base.NumNodes() == 0 {
		return nil, fmt.Errorf("edit trace: empty base graph")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	cur := base
	edits := make([]incr.Edit, 0, cfg.Steps)
	for len(edits) < cfg.Steps {
		e := nextEdit(r, cur)
		next, _, err := incr.Apply(cur, e)
		if err != nil {
			// The pickers only propose valid edits; a rejection here
			// would be a generator bug worth surfacing, not skipping.
			return nil, fmt.Errorf("edit trace step %d (%s): %w", len(edits), e.Kind, err)
		}
		edits = append(edits, e)
		cur = next
	}
	return edits, nil
}

// nextEdit proposes one valid edit for g. Kind mix: ~40% node
// reweight, ~15% edge reweight, ~15% insert, ~15% rewire, ~10%
// delete, ~5% grow-layer — with deterministic fallbacks to reweight
// when a structural pick finds no valid target.
func nextEdit(r *rand.Rand, g *graph.Graph) incr.Edit {
	roll := r.Intn(100)
	switch {
	case roll < 40:
		return reweightEdit(r, g)
	case roll < 55:
		if e, ok := reweightEdgeEdit(r, g); ok {
			return e
		}
		return reweightEdit(r, g)
	case roll < 70:
		if e, ok := insertEdit(r, g); ok {
			return e
		}
		return reweightEdit(r, g)
	case roll < 85:
		if e, ok := rewireEdit(r, g); ok {
			return e
		}
		return reweightEdit(r, g)
	case roll < 95:
		if e, ok := deleteEdit(r, g); ok {
			return e
		}
		return reweightEdit(r, g)
	default:
		return incr.Edit{
			Kind:   incr.KindGrowLayer,
			Width:  1 + r.Intn(4),
			CostNs: randCost(r),
			Memory: randMem(r),
			Bytes:  randBytes(r),
		}
	}
}

func reweightEdit(r *rand.Rand, g *graph.Graph) incr.Edit {
	id := graph.NodeID(r.Intn(g.NumNodes()))
	n, _ := g.Node(id)
	// Scale cost by 0.5x–2x, as a re-profile would.
	cost := int64(n.Cost) * int64(50+r.Intn(151)) / 100
	if cost <= 0 {
		cost = int64(time.Microsecond)
	}
	e := incr.Edit{Kind: incr.KindReweight, Node: int(id), CostNs: cost}
	if r.Intn(4) == 0 && n.Memory > 0 {
		mem := n.Memory * int64(50+r.Intn(151)) / 100
		if mem <= 0 {
			mem = 1
		}
		e.Memory = mem
	}
	return e
}

func reweightEdgeEdit(r *rand.Rand, g *graph.Graph) (incr.Edit, bool) {
	edges := g.Edges()
	if len(edges) == 0 {
		return incr.Edit{}, false
	}
	e := edges[r.Intn(len(edges))]
	b := e.Bytes * int64(50+r.Intn(151)) / 100
	if b <= 0 {
		b = 64
	}
	return incr.Edit{Kind: incr.KindReweightEdge, From: int(e.From), To: int(e.To), Bytes: b}, true
}

func insertEdit(r *rand.Rand, g *graph.Graph) (incr.Edit, bool) {
	p := graph.NodeID(r.Intn(g.NumNodes()))
	e := incr.Edit{
		Kind:   incr.KindInsert,
		Preds:  []int{int(p)},
		CostNs: randCost(r),
		Memory: randMem(r),
		Bytes:  randBytes(r),
	}
	// Half the time, splice the new op into an existing edge p→s: a
	// direct successor of p can never reach p, so the insert is
	// always acyclic.
	if succs := g.Succ(p); len(succs) > 0 && r.Intn(2) == 0 {
		e.Succs = []int{int(succs[r.Intn(len(succs))].To)}
	}
	return e, true
}

func rewireEdit(r *rand.Rand, g *graph.Graph) (incr.Edit, bool) {
	edges := g.Edges()
	if len(edges) == 0 || g.NumNodes() < 3 {
		return incr.Edit{}, false
	}
	for try := 0; try < 8; try++ {
		e := edges[r.Intn(len(edges))]
		nf := graph.NodeID(r.Intn(g.NumNodes()))
		if nf == e.From || nf == e.To {
			continue
		}
		if _, dup := g.EdgeBetween(nf, e.To); dup {
			continue
		}
		if g.Reachable(e.To, nf) {
			continue
		}
		return incr.Edit{Kind: incr.KindRewire, From: int(e.From), To: int(e.To), NewFrom: int(nf)}, true
	}
	return incr.Edit{}, false
}

func deleteEdit(r *rand.Rand, g *graph.Graph) (incr.Edit, bool) {
	n := g.NumNodes()
	if n < 4 {
		return incr.Edit{}, false
	}
	start := r.Intn(n)
	for off := 0; off < n; off++ {
		id := graph.NodeID((start + off) % n)
		nd, _ := g.Node(id)
		if nd.Kind != graph.KindGPU {
			continue
		}
		// Bridging a high-degree node would densify the graph; skip.
		if g.InDegree(id)*g.OutDegree(id) > 16 {
			continue
		}
		return incr.Edit{Kind: incr.KindDelete, Node: int(id)}, true
	}
	return incr.Edit{}, false
}

func randCost(r *rand.Rand) int64 {
	return int64(5*time.Microsecond) + r.Int63n(int64(495*time.Microsecond))
}

func randMem(r *rand.Rand) int64 {
	return 1<<20 + r.Int63n(7<<20)
}

func randBytes(r *rand.Rand) int64 {
	return 1<<10 + r.Int63n(63<<10)
}
