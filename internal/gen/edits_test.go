package gen

import (
	"reflect"
	"testing"

	"pesto/internal/incr"
)

// TestGenerateEditTraceDeterministic holds the edit-trace generator to
// the package's determinism contract: equal (base, config) pairs
// produce identical traces, every trace applies cleanly, and the
// resulting graphs are byte-identical across runs.
func TestGenerateEditTraceDeterministic(t *testing.T) {
	base, err := Generate(Config{Family: Layered, Nodes: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := EditTrace(base, EditTraceConfig{Seed: 11, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EditTrace(base, EditTraceConfig{Seed: 11, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	kinds := map[string]int{}
	for _, e := range a {
		kinds[e.Kind]++
	}
	// The mix must exercise the structural kinds, not just reweights.
	for _, k := range []string{incr.KindInsert, incr.KindReweight, incr.KindRewire} {
		if kinds[k] == 0 {
			t.Fatalf("100-step trace has no %q edits (mix %v)", k, kinds)
		}
	}
	ga, _, err := incr.ApplyAll(base, a)
	if err != nil {
		t.Fatal(err)
	}
	gb, _, err := incr.ApplyAll(base, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ga.Validate(); err != nil {
		t.Fatalf("trace result invalid: %v", err)
	}
	if ga.Fingerprint() != gb.Fingerprint() {
		t.Fatal("trace application not byte-deterministic")
	}
	if c, err := EditTrace(base, EditTraceConfig{Seed: 12, Steps: 100}); err != nil || reflect.DeepEqual(a, c) {
		t.Fatalf("different seed should differ (err %v)", err)
	}
}
