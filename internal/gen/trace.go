package gen

import (
	"fmt"
	"math/rand"
)

// A Trace is a replayable request workload for the serving tier: a
// corpus of distinct graphs plus a Zipf-distributed access sequence
// over it. Production inference traffic is heavily skewed — a handful
// of hot models absorb most requests while a long tail appears rarely
// — and that skew is exactly what exercises a fingerprint-routed
// fleet: hot keys stress one ring arc, cold keys defeat caches, and a
// replica kill moves a whole arc's worth of hot traffic at once. Equal
// TraceConfigs build byte-identical traces (same corpus graphs, same
// sequence), the property the chaos harness's oracle comparison and
// the CI replay path both build on.

// TraceConfig parameterizes one workload. The zero value of every
// field means "use the default"; NewTrace resolves defaults so equal
// configs always mean equal traces.
type TraceConfig struct {
	// Corpus is the number of distinct graphs; zero means 64.
	Corpus int
	// Requests is the length of the access sequence; zero means 1000.
	Requests int
	// Skew is the Zipf s parameter (must end up > 1; larger is more
	// skewed). Zero means 1.2, a hot-model-dominated mix.
	Skew float64
	// Seed drives both corpus generation and the access sequence.
	Seed int64
	// Nodes overrides the per-graph operation count; zero keeps each
	// corpus graph's own seeded draw (8–63 ops). Chaos runs set a small
	// value so solves stay fast enough to push 100k requests through.
	Nodes int
	// Families restricts the corpus to the given shapes; empty means
	// all of Families().
	Families []Family
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Corpus <= 0 {
		c.Corpus = 64
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Skew <= 1 {
		c.Skew = 1.2
	}
	if len(c.Families) == 0 {
		c.Families = Families()
	}
	return c
}

// Trace is a realized workload: Configs[i] generates the i-th corpus
// graph, and Seq maps each request to a corpus index. Corpus indices
// are popularity ranks — index 0 is the hottest graph.
type Trace struct {
	// Configs holds the generator config of each corpus graph; callers
	// pass them to Generate (lazily or up front) so a trace stays cheap
	// to ship between processes.
	Configs []Config
	// Seq is the request sequence: Seq[r] is the corpus index served by
	// request r.
	Seq []int
}

// NewTrace builds the workload for cfg. Construction is deterministic:
// the corpus configs are seeded draws from cfg.Seed and the sequence
// comes from a dedicated Zipf stream, so equal configs are equal
// traces.
func NewTrace(cfg TraceConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	tr := &Trace{
		Configs: make([]Config, cfg.Corpus),
		Seq:     make([]int, cfg.Requests),
	}
	// Corpus: one derived seed per rank. The xor constant separates
	// this stream from RandomConfig's own mixing so trace corpora don't
	// alias sweep corpora at small seeds.
	for i := range tr.Configs {
		c := RandomConfig(cfg.Seed ^ 0x7ace<<32 ^ int64(i)*0x9e3779b9)
		c.Family = cfg.Families[i%len(cfg.Families)]
		if cfg.Nodes > 0 {
			c.Nodes = cfg.Nodes
		}
		if c.Family != ColocHeavy {
			c.ColocFrac = 0
		}
		tr.Configs[i] = c
	}
	// Sequence: rand.Zipf over [0, Corpus-1] with rank 0 hottest.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x2f1e9))
	z := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Corpus-1))
	if z == nil {
		return nil, fmt.Errorf("gen: bad zipf parameters (skew %v, corpus %d)", cfg.Skew, cfg.Corpus)
	}
	for r := range tr.Seq {
		tr.Seq[r] = int(z.Uint64())
	}
	return tr, nil
}

// Counts tallies requests per corpus rank — the popularity histogram
// tests and benchmark reports read skew off of.
func (t *Trace) Counts() []int {
	counts := make([]int, len(t.Configs))
	for _, i := range t.Seq {
		counts[i]++
	}
	return counts
}
