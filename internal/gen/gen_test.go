package gen

import (
	"bytes"
	"testing"
	"time"

	"pesto/internal/graph"
)

// jsonBytes serializes a graph for byte-identity comparison.
func jsonBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGenerateEveryFamilyValidates(t *testing.T) {
	for _, fam := range Families() {
		for seed := int64(0); seed < 8; seed++ {
			g, err := Generate(Config{Family: fam, Seed: seed, Nodes: 20})
			if err != nil {
				t.Fatalf("%v seed %d: %v", fam, seed, err)
			}
			if g.NumNodes() == 0 {
				t.Fatalf("%v seed %d: empty graph", fam, seed)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%v seed %d: %v", fam, seed, err)
			}
			// Exactly one weakly-connected entry: every non-root must be
			// reachable through at least one predecessor, which Validate's
			// acyclicity plus ≥1-pred construction gives. Check roots are
			// only the CPU inputs.
			for _, r := range g.Roots() {
				nd, _ := g.Node(r)
				if nd.Kind != graph.KindCPU {
					t.Fatalf("%v seed %d: non-input root %d (%v)", fam, seed, r, nd.Kind)
				}
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	for _, fam := range Families() {
		cfg := Config{Family: fam, Seed: 42, Nodes: 30}
		a, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, a), jsonBytes(t, b)) {
			t.Fatalf("%v: equal configs generated different graphs", fam)
		}
		c, err := Generate(Config{Family: fam, Seed: 43, Nodes: 30})
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(jsonBytes(t, a), jsonBytes(t, c)) {
			t.Fatalf("%v: different seeds generated identical graphs", fam)
		}
	}
}

func TestGenerateFamilyShapes(t *testing.T) {
	// Chain: one GPU op per rank, each with at most one GPU successor.
	g, err := Generate(Config{Family: Chain, Seed: 1, Nodes: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU && g.OutDegree(nd.ID) > 1 {
			t.Fatalf("chain node %d has out-degree %d", nd.ID, g.OutDegree(nd.ID))
		}
	}

	// Diamond: at least one fork (out-degree ≥ 2) and one join
	// (in-degree ≥ 2).
	g, err = Generate(Config{Family: Diamond, Seed: 1, Nodes: 16, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	fork, join := false, false
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		if g.OutDegree(nd.ID) >= 2 {
			fork = true
		}
		if g.InDegree(nd.ID) >= 2 {
			join = true
		}
	}
	if !fork || !join {
		t.Fatalf("diamond lacks fork (%v) or join (%v)", fork, join)
	}

	// ColocHeavy: a meaningful fraction of GPU ops carries groups, and
	// every group has at least two members.
	g, err = Generate(Config{Family: ColocHeavy, Seed: 1, Nodes: 30})
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	gpuOps, tagged := 0, 0
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		gpuOps++
		if nd.Coloc != "" {
			tagged++
			groups[nd.Coloc]++
		}
	}
	if tagged == 0 || float64(tagged) < 0.3*float64(gpuOps) {
		t.Fatalf("coloc-heavy tagged only %d of %d GPU ops", tagged, gpuOps)
	}
	for name, size := range groups {
		if size < 2 {
			t.Fatalf("group %q has %d member(s)", name, size)
		}
	}
}

func TestGenerateHonorsDistributions(t *testing.T) {
	cfg := Config{
		Family:  Layered,
		Seed:    7,
		Nodes:   40,
		MinCost: 10 * time.Microsecond, MaxCost: 20 * time.Microsecond,
		MinBytes: 100, MaxBytes: 200,
		MinMem: 1000, MaxMem: 2000,
	}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range g.Nodes() {
		if nd.Kind != graph.KindGPU {
			continue
		}
		if nd.Cost < cfg.MinCost || nd.Cost > cfg.MaxCost {
			t.Fatalf("node %d cost %v outside [%v,%v]", nd.ID, nd.Cost, cfg.MinCost, cfg.MaxCost)
		}
		if nd.Memory < cfg.MinMem || nd.Memory > cfg.MaxMem {
			t.Fatalf("node %d memory %d outside [%d,%d]", nd.ID, nd.Memory, cfg.MinMem, cfg.MaxMem)
		}
	}
	for _, e := range g.Edges() {
		if e.Bytes < cfg.MinBytes || e.Bytes > cfg.MaxBytes {
			t.Fatalf("edge (%d,%d) bytes %d outside [%d,%d]", e.From, e.To, e.Bytes, cfg.MinBytes, cfg.MaxBytes)
		}
	}
}

func TestRandomConfigCoversFamiliesDeterministically(t *testing.T) {
	seen := map[Family]bool{}
	for seed := int64(0); seed < 64; seed++ {
		a := RandomConfig(seed)
		b := RandomConfig(seed)
		if a != b {
			t.Fatalf("seed %d: RandomConfig not deterministic", seed)
		}
		seen[a.Family] = true
		if _, err := Generate(a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	for _, fam := range Families() {
		if !seen[fam] {
			t.Fatalf("64 seeds never drew family %v", fam)
		}
	}
}

// TestGeneratePipelineFamily covers the pipeline-friendly layered
// family: deterministic per seed, valid, block-structured (every block
// has a single entry fed by the previous block's exit, so contiguous
// stage cuts along the topological order are natural), and deliberately
// absent from Families() so existing random populations stay
// byte-identical.
func TestGeneratePipelineFamily(t *testing.T) {
	for _, fam := range Families() {
		if fam == Pipeline {
			t.Fatal("Pipeline joined Families(); existing seeded populations would shift")
		}
	}
	if Pipeline.String() != "pipeline" {
		t.Fatalf("Pipeline.String() = %q", Pipeline.String())
	}
	for seed := int64(0); seed < 8; seed++ {
		cfg := PipelineConfig(seed)
		if cfg.Family != Pipeline {
			t.Fatalf("PipelineConfig family = %v", cfg.Family)
		}
		g, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(PipelineConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, g), jsonBytes(t, b)) {
			t.Fatalf("seed %d: PipelineConfig not deterministic", seed)
		}
		gpuOps := 0
		for _, nd := range g.Nodes() {
			if nd.Kind == graph.KindGPU {
				gpuOps++
				if nd.Cost <= 0 {
					t.Fatalf("seed %d: op %d has no cost", seed, nd.ID)
				}
			}
		}
		if gpuOps < 4 {
			t.Fatalf("seed %d: only %d GPU ops; too thin to pipeline", seed, gpuOps)
		}
	}
	a, _ := Generate(PipelineConfig(0))
	b, _ := Generate(PipelineConfig(1))
	if bytes.Equal(jsonBytes(t, a), jsonBytes(t, b)) {
		t.Fatal("different seeds generated identical pipeline graphs")
	}
}
