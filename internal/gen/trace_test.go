package gen

import (
	"testing"
)

func TestTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Corpus: 16, Requests: 2000, Seed: 42, Nodes: 10}
	a, err := NewTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seq) != len(b.Seq) || len(a.Configs) != len(b.Configs) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", len(a.Seq), len(a.Configs), len(b.Seq), len(b.Configs))
	}
	for i := range a.Seq {
		if a.Seq[i] != b.Seq[i] {
			t.Fatalf("seq diverges at %d: %d vs %d", i, a.Seq[i], b.Seq[i])
		}
	}
	// Corpus graphs must be byte-identical across builds: compare
	// canonical fingerprints of each generated graph.
	for i := range a.Configs {
		ga, err := Generate(a.Configs[i])
		if err != nil {
			t.Fatalf("generate rank %d: %v", i, err)
		}
		gb, err := Generate(b.Configs[i])
		if err != nil {
			t.Fatalf("generate rank %d: %v", i, err)
		}
		if ga.Fingerprint() != gb.Fingerprint() {
			t.Fatalf("rank %d graph differs across identical configs", i)
		}
	}
}

func TestTraceZipfSkew(t *testing.T) {
	tr, err := NewTrace(TraceConfig{Corpus: 32, Requests: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	// Rank 0 must dominate: strictly the most popular, and hot enough
	// that caching it matters (Zipf 1.2 over 32 ranks gives rank 0 well
	// over a third of requests).
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d (%d requests) hotter than rank 0 (%d)", i, counts[i], counts[0])
		}
	}
	if counts[0] < len(tr.Seq)/4 {
		t.Fatalf("rank 0 only %d/%d requests; skew too weak", counts[0], len(tr.Seq))
	}
	// Every index must stay in range (Counts would have panicked, but
	// hold the bound explicitly).
	for _, i := range tr.Seq {
		if i < 0 || i >= 32 {
			t.Fatalf("sequence index %d out of corpus range", i)
		}
	}
}

func TestTraceCorpusValidAndDistinct(t *testing.T) {
	tr, err := NewTrace(TraceConfig{Corpus: 12, Requests: 1, Seed: 3, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[32]byte]int{}
	for i, c := range tr.Configs {
		g, err := Generate(c)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		fp := g.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("ranks %d and %d generated identical graphs", prev, i)
		}
		seen[fp] = i
	}
}

func TestTraceDefaults(t *testing.T) {
	tr, err := NewTrace(TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Configs) != 64 || len(tr.Seq) != 1000 {
		t.Fatalf("defaults gave corpus %d, requests %d", len(tr.Configs), len(tr.Seq))
	}
}
