// Package gen produces seeded random computation DAGs spanning the
// model shapes of the Pesto paper's evaluation: serial chains (RNNLM
// unrolled steps), fork-join diamonds (NASNet cell branches), layered
// fan-outs (Transformer/NMT blocks) and colocation-heavy variants, plus
// an unstructured random family. Equal configs generate byte-identical
// graphs — the property every differential test in internal/verify
// builds on — and every generated graph passes graph.Validate.
//
// The generator exists so the verification harness can hold the
// placement engines to account on graph families they were not tuned
// on, the way Mayer et al. and Tarnawski et al. validate schedulers on
// randomized graph families rather than a handful of hand-built models.
package gen

import (
	"fmt"
	"math/rand"
	"time"

	"pesto/internal/graph"
)

// Family selects the structural shape of a generated DAG.
type Family int

const (
	// Chain is a serial pipeline: one CPU input feeding a linear chain
	// of GPU operations (the RNNLM unrolled-step shape).
	Chain Family = iota + 1
	// Diamond is repeated fork-join: a stem operation fans out to a set
	// of parallel branches that rejoin in a reduction (the NASNet cell
	// shape).
	Diamond
	// Layered is a dense layered fan-out: L layers of W operations with
	// 1–3 predecessors each in the previous layer plus sparse skip
	// connections (the Transformer/NMT block shape).
	Layered
	// ColocHeavy is Layered with most GPU operations bound into
	// colocation groups of 2–4 — the variable/optimizer pairs that make
	// colocation constraints bind.
	ColocHeavy
	// Random is an unstructured DAG: each operation draws 1–4
	// predecessors uniformly among earlier operations.
	Random
	// Pipeline is a deep block-sequential shape built for pipeline
	// parallelism: B internally-dense blocks of W operations chained
	// through narrow single-edge cuts, so contiguous stage partitions
	// have cheap boundaries. Deliberately NOT in Families() —
	// RandomConfig's population (and every seeded sweep built on it)
	// stays byte-identical; request it explicitly via PipelineConfig.
	Pipeline
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case Chain:
		return "chain"
	case Diamond:
		return "diamond"
	case Layered:
		return "layered"
	case ColocHeavy:
		return "coloc-heavy"
	case Random:
		return "random"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Families lists every generator family, in order.
func Families() []Family { return []Family{Chain, Diamond, Layered, ColocHeavy, Random} }

// Config parameterizes one generated instance. The zero value of every
// field means "use the default"; Generate resolves defaults through
// withDefaults so equal Configs always mean equal graphs.
type Config struct {
	// Family selects the structural shape; zero means Layered.
	Family Family
	// Seed drives every random choice. Equal (Family, Seed, …) configs
	// generate byte-identical graphs.
	Seed int64
	// Nodes is the approximate number of GPU operations; families round
	// it to their shape. Zero means 24.
	Nodes int
	// Width is the parallel width of Diamond branches and Layered
	// layers; zero derives it from Nodes.
	Width int
	// CPUOps is the number of CPU-affine input-pipeline operations
	// feeding the first GPU operations; zero means 1.
	CPUOps int
	// MinCost and MaxCost bound per-operation compute times; zero means
	// 5µs–500µs (the short-op regime of Figure 4a).
	MinCost, MaxCost time.Duration
	// MinBytes and MaxBytes bound per-edge tensor sizes; zero means
	// 1KiB–1MiB.
	MinBytes, MaxBytes int64
	// MinMem and MaxMem bound per-operation resident memory; zero means
	// 1MiB–32MiB.
	MinMem, MaxMem int64
	// ColocFrac is the fraction of GPU operations bound into colocation
	// groups (only ColocHeavy uses a non-trivial default of 0.6; other
	// families default to 0).
	ColocFrac float64
	// SkipProb is the probability of an extra skip edge per Layered
	// operation; zero means 0.1.
	SkipProb float64
}

func (c Config) withDefaults() Config {
	if c.Family == 0 {
		c.Family = Layered
	}
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.Width <= 0 {
		c.Width = 2 + c.Nodes/12
	}
	if c.CPUOps <= 0 {
		c.CPUOps = 1
	}
	if c.MinCost <= 0 {
		c.MinCost = 5 * time.Microsecond
	}
	if c.MaxCost <= 0 {
		c.MaxCost = 500 * time.Microsecond
	}
	if c.MaxCost < c.MinCost {
		c.MaxCost = c.MinCost
	}
	if c.MinBytes <= 0 {
		c.MinBytes = 1 << 10
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 20
	}
	if c.MaxBytes < c.MinBytes {
		c.MaxBytes = c.MinBytes
	}
	if c.MinMem <= 0 {
		c.MinMem = 1 << 20
	}
	if c.MaxMem <= 0 {
		c.MaxMem = 32 << 20
	}
	if c.MaxMem < c.MinMem {
		c.MaxMem = c.MinMem
	}
	if c.ColocFrac <= 0 && c.Family == ColocHeavy {
		c.ColocFrac = 0.6
	}
	if c.ColocFrac < 0 {
		c.ColocFrac = 0
	}
	if c.ColocFrac > 1 {
		c.ColocFrac = 1
	}
	if c.SkipProb <= 0 {
		c.SkipProb = 0.1
	}
	return c
}

// RandomConfig derives a full Config deterministically from one seed:
// the family, size and distributions are themselves seeded draws. It is
// the sweep driver's way of covering the whole family × shape space
// with a single integer per instance.
func RandomConfig(seed int64) Config {
	rng := rand.New(rand.NewSource(seed ^ 0x5e3779b97f4a7c15))
	fams := Families()
	cfg := Config{
		Family:  fams[rng.Intn(len(fams))],
		Seed:    seed,
		Nodes:   8 + rng.Intn(56),
		CPUOps:  1 + rng.Intn(2),
		MinCost: time.Duration(1+rng.Intn(20)) * time.Microsecond,
	}
	cfg.MaxCost = cfg.MinCost * time.Duration(2+rng.Intn(40))
	cfg.MinBytes = int64(1) << uint(8+rng.Intn(6)) // 256B..8KiB
	cfg.MaxBytes = cfg.MinBytes << uint(1+rng.Intn(8))
	cfg.MinMem = int64(1) << uint(18+rng.Intn(4)) // 256KiB..2MiB
	cfg.MaxMem = cfg.MinMem << uint(1+rng.Intn(6))
	if cfg.Family == ColocHeavy {
		cfg.ColocFrac = 0.3 + 0.5*rng.Float64()
	}
	return cfg
}

// PipelineConfig derives a pipeline-friendly Config deterministically
// from one seed: a Pipeline-family graph deep enough to cut into
// several balanced stages, sized like the layered model zoo. It is the
// pipeline sweep's counterpart to RandomConfig.
func PipelineConfig(seed int64) Config {
	rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c159e3779b9))
	cfg := Config{
		Family:  Pipeline,
		Seed:    seed,
		Nodes:   24 + rng.Intn(40),
		Width:   2 + rng.Intn(3),
		CPUOps:  1,
		MinCost: time.Duration(5+rng.Intn(20)) * time.Microsecond,
	}
	cfg.MaxCost = cfg.MinCost * time.Duration(2+rng.Intn(20))
	cfg.MinBytes = int64(1) << uint(8+rng.Intn(4)) // 256B..2KiB
	cfg.MaxBytes = cfg.MinBytes << uint(1+rng.Intn(6))
	cfg.MinMem = int64(1) << uint(18+rng.Intn(3))
	cfg.MaxMem = cfg.MinMem << uint(1+rng.Intn(5))
	return cfg
}

// Generate builds the DAG described by cfg. The graph is acyclic by
// construction (edges only go from lower to higher IDs), validates
// structurally, and is byte-identical for equal configs.
func Generate(cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &builder{cfg: cfg, rng: rng, g: graph.New(cfg.Nodes + cfg.CPUOps)}

	switch cfg.Family {
	case Chain:
		b.chain()
	case Diamond:
		b.diamond()
	case Layered, ColocHeavy:
		b.layered()
	case Random:
		b.random()
	case Pipeline:
		b.pipeline()
	default:
		return nil, fmt.Errorf("gen: unknown family %v", cfg.Family)
	}
	if cfg.ColocFrac > 0 {
		b.colocate()
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated graph invalid: %w", err)
	}
	return b.g, nil
}

type builder struct {
	cfg Config
	rng *rand.Rand
	g   *graph.Graph
	// gpu lists the GPU operations in creation order, the pool the
	// colocation pass draws from.
	gpu []graph.NodeID
}

func (b *builder) cost() time.Duration {
	lo, hi := b.cfg.MinCost, b.cfg.MaxCost
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(b.rng.Int63n(int64(hi-lo)+1))
}

func (b *builder) bytes() int64 {
	lo, hi := b.cfg.MinBytes, b.cfg.MaxBytes
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Int63n(hi-lo+1)
}

func (b *builder) mem() int64 {
	lo, hi := b.cfg.MinMem, b.cfg.MaxMem
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Int63n(hi-lo+1)
}

func (b *builder) addGPU(name string, layer int) graph.NodeID {
	id := b.g.AddNode(graph.Node{
		Name:   name,
		Kind:   graph.KindGPU,
		Cost:   b.cost(),
		Memory: b.mem(),
		Layer:  layer,
	})
	b.gpu = append(b.gpu, id)
	return id
}

// inputs adds the CPU-affine input-pipeline operations and returns
// their IDs; every family wires them into its first GPU operations.
func (b *builder) inputs() []graph.NodeID {
	ids := make([]graph.NodeID, b.cfg.CPUOps)
	for i := range ids {
		ids[i] = b.g.AddNode(graph.Node{
			Name:  fmt.Sprintf("input/%d", i),
			Kind:  graph.KindCPU,
			Cost:  b.cost() / 4,
			Layer: 0,
		})
	}
	return ids
}

func (b *builder) edge(from, to graph.NodeID) {
	// Duplicate edges are possible when random draws collide; they are
	// simply skipped (AddEdge rejects them), keeping construction total.
	_ = b.g.AddEdge(from, to, b.bytes())
}

// chain builds input → op0 → op1 → … → op(n-1).
func (b *builder) chain() {
	in := b.inputs()
	prev := graph.NodeID(-1)
	for i := 0; i < b.cfg.Nodes; i++ {
		id := b.addGPU(fmt.Sprintf("chain/%d", i), 1+i)
		if prev < 0 {
			for _, cin := range in {
				b.edge(cin, id)
			}
		} else {
			b.edge(prev, id)
		}
		prev = id
	}
}

// diamond builds repeated fork-join cells: stem → W branches → join.
func (b *builder) diamond() {
	in := b.inputs()
	w := b.cfg.Width
	if w < 2 {
		w = 2
	}
	prev := graph.NodeID(-1)
	layer := 1
	remaining := b.cfg.Nodes
	cell := 0
	for remaining > 0 {
		stem := b.addGPU(fmt.Sprintf("cell%d/stem", cell), layer)
		if prev < 0 {
			for _, cin := range in {
				b.edge(cin, stem)
			}
		} else {
			b.edge(prev, stem)
		}
		remaining--
		branches := w
		if branches > remaining-1 {
			branches = remaining - 1
		}
		if branches <= 0 {
			prev = stem
			break
		}
		join := graph.NodeID(-1)
		var mids []graph.NodeID
		for j := 0; j < branches; j++ {
			mid := b.addGPU(fmt.Sprintf("cell%d/branch%d", cell, j), layer+1)
			b.edge(stem, mid)
			mids = append(mids, mid)
			remaining--
		}
		join = b.addGPU(fmt.Sprintf("cell%d/join", cell), layer+2)
		for _, mid := range mids {
			b.edge(mid, join)
		}
		remaining--
		prev = join
		layer += 3
		cell++
	}
}

// layered builds L×W dense layers with sparse skip connections.
func (b *builder) layered() {
	in := b.inputs()
	w := b.cfg.Width
	if w < 1 {
		w = 1
	}
	layers := (b.cfg.Nodes + w - 1) / w
	if layers < 1 {
		layers = 1
	}
	var prevLayer []graph.NodeID
	made := 0
	for l := 0; l < layers && made < b.cfg.Nodes; l++ {
		var cur []graph.NodeID
		for j := 0; j < w && made < b.cfg.Nodes; j++ {
			id := b.addGPU(fmt.Sprintf("layer%d/op%d", l, j), 1+l)
			made++
			if l == 0 {
				for _, cin := range in {
					b.edge(cin, id)
				}
			} else {
				// 1–3 predecessors in the previous layer, always ≥ 1 so
				// the graph stays connected layer to layer.
				k := 1 + b.rng.Intn(3)
				if k > len(prevLayer) {
					k = len(prevLayer)
				}
				for _, pi := range b.rng.Perm(len(prevLayer))[:k] {
					b.edge(prevLayer[pi], id)
				}
				// Sparse skip connection to any earlier GPU op — the
				// residual/attention shortcut shape.
				if b.rng.Float64() < b.cfg.SkipProb && len(b.gpu) > len(prevLayer)+1 {
					src := b.gpu[b.rng.Intn(len(b.gpu)-len(prevLayer)-1)]
					b.edge(src, id)
				}
			}
			cur = append(cur, id)
		}
		prevLayer = cur
	}
}

// random wires each operation to 1–4 uniformly chosen earlier ones.
func (b *builder) random() {
	in := b.inputs()
	for i := 0; i < b.cfg.Nodes; i++ {
		id := b.addGPU(fmt.Sprintf("op/%d", i), 1+i/4)
		if i == 0 {
			for _, cin := range in {
				b.edge(cin, id)
			}
			continue
		}
		k := 1 + b.rng.Intn(4)
		if k > i {
			k = i
		}
		for _, pi := range b.rng.Perm(i)[:k] {
			b.edge(b.gpu[pi], id)
		}
	}
}

// pipeline builds B internally-dense blocks of ~Width operations each,
// chained through a single narrow edge between consecutive blocks: the
// stage-friendly shape where a contiguous split pays one activation
// transfer per boundary. Layer is the block index, so coarsening and
// the contiguous-split DP both see the intended stage structure.
func (b *builder) pipeline() {
	in := b.inputs()
	w := b.cfg.Width
	if w < 1 {
		w = 1
	}
	blocks := (b.cfg.Nodes + w) / (w + 1)
	if blocks < 2 {
		blocks = 2
	}
	made := 0
	prevOut := graph.NodeID(-1)
	for blk := 0; blk < blocks && made < b.cfg.Nodes; blk++ {
		entry := b.addGPU(fmt.Sprintf("block%d/in", blk), 1+blk)
		made++
		if prevOut < 0 {
			for _, cin := range in {
				b.edge(cin, entry)
			}
		} else {
			b.edge(prevOut, entry)
		}
		// Dense interior: every interior op hangs off the entry and
		// feeds the block's output op, so within-block communication
		// dwarfs the single boundary edge.
		var mids []graph.NodeID
		for j := 0; j < w-1 && made < b.cfg.Nodes; j++ {
			mid := b.addGPU(fmt.Sprintf("block%d/op%d", blk, j), 1+blk)
			b.edge(entry, mid)
			mids = append(mids, mid)
			made++
		}
		out := entry
		if len(mids) > 0 && made < b.cfg.Nodes {
			out = b.addGPU(fmt.Sprintf("block%d/out", blk), 1+blk)
			for _, mid := range mids {
				b.edge(mid, out)
			}
			made++
		} else if len(mids) > 0 {
			out = mids[len(mids)-1]
		}
		prevOut = out
	}
}

// colocate binds a ColocFrac fraction of the GPU operations into
// groups of 2–4 consecutive operations (consecutive in creation order,
// so groups span real dataflow neighbourhoods).
func (b *builder) colocate() {
	want := int(float64(len(b.gpu)) * b.cfg.ColocFrac)
	grp := 0
	for i := 0; i+1 < len(b.gpu) && want > 0; {
		size := 2 + b.rng.Intn(3)
		if size > want {
			size = want
		}
		if size > len(b.gpu)-i {
			size = len(b.gpu) - i
		}
		if size < 2 {
			break
		}
		name := fmt.Sprintf("coloc/%d", grp)
		for j := 0; j < size; j++ {
			_ = b.g.SetColoc(b.gpu[i+j], name)
		}
		grp++
		want -= size
		// Leave a random gap so groups don't tile the whole graph.
		i += size + b.rng.Intn(3)
	}
}
