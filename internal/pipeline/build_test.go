package pipeline

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pesto/internal/comm"
	"pesto/internal/gen"
	"pesto/internal/sim"
)

// zeroCostModel builds a communication model whose transfers are free
// on every link type — the regime where the closed-form pipeline
// formulas hold exactly.
func zeroCostModel() *comm.CostModel {
	return comm.NewCostModelFrom(
		comm.Model{Type: comm.GPUToGPU, R2: 1},
		comm.Model{Type: comm.CPUToGPU, R2: 1},
		comm.Model{Type: comm.GPUToCPU, R2: 1},
	)
}

// TestBuildClosedFormForwardOnly pins the textbook pipeline formulas on
// a uniform zero-communication pipeline: S stages of per-microbatch
// time t run M microbatches in (M+S-1)*t, leaving a bubble fraction of
// (S-1)/(M+S-1).
func TestBuildClosedFormForwardOnly(t *testing.T) {
	const unit = time.Millisecond
	for _, c := range []struct{ S, M int }{{2, 2}, {3, 4}, {4, 8}, {1, 4}} {
		g := chainGraph(c.S, time.Duration(c.M)*unit, 0) // per-mb cost = unit
		sys := zeroCommSystem(c.S)
		part, err := PartitionDP(g, sys, sys.GPUs(), -1)
		if err != nil {
			t.Fatalf("S=%d: PartitionDP: %v", c.S, err)
		}
		plan, err := Build(part, sys, c.M, -1, ScheduleGPipe)
		if err != nil {
			t.Fatalf("S=%d M=%d: Build: %v", c.S, c.M, err)
		}
		sc, _, err := ScorePlan(plan, sys)
		if err != nil {
			t.Fatalf("S=%d M=%d: ScorePlan: %v", c.S, c.M, err)
		}
		wantMk := time.Duration(c.M+c.S-1) * unit
		if sc.Makespan != wantMk {
			t.Errorf("S=%d M=%d: makespan = %v, want (M+S-1)*t = %v", c.S, c.M, sc.Makespan, wantMk)
		}
		wantBubble := float64(c.S-1) / float64(c.M+c.S-1)
		if diff := sc.Bubble - wantBubble; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("S=%d M=%d: bubble = %g, want (S-1)/(M+S-1) = %g", c.S, c.M, sc.Bubble, wantBubble)
		}
	}
}

// TestBuildConservesWork: per-microbatch shares sum back to the
// full-batch compute and activation volumes exactly.
func TestBuildConservesWork(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(3, 16<<30)
	part, err := PartitionDP(g, sys, sys.GPUs(), 2)
	if err != nil {
		t.Fatalf("PartitionDP: %v", err)
	}
	const M = 5
	plan, err := Build(part, sys, M, 2, Schedule1F1B)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	fwd := make([]time.Duration, len(part.Stages))
	for _, n := range plan.Graph.Nodes() {
		s := plan.Meta.StageOf[n.ID]
		if s < 0 || plan.Meta.Backward[n.ID] {
			continue
		}
		fwd[s] += n.Cost
	}
	for s, st := range part.Stages {
		if fwd[s] != st.Compute {
			t.Errorf("stage %d: microbatch forwards sum to %v, partition says %v", s, fwd[s], st.Compute)
		}
	}
	if verr := plan.Meta.Validate(plan.Graph.NumNodes()); verr != nil {
		t.Errorf("meta: %v", verr)
	}
	if verr := plan.Sim.Validate(plan.Graph, sys); verr != nil {
		t.Errorf("sim plan: %v", verr)
	}
}

// TestSearchBeatsFIFO is the headline acceptance criterion: on the
// pipeline-friendly model zoo with M >= 4 microbatches, the best
// (partition, schedule) pair finishes the step faster than the
// single-shot FIFO baseline over the same partition.
func TestSearchBeatsFIFO(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, err := gen.Generate(gen.PipelineConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(4, 16<<30)
		out, err := Search(context.Background(), g, sys, Options{Microbatches: 4})
		if err != nil {
			t.Fatalf("seed %d: Search: %v", seed, err)
		}
		if out.FIFOStep <= 0 {
			t.Fatalf("seed %d: no FIFO baseline recorded", seed)
		}
		if out.Score.Makespan >= out.FIFOStep {
			t.Errorf("seed %d: pipeline step %v does not beat single-shot %v (stages=%d sched=%v)",
				seed, out.Score.Makespan, out.FIFOStep, len(out.Plan.Partition.Stages), out.Plan.Schedule)
		}
	}
}

// TestSearchDeterministic: equal inputs give byte-identical outcomes —
// same winner, same score, same candidate list.
func TestSearchDeterministic(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(4, 16<<30)
	opts := Options{Microbatches: 6}
	a, err := Search(context.Background(), g, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), g, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Info(), b.Info()) {
		t.Errorf("outcomes differ:\n%+v\n%+v", a.Info(), b.Info())
	}
	if !reflect.DeepEqual(a.Candidates, b.Candidates) {
		t.Errorf("candidate lists differ:\n%+v\n%+v", a.Candidates, b.Candidates)
	}
	if !reflect.DeepEqual(a.Plan.Sim, b.Plan.Sim) {
		t.Error("winning simulator plans differ")
	}
}

// TestSearchForwardOnlySingleDiscipline: forward-only pipelines score
// one discipline (they all coincide without backwards).
func TestSearchForwardOnly(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, 16<<30)
	out, err := Search(context.Background(), g, sys, Options{Microbatches: 4, BackwardRatio: -1})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	for _, n := range out.Plan.Graph.Nodes() {
		if out.Plan.Meta.Backward[n.ID] {
			t.Fatal("forward-only pipeline built a backward task")
		}
	}
	for _, c := range out.Candidates {
		if c.Schedule == Schedule1F1B {
			t.Fatal("forward-only search scored 1F1B separately")
		}
	}
}

// TestSearchRespectsExplicitSchedule: a pinned discipline is the only
// one scored and the only one that can win.
func TestSearchRespectsExplicitSchedule(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(3, 16<<30)
	out, err := Search(context.Background(), g, sys, Options{Microbatches: 4, Schedule: Schedule1F1B})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if out.Plan.Schedule != Schedule1F1B {
		t.Fatalf("winner discipline = %v, want 1f1b", out.Plan.Schedule)
	}
	for _, c := range out.Candidates {
		if c.Schedule == ScheduleGPipe && c.Makespan > 0 {
			t.Fatal("pinned-1f1b search scored a gpipe candidate")
		}
	}
}
