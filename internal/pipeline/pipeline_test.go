package pipeline

import (
	"errors"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Options
		bad  bool
	}{
		{spec: "", want: Options{}},
		{spec: "mb=8", want: Options{Microbatches: 8}},
		{spec: "mb=8,sched=1f1b", want: Options{Microbatches: 8, Schedule: Schedule1F1B}},
		{spec: "mb=4, sched=gpipe, stages=2, bwd=1.5", want: Options{Microbatches: 4, Schedule: ScheduleGPipe, MaxStages: 2, BackwardRatio: 1.5}},
		{spec: "microbatches=2,schedule=pipedream", want: Options{Microbatches: 2, Schedule: Schedule1F1B}},
		{spec: "mb=4,bwd=0", want: Options{Microbatches: 4, BackwardRatio: -1}},
		{spec: "sched=gpipe", bad: true},        // no mb
		{spec: "mb=nope", bad: true},            // unparsable
		{spec: "mb=8,zap=1", bad: true},         // unknown key
		{spec: "mb=8,sched=wat", bad: true},     // unknown schedule
		{spec: "mb=-1", bad: true},              // out of range
		{spec: "mb=100000", bad: true},          // over MaxMicrobatches
		{spec: "mb=8,bwd=NaN", bad: true},       // NaN rejected
		{spec: "mb=8,bwd=-3", bad: true},        // negative ratio is spelled bwd=0
		{spec: "mb", bad: true},                 // not key=value
		{spec: "mb=4,stages=100000", bad: true}, // stage cap
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted, want error", c.spec)
			} else if !errors.Is(err, ErrBadSpec) {
				t.Errorf("ParseSpec(%q) error %v does not wrap ErrBadSpec", c.spec, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, o := range []Options{
		{Microbatches: 8},
		{Microbatches: 4, Schedule: Schedule1F1B, MaxStages: 3},
		{Microbatches: 2, Schedule: ScheduleGPipe, BackwardRatio: 1.5},
		{Microbatches: 16, BackwardRatio: -1},
	} {
		back, err := ParseSpec(o.Spec())
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", o.Spec(), err)
			continue
		}
		// Spec() renders the resolved schedule name, so compare after
		// normalizing the zero (auto) schedule.
		want := o
		if back != want {
			t.Errorf("round trip %q: %+v -> %+v", o.Spec(), o, back)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Microbatches: 4}.WithDefaults()
	if o.BackwardRatio != 2 {
		t.Errorf("default BackwardRatio = %g, want 2", o.BackwardRatio)
	}
	fwd := Options{Microbatches: 4, BackwardRatio: -1}.WithDefaults()
	if fwd.BackwardRatio != -1 {
		t.Errorf("forward-only ratio rewritten to %g", fwd.BackwardRatio)
	}
	if (Options{}).Enabled() {
		t.Error("zero Options reports enabled")
	}
	if !o.Enabled() {
		t.Error("mb=4 Options reports disabled")
	}
}
