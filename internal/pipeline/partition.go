package pipeline

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// Stage is one contiguous pipeline stage: a run of the topological
// order of the model's GPU operations, pinned to one device.
type Stage struct {
	// Device runs every task of the stage.
	Device sim.DeviceID
	// Nodes are the stage's node IDs in topological order.
	Nodes []graph.NodeID
	// Compute is the summed raw (speed-unscaled) forward compute cost.
	Compute time.Duration
	// WeightBytes is the summed resident memory of the stage's nodes.
	WeightBytes int64
	// ActBytes is the full-batch activation volume crossing the
	// boundary from this stage to the next (zero for the last stage).
	ActBytes int64
	// CPUBytes is the full-batch input volume the stage receives from
	// host-side (CPU) operations.
	CPUBytes int64
}

// Partition is a contiguous split of a graph into pipeline stages.
type Partition struct {
	Stages []Stage
	// CPUCost is the summed cost of the host-side operations feeding
	// the pipeline (input pre-processing).
	CPUCost time.Duration
	// Bottleneck is the DP objective realized by this split: the
	// slowest stage's modeled time (speed-scaled compute for forward
	// plus backward, plus the activation transfer into the stage).
	Bottleneck time.Duration
}

// Errors reported by the partitioner.
var (
	// ErrInfeasible means no contiguous split satisfies the per-device
	// memory constraints (or the graph has fewer GPU operations than
	// requested stages).
	ErrInfeasible = errors.New("no feasible contiguous partition")
)

// splitModel is the shared cost model of PartitionDP and
// PartitionExhaustive: both optimize exactly this function, which is
// what lets the differential sweep demand bit-equal objectives.
type splitModel struct {
	sys    sim.System
	devs   []sim.DeviceID
	gpu    []graph.NodeID // GPU nodes in topological order
	prefC  []int64        // prefix sums of raw compute (ns)
	prefM  []int64        // prefix sums of resident memory
	cross  []int64        // cross[b]: bytes crossing the boundary after position b
	speed  []float64      // compute speed per stage slot
	mem    []int64        // memory capacity per stage slot (0 = unlimited)
	mult   float64        // forward+backward compute multiplier
	xfer   int            // activation transfers per boundary (1 fwd, +1 bwd)
	cpuIn  []int64        // per GPU position: bytes received from CPU ops
	cpuGas time.Duration  // total CPU-op cost
}

// newSplitModel extracts the DP inputs from the graph. backwardRatio
// follows the Options convention: zero means the default 2x, negative
// means forward-only.
func newSplitModel(g *graph.Graph, sys sim.System, devs []sim.DeviceID, backwardRatio float64) (*splitModel, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("pipeline partition: %w", err)
	}
	if backwardRatio == 0 {
		backwardRatio = 2
	}
	m := &splitModel{sys: sys, devs: devs, mult: 1 + math.Max(backwardRatio, 0), xfer: 1}
	if backwardRatio > 0 {
		m.xfer = 2
	}
	pos := make(map[graph.NodeID]int, len(topo))
	nodes := g.Nodes()
	for _, id := range topo {
		if nodes[id].Kind == graph.KindGPU {
			pos[id] = len(m.gpu)
			m.gpu = append(m.gpu, id)
		} else {
			m.cpuGas += nodes[id].Cost
		}
	}
	n := len(m.gpu)
	if n == 0 {
		return nil, fmt.Errorf("pipeline partition: graph has no GPU operations: %w", ErrInfeasible)
	}
	m.prefC = make([]int64, n+1)
	m.prefM = make([]int64, n+1)
	for i, id := range m.gpu {
		m.prefC[i+1] = m.prefC[i] + int64(nodes[id].Cost)
		m.prefM[i+1] = m.prefM[i] + nodes[id].Memory
	}
	diff := make([]int64, n+1)
	m.cpuIn = make([]int64, n)
	for _, e := range g.Edges() {
		pu, uGPU := pos[e.From]
		pv, vGPU := pos[e.To]
		switch {
		case uGPU && vGPU:
			if pu > pv {
				pu, pv = pv, pu
			}
			diff[pu] += e.Bytes
			diff[pv] -= e.Bytes
		case !uGPU && vGPU:
			m.cpuIn[pv] += e.Bytes
		}
		// GPU->CPU edges (e.g. metrics readback) do not constrain the
		// forward pipeline cut and are left to the simulator.
	}
	m.cross = make([]int64, n)
	var run int64
	for b := 0; b < n; b++ {
		run += diff[b]
		m.cross[b] = run
	}
	m.speed = make([]float64, len(devs))
	m.mem = make([]int64, len(devs))
	for s, d := range devs {
		dev, ok := sys.Device(d)
		if !ok || dev.Kind != sim.GPU || dev.Failed {
			return nil, fmt.Errorf("pipeline partition: stage device %d unusable: %w", d, ErrInfeasible)
		}
		m.speed[s] = dev.Speed
		if m.speed[s] <= 0 {
			m.speed[s] = 1
		}
		m.mem[s] = dev.Memory
	}
	return m, nil
}

// stageCost models the bottleneck contribution of placing GPU
// positions [j, i) as stage s: forward+backward compute scaled by the
// stage device's speed, plus the activation traffic over the incoming
// link (forward activations, and the returning gradients when
// training). Returns +Inf when the stage's weights do not fit the
// device.
func (m *splitModel) stageCost(j, i, s int) float64 {
	if m.mem[s] > 0 && m.prefM[i]-m.prefM[j] > m.mem[s] {
		return math.Inf(1)
	}
	c := float64(m.prefC[i]-m.prefC[j]) * m.mult / m.speed[s]
	if s > 0 {
		t := m.sys.TransferTime(m.devs[s-1], m.devs[s], m.cross[j-1])
		c += float64(t) * float64(m.xfer)
	}
	return c
}

// build materializes the Partition for the chosen boundaries; cut[s]
// is the exclusive end position of stage s (cut[len(devs)-1] == n).
func (m *splitModel) build(cut []int, bottleneck float64) *Partition {
	p := &Partition{CPUCost: m.cpuGas, Bottleneck: time.Duration(math.Round(bottleneck))}
	j := 0
	for s, i := range cut {
		st := Stage{
			Device:      m.devs[s],
			Nodes:       append([]graph.NodeID(nil), m.gpu[j:i]...),
			Compute:     time.Duration(m.prefC[i] - m.prefC[j]),
			WeightBytes: m.prefM[i] - m.prefM[j],
		}
		if i < len(m.gpu) {
			st.ActBytes = m.cross[i-1]
		}
		for q := j; q < i; q++ {
			st.CPUBytes += m.cpuIn[q]
		}
		p.Stages = append(p.Stages, st)
		j = i
	}
	return p
}

// PartitionDP cuts g's GPU operations (in topological order) into
// len(devs) contiguous stages, one per device in the given order,
// minimizing the bottleneck stage time — the Tarnawski et al.
// contiguous-split dynamic program over (split point, device count),
// generalized with per-device compute speeds and memory capacities and
// with the activation-transfer term from the system's communication
// model. Ties break toward the earliest split, deterministically.
func PartitionDP(g *graph.Graph, sys sim.System, devs []sim.DeviceID, backwardRatio float64) (*Partition, error) {
	m, err := newSplitModel(g, sys, devs, backwardRatio)
	if err != nil {
		return nil, err
	}
	n, S := len(m.gpu), len(devs)
	if S < 1 || S > n {
		return nil, fmt.Errorf("pipeline partition: %d stages over %d GPU operations: %w", S, n, ErrInfeasible)
	}
	const inf = math.MaxFloat64
	dp := make([][]float64, S)
	parent := make([][]int, S)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		parent[s] = make([]int, n+1)
		for i := range dp[s] {
			dp[s][i] = inf
			parent[s][i] = -1
		}
	}
	for i := 1; i <= n; i++ {
		dp[0][i] = m.stageCost(0, i, 0)
	}
	for s := 1; s < S; s++ {
		for i := s + 1; i <= n; i++ {
			for j := s; j < i; j++ {
				prev := dp[s-1][j]
				if prev == inf {
					continue
				}
				c := m.stageCost(j, i, s)
				if math.IsInf(c, 1) {
					continue
				}
				if c < prev {
					c = prev
				}
				if c < dp[s][i] {
					dp[s][i] = c
					parent[s][i] = j
				}
			}
		}
	}
	if dp[S-1][n] == inf || math.IsInf(dp[S-1][n], 1) {
		return nil, fmt.Errorf("pipeline partition: %d stages over %d operations: %w", S, n, ErrInfeasible)
	}
	cut := make([]int, S)
	i := n
	for s := S - 1; s >= 0; s-- {
		cut[s] = i
		if s > 0 {
			i = parent[s][i]
		}
	}
	return m.build(cut, dp[S-1][n]), nil
}

// PartitionExhaustive enumerates every contiguous split of the GPU
// operations into len(devs) stages and returns the best under exactly
// the cost model PartitionDP optimizes. It exists as the differential
// oracle for the DP on small graphs and refuses more than
// ExhaustiveLimit operations.
func PartitionExhaustive(g *graph.Graph, sys sim.System, devs []sim.DeviceID, backwardRatio float64) (*Partition, error) {
	m, err := newSplitModel(g, sys, devs, backwardRatio)
	if err != nil {
		return nil, err
	}
	n, S := len(m.gpu), len(devs)
	if n > ExhaustiveLimit {
		return nil, fmt.Errorf("pipeline partition: exhaustive splitter limited to %d operations, got %d", ExhaustiveLimit, n)
	}
	if S < 1 || S > n {
		return nil, fmt.Errorf("pipeline partition: %d stages over %d GPU operations: %w", S, n, ErrInfeasible)
	}
	best := math.Inf(1)
	var bestCut []int
	cut := make([]int, S)
	var walk func(s, from int, worst float64)
	walk = func(s, from int, worst float64) {
		if s == S-1 {
			c := m.stageCost(from, n, s)
			if c < worst {
				c = worst
			}
			if c < best {
				best = c
				cut[s] = n
				bestCut = append(bestCut[:0], cut...)
			}
			return
		}
		// Leave at least one operation per remaining stage.
		for i := from + 1; i <= n-(S-1-s); i++ {
			c := m.stageCost(from, i, s)
			if math.IsInf(c, 1) {
				continue
			}
			if c < worst {
				c = worst
			}
			if c >= best {
				continue // cannot improve a min-max objective by growing
			}
			cut[s] = i
			walk(s+1, i, c)
		}
	}
	walk(0, 0, 0)
	if bestCut == nil {
		return nil, fmt.Errorf("pipeline partition: %d stages over %d operations: %w", S, n, ErrInfeasible)
	}
	return m.build(bestCut, best), nil
}

// ExhaustiveLimit bounds PartitionExhaustive's input size.
const ExhaustiveLimit = 16
