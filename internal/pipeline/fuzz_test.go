package pipeline

import (
	"errors"
	"testing"
)

// FuzzParseSpec: the pipeline-options parser never panics, classifies
// every rejection as ErrBadSpec, and every accepted spec survives a
// render/re-parse round trip.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("mb=8")
	f.Add("mb=8,sched=1f1b")
	f.Add("mb=4,sched=gpipe,stages=2,bwd=1.5")
	f.Add("microbatches=512,schedule=pipedream,bwd=0")
	f.Add("mb=1e9")
	f.Add("mb=8,bwd=NaN")
	f.Add("mb=8,,sched=auto,")
	f.Add("mb = 8 , sched = fill-drain")
	f.Fuzz(func(t *testing.T, spec string) {
		o, err := ParseSpec(spec)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseSpec(%q) rejection %v does not wrap ErrBadSpec", spec, err)
			}
			return
		}
		if verr := o.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid options %+v: %v", spec, o, verr)
		}
		if o.Enabled() {
			back, rerr := ParseSpec(o.Spec())
			if rerr != nil {
				t.Fatalf("re-parse of %q (from %q): %v", o.Spec(), spec, rerr)
			}
			if back != o {
				t.Fatalf("round trip %q: %+v -> %+v", spec, o, back)
			}
		}
	})
}
