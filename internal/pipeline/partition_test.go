package pipeline

import (
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

// chainGraph builds a linear chain of n GPU operations with the given
// per-op cost and per-edge bytes.
func chainGraph(n int, cost time.Duration, bytes int64) *graph.Graph {
	g := graph.New(n)
	prev := graph.NodeID(-1)
	for i := 0; i < n; i++ {
		id := g.AddNode(graph.Node{Name: "op", Kind: graph.KindGPU, Cost: cost, Memory: 1 << 20})
		if prev >= 0 {
			_ = g.AddEdge(prev, id, bytes)
		}
		prev = id
	}
	return g
}

// zeroCommSystem is a system whose transfers are free — the regime
// where the closed-form pipeline formulas hold exactly.
func zeroCommSystem(numGPUs int) sim.System {
	sys := sim.NewSystem(numGPUs, 16<<30)
	sys.Comm = zeroCostModel()
	return sys
}

func TestPartitionDPBalancedChain(t *testing.T) {
	g := chainGraph(8, 100*time.Microsecond, 0)
	sys := zeroCommSystem(2)
	part, err := PartitionDP(g, sys, sys.GPUs(), -1)
	if err != nil {
		t.Fatalf("PartitionDP: %v", err)
	}
	if len(part.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(part.Stages))
	}
	for s, st := range part.Stages {
		if len(st.Nodes) != 4 {
			t.Errorf("stage %d holds %d ops, want 4 (balanced)", s, len(st.Nodes))
		}
	}
	if want := 400 * time.Microsecond; part.Bottleneck != want {
		t.Errorf("bottleneck = %v, want %v", part.Bottleneck, want)
	}
}

// TestPartitionDPHeterogeneousSpeeds: a 3x faster second device takes
// 3x the operations once per-device speeds enter the stage cost.
func TestPartitionDPHeterogeneousSpeeds(t *testing.T) {
	g := chainGraph(4, 100*time.Microsecond, 0)
	sys := zeroCommSystem(2).WithGPUSpeeds([]float64{1, 3})
	part, err := PartitionDP(g, sys, sys.GPUs(), -1)
	if err != nil {
		t.Fatalf("PartitionDP: %v", err)
	}
	if got := len(part.Stages[0].Nodes); got != 1 {
		t.Fatalf("slow stage holds %d ops, want 1 (speeds must shift the cut)", got)
	}
	if got := len(part.Stages[1].Nodes); got != 3 {
		t.Fatalf("fast stage holds %d ops, want 3", got)
	}
	if want := 100 * time.Microsecond; part.Bottleneck != want {
		t.Errorf("bottleneck = %v, want %v", part.Bottleneck, want)
	}
}

// TestPartitionDPMemoryInfeasible: stage weights over device capacity
// make a split infeasible rather than silently over-packing.
func TestPartitionDPMemoryInfeasible(t *testing.T) {
	g := chainGraph(4, 100*time.Microsecond, 0)
	sys := sim.NewSystem(1, 1<<20) // all four 1MiB ops cannot fit 1MiB
	if _, err := PartitionDP(g, sys, sys.GPUs(), -1); err == nil {
		t.Fatal("PartitionDP accepted a memory-infeasible single-stage split")
	}
}

// TestPartitionDPMatchesExhaustive is the differential rung of the
// acceptance criteria: on every seeded graph small enough for the
// exhaustive splitter, the DP realizes the identical bottleneck
// objective — same cost model, same optimum, bit for bit.
func TestPartitionDPMatchesExhaustive(t *testing.T) {
	ratios := []float64{-1, 1, 2}
	for seed := int64(0); seed < 30; seed++ {
		cfg := gen.PipelineConfig(seed)
		cfg.Nodes = 6 + int(seed%7) // ≤ 12 GPU ops, within ExhaustiveLimit
		g, err := gen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		sys := sim.NewSystem(4, 16<<30).WithGPUSpeeds([]float64{1, 2, 0.5, 1.5})
		gpus := sys.GPUs()
		for S := 1; S <= len(gpus); S++ {
			ratio := ratios[int(seed)%len(ratios)]
			dp, derr := PartitionDP(g, sys, gpus[:S], ratio)
			ex, eerr := PartitionExhaustive(g, sys, gpus[:S], ratio)
			if (derr == nil) != (eerr == nil) {
				t.Fatalf("seed %d S=%d: feasibility disagrees: dp=%v exhaustive=%v", seed, S, derr, eerr)
			}
			if derr != nil {
				continue
			}
			if dp.Bottleneck != ex.Bottleneck {
				t.Errorf("seed %d S=%d ratio=%g: dp bottleneck %v != exhaustive %v",
					seed, S, ratio, dp.Bottleneck, ex.Bottleneck)
			}
		}
	}
}

// TestPartitionStagesContiguous: every stage is a contiguous run of
// the GPU topological order and covers it exactly once.
func TestPartitionStagesContiguous(t *testing.T) {
	g, err := gen.Generate(gen.PipelineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(4, 16<<30)
	part, err := PartitionDP(g, sys, sys.GPUs(), 2)
	if err != nil {
		t.Fatalf("PartitionDP: %v", err)
	}
	seen := make(map[graph.NodeID]bool)
	for _, st := range part.Stages {
		for _, id := range st.Nodes {
			if seen[id] {
				t.Fatalf("node %d in two stages", id)
			}
			seen[id] = true
		}
	}
	gpuOps := 0
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindGPU {
			gpuOps++
			if !seen[n.ID] {
				t.Fatalf("GPU op %d in no stage", n.ID)
			}
		}
	}
	if len(seen) != gpuOps {
		t.Fatalf("stages cover %d ops, graph has %d", len(seen), gpuOps)
	}
}
