package pipeline

import (
	"context"
	"fmt"
	"math"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// Plan is a concrete microbatched pipeline execution artifact: the
// microbatch-replicated task graph (one forward task per (stage,
// microbatch), plus backward tasks for training pipelines and host-side
// source tasks feeding stage inputs), the simulator plan pinning each
// stage to its device with an explicit per-device order implementing
// the schedule discipline, and the metadata the accounting and the
// independent verifier need.
type Plan struct {
	Graph     *graph.Graph
	Sim       sim.Plan
	Meta      sim.PipelineMeta
	Partition *Partition
	Schedule  ScheduleKind
}

// Score is the simulated quality of one pipeline plan.
type Score struct {
	// Makespan is the simulated time of one full training step: all M
	// microbatches through every stage (and back, when training).
	Makespan time.Duration
	// PerMicrobatch is Makespan / M — the amortized per-microbatch
	// step time the pipeline must hold under the FIFO baseline to pay
	// for itself.
	PerMicrobatch time.Duration
	// Bubble is 1 - sum(stage busy)/(S * Makespan): the idle fraction
	// of the pipeline diagram.
	Bubble float64
	// Stages is the per-stage accounting (busy, utilization, peak
	// memory, peak in-flight microbatches).
	Stages []sim.PipelineStageStats
	// PeakMemory is the largest per-stage peak footprint.
	PeakMemory int64
}

// splitShare divides a full-batch quantity across M microbatches,
// spreading the remainder over the first microbatches so totals are
// conserved exactly.
func splitShare(total int64, m, M int) int64 {
	share := total / int64(M)
	if int64(m) < total%int64(M) {
		share++
	}
	return share
}

// Build materializes the microbatch-replicated execution graph and
// simulator plan for one partition under one schedule discipline with
// M microbatches. Per-microbatch task costs and tensor volumes are the
// full-batch values divided by M (remainders spread over the leading
// microbatches), so the replicated step conserves total work.
func Build(part *Partition, sys sim.System, M int, backwardRatio float64, kind ScheduleKind) (*Plan, error) {
	if M < 1 || M > MaxMicrobatches {
		return nil, fmt.Errorf("build pipeline: %d microbatches out of [1, %d]: %w", M, MaxMicrobatches, ErrBadSpec)
	}
	S := len(part.Stages)
	if S == 0 {
		return nil, fmt.Errorf("build pipeline: empty partition: %w", ErrInfeasible)
	}
	if backwardRatio == 0 {
		backwardRatio = 2
	}
	training := backwardRatio > 0

	hasSrc := part.CPUCost > 0
	for _, st := range part.Stages {
		if st.CPUBytes > 0 {
			hasSrc = true
		}
	}

	nTasks := S * M
	if training {
		nTasks *= 2
	}
	if hasSrc {
		nTasks += M
	}
	pg := graph.New(nTasks)
	meta := sim.PipelineMeta{
		Stages:           S,
		Microbatches:     M,
		StageDevice:      make([]sim.DeviceID, S),
		StageWeightBytes: make([]int64, S),
		StageActBytes:    make([]int64, S),
	}
	if training {
		meta.Discipline = kind.String()
	}

	var src []graph.NodeID
	if hasSrc {
		src = make([]graph.NodeID, M)
		for m := 0; m < M; m++ {
			src[m] = pg.AddNode(graph.Node{
				Name: fmt.Sprintf("src.%d", m),
				Kind: graph.KindCPU,
				Cost: time.Duration(splitShare(int64(part.CPUCost), m, M)),
			})
		}
	}
	fid := make([][]graph.NodeID, S)
	bid := make([][]graph.NodeID, S)
	for s, st := range part.Stages {
		meta.StageDevice[s] = st.Device
		meta.StageWeightBytes[s] = st.WeightBytes
		meta.StageActBytes[s] = (st.ActBytes + int64(M) - 1) / int64(M)
		fid[s] = make([]graph.NodeID, M)
		bid[s] = make([]graph.NodeID, M)
		bwdTotal := int64(math.Round(float64(st.Compute) * math.Max(backwardRatio, 0)))
		for m := 0; m < M; m++ {
			fid[s][m] = pg.AddNode(graph.Node{
				Name:  fmt.Sprintf("s%d.f%d", s, m),
				Kind:  graph.KindGPU,
				Cost:  time.Duration(splitShare(int64(st.Compute), m, M)),
				Layer: s,
			})
			if training {
				bid[s][m] = pg.AddNode(graph.Node{
					Name:  fmt.Sprintf("s%d.b%d", s, m),
					Kind:  graph.KindGPU,
					Cost:  time.Duration(splitShare(bwdTotal, m, M)),
					Layer: s,
				})
			}
		}
	}
	for s, st := range part.Stages {
		for m := 0; m < M; m++ {
			if hasSrc && (st.CPUBytes > 0 || s == 0) {
				if err := pg.AddEdge(src[m], fid[s][m], splitShare(st.CPUBytes, m, M)); err != nil {
					return nil, fmt.Errorf("build pipeline: %w", err)
				}
			}
			if s+1 < S {
				act := splitShare(st.ActBytes, m, M)
				if err := pg.AddEdge(fid[s][m], fid[s+1][m], act); err != nil {
					return nil, fmt.Errorf("build pipeline: %w", err)
				}
				if training {
					if err := pg.AddEdge(bid[s+1][m], bid[s][m], act); err != nil {
						return nil, fmt.Errorf("build pipeline: %w", err)
					}
				}
			}
			if training {
				// The backward task consumes the stage's stashed
				// activations: same device, no transfer.
				if err := pg.AddEdge(fid[s][m], bid[s][m], 0); err != nil {
					return nil, fmt.Errorf("build pipeline: %w", err)
				}
			}
		}
	}

	n := pg.NumNodes()
	meta.StageOf = make([]int, n)
	meta.MBOf = make([]int, n)
	meta.Backward = make([]bool, n)
	device := make([]sim.DeviceID, n)
	cpu := sys.CPUID()
	for m := 0; m < M; m++ {
		if hasSrc {
			meta.StageOf[src[m]] = -1
			meta.MBOf[src[m]] = m
			device[src[m]] = cpu
		}
		for s := 0; s < S; s++ {
			meta.StageOf[fid[s][m]] = s
			meta.MBOf[fid[s][m]] = m
			device[fid[s][m]] = part.Stages[s].Device
			if training {
				meta.StageOf[bid[s][m]] = s
				meta.MBOf[bid[s][m]] = m
				meta.Backward[bid[s][m]] = true
				device[bid[s][m]] = part.Stages[s].Device
			}
		}
	}

	order := make([][]graph.NodeID, len(sys.Devices))
	if hasSrc {
		order[cpu] = append([]graph.NodeID(nil), src...)
	}
	for s := 0; s < S; s++ {
		var slots []Slot
		if training {
			slots = StageOrder(kind, s, S, M)
		} else {
			slots = ForwardOrder(M)
		}
		lane := make([]graph.NodeID, 0, len(slots))
		for _, sl := range slots {
			if sl.Backward {
				lane = append(lane, bid[s][sl.MB])
			} else {
				lane = append(lane, fid[s][sl.MB])
			}
		}
		order[part.Stages[s].Device] = lane
	}

	return &Plan{
		Graph:     pg,
		Sim:       sim.Plan{Device: device, Order: order, Policy: sim.PolicyFIFO},
		Meta:      meta,
		Partition: part,
		Schedule:  kind,
	}, nil
}

// ScorePlan simulates the pipeline plan on sys and reduces it to a
// Score via the simulator's pipeline accounting.
func ScorePlan(p *Plan, sys sim.System) (Score, sim.Result, error) {
	res, err := sim.Run(p.Graph, sys, p.Sim)
	if err != nil {
		return Score{}, sim.Result{}, fmt.Errorf("pipeline score: %w", err)
	}
	stats, bubble, err := sim.PipelineAccounting(p.Graph, p.Meta, res)
	if err != nil {
		return Score{}, sim.Result{}, fmt.Errorf("pipeline score: %w", err)
	}
	sc := Score{
		Makespan:      res.Makespan,
		PerMicrobatch: res.Makespan / time.Duration(p.Meta.Microbatches),
		Bubble:        bubble,
		Stages:        stats,
	}
	for _, st := range stats {
		if st.PeakMemory > sc.PeakMemory {
			sc.PeakMemory = st.PeakMemory
		}
	}
	return sc, res, nil
}

// memoryFeasible reports whether every stage's peak footprint fits its
// device. Devices with Memory == 0 are unlimited.
func memoryFeasible(sys sim.System, stats []sim.PipelineStageStats) bool {
	for _, st := range stats {
		dev, ok := sys.Device(st.Device)
		if !ok {
			return false
		}
		if dev.Memory > 0 && st.PeakMemory > dev.Memory {
			return false
		}
	}
	return true
}

// Candidate records one (stage count, schedule) point the search
// scored, for observability and the experiments tables.
type Candidate struct {
	Stages     int
	Schedule   ScheduleKind
	Makespan   time.Duration
	Bubble     float64
	PeakMemory int64
	Feasible   bool
}

// Outcome is the result of Search: the best (partition, schedule) pair
// with its score, the single-shot baseline, and every candidate tried.
type Outcome struct {
	Plan  *Plan
	Score Score
	// FIFOStep is the simulated single-shot step (M = 1, no
	// microbatching) through the winning partition — the baseline the
	// pipeline's Makespan must beat to pay for itself.
	FIFOStep   time.Duration
	Candidates []Candidate
}

// Info is the compact provenance record placement attaches to its
// results (Result.Provenance.Pipeline).
type Info struct {
	Stages        int            `json:"stages"`
	Microbatches  int            `json:"microbatches"`
	Schedule      string         `json:"schedule"`
	Makespan      time.Duration  `json:"makespan"`
	PerMicrobatch time.Duration  `json:"per_microbatch"`
	FIFOStep      time.Duration  `json:"fifo_step"`
	Bubble        float64        `json:"bubble"`
	PeakMemory    int64          `json:"peak_memory"`
	StageDevices  []sim.DeviceID `json:"stage_devices"`
	StageOps      []int          `json:"stage_ops"`
	StageUtil     []float64      `json:"stage_util"`
	StagePeakMem  []int64        `json:"stage_peak_mem"`
}

// Info reduces the outcome to its provenance record.
func (o *Outcome) Info() *Info {
	if o == nil || o.Plan == nil {
		return nil
	}
	info := &Info{
		Stages:        len(o.Plan.Partition.Stages),
		Microbatches:  o.Plan.Meta.Microbatches,
		Schedule:      o.Plan.Schedule.String(),
		Makespan:      o.Score.Makespan,
		PerMicrobatch: o.Score.PerMicrobatch,
		FIFOStep:      o.FIFOStep,
		Bubble:        o.Score.Bubble,
		PeakMemory:    o.Score.PeakMemory,
	}
	for _, st := range o.Plan.Partition.Stages {
		info.StageDevices = append(info.StageDevices, st.Device)
		info.StageOps = append(info.StageOps, len(st.Nodes))
	}
	for _, st := range o.Score.Stages {
		info.StageUtil = append(info.StageUtil, st.Utilization)
		info.StagePeakMem = append(info.StagePeakMem, st.PeakMemory)
	}
	return info
}

// Search runs the joint (partition, schedule) search: for every stage
// count S from 1 to the usable GPU count (capped by
// Options.MaxStages), partition the graph with the contiguous-split DP
// and score every requested schedule discipline on the simulator,
// skipping candidates whose per-stage peak memory overflows a device.
// The best candidate wins by simulated makespan, with peak memory then
// lower stage count as deterministic tie-breaks.
//
// The graph is typically Pesto's coarsened graph — the DP then splits
// coarse groups, exactly the granularity the ILP rung solves over.
func Search(ctx context.Context, g *graph.Graph, sys sim.System, opts Options) (*Outcome, error) {
	opts = opts.WithDefaults()
	if !opts.Enabled() {
		return nil, fmt.Errorf("pipeline search: options disable pipelining (mb=0): %w", ErrBadSpec)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	gpus := sys.GPUs()
	if len(gpus) == 0 {
		return nil, fmt.Errorf("pipeline search: no usable GPUs: %w", ErrInfeasible)
	}
	maxS := len(gpus)
	if opts.MaxStages > 0 && opts.MaxStages < maxS {
		maxS = opts.MaxStages
	}
	kinds := []ScheduleKind{ScheduleGPipe, Schedule1F1B}
	if opts.BackwardRatio < 0 {
		kinds = []ScheduleKind{ScheduleGPipe} // disciplines coincide forward-only
	} else if opts.Schedule != ScheduleAuto {
		kinds = []ScheduleKind{opts.Schedule}
	}

	out := &Outcome{}
	bestMk := time.Duration(-1)
	for S := 1; S <= maxS; S++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pipeline search: %w", err)
		}
		part, err := PartitionDP(g, sys, gpus[:S], opts.BackwardRatio)
		if err != nil {
			out.Candidates = append(out.Candidates, Candidate{Stages: S})
			continue
		}
		for _, kind := range kinds {
			plan, err := Build(part, sys, opts.Microbatches, opts.BackwardRatio, kind)
			if err != nil {
				out.Candidates = append(out.Candidates, Candidate{Stages: S, Schedule: kind})
				continue
			}
			sc, _, err := ScorePlan(plan, sys)
			if err != nil {
				out.Candidates = append(out.Candidates, Candidate{Stages: S, Schedule: kind})
				continue
			}
			feasible := memoryFeasible(sys, sc.Stages)
			out.Candidates = append(out.Candidates, Candidate{
				Stages:     S,
				Schedule:   kind,
				Makespan:   sc.Makespan,
				Bubble:     sc.Bubble,
				PeakMemory: sc.PeakMemory,
				Feasible:   feasible,
			})
			if !feasible {
				continue
			}
			if bestMk < 0 || sc.Makespan < bestMk ||
				(sc.Makespan == bestMk && sc.PeakMemory < out.Score.PeakMemory) {
				bestMk = sc.Makespan
				out.Plan = plan
				out.Score = sc
			}
		}
	}
	if out.Plan == nil {
		return nil, fmt.Errorf("pipeline search: no memory-feasible (partition, schedule) candidate: %w", ErrInfeasible)
	}
	single, err := Build(out.Plan.Partition, sys, 1, opts.BackwardRatio, out.Plan.Schedule)
	if err == nil {
		if sc, _, serr := ScorePlan(single, sys); serr == nil {
			out.FIFOStep = sc.Makespan
		}
	}
	return out, nil
}
