package pipeline

import "testing"

// TestStageOrderGolden pins the exact schedule strings for S=4, M=4 —
// the textbook GPipe fill-drain and 1F1B (PipeDream-flush) diagrams.
func TestStageOrderGolden(t *testing.T) {
	const S, M = 4, 4
	cases := []struct {
		kind  ScheduleKind
		stage int
		want  string
	}{
		{ScheduleGPipe, 0, "F0 F1 F2 F3 B3 B2 B1 B0"},
		{ScheduleGPipe, 3, "F0 F1 F2 F3 B3 B2 B1 B0"},
		{Schedule1F1B, 0, "F0 F1 F2 F3 B0 B1 B2 B3"},
		{Schedule1F1B, 1, "F0 F1 F2 B0 F3 B1 B2 B3"},
		{Schedule1F1B, 2, "F0 F1 B0 F2 B1 F3 B2 B3"},
		{Schedule1F1B, 3, "F0 B0 F1 B1 F2 B2 F3 B3"},
	}
	for _, c := range cases {
		got := FormatOrder(StageOrder(c.kind, c.stage, S, M))
		if got != c.want {
			t.Errorf("%v stage %d: %q, want %q", c.kind, c.stage, got, c.want)
		}
	}
	if got := FormatOrder(ForwardOrder(3)); got != "F0 F1 F2" {
		t.Errorf("ForwardOrder(3) = %q", got)
	}
}

// TestStageOrderComplete: every (kind, stage) order contains each
// microbatch's forward and backward exactly once, forward first.
func TestStageOrderComplete(t *testing.T) {
	for _, kind := range []ScheduleKind{ScheduleGPipe, Schedule1F1B} {
		for S := 1; S <= 5; S++ {
			for M := 1; M <= 6; M++ {
				for s := 0; s < S; s++ {
					order := StageOrder(kind, s, S, M)
					if len(order) != 2*M {
						t.Fatalf("%v S=%d M=%d stage %d: %d slots, want %d", kind, S, M, s, len(order), 2*M)
					}
					fwdAt := make([]int, M)
					seenF := make([]bool, M)
					seenB := make([]bool, M)
					for i, sl := range order {
						if sl.MB < 0 || sl.MB >= M {
							t.Fatalf("%v S=%d M=%d stage %d: slot %v out of range", kind, S, M, s, sl)
						}
						if sl.Backward {
							if seenB[sl.MB] {
								t.Fatalf("%v S=%d M=%d stage %d: duplicate %v", kind, S, M, s, sl)
							}
							if !seenF[sl.MB] || fwdAt[sl.MB] > i {
								t.Fatalf("%v S=%d M=%d stage %d: backward %d before its forward", kind, S, M, s, sl.MB)
							}
							seenB[sl.MB] = true
						} else {
							if seenF[sl.MB] {
								t.Fatalf("%v S=%d M=%d stage %d: duplicate %v", kind, S, M, s, sl)
							}
							seenF[sl.MB] = true
							fwdAt[sl.MB] = i
						}
					}
				}
			}
		}
	}
}

// TestStageOrder1F1BInFlight: the warmup depth bounds in-flight
// microbatches at min(S-s, M) — the property that makes 1F1B's
// activation memory independent of M.
func TestStageOrder1F1BInFlight(t *testing.T) {
	for S := 1; S <= 6; S++ {
		for M := 1; M <= 8; M++ {
			for s := 0; s < S; s++ {
				bound := S - s
				if bound > M {
					bound = M
				}
				inFlight, peak := 0, 0
				for _, sl := range StageOrder(Schedule1F1B, s, S, M) {
					if sl.Backward {
						inFlight--
					} else {
						inFlight++
					}
					if inFlight > peak {
						peak = inFlight
					}
				}
				if peak > bound {
					t.Errorf("S=%d M=%d stage %d: peak in-flight %d exceeds bound %d", S, M, s, peak, bound)
				}
			}
		}
	}
}
