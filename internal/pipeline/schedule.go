package pipeline

import (
	"fmt"
	"strings"
)

// Slot is one entry of a stage's local execution order: which
// microbatch, and whether the forward or backward task runs.
type Slot struct {
	MB       int
	Backward bool
}

// String renders a slot as F3 / B0 — the notation the golden schedule
// tests pin.
func (s Slot) String() string {
	if s.Backward {
		return fmt.Sprintf("B%d", s.MB)
	}
	return fmt.Sprintf("F%d", s.MB)
}

// StageOrder returns the local execution order of stage s (0-based) of
// S under the given discipline with M microbatches. Forward-only
// pipelines (Options.BackwardRatio < 0) use ForwardOrder instead.
//
// GPipe fills then drains: all M forwards in microbatch order, then
// all M backwards in LIFO order (the last activation computed is the
// first consumed, which is also the order the backward dependencies
// make available soonest on the last stage).
//
// 1F1B (PipeDream-flush) warms up with min(S-1-s, M) forwards, then
// alternates one forward with one backward until the forwards are
// exhausted, and drains the remaining backwards. The warmup depth is
// what bounds the stage's live activations near its distance from the
// end of the pipeline instead of M.
func StageOrder(kind ScheduleKind, s, S, M int) []Slot {
	order := make([]Slot, 0, 2*M)
	switch kind {
	case Schedule1F1B:
		w := S - 1 - s
		if w > M {
			w = M
		}
		for m := 0; m < w; m++ {
			order = append(order, Slot{MB: m})
		}
		for m := w; m < M; m++ {
			order = append(order, Slot{MB: m}, Slot{MB: m - w, Backward: true})
		}
		for m := M - w; m < M; m++ {
			order = append(order, Slot{MB: m, Backward: true})
		}
	default: // ScheduleGPipe
		for m := 0; m < M; m++ {
			order = append(order, Slot{MB: m})
		}
		for m := M - 1; m >= 0; m-- {
			order = append(order, Slot{MB: m, Backward: true})
		}
	}
	return order
}

// ForwardOrder is the degenerate discipline of an inference pipeline:
// every stage runs its M forwards in microbatch order.
func ForwardOrder(M int) []Slot {
	order := make([]Slot, M)
	for m := range order {
		order[m] = Slot{MB: m}
	}
	return order
}

// FormatOrder renders a stage order as "F0 F1 B0 ..." for goldens and
// debugging.
func FormatOrder(order []Slot) string {
	parts := make([]string, len(order))
	for i, s := range order {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}
