// Package pipeline plans microbatched pipeline-parallel execution of a
// DNN graph: it cuts the (coarsened) model into contiguous stages with
// a Tarnawski-style dynamic program over (split point, device count)
// minimizing the bottleneck stage time, generates GPipe and 1F1B
// microbatch schedules over the stages, scores every (partition,
// schedule) candidate on the discrete-event simulator, and returns the
// best pair with bubble-fraction, per-stage utilization and peak-memory
// accounting.
//
// The package deliberately knows nothing about internal/placement: the
// placement ladder exposes it as the StagePipelineDP rung and as the
// Options.Pipeline planning regime, but everything here works from a
// graph, a system and an Options value alone.
package pipeline

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ScheduleKind names a microbatch schedule discipline.
type ScheduleKind int

const (
	// ScheduleAuto tries every discipline and keeps the best.
	ScheduleAuto ScheduleKind = iota
	// ScheduleGPipe is the fill-drain schedule: every stage runs all M
	// forward microbatches, then all M backward microbatches in LIFO
	// order. Simple, but holds M activations per stage.
	ScheduleGPipe
	// Schedule1F1B is the PipeDream-flush schedule: after a short
	// warmup each stage alternates one forward with one backward,
	// bounding live activations near the stage depth instead of M.
	Schedule1F1B
)

// String implements fmt.Stringer with the names ParseSchedule accepts.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleAuto:
		return "auto"
	case ScheduleGPipe:
		return "gpipe"
	case Schedule1F1B:
		return "1f1b"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// ErrBadSpec classifies every pipeline option-parse rejection.
var ErrBadSpec = errors.New("bad pipeline spec")

// ParseSchedule parses a schedule name. It accepts the String() forms
// plus the common aliases "pipedream" (1F1B) and "fill-drain" (GPipe).
func ParseSchedule(s string) (ScheduleKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return ScheduleAuto, nil
	case "gpipe", "fill-drain":
		return ScheduleGPipe, nil
	case "1f1b", "pipedream":
		return Schedule1F1B, nil
	default:
		return 0, fmt.Errorf("unknown schedule %q (want auto, gpipe or 1f1b): %w", s, ErrBadSpec)
	}
}

// Options selects the pipeline planning regime and its shape. The zero
// value (Microbatches == 0) means "no pipeline": placement treats the
// step as a one-shot FIFO graph exactly as before.
type Options struct {
	// Microbatches is M, the number of microbatches the training step
	// is split into. Zero disables pipeline planning; one degenerates
	// to a staged single-shot step.
	Microbatches int
	// Schedule picks the microbatch discipline; ScheduleAuto (zero)
	// scores both GPipe and 1F1B and keeps the better plan.
	Schedule ScheduleKind
	// MaxStages caps the number of pipeline stages searched; zero
	// means the number of usable GPUs.
	MaxStages int
	// BackwardRatio is the backward-pass compute cost as a multiple of
	// the forward cost (the usual rule of thumb is 2x). Zero means 2;
	// negative means a forward-only (inference) pipeline with no
	// backward tasks at all.
	BackwardRatio float64
}

// Enabled reports whether pipeline planning was requested.
func (o Options) Enabled() bool { return o.Microbatches > 0 }

// WithDefaults resolves the zero-value rules.
func (o Options) WithDefaults() Options {
	if o.BackwardRatio == 0 {
		o.BackwardRatio = 2
	}
	return o
}

// MaxMicrobatches bounds M: beyond this the replicated graph stops
// being a planning artifact and becomes a memory hazard.
const MaxMicrobatches = 512

// Validate rejects out-of-range options.
func (o Options) Validate() error {
	if o.Microbatches < 0 || o.Microbatches > MaxMicrobatches {
		return fmt.Errorf("microbatches %d out of [0, %d]: %w", o.Microbatches, MaxMicrobatches, ErrBadSpec)
	}
	if o.MaxStages < 0 || o.MaxStages > 4096 {
		return fmt.Errorf("max stages %d out of [0, 4096]: %w", o.MaxStages, ErrBadSpec)
	}
	switch o.Schedule {
	case ScheduleAuto, ScheduleGPipe, Schedule1F1B:
	default:
		return fmt.Errorf("unknown schedule %v: %w", o.Schedule, ErrBadSpec)
	}
	return nil
}

// ParseSpec parses the compact CLI form of Options: comma-separated
// key=value clauses, e.g. "mb=8,sched=1f1b,stages=4,bwd=2". Keys:
//
//	mb      microbatch count M (required for the spec to enable anything)
//	sched   auto | gpipe | 1f1b (aliases: pipedream, fill-drain)
//	stages  maximum stage count (default: all usable GPUs)
//	bwd     backward/forward cost ratio; 0 means forward-only
//
// An empty spec returns the zero (disabled) Options.
func ParseSpec(spec string) (Options, error) {
	var o Options
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return o, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Options{}, fmt.Errorf("clause %q is not key=value: %w", clause, ErrBadSpec)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "mb", "microbatches":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Options{}, fmt.Errorf("mb=%q: %v: %w", val, err, ErrBadSpec)
			}
			o.Microbatches = n
		case "sched", "schedule":
			k, err := ParseSchedule(val)
			if err != nil {
				return Options{}, err
			}
			o.Schedule = k
		case "stages", "max-stages":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Options{}, fmt.Errorf("stages=%q: %v: %w", val, err, ErrBadSpec)
			}
			o.MaxStages = n
		case "bwd", "backward-ratio":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Options{}, fmt.Errorf("bwd=%q: %v: %w", val, err, ErrBadSpec)
			}
			if f != f || f < 0 || f > 1e6 {
				return Options{}, fmt.Errorf("bwd=%q out of [0, 1e6]: %w", val, ErrBadSpec)
			}
			if f == 0 {
				f = -1 // explicit forward-only, distinct from "use the default"
			}
			o.BackwardRatio = f
		default:
			return Options{}, fmt.Errorf("unknown key %q: %w", key, ErrBadSpec)
		}
	}
	if o.Microbatches == 0 {
		return Options{}, fmt.Errorf("spec %q sets no microbatch count (mb=N): %w", spec, ErrBadSpec)
	}
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Spec renders Options back into the ParseSpec form.
func (o Options) Spec() string {
	if !o.Enabled() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mb=%d,sched=%s", o.Microbatches, o.Schedule)
	if o.MaxStages > 0 {
		fmt.Fprintf(&b, ",stages=%d", o.MaxStages)
	}
	if o.BackwardRatio < 0 {
		b.WriteString(",bwd=0")
	} else if o.BackwardRatio > 0 {
		fmt.Fprintf(&b, ",bwd=%g", o.BackwardRatio)
	}
	return b.String()
}
