package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestPipelineSchedulesTable(t *testing.T) {
	res, err := PipelineSchedules(context.Background(), smallCfg(), 4)
	if err != nil {
		t.Fatalf("PipelineSchedules: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.Err != nil {
			t.Errorf("%s: %v", row.Variant, row.Err)
			continue
		}
		if row.Stages <= 0 || row.FIFO <= 0 || row.GPipe <= 0 || row.OneFOneB <= 0 {
			t.Errorf("%s: missing measurements: %+v", row.Variant, row)
			continue
		}
		// Per-step amortized, the best pipelined discipline must beat
		// pushing one full batch through the stages at a time.
		best := row.GPipe
		if row.OneFOneB < best {
			best = row.OneFOneB
		}
		if best >= row.FIFO {
			t.Errorf("%s: best pipeline step %v not better than FIFO %v", row.Variant, best, row.FIFO)
		}
		if row.GPipeBubble < 0 || row.GPipeBubble >= 1 || row.OneFOneBBubble < 0 || row.OneFOneBBubble >= 1 {
			t.Errorf("%s: bubble out of range: gpipe=%v 1f1b=%v", row.Variant, row.GPipeBubble, row.OneFOneBBubble)
		}
	}
	if !strings.Contains(res.String(), "Pipeline schedules") {
		t.Error("String() missing header")
	}
}
