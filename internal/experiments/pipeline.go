package experiments

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/engine"
	"pesto/internal/pipeline"
)

// PipelineRow compares the microbatch schedule disciplines on one
// variant: the single-shot FIFO step through the winning partition (the
// no-pipelining baseline, amortized per step) against the microbatched
// GPipe and 1F1B steps over the same stages.
type PipelineRow struct {
	Variant string
	// Stages is the stage count of the winning contiguous partition.
	Stages int
	// FIFO is the single-shot step: one batch pushed through the
	// stages with no microbatch overlap.
	FIFO time.Duration
	// GPipe / OneFOneB are the microbatched steps under each
	// discipline, with their bubble fractions and peak stage memory.
	GPipe          time.Duration
	GPipeBubble    float64
	GPipeMem       int64
	OneFOneB       time.Duration
	OneFOneBBubble float64
	OneFOneBMem    int64
	Err            error
}

// Best names the winning discipline of a row.
func (r PipelineRow) Best() string {
	switch {
	case r.Err != nil:
		return "err"
	case r.OneFOneB < r.GPipe:
		return "1f1b"
	case r.GPipe < r.OneFOneB:
		return "gpipe"
	default:
		return "tie"
	}
}

// PipelineResult is the FIFO vs GPipe vs 1F1B comparison.
type PipelineResult struct {
	Microbatches int
	Rows         []PipelineRow
}

func (r PipelineResult) String() string {
	rows := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.Err != nil {
			rows = append(rows, fmt.Sprintf("%-24s error: %v", row.Variant, row.Err))
			continue
		}
		rows = append(rows, fmt.Sprintf("%-24s S=%d fifo=%-12s gpipe=%-12s (bubble %4.1f%%) 1f1b=%-12s (bubble %4.1f%%) best=%s",
			row.Variant, row.Stages, row.FIFO,
			row.GPipe, 100*row.GPipeBubble,
			row.OneFOneB, 100*row.OneFOneBBubble, row.Best()))
	}
	return table(fmt.Sprintf("Pipeline schedules: per-step time, FIFO vs GPipe vs 1F1B (M=%d)", r.Microbatches), rows)
}

// PipelineSchedules scores the microbatch disciplines across the model
// zoo: for each variant the contiguous-split DP picks the stages, then
// GPipe and 1F1B are both built and simulated over M microbatches and
// compared against the single-shot FIFO step through the same stages —
// the EXPERIMENTS.md "pipeline schedules" table.
func PipelineSchedules(ctx context.Context, cfg Config, microbatches int) (PipelineResult, error) {
	cfg = cfg.withDefaults()
	if microbatches <= 0 {
		microbatches = 4
	}
	variants := cfg.variants()
	outs, err := engine.Map(ctx, cfg.pool(), len(variants), func(ctx context.Context, i int) (PipelineRow, error) {
		v := variants[i]
		row := PipelineRow{Variant: v.Name}
		g, err := v.Build()
		if err != nil {
			row.Err = err
			return row, nil
		}
		score := func(kind pipeline.ScheduleKind) (*pipeline.Outcome, error) {
			return pipeline.Search(ctx, g, *cfg.Sys, pipeline.Options{
				Microbatches: microbatches,
				Schedule:     kind,
			})
		}
		gp, err := score(pipeline.ScheduleGPipe)
		if err != nil {
			row.Err = err
			return row, nil
		}
		ob, err := score(pipeline.Schedule1F1B)
		if err != nil {
			row.Err = err
			return row, nil
		}
		gi, oi := gp.Info(), ob.Info()
		row.Stages = gi.Stages
		row.FIFO = gi.FIFOStep
		row.GPipe, row.GPipeBubble, row.GPipeMem = gi.Makespan, gi.Bubble, gi.PeakMemory
		row.OneFOneB, row.OneFOneBBubble, row.OneFOneBMem = oi.Makespan, oi.Bubble, oi.PeakMemory
		return row, nil
	})
	if err != nil {
		return PipelineResult{}, err
	}
	out := PipelineResult{Microbatches: microbatches}
	for i, o := range outs {
		if o.Err != nil {
			return out, fmt.Errorf("%s: %w", variants[i].Name, o.Err)
		}
		out.Rows = append(out.Rows, o.Value)
	}
	return out, nil
}
