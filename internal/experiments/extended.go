package experiments

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/engine"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// ExtendedRow compares one variant across every strategy implemented in
// this repository — the paper's three (Expert, Baechi, Pesto) plus the
// TensorFlow single-GPU default and classic HEFT (§6's "ad-hoc
// heuristics"). Extension beyond the paper's tables.
type ExtendedRow struct {
	Variant   string
	SingleGPU StrategyResult
	Expert    StrategyResult
	HEFT      StrategyResult
	Baechi    StrategyResult
	Pesto     StrategyResult
}

// ExtendedResult is the all-strategies comparison.
type ExtendedResult struct {
	Rows []ExtendedRow
}

func (r ExtendedResult) String() string {
	rows := make([]string, 0, len(r.Rows))
	fmtOne := func(s StrategyResult) string {
		switch {
		case s.OOM:
			return "OOM"
		case s.Err != nil:
			return "err"
		default:
			return s.Makespan.String()
		}
	}
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%-24s single=%-12s expert=%-12s heft=%-12s baechi=%-12s pesto=%-12s",
			row.Variant, fmtOne(row.SingleGPU), fmtOne(row.Expert), fmtOne(row.HEFT), fmtOne(row.Baechi), fmtOne(row.Pesto)))
	}
	return table("Extended baselines: per-step training time across all strategies", rows)
}

// ExtendedBaselines runs the five-strategy comparison across variants.
// Variant rows are independent, so they run through the worker pool and
// are collected in variant order.
func ExtendedBaselines(ctx context.Context, cfg Config) (ExtendedResult, error) {
	cfg = cfg.withDefaults()
	var out ExtendedResult
	variants := cfg.variants()
	outs, err := engine.Map(ctx, cfg.pool(), len(variants), func(ctx context.Context, i int) (ExtendedRow, error) {
		v := variants[i]
		g, err := v.Build()
		if err != nil {
			return ExtendedRow{}, err
		}
		sys := *cfg.Sys
		row := ExtendedRow{Variant: v.Name}

		sp, serr := baselines.SingleGPU(g, sys)
		row.SingleGPU = runStrategy("SingleGPU", g, sys, sp, serr)
		ep, eerr := baselines.Expert(g, sys, expertMode(v))
		row.Expert = runStrategy("Expert", g, sys, ep, eerr)
		hp, herr := baselines.HEFT(g, sys)
		row.HEFT = runStrategy("HEFT", g, sys, hp, herr)
		bp, _, _, berr := baselines.BestBaechi(g, sys)
		row.Baechi = runStrategy("Baechi", g, sys, bp, berr)
		_, row.Pesto = pesto(ctx, cfg, g)
		if row.Pesto.Err != nil {
			return row, row.Pesto.Err
		}
		return row, nil
	})
	if err != nil {
		return out, err
	}
	for i, o := range outs {
		if o.Err != nil {
			return out, fmt.Errorf("%s: %w", variants[i].Name, o.Err)
		}
		out.Rows = append(out.Rows, o.Value)
	}
	return out, nil
}

// MultiGPUPoint is one GPU-count measurement of the multi-GPU
// extension.
type MultiGPUPoint struct {
	GPUs     int
	Pesto    time.Duration
	Speedup  float64 // vs the 2-GPU result
	PlaceDur time.Duration
}

// MultiGPUResult is the scaling study for the §3.2.2 extension.
type MultiGPUResult struct {
	Model  string
	Points []MultiGPUPoint
}

func (r MultiGPUResult) String() string {
	rows := make([]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("gpus=%d  pesto=%-12v speedup_vs_2=%.2fx placement=%v",
			p.GPUs, p.Pesto, p.Speedup, p.PlaceDur.Round(time.Millisecond)))
	}
	return table(fmt.Sprintf("Multi-GPU extension (§3.2.2) on %s", r.Model), rows)
}

// MultiGPU evaluates the k-GPU extension on the RNNLM workload for 2,
// 3 and 4 GPUs.
func MultiGPU(ctx context.Context, cfg Config) (MultiGPUResult, error) {
	cfg = cfg.withDefaults()
	v, err := rnnlmVariant(cfg)
	if err != nil {
		return MultiGPUResult{}, err
	}
	g, err := v.Build()
	if err != nil {
		return MultiGPUResult{}, err
	}
	out := MultiGPUResult{Model: v.Name}
	// The GPU counts place concurrently; the speedup column needs the
	// 2-GPU baseline, so it is derived after the ordered merge.
	counts := []int{2, 3, 4}
	outs, err := engine.Map(ctx, cfg.pool(), len(counts), func(ctx context.Context, i int) (MultiGPUPoint, error) {
		k := counts[i]
		sys := sim.NewSystem(k, 16<<30)
		res, err := placement.PlaceMultiGPU(ctx, g, sys, cfg.placeOpts())
		if err != nil {
			return MultiGPUPoint{}, err
		}
		r, err := sim.Run(g, sys, res.Plan)
		if err != nil {
			return MultiGPUPoint{}, err
		}
		return MultiGPUPoint{GPUs: k, Pesto: r.Makespan, PlaceDur: res.PlacementTime}, nil
	})
	if err != nil {
		return out, err
	}
	var base time.Duration
	for i, o := range outs {
		if o.Err != nil {
			return out, fmt.Errorf("%d gpus: %w", counts[i], o.Err)
		}
		pt := o.Value
		if pt.GPUs == 2 {
			base = pt.Pesto
		}
		if base > 0 {
			pt.Speedup = float64(base) / float64(pt.Pesto)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
