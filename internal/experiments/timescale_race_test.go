//go:build race

package experiments

// timeScale stretches wall-clock search budgets in tests when the race
// detector is on: instrumentation slows the LP solves by an order of
// magnitude, so an unscaled budget starves the branch and bound of the
// nodes it needs and quality assertions fail for timing, not logic.
const timeScale = 8
