// Package experiments regenerates every table and figure of the Pesto
// paper's evaluation (§5) on the simulated substrate: Figure 2 (toy
// example), Figure 4 (profiling), Table 1 (op-size distribution),
// Figure 5 (congestion-constraint ablation), Figure 7 (per-step
// training time across eleven variants), Table 2 (placement time),
// Table 3 (end-to-end training effort), Figure 8 (hardware sweeps), the
// §5.3 coarsening-sensitivity study, and the §5.4 simulator validation.
//
// Each experiment returns a structured result whose String method
// prints rows mirroring the paper's presentation. EXPERIMENTS.md
// records paper-reported vs measured values.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/models"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// Config shapes an experiment run.
type Config struct {
	// Sys is the machine model; zero value means the paper's testbed
	// (2× 16 GB GPUs, NVLink + PCIe).
	Sys *sim.System
	// Small switches the workload to the scaled-down variants so the
	// full suite runs in seconds (used by tests); the benchmarks run
	// with Small=false.
	Small bool
	// ILPTimeLimit bounds each Pesto ILP solve; zero means 5s (Small)
	// or 20s.
	ILPTimeLimit time.Duration
	// CoarsenTarget is Pesto's heuristic coarse size; zero defers to
	// placement.Options.withDefaults, the one place that rule lives.
	CoarsenTarget int
	// ProfileIters is the profiling iteration count; zero means 100
	// (20 when Small).
	ProfileIters int
	// Seed drives all stochastic components.
	Seed int64
	// Parallel is the worker count handed to the placement engine and
	// used to fan experiment rows out; zero means GOMAXPROCS. The fan
	// out merges in submission order, so it never reorders results —
	// but cells whose ILPTimeLimit binds truncate at a load-dependent
	// point, and concurrent cells contending for cores shift it. Use
	// Parallel=1 (or node budgets) for bit-reproducible tables.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Sys == nil {
		s := sim.NewSystem(2, 16<<30)
		c.Sys = &s
	}
	if c.ILPTimeLimit <= 0 {
		if c.Small {
			c.ILPTimeLimit = 5 * time.Second
		} else {
			c.ILPTimeLimit = 20 * time.Second
		}
	}
	if c.ProfileIters <= 0 {
		if c.Small {
			c.ProfileIters = 20
		} else {
			c.ProfileIters = 100
		}
	}
	return c
}

// variants returns the workload set for the config.
func (c Config) variants() []models.Variant {
	if c.Small {
		return models.SmallVariants()
	}
	return models.PaperVariants()
}

func (c Config) placeOpts() placement.Options {
	return placement.Options{
		CoarsenTarget:   c.CoarsenTarget,
		ILPTimeLimit:    c.ILPTimeLimit,
		ScheduleFromILP: true,
		Seed:            c.Seed,
		Parallel:        c.Parallel,
	}
}

// pool is the worker pool experiments fan independent cells through.
func (c Config) pool() *engine.Pool { return engine.New(c.Parallel) }

// expertMode maps a model family to its manual strategy.
func expertMode(v models.Variant) baselines.ExpertMode {
	if v.Branchy {
		return baselines.ExpertBranches
	}
	return baselines.ExpertLayered
}

// StrategyResult is one (strategy, variant) measurement.
type StrategyResult struct {
	Strategy string
	Makespan time.Duration
	OOM      bool
	Err      error
}

func (r StrategyResult) String() string {
	switch {
	case r.OOM:
		return fmt.Sprintf("%-12s OOM", r.Strategy)
	case r.Err != nil:
		return fmt.Sprintf("%-12s error: %v", r.Strategy, r.Err)
	default:
		return fmt.Sprintf("%-12s %v", r.Strategy, r.Makespan)
	}
}

// runStrategy simulates plan and classifies OOM separately.
func runStrategy(name string, g *graph.Graph, sys sim.System, plan sim.Plan, err error) StrategyResult {
	if err != nil {
		if errors.Is(err, sim.ErrOOM) {
			return StrategyResult{Strategy: name, OOM: true}
		}
		return StrategyResult{Strategy: name, Err: err}
	}
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		if errors.Is(err, sim.ErrOOM) {
			return StrategyResult{Strategy: name, OOM: true}
		}
		return StrategyResult{Strategy: name, Err: err}
	}
	return StrategyResult{Strategy: name, Makespan: res.Makespan}
}

// pesto runs the full Pesto pipeline and returns the plan, the
// placement time and the per-step simulated time.
func pesto(ctx context.Context, cfg Config, g *graph.Graph) (*placement.Result, StrategyResult) {
	res, err := placement.Place(ctx, g, *cfg.Sys, cfg.placeOpts())
	if err != nil {
		return nil, StrategyResult{Strategy: "Pesto", Err: err}
	}
	return res, runStrategy("Pesto", g, *cfg.Sys, res.Plan, nil)
}

// table renders rows with a header, aligned on tabs for readability.
func table(header string, rows []string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(header)))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
