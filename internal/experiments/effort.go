package experiments

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/models"
	"pesto/internal/sim"
)

// Table2Row compares placement times for one model. Learning-based
// columns carry the numbers the paper itself reports (their
// implementations are closed source; the paper makes the same indirect
// comparison — see §5.3).
type Table2Row struct {
	Model            string
	BaechiMeasured   time.Duration
	PestoMeasured    time.Duration
	RNNBasedReported time.Duration // from Table 2 of the paper
	PlacetoReported  time.Duration // from Table 2 of the paper
}

// Table2Result is the placement-time comparison.
type Table2Result struct {
	Rows []Table2Row
}

func (r Table2Result) String() string {
	rows := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf(
			"%-24s baechi=%-12v pesto=%-12v rnn-based(paper)=%-10v placeto(paper)=%v",
			row.Model, row.BaechiMeasured.Round(time.Millisecond), row.PestoMeasured.Round(time.Millisecond),
			row.RNNBasedReported, row.PlacetoReported))
	}
	return table("Table 2: placement time (measured here vs paper-reported for learning-based)", rows)
}

// paperTable2 holds the learning-based placement times the paper
// reports (minutes).
var paperTable2 = map[string][2]time.Duration{
	"NMT-2-1024":   {2859 * time.Minute, 788 * time.Minute},
	"NMT-4-1024":   {2714 * time.Minute, 4120 * time.Minute},
	"NASNet-6-148": {241 * time.Minute, 50 * time.Minute},
	// Small-mode stand-ins reuse the NMT/NASNet rows.
	"NMT-small":    {2859 * time.Minute, 788 * time.Minute},
	"NASNet-small": {241 * time.Minute, 50 * time.Minute},
}

// table2Models selects the models Table 2 covers.
func table2Models(cfg Config) []string {
	if cfg.Small {
		return []string{"NMT-small", "NASNet-small"}
	}
	return []string{"NMT-2-1024", "NMT-4-1024", "NASNet-6-148"}
}

// Table2 measures Baechi and Pesto placement times on this machine.
// Deliberately sequential: the rows time wall-clock placement, and
// running them concurrently would have them contend for cores and
// inflate each other's measurements.
func Table2(ctx context.Context, cfg Config) (Table2Result, error) {
	cfg = cfg.withDefaults()
	var out Table2Result
	for _, name := range table2Models(cfg) {
		v, err := models.FindVariant(name)
		if err != nil {
			return out, err
		}
		g, err := v.Build()
		if err != nil {
			return out, err
		}
		t0 := time.Now()
		if _, _, _, err := baselines.BestBaechi(g, *cfg.Sys); err != nil {
			return out, fmt.Errorf("%s: baechi: %w", name, err)
		}
		baechiTime := time.Since(t0)

		pres, pr := pesto(ctx, cfg, g)
		if pr.Err != nil {
			return out, fmt.Errorf("%s: pesto: %w", name, pr.Err)
		}
		reported := paperTable2[name]
		out.Rows = append(out.Rows, Table2Row{
			Model:            name,
			BaechiMeasured:   baechiTime,
			PestoMeasured:    pres.PlacementTime,
			RNNBasedReported: reported[0],
			PlacetoReported:  reported[1],
		})
	}
	return out, nil
}

// Table3Row is the end-to-end training effort of one model relative to
// Expert: (placement time + steps × per-step time) / (steps × Expert
// per-step time). Expert's placement time is zero by the paper's
// convention (the recipe is known a priori).
type Table3Row struct {
	Model        string
	Steps        int
	BaechiEffort float64
	PestoEffort  float64
}

// Table3Result is the training-effort comparison.
type Table3Result struct {
	Rows []Table3Row
}

func (r Table3Result) String() string {
	rows := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%-24s steps=%-8d baechi=%.2fx pesto=%.2fx",
			row.Model, row.Steps, row.BaechiEffort, row.PestoEffort))
	}
	return table("Table 3: training effort relative to Expert", rows)
}

// table3Steps mirrors the paper's step counts: 350K for NMT, 375K for
// NASNet.
func table3Steps(name string) int {
	if len(name) >= 3 && name[:3] == "NMT" {
		return 350000
	}
	return 375000
}

// Table3 computes training efforts from measured placement times and
// simulated per-step times. Sequential for the same reason as Table2:
// its placement-time column is a wall-clock measurement.
func Table3(ctx context.Context, cfg Config) (Table3Result, error) {
	cfg = cfg.withDefaults()
	var out Table3Result
	for _, name := range table2Models(cfg) {
		v, err := models.FindVariant(name)
		if err != nil {
			return out, err
		}
		g, err := v.Build()
		if err != nil {
			return out, err
		}
		sys := *cfg.Sys
		steps := table3Steps(name)

		eplan, eerr := baselines.Expert(g, sys, expertMode(v))
		expert := runStrategy("Expert", g, sys, eplan, eerr)
		if expert.OOM || expert.Err != nil {
			// The paper omits rows whose Expert baseline OOMs.
			continue
		}
		expertTotal := float64(expert.Makespan) * float64(steps)

		t0 := time.Now()
		bplan, _, _, berr := baselines.BestBaechi(g, sys)
		baechiPlace := time.Since(t0)
		baechi := runStrategy("Baechi", g, sys, bplan, berr)

		pres, pr := pesto(ctx, cfg, g)
		if pr.Err != nil {
			return out, fmt.Errorf("%s: pesto: %w", name, pr.Err)
		}

		row := Table3Row{Model: name, Steps: steps}
		if baechi.Err == nil && !baechi.OOM {
			row.BaechiEffort = (float64(baechiPlace) + float64(baechi.Makespan)*float64(steps)) / expertTotal
		}
		row.PestoEffort = (float64(pres.PlacementTime) + float64(pr.Makespan)*float64(steps)) / expertTotal
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// strategyOnSystem evaluates Expert and Pesto on a modified system,
// shared by the Figure 8 sweeps.
func strategyOnSystem(ctx context.Context, cfg Config, v models.Variant, sys sim.System) (expert, pestoMk time.Duration, err error) {
	g, err := v.Build()
	if err != nil {
		return 0, 0, err
	}
	eplan, eerr := baselines.Expert(g, sys, expertMode(v))
	er := runStrategy("Expert", g, sys, eplan, eerr)
	if er.Err != nil {
		return 0, 0, er.Err
	}
	sweep := cfg
	sweep.Sys = &sys
	_, pr := pesto(ctx, sweep, g)
	if pr.Err != nil {
		return 0, 0, pr.Err
	}
	if er.OOM {
		return 0, pr.Makespan, nil
	}
	return er.Makespan, pr.Makespan, nil
}
