package experiments

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/engine"
	"pesto/internal/graph"
	"pesto/internal/models"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// Figure5Result is the congestion-constraint ablation on the RNNLM
// model (the paper's Figure 5: disabling congestion constraints bunches
// transfers on one link and inflates the makespan ~3×).
type Figure5Result struct {
	Model            string
	With, Without    time.Duration
	WithQueue        time.Duration // total queueing delay across transfers
	WithoutQueue     time.Duration
	WithTransfers    int
	WithoutTransfers int
}

// Inflation is makespan(without)/makespan(with).
func (r Figure5Result) Inflation() float64 {
	if r.With <= 0 {
		return 0
	}
	return float64(r.Without) / float64(r.With)
}

func (r Figure5Result) String() string {
	return table(fmt.Sprintf("Figure 5: congestion constraints on %s", r.Model), []string{
		fmt.Sprintf("with congestion constraints     makespan=%-12v transfers=%-4d queueing=%v",
			r.With, r.WithTransfers, r.WithQueue),
		fmt.Sprintf("without congestion constraints  makespan=%-12v transfers=%-4d queueing=%v",
			r.Without, r.WithoutTransfers, r.WithoutQueue),
		fmt.Sprintf("makespan inflation without constraints: %.2fx", r.Inflation()),
	})
}

// Figure5 plans the RNNLM workload with and without congestion
// modelling and realizes both plans on the true FCFS-link system. With
// DisableCongestion the whole planner (ILP constraint group (7) and the
// simulator-guided heuristics alike) believes links are infinitely
// parallel — the assumption the paper calls out in most prior DAG
// schedulers — so its plan bunches transfers that then serialize at
// execution time.
func Figure5(ctx context.Context, cfg Config) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	g, name, err := figure5Workload(cfg)
	if err != nil {
		return Figure5Result{}, err
	}
	out := Figure5Result{Model: name}

	opts := cfg.placeOpts()
	with, err := placement.Place(ctx, g, *cfg.Sys, opts)
	if err != nil {
		return out, fmt.Errorf("with congestion: %w", err)
	}
	opts.DisableCongestion = true
	without, err := placement.Place(ctx, g, *cfg.Sys, opts)
	if err != nil {
		return out, fmt.Errorf("without congestion: %w", err)
	}
	rw, err := sim.Run(g, *cfg.Sys, with.Plan)
	if err != nil {
		return out, err
	}
	rwo, err := sim.Run(g, *cfg.Sys, without.Plan)
	if err != nil {
		return out, err
	}
	out.With, out.Without = rw.Makespan, rwo.Makespan
	out.WithTransfers, out.WithoutTransfers = len(rw.Transfers), len(rwo.Transfers)
	for _, t := range rw.Transfers {
		out.WithQueue += t.Queued()
	}
	for _, t := range rwo.Transfers {
		out.WithoutQueue += t.Queued()
	}
	return out, nil
}

// figure5Workload builds the congestion-study graph.
func figure5Workload(cfg Config) (*graph.Graph, string, error) {
	name := "RNNLM-2-2048"
	if cfg.Small {
		name = "RNNLM-small"
	}
	v, err := models.FindVariant(name)
	if err != nil {
		return nil, "", err
	}
	g, err := v.Build()
	return g, name, err
}

func rnnlmVariant(cfg Config) (models.Variant, error) {
	name := "RNNLM-2-2048"
	if cfg.Small {
		name = "RNNLM-small"
	}
	return models.FindVariant(name)
}

// Figure7Row is the per-step training time of one variant under the
// three strategies.
type Figure7Row struct {
	Variant        string
	Expert         StrategyResult
	Baechi         StrategyResult
	BaechiMethod   baselines.BaechiHeuristic
	Pesto          StrategyResult
	PestoPlaceTime time.Duration
	// ReductionVsBest is Pesto's relative reduction vs the best
	// feasible alternative (the number printed above Figure 7's bars).
	ReductionVsBest float64
}

// Figure7Result is the headline evaluation.
type Figure7Result struct {
	Rows []Figure7Row
}

// AverageReduction is Pesto's mean reduction vs the best alternative
// across variants where at least one alternative is feasible (paper:
// ~14% on average).
func (r Figure7Result) AverageReduction() float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Pesto.Err == nil && !row.Pesto.OOM && (row.Expert.Makespan > 0 || row.Baechi.Makespan > 0) {
			sum += row.ReductionVsBest
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (r Figure7Result) String() string {
	rows := make([]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		exp := "OOM"
		if !row.Expert.OOM && row.Expert.Err == nil {
			exp = row.Expert.Makespan.String()
		}
		bch := "OOM"
		if !row.Baechi.OOM && row.Baechi.Err == nil {
			bch = fmt.Sprintf("%v (%v)", row.Baechi.Makespan, row.BaechiMethod)
		}
		rows = append(rows, fmt.Sprintf("%-24s expert=%-12s baechi=%-22s pesto=%-12v reduction=%+.1f%%",
			row.Variant, exp, bch, row.Pesto.Makespan, 100*row.ReductionVsBest))
	}
	rows = append(rows, fmt.Sprintf("average reduction vs best alternative: %.1f%%", 100*r.AverageReduction()))
	return table("Figure 7: per-step training time", rows)
}

// Figure7 runs the headline comparison across all variants. Rows are
// independent (each builds its own graph and plans against a shared
// read-only system), so they run through the worker pool; the result
// slice keeps variant order regardless of completion order.
func Figure7(ctx context.Context, cfg Config) (Figure7Result, error) {
	cfg = cfg.withDefaults()
	variants := cfg.variants()
	outs, err := engine.Map(ctx, cfg.pool(), len(variants), func(ctx context.Context, i int) (Figure7Row, error) {
		return figure7Row(ctx, cfg, variants[i])
	})
	if err != nil {
		return Figure7Result{}, err
	}
	var out Figure7Result
	for i, o := range outs {
		if o.Err != nil {
			return out, fmt.Errorf("%s: %w", variants[i].Name, o.Err)
		}
		out.Rows = append(out.Rows, o.Value)
	}
	return out, nil
}

func figure7Row(ctx context.Context, cfg Config, v models.Variant) (Figure7Row, error) {
	g, err := v.Build()
	if err != nil {
		return Figure7Row{}, err
	}
	sys := *cfg.Sys
	row := Figure7Row{Variant: v.Name}

	eplan, eerr := baselines.Expert(g, sys, expertMode(v))
	row.Expert = runStrategy("Expert", g, sys, eplan, eerr)

	bplan, bh, _, berr := baselines.BestBaechi(g, sys)
	row.BaechiMethod = bh
	row.Baechi = runStrategy("Baechi", g, sys, bplan, berr)

	pres, pr := pesto(ctx, cfg, g)
	row.Pesto = pr
	if pres != nil {
		row.PestoPlaceTime = pres.PlacementTime
	}
	if pr.Err != nil {
		return row, pr.Err
	}

	best := time.Duration(0)
	for _, alt := range []StrategyResult{row.Expert, row.Baechi} {
		if alt.Err == nil && !alt.OOM && alt.Makespan > 0 && (best == 0 || alt.Makespan < best) {
			best = alt.Makespan
		}
	}
	if best > 0 {
		row.ReductionVsBest = 1 - float64(pr.Makespan)/float64(best)
	}
	return row, nil
}
