package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pesto/internal/fault"
	"pesto/internal/placement"
	"pesto/internal/sim"
)

// ResilienceRow is one fault scenario realized against the Pesto plan:
// the per-step time under injection, how the step ended, and — for
// whole-device failures — the replanned per-step time on the survivors
// and its delta over the healthy baseline.
type ResilienceRow struct {
	Scenario string
	Spec     string
	// Faulty is the per-step time under injection (zero when the step
	// aborted).
	Faulty time.Duration
	// Outcome classifies the step: "ok", "device-failed" or "oom".
	Outcome string
	// Recovered is the replanned per-step time after a device failure.
	Recovered time.Duration
	// Delta is Recovered minus the healthy baseline.
	Delta time.Duration
	// Migrated counts operations moved off the failed device.
	Migrated int
}

// ResilienceResult is the fault-injection and recovery study —
// robustness extension beyond the paper's tables.
type ResilienceResult struct {
	Model   string
	Healthy time.Duration
	Rows    []ResilienceRow
}

func (r ResilienceResult) String() string {
	rows := make([]string, 0, len(r.Rows)+1)
	rows = append(rows, fmt.Sprintf("%-22s healthy per-step %v", "baseline", r.Healthy))
	for _, row := range r.Rows {
		switch row.Outcome {
		case "device-failed":
			rows = append(rows, fmt.Sprintf("%-22s step aborted (%s); replanned per-step %v (delta %+v, %d ops migrated)",
				row.Scenario, row.Outcome, row.Recovered, row.Delta, row.Migrated))
		case "ok":
			rows = append(rows, fmt.Sprintf("%-22s per-step %v (%.2fx healthy)",
				row.Scenario, row.Faulty, float64(row.Faulty)/float64(r.Healthy)))
		default:
			rows = append(rows, fmt.Sprintf("%-22s step aborted (%s)", row.Scenario, row.Outcome))
		}
	}
	return table(fmt.Sprintf("Resilience: fault injection and recovery on %s", r.Model), rows)
}

// Resilience places one workload with Pesto, then replays the step
// under a ladder of fault scenarios — heavy-tailed stragglers, link
// degradation, shrinking GPU memory, whole-device failure — and, for
// the failure, replans onto the survivors and reports the recovery
// delta. All scenarios derive from Config.Seed and are deterministic.
func Resilience(ctx context.Context, cfg Config) (ResilienceResult, error) {
	cfg = cfg.withDefaults()
	v := cfg.variants()[0]
	out := ResilienceResult{Model: v.Name}
	g, err := v.Build()
	if err != nil {
		return out, err
	}
	sys := *cfg.Sys
	res, err := placement.Place(ctx, g, sys, cfg.placeOpts())
	if err != nil {
		return out, fmt.Errorf("%s: %w", v.Name, err)
	}
	healthy, err := sim.Run(g, sys, res.Plan)
	if err != nil {
		return out, fmt.Errorf("%s healthy step: %w", v.Name, err)
	}
	out.Healthy = healthy.Makespan

	// The paper's testbed indexes cpu:0 as device 0; GPUs follow.
	gpus := sys.GPUs()
	victim := gpus[len(gpus)-1]
	mid := healthy.Makespan / 2
	scenarios := []struct {
		name string
		spec string
	}{
		{"stragglers", fmt.Sprintf("seed=%d;straggler:p=0.1,mult=8", cfg.Seed)},
		{"link-degraded", fmt.Sprintf("seed=%d;link:*,scale=4,stall=%s@%s", cfg.Seed, mid/4, mid/4)},
		{"mem-shrink", fmt.Sprintf("seed=%d;mem:%d,frac=0.01@%s", cfg.Seed, victim, mid)},
		{"device-failure", fmt.Sprintf("seed=%d;fail:%d@%s", cfg.Seed, victim, mid)},
	}
	for _, sc := range scenarios {
		spec, err := fault.ParseSpec(sc.spec)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.name, err)
		}
		row := ResilienceRow{Scenario: sc.name, Spec: sc.spec}
		r, rerr := sim.RunInjected(g, sys, res.Plan, fault.New(spec))
		switch {
		case rerr == nil:
			row.Outcome = "ok"
			row.Faulty = r.Makespan
		case errors.Is(rerr, sim.ErrDeviceFailed):
			row.Outcome = "device-failed"
			rr, perr := placement.Replan(ctx, g, sys, res.Plan, victim, cfg.placeOpts())
			if perr != nil {
				return out, fmt.Errorf("%s replan: %w", sc.name, perr)
			}
			row.Recovered = rr.Makespan
			row.Delta = rr.Makespan - out.Healthy
			row.Migrated = rr.Migrated
		case errors.Is(rerr, sim.ErrOOM):
			row.Outcome = "oom"
		default:
			return out, fmt.Errorf("%s: %w", sc.name, rerr)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
