package experiments

import (
	"context"
	"fmt"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/comm"
	"pesto/internal/models"
	"pesto/internal/profile"
	"pesto/internal/sim"
)

// Figure2Result compares the three schedules of the paper's Figure 2 on
// the toy DAG: naive scheduling (critical-path-first, compute-
// oblivious), naive placement, and Pesto's jointly optimized plan.
type Figure2Result struct {
	NaiveScheduling time.Duration
	NaivePlacement  time.Duration
	Pesto           time.Duration
}

// Improvement is the reduction of Pesto over the naive schedule —
// the paper quotes 22–26% for this example.
func (r Figure2Result) Improvement() float64 {
	if r.NaiveScheduling <= 0 {
		return 0
	}
	return 1 - float64(r.Pesto)/float64(r.NaiveScheduling)
}

func (r Figure2Result) String() string {
	return table("Figure 2: toy example (makespans)", []string{
		fmt.Sprintf("naive scheduling (Fig 2b)   %v", r.NaiveScheduling),
		fmt.Sprintf("naive placement  (Fig 2c)   %v", r.NaivePlacement),
		fmt.Sprintf("optimal / Pesto  (Fig 2d)   %v", r.Pesto),
		fmt.Sprintf("improvement over naive      %.1f%%", 100*r.Improvement()),
	})
}

// Figure2 regenerates the toy example.
func Figure2(ctx context.Context, cfg Config) (Figure2Result, error) {
	cfg = cfg.withDefaults()
	g, err := models.ToyFigure2()
	if err != nil {
		return Figure2Result{}, err
	}
	sys := *cfg.Sys
	gpus := sys.GPUs()

	// Figure 2(b): a sensible placement (one light chain plus one heavy
	// stage per GPU) but compute-oblivious longest-path-first
	// scheduling, which runs the hop-deep light chains before the heavy
	// F/G pipeline.
	fig2b := make([]sim.DeviceID, g.NumNodes())
	for _, nd := range g.Nodes() {
		switch {
		case nd.Name == "A" || nd.Name == "F" || nd.Name[0] == 's':
			fig2b[nd.ID] = gpus[0]
		default: // d-chain, G, H
			fig2b[nd.ID] = gpus[1]
		}
	}
	cp, err := baselines.CriticalPathPlan(g, sim.Plan{Device: fig2b})
	if err != nil {
		return Figure2Result{}, err
	}
	rb, err := sim.Run(g, sys, cp)
	if err != nil {
		return Figure2Result{}, err
	}

	// Figure 2(c): naive placement — alternating ops across GPUs, which
	// cuts every chain edge and pays communication everywhere.
	naive := make([]sim.DeviceID, g.NumNodes())
	for i := range naive {
		naive[i] = gpus[i%2]
	}
	rc, err := sim.Run(g, sys, sim.Plan{Device: naive, Policy: sim.PolicyFIFO})
	if err != nil {
		return Figure2Result{}, err
	}

	_, pestoRes := pesto(ctx, cfg, g)
	if pestoRes.Err != nil {
		return Figure2Result{}, pestoRes.Err
	}
	return Figure2Result{
		NaiveScheduling: rb.Makespan,
		NaivePlacement:  rc.Makespan,
		Pesto:           pestoRes.Makespan,
	}, nil
}

// Figure4aRow summarizes the normalized-stddev CDF of one model.
type Figure4aRow struct {
	Model                string
	Ops                  int
	P50, P90, P99        float64
	IterationsPerProfile int
}

// Figure4aResult is the compute-time variability study.
type Figure4aResult struct {
	Rows []Figure4aRow
}

func (r Figure4aResult) String() string {
	rows := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%-24s ops=%-6d p50=%.3f p90=%.3f p99=%.3f",
			row.Model, row.Ops, row.P50, row.P90, row.P99))
	}
	return table("Figure 4a: normalized stddev of per-op compute times (CDF quantiles)", rows)
}

// Figure4a profiles every variant and reports quantiles of the
// normalized standard deviation — the paper's CDF shows essentially all
// mass below ~0.2.
func Figure4a(cfg Config) (Figure4aResult, error) {
	cfg = cfg.withDefaults()
	var out Figure4aResult
	for _, v := range cfg.variants() {
		g, err := v.Build()
		if err != nil {
			return out, fmt.Errorf("%s: %w", v.Name, err)
		}
		prof, err := profile.Compute(g, profile.Options{Iterations: cfg.ProfileIters, Seed: cfg.Seed})
		if err != nil {
			return out, fmt.Errorf("%s: %w", v.Name, err)
		}
		cdf := prof.StddevCDF(10 * time.Microsecond) // ignore very small ops, as the paper does
		out.Rows = append(out.Rows, Figure4aRow{
			Model: v.Name, Ops: len(cdf),
			P50: profile.Quantile(cdf, 0.5), P90: profile.Quantile(cdf, 0.9), P99: profile.Quantile(cdf, 0.99),
			IterationsPerProfile: cfg.ProfileIters,
		})
	}
	return out, nil
}

// Figure4bRow is one fitted link model.
type Figure4bRow struct {
	Link  comm.LinkType
	Beta0 time.Duration
	Beta1 float64 // ns per byte
	R2    float64
}

// Figure4bResult is the communication-model fit study.
type Figure4bResult struct {
	Rows []Figure4bRow
}

func (r Figure4bResult) String() string {
	rows := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%-8v beta0=%-10v beta1=%.4f ns/B  R²=%.3f",
			row.Link, row.Beta0, row.Beta1, row.R2))
	}
	return table("Figure 4b: linear communication-time fits (paper: R² 0.92–0.99)", rows)
}

// Figure4b profiles the three link types and fits the linear model.
func Figure4b(cfg Config) (Figure4bResult, error) {
	cfg = cfg.withDefaults()
	var out Figure4bResult
	for _, lt := range []comm.LinkType{comm.CPUToGPU, comm.GPUToCPU, comm.GPUToGPU} {
		prof, err := profile.Communication(*cfg.Sys, lt, profile.CommOptions{Seed: cfg.Seed})
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, Figure4bRow{
			Link: lt, Beta0: prof.Model.Beta0, Beta1: prof.Model.Beta1, R2: prof.Model.R2,
		})
	}
	return out, nil
}

// Table1Row is one model's op-duration histogram.
type Table1Row struct {
	Model                string
	Small, Medium, Large int // <10µs, 10–100µs, >100µs
}

// Table1Result is the op-size distribution study.
type Table1Result struct {
	Rows []Table1Row
}

func (r Table1Result) String() string {
	rows := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%-24s <10µs=%-6d 10–100µs=%-6d >100µs=%-6d",
			row.Model, row.Small, row.Medium, row.Large))
	}
	return table("Table 1: op execution-time buckets", rows)
}

// Table1 buckets per-op compute times for every variant.
func Table1(cfg Config) (Table1Result, error) {
	cfg = cfg.withDefaults()
	var out Table1Result
	for _, v := range cfg.variants() {
		g, err := v.Build()
		if err != nil {
			return out, fmt.Errorf("%s: %w", v.Name, err)
		}
		row := Table1Row{Model: v.Name}
		for _, nd := range g.Nodes() {
			switch {
			case nd.Cost < 10*time.Microsecond:
				row.Small++
			case nd.Cost <= 100*time.Microsecond:
				row.Medium++
			default:
				row.Large++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
