package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// smallCfg keeps every experiment in the seconds range.
func smallCfg() Config {
	return Config{Small: true, ILPTimeLimit: timeScale * 2 * time.Second, Seed: 1}
}

func TestFigure2ShapeHolds(t *testing.T) {
	res, err := Figure2(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if res.Pesto <= 0 || res.NaiveScheduling <= 0 || res.NaivePlacement <= 0 {
		t.Fatalf("missing makespans: %+v", res)
	}
	// Pesto must beat both naive strategies; the paper quotes 22–26%
	// over naive, so demand at least 10% here.
	if res.Improvement() < 0.10 {
		t.Errorf("improvement %.1f%% below 10%%:\n%s", 100*res.Improvement(), res)
	}
	if res.Pesto > res.NaivePlacement {
		t.Errorf("pesto worse than naive placement:\n%s", res)
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Error("String() missing header")
	}
}

func TestFigure4aLowVariability(t *testing.T) {
	res, err := Figure4a(smallCfg())
	if err != nil {
		t.Fatalf("Figure4a: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 families", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.P99 > 0.25 {
			t.Errorf("%s: p99 normalized stddev %.3f too high (Fig 4a regime)", row.Model, row.P99)
		}
		if row.Ops == 0 {
			t.Errorf("%s: no ops profiled", row.Model)
		}
	}
}

func TestFigure4bFitQuality(t *testing.T) {
	res, err := Figure4b(smallCfg())
	if err != nil {
		t.Fatalf("Figure4b: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 link types", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.R2 < 0.92 {
			t.Errorf("%v: R²=%.3f below the paper's 0.92 floor", row.Link, row.R2)
		}
		if row.Beta1 <= 0 {
			t.Errorf("%v: nonpositive slope", row.Link)
		}
	}
}

func TestTable1SmallOpsDominate(t *testing.T) {
	res, err := Table1(smallCfg())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	for _, row := range res.Rows {
		total := row.Small + row.Medium + row.Large
		if total == 0 || row.Small*2 < total {
			t.Errorf("%s: small bucket %d of %d does not dominate", row.Model, row.Small, total)
		}
	}
}

func TestFigure5CongestionConstraintsDoNotHurt(t *testing.T) {
	res, err := Figure5(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	// With constraints must be no worse than without (small tolerance
	// for heuristic noise on the scaled-down workload).
	if float64(res.With) > 1.1*float64(res.Without) {
		t.Errorf("congestion-aware plan worse:\n%s", res)
	}
}

func TestFigure7PestoCompetitive(t *testing.T) {
	res, err := Figure7(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Pesto.Err != nil || row.Pesto.OOM {
			t.Fatalf("%s: pesto failed: %+v", row.Variant, row.Pesto)
		}
		// Pesto should never be dramatically worse than the best
		// alternative.
		if row.ReductionVsBest < -0.15 {
			t.Errorf("%s: pesto %.1f%% worse than best alternative", row.Variant, -100*row.ReductionVsBest)
		}
	}
}

func TestTable2PestoFasterThanReportedLearning(t *testing.T) {
	res, err := Table2(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	for _, row := range res.Rows {
		if row.PestoMeasured <= 0 || row.BaechiMeasured <= 0 {
			t.Errorf("%s: missing measured times", row.Model)
		}
		// Pesto placement is minutes at worst; learning-based reported
		// times are hours to days.
		if row.PestoMeasured > row.RNNBasedReported || row.PestoMeasured > row.PlacetoReported {
			t.Errorf("%s: pesto (%v) slower than learning-based reported times", row.Model, row.PestoMeasured)
		}
	}
}

func TestTable3EffortComputed(t *testing.T) {
	res, err := Table3(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.PestoEffort <= 0 {
			t.Errorf("%s: missing pesto effort", row.Model)
		}
		// With hundreds of thousands of steps, placement time is
		// amortized: effort ≈ step-time ratio, so < 1.5 always.
		if row.PestoEffort > 1.5 {
			t.Errorf("%s: pesto effort %.2f implausibly high", row.Model, row.PestoEffort)
		}
	}
}

func TestFigure8aImprovementGrowsWithCompute(t *testing.T) {
	res, err := Figure8a(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Figure8a: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Faster compute shrinks makespans in absolute terms.
	if last.Pesto >= first.Pesto {
		t.Errorf("pesto step time did not shrink with compute speed: %v -> %v", first.Pesto, last.Pesto)
	}
}

func TestFigure8bSlowLinksHurtExpertMore(t *testing.T) {
	res, err := Figure8b(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("Figure8b: %v", err)
	}
	// At the slowest interconnect Pesto must be at least as good as
	// Expert (it can colocate everything; Expert cannot adapt).
	slowest := res.Points[0]
	if slowest.Factor != 0.1 {
		t.Fatalf("unexpected ordering: %+v", res.Points)
	}
	if !slowest.ExpertOOM && float64(slowest.Pesto) > 1.05*float64(slowest.Expert) {
		t.Errorf("pesto (%v) worse than expert (%v) on slow interconnect", slowest.Pesto, slowest.Expert)
	}
}

func TestCoarseningSensitivity(t *testing.T) {
	res, err := CoarseningSensitivity(context.Background(), smallCfg(), []int{32, 64})
	if err != nil {
		t.Fatalf("CoarseningSensitivity: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// Blob-weight caps can stop coarsening above the requested
		// target; it must still land in its vicinity.
		if p.CoarseSize > 2*p.Target {
			t.Errorf("target %d: coarse size %d too far above target", p.Target, p.CoarseSize)
		}
		if p.StepTime <= 0 || p.PlacementTime <= 0 {
			t.Errorf("target %d: missing measurements", p.Target)
		}
	}
}

func TestSimulatorValidationWithinPaperRange(t *testing.T) {
	res, err := SimulatorValidation(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("SimulatorValidation: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// Paper: 0.1–11.3% disagreement. Allow up to 15% here (the noise
	// model plus tie-breaking differences).
	if res.AverageError() > 0.15 {
		t.Errorf("average error %.1f%% too high:\n%s", 100*res.AverageError(), res)
	}
}

func TestExtendedBaselines(t *testing.T) {
	res, err := ExtendedBaselines(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("ExtendedBaselines: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Pesto.Err != nil || row.Pesto.OOM {
			t.Fatalf("%s: pesto failed", row.Variant)
		}
		// Pesto never loses badly to any implemented strategy.
		for _, alt := range []StrategyResult{row.SingleGPU, row.Expert, row.HEFT, row.Baechi} {
			if alt.Err == nil && !alt.OOM && alt.Makespan > 0 &&
				float64(row.Pesto.Makespan) > 1.15*float64(alt.Makespan) {
				t.Errorf("%s: pesto (%v) much worse than %s (%v)",
					row.Variant, row.Pesto.Makespan, alt.Strategy, alt.Makespan)
			}
		}
	}
	if !strings.Contains(res.String(), "Extended baselines") {
		t.Error("String() missing header")
	}
}

func TestMultiGPUScaling(t *testing.T) {
	res, err := MultiGPU(context.Background(), smallCfg())
	if err != nil {
		t.Fatalf("MultiGPU: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	four := res.Points[2]
	if four.GPUs != 4 {
		t.Fatalf("unexpected ordering: %+v", res.Points)
	}
	// More GPUs must not make things meaningfully worse.
	if four.Speedup < 0.9 {
		t.Errorf("4-GPU speedup %.2fx vs 2 GPUs", four.Speedup)
	}
}
