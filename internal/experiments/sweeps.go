package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"pesto/internal/engine"
	"pesto/internal/models"
	"pesto/internal/placement"
	"pesto/internal/runtime"
	"pesto/internal/sim"
)

// SweepPoint is one x-axis point of a Figure 8 sweep.
type SweepPoint struct {
	Factor      float64
	Expert      time.Duration
	Pesto       time.Duration
	ExpertOOM   bool
	Improvement float64 // Pesto's reduction over Expert
}

// Figure8aResult sweeps compute speed (paper: Pesto's advantage grows
// with faster compute because communication becomes the bottleneck).
type Figure8aResult struct {
	Model  string
	Points []SweepPoint
}

func (r Figure8aResult) String() string {
	rows := make([]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("compute %4.1fx  expert=%-12v pesto=%-12v improvement=%+5.1f%%",
			p.Factor, p.Expert, p.Pesto, 100*p.Improvement))
	}
	return table(fmt.Sprintf("Figure 8a: compute-speed sweep on %s", r.Model), rows)
}

// Figure8a evaluates Expert and Pesto at scaled compute speeds.
func Figure8a(ctx context.Context, cfg Config) (Figure8aResult, error) {
	cfg = cfg.withDefaults()
	v, err := nmtVariant(cfg)
	if err != nil {
		return Figure8aResult{}, err
	}
	out := Figure8aResult{Model: v.Name}
	pts, err := sweepPoints(ctx, cfg, v, []float64{1, 2, 4, 8}, cfg.Sys.WithComputeSpeed)
	if err != nil {
		return out, err
	}
	out.Points = pts
	return out, nil
}

// Figure8bResult sweeps interconnect speed on the NMT model (paper:
// Pesto adapts its placement; Expert is oblivious and suffers on slow
// links).
type Figure8bResult struct {
	Model  string
	Points []SweepPoint
}

func (r Figure8bResult) String() string {
	rows := make([]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("interconnect %5.2fx  expert=%-12v pesto=%-12v improvement=%+5.1f%%",
			p.Factor, p.Expert, p.Pesto, 100*p.Improvement))
	}
	return table(fmt.Sprintf("Figure 8b: interconnect-speed sweep on %s", r.Model), rows)
}

// Figure8b evaluates Expert and Pesto at scaled interconnect speeds
// (0.1× is PCIe-class, 1× is the NVLink baseline).
func Figure8b(ctx context.Context, cfg Config) (Figure8bResult, error) {
	cfg = cfg.withDefaults()
	v, err := nmtVariant(cfg)
	if err != nil {
		return Figure8bResult{}, err
	}
	out := Figure8bResult{Model: v.Name}
	pts, err := sweepPoints(ctx, cfg, v, []float64{0.1, 0.25, 0.5, 1, 2}, cfg.Sys.WithCommSpeed)
	if err != nil {
		return out, err
	}
	out.Points = pts
	return out, nil
}

// sweepPoints evaluates Expert and Pesto at each scaling factor
// concurrently. Each point scales the base system through scale (which
// copies; the base is never written) and plans independently, so the
// cells fan out through the pool and are collected in factor order.
func sweepPoints(ctx context.Context, cfg Config, v models.Variant, factors []float64, scale func(float64) sim.System) ([]SweepPoint, error) {
	outs, err := engine.Map(ctx, cfg.pool(), len(factors), func(ctx context.Context, i int) (SweepPoint, error) {
		f := factors[i]
		e, p, err := strategyOnSystem(ctx, cfg, v, scale(f))
		if err != nil {
			return SweepPoint{}, err
		}
		pt := SweepPoint{Factor: f, Expert: e, Pesto: p, ExpertOOM: e == 0}
		if e > 0 {
			pt.Improvement = 1 - float64(p)/float64(e)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]SweepPoint, 0, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return pts, fmt.Errorf("factor %g: %w", factors[i], o.Err)
		}
		pts = append(pts, o.Value)
	}
	return pts, nil
}

func nmtVariant(cfg Config) (models.Variant, error) {
	name := "NMT-2-1024"
	if cfg.Small {
		name = "NMT-small"
	}
	return models.FindVariant(name)
}

// CoarsenPoint is one coarsening-target measurement (§5.3's 200/240/280
// study, scaled to this repository's branch-and-bound budget).
type CoarsenPoint struct {
	Target        int
	CoarseSize    int
	PlacementTime time.Duration
	StepTime      time.Duration
	Gap           float64
}

// CoarseningResult is the §5.3 sensitivity study.
type CoarseningResult struct {
	Model  string
	Points []CoarsenPoint
}

func (r CoarseningResult) String() string {
	rows := make([]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("target=%-4d coarse=%-4d placement=%-12v step=%-12v gap=%.3f",
			p.Target, p.CoarseSize, p.PlacementTime.Round(time.Millisecond), p.StepTime, p.Gap))
	}
	return table(fmt.Sprintf("§5.3 coarsening sensitivity on %s", r.Model), rows)
}

// CoarseningSensitivity measures placement time and step time across
// coarsening targets.
func CoarseningSensitivity(ctx context.Context, cfg Config, targets []int) (CoarseningResult, error) {
	cfg = cfg.withDefaults()
	v, err := rnnlmVariant(cfg)
	if err != nil {
		return CoarseningResult{}, err
	}
	g, err := v.Build()
	if err != nil {
		return CoarseningResult{}, err
	}
	if len(targets) == 0 {
		targets = []int{32, 64, 96, 128}
	}
	out := CoarseningResult{Model: v.Name}
	// Each target plans the same (read-only) graph independently, so the
	// targets fan out through the pool and are collected in order.
	outs, err := engine.Map(ctx, cfg.pool(), len(targets), func(ctx context.Context, i int) (CoarsenPoint, error) {
		opts := cfg.placeOpts()
		opts.CoarsenTarget = targets[i]
		res, err := placement.Place(ctx, g, *cfg.Sys, opts)
		if err != nil {
			return CoarsenPoint{}, err
		}
		sr, err := sim.Run(g, *cfg.Sys, res.Plan)
		if err != nil {
			return CoarsenPoint{}, err
		}
		return CoarsenPoint{
			Target: targets[i], CoarseSize: res.CoarseSize,
			PlacementTime: res.PlacementTime, StepTime: sr.Makespan, Gap: res.Gap,
		}, nil
	})
	if err != nil {
		return out, err
	}
	for i, o := range outs {
		if o.Err != nil {
			return out, fmt.Errorf("target %d: %w", targets[i], o.Err)
		}
		out.Points = append(out.Points, o.Value)
	}
	return out, nil
}

// ValidationRow compares simulator and runtime-executor makespans for
// one variant (§5.4: the paper reports 0.1–11.3% disagreement, ~5%
// average).
type ValidationRow struct {
	Model         string
	Simulator     time.Duration
	Runtime       time.Duration
	RelativeError float64
}

// ValidationResult is the simulator-validation study.
type ValidationResult struct {
	Rows []ValidationRow
}

// AverageError is the mean |relative error|.
func (r ValidationResult) AverageError() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range r.Rows {
		sum += math.Abs(row.RelativeError)
	}
	return sum / float64(len(r.Rows))
}

func (r ValidationResult) String() string {
	rows := make([]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%-24s sim=%-12v runtime=%-12v error=%.2f%%",
			row.Model, row.Simulator, row.Runtime, 100*row.RelativeError))
	}
	rows = append(rows, fmt.Sprintf("average |error|: %.2f%% (paper: 0.1–11.3%%, avg ~5%%)", 100*r.AverageError()))
	return table("§5.4 simulator validation (simulator vs runtime executor)", rows)
}

// SimulatorValidation runs each variant's Pesto plan through both the
// discrete-event simulator and the goroutine runtime (with per-op
// noise) and reports the disagreement.
func SimulatorValidation(ctx context.Context, cfg Config) (ValidationResult, error) {
	cfg = cfg.withDefaults()
	var out ValidationResult
	variants := cfg.variants()
	outs, err := engine.Map(ctx, cfg.pool(), len(variants), func(ctx context.Context, i int) (ValidationRow, error) {
		v := variants[i]
		g, err := v.Build()
		if err != nil {
			return ValidationRow{}, err
		}
		res, err := placement.Place(ctx, g, *cfg.Sys, cfg.placeOpts())
		if err != nil {
			return ValidationRow{}, err
		}
		sr, err := sim.Run(g, *cfg.Sys, res.Plan)
		if err != nil {
			return ValidationRow{}, fmt.Errorf("simulate: %w", err)
		}
		rr, err := runtime.Execute(g, *cfg.Sys, res.Plan, runtime.Options{
			NoiseSigma: 0.03, Seed: cfg.Seed, Iteration: 1,
		})
		if err != nil {
			return ValidationRow{}, fmt.Errorf("runtime: %w", err)
		}
		return ValidationRow{
			Model: v.Name, Simulator: sr.Makespan, Runtime: rr.Makespan,
			RelativeError: float64(rr.Makespan-sr.Makespan) / float64(sr.Makespan),
		}, nil
	})
	if err != nil {
		return out, err
	}
	for i, o := range outs {
		if o.Err != nil {
			return out, fmt.Errorf("%s: %w", variants[i].Name, o.Err)
		}
		out.Rows = append(out.Rows, o.Value)
	}
	return out, nil
}
