//go:build !race

package experiments

// timeScale is 1 in normal builds; see timescale_race_test.go.
const timeScale = 1
