package incr

import (
	"sort"

	"pesto/internal/coarsen"
	"pesto/internal/graph"
)

// Diff is the structural difference between two versions of a graph,
// expressed in the edited graph's ID space. Dirty is the set of
// edited-graph operations whose placement-relevant context changed:
// new operations, operations with changed fields, operations with a
// changed incident edge, and the surviving neighbors of removed
// operations. Every other operation is guaranteed untouched — its
// node fields and its full incident edge multiset are equal in both
// versions — which is the contract incremental placement reuses.
type Diff struct {
	// Dirty lists the affected edited-graph IDs, sorted ascending.
	Dirty []graph.NodeID
	// Node- and edge-level tallies, for provenance and metrics.
	AddedNodes   int
	RemovedNodes int
	ChangedNodes int
	AddedEdges   int
	RemovedEdges int
	ChangedEdges int
}

// Empty reports whether the diff found no change at all.
func (d Diff) Empty() bool {
	return len(d.Dirty) == 0 && d.AddedNodes == 0 && d.RemovedNodes == 0 &&
		d.ChangedNodes == 0 && d.AddedEdges == 0 && d.RemovedEdges == 0 && d.ChangedEdges == 0
}

// Compare diffs base against edited under nodeMap, which maps each
// edited-graph ID to its base-graph ID (-1 for operations that did not
// exist in base). A nil nodeMap means positional identity: ID i is the
// same operation in both graphs. Entries out of base's range are
// treated as -1, and a base ID claimed by two edited IDs keeps only
// the first claim — so Compare accepts arbitrary (even adversarial)
// inputs without panicking, the FuzzGraphDiff contract.
//
// Compare(g, g, nil) is always empty.
func Compare(base, edited *graph.Graph, nodeMap []graph.NodeID) Diff {
	n := edited.NumNodes()
	nb := base.NumNodes()
	// Normalize the map: m[i] is a valid base ID or -1.
	m := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		switch {
		case nodeMap == nil:
			if i < nb {
				m[i] = graph.NodeID(i)
			} else {
				m[i] = -1
			}
		case i < len(nodeMap) && nodeMap[i] >= 0 && int(nodeMap[i]) < nb:
			m[i] = nodeMap[i]
		default:
			m[i] = -1
		}
	}
	// Invert, dropping duplicate claims on the same base ID.
	inv := make([]graph.NodeID, nb)
	for i := range inv {
		inv[i] = -1
	}
	for i := 0; i < n; i++ {
		if m[i] >= 0 {
			if inv[m[i]] >= 0 {
				m[i] = -1
				continue
			}
			inv[m[i]] = graph.NodeID(i)
		}
	}

	var d Diff
	dirty := make([]bool, n)
	mark := func(id graph.NodeID) {
		if id >= 0 && int(id) < n {
			dirty[id] = true
		}
	}

	for i := 0; i < n; i++ {
		if m[i] < 0 {
			d.AddedNodes++
			dirty[i] = true
			continue
		}
		en, _ := edited.Node(graph.NodeID(i))
		bn, _ := base.Node(m[i])
		if en.Kind != bn.Kind || en.Cost != bn.Cost || en.Memory != bn.Memory ||
			en.Coloc != bn.Coloc || en.Layer != bn.Layer || en.Branch != bn.Branch {
			d.ChangedNodes++
			dirty[i] = true
		}
	}

	// Forward pass: every edited edge must exist, byte-identical,
	// between the mapped endpoints in base.
	for _, e := range edited.Edges() {
		mu, mv := m[e.From], m[e.To]
		if mu < 0 || mv < 0 {
			d.AddedEdges++
			mark(e.From)
			mark(e.To)
			continue
		}
		be, ok := base.EdgeBetween(mu, mv)
		switch {
		case !ok:
			d.AddedEdges++
			mark(e.From)
			mark(e.To)
		case be.Bytes != e.Bytes:
			d.ChangedEdges++
			mark(e.From)
			mark(e.To)
		}
	}

	// Backward pass: base edges with no surviving counterpart dirty
	// their surviving endpoints; fully removed nodes dirty their
	// surviving neighbors.
	for _, e := range base.Edges() {
		iu, iv := inv[e.From], inv[e.To]
		if iu < 0 || iv < 0 {
			// At least one endpoint was removed; the edge is gone.
			// The surviving endpoint (if any) is dirtied by the
			// removed-node pass below.
			d.RemovedEdges++
			continue
		}
		if _, ok := edited.EdgeBetween(iu, iv); !ok {
			d.RemovedEdges++
			mark(iu)
			mark(iv)
		}
		// Byte changes were already counted in the forward pass.
	}
	for b := 0; b < nb; b++ {
		if inv[b] >= 0 {
			continue
		}
		d.RemovedNodes++
		for _, e := range base.Pred(graph.NodeID(b)) {
			mark(inv[e.From])
		}
		for _, e := range base.Succ(graph.NodeID(b)) {
			mark(inv[e.To])
		}
	}

	for i := 0; i < n; i++ {
		if dirty[i] {
			d.Dirty = append(d.Dirty, graph.NodeID(i))
		}
	}
	return d
}

// DirtyGroups computes the dirty-region closure over a coarsening of
// the edited graph: the coarse groups containing a dirty operation,
// plus — one step out — every coarse-graph neighbor of a dirty group
// that contains a critical-path operation. The closure rule follows
// Mayer et al.'s observation that solve effort only matters on or
// near the critical path: a clean group far from both the edit and
// the critical path keeps its prior device with no quality risk,
// while a critical-path group adjacent to the edit is re-solved even
// though its own content is unchanged (the edit may have shifted work
// it must absorb).
//
// The result is a sorted list of coarse node IDs of res.Coarse.
func DirtyGroups(g *graph.Graph, res *coarsen.Result, dirty []graph.NodeID) []graph.NodeID {
	dirtyGroup := make(map[graph.NodeID]bool)
	for _, op := range dirty {
		if op >= 0 && int(op) < len(res.CoarseOf) {
			dirtyGroup[res.CoarseOf[op]] = true
		}
	}
	// Critical-path groups of the edited graph. A cyclic graph cannot
	// reach here through Apply, but guard anyway: no closure is added
	// when the critical path is unavailable.
	if _, cp, err := g.CriticalPath(); err == nil {
		cpGroup := make(map[graph.NodeID]bool)
		for _, op := range cp {
			if op >= 0 && int(op) < len(res.CoarseOf) {
				cpGroup[res.CoarseOf[op]] = true
			}
		}
		adj := make(map[graph.NodeID]bool)
		for c := range dirtyGroup {
			for _, e := range res.Coarse.Succ(c) {
				if cpGroup[e.To] {
					adj[e.To] = true
				}
			}
			for _, e := range res.Coarse.Pred(c) {
				if cpGroup[e.From] {
					adj[e.From] = true
				}
			}
		}
		for c := range adj {
			dirtyGroup[c] = true
		}
	}
	out := make([]graph.NodeID, 0, len(dirtyGroup))
	for c := range dirtyGroup {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
