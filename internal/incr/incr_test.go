package incr

import (
	"errors"
	"testing"
	"time"

	"pesto/internal/coarsen"
	"pesto/internal/graph"
)

// chain builds a→b→c→... with unit costs and 1KiB edges.
func chain(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{Name: "op", Kind: graph.KindGPU, Cost: time.Millisecond, Memory: 1 << 20, Layer: i})
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1024); err != nil {
			panic(err)
		}
	}
	return g
}

func TestApplyInsert(t *testing.T) {
	g := chain(3)
	out, m, err := Apply(g, Edit{Kind: KindInsert, Preds: []int{0}, Succs: []int{2}, CostNs: 500, Memory: 64, Bytes: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", out.NumNodes())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[3] != -1 || m[0] != 0 || m[2] != 2 {
		t.Fatalf("node map = %v", m)
	}
	if _, ok := out.EdgeBetween(0, 3); !ok {
		t.Fatal("missing pred edge")
	}
	if e, ok := out.EdgeBetween(3, 2); !ok || e.Bytes != 9 {
		t.Fatalf("succ edge = %v %v", e, ok)
	}
	// g untouched.
	if g.NumNodes() != 3 {
		t.Fatal("input graph mutated")
	}

	// A succ that reaches a pred must be rejected.
	if _, _, err := Apply(g, Edit{Kind: KindInsert, Preds: []int{2}, Succs: []int{0}}); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("cycle insert err = %v", err)
	}
}

func TestApplyDelete(t *testing.T) {
	g := chain(3)
	out, m, err := Apply(g, Edit{Kind: KindDelete, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", out.NumNodes())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Precedence bridged: old 0 → old 2 (now 0 → 1).
	if _, ok := out.EdgeBetween(0, 1); !ok {
		t.Fatal("missing bridge edge")
	}
	if m[0] != 0 || m[1] != 2 {
		t.Fatalf("node map = %v", m)
	}
	if _, _, err := Apply(g, Edit{Kind: KindDelete, Node: 99}); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("unknown node err = %v", err)
	}
}

func TestApplyReweightAndRewire(t *testing.T) {
	g := chain(4)
	out, _, err := Apply(g, Edit{Kind: KindReweight, Node: 2, CostNs: int64(5 * time.Millisecond), Memory: 77})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := out.Node(2)
	if n.Cost != 5*time.Millisecond || n.Memory != 77 {
		t.Fatalf("reweight node = %+v", n)
	}

	out, _, err = Apply(g, Edit{Kind: KindReweightEdge, From: 1, To: 2, Bytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := out.EdgeBetween(1, 2); e.Bytes != 4096 {
		t.Fatalf("edge bytes = %d", e.Bytes)
	}

	// Rewire 2→3 to come from 0 instead.
	out, _, err = Apply(g, Edit{Kind: KindRewire, From: 2, To: 3, NewFrom: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := out.EdgeBetween(2, 3); ok {
		t.Fatal("old edge survived rewire")
	}
	if _, ok := out.EdgeBetween(0, 3); !ok {
		t.Fatal("new edge missing")
	}
	// Rewiring 0→1 to come from 3 would cycle (1 reaches 3).
	if _, _, err := Apply(g, Edit{Kind: KindRewire, From: 0, To: 1, NewFrom: 3}); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("cycle rewire err = %v", err)
	}
}

func TestApplyGrowLayer(t *testing.T) {
	g := chain(3)
	out, m, err := Apply(g, Edit{Kind: KindGrowLayer, Width: 4, CostNs: 100, Bytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 7 {
		t.Fatalf("nodes = %d, want 7", out.NumNodes())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 7; i++ {
		if m[i] != -1 {
			t.Fatalf("grown node %d mapped to %d", i, m[i])
		}
		if out.InDegree(graph.NodeID(i)) == 0 {
			t.Fatalf("grown node %d has no predecessor", i)
		}
	}
}

func TestApplyAllComposesMaps(t *testing.T) {
	g := chain(4)
	edits := []Edit{
		{Kind: KindDelete, Node: 1},                     // 0,2,3 survive as 0,1,2
		{Kind: KindInsert, Preds: []int{0}, CostNs: 10}, // new node 3
		{Kind: KindReweight, Node: 2, CostNs: int64(2 * time.Millisecond)},
	}
	out, m, err := ApplyAll(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 4 {
		t.Fatalf("nodes = %d", out.NumNodes())
	}
	want := []graph.NodeID{0, 2, 3, -1}
	for i, w := range want {
		if m[i] != w {
			t.Fatalf("m[%d] = %d, want %d (full %v)", i, m[i], w, m)
		}
	}
	// Determinism: same edits, same bytes.
	out2, _, err := ApplyAll(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint() != out2.Fingerprint() {
		t.Fatal("ApplyAll not deterministic")
	}
}

func TestCompareIdentity(t *testing.T) {
	g := chain(5)
	if d := Compare(g, g, nil); !d.Empty() {
		t.Fatalf("diff(g,g) = %+v", d)
	}
	idm := identityMap(g.NumNodes())
	if d := Compare(g, g.Clone(), idm); !d.Empty() {
		t.Fatal("diff(g, clone) not empty")
	}
}

func TestCompareDetectsChanges(t *testing.T) {
	g := chain(5)

	// Field change.
	e := g.Clone()
	e.SetCost(2, 9*time.Millisecond)
	d := Compare(g, e, nil)
	if d.ChangedNodes != 1 || len(d.Dirty) != 1 || d.Dirty[0] != 2 {
		t.Fatalf("cost diff = %+v", d)
	}

	// Edge byte change dirties both endpoints.
	e = g.Clone()
	e.SetEdgeBytes(1, 2, 9999)
	d = Compare(g, e, nil)
	if d.ChangedEdges != 1 || len(d.Dirty) != 2 {
		t.Fatalf("edge diff = %+v", d)
	}

	// Insert via Apply: new node and its neighbors dirty.
	e2, m, err := Apply(g, Edit{Kind: KindInsert, Preds: []int{0}, Succs: []int{4}, CostNs: 5})
	if err != nil {
		t.Fatal(err)
	}
	d = Compare(g, e2, m)
	if d.AddedNodes != 1 || d.AddedEdges != 2 {
		t.Fatalf("insert diff = %+v", d)
	}
	wantDirty := map[graph.NodeID]bool{0: true, 4: true, 5: true}
	for _, id := range d.Dirty {
		if !wantDirty[id] {
			t.Fatalf("unexpected dirty op %d in %v", id, d.Dirty)
		}
		delete(wantDirty, id)
	}
	if len(wantDirty) != 0 {
		t.Fatalf("missing dirty ops %v", wantDirty)
	}

	// Delete via Apply: surviving neighbors dirty.
	e3, m3, err := Apply(g, Edit{Kind: KindDelete, Node: 2})
	if err != nil {
		t.Fatal(err)
	}
	d = Compare(g, e3, m3)
	if d.RemovedNodes != 1 {
		t.Fatalf("delete diff = %+v", d)
	}
	// Old neighbors 1 and 3 survive as 1 and 2.
	got := map[graph.NodeID]bool{}
	for _, id := range d.Dirty {
		got[id] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("delete dirty = %v, want {1,2}", d.Dirty)
	}
}

func TestCompareArbitraryMapSafe(t *testing.T) {
	g := chain(3)
	e := chain(5)
	// Garbage maps must not panic and must classify unmapped as added.
	for _, m := range [][]graph.NodeID{
		nil,
		{99, -5, 0},
		{0, 0, 0, 0, 0}, // duplicate claims
		{2, 1, 0},
	} {
		d := Compare(g, e, m)
		if len(d.Dirty) == 0 && e.NumNodes() != g.NumNodes() {
			t.Fatalf("map %v: expected some dirt, got %+v", m, d)
		}
	}
}

func TestDirtyGroupsClosure(t *testing.T) {
	// A chain coarsens predictably; with a tiny target every node is
	// its own group when the graph is small, and the whole chain is
	// the critical path — so the neighbor closure must pull in the
	// groups adjacent to the dirty one.
	g := chain(6)
	res, err := coarsen.Coarsen(g, coarsen.Options{Target: 6})
	if err != nil {
		t.Fatal(err)
	}
	dirty := []graph.NodeID{3}
	groups := DirtyGroups(g, res, dirty)
	want := map[graph.NodeID]bool{res.CoarseOf[3]: true}
	// Chain → every node on the critical path, so both coarse
	// neighbors join the closure.
	for _, e := range res.Coarse.Succ(res.CoarseOf[3]) {
		want[e.To] = true
	}
	for _, e := range res.Coarse.Pred(res.CoarseOf[3]) {
		want[e.From] = true
	}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v, want keys %v", groups, want)
	}
	for _, c := range groups {
		if !want[c] {
			t.Fatalf("unexpected group %d in %v", c, groups)
		}
	}
}

func TestGroupFingerprintStableUnderRemoteEdits(t *testing.T) {
	// Editing one end of a chain must not move the sub-fingerprint of
	// a group at the other end, even though absolute fingerprints and
	// node IDs around it change.
	g := chain(8)
	members := []graph.NodeID{5, 6}
	before := coarsen.GroupFingerprint(g, members)

	e, m, err := Apply(g, Edit{Kind: KindDelete, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Members shift down by one under the delete's node map.
	var shifted []graph.NodeID
	for newID, oldID := range m {
		if oldID == 5 || oldID == 6 {
			shifted = append(shifted, graph.NodeID(newID))
		}
	}
	after := coarsen.GroupFingerprint(e, shifted)
	if before != after {
		t.Fatal("sub-fingerprint moved under a remote edit")
	}

	// And a local edit must move it.
	e2 := g.Clone()
	e2.SetCost(5, 42*time.Millisecond)
	if coarsen.GroupFingerprint(e2, members) == before {
		t.Fatal("sub-fingerprint blind to a member cost change")
	}
}

func TestParseEditsAndFingerprint(t *testing.T) {
	edits, err := ParseEdits([]byte(`[{"kind":"reweight","node":1,"costNs":100}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(edits) != 1 || edits[0].Kind != KindReweight {
		t.Fatalf("edits = %+v", edits)
	}
	if _, err := ParseEdits([]byte(`[{"kind":"x","bogus":1}]`)); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("unknown field err = %v", err)
	}
	if _, err := ParseEdits([]byte(`[] trailing`)); !errors.Is(err, ErrBadEdit) {
		t.Fatalf("trailing err = %v", err)
	}

	a := Fingerprint(edits)
	b := Fingerprint([]Edit{{Kind: KindReweight, Node: 1, CostNs: 100}})
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	c := Fingerprint([]Edit{{Kind: KindReweight, Node: 2, CostNs: 100}})
	if a == c {
		t.Fatal("fingerprint blind to node field")
	}
}
