// Package incr implements incremental placement support for evolving
// graphs: a typed edit language over computation DAGs, structural
// diffing between graph versions (with a node map that survives
// insertions and deletions), and the dirty-region closure that decides
// which coarsen groups a warm re-place must re-solve.
//
// The package sits below internal/placement (which consumes diffs to
// reuse a prior plan as a partial assignment) and below
// internal/service (which parses edit lists off the wire for
// POST /v1/place/delta). Everything here is deterministic: applying
// the same edit list to the same graph yields a byte-identical result.
package incr

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"time"

	"pesto/internal/graph"
)

// Edit kinds. An Edit is a single structural change to a graph; a
// slice of them is an edit trace, applied in order.
const (
	// KindInsert adds one GPU operation wired below Preds and above
	// Succs.
	KindInsert = "insert"
	// KindDelete removes one operation, bridging each of its
	// predecessors to each of its successors.
	KindDelete = "delete"
	// KindReweight overwrites an operation's compute cost and/or
	// memory footprint.
	KindReweight = "reweight"
	// KindReweightEdge overwrites the tensor size of one edge.
	KindReweightEdge = "reweight-edge"
	// KindRewire moves the edge (From, To) to originate at NewFrom.
	KindRewire = "rewire"
	// KindGrowLayer appends Width new GPU operations fed by the
	// current leaves of the graph — the "model grew a layer" edit.
	KindGrowLayer = "grow-layer"
)

// Edit is one structural change. Which fields are meaningful depends
// on Kind; Apply validates per kind and rejects anything else. The
// JSON form is the wire schema of POST /v1/place/delta.
type Edit struct {
	Kind string `json:"kind"`
	// Node names the target operation of delete and reweight.
	Node int `json:"node,omitempty"`
	// From and To name the target edge of reweight-edge and rewire.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// NewFrom is the new source of a rewired edge.
	NewFrom int `json:"newFrom,omitempty"`
	// Preds and Succs wire an inserted operation into the graph.
	Preds []int `json:"preds,omitempty"`
	Succs []int `json:"succs,omitempty"`
	// CostNs is the compute cost of inserted/grown operations, or the
	// new cost of a reweighted one (0 leaves cost unchanged).
	CostNs int64 `json:"costNs,omitempty"`
	// Memory is the footprint of inserted/grown operations, or the
	// new footprint of a reweighted one (0 leaves memory unchanged).
	Memory int64 `json:"memory,omitempty"`
	// Bytes is the tensor size on edges this edit creates or reweights.
	Bytes int64 `json:"bytes,omitempty"`
	// Width is the number of operations grow-layer appends.
	Width int `json:"width,omitempty"`
}

// Errors reported by edit application and parsing.
var (
	// ErrBadEdit marks an edit that cannot apply to the given graph:
	// unknown kind, missing target, or a change that would break the
	// DAG invariants (cycle, duplicate edge).
	ErrBadEdit = errors.New("bad edit")
)

// Caps keep fuzzed edit lists from allocating unboundedly.
const (
	maxEditFanout = 4096
	maxGrowWidth  = 1024
	maxEditCount  = 10000
)

// Apply applies one edit to g and returns the edited graph plus the
// node map from edited-graph IDs to g's IDs (-1 for operations the
// edit created). g is never modified. The returned graph is always
// structurally valid (acyclic, mirror-indexed) when err is nil.
func Apply(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	switch e.Kind {
	case KindInsert:
		return applyInsert(g, e)
	case KindDelete:
		return applyDelete(g, e)
	case KindReweight:
		return applyReweight(g, e)
	case KindReweightEdge:
		return applyReweightEdge(g, e)
	case KindRewire:
		return applyRewire(g, e)
	case KindGrowLayer:
		return applyGrowLayer(g, e)
	default:
		return nil, nil, fmt.Errorf("kind %q: %w", e.Kind, ErrBadEdit)
	}
}

// ApplyAll applies an edit trace in order and returns the final graph
// plus the composed node map (final-graph IDs to g's IDs, -1 for
// operations the trace created). An error on any step aborts the
// whole application.
func ApplyAll(g *graph.Graph, edits []Edit) (*graph.Graph, []graph.NodeID, error) {
	if len(edits) > maxEditCount {
		return nil, nil, fmt.Errorf("%d edits over cap %d: %w", len(edits), maxEditCount, ErrBadEdit)
	}
	cur := g
	acc := identityMap(g.NumNodes())
	for i, e := range edits {
		next, m, err := Apply(cur, e)
		if err != nil {
			return nil, nil, fmt.Errorf("edit %d: %w", i, err)
		}
		acc = composeMaps(acc, m)
		cur = next
	}
	return cur, acc, nil
}

// identityMap returns the node map of "no edit": every ID maps to
// itself.
func identityMap(n int) []graph.NodeID {
	m := make([]graph.NodeID, n)
	for i := range m {
		m[i] = graph.NodeID(i)
	}
	return m
}

// composeMaps chains prev (mid→base) with next (new→mid) into
// new→base. A -1 anywhere stays -1.
func composeMaps(prev, next []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(next))
	for i, mid := range next {
		if mid < 0 || int(mid) >= len(prev) {
			out[i] = -1
			continue
		}
		out[i] = prev[mid]
	}
	return out
}

func applyInsert(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	if len(e.Preds) > maxEditFanout || len(e.Succs) > maxEditFanout {
		return nil, nil, fmt.Errorf("insert fanout over cap %d: %w", maxEditFanout, ErrBadEdit)
	}
	preds, err := uniqueIDs(g, e.Preds)
	if err != nil {
		return nil, nil, fmt.Errorf("insert preds: %w", err)
	}
	succs, err := uniqueIDs(g, e.Succs)
	if err != nil {
		return nil, nil, fmt.Errorf("insert succs: %w", err)
	}
	inPreds := make(map[graph.NodeID]bool, len(preds))
	for _, p := range preds {
		inPreds[p] = true
	}
	for _, s := range succs {
		if inPreds[s] {
			return nil, nil, fmt.Errorf("insert: node %d is both pred and succ: %w", s, ErrBadEdit)
		}
	}
	// Adding pred→new→succ creates a cycle exactly when some succ
	// already reaches some pred.
	for _, s := range succs {
		for _, p := range preds {
			if g.Reachable(s, p) {
				return nil, nil, fmt.Errorf("insert: succ %d reaches pred %d: %w", s, p, ErrBadEdit)
			}
		}
	}
	out := g.Clone()
	layer := -1
	for _, p := range preds {
		if n, ok := out.Node(p); ok && n.Layer >= layer {
			layer = n.Layer + 1
		}
	}
	id := out.AddNode(graph.Node{
		Name:   fmt.Sprintf("incr/insert%d", g.NumNodes()),
		Kind:   graph.KindGPU,
		Cost:   time.Duration(max64(e.CostNs, 0)),
		Memory: max64(e.Memory, 0),
		Layer:  layer,
	})
	for _, p := range preds {
		if err := out.AddEdge(p, id, max64(e.Bytes, 0)); err != nil {
			return nil, nil, fmt.Errorf("insert: %v: %w", err, ErrBadEdit)
		}
	}
	for _, s := range succs {
		if err := out.AddEdge(id, s, max64(e.Bytes, 0)); err != nil {
			return nil, nil, fmt.Errorf("insert: %v: %w", err, ErrBadEdit)
		}
	}
	return out, identityMapPlusNew(g.NumNodes(), 1), nil
}

func applyDelete(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	d := graph.NodeID(e.Node)
	if _, ok := g.Node(d); !ok {
		return nil, nil, fmt.Errorf("delete node %d: %w", e.Node, ErrBadEdit)
	}
	if g.NumNodes() == 1 {
		return nil, nil, fmt.Errorf("delete: graph would become empty: %w", ErrBadEdit)
	}
	n := g.NumNodes()
	out := graph.New(n - 1)
	m := make([]graph.NodeID, 0, n-1)
	// oldToNew[old] is the surviving node's new ID, or -1 for d.
	oldToNew := make([]graph.NodeID, n)
	for old := 0; old < n; old++ {
		if graph.NodeID(old) == d {
			oldToNew[old] = -1
			continue
		}
		node, _ := g.Node(graph.NodeID(old))
		oldToNew[old] = out.AddNode(node)
		m = append(m, graph.NodeID(old))
	}
	for _, e := range g.Edges() {
		if e.From == d || e.To == d {
			continue
		}
		if err := out.AddEdge(oldToNew[e.From], oldToNew[e.To], e.Bytes); err != nil {
			return nil, nil, fmt.Errorf("delete: %v: %w", err, ErrBadEdit)
		}
	}
	// Bridge the hole so precedence through d survives: every pred of
	// d must still finish before every succ of d starts. The bridged
	// edge carries the tensor that formerly flowed out of d.
	for _, pe := range g.Pred(d) {
		for _, se := range g.Succ(d) {
			from, to := oldToNew[pe.From], oldToNew[se.To]
			if from == to {
				continue
			}
			if _, exists := out.EdgeBetween(from, to); exists {
				continue
			}
			if err := out.AddEdge(from, to, se.Bytes); err != nil {
				return nil, nil, fmt.Errorf("delete bridge: %v: %w", err, ErrBadEdit)
			}
		}
	}
	return out, m, nil
}

func applyReweight(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	id := graph.NodeID(e.Node)
	if _, ok := g.Node(id); !ok {
		return nil, nil, fmt.Errorf("reweight node %d: %w", e.Node, ErrBadEdit)
	}
	if e.CostNs <= 0 && e.Memory <= 0 {
		return nil, nil, fmt.Errorf("reweight: no change specified: %w", ErrBadEdit)
	}
	out := g.Clone()
	if e.CostNs > 0 {
		if err := out.SetCost(id, time.Duration(e.CostNs)); err != nil {
			return nil, nil, fmt.Errorf("reweight: %v: %w", err, ErrBadEdit)
		}
	}
	if e.Memory > 0 {
		if err := out.SetMemory(id, e.Memory); err != nil {
			return nil, nil, fmt.Errorf("reweight: %v: %w", err, ErrBadEdit)
		}
	}
	return out, identityMap(g.NumNodes()), nil
}

func applyReweightEdge(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	if e.Bytes < 0 {
		return nil, nil, fmt.Errorf("reweight-edge: negative bytes: %w", ErrBadEdit)
	}
	out := g.Clone()
	if err := out.SetEdgeBytes(graph.NodeID(e.From), graph.NodeID(e.To), e.Bytes); err != nil {
		return nil, nil, fmt.Errorf("reweight-edge: %v: %w", err, ErrBadEdit)
	}
	return out, identityMap(g.NumNodes()), nil
}

func applyRewire(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	from, to, nf := graph.NodeID(e.From), graph.NodeID(e.To), graph.NodeID(e.NewFrom)
	old, ok := g.EdgeBetween(from, to)
	if !ok {
		return nil, nil, fmt.Errorf("rewire: edge (%d,%d) not found: %w", e.From, e.To, ErrBadEdit)
	}
	if _, ok := g.Node(nf); !ok {
		return nil, nil, fmt.Errorf("rewire: new source %d: %w", e.NewFrom, ErrBadEdit)
	}
	if nf == to || nf == from {
		return nil, nil, fmt.Errorf("rewire: new source %d equals an endpoint: %w", e.NewFrom, ErrBadEdit)
	}
	if _, exists := g.EdgeBetween(nf, to); exists {
		return nil, nil, fmt.Errorf("rewire: edge (%d,%d) already exists: %w", e.NewFrom, e.To, ErrBadEdit)
	}
	// The new edge nf→to is safe exactly when to does not already
	// reach nf.
	if g.Reachable(to, nf) {
		return nil, nil, fmt.Errorf("rewire: %d reaches %d, edge would cycle: %w", e.To, e.NewFrom, ErrBadEdit)
	}
	out := g.Clone()
	if err := out.RemoveEdge(from, to); err != nil {
		return nil, nil, fmt.Errorf("rewire: %v: %w", err, ErrBadEdit)
	}
	b := old.Bytes
	if e.Bytes > 0 {
		b = e.Bytes
	}
	if err := out.AddEdge(nf, to, b); err != nil {
		return nil, nil, fmt.Errorf("rewire: %v: %w", err, ErrBadEdit)
	}
	return out, identityMap(g.NumNodes()), nil
}

func applyGrowLayer(g *graph.Graph, e Edit) (*graph.Graph, []graph.NodeID, error) {
	if e.Width <= 0 || e.Width > maxGrowWidth {
		return nil, nil, fmt.Errorf("grow-layer width %d out of (0,%d]: %w", e.Width, maxGrowWidth, ErrBadEdit)
	}
	leaves := g.Leaves()
	if len(leaves) == 0 {
		return nil, nil, fmt.Errorf("grow-layer: graph has no leaves: %w", ErrBadEdit)
	}
	out := g.Clone()
	layer := -1
	for _, l := range leaves {
		if n, ok := g.Node(l); ok && n.Layer >= layer {
			layer = n.Layer + 1
		}
	}
	for j := 0; j < e.Width; j++ {
		id := out.AddNode(graph.Node{
			Name:   fmt.Sprintf("incr/grow%d.%d", g.NumNodes(), j),
			Kind:   graph.KindGPU,
			Cost:   time.Duration(max64(e.CostNs, 0)),
			Memory: max64(e.Memory, 0),
			Layer:  layer,
			Branch: j,
		})
		// Deterministic wiring: each grown op reads from up to two
		// round-robin leaves of the pre-edit graph.
		p1 := leaves[j%len(leaves)]
		p2 := leaves[(j+1)%len(leaves)]
		if err := out.AddEdge(p1, id, max64(e.Bytes, 0)); err != nil {
			return nil, nil, fmt.Errorf("grow-layer: %v: %w", err, ErrBadEdit)
		}
		if p2 != p1 {
			if err := out.AddEdge(p2, id, max64(e.Bytes, 0)); err != nil {
				return nil, nil, fmt.Errorf("grow-layer: %v: %w", err, ErrBadEdit)
			}
		}
	}
	return out, identityMapPlusNew(g.NumNodes(), e.Width), nil
}

// identityMapPlusNew maps the first n IDs to themselves and the
// following added IDs to -1.
func identityMapPlusNew(n, added int) []graph.NodeID {
	m := make([]graph.NodeID, n+added)
	for i := 0; i < n; i++ {
		m[i] = graph.NodeID(i)
	}
	for i := n; i < n+added; i++ {
		m[i] = -1
	}
	return m
}

func uniqueIDs(g *graph.Graph, ids []int) ([]graph.NodeID, error) {
	seen := make(map[graph.NodeID]bool, len(ids))
	out := make([]graph.NodeID, 0, len(ids))
	for _, raw := range ids {
		id := graph.NodeID(raw)
		if _, ok := g.Node(id); !ok {
			return nil, fmt.Errorf("node %d: %w", raw, ErrBadEdit)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ParseEdits decodes a JSON edit list (the wire form of
// POST /v1/place/delta). Unknown fields, trailing data and oversized
// lists are errors; no input panics.
func ParseEdits(data []byte) ([]Edit, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var edits []Edit
	if err := dec.Decode(&edits); err != nil {
		return nil, fmt.Errorf("decode edits: %v: %w", err, ErrBadEdit)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after edit list: %w", ErrBadEdit)
	}
	if len(edits) > maxEditCount {
		return nil, fmt.Errorf("%d edits over cap %d: %w", len(edits), maxEditCount, ErrBadEdit)
	}
	return edits, nil
}

// editsFingerprintVersion versions the canonical edit serialization
// below, for the same reason graph fingerprints are versioned.
const editsFingerprintVersion = "pesto/edit-list/v1\n"

// Fingerprint returns a SHA-256 content address of an edit list. The
// service folds it (together with the base graph's fingerprint) into
// delta cache keys, so equal (base, edits) pairs replay byte-identical
// responses and a delta entry can never collide with a cold one.
func Fingerprint(edits []Edit) [32]byte {
	h := sha256.New()
	h.Write([]byte(editsFingerprintVersion))
	writeEditU64(h, uint64(len(edits)))
	for _, e := range edits {
		writeEditU64(h, uint64(len(e.Kind)))
		h.Write([]byte(e.Kind))
		writeEditU64(h, uint64(int64(e.Node)))
		writeEditU64(h, uint64(int64(e.From)))
		writeEditU64(h, uint64(int64(e.To)))
		writeEditU64(h, uint64(int64(e.NewFrom)))
		writeEditU64(h, uint64(len(e.Preds)))
		for _, p := range e.Preds {
			writeEditU64(h, uint64(int64(p)))
		}
		writeEditU64(h, uint64(len(e.Succs)))
		for _, s := range e.Succs {
			writeEditU64(h, uint64(int64(s)))
		}
		writeEditU64(h, uint64(e.CostNs))
		writeEditU64(h, uint64(e.Memory))
		writeEditU64(h, uint64(e.Bytes))
		writeEditU64(h, uint64(int64(e.Width)))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeEditU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}
