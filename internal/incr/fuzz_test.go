package incr

import (
	"testing"
	"time"

	"pesto/internal/graph"
)

// graphFromBytes deterministically decodes a small DAG from fuzz
// bytes: node count from the first byte, then per-node cost/memory
// nibbles, then edge candidates (from < to keeps it acyclic).
func graphFromBytes(data []byte) *graph.Graph {
	if len(data) == 0 {
		data = []byte{1}
	}
	n := int(data[0])%12 + 1
	g := graph.New(n)
	at := 1
	next := func() byte {
		if at >= len(data) {
			return 0
		}
		b := data[at]
		at++
		return b
	}
	for i := 0; i < n; i++ {
		b := next()
		g.AddNode(graph.Node{
			Name:   "f",
			Kind:   graph.KindGPU,
			Cost:   time.Duration(int(b%7)+1) * time.Millisecond,
			Memory: int64(b/7) << 16,
			Layer:  i / 3,
		})
	}
	for {
		a, b := next(), next()
		if a == 0 && b == 0 {
			break
		}
		from := int(a) % n
		to := int(b) % n
		if from >= to {
			continue
		}
		g.AddEdge(graph.NodeID(from), graph.NodeID(to), int64(a)*64) // dup edges rejected, fine
	}
	return g
}

// editFromBytes decodes one edit from fuzz bytes.
func editFromBytes(data []byte) Edit {
	get := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	kinds := []string{KindInsert, KindDelete, KindReweight, KindReweightEdge, KindRewire, KindGrowLayer, "bogus"}
	e := Edit{
		Kind:    kinds[int(get(0))%len(kinds)],
		Node:    int(get(1)) % 16,
		From:    int(get(2)) % 16,
		To:      int(get(3)) % 16,
		NewFrom: int(get(4)) % 16,
		CostNs:  int64(get(5)) * 1000,
		Memory:  int64(get(6)) << 10,
		Bytes:   int64(get(7)) * 32,
		Width:   int(get(8)) % 8,
	}
	if get(9)%2 == 0 {
		e.Preds = []int{int(get(10)) % 16, int(get(11)) % 16}
	}
	if get(9)%3 == 0 {
		e.Succs = []int{int(get(12)) % 16}
	}
	return e
}

// FuzzGraphDiff holds Compare to its contract on arbitrary graph
// pairs and node maps: it never panics, diff(g, g) is empty, and the
// dirty set covers every changed operation.
func FuzzGraphDiff(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 0, 1, 1, 2}, []byte{4, 9, 9, 9, 9, 0, 1, 0, 2}, []byte{0, 1, 2, 3})
	f.Add([]byte{1}, []byte{1}, []byte{})
	f.Add([]byte{8, 5, 5, 5, 5, 5, 5, 5, 5, 0, 3, 1, 4}, []byte{8, 5, 5, 5, 5, 5, 5, 5, 5, 0, 3}, []byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, a, b, mapBytes []byte) {
		base := graphFromBytes(a)
		edited := graphFromBytes(b)
		m := make([]graph.NodeID, 0, len(mapBytes))
		for _, mb := range mapBytes {
			m = append(m, graph.NodeID(int(mb)-2)) // exercises negatives and out-of-range
		}
		d := Compare(base, edited, m)

		// Self-diff is always empty, whatever else the inputs were.
		if sd := Compare(base, base, nil); !sd.Empty() {
			t.Fatalf("diff(g,g) = %+v", sd)
		}

		// Coverage: any mapped node whose fields differ, and any
		// unmapped node, must be in the dirty set.
		dirty := make(map[graph.NodeID]bool, len(d.Dirty))
		for _, id := range d.Dirty {
			dirty[id] = true
		}
		nb := base.NumNodes()
		for i := 0; i < edited.NumNodes(); i++ {
			var mo graph.NodeID = -1
			if i < len(m) && m[i] >= 0 && int(m[i]) < nb {
				mo = m[i]
			}
			if mo < 0 {
				if !dirty[graph.NodeID(i)] {
					t.Fatalf("new op %d not dirty", i)
				}
				continue
			}
			en, _ := edited.Node(graph.NodeID(i))
			bn, _ := base.Node(mo)
			changed := en.Kind != bn.Kind || en.Cost != bn.Cost || en.Memory != bn.Memory ||
				en.Coloc != bn.Coloc || en.Layer != bn.Layer || en.Branch != bn.Branch
			// A duplicate base claim demotes later claimants to "new",
			// which the loop above already covered via d's own logic;
			// only assert on field changes, which are unconditional.
			if changed && !dirty[graph.NodeID(i)] && claimedOnce(m, mo, i) {
				t.Fatalf("changed op %d not dirty (map %v)", i, m)
			}
		}
	})
}

// claimedOnce reports whether edited ID i is the first claimant of
// base ID mo under m — only then does Compare's field comparison
// apply to it.
func claimedOnce(m []graph.NodeID, mo graph.NodeID, i int) bool {
	for j := 0; j < i && j < len(m); j++ {
		if m[j] == mo {
			return false
		}
	}
	return true
}

// FuzzEditTrace holds Apply to its contract: any parsed edit either
// errors or yields a structurally valid DAG with a coherent node map,
// and never panics.
func FuzzEditTrace(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4}, []byte{0, 0, 0, 1, 0, 10, 1, 4, 2, 0, 0, 1, 2})
	f.Add([]byte{6, 9, 9, 9, 9, 9, 9, 0, 1, 1, 2, 2, 3}, []byte{1, 2})
	f.Add([]byte{3, 1, 1, 1, 0, 1, 1, 2}, []byte{5, 0, 0, 0, 0, 9, 9, 9, 3})
	f.Fuzz(func(t *testing.T, gb, eb []byte) {
		g := graphFromBytes(gb)
		if err := g.Validate(); err != nil {
			t.Fatalf("builder produced invalid graph: %v", err)
		}
		// Split eb into up to 4 edits to exercise ApplyAll composition.
		var edits []Edit
		for len(eb) > 0 && len(edits) < 4 {
			n := 13
			if n > len(eb) {
				n = len(eb)
			}
			edits = append(edits, editFromBytes(eb[:n]))
			eb = eb[n:]
		}
		out, m, err := ApplyAll(g, edits)
		if err != nil {
			return // rejected edit is fine
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("accepted edit broke the graph: %v", err)
		}
		if len(m) != out.NumNodes() {
			t.Fatalf("node map length %d, graph %d", len(m), out.NumNodes())
		}
		for i, mo := range m {
			if mo >= 0 {
				if _, ok := g.Node(mo); !ok {
					t.Fatalf("m[%d] = %d outside base graph", i, mo)
				}
			}
		}
		// The diff of an applied trace must never panic either, and
		// round-tripping the edits through JSON must be lossless.
		_ = Compare(g, out, m)
		_ = Fingerprint(edits)
	})
}
