package coarsen

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"

	"pesto/internal/graph"
)

// groupFingerprintVersion is folded into every group sub-fingerprint so
// the hash changes whenever the canonical serialization below does. A
// stale sub-fingerprint would silently poison incremental-plan reuse
// (a dirty group judged clean keeps its old devices), so the version
// bump is the only safe way to change what gets hashed.
const groupFingerprintVersion = "pesto/coarsen-groupfp/v1\n"

// GroupFingerprints returns one stable sub-fingerprint per coarse
// group, indexed by coarse node ID. g must be the original graph the
// Result was computed from.
//
// The fingerprints are the foundation of incremental placement
// (internal/incr): a group whose sub-fingerprint is unchanged between
// two versions of a graph may keep its prior device assignment. See
// GroupFingerprint for the stability guarantees.
func (r *Result) GroupFingerprints(g *graph.Graph) [][32]byte {
	out := make([][32]byte, len(r.Members))
	for c := range r.Members {
		out[c] = GroupFingerprint(g, r.Members[c])
	}
	return out
}

// GroupFingerprint hashes the placement-relevant content of one member
// set of g. The serialization is positional, never absolute: nodes are
// identified by their index within the (ordered) member slice, and
// boundary edges record only the member-side endpoint, a direction and
// the tensor size. Absolute NodeIDs are excluded on purpose — an edit
// elsewhere in the graph (which renumbers or adds nodes) leaves an
// untouched group's fingerprint intact, which is exactly the property
// incremental placement reuses.
//
// Two member sets share a fingerprint exactly when, position by
// position, the node fields (kind, cost, memory, colocation group,
// layer, branch) are equal, the internal edge sets (as positional
// pairs with bytes) are equal, and each member's multiset of boundary
// edges (direction + bytes) is equal. Members outside the graph are
// skipped deterministically, so the function never panics on
// malformed input (the fuzz targets hold it to that).
func GroupFingerprint(g *graph.Graph, members []graph.NodeID) [32]byte {
	h := sha256.New()
	h.Write([]byte(groupFingerprintVersion))
	pos := make(map[graph.NodeID]int, len(members))
	for i, id := range members {
		if _, ok := g.Node(id); ok {
			pos[id] = i
		}
	}
	writeGroupU64(h, uint64(len(members)))
	type internalEdge struct {
		from, to int
		bytes    int64
	}
	var internal []internalEdge
	for i, id := range members {
		n, ok := g.Node(id)
		if !ok {
			// Deterministic marker for an out-of-range member; the
			// group can never be judged clean against a real one.
			writeGroupU64(h, ^uint64(0))
			continue
		}
		writeGroupU64(h, uint64(i))
		writeGroupU64(h, uint64(n.Kind))
		writeGroupU64(h, uint64(n.Cost))
		writeGroupU64(h, uint64(n.Memory))
		writeGroupU64(h, uint64(len(n.Coloc)))
		h.Write([]byte(n.Coloc))
		writeGroupU64(h, uint64(int64(n.Layer)))
		writeGroupU64(h, uint64(int64(n.Branch)))
		// Boundary edges: per member, sorted multisets of (bytes) for
		// each direction. The far endpoint's identity is outside the
		// group's content by design.
		var in, out []int64
		for _, e := range g.Pred(id) {
			if _, inside := pos[e.From]; !inside {
				in = append(in, e.Bytes)
			}
		}
		for _, e := range g.Succ(id) {
			if to, inside := pos[e.To]; inside {
				internal = append(internal, internalEdge{from: i, to: to, bytes: e.Bytes})
			} else {
				out = append(out, e.Bytes)
			}
		}
		sort.Slice(in, func(a, b int) bool { return in[a] < in[b] })
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		writeGroupU64(h, uint64(len(in)))
		for _, b := range in {
			writeGroupU64(h, uint64(b))
		}
		writeGroupU64(h, uint64(len(out)))
		for _, b := range out {
			writeGroupU64(h, uint64(b))
		}
	}
	sort.Slice(internal, func(a, b int) bool {
		if internal[a].from != internal[b].from {
			return internal[a].from < internal[b].from
		}
		return internal[a].to < internal[b].to
	})
	writeGroupU64(h, uint64(len(internal)))
	for _, e := range internal {
		writeGroupU64(h, uint64(e.from))
		writeGroupU64(h, uint64(e.to))
		writeGroupU64(h, uint64(e.bytes))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeGroupU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}
