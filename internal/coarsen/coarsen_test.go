package coarsen

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pesto/internal/graph"
)

func gpuNode(name string, cost time.Duration) graph.Node {
	return graph.Node{Name: name, Kind: graph.KindGPU, Cost: cost, Memory: 100, Layer: -1}
}

func mustEdge(t *testing.T, g *graph.Graph, u, v graph.NodeID, bytes int64) {
	t.Helper()
	if err := g.AddEdge(u, v, bytes); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// figure6 builds the paper's Figure 6 graph: A→C, B→D plus the cross
// edges A→D and B→C that make simultaneous merging of (A,C) and (B,D)
// unsafe.
func figure6(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	a := g.AddNode(gpuNode("A", time.Microsecond))
	b := g.AddNode(gpuNode("B", time.Microsecond))
	c := g.AddNode(gpuNode("C", time.Microsecond))
	d := g.AddNode(gpuNode("D", time.Microsecond))
	mustEdge(t, g, a, c, 10)
	mustEdge(t, g, b, d, 10)
	mustEdge(t, g, a, d, 1)
	mustEdge(t, g, b, c, 1)
	return g
}

func TestFigure6NeverCreatesCycle(t *testing.T) {
	g := figure6(t)
	res, err := Coarsen(g, Options{Target: 2, MaxIters: 10})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if err := res.Coarse.Validate(); err != nil {
		t.Fatalf("coarse graph invalid: %v", err)
	}
	// At most one of (A,C), (B,D) may merge per batch; the result must
	// remain a DAG regardless of how far it got.
	if res.Coarse.NumNodes() >= g.NumNodes() {
		t.Fatalf("no merging happened: %d nodes", res.Coarse.NumNodes())
	}
}

func TestChainCollapses(t *testing.T) {
	// A pure chain of 32 nodes can always coarsen to 1 via chain
	// contraction.
	g := graph.New(32)
	prev := g.AddNode(gpuNode("n0", time.Microsecond))
	for i := 1; i < 32; i++ {
		cur := g.AddNode(gpuNode("n", time.Microsecond))
		mustEdge(t, g, prev, cur, 64)
		prev = cur
	}
	res, err := Coarsen(g, Options{Target: 1})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if res.Coarse.NumNodes() != 1 {
		t.Fatalf("chain coarsened to %d nodes, want 1", res.Coarse.NumNodes())
	}
	if len(res.Members[0]) != 32 {
		t.Fatalf("members = %d, want 32", len(res.Members[0]))
	}
	nd, _ := res.Coarse.Node(0)
	if nd.Cost != 32*time.Microsecond {
		t.Errorf("merged cost = %v, want 32µs", nd.Cost)
	}
	if nd.Memory != 32*100 {
		t.Errorf("merged memory = %d, want 3200", nd.Memory)
	}
}

func TestMembersTopologicallyOrdered(t *testing.T) {
	g := graph.New(6)
	ids := make([]graph.NodeID, 6)
	for i := range ids {
		ids[i] = g.AddNode(gpuNode("n", time.Microsecond))
	}
	// Chain 0->1->2->3->4->5.
	for i := 0; i < 5; i++ {
		mustEdge(t, g, ids[i], ids[i+1], 8)
	}
	res, err := Coarsen(g, Options{Target: 1})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	ms := res.Members[0]
	for i := 1; i < len(ms); i++ {
		if ms[i-1] >= ms[i] {
			t.Fatalf("members not in topological (here: ID) order: %v", ms)
		}
	}
}

func TestKindsNeverMix(t *testing.T) {
	g := graph.New(4)
	c1 := g.AddNode(graph.Node{Name: "cpu1", Kind: graph.KindCPU, Cost: time.Microsecond})
	g1 := g.AddNode(gpuNode("gpu1", time.Microsecond))
	g2 := g.AddNode(gpuNode("gpu2", time.Microsecond))
	c2 := g.AddNode(graph.Node{Name: "cpu2", Kind: graph.KindCPU, Cost: time.Microsecond})
	mustEdge(t, g, c1, g1, 10)
	mustEdge(t, g, g1, g2, 10)
	mustEdge(t, g, g2, c2, 10)
	res, err := Coarsen(g, Options{Target: 1})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	// CPU and GPU ops cannot merge, so at least 3 nodes must remain
	// (cpu1, merged gpu, cpu2) and every coarse node is kind-pure.
	if res.Coarse.NumNodes() != 3 {
		t.Fatalf("coarse nodes = %d, want 3", res.Coarse.NumNodes())
	}
	for c, ms := range res.Members {
		var kind graph.OpKind
		for i, m := range ms {
			orig, _ := g.Node(m)
			if i == 0 {
				kind = orig.Kind
			} else if orig.Kind != kind {
				t.Fatalf("coarse node %d mixes kinds", c)
			}
		}
	}
}

func TestColocGroupsRespected(t *testing.T) {
	g := graph.New(3)
	a := g.AddNode(graph.Node{Name: "a", Kind: graph.KindGPU, Coloc: "g1", Cost: time.Microsecond})
	b := g.AddNode(graph.Node{Name: "b", Kind: graph.KindGPU, Coloc: "g2", Cost: time.Microsecond})
	c := g.AddNode(graph.Node{Name: "c", Kind: graph.KindGPU, Cost: time.Microsecond})
	mustEdge(t, g, a, b, 10)
	mustEdge(t, g, b, c, 10)
	res, err := Coarsen(g, Options{Target: 1})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	// a (g1) and b (g2) must never merge; b and c may (c has no group).
	for _, ms := range res.Members {
		hasA, hasB := false, false
		for _, m := range ms {
			if m == a {
				hasA = true
			}
			if m == b {
				hasB = true
			}
		}
		if hasA && hasB {
			t.Fatal("nodes from different coloc groups merged")
		}
	}
}

func TestCoarseOfIsConsistent(t *testing.T) {
	g := figure6(t)
	res, err := Coarsen(g, Options{Target: 2})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if len(res.CoarseOf) != g.NumNodes() {
		t.Fatalf("CoarseOf length %d", len(res.CoarseOf))
	}
	for c, ms := range res.Members {
		for _, m := range ms {
			if res.CoarseOf[m] != graph.NodeID(c) {
				t.Fatalf("CoarseOf[%d] = %d, want %d", m, res.CoarseOf[m], c)
			}
		}
	}
}

func TestEdgePriorityPrefersBigTransfers(t *testing.T) {
	// Diamond with one huge edge: A -big-> B, A -small-> C, B,C -> D.
	// The first merge must contract the big edge (A,B).
	g := graph.New(4)
	a := g.AddNode(gpuNode("A", time.Microsecond))
	b := g.AddNode(gpuNode("B", time.Microsecond))
	c := g.AddNode(gpuNode("C", time.Microsecond))
	d := g.AddNode(gpuNode("D", time.Microsecond))
	mustEdge(t, g, a, b, 1<<20)
	mustEdge(t, g, a, c, 16)
	mustEdge(t, g, b, d, 16)
	mustEdge(t, g, c, d, 16)
	res, err := Coarsen(g, Options{Target: 3, MaxIters: 1})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if res.Coarse.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", res.Coarse.NumNodes())
	}
	if res.CoarseOf[a] != res.CoarseOf[b] {
		t.Fatalf("big edge (A,B) not contracted first: %v", res.CoarseOf)
	}
}

func TestTargetRespectedOnGrid(t *testing.T) {
	// An LSTM-like W×H grid graph.
	const w, h = 8, 8
	g := graph.New(w * h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for i := 0; i < w*h; i++ {
		g.AddNode(gpuNode("cell", time.Microsecond))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				mustEdge(t, g, id(x, y), id(x+1, y), 128)
			}
			if y+1 < h {
				mustEdge(t, g, id(x, y), id(x, y+1), 256)
			}
		}
	}
	res, err := Coarsen(g, Options{Target: 8})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if res.Coarse.NumNodes() > 8 {
		t.Fatalf("coarse nodes = %d, want <= 8", res.Coarse.NumNodes())
	}
	if err := res.Coarse.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Conservation: total cost and memory preserved.
	if res.Coarse.TotalCost() != g.TotalCost() {
		t.Errorf("cost not conserved: %v vs %v", res.Coarse.TotalCost(), g.TotalCost())
	}
	if res.Coarse.TotalMemory() != g.TotalMemory() {
		t.Errorf("memory not conserved")
	}
}

func randomDAG(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{
			Name: "op", Kind: graph.KindGPU,
			Cost:   time.Duration(1+rng.Intn(500)) * time.Microsecond,
			Memory: int64(rng.Intn(1 << 12)),
			Layer:  -1,
		})
	}
	m := 2 * n
	for k := 0; k < m; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j), int64(rng.Intn(1<<16)))
	}
	return g
}

// TestPropertyCoarseningInvariants checks on random DAGs that the coarse
// graph (a) is acyclic, (b) partitions the original nodes exactly,
// (c) conserves cost and memory, and (d) preserves precedence: for every
// original edge, either both endpoints share a coarse node or the coarse
// nodes are connected in the same direction.
func TestPropertyCoarseningInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		g := randomDAG(rng, n)
		target := 1 + rng.Intn(n)
		res, err := Coarsen(g, Options{Target: target})
		if err != nil {
			return false
		}
		if res.Coarse.Validate() != nil {
			return false
		}
		seen := make(map[graph.NodeID]bool)
		count := 0
		for _, ms := range res.Members {
			for _, m := range ms {
				if seen[m] {
					return false
				}
				seen[m] = true
				count++
			}
		}
		if count != n {
			return false
		}
		if res.Coarse.TotalCost() != g.TotalCost() || res.Coarse.TotalMemory() != g.TotalMemory() {
			return false
		}
		for _, e := range g.Edges() {
			cf, ct := res.CoarseOf[e.From], res.CoarseOf[e.To]
			if cf == ct {
				continue
			}
			if !res.Coarse.Reachable(cf, ct) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenRejectsCyclicInput(t *testing.T) {
	g := graph.New(2)
	a := g.AddNode(gpuNode("a", 0))
	b := g.AddNode(gpuNode("b", 0))
	mustEdge(t, g, a, b, 1)
	mustEdge(t, g, b, a, 1)
	if _, err := Coarsen(g, Options{Target: 1}); err == nil {
		t.Fatal("expected error for cyclic input")
	}
}

func TestBlobWeightCapsRespected(t *testing.T) {
	// A long chain of heavy ops: uncapped coarsening would collapse it
	// into one mega-blob; caps must keep every blob under the limit.
	g := graph.New(64)
	prev := g.AddNode(gpuNode("n0", time.Millisecond))
	for i := 1; i < 64; i++ {
		cur := g.AddNode(gpuNode("n", time.Millisecond))
		mustEdge(t, g, prev, cur, 1<<20)
		prev = cur
	}
	capCost := 8 * time.Millisecond
	res, err := Coarsen(g, Options{Target: 1, MaxNodeCost: capCost, MaxNodeMemory: 1 << 40})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if res.Coarse.NumNodes() < 8 {
		t.Fatalf("coarse size %d below the cap-implied floor of 8", res.Coarse.NumNodes())
	}
	for _, nd := range res.Coarse.Nodes() {
		if nd.Cost > capCost {
			t.Errorf("blob cost %v exceeds cap %v", nd.Cost, capCost)
		}
	}
}

func TestBlobMemoryCapRespected(t *testing.T) {
	g := graph.New(16)
	prev := g.AddNode(gpuNode("n0", time.Microsecond))
	for i := 1; i < 16; i++ {
		cur := g.AddNode(gpuNode("n", time.Microsecond))
		mustEdge(t, g, prev, cur, 64)
		prev = cur
	}
	// Every node carries 100 bytes (from gpuNode); cap blobs at 250.
	res, err := Coarsen(g, Options{Target: 1, MaxNodeCost: time.Hour, MaxNodeMemory: 250})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	for _, nd := range res.Coarse.Nodes() {
		if nd.Memory > 250 {
			t.Errorf("blob memory %d exceeds cap 250", nd.Memory)
		}
	}
}

func TestDefaultCapsScaleWithTarget(t *testing.T) {
	// With default caps (4x average at target), a fine target must
	// yield strictly more blobs than a very coarse one on the same
	// graph.
	g := graph.New(128)
	prev := g.AddNode(gpuNode("n0", 10*time.Microsecond))
	for i := 1; i < 128; i++ {
		cur := g.AddNode(gpuNode("n", 10*time.Microsecond))
		mustEdge(t, g, prev, cur, 64)
		prev = cur
	}
	coarse, err := Coarsen(g, Options{Target: 4})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Coarsen(g, Options{Target: 64})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Coarse.NumNodes() <= coarse.Coarse.NumNodes() {
		t.Errorf("fine target %d blobs vs coarse target %d blobs",
			fine.Coarse.NumNodes(), coarse.Coarse.NumNodes())
	}
}
