// Package coarsen shrinks DNN DAGs before ILP solving, implementing §3.3
// of the Pesto paper: cycle-free vertex merging with batch merges guided
// by vertex heights, prioritized by edge communication size so that
// heavily-communicating operations end up co-placed.
//
// Two merge mechanisms are combined per iteration:
//
//  1. A batch pass merging a matching of "height-tight" edges
//     (H(v) = H(u)+1). Batching many merges without re-testing the graph
//     is what makes coarsening O(|E| log |E|) per iteration; the safety
//     condition implemented here is the provable core of the paper's
//     Theorem 3.5: a matching of height-tight edges is cycle-free as
//     long as no height-tight edge (u_i, v_j) connects two distinct
//     selected pairs — exactly the interaction that creates the Figure 6
//     cycle.
//  2. A sequential fallback applying Theorem 3.2 exactly (merge (u,v)
//     when it is the unique u→v path), used when the batch pass stalls
//     before the target size, e.g. on long chains with height gaps.
//
// Acyclicity is re-verified after every iteration as defense in depth.
package coarsen

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pesto/internal/graph"
)

// Options controls coarsening.
type Options struct {
	// Target is the desired number of coarse vertices; coarsening stops
	// at or below it (the paper uses ~200 for its models). Zero means
	// 200.
	Target int
	// MaxIters bounds the number of coarsening iterations; zero means
	// 100.
	MaxIters int
	// SeqBudget caps the number of sequential Theorem 3.2 merges per
	// stalled iteration (each costs O(|V|+|E|)); zero means 256.
	SeqBudget int
	// MaxNodeCost caps the total compute time a coarse vertex may
	// accumulate ("maintaining parallelizability", §3.3 — unbounded
	// merging collapses residual spines into serial mega-blobs). Zero
	// means 4× the average blob cost at the target size.
	MaxNodeCost time.Duration
	// MaxNodeMemory caps a coarse vertex's memory footprint so no blob
	// becomes unplaceable on a single device. Zero means 4× the
	// average blob footprint at the target size.
	MaxNodeMemory int64
}

func (o Options) withDefaults() Options {
	if o.Target <= 0 {
		o.Target = 200
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.SeqBudget <= 0 {
		o.SeqBudget = 256
	}
	return o
}

// Result maps a coarsened graph back to the original operations.
type Result struct {
	// Coarse is the merged graph. Node costs and memory are the sums
	// over members; edge bytes aggregate all crossing original edges.
	Coarse *graph.Graph
	// Members lists, for each coarse node ID, the original node IDs it
	// contains, in a topological order of the original graph (the
	// order Pesto schedules them sequentially on the chosen device).
	Members [][]graph.NodeID
	// CoarseOf maps each original node ID to its coarse node ID.
	CoarseOf []graph.NodeID
	// Iterations is the number of coarsening iterations performed.
	Iterations int
}

// ErrNotCoarsenable is returned when no merge is possible but the graph
// is still larger than the requested target.
var ErrNotCoarsenable = errors.New("no feasible merge found above target size")

// Coarsen reduces g to at most opts.Target vertices. The input graph is
// not modified.
func Coarsen(g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("coarsen input: %w", err)
	}
	if opts.MaxNodeCost <= 0 {
		opts.MaxNodeCost = 4 * g.TotalCost() / time.Duration(opts.Target)
	}
	if opts.MaxNodeMemory <= 0 {
		opts.MaxNodeMemory = 4 * g.TotalMemory() / int64(opts.Target)
	}
	cur := g.Clone()
	members := make([][]graph.NodeID, cur.NumNodes())
	for i := range members {
		members[i] = []graph.NodeID{graph.NodeID(i)}
	}

	iterations := 0
	for cur.NumNodes() > opts.Target && iterations < opts.MaxIters {
		iterations++
		pairs, err := batchMatching(cur, cur.NumNodes()-opts.Target, opts)
		if err != nil {
			return nil, err
		}
		if len(pairs) == 0 {
			pairs, err = sequentialMatching(cur, minInt(opts.SeqBudget, cur.NumNodes()-opts.Target), opts)
			if err != nil {
				return nil, err
			}
		}
		if len(pairs) == 0 {
			// Last resort: exact one-at-a-time Theorem 3.2 merges with
			// per-merge unique-path re-verification. O(|V|+|E|) per
			// merge, but only reached on small, dense residual graphs.
			before := cur.NumNodes()
			cur, members, err = exactMerges(cur, members, minInt(opts.SeqBudget, cur.NumNodes()-opts.Target), opts)
			if err != nil {
				return nil, err
			}
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("coarsening produced invalid graph (iteration %d): %w", iterations, err)
			}
			if cur.NumNodes() == before {
				break // nothing mergeable at all
			}
			continue
		}
		cur, members, err = applyMerges(cur, members, pairs)
		if err != nil {
			return nil, err
		}
		if err := cur.Validate(); err != nil {
			return nil, fmt.Errorf("coarsening produced invalid graph (iteration %d): %w", iterations, err)
		}
	}
	if cur.NumNodes() > opts.Target {
		// Not an error by Corollary 3.6 in theory, but our eligibility
		// rules are conservative; report how far we got.
		// The caller decides whether the achieved size is acceptable.
		_ = ErrNotCoarsenable
	}

	coarseOf := make([]graph.NodeID, g.NumNodes())
	for c, ms := range members {
		for _, orig := range ms {
			coarseOf[orig] = graph.NodeID(c)
		}
	}
	// Order members topologically within the original graph.
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("order members: %w", err)
	}
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for _, ms := range members {
		sort.Slice(ms, func(a, b int) bool { return pos[ms[a]] < pos[ms[b]] })
	}
	return &Result{Coarse: cur, Members: members, CoarseOf: coarseOf, Iterations: iterations}, nil
}

// mergePair identifies an edge (U, V) selected for contraction.
type mergePair struct {
	U, V graph.NodeID
}

// mergeable reports whether two nodes may share a coarse vertex: device
// kinds must match, colocation groups must be equal or one empty, and
// the combined blob must stay under the parallelizability caps.
func mergeable(a, b graph.Node, opts Options) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Coloc != "" && b.Coloc != "" && a.Coloc != b.Coloc {
		return false
	}
	if a.Kind == graph.KindGPU {
		if a.Cost+b.Cost > opts.MaxNodeCost {
			return false
		}
		if a.Memory+b.Memory > opts.MaxNodeMemory {
			return false
		}
	}
	return true
}

// batchMatching selects up to maxPairs height-tight edges forming a
// matching with no tight cross-pair (u_i, v_j) edges. Candidates are
// considered in decreasing communication size, the paper's priority for
// preserving parallelizability while hiding big transfers.
func batchMatching(g *graph.Graph, maxPairs int, opts Options) ([]mergePair, error) {
	if maxPairs <= 0 {
		return nil, nil
	}
	h, err := g.Heights()
	if err != nil {
		return nil, err
	}
	edges := g.Edges()
	var cand []graph.Edge
	for _, e := range edges {
		if h[e.To] != h[e.From]+1 {
			continue
		}
		nu, _ := g.Node(e.From)
		nv, _ := g.Node(e.To)
		if !mergeable(nu, nv, opts) {
			continue
		}
		cand = append(cand, e)
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Bytes != cand[j].Bytes {
			return cand[i].Bytes > cand[j].Bytes
		}
		if cand[i].From != cand[j].From {
			return cand[i].From < cand[j].From
		}
		return cand[i].To < cand[j].To
	})

	matched := make([]bool, g.NumNodes())
	selU := make([]bool, g.NumNodes()) // node is the U of a selected pair
	selV := make([]bool, g.NumNodes()) // node is the V of a selected pair
	var pairs []mergePair
	for _, e := range cand {
		if len(pairs) >= maxPairs {
			break
		}
		u, v := e.From, e.To
		if matched[u] || matched[v] {
			continue
		}
		// Interaction check (the Figure 6 guard): selecting (u,v) must
		// not coexist with a selected pair (u',v') such that a
		// height-tight edge (u, v') or (u', v) exists.
		conflict := false
		for _, oe := range g.Succ(u) {
			if oe.To != v && selV[oe.To] && h[oe.To] == h[u]+1 {
				conflict = true
				break
			}
		}
		if !conflict {
			for _, ie := range g.Pred(v) {
				if ie.From != u && selU[ie.From] && h[v] == h[ie.From]+1 {
					conflict = true
					break
				}
			}
		}
		if conflict {
			continue
		}
		pairs = append(pairs, mergePair{U: u, V: v})
		matched[u], matched[v] = true, true
		selU[u], selV[v] = true, true
	}
	return pairs, nil
}

// sequentialMatching falls back to exact Theorem 3.2 merges: it scans
// edges by decreasing size and selects a matching of unique-path edges.
// Because pairs are vertex-disjoint and each satisfies the unique-path
// condition on the same graph, merging them one at a time is safe only
// individually; to stay safe in a batch we additionally require the
// stronger structural guard |succ(u)| == 1 && |prec(v)| == 1 (chain
// contraction), for which disjoint simultaneous merges provably cannot
// interact: any post-merge cycle would need a second path into v or out
// of u.
func sequentialMatching(g *graph.Graph, budget int, opts Options) ([]mergePair, error) {
	if budget <= 0 {
		return nil, nil
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Bytes != edges[j].Bytes {
			return edges[i].Bytes > edges[j].Bytes
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	matched := make([]bool, g.NumNodes())
	var pairs []mergePair
	for _, e := range edges {
		if len(pairs) >= budget {
			break
		}
		u, v := e.From, e.To
		if matched[u] || matched[v] {
			continue
		}
		if g.OutDegree(u) != 1 || g.InDegree(v) != 1 {
			continue
		}
		nu, _ := g.Node(u)
		nv, _ := g.Node(v)
		if !mergeable(nu, nv, opts) {
			continue
		}
		pairs = append(pairs, mergePair{U: u, V: v})
		matched[u], matched[v] = true, true
	}
	return pairs, nil
}

// exactMerges contracts up to budget edges one at a time, re-verifying
// the exact Theorem 3.2 unique-path condition against the current graph
// before every merge. Edges are tried in decreasing communication size.
func exactMerges(g *graph.Graph, members [][]graph.NodeID, budget int, opts Options) (*graph.Graph, [][]graph.NodeID, error) {
	for done := 0; done < budget; done++ {
		edges := g.Edges()
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Bytes != edges[j].Bytes {
				return edges[i].Bytes > edges[j].Bytes
			}
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		merged := false
		for _, e := range edges {
			nu, _ := g.Node(e.From)
			nv, _ := g.Node(e.To)
			if !mergeable(nu, nv, opts) {
				continue
			}
			unique, err := g.UniquePath(e.From, e.To)
			if err != nil {
				return nil, nil, err
			}
			if !unique {
				continue
			}
			g, members, err = applyMerges(g, members, []mergePair{{U: e.From, V: e.To}})
			if err != nil {
				return nil, nil, err
			}
			merged = true
			break
		}
		if !merged {
			break
		}
	}
	return g, members, nil
}

// applyMerges contracts every selected pair at once, producing the new
// graph and the updated member lists (still holding original node IDs).
func applyMerges(g *graph.Graph, members [][]graph.NodeID, pairs []mergePair) (*graph.Graph, [][]graph.NodeID, error) {
	n := g.NumNodes()
	rep := make([]graph.NodeID, n) // representative (U) per node
	for i := range rep {
		rep[i] = graph.NodeID(i)
	}
	for _, p := range pairs {
		rep[p.V] = p.U
	}
	// Assign dense new IDs to representatives.
	newID := make([]graph.NodeID, n)
	for i := range newID {
		newID[i] = -1
	}
	next := graph.NodeID(0)
	for i := 0; i < n; i++ {
		if rep[i] == graph.NodeID(i) {
			newID[i] = next
			next++
		}
	}
	for i := 0; i < n; i++ {
		if rep[i] != graph.NodeID(i) {
			newID[i] = newID[rep[i]]
		}
	}

	out := graph.New(int(next))
	newMembers := make([][]graph.NodeID, next)
	// Create nodes in new-ID order; merge attributes.
	type agg struct {
		node graph.Node
		ok   bool
	}
	aggs := make([]agg, next)
	for i := 0; i < n; i++ {
		nd, _ := g.Node(graph.NodeID(i))
		id := newID[i]
		if !aggs[id].ok {
			nd.Name = mergedName(nd.Name)
			aggs[id] = agg{node: nd, ok: true}
		} else {
			a := &aggs[id].node
			a.Cost += nd.Cost
			a.Memory += nd.Memory
			if a.Coloc == "" {
				a.Coloc = nd.Coloc
			}
			if nd.Layer >= 0 && (a.Layer < 0 || nd.Layer < a.Layer) {
				a.Layer = nd.Layer
			}
		}
		newMembers[id] = append(newMembers[id], members[i]...)
	}
	for id := graph.NodeID(0); id < next; id++ {
		got := out.AddNode(aggs[id].node)
		if got != id {
			return nil, nil, fmt.Errorf("internal: id mismatch %d vs %d", got, id)
		}
	}
	// Aggregate edges, skipping intra-supernode edges.
	type key struct{ f, t graph.NodeID }
	bytesBetween := make(map[key]int64)
	for _, e := range g.Edges() {
		f, t := newID[e.From], newID[e.To]
		if f == t {
			continue
		}
		bytesBetween[key{f, t}] += e.Bytes
	}
	keys := make([]key, 0, len(bytesBetween))
	for k := range bytesBetween {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].f != keys[j].f {
			return keys[i].f < keys[j].f
		}
		return keys[i].t < keys[j].t
	})
	for _, k := range keys {
		if err := out.AddEdge(k.f, k.t, bytesBetween[k]); err != nil {
			return nil, nil, fmt.Errorf("rebuild edges: %w", err)
		}
	}
	return out, newMembers, nil
}

func mergedName(base string) string { return base }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
