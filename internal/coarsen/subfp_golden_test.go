package coarsen

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pesto/internal/models"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGroupFingerprintsGolden pins the per-group sub-fingerprints of
// the example models. The fingerprints are the clean/dirty judgment of
// incremental placement — a silent change to the canonical
// serialization would let an edited group be judged clean and keep
// stale devices — so any intentional change to what gets hashed must
// bump groupFingerprintVersion and regenerate this file with
// `go test ./internal/coarsen/ -run Golden -update`, and the diff
// reviewed like code.
func TestGroupFingerprintsGolden(t *testing.T) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# per-group sub-fingerprints, %s", groupFingerprintVersion)
	variants := models.SmallVariants()
	for _, v := range variants {
		g, err := v.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", v.Name, err)
		}
		res, err := Coarsen(g, Options{Target: 64})
		if err != nil {
			t.Fatalf("%s: coarsen: %v", v.Name, err)
		}
		fps := res.GroupFingerprints(g)
		fmt.Fprintf(&buf, "%s nodes=%d groups=%d\n", v.Name, g.NumNodes(), len(fps))
		for c, fp := range fps {
			fmt.Fprintf(&buf, "  %3d %s\n", c, hex.EncodeToString(fp[:]))
		}
	}
	golden := filepath.Join("testdata", "groupfp.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("group sub-fingerprints changed; if the serialization change is intentional, bump groupFingerprintVersion and run with -update.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
