package verify

import (
	"fmt"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ErrPipeline marks violations of the pipeline-specific invariants:
// malformed stage/microbatch coordinates, edges that jump stages,
// schedule orders that break the claimed discipline (GPipe fill-drain,
// 1F1B in-flight bound), stage/device inconsistency, per-stage memory
// over capacity, or cross-stage overlap within a microbatch. It wraps
// ErrInvariant, so errors.Is(err, ErrInvariant) still matches.
var ErrPipeline = fmt.Errorf("pipeline invariant: %w", ErrInvariant)

// CheckPipeline verifies a microbatched pipeline execution end to end:
// it first re-proves every generic invariant via Check (affinity,
// colocation, precedence, device and link exclusivity, accounting),
// then re-derives the pipeline-shaped invariants from the metadata and
// the realized timeline:
//
//   - metadata well-formedness (PipelineMeta.Validate);
//   - stage contiguity at the edge level: forward edges go to the same
//     or the next stage, backward edges to the same or the previous
//     stage, a forward task hands off to the backward pass only within
//     its own (stage, microbatch), and no edge crosses microbatches;
//   - stage/device consistency: every task of stage s runs on
//     StageDevice[s], and host-side source tasks on the CPU;
//   - per-device schedule discipline: forward tasks of a stage run in
//     ascending microbatch order; GPipe runs every forward before the
//     first backward and drains backwards LIFO; 1F1B retires backwards
//     in ascending order and keeps at most min(S-s, M) microbatches
//     in flight on stage s;
//   - per-stage peak memory (weights + live activations, re-derived
//     from the realized timeline by PipelineAccounting) within the
//     stage device's capacity;
//   - per-microbatch cross-stage ordering: microbatch m's forward
//     tasks run in ascending stage order without overlap, its backward
//     tasks in descending stage order, and each stage's backward task
//     starts only after its forward task finished.
//
// All pipeline-specific rejections wrap ErrPipeline (generic ones keep
// their own sentinels from Check). On success it returns the realized
// simulation result, so callers can score the verified execution.
func CheckPipeline(g *graph.Graph, sys sim.System, plan sim.Plan, meta sim.PipelineMeta) (sim.Result, error) {
	res, err := Check(g, sys, plan)
	if err != nil {
		return sim.Result{}, err
	}
	n := g.NumNodes()
	if verr := meta.Validate(n); verr != nil {
		return sim.Result{}, fmt.Errorf("%w: %v", ErrPipeline, verr)
	}
	if verr := checkPipelineEdges(g, meta); verr != nil {
		return sim.Result{}, verr
	}
	if verr := checkPipelineDevices(g, sys, plan, meta); verr != nil {
		return sim.Result{}, verr
	}
	if verr := checkPipelineOrders(plan, meta); verr != nil {
		return sim.Result{}, verr
	}
	if verr := checkPipelineMemory(g, sys, meta, res); verr != nil {
		return sim.Result{}, verr
	}
	if verr := checkPipelineTimeline(g, meta, res); verr != nil {
		return sim.Result{}, verr
	}
	return res, nil
}

// checkPipelineEdges proves stage contiguity from the dependency
// structure alone: data only ever flows forward one stage at a time,
// gradients backward one stage at a time, and nothing crosses
// microbatches.
func checkPipelineEdges(g *graph.Graph, meta sim.PipelineMeta) error {
	for _, e := range g.Edges() {
		su, sv := meta.StageOf[e.From], meta.StageOf[e.To]
		mu, mv := meta.MBOf[e.From], meta.MBOf[e.To]
		bu, bv := meta.Backward[e.From], meta.Backward[e.To]
		if mu != mv {
			return fmt.Errorf("%w: edge %d->%d crosses microbatches %d->%d", ErrPipeline, e.From, e.To, mu, mv)
		}
		switch {
		case su < 0: // host-side source feeds a forward task
			if bv {
				return fmt.Errorf("%w: source %d feeds backward task %d", ErrPipeline, e.From, e.To)
			}
		case sv < 0:
			return fmt.Errorf("%w: edge %d->%d enters a source task", ErrPipeline, e.From, e.To)
		case !bu && !bv: // forward -> forward: same or next stage
			if sv != su && sv != su+1 {
				return fmt.Errorf("%w: forward edge %d->%d jumps stage %d->%d", ErrPipeline, e.From, e.To, su, sv)
			}
		case bu && bv: // backward -> backward: same or previous stage
			if sv != su && sv != su-1 {
				return fmt.Errorf("%w: backward edge %d->%d jumps stage %d->%d", ErrPipeline, e.From, e.To, su, sv)
			}
		case !bu && bv: // forward hands off to its own backward
			if sv != su {
				return fmt.Errorf("%w: forward->backward edge %d->%d crosses stages %d->%d", ErrPipeline, e.From, e.To, su, sv)
			}
		default: // backward -> forward never happens within a step
			return fmt.Errorf("%w: backward task %d feeds forward task %d", ErrPipeline, e.From, e.To)
		}
	}
	return nil
}

// checkPipelineDevices proves the stage/device mapping: a stage is one
// device, and every task of the stage is on it.
func checkPipelineDevices(g *graph.Graph, sys sim.System, plan sim.Plan, meta sim.PipelineMeta) error {
	cpu := sys.CPUID()
	for _, nd := range g.Nodes() {
		s := meta.StageOf[nd.ID]
		if s < 0 {
			if plan.Device[nd.ID] != cpu {
				return fmt.Errorf("%w: source task %d on device %d, want CPU", ErrPipeline, nd.ID, plan.Device[nd.ID])
			}
			continue
		}
		if plan.Device[nd.ID] != meta.StageDevice[s] {
			return fmt.Errorf("%w: task %d of stage %d on device %d, want %d",
				ErrPipeline, nd.ID, s, plan.Device[nd.ID], meta.StageDevice[s])
		}
	}
	return nil
}

// checkPipelineOrders proves the per-device schedule against the
// claimed discipline, using only the explicit order vectors.
func checkPipelineOrders(plan sim.Plan, meta sim.PipelineMeta) error {
	if plan.Order == nil {
		return fmt.Errorf("%w: pipeline plan carries no explicit per-device order", ErrPipeline)
	}
	S, M := meta.Stages, meta.Microbatches
	for s := 0; s < S; s++ {
		d := meta.StageDevice[s]
		if int(d) >= len(plan.Order) {
			return fmt.Errorf("%w: stage %d device %d has no order lane", ErrPipeline, s, d)
		}
		lastF, lastB := -1, -1
		inFlight, sawBackward := 0, false
		for _, id := range plan.Order[d] {
			if meta.StageOf[id] != s {
				return fmt.Errorf("%w: task %d in stage %d's lane belongs to stage %d", ErrPipeline, id, s, meta.StageOf[id])
			}
			mb := meta.MBOf[id]
			if !meta.Backward[id] {
				if mb <= lastF {
					return fmt.Errorf("%w: stage %d forwards out of order (microbatch %d after %d)", ErrPipeline, s, mb, lastF)
				}
				lastF = mb
				inFlight++
				if meta.Discipline == "gpipe" && sawBackward {
					return fmt.Errorf("%w: stage %d schedules forward %d after a backward (gpipe is fill-drain)", ErrPipeline, s, mb)
				}
				if meta.Discipline == "1f1b" {
					bound := S - s
					if bound > M {
						bound = M
					}
					if inFlight > bound {
						return fmt.Errorf("%w: stage %d holds %d microbatches in flight, 1f1b bound is %d", ErrPipeline, s, inFlight, bound)
					}
				}
				continue
			}
			sawBackward = true
			inFlight--
			switch meta.Discipline {
			case "gpipe": // drain is LIFO: M-1, M-2, ...
				want := M - 1
				if lastB >= 0 {
					want = lastB - 1
				}
				if mb != want {
					return fmt.Errorf("%w: stage %d gpipe drain out of order (backward %d, want %d)", ErrPipeline, s, mb, want)
				}
			case "1f1b": // backwards retire in arrival order: 0, 1, ...
				if mb != lastB+1 {
					return fmt.Errorf("%w: stage %d 1f1b backwards out of order (backward %d, want %d)", ErrPipeline, s, mb, lastB+1)
				}
			}
			lastB = mb
		}
	}
	return nil
}

// checkPipelineMemory re-derives each stage's peak resident footprint
// (weights plus live activations) from the realized timeline and holds
// it to the stage device's capacity.
func checkPipelineMemory(g *graph.Graph, sys sim.System, meta sim.PipelineMeta, res sim.Result) error {
	stats, _, err := sim.PipelineAccounting(g, meta, res)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPipeline, err)
	}
	for s, st := range stats {
		d, ok := sys.Device(st.Device)
		if !ok {
			return fmt.Errorf("%w: stage %d on unknown device %d", ErrPipeline, s, st.Device)
		}
		if d.Memory > 0 && st.PeakMemory > d.Memory {
			return fmt.Errorf("%w: stage %d peak memory %d exceeds %s capacity %d (%w)",
				ErrPipeline, s, st.PeakMemory, d.Name, d.Memory, ErrMemory)
		}
	}
	return nil
}

// checkPipelineTimeline proves per-microbatch cross-stage ordering
// directly from the realized windows, independent of the edge set:
// microbatch m climbs the stages forward without overlap, descends
// them backward without overlap, and never starts a stage's backward
// before that stage's forward finished.
func checkPipelineTimeline(g *graph.Graph, meta sim.PipelineMeta, res sim.Result) error {
	S, M := meta.Stages, meta.Microbatches
	// fwd[m][s] / bwd[m][s] = node ID or -1.
	fwd := make([][]graph.NodeID, M)
	bwd := make([][]graph.NodeID, M)
	for m := 0; m < M; m++ {
		fwd[m] = make([]graph.NodeID, S)
		bwd[m] = make([]graph.NodeID, S)
		for s := 0; s < S; s++ {
			fwd[m][s], bwd[m][s] = -1, -1
		}
	}
	for _, nd := range g.Nodes() {
		s := meta.StageOf[nd.ID]
		if s < 0 {
			continue
		}
		m := meta.MBOf[nd.ID]
		if meta.Backward[nd.ID] {
			if bwd[m][s] >= 0 {
				return fmt.Errorf("%w: microbatch %d stage %d has two backward tasks", ErrPipeline, m, s)
			}
			bwd[m][s] = nd.ID
		} else {
			if fwd[m][s] >= 0 {
				return fmt.Errorf("%w: microbatch %d stage %d has two forward tasks", ErrPipeline, m, s)
			}
			fwd[m][s] = nd.ID
		}
	}
	for m := 0; m < M; m++ {
		for s := 0; s < S; s++ {
			if fwd[m][s] < 0 {
				return fmt.Errorf("%w: microbatch %d has no forward task on stage %d", ErrPipeline, m, s)
			}
			if s > 0 && res.Start[fwd[m][s]] < res.Finish[fwd[m][s-1]] {
				return fmt.Errorf("%w: microbatch %d forward overlaps stages %d and %d", ErrPipeline, m, s-1, s)
			}
			if b := bwd[m][s]; b >= 0 {
				if res.Start[b] < res.Finish[fwd[m][s]] {
					return fmt.Errorf("%w: microbatch %d stage %d backward starts before its forward finishes", ErrPipeline, m, s)
				}
				if s+1 < S && bwd[m][s+1] >= 0 && res.Start[b] < res.Finish[bwd[m][s+1]] {
					return fmt.Errorf("%w: microbatch %d backward overlaps stages %d and %d", ErrPipeline, m, s+1, s)
				}
			}
		}
	}
	return nil
}
