package verify

import (
	"fmt"
	"math"
	"time"

	"pesto/internal/graph"
	"pesto/internal/lp"
	"pesto/internal/sim"
)

// LowerBound computes a makespan lower bound that every feasible
// placement/schedule of g on sys must respect, by solving an LP
// relaxation with the repository's own simplex solver — the oracle the
// heuristic and exact engines are measured against, in the spirit of
// the LP lower bounds Tarnawski et al. validate against.
//
// The relaxation keeps what is true of every schedule and drops what
// any schedule may choose:
//
//   - each operation runs for at least its best-case duration (fastest
//     compatible healthy device, with the simulator's rounding);
//   - each edge delays its consumer by at least the cheapest
//     communication any device assignment allows (zero when the two
//     endpoints could colocate);
//   - the total best-case work of an affinity class cannot beat its
//     aggregate processing capacity (Σ p_min / m machines).
//
// Placement, congestion queueing and memory are relaxed away, so the
// bound is valid for every engine: analytic simulator, event-driven
// runtime, ILP ladder, baselines and replan output alike. A plan whose
// realized makespan undercuts it is wrong by construction.
func LowerBound(g *graph.Graph, sys sim.System) (time.Duration, error) {
	n := g.NumNodes()
	if n == 0 {
		return 0, nil
	}
	nodes := g.Nodes()

	// Per-node best-case durations and compatible-device sets.
	durMin := make([]float64, n)
	compat := make([][]sim.DeviceID, n)
	for _, nd := range nodes {
		best := math.Inf(1)
		for _, d := range sys.Devices {
			if !sys.CompatibleDevice(nd.Kind, d.ID) {
				continue
			}
			compat[nd.ID] = append(compat[nd.ID], d.ID)
			speed := d.Speed
			if speed <= 0 {
				speed = 1
			}
			if dur := math.Round(float64(nd.Cost) / speed); dur < best {
				best = dur
			}
		}
		if len(compat[nd.ID]) == 0 {
			return 0, fmt.Errorf("lower bound: node %d (%v) has no compatible device: %w", nd.ID, nd.Kind, ErrAffinity)
		}
		durMin[nd.ID] = best
	}

	// Variables: s_0..s_{n-1} (start times), C at index n. Minimize C.
	p := lp.NewProblem(n + 1)
	cVar := n
	if err := p.SetObjective(cVar, 1); err != nil {
		return 0, err
	}

	// Precedence with cheapest-possible communication.
	for _, e := range g.Edges() {
		rhs := durMin[e.From] + minComm(sys, compat[e.From], compat[e.To], e.Bytes)
		if err := p.AddConstraint(lp.Constraint{
			Terms: []lp.Term{{Var: int(e.To), Coef: 1}, {Var: int(e.From), Coef: -1}},
			Rel:   lp.GE,
			RHS:   rhs,
		}); err != nil {
			return 0, err
		}
	}
	// Completion: C ≥ s_i + p_i^min.
	for i := 0; i < n; i++ {
		if err := p.AddConstraint(lp.Constraint{
			Terms: []lp.Term{{Var: cVar, Coef: 1}, {Var: i, Coef: -1}},
			Rel:   lp.GE,
			RHS:   durMin[i],
		}); err != nil {
			return 0, err
		}
	}
	// Aggregate capacity per affinity class: any schedule keeps some
	// machine busy for at least the class's best-case work share.
	var gpuWork, cpuWork float64
	for _, nd := range nodes {
		if nd.Kind == graph.KindGPU {
			gpuWork += durMin[nd.ID]
		} else {
			cpuWork += durMin[nd.ID]
		}
	}
	if m := len(sys.GPUs()); m > 0 && gpuWork > 0 {
		if err := p.AddConstraint(lp.Constraint{
			Terms: []lp.Term{{Var: cVar, Coef: 1}},
			Rel:   lp.GE,
			RHS:   gpuWork / float64(m),
		}); err != nil {
			return 0, err
		}
	}
	if cpuWork > 0 {
		if err := p.AddConstraint(lp.Constraint{
			Terms: []lp.Term{{Var: cVar, Coef: 1}},
			Rel:   lp.GE,
			RHS:   cpuWork,
		}); err != nil {
			return 0, err
		}
	}

	sol, err := lp.Solve(p)
	if err != nil {
		return 0, fmt.Errorf("lower bound: relaxation: %w", err)
	}
	// Realized makespans are integer nanoseconds, so any true bound t
	// implies makespan ≥ ⌈t⌉. Back the float objective off by a small
	// epsilon before taking the ceiling so simplex rounding noise can
	// only loosen the bound, never overstate it.
	eps := 0.5 + 1e-9*math.Abs(sol.Objective)
	lb := math.Ceil(sol.Objective - eps)
	if lb < 0 {
		lb = 0
	}
	return time.Duration(lb), nil
}

// minComm is the cheapest communication time any assignment of the two
// endpoints allows: zero when they share a compatible device, else the
// minimum transfer time over compatible device pairs.
func minComm(sys sim.System, from, to []sim.DeviceID, bytes int64) float64 {
	best := math.Inf(1)
	for _, a := range from {
		for _, b := range to {
			if t := float64(sys.TransferTime(a, b, bytes)); t < best {
				best = t
			}
			if best == 0 {
				return 0
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}
