package verify_test

// The differential sweep: every engine in the repository — baselines,
// the Pesto placement ladder, the replanner, the discrete-event
// simulator and the concurrent runtime — is driven over a population of
// seeded random DAGs and held to the cross-engine oracles:
//
//   - every produced plan passes the independent invariant checker;
//   - no realized makespan undercuts the LP-relaxation lower bound;
//   - simulator and runtime agree on the makespan within tolerance;
//   - forcing the degradation ladder rung by rung never improves the
//     plan (exact ≤ refine ≤ fallback, up to a tie tolerance);
//   - replanning around a failed device yields a verified plan on the
//     survivors.
//
// The population size is PESTO_SWEEP (default 96 so plain `go test`
// stays fast); `make verify` runs the full 1000-instance sweep.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"pesto/internal/baselines"
	"pesto/internal/engine"
	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/placement"
	"pesto/internal/runtime"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

const sweepGPUMem = int64(16) << 30

// sweepSize reads PESTO_SWEEP; the default keeps tier-1 runs fast.
func sweepSize(t *testing.T) int {
	if s := os.Getenv("PESTO_SWEEP"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad PESTO_SWEEP=%q", s)
		}
		return n
	}
	return 96
}

// placeOpts are the deliberately small budgets the sweep gives the
// exact pipeline: the node cap, not the wall clock, truncates the
// branch and bound, so results are machine-independent.
func placeOpts() placement.Options {
	return placement.Options{
		ILPTimeLimit: 5 * time.Second,
		ILPMaxNodes:  400,
		Verify:       true,
	}
}

// TestSweep is the harness entry point. Each seed is one independent
// instance; instances run in parallel through the engine pool and
// every violation reports its seed so it can be replayed alone.
func TestSweep(t *testing.T) {
	n := sweepSize(t)
	pool := engine.New(0)
	results, err := engine.Map(context.Background(), pool, n, func(ctx context.Context, i int) (string, error) {
		return "", sweepInstance(int64(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for i, r := range results {
		if r.Err != nil {
			failed++
			if failed <= 10 {
				t.Errorf("seed %d: %v", i, r.Err)
			}
		}
	}
	if failed > 10 {
		t.Errorf("… and %d further failing seeds", failed-10)
	}
	t.Logf("sweep: %d instances, %d violations", n, failed)
}

// TestSweepReplay reruns a single seed reported by TestSweep:
//
//	PESTO_SWEEP_SEED=101 go test ./internal/verify/ -run TestSweepReplay -v
func TestSweepReplay(t *testing.T) {
	s := os.Getenv("PESTO_SWEEP_SEED")
	if s == "" {
		t.Skip("set PESTO_SWEEP_SEED to replay one sweep instance")
	}
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad PESTO_SWEEP_SEED=%q", s)
	}
	if err := sweepInstance(seed); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// sweepInstance runs every oracle that applies to one seed.
func sweepInstance(seed int64) error {
	g, err := gen.Generate(gen.RandomConfig(seed))
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	sys := sim.NewSystem(2, sweepGPUMem)

	lb, err := verify.LowerBound(g, sys)
	if err != nil {
		return fmt.Errorf("lower bound: %w", err)
	}

	if err := baselineOracles(g, sys, lb); err != nil {
		return err
	}
	if seed%10 == 3 {
		if err := tightMemoryOracle(g, seed); err != nil {
			return err
		}
	}
	if seed%8 == 1 {
		if err := placementOracles(g, sys, lb, seed); err != nil {
			return err
		}
	}
	if seed%16 == 5 {
		if err := ladderMonotonicityOracle(g, sys, seed); err != nil {
			return err
		}
	}
	if seed%6 == 2 {
		if err := replanOracle(g, sys, lb); err != nil {
			return err
		}
	}
	if seed%12 == 7 {
		if err := multiGPUOracle(g, lb, seed); err != nil {
			return err
		}
	}
	return nil
}

// baselineOracles verifies every baseline plan and holds its makespan
// to the lower bound.
func baselineOracles(g *graph.Graph, sys sim.System, lb time.Duration) error {
	type mk struct {
		name string
		make func() (sim.Plan, error)
	}
	makers := []mk{
		{"single-gpu", func() (sim.Plan, error) { return baselines.SingleGPU(g, sys) }},
		{"heft", func() (sim.Plan, error) { return baselines.HEFT(g, sys) }},
		{"baechi", func() (sim.Plan, error) {
			p, _, _, err := baselines.BestBaechi(g, sys)
			return p, err
		}},
	}
	for _, m := range makers {
		plan, err := m.make()
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		res, err := verify.Check(g, sys, plan)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		if res.Makespan < lb {
			return fmt.Errorf("%s: makespan %v undercuts lower bound %v", m.name, res.Makespan, lb)
		}
	}
	return nil
}

// tightMemoryOracle shrinks GPU memory below the model's footprint and
// demands the checker classify the single-GPU plan as a memory
// violation — OOMs must be detected, and detected as OOMs.
func tightMemoryOracle(g *graph.Graph, seed int64) error {
	var total int64
	for _, nd := range g.Nodes() {
		if nd.Kind == graph.KindGPU {
			total += nd.Memory
		}
	}
	if total == 0 {
		return nil
	}
	tight := sim.NewSystem(2, total/2+1)
	plan, err := baselines.SingleGPU(g, tight)
	if err != nil {
		// SingleGPU itself may refuse; that is an acceptable detection
		// point as long as it reports OOM.
		if errors.Is(err, sim.ErrOOM) {
			return nil
		}
		return fmt.Errorf("tight-memory single-gpu: %w", err)
	}
	if _, err := verify.Check(g, tight, plan); !errors.Is(err, verify.ErrMemory) {
		return fmt.Errorf("tight-memory plan accepted or misclassified (seed %d): %v", seed, err)
	}
	return nil
}

// placementOracles runs the full Pesto ladder with verification on and
// cross-checks the simulator against the concurrent runtime when the
// plan carries an explicit order.
func placementOracles(g *graph.Graph, sys sim.System, lb time.Duration, seed int64) error {
	opts := placeOpts()
	opts.ScheduleFromILP = true
	opts.Seed = seed
	res, err := placement.Place(context.Background(), g, sys, opts)
	if err != nil {
		return fmt.Errorf("place: %w", err)
	}
	step, err := verify.Check(g, sys, res.Plan)
	if err != nil {
		return fmt.Errorf("place: %w", err)
	}
	if step.Makespan < lb {
		return fmt.Errorf("place: makespan %v undercuts lower bound %v", step.Makespan, lb)
	}
	if res.Plan.Order != nil {
		rres, err := runtime.Execute(g, sys, res.Plan, runtime.Options{})
		if err != nil {
			return fmt.Errorf("runtime: %w", err)
		}
		diff := float64(rres.Makespan - step.Makespan)
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(step.Makespan) > 0.02 {
			return fmt.Errorf("runtime makespan %v vs simulator %v beyond 2%%", rres.Makespan, step.Makespan)
		}
		if rres.Makespan < lb {
			return fmt.Errorf("runtime: makespan %v undercuts lower bound %v", rres.Makespan, lb)
		}
	}
	return nil
}

// ladderMonotonicityOracle forces the degradation ladder onto each rung
// in turn and demands degradation never improves the plan: exact ≤
// refine ≤ fallback, up to a 5% tie tolerance (the rungs share
// heuristics, so near-ties are common).
func ladderMonotonicityOracle(g *graph.Graph, sys sim.System, seed int64) error {
	makespanAt := func(fail ...placement.Stage) (time.Duration, error) {
		opts := placeOpts()
		opts.Seed = seed
		opts.StageRetries = -1
		if len(fail) > 0 {
			banned := map[placement.Stage]bool{}
			for _, s := range fail {
				banned[s] = true
			}
			opts.StageHook = func(s placement.Stage) error {
				if banned[s] {
					return errors.New("rung disabled by monotonicity oracle")
				}
				return nil
			}
		}
		res, err := placement.Place(context.Background(), g, sys, opts)
		if err != nil {
			return 0, err
		}
		step, err := verify.Check(g, sys, res.Plan)
		if err != nil {
			return 0, err
		}
		return step.Makespan, nil
	}
	refine, err := makespanAt(placement.StageILP)
	if err != nil {
		return fmt.Errorf("ladder refine: %w", err)
	}
	fallback, err := makespanAt(placement.StageILP, placement.StageRefine)
	if err != nil {
		return fmt.Errorf("ladder fallback: %w", err)
	}
	const tol = 1.05
	// refine ≤ fallback is structural — the refine rung seeds its
	// search with the very placements the fallback rung would return —
	// so it holds at any speed. exact ≤ refine is budget-sensitive:
	// the exact rung splits one wall-clock budget between branch and
	// bound and refinement, and the race detector's slowdown shifts
	// that split, which is not the property under test; skip it there.
	if float64(refine) > float64(fallback)*tol {
		return fmt.Errorf("ladder not monotone: refine %v > fallback %v", refine, fallback)
	}
	if !raceEnabled {
		exact, err := makespanAt()
		if err != nil {
			return fmt.Errorf("ladder exact: %w", err)
		}
		if float64(exact) > float64(refine)*tol {
			return fmt.Errorf("ladder not monotone: exact %v > refine %v", exact, refine)
		}
	}
	return nil
}

// replanOracle fails a device under a verified plan and demands the
// recovered plan verify on the survivor system with nothing left on the
// failed device.
func replanOracle(g *graph.Graph, sys sim.System, lb time.Duration) error {
	plan, err := baselines.HEFT(g, sys)
	if err != nil {
		return fmt.Errorf("replan seed plan: %w", err)
	}
	const failed = sim.DeviceID(1)
	opts := placeOpts()
	out, err := placement.Replan(context.Background(), g, sys, plan, failed, opts)
	if err != nil {
		return fmt.Errorf("replan: %w", err)
	}
	for id, d := range out.Plan.Device {
		if d == failed {
			return fmt.Errorf("replan left op %d on failed device", id)
		}
	}
	step, err := verify.Check(g, out.Survivors, out.Plan)
	if err != nil {
		return fmt.Errorf("replan: %w", err)
	}
	// The two-GPU bound still applies to the degraded one-GPU system.
	if step.Makespan < lb {
		return fmt.Errorf("replan: makespan %v undercuts lower bound %v", step.Makespan, lb)
	}
	return nil
}

// multiGPUOracle exercises the k-GPU pipeline and a hierarchical
// multi-host topology.
func multiGPUOracle(g *graph.Graph, lb2 time.Duration, seed int64) error {
	for name, sys := range map[string]sim.System{
		"4-gpu":     sim.NewSystem(4, sweepGPUMem),
		"multihost": sim.NewMultiHostSystem(2, 2, sweepGPUMem),
	} {
		opts := placeOpts()
		opts.Seed = seed
		res, err := placement.PlaceMultiGPU(context.Background(), g, sys, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		step, err := verify.Check(g, sys, res.Plan)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		// The k-GPU system has its own (weaker) bound; recompute it
		// rather than reusing the two-GPU one.
		lb, err := verify.LowerBound(g, sys)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if step.Makespan < lb {
			return fmt.Errorf("%s: makespan %v undercuts lower bound %v", name, step.Makespan, lb)
		}
		_ = lb2
	}
	return nil
}
