package verify

import (
	"errors"
	"testing"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/sim"
)

// FuzzCheckPlanAgreesWithValidate generates a graph from the fuzzed
// seed, derives an arbitrary (often infeasible) placement from the fuzz
// bytes, and cross-checks the independent CheckPlan against the
// simulator's own Plan.Validate + CheckMemory: neither may panic, and
// they must agree on accept/reject.
func FuzzCheckPlanAgreesWithValidate(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 1, 2})
	f.Add(int64(9), []byte{0})
	f.Add(int64(-3), []byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		g, err := gen.Generate(gen.RandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(2, 64<<20) // tight memory: OOM rejections reachable
		plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes())}
		for i := range plan.Device {
			var b byte
			if len(raw) > 0 {
				b = raw[i%len(raw)]
			}
			// Bias toward valid devices so accepts are reachable too.
			plan.Device[i] = sim.DeviceID(b % 4)
			if nd, ok := g.Node(graph.NodeID(i)); ok && nd.Kind == graph.KindGPU && b%5 != 0 {
				plan.Device[i] = sim.DeviceID(1 + b%2)
			}
		}
		vErr := plan.Validate(g, sys)
		mErr := plan.CheckMemory(g, sys)
		cErr := CheckPlan(g, sys, plan)
		if (vErr == nil && mErr == nil) != (cErr == nil) {
			t.Fatalf("seed %d: Validate=%v CheckMemory=%v CheckPlan=%v", seed, vErr, mErr, cErr)
		}
		if cErr != nil && !errors.Is(cErr, ErrInvariant) {
			t.Fatalf("seed %d: rejection %v does not wrap ErrInvariant", seed, cErr)
		}
	})
}

// FuzzVerifiedSimulationPasses is the harness's self-consistency
// oracle: any plan the simulator accepts must produce a result the
// independent execution checker certifies, and its makespan must not
// undercut the LP lower bound.
func FuzzVerifiedSimulationPasses(f *testing.F) {
	f.Add(int64(0), uint8(0))
	f.Add(int64(17), uint8(1))
	f.Add(int64(-99), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, split uint8) {
		g, err := gen.Generate(gen.RandomConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		sys := sim.NewSystem(2, gpuMem)
		// Deterministic two-way split of the GPU ops, coloc-respecting
		// via group representatives.
		plan := sim.Plan{Device: make([]sim.DeviceID, g.NumNodes())}
		grpDev := map[string]sim.DeviceID{}
		for _, nd := range g.Nodes() {
			if nd.Kind != graph.KindGPU {
				continue
			}
			d := sim.DeviceID(1 + (int(nd.ID)+int(split))%2)
			if nd.Coloc != "" {
				if prev, ok := grpDev[nd.Coloc]; ok {
					d = prev
				} else {
					grpDev[nd.Coloc] = d
				}
			}
			plan.Device[nd.ID] = d
		}
		res, err := Check(g, sys, plan)
		if err != nil {
			t.Fatalf("seed %d split %d: verified-feasible plan rejected: %v", seed, split, err)
		}
		lb, err := LowerBound(g, sys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < lb {
			t.Fatalf("seed %d split %d: makespan %v undercuts lower bound %v", seed, split, res.Makespan, lb)
		}
	})
}
