package verify_test

// The incremental differential sweep: one long seeded edit trace is
// replayed step by step through placement.Incremental, and every step
// is held to three oracles:
//
//   - invariant cleanliness: the warm (or fallen-back) plan passes the
//     independent checker against the *edited* graph;
//   - quality: the incremental makespan stays within 5% of a
//     from-scratch cold solve of the same graph;
//   - determinism: the plan bytes are identical at worker-pool widths
//     1, 2 and 8 (the repo's byte-determinism contract — Parallel is
//     what fans work across GOMAXPROCS).
//
// Trace length is PESTO_INCR_STEPS (default 60 so plain `go test`
// stays fast); `make verify` runs the full 500-step trace.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"pesto/internal/gen"
	"pesto/internal/graph"
	"pesto/internal/incr"
	"pesto/internal/placement"
	"pesto/internal/sim"
	"pesto/internal/verify"
)

// incrSteps reads PESTO_INCR_STEPS; the default keeps tier-1 runs fast.
func incrSteps(t *testing.T) int {
	if s := os.Getenv("PESTO_INCR_STEPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad PESTO_INCR_STEPS=%q", s)
		}
		return n
	}
	return 60
}

func TestSweepEditTrace(t *testing.T) {
	steps := incrSteps(t)
	base, err := gen.Generate(gen.Config{Family: gen.Layered, Nodes: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	edits, err := gen.EditTrace(base, gen.EditTraceConfig{Seed: 17, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, sweepGPUMem)
	opts := placement.Options{
		ILPTimeLimit: 5 * time.Second,
		StartStage:   placement.StageRefine,
		Seed:         1,
		Verify:       true,
	}
	ctx := context.Background()

	cold, err := placement.PlaceMultiGPU(ctx, base, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	prior := placement.PriorPlacement{Graph: base, Plan: cold.Plan}
	cur := base
	warm, fallbacks := 0, map[string]int{}
	for step, e := range edits {
		next, m, err := incr.Apply(cur, e)
		if err != nil {
			t.Fatalf("step %d (%s): apply: %v", step, e.Kind, err)
		}
		prior.NodeMap = m

		// Determinism oracle: byte-identical plans at widths 1, 2, 8.
		var res *placement.Result
		var want []byte
		for _, par := range []int{1, 2, 8} {
			o := opts
			o.Parallel = par
			r, err := placement.Incremental(ctx, next, sys, prior, o)
			if err != nil {
				t.Fatalf("step %d parallel %d: %v", step, par, err)
			}
			b, err := json.Marshal(r.Plan)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				res, want = r, b
			} else if !bytes.Equal(want, b) {
				t.Fatalf("step %d: plan bytes differ between parallel 1 and %d", step, par)
			}
		}
		info := res.Provenance.Incremental
		if info == nil {
			t.Fatalf("step %d: no incremental provenance", step)
		}
		if info.ColdFallback {
			fallbacks[info.FallbackReason]++
		} else {
			warm++
		}

		// Invariant oracle: the served plan passes the independent
		// checker against the edited graph.
		chk, err := verify.Check(next, sys, res.Plan)
		if err != nil {
			t.Fatalf("step %d (%s): invariant check: %v", step, e.Kind, err)
		}

		// Quality oracle: within 5% of a from-scratch cold solve.
		coldStep, err := placement.PlaceMultiGPU(ctx, next, sys, opts)
		if err != nil {
			t.Fatalf("step %d: cold: %v", step, err)
		}
		if os.Getenv("PESTO_INCR_DEBUG") != "" {
			var gpuTotal time.Duration
			for _, nd := range next.Nodes() {
				if nd.Kind == graph.KindGPU {
					gpuTotal += nd.Cost
				}
			}
			lb := gpuTotal / 2
			if cp, _, cperr := next.CriticalPath(); cperr == nil && cp > lb {
				lb = cp
			}
			t.Logf("step %d (%s): warm=%v depth=%d mk=%v cold=%v ratio=%.4f q=%.4f coldq=%.4f anchor=%.4f",
				step, e.Kind, !info.ColdFallback, info.ChainDepth, chk.Makespan, coldStep.SimulatedMakespan,
				float64(chk.Makespan)/float64(coldStep.SimulatedMakespan),
				float64(chk.Makespan)/float64(lb),
				float64(coldStep.SimulatedMakespan)/float64(lb),
				info.AnchorQuality)
		}
		if float64(chk.Makespan) > 1.05*float64(coldStep.SimulatedMakespan) {
			t.Fatalf("step %d (%s): incremental makespan %v > 1.05x cold %v (warm=%v reason=%q)",
				step, e.Kind, chk.Makespan, coldStep.SimulatedMakespan, !info.ColdFallback, info.FallbackReason)
		}

		cur = next
		prior = placement.PriorPlacement{Graph: cur, Plan: res.Plan, NodeMap: nil,
			ChainDepth: info.ChainDepth, AnchorQuality: info.AnchorQuality}
	}
	if warm == 0 {
		t.Fatalf("no step took the warm path (fallbacks %v)", fallbacks)
	}
	t.Logf("edit-trace sweep: %d steps, %d warm, fallbacks %v", steps, warm, fallbacks)
}

// TestSweepEditTraceReplay reruns a single step range for debugging:
//
//	PESTO_INCR_STEPS=500 PESTO_INCR_REPLAY=137 go test ./internal/verify/ -run TestSweepEditTraceReplay -v
//
// replays the trace silently up to the named step and then runs the
// full oracle set on it alone.
func TestSweepEditTraceReplay(t *testing.T) {
	s := os.Getenv("PESTO_INCR_REPLAY")
	if s == "" {
		t.Skip("set PESTO_INCR_REPLAY to replay one edit-trace step")
	}
	target, err := strconv.Atoi(s)
	if err != nil || target < 0 {
		t.Fatalf("bad PESTO_INCR_REPLAY=%q", s)
	}
	base, err := gen.Generate(gen.Config{Family: gen.Layered, Nodes: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	edits, err := gen.EditTrace(base, gen.EditTraceConfig{Seed: 17, Steps: target + 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(2, sweepGPUMem)
	opts := placement.Options{
		ILPTimeLimit: 5 * time.Second,
		StartStage:   placement.StageRefine,
		Seed:         1,
		Verify:       true,
	}
	ctx := context.Background()
	cur := base
	for step := 0; step < target; step++ {
		next, _, err := incr.Apply(cur, edits[step])
		if err != nil {
			t.Fatalf("replay step %d: %v", step, err)
		}
		cur = next
	}
	coldPrior, err := placement.PlaceMultiGPU(ctx, cur, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	next, m, err := incr.Apply(cur, edits[target])
	if err != nil {
		t.Fatal(err)
	}
	res, err := placement.Incremental(ctx, next, sys,
		placement.PriorPlacement{Graph: cur, Plan: coldPrior.Plan, NodeMap: m}, opts)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := verify.Check(next, sys, res.Plan)
	if err != nil {
		t.Fatalf("step %d: %v", target, err)
	}
	coldStep, err := placement.PlaceMultiGPU(ctx, next, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("step %d (%s): %+v\n", target, edits[target].Kind, res.Provenance.Incremental)
	fmt.Printf("step %d: warm makespan %v, cold %v, ratio %.4f\n",
		target, chk.Makespan, coldStep.SimulatedMakespan,
		float64(chk.Makespan)/float64(coldStep.SimulatedMakespan))
}
