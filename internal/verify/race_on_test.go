//go:build race

package verify_test

// raceEnabled reports whether this test binary was built with the race
// detector. The sweep's wall-clock-sensitive comparisons consult it:
// the detector's order-of-magnitude slowdown shifts how a placement
// budget splits between branch and bound and refinement, which is not
// the property those comparisons test.
const raceEnabled = true
