// Package verify is the differential-verification harness: an
// independent checker that a produced placement/schedule is actually
// feasible, and a set of oracles every engine in this repository is
// held to (see lowerbound.go and the sweep tests).
//
// The checker deliberately re-derives every invariant from the graph
// and system instead of trusting the planner's own bookkeeping —
// precedence order, colocation-group integrity, device affinity,
// memory capacity, link FCFS discipline and makespan accounting are
// each re-proved from first principles against the simulator's realized
// timeline. A planner bug therefore cannot hide behind the code that
// produced it, the property Mayer et al. ("It's the Critical Path!")
// and Tarnawski et al. rely on when validating schedulers against
// critical-path and LP bounds on randomized graph families.
//
// Every invariant class rejects with its own sentinel error, all
// wrapping ErrInvariant, so tests can assert not only that a corrupted
// plan is rejected but that it is rejected for the right reason.
package verify

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"pesto/internal/graph"
	"pesto/internal/sim"
)

// ErrInvariant is the base error every invariant-class sentinel wraps:
// errors.Is(err, ErrInvariant) matches any verification failure.
var ErrInvariant = errors.New("plan invariant violated")

// Invariant-class sentinels. Each wraps ErrInvariant; match with
// errors.Is to identify the class a plan was rejected for.
var (
	// ErrAffinity marks placement-coverage and device-affinity
	// violations: missing assignments, unknown or failed devices,
	// operations on devices of the wrong kind (§3.2.1's O_C/O_G/O_K).
	ErrAffinity = fmt.Errorf("device affinity: %w", ErrInvariant)
	// ErrColocation marks colocation groups split across devices.
	ErrColocation = fmt.Errorf("colocation integrity: %w", ErrInvariant)
	// ErrMemory marks placements whose cumulative footprint exceeds a
	// device's capacity (§3.2.2's memory constraints).
	ErrMemory = fmt.Errorf("memory capacity: %w", ErrInvariant)
	// ErrSchedule marks malformed or violated explicit per-device
	// orders: duplicates, wrong-device entries, missing coverage, or a
	// realized execution that contradicts the strict order.
	ErrSchedule = fmt.Errorf("schedule order: %w", ErrInvariant)
	// ErrPrecedence marks realized timelines in which an operation
	// starts before a predecessor's output could have reached it.
	ErrPrecedence = fmt.Errorf("precedence order: %w", ErrInvariant)
	// ErrDeviceOverlap marks two operations executing concurrently on
	// one device (no preemption anywhere in the model).
	ErrDeviceOverlap = fmt.Errorf("device double-booking: %w", ErrInvariant)
	// ErrLinkOverlap marks directional-link double-booking or a
	// violation of the FCFS service discipline (§3.2.1).
	ErrLinkOverlap = fmt.Errorf("link double-booking: %w", ErrInvariant)
	// ErrAccounting marks internally inconsistent results: makespan not
	// equal to the last finish, per-device busy time not matching the
	// realized windows, missing or mispriced transfers.
	ErrAccounting = fmt.Errorf("makespan accounting: %w", ErrInvariant)
)

// CheckPlan verifies the static invariants of a plan against a graph
// and system: placement coverage and device affinity (ErrAffinity),
// colocation-group integrity (ErrColocation), memory capacity
// (ErrMemory) and explicit-order well-formedness (ErrSchedule). It is
// an independent, classifying re-implementation of sim.Plan.Validate —
// the two must agree on accept/reject, which the fuzz targets enforce.
func CheckPlan(g *graph.Graph, sys sim.System, plan sim.Plan) error {
	n := g.NumNodes()
	if len(plan.Device) != n {
		return fmt.Errorf("%w: placement covers %d of %d nodes", ErrAffinity, len(plan.Device), n)
	}
	colocDev := make(map[string]sim.DeviceID)
	for _, nd := range g.Nodes() {
		d := plan.Device[nd.ID]
		dev, ok := sys.Device(d)
		if !ok {
			return fmt.Errorf("%w: node %d on unknown device %d", ErrAffinity, nd.ID, d)
		}
		if dev.Failed {
			return fmt.Errorf("%w: node %d on failed device %s", ErrAffinity, nd.ID, dev.Name)
		}
		if !sys.CompatibleDevice(nd.Kind, d) {
			return fmt.Errorf("%w: node %d (%v) on %v device %s", ErrAffinity, nd.ID, nd.Kind, dev.Kind, dev.Name)
		}
		if nd.Coloc != "" {
			if prev, ok := colocDev[nd.Coloc]; ok && prev != d {
				return fmt.Errorf("%w: group %q split across devices %d and %d", ErrColocation, nd.Coloc, prev, d)
			}
			colocDev[nd.Coloc] = d
		}
	}
	if err := checkMemory(g, sys, plan); err != nil {
		return err
	}
	if err := checkOrderShape(g, plan); err != nil {
		return err
	}
	if plan.Policy == sim.PolicyPriority && len(plan.Priority) != n {
		return fmt.Errorf("%w: priority vector covers %d of %d nodes", ErrSchedule, len(plan.Priority), n)
	}
	return nil
}

// checkMemory re-derives per-device footprints from the graph.
func checkMemory(g *graph.Graph, sys sim.System, plan sim.Plan) error {
	use := make(map[sim.DeviceID]int64, len(sys.Devices))
	for _, nd := range g.Nodes() {
		use[plan.Device[nd.ID]] += nd.Memory
	}
	for _, d := range sys.Devices {
		if d.Memory > 0 && use[d.ID] > d.Memory {
			return fmt.Errorf("%w: device %s needs %d of %d bytes", ErrMemory, d.Name, use[d.ID], d.Memory)
		}
	}
	return nil
}

// checkOrderShape verifies that an explicit order, when present, is a
// partition of the node set consistent with the placement.
func checkOrderShape(g *graph.Graph, plan sim.Plan) error {
	if plan.Order == nil {
		return nil
	}
	n := g.NumNodes()
	seen := make([]bool, n)
	covered := 0
	for dev, order := range plan.Order {
		for _, id := range order {
			if int(id) < 0 || int(id) >= n {
				return fmt.Errorf("%w: order references unknown node %d", ErrSchedule, id)
			}
			if plan.Device[id] != sim.DeviceID(dev) {
				return fmt.Errorf("%w: order of device %d lists node %d placed on %d", ErrSchedule, dev, id, plan.Device[id])
			}
			if seen[id] {
				return fmt.Errorf("%w: node %d appears twice in the order", ErrSchedule, id)
			}
			seen[id] = true
			covered++
		}
	}
	if covered != n {
		return fmt.Errorf("%w: order covers %d of %d nodes", ErrSchedule, covered, n)
	}
	return nil
}

// CheckExecution verifies the dynamic invariants of a realized training
// step: every operation executed with its modelled duration, precedence
// held through communication (ErrPrecedence), no device ran two
// operations at once (ErrDeviceOverlap), no directional link served two
// transfers at once or out of FCFS order (ErrLinkOverlap), explicit
// orders were honored (ErrSchedule), and the result's own accounting —
// makespan, per-device busy time, per-link busy time, transfer pricing
// — is consistent with the realized windows (ErrAccounting).
//
// res must come from an uninjected simulation of exactly (g, sys,
// plan); fault-injected runs intentionally violate the pricing
// invariants.
func CheckExecution(g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result) error {
	n := g.NumNodes()
	if len(res.Start) != n || len(res.Finish) != n {
		return fmt.Errorf("%w: result covers %d/%d of %d nodes", ErrAccounting, len(res.Start), len(res.Finish), n)
	}
	nodes := g.Nodes()
	for _, nd := range nodes {
		s, f := res.Start[nd.ID], res.Finish[nd.ID]
		if s < 0 || f < s {
			return fmt.Errorf("%w: node %d has window [%v, %v]", ErrAccounting, nd.ID, s, f)
		}
		want := opDuration(sys, plan.Device[nd.ID], nd.Cost)
		if f-s != want {
			return fmt.Errorf("%w: node %d ran for %v, modelled duration %v", ErrAccounting, nd.ID, f-s, want)
		}
	}

	transfers, err := indexTransfers(g, plan, res)
	if err != nil {
		return err
	}
	if err := checkPrecedence(g, plan, res, transfers); err != nil {
		return err
	}
	if err := checkDeviceSerialization(g, sys, plan, res); err != nil {
		return err
	}
	if err := checkLinks(sys, res); err != nil {
		return err
	}
	if err := checkStrictOrder(plan, res); err != nil {
		return err
	}
	return checkAccounting(g, sys, plan, res)
}

// opDuration is the modelled execution time of an operation on a
// device — the same rounding the simulator applies.
func opDuration(sys sim.System, dev sim.DeviceID, cost time.Duration) time.Duration {
	d, _ := sys.Device(dev)
	speed := d.Speed
	if speed <= 0 {
		speed = 1
	}
	return time.Duration(math.Round(float64(cost) / speed))
}

// indexTransfers maps each cross-device edge to its transfer event and
// rejects results whose transfer list does not match the plan's
// cross-device edge set exactly.
func indexTransfers(g *graph.Graph, plan sim.Plan, res sim.Result) (map[[2]graph.NodeID]sim.TransferEvent, error) {
	idx := make(map[[2]graph.NodeID]sim.TransferEvent, len(res.Transfers))
	for _, tr := range res.Transfers {
		key := [2]graph.NodeID{tr.Edge.From, tr.Edge.To}
		if _, dup := idx[key]; dup {
			return nil, fmt.Errorf("%w: edge (%d,%d) transferred twice", ErrAccounting, tr.Edge.From, tr.Edge.To)
		}
		idx[key] = tr
	}
	want := 0
	for _, e := range g.Edges() {
		if plan.Device[e.From] == plan.Device[e.To] {
			continue
		}
		want++
		tr, ok := idx[[2]graph.NodeID{e.From, e.To}]
		if !ok {
			return nil, fmt.Errorf("%w: cross-device edge (%d,%d) has no transfer event", ErrAccounting, e.From, e.To)
		}
		if tr.From != plan.Device[e.From] || tr.To != plan.Device[e.To] {
			return nil, fmt.Errorf("%w: edge (%d,%d) transferred %d→%d, placed %d→%d",
				ErrAccounting, e.From, e.To, tr.From, tr.To, plan.Device[e.From], plan.Device[e.To])
		}
	}
	if want != len(res.Transfers) {
		return nil, fmt.Errorf("%w: %d transfer events for %d cross-device edges", ErrAccounting, len(res.Transfers), want)
	}
	return idx, nil
}

// checkPrecedence proves every edge held: a consumer started only after
// the producer finished and, across devices, after the tensor's FCFS
// transfer completed.
func checkPrecedence(g *graph.Graph, plan sim.Plan, res sim.Result, transfers map[[2]graph.NodeID]sim.TransferEvent) error {
	for _, e := range g.Edges() {
		pf := res.Finish[e.From]
		cs := res.Start[e.To]
		if plan.Device[e.From] == plan.Device[e.To] {
			if cs < pf {
				return fmt.Errorf("%w: node %d started at %v before colocated predecessor %d finished at %v",
					ErrPrecedence, e.To, cs, e.From, pf)
			}
			continue
		}
		tr := transfers[[2]graph.NodeID{e.From, e.To}]
		if tr.Enqueue < pf {
			return fmt.Errorf("%w: edge (%d,%d) enqueued at %v before producer finished at %v",
				ErrPrecedence, e.From, e.To, tr.Enqueue, pf)
		}
		if tr.Start < tr.Enqueue || tr.Finish < tr.Start {
			return fmt.Errorf("%w: edge (%d,%d) transfer window enqueue=%v start=%v finish=%v",
				ErrPrecedence, e.From, e.To, tr.Enqueue, tr.Start, tr.Finish)
		}
		if cs < tr.Finish {
			return fmt.Errorf("%w: node %d started at %v before its input from %d arrived at %v",
				ErrPrecedence, e.To, cs, e.From, tr.Finish)
		}
	}
	return nil
}

// checkDeviceSerialization proves no device ran two operations at once.
func checkDeviceSerialization(g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result) error {
	byDev := make([][]graph.NodeID, len(sys.Devices))
	for i := 0; i < g.NumNodes(); i++ {
		d := plan.Device[i]
		if int(d) >= 0 && int(d) < len(byDev) {
			byDev[d] = append(byDev[d], graph.NodeID(i))
		}
	}
	for d, ids := range byDev {
		sort.Slice(ids, func(a, b int) bool {
			if res.Start[ids[a]] != res.Start[ids[b]] {
				return res.Start[ids[a]] < res.Start[ids[b]]
			}
			return res.Finish[ids[a]] < res.Finish[ids[b]]
		})
		for i := 1; i < len(ids); i++ {
			prev, cur := ids[i-1], ids[i]
			if res.Start[cur] < res.Finish[prev] {
				return fmt.Errorf("%w: device %d ran node %d [%v,%v] overlapping node %d [%v,%v]",
					ErrDeviceOverlap, d, prev, res.Start[prev], res.Finish[prev], cur, res.Start[cur], res.Finish[cur])
			}
		}
	}
	return nil
}

// checkLinks proves each directional link served transfers one at a
// time in FCFS order (skipped on congestion-free systems, where links
// are modelled as infinitely parallel).
func checkLinks(sys sim.System, res sim.Result) error {
	if sys.CongestionFree {
		return nil
	}
	byLink := make(map[[2]sim.DeviceID][]sim.TransferEvent)
	for _, tr := range res.Transfers {
		lk := [2]sim.DeviceID{tr.From, tr.To}
		byLink[lk] = append(byLink[lk], tr)
	}
	for lk, trs := range byLink {
		// No double-booking: service windows must not overlap.
		sort.Slice(trs, func(a, b int) bool {
			if trs[a].Start != trs[b].Start {
				return trs[a].Start < trs[b].Start
			}
			return trs[a].Finish < trs[b].Finish
		})
		for i := 1; i < len(trs); i++ {
			if trs[i].Start < trs[i-1].Finish {
				return fmt.Errorf("%w: link %d→%d served (%d,%d) [%v,%v] overlapping (%d,%d) [%v,%v]",
					ErrLinkOverlap, lk[0], lk[1],
					trs[i-1].Edge.From, trs[i-1].Edge.To, trs[i-1].Start, trs[i-1].Finish,
					trs[i].Edge.From, trs[i].Edge.To, trs[i].Start, trs[i].Finish)
			}
		}
		// FCFS: a transfer enqueued strictly earlier must not start
		// later than one enqueued strictly after it.
		byEnq := append([]sim.TransferEvent(nil), trs...)
		sort.SliceStable(byEnq, func(a, b int) bool { return byEnq[a].Enqueue < byEnq[b].Enqueue })
		for i := 1; i < len(byEnq); i++ {
			a, b := byEnq[i-1], byEnq[i]
			if a.Enqueue < b.Enqueue && a.Start > b.Start {
				return fmt.Errorf("%w: link %d→%d served (%d,%d) enqueued %v after (%d,%d) enqueued %v (FCFS violated)",
					ErrLinkOverlap, lk[0], lk[1],
					b.Edge.From, b.Edge.To, b.Enqueue, a.Edge.From, a.Edge.To, a.Enqueue)
			}
		}
	}
	return nil
}

// checkStrictOrder proves a strictly scheduled device realized its
// operations in exactly the planned sequence.
func checkStrictOrder(plan sim.Plan, res sim.Result) error {
	if plan.Order == nil {
		return nil
	}
	for dev, order := range plan.Order {
		for i := 1; i < len(order); i++ {
			prev, cur := order[i-1], order[i]
			if res.Start[cur] < res.Start[prev] {
				return fmt.Errorf("%w: device %d realized node %d at %v before its predecessor-in-order %d at %v",
					ErrSchedule, dev, cur, res.Start[cur], prev, res.Start[prev])
			}
		}
	}
	return nil
}

// checkAccounting proves the result's summary statistics agree with
// its own realized windows.
func checkAccounting(g *graph.Graph, sys sim.System, plan sim.Plan, res sim.Result) error {
	var last time.Duration
	busy := make([]time.Duration, len(sys.Devices))
	for i := 0; i < g.NumNodes(); i++ {
		if res.Finish[i] > last {
			last = res.Finish[i]
		}
		d := plan.Device[i]
		if int(d) >= 0 && int(d) < len(busy) {
			busy[d] += res.Finish[i] - res.Start[i]
		}
	}
	if res.Makespan != last {
		return fmt.Errorf("%w: makespan %v but last operation finished at %v", ErrAccounting, res.Makespan, last)
	}
	for d := range busy {
		var got time.Duration
		if d < len(res.DeviceBusy) {
			got = res.DeviceBusy[d]
		}
		if got != busy[d] {
			return fmt.Errorf("%w: device %d busy %v, realized windows sum to %v", ErrAccounting, d, got, busy[d])
		}
	}
	linkBusy := make(map[[2]sim.DeviceID]time.Duration, len(res.LinkBusy))
	for _, tr := range res.Transfers {
		if tr.Finish > res.Makespan {
			return fmt.Errorf("%w: transfer (%d,%d) finished at %v after makespan %v",
				ErrAccounting, tr.Edge.From, tr.Edge.To, tr.Finish, res.Makespan)
		}
		want := sys.TransferTime(tr.From, tr.To, tr.Edge.Bytes)
		if tr.Finish-tr.Start != want {
			return fmt.Errorf("%w: transfer (%d,%d) served in %v, modelled time %v",
				ErrAccounting, tr.Edge.From, tr.Edge.To, tr.Finish-tr.Start, want)
		}
		linkBusy[[2]sim.DeviceID{tr.From, tr.To}] += tr.Finish - tr.Start
	}
	for lk, want := range linkBusy {
		if res.LinkBusy[lk] != want {
			return fmt.Errorf("%w: link %d→%d busy %v, realized transfers sum to %v",
				ErrAccounting, lk[0], lk[1], res.LinkBusy[lk], want)
		}
	}
	for lk, got := range res.LinkBusy {
		if linkBusy[lk] != got {
			return fmt.Errorf("%w: link %d→%d reports busy %v with no matching transfers",
				ErrAccounting, lk[0], lk[1], got)
		}
	}
	return nil
}

// Check runs the full verification of a plan: the static invariants,
// one uninjected simulation, and the dynamic invariants of its realized
// timeline. It returns the simulation result so callers can reuse the
// makespan without a second run.
func Check(g *graph.Graph, sys sim.System, plan sim.Plan) (sim.Result, error) {
	if err := CheckPlan(g, sys, plan); err != nil {
		return sim.Result{}, err
	}
	res, err := sim.Run(g, sys, plan)
	if err != nil {
		return sim.Result{}, fmt.Errorf("%w: plan does not simulate: %v", ErrInvariant, err)
	}
	if err := CheckExecution(g, sys, plan, res); err != nil {
		return res, err
	}
	return res, nil
}
